.PHONY: all build test bench examples doc clean

all: build

build:
	dune build @all

test:
	dune runtest

test-verbose:
	dune runtest --force --no-buffer

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- table1 table2 table3 fig3 fig6 --scale 0 --repeats 1

examples:
	dune exec examples/quickstart.exe
	dune exec examples/fear_spectrum.exe
	dune exec examples/text_index.exe
	dune exec examples/graph_analytics.exe
	dune exec examples/mesh_refinement.exe
	dune exec examples/transactions.exe

doc:
	dune build @doc

clean:
	dune clean
