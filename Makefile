.PHONY: all build test bench examples doc clean check-race check-fault profile-smoke

all: build

build:
	dune build @all

test:
	dune runtest

test-verbose:
	dune runtest --force --no-buffer

bench:
	dune exec bench/main.exe

# BENCH_ARGS threads extra flags through, e.g.
#   make bench-quick BENCH_ARGS="--json BENCH_quick.json"
bench-quick:
	dune exec bench/main.exe -- table1 table2 table3 fig3 fig6 --scale 0 --repeats 1 $(BENCH_ARGS)

# CI bench-smoke job: one timed run per benchmark with per-worker scheduler
# counters, written as a machine-readable BENCH_*.json artifact.
bench-smoke:
	dune exec bench/main.exe -- table1 --scale 0 --repeats 1 --json BENCH_smoke.json

# CI profile-smoke job: the work/span profiler on one benchmark per fear
# tier — sort (F, divide-and-conquer), sa (C, checked scatter), hist (S,
# arbitrary writes) — each written as a machine-readable PROFILE_*.json
# (Bench_json schema v2) artifact.
profile-smoke:
	dune exec bin/rpb.exe -- profile --bench sort --threads 4 --scale 0 --json PROFILE_sort.json
	dune exec bin/rpb.exe -- profile --bench sa   --threads 4 --scale 0 --json PROFILE_sa.json
	dune exec bin/rpb.exe -- profile --bench hist --threads 4 --scale 0 --json PROFILE_hist.json

# CI check-race job: the differential oracle (every benchmark under the
# deterministic sequential executor, its shuffled variant, and the
# work-stealing pool, with element-wise output diffs) plus the shadow-array
# race-detector self-check, written as a machine-readable CHECK_*.json
# artifact.
check-race:
	dune exec bin/rpb.exe -- check --seed 42 --json CHECK_report.json

# CI check-fault job: the scheduler fault-injection sweep (every benchmark
# under seeded task-exception / slow-scheduler / degraded-pool schedules;
# each run must either complete with the correct digest or raise cleanly
# before its deadline), written as a machine-readable FAULT_*.json artifact.
# The outer timeout is the hang detector of last resort.
check-fault:
	timeout 900 dune exec bin/rpb.exe -- faults --seed 42 --deadline 30 --json FAULT_report.json

examples:
	dune exec examples/quickstart.exe
	dune exec examples/fear_spectrum.exe
	dune exec examples/text_index.exe
	dune exec examples/graph_analytics.exe
	dune exec examples/mesh_refinement.exe
	dune exec examples/transactions.exe
	dune exec examples/failure_semantics.exe

doc:
	dune build @doc

clean:
	dune clean
