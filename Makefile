.PHONY: all build typecheck test bench examples doc clean check-race check-fault \
	profile-smoke compare-smoke report-smoke perf-gate save-baseline \
	policy-race-smoke granularity-smoke serve-smoke metrics-smoke slo-smoke

all: build

build:
	dune build @all

# Warning gate: compiles every module (including tests and executables that
# the default alias may skip) without linking, so an interface drift — e.g.
# a Policy signature change missing a consumer — fails fast, before any
# test matrix spins up.
typecheck:
	dune build @check

test:
	dune runtest

test-verbose:
	dune runtest --force --no-buffer

bench:
	dune exec bench/main.exe

# BENCH_ARGS threads extra flags through, e.g.
#   make bench-quick BENCH_ARGS="--json BENCH_quick.json"
bench-quick:
	dune exec bench/main.exe -- table1 table2 table3 fig3 fig6 --scale 0 --repeats 1 $(BENCH_ARGS)

# CI bench-smoke job: one timed run per benchmark with per-worker scheduler
# counters, written as a machine-readable BENCH_*.json artifact.
bench-smoke:
	dune exec bench/main.exe -- table1 --scale 0 --repeats 1 --json BENCH_smoke.json

# CI profile-smoke job: the work/span profiler on one benchmark per fear
# tier — sort (F, divide-and-conquer), sa (C, checked scatter), hist (S,
# arbitrary writes) — each written as a machine-readable PROFILE_*.json
# (Bench_json schema v2) artifact.
profile-smoke:
	dune exec bin/rpb.exe -- profile --bench sort --threads 4 --scale 0 --json PROFILE_sort.json
	dune exec bin/rpb.exe -- profile --bench sa   --threads 4 --scale 0 --json PROFILE_sa.json
	dune exec bin/rpb.exe -- profile --bench hist --threads 4 --scale 0 --json PROFILE_hist.json

# CI check-race job: the differential oracle (every benchmark under the
# deterministic sequential executor, its shuffled variant, and the
# work-stealing pool, with element-wise output diffs) plus the shadow-array
# race-detector self-check, written as a machine-readable CHECK_*.json
# artifact.
check-race:
	dune exec bin/rpb.exe -- check --seed 42 --json CHECK_report.json

# CI check-fault job: the scheduler fault-injection sweep (every benchmark
# under seeded task-exception / slow-scheduler / degraded-pool schedules;
# each run must either complete with the correct digest or raise cleanly
# before its deadline), written as a machine-readable FAULT_*.json artifact.
# The outer timeout is the hang detector of last resort.
check-fault:
	timeout 900 dune exec bin/rpb.exe -- faults --seed 42 --deadline 30 --json FAULT_report.json

# Statistical no-false-positive check: two fresh runs of the same binary
# must compare clean — `rpb compare` only flags a configuration when the
# change clears a noise-widened band AND a permutation test over the
# per-repeat samples agrees (exit 3 = flagged regression).
compare-smoke:
	dune exec bin/rpb.exe -- bench sort --scale 0 --repeats 5 --threads 4 --json BENCH_smoke_a.json
	dune exec bin/rpb.exe -- bench sort --scale 0 --repeats 5 --threads 4 --json BENCH_smoke_b.json
	dune exec bin/rpb.exe -- compare BENCH_smoke_a.json BENCH_smoke_b.json --json COMPARE_smoke.json

# CI perf-gate job: fresh per-repeat samples for every benchmark, compared
# against the committed baseline store (bench/baselines/).  The committed
# baselines come from a different machine class, so the gate runs with a
# 1.0 (i.e. 2x) flat threshold and only catches gross regressions — the
# tight same-machine trajectory is compare-smoke's job.  The compare's exit
# status (3 = flagged regression) is captured, the dashboard + markdown
# digest are built regardless, and the status is re-raised at the end — so
# a failing gate still ships the report that explains the failure.
perf-gate:
	dune exec bin/rpb.exe -- bench all --scale 0 --repeats 5 --threads 4 --seq --json BENCH_gate.json
	status=0; \
	dune exec bin/rpb.exe -- compare bench/baselines BENCH_gate.json --threshold 1.0 --json COMPARE_gate.json || status=$$?; \
	dune exec bin/rpb.exe -- report BENCH_gate.json COMPARE_gate.json -o REPORT_perf_gate.html --md REPORT_perf_gate.md; \
	exit $$status

# CI policy-race job: the named scheduling policies raced head-to-head on
# one benchmark from each end of the registry's fear spectrum (sort is the
# mildest — comfortable, RngInd — and sa/hist carry arbitrary writes), at
# smoke scale.  Emits the per-policy records as one POLICY_*.json artifact
# plus the dashboard with the winner table.
policy-race-smoke:
	dune exec bench/main.exe -- --policy-race --race-benchmarks sort,sa,hist \
	  --policies default,steal_half,work_first,sticky,lazy \
	  --scale 0 --repeats 3 --json POLICY_race.json
	dune exec bin/rpb.exe -- report POLICY_race.json -o REPORT_policy_race.html --md REPORT_policy_race.md
	test -s REPORT_policy_race.md

# CI granularity-smoke job: the splitter A/B at the adversarial grain.  The
# eager_grain1 / lazy_grain1 policies both force grain=1 on every defaulted
# loop (one deque task per index under the eager splitter), so hist's
# mutex-guarded Synchronized mode — the finest-grained, highest-overhead
# loop in the registry — becomes a worst-case burdened-parallelism probe.
# The lazy splitter must claw that overhead back by coarsening inline when
# its deque is already deep; both profile documents ship as artifacts so
# the job summary can put burdened parallelism side by side.
granularity-smoke:
	dune exec bin/rpb.exe -- profile --bench hist --mode sync --threads 4 --scale 0 \
	  --policy eager_grain1 --json PROFILE_grain_eager.json
	dune exec bin/rpb.exe -- profile --bench hist --mode sync --threads 4 --scale 0 \
	  --policy lazy_grain1 --json PROFILE_grain_lazy.json

# CI serve-smoke job: boot the request server in-process and drive it with
# the chaos load generator — a forced-overload burst (32 back-to-back spin
# requests against an admission bound of 16, so load shedding must engage)
# plus mid-request client kills and reconnects.  loadgen exits 4 unless
# every request is accounted for (no lost or duplicate replies), no reply
# is malformed, and repeated runs of the same instance agree on the digest.
# Both kind="serve" artifacts feed the dashboard's latency section.  The
# outer timeout is the hang detector of last resort.
serve-smoke:
	timeout 300 dune exec bin/rpb.exe -- loadgen --boot \
	  --socket /tmp/rpb-serve-smoke.sock \
	  --clients 4 -n 12 --bench hist,sort --bench spin --spin-ms 25 \
	  --burst 32 --max-queue 16 --kill-every 9 --seed 42 \
	  --json SERVE_loadgen.json --server-json SERVE_server.json
	dune exec bin/rpb.exe -- report SERVE_loadgen.json SERVE_server.json \
	  -o REPORT_serve.html --md REPORT_serve.md
	test -s REPORT_serve.md

# CI metrics-smoke job: the live metrics plane end to end.  A long-lived
# server is started with snapshot streaming armed (one kind=metrics JSONL
# line every 250 ms plus the slow-request scheduler-profile log), the
# chaos load generator drives it over the same socket, and `rpb top
# --check` then takes consecutive verb=stats snapshots over the serve
# protocol and asserts the snapshot invariants — counters monotone,
# sequence advancing, and every latency histogram's totals reconciling
# with the request status counters (exit 4 on a violation).  The server
# boot/drain choreography lives in scripts/with_server.sh (shared with
# slo-smoke): the binary is prebuilt and run from _build directly so
# concurrent processes never contend on the dune lock, the server is
# drained with SIGTERM, and the outer timeouts are the hang detectors of
# last resort.
metrics-smoke:
	dune build bin/rpb.exe
	rm -f METRICS_serve.jsonl
	server='--threads 4 --max-queue 16 --preload hist --preload sort'; \
	server="$$server --metrics-json METRICS_serve.jsonl --metrics-interval 0.25"; \
	server="$$server --slow-log 4 --slow-pctl 90"; \
	server="$$server --json SERVE_metrics_server.json --quiet"; \
	drive='timeout 300 $$RPB loadgen --socket $$SOCK'; \
	drive="$$drive --clients 4 -n 12 --bench hist,sort --bench spin --spin-ms 25"; \
	drive="$$drive --burst 24 --kill-every 9 --seed 42"; \
	drive="$$drive --json SERVE_metrics_loadgen.json"; \
	drive="$$drive && timeout 60 \$$RPB top --socket \$$SOCK --check -n 2 --interval 0.3"; \
	scripts/with_server.sh /tmp/rpb-metrics-smoke.sock "$$server" "$$drive"
	grep -q '"kind":"metrics"' METRICS_serve.jsonl
	dune exec bin/rpb.exe -- report METRICS_serve.jsonl \
	  SERVE_metrics_loadgen.json SERVE_metrics_server.json \
	  -o REPORT_metrics.html --md REPORT_metrics.md
	test -s REPORT_metrics.md
	grep -q 'Live metrics' REPORT_metrics.md

# CI slo-smoke job: the SLO engine and health plane end to end.  A server
# boots with a tight latency objective and second-scale burn windows; the
# health verb must report ok at boot, degrade to unhealthy (both windows
# paging) while a spin-heavy load burns the budget — with admission
# visibly tightened (the effective queue cap drops and overload sheds
# carry a scaled retry hint) — and recover to ok once the load stops and
# hysteresis steps the level back down.  The drained JSONL then replays
# offline: `rpb slo --check` must exit 0 against a loose objective and 4
# against the tight one (the injected violation), and the kind=slo
# artifact feeds the dashboard's "SLO & error budget" section.
slo-smoke:
	dune build bin/rpb.exe
	rm -f SLO_metrics.jsonl SLO_replay.json
	server='--threads 2 --max-queue 8'; \
	server="$$server --metrics-json SLO_metrics.jsonl --metrics-interval 0.25"; \
	server="$$server --slo latency:serve.exec_ms:p95<5;avail:0.99"; \
	server="$$server --slo-fast-s 1.5 --slo-slow-s 6 --quiet"; \
	drive='set -e; timeout 30 $$RPB slo --socket $$SOCK --expect ok --wait 10; '; \
	drive="$$drive( i=0; while test \$$i -lt 6; do"; \
	drive="$$drive timeout 60 \$$RPB loadgen --socket \$$SOCK --clients 4 -n 20"; \
	drive="$$drive --bench spin --spin-ms 25 --mean-gap-ms 1 --seed \$$i"; \
	drive="$$drive --max-retries 2 --quiet >/dev/null 2>&1 || true;"; \
	drive="$$drive i=\$$((i + 1)); done ) & load=\$$!;"; \
	drive="$$drive timeout 60 \$$RPB slo --socket \$$SOCK --expect unhealthy --wait 45;"; \
	drive="$$drive wait \$$load;"; \
	drive="$$drive timeout 60 \$$RPB slo --socket \$$SOCK --expect ok --wait 30"; \
	scripts/with_server.sh /tmp/rpb-slo-smoke.sock "$$server" "$$drive"
	grep -q '"slo.level"' SLO_metrics.jsonl
	timeout 60 _build/default/bin/rpb.exe slo SLO_metrics.jsonl \
	  --slo 'latency:serve.exec_ms:p95<5000;avail:0.5' \
	  --fast-s 1.5 --slow-s 6 --check
	timeout 60 _build/default/bin/rpb.exe slo SLO_metrics.jsonl \
	  --slo 'latency:serve.exec_ms:p95<5' --fast-s 1.5 --slow-s 6 \
	  --json SLO_replay.json --check; \
	  test $$? -eq 4
	dune exec bin/rpb.exe -- report SLO_replay.json SLO_metrics.jsonl \
	  -o REPORT_slo.html --md REPORT_slo.md
	grep -q 'SLO & error budget' REPORT_slo.md

# Refresh the committed baseline store from this machine (then commit the
# changed bench/baselines/*.json).
save-baseline:
	dune exec bin/rpb.exe -- bench all --scale 0 --repeats 5 --threads 4 --seq --save-baseline

# One unified dashboard out of freshly generated artifacts (bench + profile).
report-smoke:
	dune exec bin/rpb.exe -- bench sort --scale 0 --repeats 3 --threads 4 --seq --json BENCH_report_smoke.json
	dune exec bin/rpb.exe -- profile --bench sort --threads 4 --scale 0 --json PROFILE_report_smoke.json
	dune exec bin/rpb.exe -- report BENCH_report_smoke.json PROFILE_report_smoke.json -o REPORT_smoke.html --md REPORT_smoke.md
	test -s REPORT_smoke.html

examples:
	dune exec examples/quickstart.exe
	dune exec examples/fear_spectrum.exe
	dune exec examples/text_index.exe
	dune exec examples/graph_analytics.exe
	dune exec examples/mesh_refinement.exe
	dune exec examples/transactions.exe
	dune exec examples/failure_semantics.exe
	dune exec examples/granularity.exe

doc:
	dune build @doc

clean:
	dune clean
