(* RPB benchmark harness: regenerates every table and figure of the paper.

   Usage:
     dune exec bench/main.exe                 -- everything (default sizes)
     dune exec bench/main.exe -- table1       -- a single artifact
     dune exec bench/main.exe -- fig4 --scale 4 --threads 4 --repeats 5
     dune exec bench/main.exe -- bechamel     -- Bechamel versions (one
                                                 Test.make per table/figure)
     dune exec bench/main.exe -- table1 --scale 0 --repeats 1 --json out.json

   Artifacts: table1 table2 table3 fig3 fig4 fig5a fig5b fig6 ablation
   bechamel.  (Fig. 2, the fear spectrum, is printed with table3.)

   With --json FILE every timed benchmark run additionally appends a
   machine-readable record (name, mode, scale, repeats, mean/min ns, and the
   per-worker steal/task counters from Pool.Stats); the collected records are
   written as one Bench_json document CI archives as BENCH_*.json.  table1,
   which is otherwise untimed, times one quick run per benchmark in this mode
   so a bench-smoke job gets real telemetry out of the cheapest artifact. *)

open Rpb_benchmarks

let default_threads =
  (* The container may expose a single core; we still run multiple domains so
     every cross-domain code path is exercised. *)
  max 4 (min 8 (Domain.recommended_domain_count ()))

type config = {
  scale : int;
  threads : int;
  repeats : int;
  json : string option;
  metrics_json : string option;
      (* --metrics-json: run with the live metrics plane enabled and append
         one kind=metrics snapshot per artifact (plus a final one) as JSONL.
         Off by default so timed runs pay only the disabled-path atomic
         load. *)
  policies : string list;  (* --policies, consumed by the policy-race artifact *)
  race_benchmarks : string list option;  (* --race-benchmarks, default: all *)
}

(* Records accumulated for --json, in run order. *)
let records : Bench_json.record list ref = ref []
let json_active = ref false
let record_result r = if !json_active then records := r :: !records

let line () = print_endline (String.make 78 '-')

let header title =
  line ();
  Printf.printf "%s\n" title;
  line ()

let metrics_active = ref false

let with_pool ?policy n f =
  let pool = Rpb_pool.Pool.create ?policy ~num_workers:n () in
  (* Latest pool wins the pool.* probes — each artifact's measurement pool
     shows up in the snapshot stream while it is the one doing work. *)
  if !metrics_active then Rpb_obs.Metrics.register_pool pool;
  Fun.protect ~finally:(fun () -> Rpb_pool.Pool.shutdown pool) (fun () -> f pool)

(* The paper reports means over repeats on a quiet dedicated machine; on a
   shared container the min is the standard noise-robust estimator, so the
   human tables report min-of-repeats (the JSON records carry both). *)
let time_benchmark ?(smoke = false) pool cfg e input how =
  let record, size =
    Registry.measure_entry ~smoke pool ~entry:e ~input ~scale:cfg.scale
      ~repeats:cfg.repeats ~how
  in
  record_result record;
  (record.Bench_json.min_ns /. 1e9, record.Bench_json.verified, size)

(* Every ad-hoc timing below (fig6, ablation, extras) goes through this one
   sampling call: the workload runs exactly [repeats] times and every
   estimator — mean for the paper-style tables, min for the extras — is
   derived from the same per-repeat sample vector, never from separate
   re-runs per estimator. *)
let sampled cfg f = Rpb_prim.Timing.samples ~repeats:cfg.repeats f
let mean_t ts = Rpb_obs.Stats.mean ts
let best_t ts = Rpb_obs.Stats.minimum ts

(* ------------------------------------------------------------------ *)
(* Table 1: benchmarks and their parallel access patterns.              *)

let table1 cfg =
  header "Table 1: Ported benchmarks and their parallel access patterns";
  let pats = Rpb_core.Pattern.all_accesses in
  Printf.printf "%-6s %-38s %-14s" "Abbrv" "Benchmark name" "Inputs";
  List.iter (fun p -> Printf.printf " %-7s" (Rpb_core.Pattern.access_name p)) pats;
  Printf.printf " %-7s\n" "dispatch";
  List.iter
    (fun e ->
      Printf.printf "%-6s %-38s %-14s" e.Common.name e.Common.full_name
        (String.concat "," e.Common.inputs);
      List.iter
        (fun p ->
          Printf.printf " %-7s"
            (if List.mem p e.Common.patterns then "x" else ""))
        pats;
      Printf.printf " %-7s\n" (if e.Common.dynamic then "dynamic" else "static"))
    Registry.all;
  (* In --json mode the registry listing also times one quick run per
     benchmark (default input, unsafe mode) so the machine-readable output
     carries real per-benchmark timing and per-worker steal/task counters
     even for this otherwise untimed artifact. *)
  if !json_active then begin
    Printf.printf
      "\n(--json: one smoke run per benchmark for the machine-readable \
       output)\n";
    with_pool cfg.threads (fun pool ->
        List.iter
          (fun e ->
            let input = List.hd e.Common.inputs in
            (* smoke-flagged: one-shot runs, excluded from `rpb compare` *)
            let t, ok, size =
              time_benchmark ~smoke:true pool cfg e input (`Par Mode.Unsafe)
            in
            Printf.printf "  %-6s %-28s %10.4f s  [%s]\n" e.Common.name
              (Printf.sprintf "%s (%s)" input size)
              t
              (if ok then "ok" else "VERIFY-FAILED");
            flush stdout)
          Registry.all)
  end

(* ------------------------------------------------------------------ *)
(* Table 2: input graphs.                                               *)

let table2 cfg =
  header "Table 2: Input graphs (scaled stand-ins; paper: link/rmat/road)";
  Printf.printf "%-10s %-12s %12s %12s %8s %8s\n" "Name" "Stand-in for" "|V|" "|E|"
    "|E|/|V|" "maxdeg";
  with_pool cfg.threads (fun pool ->
      Rpb_pool.Pool.run pool (fun () ->
          List.iter
            (fun (name, orig) ->
              let g =
                Rpb_graph.Generate.by_name pool ~name
                  ~scale:(Graph_inputs.base_scale + cfg.scale)
                  ~weighted:false
              in
              Printf.printf "%-10s %-12s %12d %12d %8.1f %8d\n" name orig
                (Rpb_graph.Csr.n g) (Rpb_graph.Csr.m g)
                (Rpb_graph.Csr.avg_degree g)
                (Rpb_graph.Csr.max_degree pool g))
            [ ("link", "Hyperlink"); ("rmat", "R-MAT"); ("road", "USA roads") ]))

(* ------------------------------------------------------------------ *)
(* Table 3 + Fig. 2: patterns, expressions, fear spectrum.              *)

let table3 _cfg =
  header "Table 3: Studied patterns and their safety levels";
  Printf.printf "%-7s %-55s %s\n" "Abbr." "Parallel expression (our OCaml analogue)"
    "Fear";
  List.iter
    (fun p ->
      Printf.printf "%-7s %-55s %s\n"
        (Rpb_core.Pattern.access_name p)
        (Rpb_core.Pattern.expression p)
        (Rpb_core.Pattern.fear_name (Rpb_core.Pattern.safety p)))
    Rpb_core.Pattern.all_accesses;
  print_newline ();
  print_endline "Fig. 2: spectrum of fear:";
  print_endline "  F (fearless)    errors caught at compile time";
  print_endline "  C (comfortable) errors caught at run time, symptom near cause";
  print_endline "  S (scared)      errors may happen without being detected"

(* ------------------------------------------------------------------ *)
(* Fig. 3: distribution of access patterns.                             *)

let fig3 _cfg =
  header "Fig. 3: Distribution of access patterns in RPB (ours vs paper)";
  let paper =
    Rpb_core.Pattern.
      [ (RO, 11.0); (Stride, 52.0); (Block, 3.0); (DandC, 5.0); (SngInd, 13.0);
        (RngInd, 7.0); (AW, 9.0) ]
  in
  Printf.printf "%-8s %8s %8s %8s\n" "Pattern" "sites" "ours(%)" "paper(%)";
  let irregular = ref 0.0 in
  List.iter
    (fun (p, c, pct) ->
      (match p with
       | Rpb_core.Pattern.SngInd | Rpb_core.Pattern.RngInd | Rpb_core.Pattern.AW ->
         irregular := !irregular +. pct
       | _ -> ());
      Printf.printf "%-8s %8d %8.1f %8.1f\n"
        (Rpb_core.Pattern.access_name p)
        c pct
        (List.assoc p paper))
    (Registry.access_distribution ());
  Printf.printf "\nIrregular share (SngInd+RngInd+AW): ours %.1f%%, paper 29%%\n"
    !irregular

(* ------------------------------------------------------------------ *)
(* Fig. 4: execution time, parallel vs sequential baseline, 1 and P.    *)

let all_benchmark_inputs () =
  List.concat_map
    (fun e -> List.map (fun input -> (e, input)) e.Common.inputs)
    Registry.all

let fig4 cfg =
  header
    (Printf.sprintf
       "Fig. 4: RPB (parallel, unsafe switch) vs baseline (sequential), %d repeats"
       cfg.repeats);
  Printf.printf
    "(paper compares Rust+Rayon against C+++OpenCilk on 1 and 24 cores;\n\
    \ here: our parallel runtime at 1 and %d domains vs sequential OCaml)\n\n"
    cfg.threads;
  Printf.printf "%-12s %-28s %10s %10s %10s %9s %7s %4s\n" "bench" "input" "seq(s)"
    "par1(s)" "parP(s)" "par1/seq" "scale" "ok";
  List.iter
    (fun (e, input) ->
      let seq_t, seq_ok, size =
        with_pool 1 (fun pool -> time_benchmark pool cfg e input `Seq)
      in
      let par1_t, par1_ok, _ =
        with_pool 1 (fun pool -> time_benchmark pool cfg e input (`Par Mode.Unsafe))
      in
      let parp_t, parp_ok, _ =
        with_pool cfg.threads (fun pool ->
            time_benchmark pool cfg e input (`Par Mode.Unsafe))
      in
      Printf.printf "%-12s %-28s %10.4f %10.4f %10.4f %9.2f %7.2f %4s\n"
        e.Common.name
        (Printf.sprintf "%s (%s)" input size)
        seq_t par1_t parp_t (par1_t /. seq_t) (par1_t /. parp_t)
        (if seq_ok && par1_ok && parp_ok then "yes" else "NO");
      flush stdout)
    (all_benchmark_inputs ());
  print_newline ();
  print_endline
    "par1/seq ~ the paper's Fig. 4(a) ratio (runtime abstraction cost at 1 thread);";
  print_endline
    "scale = par1/parP ~ the Fig. 4(b) scaling dots (flat on a 1-core container)."

(* ------------------------------------------------------------------ *)
(* Fig. 5a: overhead of checked (interior-unsafe) SngInd on bw/lrs/sa.  *)

let fig5a cfg =
  header "Fig. 5(a): overhead of run-time offset checking (checked / unsafe)";
  Printf.printf "%-12s %12s %12s %10s   %s\n" "bench" "unsafe(s)" "checked(s)"
    "ratio" "paper(24t)";
  let paper = [ ("bw", "~1.0x"); ("lrs", "~2.8x"); ("sa", "~2.0x") ] in
  List.iter
    (fun name ->
      match Registry.find name with
      | None -> ()
      | Some e ->
        let input = List.hd e.Common.inputs in
        let tu, oku, _ =
          with_pool cfg.threads (fun pool ->
              time_benchmark pool cfg e input (`Par Mode.Unsafe))
        in
        let tc, okc, _ =
          with_pool cfg.threads (fun pool ->
              time_benchmark pool cfg e input (`Par Mode.Checked))
        in
        Printf.printf "%-12s %12.4f %12.4f %9.2fx   %s%s\n" name tu tc (tc /. tu)
          (List.assoc name paper)
          (if oku && okc then "" else "  VERIFY-FAILED");
        flush stdout)
    [ "bw"; "lrs"; "sa" ]

(* ------------------------------------------------------------------ *)
(* Fig. 5b: overhead of unnecessary synchronization.                    *)

let fig5b cfg =
  header "Fig. 5(b): overhead of unnecessary synchronization (sync / unsafe)";
  Printf.printf "%-12s %-10s %12s %12s %10s\n" "bench" "input" "unsafe(s)"
    "sync(s)" "ratio";
  let subjects =
    [ "bw"; "lrs"; "sa"; "mis"; "mm"; "msf"; "sf"; "hist"; "sort"; "isort"; "dedup" ]
  in
  List.iter
    (fun name ->
      match Registry.find name with
      | None -> ()
      | Some e ->
        List.iter
          (fun input ->
            let tu, oku, _ =
              with_pool cfg.threads (fun pool ->
                  time_benchmark pool cfg e input (`Par Mode.Unsafe))
            in
            let ts, oks, _ =
              with_pool cfg.threads (fun pool ->
                  time_benchmark pool cfg e input (`Par Mode.Synchronized))
            in
            Printf.printf "%-12s %-10s %12.4f %12.4f %9.2fx%s\n" name input tu ts
              (ts /. tu)
              (if oku && oks then "" else "  VERIFY-FAILED");
            flush stdout)
          e.Common.inputs)
    subjects;
  print_newline ();
  print_endline
    "paper: negligible overhead with relaxed atomics, except hist (multi-word";
  print_endline "accumulator, mutex-only) at 4.0x."

(* ------------------------------------------------------------------ *)
(* Fig. 6 / Appendix A.                                                 *)

let fig6 cfg =
  header "Fig. 6 / Appendix A: parallelization strategies for vector hashing";
  let n = 1 lsl (16 + cfg.scale) in
  Printf.printf "vector: %d elements; workers: %d\n\n" n cfg.threads;
  Printf.printf "%-22s %12s %8s   %s\n" "variant" "time(s)" "LoC" "notes";
  with_pool cfg.threads (fun pool ->
      Rpb_pool.Pool.run pool (fun () ->
          let input = Array.init n (fun i -> i) in
          let expected_sample = Appendix_a.task input.(42) in
          List.iter
            (fun v ->
              let data = Array.copy input in
              match
                sampled cfg (fun () ->
                    Array.blit input 0 data 0 n;
                    v.Appendix_a.run ~workers:cfg.threads ~pool data)
              with
              | (), ts ->
                let t = mean_t ts in
                let ok = data.(42) = expected_sample in
                Printf.printf "%-22s %12.4f %8d   %s\n" v.Appendix_a.name t
                  v.Appendix_a.lines_of_code
                  (if ok then "" else "WRONG RESULT");
                flush stdout
              | exception Appendix_a.Infeasible msg ->
                Printf.printf "%-22s %12s %8d   %s\n" v.Appendix_a.name "panic"
                  v.Appendix_a.lines_of_code msg;
                flush stdout)
            Appendix_a.variants))

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md design choices).                                *)

let ablation cfg =
  header "Ablations: design choices called out in DESIGN.md";
  with_pool cfg.threads (fun pool ->
      Rpb_pool.Pool.run pool (fun () ->
          (* 1. parallel_for grain size. *)
          let n = 1 lsl (18 + cfg.scale) in
          let v = Array.init n (fun i -> i) in
          Printf.printf "1. parallel_for grain (n = %d):\n" n;
          List.iter
            (fun grain ->
              let (), ts =
                sampled cfg (fun () ->
                    Rpb_pool.Pool.parallel_for ~grain ~start:0 ~finish:n
                      ~body:(fun i -> Array.unsafe_set v i (Rpb_prim.Rng.hash64 i))
                      pool)
              in
              Printf.printf "   grain %8d: %10.4f s\n" grain (mean_t ts))
            [ 64; 1024; 16384; n / (8 * cfg.threads) ];
          (* 2. Scatter uniqueness-check strategy. *)
          let m = 1 lsl (16 + cfg.scale) in
          let offsets = Rpb_prim.Rng.permutation (Rpb_prim.Rng.create 5) m in
          Printf.printf "2. SngInd uniqueness check strategy (m = %d):\n" m;
          List.iter
            (fun (name, strategy) ->
              let (), ts =
                sampled cfg (fun () ->
                    Rpb_core.Scatter.validate_offsets ~strategy pool ~n:m offsets)
              in
              Printf.printf "   %-12s %10.4f s\n" name (mean_t ts))
            [ ("mark-table", Rpb_core.Scatter.Mark_table);
              ("sort-based", Rpb_core.Scatter.Sort_based) ];
          (* 3. MultiQueue lane multiplier on sssp. *)
          let g =
            Rpb_graph.Generate.by_name pool ~name:"road"
              ~scale:(Graph_inputs.base_scale + cfg.scale) ~weighted:true
          in
          Printf.printf "3. MultiQueue lanes-per-worker (sssp on road %s):\n"
            (Graph_inputs.describe g);
          List.iter
            (fun c ->
              let (), ts =
                sampled cfg (fun () ->
                    ignore
                      (Rpb_graph.Traverse.sssp ~queues_per_worker:c pool g ~src:0))
              in
              Printf.printf "   c = %d: %10.4f s\n" c (mean_t ts))
            [ 1; 2; 4 ];
          (* 4. bw decode: sequential chase vs parallel list ranking. *)
          let text = Rpb_text.Text_gen.wiki ~size:(1 lsl (14 + cfg.scale)) ~seed:31 in
          let encoded = Rpb_text.Bwt.encode pool text in
          Printf.printf "4. bw decode strategy (%d bytes):\n" (String.length text);
          List.iter
            (fun (name, f) ->
              let (), ts = sampled cfg f in
              Printf.printf "   %-22s %10.4f s\n" name (mean_t ts))
            [
              ("sequential chase", fun () -> ignore (Rpb_text.Bwt.decode pool encoded));
              ( "parallel list-ranking",
                fun () -> ignore (Rpb_text.Bwt.decode_parallel pool encoded) );
            ];
          (* 5. Sample sort oversampling. *)
          let rng = Rpb_prim.Rng.create 6 in
          let keys = Array.init m (fun _ -> Rpb_prim.Rng.int rng 1_000_000) in
          Printf.printf "5. sample sort oversampling (n = %d):\n" m;
          List.iter
            (fun ov ->
              let (), ts =
                sampled cfg (fun () ->
                    ignore
                      (Rpb_parseq.Sort.sample_sort_with ~oversample:ov pool
                         ~cmp:compare keys))
              in
              Printf.printf "   oversample %3d: %10.4f s\n" ov (mean_t ts))
            [ 2; 8; 32 ]))

(* ------------------------------------------------------------------ *)
(* Extensions: the beyond-the-paper benchmarks (absent patterns + extra
   PBBS workloads), timed for completeness.                             *)

let extras cfg =
  header "Extensions: absent patterns and extra PBBS workloads";
  with_pool cfg.threads (fun pool ->
      Rpb_pool.Pool.run pool (fun () ->
          let t name f =
            let x, ts = sampled cfg f in
            Printf.printf "%-34s %10.4f s   %s\n" name (best_t ts) x;
            flush stdout
          in
          let g =
            Rpb_graph.Generate.by_name pool ~name:"rmat"
              ~scale:(Graph_inputs.base_scale + cfg.scale) ~weighted:false
          in
          t "pagerank (pull, 20 iters)" (fun () ->
              let r = Rpb_graph.Pagerank.compute pool g in
              Printf.sprintf "mass %.4f" (Array.fold_left ( +. ) 0.0 r));
          t "pagerank (push+mutex, 20 iters)" (fun () ->
              let r =
                Rpb_graph.Pagerank.compute ~method_:Rpb_graph.Pagerank.Push_mutex
                  pool g
              in
              Printf.sprintf "mass %.4f" (Array.fold_left ( +. ) 0.0 r));
          let pts = Rpb_geom.Pointgen.uniform_square ~n:(2_000 * (1 lsl cfg.scale)) ~seed:61 in
          t "quickhull" (fun () ->
              Printf.sprintf "hull %d"
                (Array.length (Rpb_geom.Quickhull.convex_hull pool pts)));
          t "knn (build + 1k queries)" (fun () ->
              let tree = Rpb_geom.Quadtree.build pool pts in
              let queries = Rpb_geom.Pointgen.uniform_square ~n:1_000 ~seed:62 in
              let r = Rpb_geom.Quadtree.nearest_neighbors pool tree queries in
              Printf.sprintf "answers %d" (Array.length r));
          let bodies = Rpb_geom.Nbody.random_bodies ~n:(500 * (1 lsl cfg.scale)) ~seed:63 in
          t "nbody (Barnes-Hut forces)" (fun () ->
              let ax, _ = Rpb_geom.Nbody.forces pool bodies in
              Printf.sprintf "n %d" (Array.length ax));
          let text = Rpb_text.Text_gen.wiki ~size:(8_000 * (1 lsl cfg.scale)) ~seed:64 in
          t "word count" (fun () ->
              Printf.sprintf "distinct %d"
                (Array.length (Rpb_text.Word_count.count pool text)));
          t "stm (10k transfers, 4 domains)" (fun () ->
              let accounts = Array.init 8 (fun _ -> Rpb_extra.Stm.tvar 100) in
              let ds =
                Array.init 4 (fun d ->
                    Domain.spawn (fun () ->
                        let rng = Rpb_prim.Rng.create (700 + d) in
                        for _ = 1 to 2_500 do
                          let a = Rpb_prim.Rng.int rng 8 in
                          let b = (a + 1) mod 8 in
                          Rpb_extra.Stm.atomically (fun tx ->
                              let x = Rpb_extra.Stm.read tx accounts.(a) in
                              Rpb_extra.Stm.write tx accounts.(a) (x - 1);
                              Rpb_extra.Stm.write tx accounts.(b)
                                (Rpb_extra.Stm.read tx accounts.(b) + 1))
                        done))
              in
              Array.iter Domain.join ds;
              let total = Array.fold_left (fun acc v -> acc + Rpb_extra.Stm.get v) 0 accounts in
              Printf.sprintf "conserved %b" (total = 800));
          t "pipeline (3 stages, 100k items)" (fun () ->
              let p =
                Rpb_extra.Pipeline.(
                  stage (fun x -> x * 3) >>> stage (fun x -> x + 1)
                  >>> stage (fun x -> x land 0xFFFF))
              in
              let out = Rpb_extra.Pipeline.run p (Array.init 100_000 Fun.id) in
              Printf.sprintf "items %d" (Array.length out));
          t "branch&bound knapsack (26 items)" (fun () ->
              let items, capacity = Rpb_extra.Branch_bound.Knapsack.random_instance ~n:26 ~seed:65 in
              Printf.sprintf "optimum %d"
                (Rpb_extra.Branch_bound.maximize pool
                   (Rpb_extra.Branch_bound.Knapsack.problem items ~capacity)))))

(* ------------------------------------------------------------------ *)
(* Bechamel: one Test.make per table/figure.                            *)

let bechamel cfg =
  header "Bechamel micro-harness (one Test.make per table/figure)";
  let open Bechamel in
  let open Toolkit in
  with_pool cfg.threads (fun pool ->
      Rpb_pool.Pool.run pool (fun () ->
          let quick name prep = Test.make ~name (Staged.stage prep) in
          (* Small fixed inputs so each Bechamel test runs in milliseconds. *)
          let text = Rpb_text.Text_gen.wiki ~size:2_000 ~seed:7 in
          let encoded = Rpb_text.Bwt.encode pool text in
          let g =
            Rpb_graph.Generate.by_name pool ~name:"road"
              ~scale:Graph_inputs.base_scale ~weighted:true
          in
          let rng = Rpb_prim.Rng.create 8 in
          let keys = Array.init 20_000 (fun _ -> Rpb_prim.Rng.int rng 1_000_000) in
          let small_keys = Array.map (fun k -> k land 255) keys in
          let values = Array.map (fun k -> k land 1023) keys in
          let points = Rpb_geom.Pointgen.kuzmin ~n:120 ~seed:9 in
          let hash_input = Array.init 50_000 Fun.id in
          let tests =
            [
              quick "table1-registry" (fun () -> Registry.access_distribution ());
              quick "table2-graph-gen" (fun () ->
                  Rpb_graph.Generate.rmat pool ~scale:8 ~edge_factor:4 ());
              quick "table3-safety" (fun () ->
                  List.map Rpb_core.Pattern.safety Rpb_core.Pattern.all_accesses);
              quick "fig3-distribution" (fun () -> Registry.access_distribution ());
              quick "fig4-bw-decode" (fun () -> Rpb_text.Bwt.decode pool encoded);
              quick "fig4-sssp" (fun () -> Rpb_graph.Traverse.sssp pool g ~src:0);
              quick "fig4-sort" (fun () ->
                  Rpb_parseq.Sort.sample_sort pool ~cmp:compare keys);
              quick "fig4-hist" (fun () ->
                  Rpb_parseq.Histogram.histogram_stats
                    ~mode:Rpb_parseq.Histogram.Stats_private pool ~keys:small_keys
                    ~values ~buckets:256);
              quick "fig4-dr" (fun () ->
                  let mesh = Rpb_geom.Delaunay.triangulate points in
                  Rpb_geom.Refine.refine ~max_rounds:8 pool mesh);
              quick "fig5a-checked-scatter" (fun () ->
                  Rpb_text.Suffix_array.build
                    ~mode:Rpb_text.Suffix_array.Checked_scatter pool text);
              quick "fig5a-unsafe-scatter" (fun () ->
                  Rpb_text.Suffix_array.build
                    ~mode:Rpb_text.Suffix_array.Unchecked_scatter pool text);
              quick "fig5b-hist-mutex" (fun () ->
                  Rpb_parseq.Histogram.histogram_stats
                    ~mode:Rpb_parseq.Histogram.Stats_mutex pool ~keys:small_keys
                    ~values ~buckets:256);
              quick "fig6-pool-hash" (fun () ->
                  Rpb_core.Par_array.map_inplace pool Appendix_a.task
                    (Array.copy hash_input));
            ]
          in
          let test = Test.make_grouped ~name:"rpb" ~fmt:"%s/%s" tests in
          let ols =
            Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
          in
          let instances = Instance.[ monotonic_clock ] in
          let cfgb =
            Benchmark.cfg ~limit:50 ~quota:(Time.second 0.25) ~kde:(Some 5) ()
          in
          let raw_results = Benchmark.all cfgb instances test in
          let results =
            List.map (fun instance -> Analyze.all ols instance raw_results) instances
          in
          let results = Analyze.merge ols instances results in
          match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
          | None -> print_endline "no results"
          | Some tbl ->
            let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
            let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
            Printf.printf "%-32s %16s\n" "test" "ns/run";
            List.iter
              (fun (name, ols) ->
                match Analyze.OLS.estimates ols with
                | Some [ est ] -> Printf.printf "%-32s %16.1f\n" name est
                | _ -> Printf.printf "%-32s %16s\n" name "n/a")
              rows))

(* ------------------------------------------------------------------ *)
(* Work/span profile: one flight-recorder run per benchmark (also reachable
   as `bench/main.exe -- profile` or via the --profile flag).               *)

let profile cfg =
  header
    (Printf.sprintf
       "Work/span profile (flight recorder, unsafe mode, %d threads)"
       cfg.threads);
  Printf.printf "%-8s %-12s %10s %10s %8s %8s %7s %7s %8s\n" "bench" "input"
    "work" "span" "par" "burden" "tasks" "steals" "dropped";
  List.iter
    (fun e ->
      let name = e.Common.name in
      let r =
        Rpb_obs.Profile.profile ~bench:name ~threads:cfg.threads
          ~scale:cfg.scale ~seed:42 ()
      in
      let m = r.Rpb_obs.Profile.metrics in
      Printf.printf "%-8s %-12s %9.3fms %9.3fms %8.2f %8.2f %7d %7d %8d%s\n"
        name r.Rpb_obs.Profile.input
        (float_of_int m.Rpb_obs.Sp_dag.work_ns /. 1e6)
        (float_of_int m.Rpb_obs.Sp_dag.span_ns /. 1e6)
        m.Rpb_obs.Sp_dag.parallelism m.Rpb_obs.Sp_dag.burdened_parallelism
        m.Rpb_obs.Sp_dag.tasks m.Rpb_obs.Sp_dag.steals
        m.Rpb_obs.Sp_dag.dropped
        (if r.Rpb_obs.Profile.verified then "" else "  VERIFY-FAILED");
      flush stdout)
    Registry.all;
  print_newline ();
  print_endline
    "par = work/span (DAG parallelism); burden = work/burdened-span (after";
  print_endline
    "measured steal-migration delays); see `rpb profile` for the full report."

(* ------------------------------------------------------------------ *)
(* Policy race: every selected benchmark timed under every selected
   scheduling policy, with a per-benchmark winner and a per-fear-tier
   tally.  Records flow through the same --json path as everything else;
   each carries its pool's policy name, so `rpb report` renders the same
   table as its "Policy race" section.                                   *)

(* Worst access pattern of the entry, as the paper's one-letter fear tier. *)
let fear_tier (e : Common.entry) =
  let module P = Rpb_core.Pattern in
  let rank = function P.Fearless -> 0 | P.Comfortable -> 1 | P.Scared -> 2 in
  let worst =
    List.fold_left
      (fun acc p ->
        let f = P.safety p in
        if rank f > rank acc then f else acc)
      P.Fearless e.Common.patterns
  in
  P.fear_name worst

let policy_race cfg =
  let module Policy = Rpb_pool.Pool.Policy in
  let policies =
    List.map
      (fun name ->
        match Policy.find name with
        | Some p -> p
        | None ->
          Printf.eprintf "unknown policy %s; known: %s\n" name
            (String.concat ", " (Policy.names ()));
          exit 1)
      cfg.policies
  in
  let entries =
    match cfg.race_benchmarks with
    | None -> Registry.all
    | Some names ->
      List.map
        (fun n ->
          match Registry.find n with
          | Some e -> e
          | None ->
            Printf.eprintf "unknown benchmark %s; known: %s\n" n
              (String.concat ", " Registry.names);
            exit 1)
        names
  in
  header
    (Printf.sprintf
       "Policy race: %d policies x %d benchmarks (unsafe mode, %d threads, %d \
        repeats)"
       (List.length policies) (List.length entries) cfg.threads cfg.repeats);
  Printf.printf "%-6s %-4s %-12s" "bench" "tier" "input";
  List.iter
    (fun (p : Policy.t) -> Printf.printf " %12s" p.Policy.name)
    policies;
  Printf.printf "   %s\n" "winner";
  let wins = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let input = List.hd e.Common.inputs in
      let tier = fear_tier e in
      let times =
        List.map
          (fun (policy : Policy.t) ->
            let t, ok, _ =
              with_pool ~policy cfg.threads (fun pool ->
                  time_benchmark pool cfg e input (`Par Mode.Unsafe))
            in
            (policy.Policy.name, t, ok))
          policies
      in
      let winner, _, _ =
        List.fold_left
          (fun ((_, bt, _) as best) ((_, t, _) as cand) ->
            if t < bt then cand else best)
          (List.hd times) (List.tl times)
      in
      Hashtbl.replace wins (tier, winner)
        (1 + Option.value ~default:0 (Hashtbl.find_opt wins (tier, winner)));
      Printf.printf "%-6s %-4s %-12s" e.Common.name tier input;
      List.iter
        (fun (name, t, ok) ->
          Printf.printf " %11.4f%s" t
            (if not ok then "!" else if name = winner then "*" else " "))
        times;
      Printf.printf "   %s\n" winner;
      flush stdout)
    entries;
  print_newline ();
  print_endline "per-tier wins (* marks each row's winner, ! a verify failure):";
  List.iter
    (fun tier ->
      let tally =
        List.filter_map
          (fun (p : Policy.t) ->
            match Hashtbl.find_opt wins (tier, p.Policy.name) with
            | Some n -> Some (Printf.sprintf "%s %d" p.Policy.name n)
            | None -> None)
          policies
      in
      if tally <> [] then
        Printf.printf "  %-4s %s\n" tier (String.concat ", " tally))
    [ "F"; "C"; "S" ]

let artifacts =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5a", fig5a);
    ("fig5b", fig5b);
    ("fig6", fig6);
    ("ablation", ablation);
    ("extras", extras);
    ("bechamel", bechamel);
  ]

(* Not part of the default everything-run (profile re-times every benchmark;
   policy-race multiplies the registry by the policy list); selected
   explicitly by name or with the --profile / --policy-race flags. *)
let extra_artifacts = [ ("profile", profile); ("policy-race", policy_race) ]

let split_commas s = String.split_on_char ',' s |> List.filter (( <> ) "")

let parse_args () =
  let scale = ref 2 and threads = ref default_threads and repeats = ref 3 in
  let json = ref None in
  let metrics_json = ref None in
  let policies =
    ref [ "default"; "steal_half"; "work_first"; "sticky"; "lazy" ]
  in
  let race_benchmarks = ref None in
  let which = ref [] in
  let rec go = function
    | [] -> ()
    | "--scale" :: v :: rest ->
      scale := int_of_string v;
      go rest
    | "--threads" :: v :: rest ->
      threads := int_of_string v;
      go rest
    | "--repeats" :: v :: rest ->
      repeats := int_of_string v;
      go rest
    | "--json" :: v :: rest ->
      json := Some v;
      go rest
    | "--metrics-json" :: v :: rest ->
      metrics_json := Some v;
      go rest
    | "--profile" :: rest ->
      which := "profile" :: !which;
      go rest
    | "--policy-race" :: rest ->
      which := "policy-race" :: !which;
      go rest
    | "--policies" :: v :: rest ->
      policies := split_commas v;
      go rest
    | "--race-benchmarks" :: v :: rest ->
      race_benchmarks := Some (split_commas v);
      go rest
    | name :: rest ->
      which := name :: !which;
      go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  let which =
    match List.rev !which with [] -> List.map fst artifacts | l -> l
  in
  ( {
      scale = !scale;
      threads = !threads;
      repeats = !repeats;
      json = !json;
      metrics_json = !metrics_json;
      policies = !policies;
      race_benchmarks = !race_benchmarks;
    },
    which )

let write_json cfg which =
  match cfg.json with
  | None -> ()
  | Some path ->
    let meta =
      Bench_json.
        [
          ("generator", Str "rpb-bench");
          ("scale", Int cfg.scale);
          ("threads", Int cfg.threads);
          ("repeats", Int cfg.repeats);
          ("host_cores", Int (Domain.recommended_domain_count ()));
          ("artifacts", List (List.map (fun a -> Str a) which));
        ]
    in
    let rs = List.rev !records in
    Bench_json.write_doc ~path ~meta rs;
    Printf.printf "wrote %d benchmark records to %s\n" (List.length rs) path

let () =
  let cfg, which = parse_args () in
  json_active := cfg.json <> None;
  let metrics_oc =
    match cfg.metrics_json with
    | None -> None
    | Some path ->
      metrics_active := true;
      Rpb_obs.Metrics.enable ();
      ignore (Rpb_obs.Metrics.sample_gc_pauses ());
      Some (open_out path)
  in
  Printf.printf
    "RPB reproduction harness: scale=%d threads=%d repeats=%d (host cores: %d)\n"
    cfg.scale cfg.threads cfg.repeats
    (Domain.recommended_domain_count ());
  List.iter
    (fun name ->
      match List.assoc_opt name (artifacts @ extra_artifacts) with
      | Some f ->
        f cfg;
        Option.iter Rpb_obs.Metrics.write_snapshot_line metrics_oc
      | None ->
        Printf.eprintf "unknown artifact %s; known: %s\n" name
          (String.concat " "
             (List.map fst (artifacts @ extra_artifacts)));
        exit 1)
    which;
  (match metrics_oc with
  | Some oc ->
    Rpb_obs.Metrics.write_snapshot_line oc;
    close_out oc;
    Printf.printf "wrote metrics snapshots to %s\n"
      (Option.get cfg.metrics_json)
  | None -> ());
  write_json cfg which
