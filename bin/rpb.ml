(* rpb — command-line runner for the RPB benchmark suite.

   rpb list
   rpb patterns
   rpb run sa --input wiki --scale 3 --threads 4 --mode checked --repeats 3
   rpb run all --scale 1
   rpb stats --threads 4 --json stats.json --trace trace.json
   rpb check --seed 42 --json CHECK_report.json
   rpb profile --bench sort --threads 8 --json PROFILE_sort.json
   rpb bench all --repeats 7 --json BENCH_run.json --save-baseline
   rpb compare bench/baselines BENCH_run.json --threshold 0.1
   rpb report BENCH_run.json PROFILE_sort.json -o REPORT.html *)

open Cmdliner
open Rpb_benchmarks

(* Exit-code contract, uniform across subcommands (documented in the man
   page and README): 0 success; 2 usage error (bad flags, unknown
   benchmark/policy, unreadable artifacts); 3 perf gate failed (compare
   regression); 4 correctness/robustness violation (failed verification,
   oracle or fault-sweep violation, loadgen lost replies or digest
   mismatches). *)
let exit_ok = 0
let exit_usage = 2
let exit_gate = 3
let exit_violation = 4

let mode_conv =
  Arg.conv
    ( (fun s ->
        match Mode.of_string s with
        | Some m -> Ok m
        | None -> Error (`Msg ("unknown mode " ^ s))),
      fun fmt m -> Format.pp_print_string fmt (Mode.name m) )

let policy_conv =
  let module Policy = Rpb_pool.Pool.Policy in
  Arg.conv
    ( (fun s ->
        match Policy.find s with
        | Some p -> Ok p
        | None ->
          Error
            (`Msg
               (Printf.sprintf "unknown policy %s (have: %s)" s
                  (String.concat ", " (Policy.names ()))))),
      fun fmt (p : Policy.t) -> Format.pp_print_string fmt p.Policy.name )

let policy_arg =
  Arg.(value & opt policy_conv Rpb_pool.Pool.Policy.default
       & info [ "policy" ] ~docv:"POLICY"
           ~doc:"named scheduling policy for the work-stealing pool (see `rpb \
                 list` docs; e.g. default, steal_half, work_first, sticky, \
                 lazy, lazy_sticky, lazy_steal_half)")

let minor_heap_kb_arg =
  Arg.(value & opt (some int) None
       & info [ "minor-heap-kb" ] ~docv:"KB"
           ~doc:"size each worker domain's minor heap to $(docv) KiB for the \
                 measured pool (an allocation-overhead lever alongside \
                 --policy; the runtime default applies when omitted)")

let run_one ~name ~input ~scale ~threads ~mode ~repeats ~seq =
  match Registry.find name with
  | None ->
    Printf.eprintf "unknown benchmark %s (try `rpb list`)\n" name;
    exit_usage
  | Some e ->
    let input =
      match input with
      | Some i when List.mem i e.Common.inputs -> i
      | Some i ->
        Printf.eprintf "warning: %s is not a standard input for %s (have: %s)\n"
          i name
          (String.concat ", " e.Common.inputs);
        i
      | None -> List.hd e.Common.inputs
    in
    let pool = Rpb_pool.Pool.create ~num_workers:threads () in
    Fun.protect ~finally:(fun () -> Rpb_pool.Pool.shutdown pool) @@ fun () ->
    Rpb_pool.Pool.run pool (fun () ->
        let prepared = e.Common.prepare pool ~input ~scale in
        let runner =
          if seq then prepared.Common.run_seq
          else fun () -> prepared.Common.run_par mode
        in
        runner ();
        (* warm-up *)
        let (), t = Rpb_prim.Timing.mean_of ~repeats runner in
        let ok = prepared.Common.verify () in
        Printf.printf
          "%-6s input=%s (%s) %s threads=%d scale=%d: %.4f s  [%s]\n" name input
          prepared.Common.size
          (if seq then "seq" else "mode=" ^ Mode.name mode)
          threads scale t
          (if ok then "verified" else "VERIFICATION FAILED");
        if ok then exit_ok else exit_violation)

let list_cmd =
  let doc = "List the 14 RPB benchmarks with their inputs and patterns." in
  let run () =
    Printf.printf "%-6s %-40s %-14s %-9s %s\n" "name" "description" "inputs"
      "dispatch" "patterns";
    List.iter
      (fun e ->
        Printf.printf "%-6s %-40s %-14s %-9s %s\n" e.Common.name e.Common.full_name
          (String.concat "," e.Common.inputs)
          (if e.Common.dynamic then "dynamic" else "static")
          (String.concat " "
             (List.map Rpb_core.Pattern.access_name e.Common.patterns)))
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let patterns_cmd =
  let doc = "Show the pattern taxonomy and fear spectrum (paper Table 3)." in
  let run () =
    List.iter
      (fun p ->
        Printf.printf "%-7s %-55s %s\n"
          (Rpb_core.Pattern.access_name p)
          (Rpb_core.Pattern.expression p)
          (Rpb_core.Pattern.fear_name (Rpb_core.Pattern.safety p)))
      Rpb_core.Pattern.all_accesses
  in
  Cmd.v (Cmd.info "patterns" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run a benchmark (or `all`) and verify its output." in
  let bench_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc:"benchmark name or `all`")
  in
  let input =
    Arg.(value & opt (some string) None & info [ "input"; "i" ] ~docv:"INPUT")
  in
  let scale = Arg.(value & opt int 2 & info [ "scale"; "s" ] ~docv:"N") in
  let threads = Arg.(value & opt int 4 & info [ "threads"; "t" ] ~docv:"P") in
  let repeats = Arg.(value & opt int 3 & info [ "repeats"; "r" ] ~docv:"R") in
  let seq = Arg.(value & flag & info [ "seq" ] ~doc:"run the sequential baseline") in
  let mode =
    Arg.(value & opt mode_conv Mode.Unsafe
         & info [ "mode"; "m" ] ~docv:"MODE" ~doc:"unsafe | checked | sync")
  in
  let run name input scale threads mode repeats seq =
    let names = if name = "all" then Registry.names else [ name ] in
    let code =
      List.fold_left
        (fun acc n ->
          max acc (run_one ~name:n ~input ~scale ~threads ~mode ~repeats ~seq))
        0 names
    in
    exit code
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ bench_arg $ input $ scale $ threads $ mode $ repeats $ seq)

(* A deliberately steal-heavy synthetic workload: fine-grained fork-join
   leaves plus an unbalanced recursive join, so every per-worker counter
   (tasks, steals, idle waits, deque depth) moves at num_workers > 1. *)
let stats_workload pool ~tasks ~work =
  let sink = Atomic.make 0 in
  let spin k =
    let acc = ref 0 in
    for i = 1 to k do
      acc := !acc + (i * i)
    done;
    Atomic.fetch_and_add sink !acc |> ignore
  in
  Rpb_pool.Pool.run pool (fun () ->
      Rpb_pool.Pool.parallel_for ~grain:1 ~start:0 ~finish:tasks
        ~body:(fun _ -> spin work)
        pool;
      let rec unbalanced n =
        if n <= 1 then 1
        else
          let a, b =
            Rpb_pool.Pool.join pool
              (fun () -> unbalanced (n - 1))
              (fun () ->
                spin (work / 4);
                1)
          in
          a + b
      in
      ignore (unbalanced 64);
      ignore
        (Rpb_pool.Pool.parallel_for_reduce ~grain:16 ~start:0 ~finish:(tasks * 8)
           ~body:Fun.id ~combine:( + ) ~init:0 pool))

let stats_run ~threads ~tasks ~work ~json ~trace =
  let module Pool = Rpb_pool.Pool in
  let pool = Pool.create ~num_workers:threads () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  if trace <> None then Pool.Trace.start ();
  let before = Pool.Stats.capture pool in
  let (), elapsed =
    Rpb_prim.Timing.time (fun () -> stats_workload pool ~tasks ~work)
  in
  let after = Pool.Stats.capture pool in
  let s = Pool.Stats.diff ~before ~after in
  Printf.printf "synthetic workload: %d leaf tasks, %.4f s\n%s\n" tasks elapsed
    (Pool.Stats.to_string s);
  (match trace with
   | None -> ()
   | Some path ->
     let n = Pool.Trace.stop_to_file path in
     Printf.printf "wrote %d trace events to %s (chrome://tracing format)\n" n
       path);
  (match json with
   | None -> ()
   | Some path ->
     let record =
       {
         Bench_json.bench = "stats-workload";
         input = "synthetic";
         mode = "unsafe";
         scale = 0;
         threads;
         repeats = 1;
         mean_ns = elapsed *. 1e9;
         min_ns = elapsed *. 1e9;
         samples_ns = [| elapsed *. 1e9 |];
         smoke = false;
         policy = Pool.policy_name pool;
         verified = true;
         workers = Bench_json.workers_of_pool_stats s;
       }
     in
     Bench_json.write_doc ~path
       ~meta:[ ("generator", Bench_json.Str "rpb-stats") ]
       [ record ];
     Printf.printf "wrote telemetry record to %s\n" path);
  0

let stats_cmd =
  let doc =
    "Run a steal-heavy synthetic workload and report per-worker scheduler \
     telemetry (Pool.Stats), optionally as JSON and/or a Chrome trace."
  in
  let threads = Arg.(value & opt int 4 & info [ "threads"; "t" ] ~docv:"P") in
  let tasks =
    Arg.(value & opt int 512 & info [ "tasks" ] ~docv:"N" ~doc:"leaf task count")
  in
  let work =
    Arg.(value & opt int 20_000 & info [ "work" ] ~docv:"K" ~doc:"spin per leaf")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"write a Bench_json document")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"record task spans and write Chrome-trace JSON")
  in
  let run threads tasks work json trace =
    exit (stats_run ~threads ~tasks ~work ~json ~trace)
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(const run $ threads $ tasks $ work $ json $ trace)

let check_run ~seed ~bench ~threads ~scale ~policy ~json =
  match Rpb_check.Oracle.run ?bench ~threads ~scale ~policy ~seed () with
  | report ->
    print_string (Rpb_check.Oracle.summary report);
    (match json with
     | None -> ()
     | Some path ->
       Rpb_check.Oracle.write_json ~path report;
       Printf.printf "wrote check report to %s\n" path);
    if Rpb_check.Oracle.ok report then exit_ok else exit_violation
  | exception Invalid_argument msg ->
    Printf.eprintf "%s (try `rpb list`)\n" msg;
    exit_usage

let check_cmd =
  let doc =
    "Differential oracle + shadow-array self-check: run every benchmark \
     under the deterministic sequential executor (in-order and seeded \
     shuffled) and the work-stealing pool, diff output digests element-wise \
     against the sequential baseline, and verify the dynamic race detector \
     reports zero races on valid inputs while catching an injected \
     duplicate offset."
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N" ~doc:"seed for schedules and inputs")
  in
  let bench =
    Arg.(value & opt (some string) None
         & info [ "bench"; "b" ] ~docv:"BENCH"
             ~doc:"restrict to one benchmark (default: all)")
  in
  let threads = Arg.(value & opt int 4 & info [ "threads"; "t" ] ~docv:"P") in
  let scale = Arg.(value & opt int 0 & info [ "scale"; "s" ] ~docv:"S") in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"write the machine-readable report")
  in
  let run seed bench threads scale policy json =
    exit (check_run ~seed ~bench ~threads ~scale ~policy ~json)
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(const run $ seed $ bench $ threads $ scale $ policy_arg $ json)

let faults_run ~seed ~bench ~threads ~scale ~deadline ~policy ~json =
  match
    Rpb_check.Oracle.fault_sweep ?bench ~threads ~scale ~deadline ~policy ~seed
      ()
  with
  | report ->
    print_string (Rpb_check.Oracle.fault_summary report);
    (match json with
     | None -> ()
     | Some path ->
       Rpb_check.Oracle.write_fault_json ~path report;
       Printf.printf "wrote fault report to %s\n" path);
    if Rpb_check.Oracle.fault_ok report then exit_ok else exit_violation
  | exception Invalid_argument msg ->
    Printf.eprintf "%s (try `rpb list`)\n" msg;
    exit_usage

let faults_cmd =
  let doc =
    "Seeded fault-injection sweep: run every benchmark under Pool.Fault \
     schedules (injected task exceptions, steal delays, worker stalls, \
     spawn failures) and assert the failure-semantics contract — each run \
     either completes with the correct canonical digest or raises a clean \
     structured error within the deadline, never hangs, never returns a \
     torn result, and leaves the pool reusable."
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N" ~doc:"seed for the fault schedules")
  in
  let bench =
    Arg.(value & opt (some string) None
         & info [ "bench"; "b" ] ~docv:"BENCH"
             ~doc:"restrict to one benchmark (default: all)")
  in
  let threads = Arg.(value & opt int 4 & info [ "threads"; "t" ] ~docv:"P") in
  let scale = Arg.(value & opt int 0 & info [ "scale"; "s" ] ~docv:"S") in
  let deadline =
    Arg.(value & opt float 30.
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:"per-run watchdog deadline (Pool.Stalled past it)")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"write the machine-readable report")
  in
  let run seed bench threads scale deadline policy json =
    exit (faults_run ~seed ~bench ~threads ~scale ~deadline ~policy ~json)
  in
  Cmd.v (Cmd.info "faults" ~doc)
    Term.(const run $ seed $ bench $ threads $ scale $ deadline $ policy_arg
          $ json)

let profile_run ~bench ~input ~mode ~threads ~scale ~seed ~policy
    ~minor_heap_kb ~json =
  match
    Rpb_obs.Profile.profile ?input ~mode ~policy ?minor_heap_kb ~bench ~threads
      ~scale ~seed ()
  with
  | r ->
    print_string (Rpb_obs.Profile.summary r);
    (match json with
     | None -> ()
     | Some path ->
       Rpb_obs.Profile.write_json ~path r;
       Printf.printf "\nwrote profile document to %s\n" path);
    if r.Rpb_obs.Profile.verified then exit_ok else exit_violation
  | exception Invalid_argument msg ->
    Printf.eprintf "%s (try `rpb list`)\n" msg;
    exit_usage

let profile_cmd =
  let doc =
    "Work/span profiler: run one benchmark under the scheduler flight \
     recorder and report work (T1), span (Tinf), parallelism, burdened \
     parallelism, leaf-task granularity, per-phase and per-worker \
     breakdowns, and the predicted 1..P speedup curve."
  in
  let bench =
    Arg.(value & opt string "sort"
         & info [ "bench"; "b" ] ~docv:"BENCH" ~doc:"benchmark to profile")
  in
  let input =
    Arg.(value & opt (some string) None & info [ "input"; "i" ] ~docv:"INPUT")
  in
  let mode =
    Arg.(value & opt mode_conv Mode.Unsafe
         & info [ "mode"; "m" ] ~docv:"MODE" ~doc:"unsafe | checked | sync")
  in
  let threads = Arg.(value & opt int 4 & info [ "threads"; "t" ] ~docv:"P") in
  let scale = Arg.(value & opt int 0 & info [ "scale"; "s" ] ~docv:"S") in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N" ~doc:"recorded in the profile metadata")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"write the schema_version=2 profile document")
  in
  let run bench input mode threads scale seed policy minor_heap_kb json =
    exit
      (profile_run ~bench ~input ~mode ~threads ~scale ~seed ~policy
         ~minor_heap_kb ~json)
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const run $ bench $ input $ mode $ threads $ scale $ seed
          $ policy_arg $ minor_heap_kb_arg $ json)

(* ---- bench: measured records for the baseline store / perf trajectory ---- *)

let bench_run ~name ~input ~scale ~threads ~repeats ~mode ~policy
    ~minor_heap_kb ~with_seq ~json ~baseline_dir =
  let names = if name = "all" then Registry.names else [ name ] in
  let missing = List.filter (fun n -> Registry.find n = None) names in
  if missing <> [] then begin
    Printf.eprintf "unknown benchmark %s (try `rpb list`)\n"
      (String.concat ", " missing);
    exit_usage
  end
  else begin
    let records = ref [] in
    let failed = ref false in
    let measure pool e input how =
      let r, size = Registry.measure_entry pool ~entry:e ~input ~scale ~repeats ~how in
      records := r :: !records;
      if not r.Bench_json.verified then failed := true;
      Printf.printf "%-6s input=%s (%s) %-7s threads=%d: %.4f s (median of %d)  [%s]\n"
        r.Bench_json.bench input size r.Bench_json.mode r.Bench_json.threads
        (Rpb_obs.Baseline.estimate_ns r /. 1e9)
        repeats
        (if r.Bench_json.verified then "verified" else "VERIFICATION FAILED");
      flush stdout
    in
    List.iter
      (fun n ->
        let e = Option.get (Registry.find n) in
        let input =
          match input with Some i -> i | None -> List.hd e.Common.inputs
        in
        if with_seq then begin
          (* The 1-worker sequential baseline never schedules, so it stays on
             the default policy and keeps matching pre-policy baselines. *)
          let pool = Rpb_pool.Pool.create ~num_workers:1 () in
          Fun.protect ~finally:(fun () -> Rpb_pool.Pool.shutdown pool)
            (fun () -> measure pool e input `Seq)
        end;
        let pool =
          Rpb_pool.Pool.create ~policy ?minor_heap_kb ~num_workers:threads ()
        in
        Fun.protect ~finally:(fun () -> Rpb_pool.Pool.shutdown pool)
          (fun () -> measure pool e input (`Par mode)))
      names;
    let records = List.rev !records in
    (match json with
     | None -> ()
     | Some path ->
       Bench_json.write_doc ~path
         ~meta:
           [
             ("generator", Bench_json.Str "rpb-bench-cli");
             ("scale", Bench_json.Int scale);
             ("threads", Bench_json.Int threads);
             ("repeats", Bench_json.Int repeats);
             ("policy", Bench_json.Str policy.Rpb_pool.Pool.Policy.name);
           ]
         records;
       Printf.printf "wrote %d benchmark records to %s\n"
         (List.length records) path);
    (match baseline_dir with
     | None -> ()
     | Some dir ->
       let paths = Rpb_obs.Baseline.save ~dir records in
       Printf.printf "baseline store updated: %s\n" (String.concat ", " paths));
    if !failed then exit_violation else exit_ok
  end

let bench_cmd =
  let doc =
    "Time benchmarks with per-repeat samples (schema v3) for the perf \
     trajectory: write a BENCH document with --json and/or merge the records \
     into the committed baseline store with --save-baseline."
  in
  let bench_arg =
    Arg.(value & pos 0 string "all"
         & info [] ~docv:"BENCH" ~doc:"benchmark name or `all`")
  in
  let input =
    Arg.(value & opt (some string) None & info [ "input"; "i" ] ~docv:"INPUT")
  in
  let scale = Arg.(value & opt int 0 & info [ "scale"; "s" ] ~docv:"N") in
  let threads = Arg.(value & opt int 4 & info [ "threads"; "t" ] ~docv:"P") in
  let repeats =
    Arg.(value & opt int 5
         & info [ "repeats"; "r" ] ~docv:"R"
             ~doc:"per-repeat samples per configuration (>= 3 enables the \
                   permutation test in `rpb compare`)")
  in
  let mode =
    Arg.(value & opt mode_conv Mode.Unsafe
         & info [ "mode"; "m" ] ~docv:"MODE" ~doc:"unsafe | checked | sync")
  in
  let seq =
    Arg.(value & flag
         & info [ "seq" ]
             ~doc:"also time the sequential baseline (1 worker) per benchmark")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"write a Bench_json document")
  in
  let baseline =
    Arg.(value & opt ~vopt:(Some "bench/baselines") (some string) None
         & info [ "save-baseline" ] ~docv:"DIR"
             ~doc:"merge the records into the baseline store (default \
                   $(docv): bench/baselines)")
  in
  let run name input scale threads repeats mode policy minor_heap_kb seq json
      baseline =
    exit
      (bench_run ~name ~input ~scale ~threads ~repeats ~mode ~policy
         ~minor_heap_kb ~with_seq:seq ~json ~baseline_dir:baseline)
  in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(const run $ bench_arg $ input $ scale $ threads $ repeats $ mode
          $ policy_arg $ minor_heap_kb_arg $ seq $ json $ baseline)

(* ---- compare: noise-aware regression gate ---- *)

let compare_run ~old_path ~new_path ~threshold ~alpha ~noise_mult ~seed ~json =
  match
    (Rpb_obs.Baseline.load old_path, Rpb_obs.Baseline.load new_path)
  with
  | exception Sys_error msg ->
    Printf.eprintf "compare: %s\n" msg;
    exit_usage
  | exception Bench_json.Parse_error msg ->
    Printf.eprintf "compare: parse error: %s\n" msg;
    exit_usage
  | baseline, current ->
    let r =
      Rpb_obs.Baseline.compare_records ~threshold ~alpha ~noise_mult ~seed
        ~baseline ~current ()
    in
    print_string (Rpb_obs.Baseline.summary r);
    (match json with
     | None -> ()
     | Some path ->
       Rpb_obs.Baseline.write_json ~path r;
       Printf.printf "wrote comparison document to %s\n" path);
    if Rpb_obs.Baseline.ok r then exit_ok else exit_gate

let compare_cmd =
  let doc =
    "Compare two benchmark runs (files or baseline directories) and classify \
     every shared configuration as improved / unchanged / regressed.  A \
     change is only flagged when it clears a noise-widened tolerance band \
     AND a permutation test over the per-repeat samples finds it \
     significant, so same-binary re-runs compare clean.  Exits 3 on \
     regression (the CI perf-gate signal)."
  in
  let old_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"OLD" ~doc:"baseline: a BENCH_*.json file or a \
                                     baseline directory")
  in
  let new_arg =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"NEW" ~doc:"candidate run: file or directory")
  in
  let threshold =
    Arg.(value & opt float 0.10
         & info [ "threshold" ] ~docv:"FRACTION"
             ~doc:"flat relative tolerance before noise widening (0.10 = \
                   10%)")
  in
  let alpha =
    Arg.(value & opt float 0.05
         & info [ "alpha" ] ~docv:"A" ~doc:"permutation-test significance \
                                            level")
  in
  let noise_mult =
    Arg.(value & opt float 3.0
         & info [ "noise-mult" ] ~docv:"K"
             ~doc:"band widening: K * (MAD-sigma old + new) / old estimate")
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N" ~doc:"permutation-test resampling seed \
                                           (deterministic)")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"write the kind=compare document (feeds `rpb report`)")
  in
  let run old_path new_path threshold alpha noise_mult seed json =
    exit
      (compare_run ~old_path ~new_path ~threshold ~alpha ~noise_mult ~seed
         ~json)
  in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const run $ old_arg $ new_arg $ threshold $ alpha $ noise_mult
          $ seed $ json)

(* ---- serve / loadgen: the fault-tolerant request server ---- *)

(* Policy as a validated NAME (the serve path resolves names to pools per
   request, so the CLI carries strings, not Policy.t values). *)
let policy_name_conv =
  let module Policy = Rpb_pool.Pool.Policy in
  Arg.conv
    ( (fun s ->
        if Policy.find s <> None then Ok s
        else
          Error
            (`Msg
               (Printf.sprintf "unknown policy %s (have: %s)" s
                  (String.concat ", " (Policy.names ()))))),
      Format.pp_print_string )

let default_socket () =
  Printf.sprintf "%s/rpb-serve-%d.sock"
    (Filename.get_temp_dir_name ())
    (Unix.getpid ())

(* "bench", "bench:input", "bench:input:scale" ("" input = default). *)
let parse_preload spec =
  match String.split_on_char ':' spec with
  | [ b ] -> Ok (b, None, 0)
  | [ b; i ] -> Ok (b, (if i = "" then None else Some i), 0)
  | [ b; i; s ] -> (
    match int_of_string_opt s with
    | Some scale -> Ok (b, (if i = "" then None else Some i), scale)
    | None -> Error (Printf.sprintf "bad preload scale in %S" spec))
  | _ -> Error (Printf.sprintf "bad preload spec %S (BENCH[:INPUT[:SCALE]])" spec)

let parse_preloads specs =
  List.fold_left
    (fun acc spec ->
      match (acc, parse_preload spec) with
      | Error e, _ -> Error e
      | _, Error e -> Error e
      | Ok l, Ok p -> Ok (l @ [ p ]))
    (Ok []) specs

let serve_run ~socket ~threads ~policy ~max_queue ~drain_grace ~scale_cap
    ~preload ~json ~quiet ~minor_heap_kb ~metrics_json ~metrics_interval
    ~slow_log ~slow_pctl ~slo ~slo_fast ~slo_slow =
  let module Serve = Rpb_serve.Serve in
  let module Slo = Rpb_obs.Slo in
  let usage fmt = Printf.ksprintf (fun m -> Printf.eprintf "serve: %s\n" m) fmt in
  if metrics_interval <= 0. then begin
    usage "--metrics-interval must be > 0 (got %g)" metrics_interval;
    exit_usage
  end
  else if slow_pctl <= 0. || slow_pctl > 100. then begin
    usage "--slow-pctl must be in (0, 100] (got %g)" slow_pctl;
    exit_usage
  end
  else if slo_fast <= 0. || slo_slow <= 0. || slo_fast > slo_slow then begin
    usage "--slo-fast-s/--slo-slow-s must be > 0 with fast <= slow (got %g/%g)"
      slo_fast slo_slow;
    exit_usage
  end
  else
  match
    match slo with
    | None -> Stdlib.Ok None
    | Some spec -> Result.map Option.some (Slo.parse_spec spec)
  with
  | Stdlib.Error msg ->
    usage "--slo: %s" msg;
    exit_usage
  | Stdlib.Ok slo -> (
  match parse_preloads preload with
  | Error msg ->
    Printf.eprintf "serve: %s\n" msg;
    exit_usage
  | Ok preload -> (
    let cfg =
      {
        Serve.socket_path = socket;
        threads;
        policy;
        max_queue;
        drain_grace_s = drain_grace;
        scale_cap;
        preload;
        json_path = json;
        quiet;
        minor_heap_kb;
        metrics_path = metrics_json;
        metrics_interval_s = metrics_interval;
        slow_log;
        slow_pctl;
        slo;
        slo_fast_s = slo_fast;
        slo_slow_s = slo_slow;
      }
    in
    match Serve.start cfg with
    | Error msg ->
      Printf.eprintf "serve: %s\n" msg;
      exit_usage
    | Ok t ->
      let stop_flag = Atomic.make false in
      let handler = Sys.Signal_handle (fun _ -> Atomic.set stop_flag true) in
      (try Sys.set_signal Sys.sigterm handler with Invalid_argument _ -> ());
      (try Sys.set_signal Sys.sigint handler with Invalid_argument _ -> ());
      if not quiet then
        Printf.eprintf "serve: SIGINT/SIGTERM drains and exits\n%!";
      while not (Atomic.get stop_flag) do
        try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      Serve.stop t;
      exit_ok))

let serve_cmd =
  let doc =
    "Serve benchmark jobs over a Unix-domain socket: one shared \
     work-stealing pool per requested policy, a bounded admission queue \
     with overload shedding, per-request deadlines on the shared timer \
     wheel, cooperative cancellation on client disconnect, and graceful \
     drain on SIGTERM/SIGINT.  Structured error replies (overloaded, \
     stalled, cancelled, malformed, ...) never kill the process or poison \
     a pool."
  in
  let socket =
    Arg.(value & opt string (default_socket ())
         & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path")
  in
  let threads =
    Arg.(value & opt int 4
         & info [ "threads"; "t" ] ~docv:"P" ~doc:"workers per pool")
  in
  let policy =
    Arg.(value & opt policy_name_conv "default"
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"pool policy for requests that do not name one")
  in
  let max_queue =
    Arg.(value & opt int 16
         & info [ "max-queue" ] ~docv:"N"
             ~doc:"admission bound on queued + in-flight requests; past it, \
                   requests are shed with an overloaded reply and a \
                   retry-after hint")
  in
  let drain_grace =
    Arg.(value & opt float 2.0
         & info [ "drain-grace" ] ~docv:"SECONDS"
             ~doc:"how long drain lets the in-flight request finish before \
                   cancelling it")
  in
  let scale_cap =
    Arg.(value & opt int 6
         & info [ "scale-cap" ] ~docv:"S" ~doc:"reject requests above this \
                                                scale")
  in
  let preload =
    Arg.(value & opt_all string []
         & info [ "preload" ] ~docv:"BENCH[:INPUT[:SCALE]]"
             ~doc:"prepare an instance at startup (repeatable)")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"write the kind=serve stats artifact at drain")
  in
  let quiet = Arg.(value & flag & info [ "quiet"; "q" ]) in
  let metrics_json =
    Arg.(value & opt (some string) None
         & info [ "metrics-json" ] ~docv:"FILE"
             ~doc:"append one kind=metrics snapshot per interval as JSONL \
                   (feeds the report dashboard's live-metrics section)")
  in
  let metrics_interval =
    Arg.(value & opt float 1.0
         & info [ "metrics-interval" ] ~docv:"SECONDS"
             ~doc:"snapshot period for $(b,--metrics-json)")
  in
  let slow_log =
    Arg.(value & opt int 8
         & info [ "slow-log" ] ~docv:"N"
             ~doc:"keep the N slowest-request scheduler profiles (0 \
                   disables the slow-request log)")
  in
  let slow_pctl =
    Arg.(value & opt float 99.0
         & info [ "slow-pctl" ] ~docv:"P"
             ~doc:"exec-time percentile a request must clear to be logged \
                   as slow")
  in
  let slo =
    Arg.(value & opt (some string) None
         & info [ "slo" ] ~docv:"SPEC"
             ~doc:"service-level objectives, `;`-separated: \
                   $(b,latency:HIST:pQQ<MS) (e.g. \
                   latency:serve.exec_ms:p95<50) and/or $(b,avail:TARGET) \
                   (serve.ok vs failed+stalled).  Enables burn-rate \
                   evaluation on the sampler thread, the health verb, and \
                   budget-aware admission tightening")
  in
  let slo_fast =
    Arg.(value & opt float 60.0
         & info [ "slo-fast-s" ] ~docv:"SECONDS"
             ~doc:"fast burn-rate window (tests scale this down)")
  in
  let slo_slow =
    Arg.(value & opt float 3600.0
         & info [ "slo-slow-s" ] ~docv:"SECONDS"
             ~doc:"slow burn-rate window (tests scale this down)")
  in
  let run socket threads policy max_queue drain_grace scale_cap preload json
      quiet minor_heap_kb metrics_json metrics_interval slow_log slow_pctl slo
      slo_fast slo_slow =
    exit
      (serve_run ~socket ~threads ~policy ~max_queue ~drain_grace ~scale_cap
         ~preload ~json ~quiet ~minor_heap_kb ~metrics_json ~metrics_interval
         ~slow_log ~slow_pctl ~slo ~slo_fast ~slo_slow)
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ socket $ threads $ policy $ max_queue $ drain_grace
          $ scale_cap $ preload $ json $ quiet $ minor_heap_kb_arg
          $ metrics_json $ metrics_interval $ slow_log $ slow_pctl $ slo
          $ slo_fast $ slo_slow)

let loadgen_run ~socket ~boot ~server_threads ~server_policy ~max_queue
    ~server_json ~server_metrics_json ~clients ~requests ~seed ~mean_gap_ms
    ~benches ~mode ~scale ~policies ~deadline_ms ~spin_ms ~burst ~kill_every
    ~max_retries ~backoff_base_ms ~backoff_cap_ms ~wait_cap_s ~json ~quiet =
  let module Serve = Rpb_serve.Serve in
  let module Loadgen = Rpb_serve.Loadgen in
  let server =
    if not boot then Ok None
    else begin
      let preload =
        List.filter_map
          (fun b -> if b = "spin" then None else Some (b, None, scale))
          benches
      in
      let cfg =
        {
          (Serve.default_config ~socket_path:socket) with
          threads = server_threads;
          policy = server_policy;
          max_queue;
          preload;
          json_path = server_json;
          metrics_path = server_metrics_json;
          metrics_interval_s = 0.25;
          quiet;
        }
      in
      match Serve.start cfg with
      | Error msg ->
        Printf.eprintf "loadgen: boot: %s\n" msg;
        Error exit_usage
      | Ok t -> Ok (Some t)
    end
  in
  match server with
  | Error code -> code
  | Ok server -> (
    let finish code =
      (match server with Some t -> Serve.stop t | None -> ());
      code
    in
    let cfg =
      {
        Loadgen.socket_path = socket;
        clients;
        requests_per_client = requests;
        seed;
        mean_gap_ms;
        benches;
        mode;
        scale;
        policies;
        deadline_ms;
        spin_ms;
        burst;
        kill_every;
        max_retries;
        backoff_base_ms;
        backoff_cap_ms;
        wait_cap_s;
        json_path = json;
        quiet = true;
      }
    in
    match Loadgen.run cfg with
    | Error msg ->
      Printf.eprintf "loadgen: %s\n" msg;
      finish exit_usage
    | Ok r ->
      List.iter print_endline (Loadgen.summary_lines r);
      (match json with
       | Some path -> Printf.printf "wrote loadgen artifact to %s\n" path
       | None -> ());
      let violated =
        r.Loadgen.lost > 0
        || r.Loadgen.protocol_errors > 0
        || r.Loadgen.digest_mismatches > 0
        || Loadgen.accounted r <> r.Loadgen.sent
        || r.Loadgen.ok = 0
      in
      if violated then begin
        Printf.eprintf
          "loadgen: robustness violation (lost=%d proto_err=%d \
           digest_mismatch=%d accounted=%d sent=%d ok=%d)\n"
          r.Loadgen.lost r.Loadgen.protocol_errors
          r.Loadgen.digest_mismatches (Loadgen.accounted r) r.Loadgen.sent
          r.Loadgen.ok;
        finish exit_violation
      end
      else finish exit_ok)

let loadgen_cmd =
  let doc =
    "Drive an rpb server with seeded open-loop load: multiple client \
     connections, exponential arrivals, jittered exponential retry/backoff \
     on overload sheds, optional kill/reconnect chaos, and a latency \
     percentile report.  Exits 4 when any reply is lost, duplicated, \
     malformed, or carries a digest that disagrees with another run of the \
     same instance."
  in
  let socket =
    Arg.(value & opt string (default_socket ())
         & info [ "socket" ] ~docv:"PATH" ~doc:"server socket path")
  in
  let boot =
    Arg.(value & flag
         & info [ "boot" ]
             ~doc:"start an in-process server on $(b,--socket) first and \
                   drain it afterwards (single-command smoke runs)")
  in
  let server_threads =
    Arg.(value & opt int 4
         & info [ "server-threads" ] ~docv:"P" ~doc:"pool workers for \
                                                     $(b,--boot)")
  in
  let server_policy =
    Arg.(value & opt policy_name_conv "default"
         & info [ "server-policy" ] ~docv:"POLICY" ~doc:"default policy for \
                                                         $(b,--boot)")
  in
  let max_queue =
    Arg.(value & opt int 16
         & info [ "max-queue" ] ~docv:"N" ~doc:"admission bound for \
                                                $(b,--boot)")
  in
  let server_json =
    Arg.(value & opt (some string) None
         & info [ "server-json" ] ~docv:"FILE"
             ~doc:"server-side kind=serve artifact for $(b,--boot)")
  in
  let server_metrics_json =
    Arg.(value & opt (some string) None
         & info [ "server-metrics-json" ] ~docv:"FILE"
             ~doc:"server-side kind=metrics JSONL for $(b,--boot) (sampled \
                   every 250 ms)")
  in
  let clients = Arg.(value & opt int 4 & info [ "clients"; "c" ] ~docv:"N") in
  let requests =
    Arg.(value & opt int 16
         & info [ "requests"; "n" ] ~docv:"N" ~doc:"requests per client")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N") in
  let mean_gap_ms =
    Arg.(value & opt int 10
         & info [ "mean-gap-ms" ] ~docv:"MS"
             ~doc:"mean exponential inter-arrival gap per client")
  in
  let benches =
    Arg.(value & opt_all (list string) [ [ "hist" ] ]
         & info [ "bench"; "b" ] ~docv:"BENCH,.."
             ~doc:"benchmark mix, cycled per request (`spin` allowed)")
  in
  let mode =
    Arg.(value & opt mode_conv Mode.Unsafe
         & info [ "mode"; "m" ] ~docv:"MODE" ~doc:"unsafe | checked | sync")
  in
  let scale = Arg.(value & opt int 0 & info [ "scale"; "s" ] ~docv:"S") in
  let policies =
    Arg.(value & opt_all (list policy_name_conv) [ [ "default" ] ]
         & info [ "policy" ] ~docv:"POLICY,.."
             ~doc:"per-request policy mix, cycled")
  in
  let deadline_ms =
    Arg.(value & opt (some int) None
         & info [ "deadline-ms" ] ~docv:"MS" ~doc:"per-request deadline")
  in
  let spin_ms =
    Arg.(value & opt int 20
         & info [ "spin-ms" ] ~docv:"MS" ~doc:"busy work per `spin` request")
  in
  let burst =
    Arg.(value & opt int 0
         & info [ "burst" ] ~docv:"N"
             ~doc:"client 0 fires $(docv) back-to-back spin requests at \
                   start (forces overload sheds)")
  in
  let kill_every =
    Arg.(value & opt int 0
         & info [ "kill-every" ] ~docv:"K"
             ~doc:"chaos: clients abruptly close and reconnect after every \
                   $(docv)-th send (0 = off)")
  in
  let max_retries =
    Arg.(value & opt int 5 & info [ "max-retries" ] ~docv:"N")
  in
  let backoff_base_ms =
    Arg.(value & opt int 5 & info [ "backoff-base-ms" ] ~docv:"MS")
  in
  let backoff_cap_ms =
    Arg.(value & opt int 200 & info [ "backoff-cap-ms" ] ~docv:"MS")
  in
  let wait_cap_s =
    Arg.(value & opt float 15.0
         & info [ "wait-cap-s" ] ~docv:"S"
             ~doc:"max wait for stragglers after the last send before \
                   declaring replies lost")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"write the kind=serve loadgen artifact (latency \
                   percentiles; feeds `rpb report`)")
  in
  let quiet = Arg.(value & flag & info [ "quiet"; "q" ]) in
  let run socket boot server_threads server_policy max_queue server_json
      server_metrics_json clients requests seed mean_gap_ms benches mode scale
      policies deadline_ms spin_ms burst kill_every max_retries
      backoff_base_ms backoff_cap_ms wait_cap_s json quiet =
    exit
      (loadgen_run ~socket ~boot ~server_threads ~server_policy ~max_queue
         ~server_json ~server_metrics_json ~clients ~requests ~seed
         ~mean_gap_ms ~benches:(List.concat benches) ~mode:(Mode.name mode)
         ~scale ~policies:(List.concat policies) ~deadline_ms ~spin_ms ~burst
         ~kill_every ~max_retries ~backoff_base_ms ~backoff_cap_ms
         ~wait_cap_s ~json ~quiet)
  in
  Cmd.v (Cmd.info "loadgen" ~doc)
    Term.(const run $ socket $ boot $ server_threads $ server_policy
          $ max_queue $ server_json $ server_metrics_json $ clients $ requests
          $ seed $ mean_gap_ms $ benches $ mode $ scale $ policies
          $ deadline_ms $ spin_ms $ burst $ kill_every $ max_retries
          $ backoff_base_ms $ backoff_cap_ms $ wait_cap_s $ json $ quiet)

(* ---- top: live metrics view over a running server ---- *)

let top_cmd =
  let doc =
    "Watch a running rpb server's live metrics: each refresh sends a \
     verb=stats request over the serve socket and renders throughput, \
     queue/exec/total latency percentiles (recomputed from the snapshot's \
     log2 histogram buckets), worker and steal rates, GC pause \
     percentiles, and the slow-request log counter.  With $(b,--check), \
     asserts the snapshot invariants instead of rendering (counters \
     monotone, histogram totals reconciling with the status counters) and \
     exits 4 on a violation — the CI metrics-smoke contract."
  in
  let socket =
    Arg.(value & opt string (default_socket ())
         & info [ "socket" ] ~docv:"PATH" ~doc:"server socket path")
  in
  let interval =
    Arg.(value & opt float 1.0
         & info [ "interval" ] ~docv:"SECONDS" ~doc:"refresh period")
  in
  let iterations =
    Arg.(value & opt int 0
         & info [ "iterations"; "n" ] ~docv:"N"
             ~doc:"stop after N refreshes (0 = until the server goes away)")
  in
  let check =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"assert snapshot invariants instead of rendering")
  in
  let run socket interval iterations check =
    exit
      (Rpb_serve.Top.run ~socket_path:socket ~interval_s:interval ~iterations
         ~check)
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(const run $ socket $ interval $ iterations $ check)

(* ---- slo: offline burn-rate replay and live health polling ---- *)

(* A --metrics-json stream is JSONL; a lone artifact is one document.
   Unparseable lines are skipped — the stream may end mid-write when the
   server was killed, and that must not abort the replay. *)
let slo_docs_of_file path =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Bench_json.of_string content with
  | j -> [ j ]
  | exception Bench_json.Parse_error _ ->
    String.split_on_char '\n' content
    |> List.filter_map (fun line ->
           if String.trim line = "" then None
           else
             match Bench_json.of_string line with
             | j -> Some j
             | exception Bench_json.Parse_error _ -> None)

let print_verdict_table verdicts =
  let module Slo = Rpb_obs.Slo in
  Printf.printf "%-28s %-6s %10s %10s %8s\n" "objective" "level" "fast-burn"
    "slow-burn" "budget";
  List.iter
    (fun v ->
      Printf.printf "%-28s %-6s %10.2f %10.2f %7.0f%%\n" v.Slo.v_name
        (Slo.level_name v.Slo.v_level)
        v.Slo.v_fast_burn v.Slo.v_slow_burn
        (100. *. v.Slo.v_budget_remaining))
    verdicts

let slo_replay_run ~files ~spec ~params ~check ~json =
  let module Slo = Rpb_obs.Slo in
  match Slo.parse_spec spec with
  | Stdlib.Error msg ->
    Printf.eprintf "slo: bad --slo spec: %s\n" msg;
    exit_usage
  | Stdlib.Ok spec -> (
    match List.concat_map slo_docs_of_file files with
    | exception Sys_error msg ->
      Printf.eprintf "slo: %s\n" msg;
      exit_usage
    | docs ->
      let r = Slo.replay ~params spec docs in
      if r.Slo.r_fed = 0 then begin
        Printf.eprintf "slo: no kind=metrics snapshot found in %s\n"
          (String.concat ", " files);
        exit_usage
      end
      else begin
        Printf.printf
          "replayed %d snapshot(s) (%d other document(s) skipped), worst \
           level %s\n"
          r.Slo.r_fed r.Slo.r_skipped
          (Slo.level_name r.Slo.r_worst);
        print_verdict_table r.Slo.r_final;
        (match json with
         | None -> ()
         | Some path ->
           let oc = open_out path in
           Fun.protect
             ~finally:(fun () -> close_out oc)
             (fun () ->
               output_string oc
                 (Bench_json.to_string
                    (Slo.replay_to_json r ~params ~spec));
               output_char oc '\n');
           Printf.printf "wrote slo artifact to %s\n" path);
        if Slo.violated r then begin
          Printf.printf
            "error budget violated (paged, or an objective finished \
             overspent)\n";
          if check then exit_violation else exit_ok
        end
        else exit_ok
      end)

let slo_live_run ~socket ~expect ~wait =
  let module Slo = Rpb_obs.Slo in
  let module J = Bench_json in
  let print_health j =
    let status = J.get_str (J.member "status" j) in
    Printf.printf "status %s\n" status;
    (match J.member "admission" j with
     | J.Obj _ as a ->
       Printf.printf "admission  max_queue %d  effective %d  retry_scale %dx\n"
         (J.get_int (J.member "max_queue" a))
         (J.get_int (J.member "effective_max_queue" a))
         (J.get_int (J.member "retry_scale" a))
     | _ -> ());
    Printf.printf "%-28s %-6s %10s %10s %8s\n" "objective" "level" "fast-burn"
      "slow-burn" "budget";
    List.iter
      (fun o ->
        let f k = match J.member k o with J.Null -> 0. | v -> J.get_float v in
        Printf.printf "%-28s %-6s %10.2f %10.2f %7.0f%%\n"
          (J.get_str (J.member "name" o))
          (J.get_str (J.member "level" o))
          (f "fast_burn") (f "slow_burn")
          (100. *. f "budget_remaining"))
      (J.get_list (J.member "objectives" j));
    status
  in
  let deadline = Unix.gettimeofday () +. wait in
  let rec poll last_err =
    match Rpb_serve.Top.fetch_health ~retries:0 ~socket_path:socket () with
    | Stdlib.Error msg ->
      if Unix.gettimeofday () < deadline then begin
        (try Unix.sleepf 0.2 with Unix.Unix_error _ -> ());
        poll (Some msg)
      end
      else begin
        Printf.eprintf "slo: %s\n"
          (Option.value last_err ~default:msg);
        exit_usage
      end
    | Stdlib.Ok j -> (
      match print_health j with
      | exception J.Parse_error msg ->
        Printf.eprintf "slo: bad health document: %s\n" msg;
        exit_usage
      | status -> (
        match expect with
        | None -> exit_ok
        | Some want when want = status -> exit_ok
        | Some want ->
          if Unix.gettimeofday () < deadline then begin
            (try Unix.sleepf 0.2 with Unix.Unix_error _ -> ());
            poll None
          end
          else begin
            Printf.eprintf "slo: expected status %s, still %s after %gs\n"
              want status wait;
            exit_violation
          end))
  in
  poll None

let slo_cmd =
  let doc =
    "Evaluate service-level objectives: replay a --metrics-json JSONL \
     stream offline through the burn-rate engine (exit 4 with --check on \
     a budget violation — the CI gate), or poll a live server's health \
     verb with --socket, optionally waiting for an expected \
     ok/degraded/unhealthy status."
  in
  let files =
    Arg.(value & pos_all string []
         & info [] ~docv:"FILE"
             ~doc:"metrics JSONL streams (or single JSON artifacts) to \
                   replay, chronological order")
  in
  let spec =
    Arg.(value & opt string "avail:0.99"
         & info [ "slo" ] ~docv:"SPEC"
             ~doc:"objectives to evaluate (same grammar as `rpb serve \
                   --slo`)")
  in
  let check =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"exit 4 when the replay ever paged or finished with an \
                   objective's budget overspent")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"write the kind=slo artifact (burn-rate series; feeds \
                   `rpb report`)")
  in
  let fast_s =
    Arg.(value & opt float 60.0
         & info [ "fast-s" ] ~docv:"SECONDS" ~doc:"fast burn window")
  in
  let slow_s =
    Arg.(value & opt float 3600.0
         & info [ "slow-s" ] ~docv:"SECONDS" ~doc:"slow burn window")
  in
  let page_burn =
    Arg.(value & opt float 14.4
         & info [ "page-burn" ] ~docv:"X"
             ~doc:"both-window burn threshold for page")
  in
  let warn_burn =
    Arg.(value & opt float 6.0
         & info [ "warn-burn" ] ~docv:"X"
             ~doc:"both-window burn threshold for warn")
  in
  let hysteresis =
    Arg.(value & opt int 3
         & info [ "hysteresis" ] ~docv:"N"
             ~doc:"consecutive calm evaluations before stepping down a \
                   level")
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"poll a live server's health verb instead of replaying \
                   files")
  in
  let expect =
    Arg.(value & opt (some (enum
           [ ("ok", "ok"); ("degraded", "degraded");
             ("unhealthy", "unhealthy") ])) None
         & info [ "expect" ] ~docv:"STATUS"
             ~doc:"with --socket: poll until the overall status is \
                   $(docv) (exit 4 when --wait expires first)")
  in
  let wait =
    Arg.(value & opt float 10.0
         & info [ "wait" ] ~docv:"SECONDS"
             ~doc:"with --socket: polling deadline for --expect (also the \
                   connect retry budget)")
  in
  let run files spec check json fast_s slow_s page_burn warn_burn hysteresis
      socket expect wait =
    if fast_s <= 0. || slow_s <= 0. || fast_s > slow_s then begin
      Printf.eprintf
        "slo: --fast-s/--slow-s must be > 0 with fast <= slow (got %g/%g)\n"
        fast_s slow_s;
      exit exit_usage
    end;
    if hysteresis < 1 then begin
      Printf.eprintf "slo: --hysteresis must be >= 1 (got %d)\n" hysteresis;
      exit exit_usage
    end;
    match (socket, files) with
    | Some socket, [] -> exit (slo_live_run ~socket ~expect ~wait)
    | Some _, _ :: _ ->
      Printf.eprintf "slo: --socket and replay FILEs are mutually exclusive\n";
      exit exit_usage
    | None, [] ->
      Printf.eprintf
        "slo: nothing to do: name metrics JSONL FILEs to replay, or \
         --socket to poll a live server\n";
      exit exit_usage
    | None, files ->
      let params =
        {
          Rpb_obs.Slo.fast_s;
          slow_s;
          page_burn;
          warn_burn;
          hysteresis;
        }
      in
      exit (slo_replay_run ~files ~spec ~params ~check ~json)
  in
  Cmd.v (Cmd.info "slo" ~doc)
    Term.(const run $ files $ spec $ check $ json $ fast_s $ slow_s
          $ page_burn $ warn_burn $ hysteresis $ socket $ expect $ wait)

let report_run ~files ~out ~md =
  let a = Rpb_obs.Report.load_files files in
  List.iter
    (fun (path, msg) -> Printf.eprintf "report: skipping %s: %s\n" path msg)
    a.Rpb_obs.Report.errors;
  Rpb_obs.Report.write_html ~path:out a;
  Printf.printf
    "wrote %s (%d bench record(s), %d profile(s), %d check(s), %d fault \
     sweep(s), %d comparison(s), %d serve report(s), %d slo replay(s))\n"
    out
    (List.length a.Rpb_obs.Report.bench)
    (List.length a.Rpb_obs.Report.profiles)
    (List.length a.Rpb_obs.Report.checks)
    (List.length a.Rpb_obs.Report.faults)
    (List.length a.Rpb_obs.Report.compares)
    (List.length a.Rpb_obs.Report.serves)
    (List.length a.Rpb_obs.Report.slos);
  (match md with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () -> output_string oc (Rpb_obs.Report.to_markdown a));
     Printf.printf "wrote %s\n" path);
  if a.Rpb_obs.Report.sources = [] then begin
    Printf.eprintf "report: no artifact parsed\n";
    exit_usage
  end
  else exit_ok

let report_cmd =
  let doc =
    "Merge BENCH/PROFILE/CHECK/FAULT/compare JSON artifacts into one \
     self-contained HTML dashboard: speedup curves, the fear-spectrum \
     overhead table, per-benchmark work/span/parallelism, correctness and \
     fault verdicts, and the baseline trajectory."
  in
  let files =
    Arg.(non_empty & pos_all string []
         & info [] ~docv:"FILE" ~doc:"artifact JSON files, any mix of kinds")
  in
  let out =
    Arg.(value & opt string "REPORT.html"
         & info [ "o"; "out" ] ~docv:"FILE" ~doc:"HTML output path")
  in
  let md =
    Arg.(value & opt (some string) None
         & info [ "md" ] ~docv:"FILE"
             ~doc:"also write a markdown digest (CI job summaries)")
  in
  let run files out md = exit (report_run ~files ~out ~md) in
  Cmd.v (Cmd.info "report" ~doc) Term.(const run $ files $ out $ md)

let () =
  let doc = "Rust Parallel Benchmarks (RPB), reproduced in OCaml" in
  let exits =
    [
      Cmd.Exit.info exit_ok ~doc:"on success.";
      Cmd.Exit.info exit_usage
        ~doc:"on usage errors: unknown flags, benchmarks, policies, modes or \
              inputs, unparseable artifacts.";
      Cmd.Exit.info exit_gate
        ~doc:"when a comparison gate trips (perf regression).";
      Cmd.Exit.info exit_violation
        ~doc:"when a correctness, fault or robustness check is violated \
              (failed verification, lost or mismatched replies).";
    ]
  in
  let info = Cmd.info "rpb" ~doc ~exits in
  let code =
    Cmd.eval
      (Cmd.group info
         [ list_cmd; patterns_cmd; run_cmd; bench_cmd; stats_cmd; check_cmd;
           faults_cmd; profile_cmd; compare_cmd; serve_cmd; loadgen_cmd;
           top_cmd; slo_cmd; report_cmd ])
  in
  (* cmdliner reports its own usage errors as 124; fold them into the
     documented usage code so every surface agrees. *)
  exit (if code = Cmd.Exit.cli_error then exit_usage else code)
