(* rpb — command-line runner for the RPB benchmark suite.

   rpb list
   rpb patterns
   rpb run sa --input wiki --scale 3 --threads 4 --mode checked --repeats 3
   rpb run all --scale 1 *)

open Cmdliner
open Rpb_benchmarks

let run_one ~name ~input ~scale ~threads ~mode ~repeats ~seq =
  match Registry.find name with
  | None ->
    Printf.eprintf "unknown benchmark %s (try `rpb list`)\n" name;
    1
  | Some e ->
    let input =
      match input with
      | Some i when List.mem i e.Common.inputs -> i
      | Some i ->
        Printf.eprintf "warning: %s is not a standard input for %s (have: %s)\n"
          i name
          (String.concat ", " e.Common.inputs);
        i
      | None -> List.hd e.Common.inputs
    in
    let pool = Rpb_pool.Pool.create ~num_workers:threads () in
    Fun.protect ~finally:(fun () -> Rpb_pool.Pool.shutdown pool) @@ fun () ->
    Rpb_pool.Pool.run pool (fun () ->
        let prepared = e.Common.prepare pool ~input ~scale in
        let runner =
          if seq then prepared.Common.run_seq
          else fun () -> prepared.Common.run_par mode
        in
        runner ();
        (* warm-up *)
        let (), t = Rpb_prim.Timing.mean_of ~repeats runner in
        let ok = prepared.Common.verify () in
        Printf.printf
          "%-6s input=%s (%s) %s threads=%d scale=%d: %.4f s  [%s]\n" name input
          prepared.Common.size
          (if seq then "seq" else "mode=" ^ Mode.name mode)
          threads scale t
          (if ok then "verified" else "VERIFICATION FAILED");
        if ok then 0 else 2)

let list_cmd =
  let doc = "List the 14 RPB benchmarks with their inputs and patterns." in
  let run () =
    Printf.printf "%-6s %-40s %-14s %-9s %s\n" "name" "description" "inputs"
      "dispatch" "patterns";
    List.iter
      (fun e ->
        Printf.printf "%-6s %-40s %-14s %-9s %s\n" e.Common.name e.Common.full_name
          (String.concat "," e.Common.inputs)
          (if e.Common.dynamic then "dynamic" else "static")
          (String.concat " "
             (List.map Rpb_core.Pattern.access_name e.Common.patterns)))
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let patterns_cmd =
  let doc = "Show the pattern taxonomy and fear spectrum (paper Table 3)." in
  let run () =
    List.iter
      (fun p ->
        Printf.printf "%-7s %-55s %s\n"
          (Rpb_core.Pattern.access_name p)
          (Rpb_core.Pattern.expression p)
          (Rpb_core.Pattern.fear_name (Rpb_core.Pattern.safety p)))
      Rpb_core.Pattern.all_accesses
  in
  Cmd.v (Cmd.info "patterns" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run a benchmark (or `all`) and verify its output." in
  let bench_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc:"benchmark name or `all`")
  in
  let input =
    Arg.(value & opt (some string) None & info [ "input"; "i" ] ~docv:"INPUT")
  in
  let scale = Arg.(value & opt int 2 & info [ "scale"; "s" ] ~docv:"N") in
  let threads = Arg.(value & opt int 4 & info [ "threads"; "t" ] ~docv:"P") in
  let repeats = Arg.(value & opt int 3 & info [ "repeats"; "r" ] ~docv:"R") in
  let seq = Arg.(value & flag & info [ "seq" ] ~doc:"run the sequential baseline") in
  let mode =
    let mode_conv =
      Arg.conv
        ( (fun s ->
            match Mode.of_string s with
            | Some m -> Ok m
            | None -> Error (`Msg ("unknown mode " ^ s))),
          fun fmt m -> Format.pp_print_string fmt (Mode.name m) )
    in
    Arg.(value & opt mode_conv Mode.Unsafe
         & info [ "mode"; "m" ] ~docv:"MODE" ~doc:"unsafe | checked | sync")
  in
  let run name input scale threads mode repeats seq =
    let names = if name = "all" then Registry.names else [ name ] in
    let code =
      List.fold_left
        (fun acc n ->
          max acc (run_one ~name:n ~input ~scale ~threads ~mode ~repeats ~seq))
        0 names
    in
    exit code
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ bench_arg $ input $ scale $ threads $ mode $ repeats $ seq)

let () =
  let doc = "Rust Parallel Benchmarks (RPB), reproduced in OCaml" in
  let info = Cmd.info "rpb" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; patterns_cmd; run_cmd ]))
