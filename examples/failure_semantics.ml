(* Exception-safe fork-join, made concrete: structured cancellation,
   unstructured futures, deadlines, and scheduler fault injection.

   Run with:  dune exec examples/failure_semantics.exe *)

open Rpb_pool

exception Bad_leaf of int

let () =
  let pool = Pool.create ~num_workers:4 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->

  (* 1. Structured cancellation: one failing leaf cancels its siblings and
     re-raises from the construct.  The scope drains before the exception
     escapes, so nothing from the failed parallel_for is still running. *)
  print_endline "1. structured cancellation";
  let executed = Atomic.make 0 in
  (match
     Pool.run pool @@ fun () ->
     Pool.parallel_for ~grain:1 ~start:0 ~finish:1_000 pool ~body:(fun i ->
         if i = 0 then raise (Bad_leaf i);
         Atomic.incr executed;
         ignore (Sys.opaque_identity (Unix.sleepf 1e-5)))
   with
  | () -> print_endline "   BUG: the failure was swallowed"
  | exception Bad_leaf i ->
    Printf.printf
      "   leaf %d raised; %d of 999 sibling leaves ran before cancellation\n"
      i (Atomic.get executed));

  (* The pool is immediately reusable after a failed run. *)
  let sum =
    Pool.run pool @@ fun () ->
    Pool.parallel_for_reduce ~start:0 ~finish:1_000 ~body:Fun.id ~combine:( + )
      ~init:0 pool
  in
  Printf.printf "   pool reusable afterwards: sum 0..999 = %d\n\n" sum;

  (* 2. Unstructured async/await: an awaited failure is a value-like result
     at the await site — it does not cancel the scope.  This is what
     speculation and futures build on. *)
  print_endline "2. unstructured async/await";
  Pool.run pool (fun () ->
      let p = Pool.async pool (fun () -> raise (Bad_leaf 7)) in
      let q = Pool.async pool (fun () -> 21 * 2) in
      (match Pool.await pool p with
      | () -> print_endline "   BUG: awaited failure vanished"
      | exception Bad_leaf i ->
        Printf.printf "   awaited promise re-raised Bad_leaf %d\n" i);
      Printf.printf "   sibling promise unaffected: %d\n\n" (Pool.await pool q));

  (* 3. Deadlines: a run that overstays raises Pool.Stalled with a dump of
     the per-worker scheduler counters instead of hanging. *)
  print_endline "3. run deadline watchdog";
  (match
     Pool.run ~deadline:0.05 pool @@ fun () ->
     Pool.parallel_for ~grain:1 ~start:0 ~finish:64 pool ~body:(fun _ ->
         Unix.sleepf 0.05)
   with
  | () -> print_endline "   finished inside the deadline (fast machine)"
  | exception Pool.Stalled msg ->
    Printf.printf "   Pool.Stalled: %s...\n\n"
      (String.sub msg 0 (min 60 (String.length msg))));

  (* 4. Fault injection: arm a seeded fault plan and watch a reduction
     either survive the injected chaos or fail cleanly — never hang,
     never return a wrong answer silently. *)
  print_endline "4. scheduler fault injection";
  Pool.Fault.enable { Pool.Fault.off with seed = 42; task_exn = 0.02 };
  (match
     Pool.run pool @@ fun () ->
     Pool.parallel_for_reduce ~grain:16 ~start:0 ~finish:100_000 ~body:Fun.id
       ~combine:( + ) ~init:0 pool
   with
  | total -> Printf.printf "   survived injection, sum = %d (correct = %b)\n"
               total (total = 4_999_950_000)
  | exception Pool.Fault.Injected site ->
    Printf.printf "   failed cleanly: injected fault at %s\n" site);
  Pool.Fault.disable ();
  let c = Pool.Fault.counts () in
  Printf.printf "   injections fired: %d task-exn, %d delays, %d stalls\n"
    c.Pool.Fault.task_exns c.Pool.Fault.steal_delays c.Pool.Fault.worker_stalls;
  let sum =
    Pool.run pool @@ fun () ->
    Pool.parallel_for_reduce ~start:0 ~finish:1_000 ~body:Fun.id ~combine:( + )
      ~init:0 pool
  in
  Printf.printf "   pool healthy after the storm: sum 0..999 = %d\n" sum
