(* The paper's fear spectrum (Fig. 2), made concrete: the same SngInd bug
   under each expression of the pattern.

   Run with:  dune exec examples/fear_spectrum.exe *)

open Rpb_pool
open Rpb_core

let () =
  let pool = Pool.create ~num_workers:4 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  Pool.run pool @@ fun () ->
  let n = 16 in
  let src = Array.init n (fun i -> 100 + i) in
  (* A *buggy* offsets array: index 3 appears twice, index 7 never — the
     kind of algorithmic mistake the SngInd pattern cannot rule out. *)
  let offsets = Array.init n Fun.id in
  offsets.(7) <- 3;

  print_endline "A buggy 'unique' offsets array, under the three expressions:";
  print_endline "";

  (* SCARED: the unchecked (unsafe-Rust-analogue) scatter silently corrupts:
     slot 3 holds one of two racing values, slot 7 is stale. *)
  let out = Array.make n (-1) in
  Scatter.unchecked pool ~out ~offsets ~src;
  Printf.printf "scared (unchecked): slot3=%d slot7=%d  <- silent corruption\n"
    out.(3) out.(7);

  (* Also scared: atomics placate a race detector but validate nothing. *)
  let aout = Rpb_prim.Atomic_array.make n (-1) in
  Scatter.atomic pool ~out:aout ~offsets ~src;
  Printf.printf
    "scared (atomic):    slot3=%d slot7=%d  <- race-free, still wrong\n"
    (Rpb_prim.Atomic_array.get aout 3)
    (Rpb_prim.Atomic_array.get aout 7);

  (* COMFORTABLE: the checked iterator converts the bug into an immediate,
     attributable error at the call site. *)
  (match Scatter.checked pool ~out ~offsets ~src with
   | () -> print_endline "BUG: validation missed the duplicate"
   | exception Scatter.Duplicate_offset o ->
     Printf.printf
       "comfortable (checked): raised Duplicate_offset %d at the call site\n" o);

  print_endline "";
  print_endline "Fearless patterns never reach this point: their access";
  print_endline "disjointness is structural (Stride/Block/D&C), so there is";
  print_endline "no offsets array to get wrong:";
  let v = Array.init 8 Fun.id in
  Par_array.map_inplace pool (fun x -> x * 10) v;
  Printf.printf "stride map_inplace: %s\n"
    (String.concat " " (Array.to_list (Array.map string_of_int v)));

  (* The benign race of Sec. 5.2: every writer stores the same value.  Both
     expressions give the same answer here — which is exactly why the race
     is a trap: nothing checks that they must. *)
  let s = "abracadabra" in
  let racy = Rpb_text.Bwt.distinct_chars `Racy pool s in
  let atomic = Rpb_text.Bwt.distinct_chars `Atomic pool s in
  Printf.printf "\nbenign race demo (distinct chars of %S): racy = atomic is %b\n"
    s (racy = atomic)
