(* Granularity: what adaptive (lazy) splitting buys on fine-grain loops.

   Run with:  dune exec examples/granularity.exe

   Eager splitting decides the task tree before running anything: at
   grain=1 a loop over n indices becomes n-1 deque tasks, and the
   scheduling cost dwarfs a cheap loop body.  The lazy splitter makes the
   same decision from live demand — while the worker's own deque is deep
   it chomps the range inline with zero deque traffic, and only when the
   deque drains does it split off the top half for thieves.  Same loop,
   same answer, radically fewer tasks. *)

open Rpb_pool

let n = 200_000
let workers = 4

(* A deliberately tiny body, so per-task overhead dominates: the shape of
   hist's per-key increment, minus the mutex. *)
let run_loop pool cells =
  Pool.parallel_for pool ~grain:1 ~start:0 ~finish:n ~body:(fun i ->
      let c = cells.(i land 0xff) in
      Atomic.incr c)

let race (policy : Pool.Policy.t) =
  let pool = Pool.create ~policy ~num_workers:workers () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let cells = Array.init 256 (fun _ -> Atomic.make 0) in
  let before = Pool.Stats.capture pool in
  let t0 = Rpb_prim.Timing.monotonic_ns () in
  Pool.run pool (fun () -> run_loop pool cells);
  let t1 = Rpb_prim.Timing.monotonic_ns () in
  let after = Pool.Stats.capture pool in
  let d = Pool.Stats.diff ~before ~after in
  let total = Array.fold_left (fun a c -> a + Atomic.get c) 0 cells in
  assert (total = n);
  (* every index hit exactly once *)
  Printf.printf "  %-22s %10.3f ms   %8d tasks   %6d steals\n"
    policy.Pool.Policy.name
    (float_of_int (t1 - t0) /. 1e6)
    (Pool.Stats.tasks_executed d)
    (Pool.Stats.steals_ok d)

let () =
  Printf.printf
    "grain=1 loop over %d indices, %d workers (tiny atomic-increment body):\n"
    n workers;
  (* Explicit ~grain:1 pins the leaf size; only the *splitter* differs.
     Eager turns every leaf into a deque task; lazy only splits while
     thieves show demand, so almost the whole range runs inline. *)
  race Pool.Policy.default;
  race Pool.Policy.lazy_split;
  (* The probe policies force grain=1 on *defaulted* grains too — this is
     what `make granularity-smoke` races on hist/sync. *)
  race Pool.Policy.eager_grain1;
  race Pool.Policy.lazy_grain1;
  (* The second overhead lever: per-domain minor-heap sizing.  With a
     boxed-accumulator reduction the allocation rate is real; a larger
     minor heap trades space for fewer collections. *)
  let sum_with ?minor_heap_kb () =
    let pool = Pool.create ?minor_heap_kb ~num_workers:workers () in
    Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
    let t0 = Rpb_prim.Timing.monotonic_ns () in
    let s =
      Pool.run pool (fun () ->
          Pool.parallel_for_reduce pool ~start:0 ~finish:n
            ~body:(fun i -> float_of_int i)
            ~init:0. ~combine:( +. ))
    in
    let t1 = Rpb_prim.Timing.monotonic_ns () in
    (s, float_of_int (t1 - t0) /. 1e6)
  in
  let expect = float_of_int (n * (n - 1) / 2) in
  let s1, ms1 = sum_with () in
  let s2, ms2 = sum_with ~minor_heap_kb:8192 () in
  assert (s1 = expect && s2 = expect);
  Printf.printf
    "float reduce: default minor heap %.3f ms, 8 MiB minor heap %.3f ms\n" ms1
    ms2
