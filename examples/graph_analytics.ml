(* Graph analytics: the irregular benchmarks end to end on a generated
   road-style network and a power-law graph.

   Run with:  dune exec examples/graph_analytics.exe *)

open Rpb_graph

let analyze pool name g =
  Printf.printf "\n== %s: |V|=%d |E|=%d (avg deg %.1f, max deg %d)\n" name
    (Csr.n g) (Csr.m g) (Csr.avg_degree g)
    (Csr.max_degree pool g);
  (* BFS and SSSP on the MultiQueue scheduler (paper Sec. 6). *)
  let dist = Traverse.bfs pool g ~src:0 in
  let reached =
    Rpb_core.Par_array.count pool (fun d -> d <> max_int) dist
  in
  let ecc =
    Array.fold_left (fun acc d -> if d <> max_int then max acc d else acc) 0 dist
  in
  Printf.printf "bfs from 0: reached %d vertices, eccentricity %d\n" reached ecc;
  (match Reference.bfs_distances g ~src:0 = dist with
   | true -> print_endline "bfs verified against sequential reference"
   | false -> print_endline "bfs MISMATCH");
  let sdist = Traverse.sssp pool g ~src:0 in
  let total =
    Array.fold_left (fun acc d -> if d <> max_int then acc + d else acc) 0 sdist
  in
  Printf.printf "sssp from 0: sum of distances %d (verified: %b)\n" total
    (sdist = Reference.dijkstra g ~src:0);
  (* MIS (reservation rounds, AW). *)
  let mis = Mis.compute pool g in
  let size = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 mis in
  Printf.printf "maximal independent set: %d vertices (valid: %b)\n" size
    (Reference.is_maximal_independent_set g mis);
  (* Spanning structure. *)
  let forest = Spanning_forest.spanning_forest pool g in
  Printf.printf "spanning forest: %d edges (%d components)\n"
    (Array.length forest)
    (Csr.n g - Array.length forest);
  let msf = Spanning_forest.minimum_spanning_forest pool g in
  Printf.printf "minimum spanning forest weight: %d (kruskal: %d)\n"
    (Spanning_forest.forest_weight g msf)
    (Reference.spanning_forest_weight g)

let () =
  let pool = Rpb_pool.Pool.create ~num_workers:4 () in
  Fun.protect ~finally:(fun () -> Rpb_pool.Pool.shutdown pool) @@ fun () ->
  Rpb_pool.Pool.run pool @@ fun () ->
  let road = Generate.road_grid pool ~rows:40 ~cols:40 ~weighted:true () in
  analyze pool "road grid 40x40" road;
  let link =
    Csr.symmetrize pool
      (Generate.power_law pool ~scale:10 ~edge_factor:10 ~weighted:true ())
  in
  analyze pool "power-law 2^10" link
