(* Mesh refinement: Delaunay-triangulate a Kuzmin point set (skinny triangles
   galore) and refine it with the reservation-based parallel algorithm.

   Run with:  dune exec examples/mesh_refinement.exe *)

open Rpb_geom

let () =
  let pool = Rpb_pool.Pool.create ~num_workers:4 () in
  Fun.protect ~finally:(fun () -> Rpb_pool.Pool.shutdown pool) @@ fun () ->
  Rpb_pool.Pool.run pool @@ fun () ->
  let n = 800 in
  let points = Pointgen.kuzmin ~n ~seed:77 in
  Printf.printf "triangulating %d Kuzmin-distributed points...\n" n;
  let (mesh, dt) = Rpb_prim.Timing.time (fun () -> Delaunay.triangulate points) in
  Printf.printf "triangulation: %d real triangles in %.3f s (Delaunay: %b)\n"
    (Mesh.num_real_triangles pool mesh)
    dt
    (Delaunay.is_delaunay pool mesh);
  let min_angle = 26.0 in
  Printf.printf "min angle before refinement: %.2f deg (%d skinny triangles)\n"
    (Mesh.min_live_angle pool mesh)
    (Refine.count_bad pool mesh ~min_angle);
  let (stats, dt) =
    Rpb_prim.Timing.time (fun () ->
        Refine.refine ~min_angle ~mode:Refine.Reserving pool mesh)
  in
  Printf.printf
    "refined in %.3f s: %d rounds, %d inserted, %d skipped, %d bad left\n" dt
    stats.Refine.rounds stats.Refine.inserted stats.Refine.skipped
    stats.Refine.remaining_bad;
  Printf.printf "final mesh: %d real triangles, min angle %.2f deg, valid: %b\n"
    stats.Refine.final_real_triangles stats.Refine.final_min_angle
    (Mesh.validate mesh = Ok ());

  (* The rest of the geometry kit on the same point set. *)
  let hull = Quickhull.convex_hull pool points in
  Printf.printf "convex hull: %d of %d points (valid: %b)\n" (Array.length hull)
    n
    (Quickhull.is_convex_hull points hull);
  let tree = Quadtree.build pool points in
  let queries = Pointgen.uniform_square ~n:5 ~seed:78 in
  Array.iter
    (fun (q : Point.t) ->
      match Quadtree.nearest tree q with
      | Some i ->
        Printf.printf "nearest to (%.2f, %.2f): point %d at distance %.3f\n"
          q.Point.x q.Point.y i
          (Point.dist q points.(i))
      | None -> ())
    queries
