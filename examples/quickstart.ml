(* Quickstart: the regular patterns (paper Sec. 4) on our Rayon-style API.

   Run with:  dune exec examples/quickstart.exe *)

open Rpb_pool
open Rpb_core

let () =
  (* A pool is the explicit version of Rayon's global thread pool. *)
  let pool = Pool.create ~num_workers:4 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  Pool.run pool @@ fun () ->
  (* --- RO: parallel reduction (paper Listing 3). --- *)
  let v = Array.init 1_000_000 (fun i -> i mod 1000) in
  let sum = Par_array.sum pool v in
  Printf.printf "parallel sum of %d elements: %d\n" (Array.length v) sum;

  (* --- Stride: in-place squaring (paper Listing 4e). --- *)
  let squares = Array.init 10 (fun i -> i + 1) in
  Par_array.map_inplace pool (fun x -> x * x) squares;
  Printf.printf "squares: %s\n"
    (String.concat " " (Array.to_list (Array.map string_of_int squares)));

  (* --- Block: chunked writes (paper Listing 5). --- *)
  let blocks = Array.make 16 0 in
  Par_array.chunks pool ~chunk:4 blocks (fun lo hi ->
      for i = lo to hi - 1 do
        blocks.(i) <- lo / 4
      done);
  Printf.printf "block ids: %s\n"
    (String.concat " " (Array.to_list (Array.map string_of_int blocks)));

  (* --- D&C: merge sort through join (paper Listing 9). --- *)
  let rng = Rpb_prim.Rng.create 1 in
  let data = Array.init 100_000 (fun _ -> Rpb_prim.Rng.int rng 1_000_000) in
  let sorted = Rpb_parseq.Sort.merge_sort pool ~cmp:compare data in
  Printf.printf "merge sort: %d elements, sorted = %b\n" (Array.length sorted)
    (Rpb_prim.Util.is_sorted sorted);

  (* --- Prefix sum, the paper's canonical regular phase. --- *)
  let ones = Array.make 10 1 in
  let prefix, total = Rpb_parseq.Scan.exclusive_int pool ones in
  Printf.printf "exclusive scan of ten 1s: %s (total %d)\n"
    (String.concat " " (Array.to_list (Array.map string_of_int prefix)))
    total;

  (* --- SngInd: the irregular scatter, checked vs unchecked (Listing 6). --- *)
  let n = 8 in
  let offsets = Rpb_prim.Rng.permutation (Rpb_prim.Rng.create 2) n in
  let src = Array.init n (fun i -> 10 * i) in
  let out = Array.make n (-1) in
  Scatter.checked pool ~out ~offsets ~src;
  Printf.printf "checked scatter through %s: ok\n"
    (String.concat "," (Array.to_list (Array.map string_of_int offsets)));
  (* A buggy offsets array is *caught* by the checked iterator: *)
  let bad = [| 0; 1; 1; 3; 4; 5; 6; 7 |] in
  (match Scatter.checked pool ~out ~offsets:bad ~src with
   | () -> print_endline "BUG: duplicate not detected"
   | exception Scatter.Duplicate_offset o ->
     Printf.printf "checked scatter caught duplicate offset %d (comfort!)\n" o);

  (* --- RngInd: monotone chunk boundaries validated cheaply (Listing 7). --- *)
  let chunk_offsets = [| 0; 3; 3; 8 |] in
  let out = Array.make 8 0 in
  Chunks_ind.fill_chunks_ind pool ~out ~offsets:chunk_offsets
    ~f:(fun chunk _ -> chunk + 1);
  Printf.printf "ranged-indirect fill: %s\n"
    (String.concat " " (Array.to_list (Array.map string_of_int out)))
