(* Text indexing: suffix array, LCP, longest repeated substring, and a
   Burrows–Wheeler roundtrip on a generated wiki-like corpus.

   Run with:  dune exec examples/text_index.exe *)

open Rpb_text

let () =
  let pool = Rpb_pool.Pool.create ~num_workers:4 () in
  Fun.protect ~finally:(fun () -> Rpb_pool.Pool.shutdown pool) @@ fun () ->
  Rpb_pool.Pool.run pool @@ fun () ->
  let text = Text_gen.wiki ~size:20_000 ~seed:2024 in
  Printf.printf "corpus: %d bytes, starts with: %s...\n" (String.length text)
    (String.sub text 0 60);

  (* Suffix array via parallel prefix doubling. *)
  let (sa, dt) = Rpb_prim.Timing.time (fun () -> Suffix_array.build pool text) in
  Printf.printf "suffix array built in %.3f s (valid: %b)\n" dt
    (Array.length sa = String.length text);

  (* LCP and the longest repeated substring. *)
  let lcp = Lcp.kasai pool text ~sa in
  let avg_lcp =
    float_of_int (Array.fold_left ( + ) 0 lcp) /. float_of_int (Array.length lcp)
  in
  Printf.printf "average LCP: %.1f\n" avg_lcp;
  let r = Lcp.longest_repeated_substring pool text in
  Printf.printf "longest repeated substring: %d chars at %d: %S\n"
    r.Lcp.length r.Lcp.position
    (String.sub text r.Lcp.position (min 60 r.Lcp.length));

  (* Burrows–Wheeler: encode, decode, verify. *)
  let encoded = Bwt.encode pool text in
  let (decoded, dt) = Rpb_prim.Timing.time (fun () -> Bwt.decode pool encoded) in
  Printf.printf "BWT roundtrip in %.3f s: %s\n" dt
    (if String.equal decoded text then "exact" else "MISMATCH");

  (* The fear/overhead trade-off on this very workload (paper Fig. 5a). *)
  let (_, t_unsafe) =
    Rpb_prim.Timing.time (fun () ->
        Suffix_array.build ~mode:Suffix_array.Unchecked_scatter pool text)
  in
  let (_, t_checked) =
    Rpb_prim.Timing.time (fun () ->
        Suffix_array.build ~mode:Suffix_array.Checked_scatter pool text)
  in
  Printf.printf
    "suffix array, unsafe scatter: %.3f s; checked scatter: %.3f s (%.2fx)\n"
    t_unsafe t_checked (t_checked /. t_unsafe)
