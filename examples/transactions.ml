(* The "transactions" pattern the paper leaves as future work, explored with
   our TL2-style STM: a concurrent bank with invariant-preserving transfers,
   plus the other absent patterns (futures, speculation, pipeline, B&B).

   Run with:  dune exec examples/transactions.exe *)

open Rpb_extra

let () =
  (* --- STM: transfers preserve total balance under contention. --- *)
  let n_accounts = 16 in
  let accounts = Array.init n_accounts (fun _ -> Stm.tvar 1_000) in
  let workers = 4 and transfers = 5_000 in
  let domains =
    List.init workers (fun d ->
        Domain.spawn (fun () ->
            let rng = Rpb_prim.Rng.create (1000 + d) in
            for _ = 1 to transfers do
              let a = Rpb_prim.Rng.int rng n_accounts in
              let b = (a + 1 + Rpb_prim.Rng.int rng (n_accounts - 1)) mod n_accounts in
              let amount = Rpb_prim.Rng.int rng 100 in
              Stm.atomically (fun tx ->
                  let xa = Stm.read tx accounts.(a) in
                  if xa >= amount then begin
                    Stm.write tx accounts.(a) (xa - amount);
                    Stm.write tx accounts.(b) (Stm.read tx accounts.(b) + amount)
                  end)
            done))
  in
  List.iter Domain.join domains;
  let total = Array.fold_left (fun acc v -> acc + Stm.get v) 0 accounts in
  let commits, aborts = Stm.stats () in
  Printf.printf
    "STM bank: %d workers x %d transfers; total = %d (expected %d)\n"
    workers transfers total (n_accounts * 1_000);
  Printf.printf "STM stats: %d commits, %d aborts (retried transparently)\n\n"
    commits aborts;

  let pool = Rpb_pool.Pool.create ~num_workers:4 () in
  Fun.protect ~finally:(fun () -> Rpb_pool.Pool.shutdown pool) @@ fun () ->
  Rpb_pool.Pool.run pool @@ fun () ->
  (* --- Futures: non-strict fork-join. --- *)
  let shared = Future.spawn pool (fun () -> Rpb_prim.Rng.hash64 7) in
  let sum =
    List.init 4 (fun i -> Future.map pool (fun x -> (x + i) mod 1000) shared)
    |> List.map (Future.get pool)
    |> List.fold_left ( + ) 0
  in
  Printf.printf "futures: one task's result consumed by 4 siblings (sum %d)\n" sum;

  (* --- Speculative selection. --- *)
  let result =
    Speculate.select pool
      ~guard:(fun () -> Rpb_prim.Rng.hash64 1 mod 2 = 0)
      (fun () -> "even-branch")
      (fun () -> "odd-branch")
  in
  Printf.printf "speculative select picked: %s\n" result;

  (* --- Pipeline over a stream. --- *)
  let p =
    Pipeline.(
      stage (fun x -> x * x)
      >>> stage (fun x -> x + 1)
      >>> stage string_of_int)
  in
  let out = Pipeline.run p (Array.init 10 Fun.id) in
  Printf.printf "pipeline (3 stages, 3 domains): %s\n"
    (String.concat " " (Array.to_list out));

  (* --- Branch and bound: 0/1 knapsack. --- *)
  let items, capacity = Branch_bound.Knapsack.random_instance ~n:26 ~seed:5 in
  let optimum =
    Branch_bound.maximize pool (Branch_bound.Knapsack.problem items ~capacity)
  in
  Printf.printf "branch&bound knapsack (26 items): optimum %d (DP agrees: %b)\n"
    optimum
    (optimum = Branch_bound.Knapsack.solve_dp items ~capacity)
