exception Infeasible of string

type variant = {
  name : string;
  lines_of_code : int;
  run : workers:int -> pool:Rpb_pool.Pool.t -> int array -> unit;
}

let task = Rpb_prim.Rng.hash64

let serial ~workers:_ ~pool:_ v =
  for i = 0 to Array.length v - 1 do
    v.(i) <- task v.(i)
  done

let thread_per_task_cap = 2_000

(* Listing 13: spawn a thread per element.  The paper's version fills the
   stack and panics at 10^9 elements; we refuse past a cap instead. *)
let thread_per_task ~workers:_ ~pool:_ v =
  let n = Array.length v in
  if n > thread_per_task_cap then
    raise
      (Infeasible
         (Printf.sprintf "thread-per-task refuses n > %d (the paper's panics)"
            thread_per_task_cap));
  let threads =
    Array.init n (fun i -> Thread.create (fun () -> v.(i) <- task v.(i)) ())
  in
  Array.iter Thread.join threads

(* Listing 14: slice the vector into one chunk per core. *)
let chunk_per_core ~workers ~pool:_ v =
  let n = Array.length v in
  let per = Rpb_prim.Util.ceil_div n (max workers 1) in
  let domains =
    Array.init (max workers 1) (fun w ->
        Domain.spawn (fun () ->
            let lo = w * per and hi = min n ((w + 1) * per) in
            for i = lo to hi - 1 do
              v.(i) <- task v.(i)
            done))
  in
  Array.iter Domain.join domains

(* Listing 15: a software runtime pulling fixed-size jobs off a locked
   queue. *)
let job_queue ~workers ~pool:_ v =
  let n = Array.length v in
  let job_size = 10_000 in
  let next = Atomic.make 0 in
  let domains =
    Array.init (max workers 1) (fun _ ->
        Domain.spawn (fun () ->
            let rec loop () =
              let lo = Atomic.fetch_and_add next job_size in
              if lo < n then begin
                let hi = min n (lo + job_size) in
                for i = lo to hi - 1 do
                  v.(i) <- task v.(i)
                done;
                loop ()
              end
            in
            loop ()))
  in
  Array.iter Domain.join domains

(* Listing 12: the Rayon-style one-liner on our pool. *)
let pool_parallel_for ~workers:_ ~pool v =
  Rpb_core.Par_array.map_inplace pool task v

let variants =
  [
    { name = "serial"; lines_of_code = 4; run = serial };
    { name = "par_1 (thread/task)"; lines_of_code = 8; run = thread_per_task };
    { name = "par_2 (chunk/core)"; lines_of_code = 14; run = chunk_per_core };
    { name = "par_3 (job queue)"; lines_of_code = 21; run = job_queue };
    { name = "par_rayon (pool)"; lines_of_code = 2; run = pool_parallel_for };
  ]

let expected v = Array.map task v
