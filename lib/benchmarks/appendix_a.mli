(** Appendix A microbenchmark: element-wise hashing of a vector under five
    parallelization strategies (paper Listings 11–15 and Fig. 6).

    - [serial]: plain loop;
    - [thread_per_task]: one thread per element (Listing 13 — the paper's
      version panics at 10^9 elements; ours refuses beyond a cap);
    - [chunk_per_core]: one domain per worker over equal slices (Listing 14);
    - [job_queue]: a mutex-guarded queue of fixed-size jobs drained by
      worker domains (Listing 15);
    - [pool_parallel_for]: our work-stealing pool (Listing 12's Rayon). *)

exception Infeasible of string

type variant = {
  name : string;
  lines_of_code : int;  (** the Fig. 6 right-axis metric, for our OCaml code *)
  run : workers:int -> pool:Rpb_pool.Pool.t -> int array -> unit;
}

val task : int -> int
(** The PBBS hash of Listing 10. *)

val variants : variant list
(** In Fig. 6 order: serial, par_1, par_2, par_3, par_rayon. *)

val expected : int array -> int array
(** Oracle: what any variant must turn the input into. *)
