(* bfs — breadth-first search on the MultiQueue scheduler (paper Table 1 and
   Sec. 6, inputs: link, road).  Dynamic task dispatch: workers pop
   (distance, vertex) tasks, relax with atomic fetch-min (AW), and push
   discovered work. *)

open Rpb_core

let entry : Common.entry =
  {
    name = "bfs";
    full_name = "breadth-first search (MultiQueue)";
    inputs = [ "link"; "road" ];
    patterns = Pattern.[ RO; AW ];
    dynamic = true;
    access_sites = Pattern.[ (RO, 1); (AW, 2) ];
    mode_note = "all switches: MQ + atomic distance relaxation";
    prepare =
      (fun pool ~input ~scale ->
        let g = Graph_inputs.load pool ~name:input ~scale ~weighted:false ~symmetric:true in
        let expected = Rpb_graph.Reference.bfs_distances g ~src:0 in
        let last = ref [||] in
        {
          Common.size = Graph_inputs.describe g;
          run_seq = (fun () -> last := Rpb_graph.Reference.bfs_distances g ~src:0);
          run_par = (fun _mode -> last := Rpb_graph.Traverse.bfs pool g ~src:0);
          verify = (fun () -> !last = expected);
          snapshot = (fun () -> Array.copy !last);
        });
  }
