(* bw — Burrows–Wheeler decode (paper Table 1, input: wiki).

   Prepare encodes a wiki-like text (untimed); the measured phase is the
   decode: a parallel stable counting-rank builds the LF mapping (SngInd —
   the ranks are a permutation by construction), then a sequential cycle walk
   emits the text. *)

open Rpb_core

let decode_synchronized pool bwt =
  (* "Unnecessary synchronization": pipe the LF mapping through atomic cells
     (relaxed stores/loads), as the paper's Fig. 5(b) variant does. *)
  let lf_plain = Rpb_text.Bwt.lf_mapping pool bwt in
  let n = Array.length lf_plain in
  let atomic = Rpb_prim.Atomic_array.make n 0 in
  Rpb_pool.Pool.parallel_for ~start:0 ~finish:n
    ~body:(fun i -> Rpb_prim.Atomic_array.unsafe_set atomic i lf_plain.(i))
    pool;
  let out = Bytes.create (n - 1) in
  let row = ref 0 in
  for k = n - 2 downto 0 do
    Bytes.unsafe_set out k bwt.[!row];
    row := Rpb_prim.Atomic_array.get atomic !row
  done;
  Bytes.unsafe_to_string out

let entry : Common.entry =
  {
    name = "bw";
    full_name = "Burrows-Wheeler decode";
    inputs = [ "wiki" ];
    patterns = Pattern.[ RO; Stride; Block; SngInd; RngInd; AW ];
    dynamic = false;
    access_sites =
      Pattern.[ (RO, 2); (Stride, 6); (Block, 1); (SngInd, 2); (RngInd, 1); (AW, 1) ];
    mode_note = "unsafe: raw LF; checked: validated LF; sync: atomic LF cells";
    prepare =
      (fun pool ~input ~scale ->
        if input <> "wiki" then invalid_arg "bw: input must be wiki";
        (* Decode is linear-time, so bw takes a larger base size than the
           n-log-n text benchmarks; this also keeps the checked-vs-unsafe
           ratio out of the measurement noise. *)
        let size = Common.scaled 32_000 scale in
        let text = Rpb_text.Text_gen.wiki ~size ~seed:101 in
        let encoded = Rpb_text.Bwt.encode pool text in
        let last = ref "" in
        {
          Common.size = Printf.sprintf "%d bytes" size;
          run_seq =
            (fun () ->
              (* Sequential decode: counting-sort LF, then the chase. *)
              let n = String.length encoded in
              let counts = Array.make 257 0 in
              String.iter (fun c -> counts.(Char.code c + 1) <- counts.(Char.code c + 1) + 1) encoded;
              for c = 1 to 256 do
                counts.(c) <- counts.(c) + counts.(c - 1)
              done;
              let lf = Array.make n 0 in
              for i = 0 to n - 1 do
                let c = Char.code encoded.[i] in
                lf.(i) <- counts.(c);
                counts.(c) <- counts.(c) + 1
              done;
              let out = Bytes.create (n - 1) in
              let row = ref 0 in
              for k = n - 2 downto 0 do
                Bytes.unsafe_set out k encoded.[!row];
                row := lf.(!row)
              done;
              last := Bytes.unsafe_to_string out);
          run_par =
            (fun mode ->
              last :=
                match mode with
                | Mode.Unsafe -> Rpb_text.Bwt.decode ~checked:false pool encoded
                | Mode.Checked -> Rpb_text.Bwt.decode ~checked:true pool encoded
                | Mode.Synchronized -> decode_synchronized pool encoded);
          verify = (fun () -> String.equal !last text);
          snapshot = (fun () -> Common.digest_of_string !last);
        });
  }
