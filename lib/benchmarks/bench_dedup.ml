(* dedup — remove duplicates via a concurrent hash set (paper Table 1, input:
   exponential; the Listing 8 data structure).  AW: inserts race through CAS.

   The synchronized switch replaces the lock-free table with striped-mutex
   buckets — same semantics, lock-based arbitration. *)

open Rpb_core
open Rpb_pool

(* The synchronized build mirrors the lock-free table exactly — same linear
   probing over the same slot layout — but arbitration is a striped mutex
   per slot region instead of CAS, the paper's "replace unsafe/lock-free
   with locking" configuration. *)
let dedup_mutex pool data =
  let slots_n = Rpb_prim.Util.ceil_pow2 (2 * Array.length data) in
  let mask = slots_n - 1 in
  let slots = Array.make slots_n (-1) in
  let stripes = 256 in
  let locks = Array.init stripes (fun _ -> Mutex.create ()) in
  Pool.parallel_for ~start:0 ~finish:(Array.length data)
    ~body:(fun i ->
      let k = data.(i) in
      let rec probe idx =
        let m = locks.(idx land (stripes - 1)) in
        Mutex.lock m;
        let cur = slots.(idx) in
        if cur = -1 then begin
          slots.(idx) <- k;
          Mutex.unlock m
        end
        else begin
          Mutex.unlock m;
          if cur <> k then probe ((idx + 1) land mask)
        end
      in
      probe (Rpb_prim.Rng.hash64 k land mask))
    pool;
  Rpb_parseq.Pack.pack pool (fun x -> x <> -1) slots

(* The table is allocated once per prepared input and cleared between runs:
   OCaml's atomics are boxed, so allocating a fresh table per run would
   charge the lock-free build an allocation cost the paper's (intrusive,
   C-style) table does not pay. *)
let dedup_cas pool table data =
  Rpb_chash.Chash.clear pool table;
  Pool.parallel_for ~start:0 ~finish:(Array.length data)
    ~body:(fun i -> ignore (Rpb_chash.Chash.insert table data.(i)))
    pool;
  Rpb_chash.Chash.elements pool table

let entry : Common.entry =
  {
    name = "dedup";
    full_name = "remove duplicates";
    inputs = [ "exponential" ];
    patterns = Pattern.[ RO; Stride; AW ];
    dynamic = false;
    access_sites = Pattern.[ (RO, 1); (Stride, 2); (AW, 2) ];
    mode_note = "unsafe/checked: CAS hash table; sync: striped-mutex buckets";
    prepare =
      (fun pool ~input ~scale ->
        if input <> "exponential" then invalid_arg "dedup: input must be exponential";
        let n = Common.scaled 10_000 scale in
        let rng = Rpb_prim.Rng.create 111 in
        let data = Array.init n (fun _ -> Rpb_prim.Rng.exponential_int rng ~mean:(n / 10)) in
        let expected =
          Array.of_list (List.sort_uniq compare (Array.to_list data))
        in
        let table = Rpb_chash.Chash.create ~capacity:n in
        let last = ref [||] in
        {
          Common.size = Printf.sprintf "%d keys (%d distinct)" n (Array.length expected);
          run_seq =
            (fun () ->
              let tbl = Hashtbl.create n in
              Array.iter (fun k -> Hashtbl.replace tbl k ()) data;
              last := Array.of_seq (Seq.map fst (Hashtbl.to_seq tbl)));
          run_par =
            (fun mode ->
              last :=
                match mode with
                | Mode.Unsafe | Mode.Checked -> dedup_cas pool table data
                | Mode.Synchronized -> dedup_mutex pool data);
          verify =
            (fun () ->
              let got = Array.copy !last in
              Array.sort compare got;
              got = expected);
          (* Element order out of the hash table is schedule-dependent; the
             sorted contents are not. *)
          snapshot = (fun () -> Common.digest_sorted !last);
        });
  }
