(* dr — Delaunay refinement (paper Table 1, input: kuzmin points).  The
   measured phase triangulates and then refines; refinement's cavity
   reservations are atomic priority-writes over shared mesh state (AW) with
   dynamic rounds. *)

open Rpb_core

let quality_angle = 26.0

let entry : Common.entry =
  {
    name = "dr";
    full_name = "Delaunay refinement";
    inputs = [ "kuzmin" ];
    patterns = Pattern.[ RO; Stride; Block; DandC; SngInd; RngInd; AW ];
    dynamic = true;
    access_sites =
      Pattern.[ (RO, 4); (Stride, 3); (Block, 1); (DandC, 1); (SngInd, 1); (RngInd, 1); (AW, 3) ];
    mode_note = "unsafe/checked/sync: reservation-based rounds; baseline: sequential inserts";
    prepare =
      (fun pool ~input ~scale ->
        if input <> "kuzmin" then invalid_arg "dr: input must be kuzmin";
        let n = Common.scaled 200 scale in
        let points = Rpb_geom.Pointgen.kuzmin ~n ~seed:115 in
        let last = ref None in
        {
          Common.size = Printf.sprintf "%d points" n;
          run_seq =
            (fun () ->
              let mesh = Rpb_geom.Delaunay.triangulate points in
              let stats =
                Rpb_geom.Refine.refine ~min_angle:quality_angle
                  ~mode:Rpb_geom.Refine.Sequential pool mesh
              in
              last := Some (mesh, stats));
          run_par =
            (fun _mode ->
              let mesh = Rpb_geom.Delaunay.triangulate points in
              let stats =
                Rpb_geom.Refine.refine ~min_angle:quality_angle
                  ~mode:Rpb_geom.Refine.Reserving pool mesh
              in
              last := Some (mesh, stats));
          verify =
            (fun () ->
              match !last with
              | None -> false
              | Some (mesh, stats) ->
                Rpb_geom.Mesh.validate mesh = Ok ()
                && stats.Rpb_geom.Refine.remaining_bad
                   <= stats.Rpb_geom.Refine.skipped);
          (* Refinement inserts depend on reservation order, so the mesh
             itself is schedule-dependent; the checked quality contract is
             the deterministic observable. *)
          snapshot =
            (fun () ->
              match !last with
              | None -> [||]
              | Some (mesh, stats) ->
                [|
                  Common.digest_of_bool (Rpb_geom.Mesh.validate mesh = Ok ());
                  Common.digest_of_bool
                    (stats.Rpb_geom.Refine.remaining_bad
                     <= stats.Rpb_geom.Refine.skipped);
                |]);
        });
  }
