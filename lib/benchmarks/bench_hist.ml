(* hist — histogram with multi-word accumulators (paper Table 1 and Sec. 7.4:
   "large structs in hist cannot use atomics, requiring Mutexes instead and
   causing a 4x slowdown").

   Each bucket accumulates count/sum/min/max — four words, no single atomic.
   Unsafe/checked builds privatize per block and merge; the synchronized
   build takes the bucket mutex on every update. *)

open Rpb_core

let entry : Common.entry =
  {
    name = "hist";
    full_name = "histogram (struct accumulators)";
    inputs = [ "exponential" ];
    patterns = Pattern.[ RO; Stride; Block; SngInd; AW ];
    dynamic = false;
    access_sites = Pattern.[ (RO, 1); (Stride, 2); (Block, 2); (SngInd, 1); (AW, 1) ];
    mode_note = "unsafe/checked: per-block privatization; sync: mutex per bucket";
    prepare =
      (fun pool ~input ~scale ->
        if input <> "exponential" then invalid_arg "hist: input must be exponential";
        let n = Common.scaled 20_000 scale in
        let buckets = 256 in
        let rng = Rpb_prim.Rng.create 113 in
        let values = Array.init n (fun _ -> Rpb_prim.Rng.exponential_int rng ~mean:1000) in
        let keys = Array.map (fun v -> Rpb_prim.Rng.hash64 v mod buckets) values in
        let expected =
          Rpb_parseq.Histogram.histogram_stats ~mode:Rpb_parseq.Histogram.Stats_seq
            pool ~keys ~values ~buckets
        in
        let last = ref [||] in
        {
          Common.size = Printf.sprintf "%d keys, %d buckets" n buckets;
          run_seq =
            (fun () ->
              last :=
                Rpb_parseq.Histogram.histogram_stats
                  ~mode:Rpb_parseq.Histogram.Stats_seq pool ~keys ~values ~buckets);
          run_par =
            (fun mode ->
              let m =
                match mode with
                | Mode.Unsafe | Mode.Checked -> Rpb_parseq.Histogram.Stats_private
                | Mode.Synchronized -> Rpb_parseq.Histogram.Stats_mutex
              in
              last :=
                Rpb_parseq.Histogram.histogram_stats ~mode:m pool ~keys ~values
                  ~buckets);
          verify =
            (fun () ->
              Array.length !last = Array.length expected
              && Array.for_all2 Rpb_parseq.Histogram.stats_equal !last expected);
          snapshot =
            (fun () ->
              (* Four ints per bucket: count, sum, min, max. *)
              let s = !last in
              Array.init (4 * Array.length s) (fun k ->
                  let b = s.(k / 4) in
                  match k mod 4 with
                  | 0 -> b.Rpb_parseq.Histogram.count
                  | 1 -> b.Rpb_parseq.Histogram.total
                  | 2 -> b.Rpb_parseq.Histogram.vmin
                  | _ -> b.Rpb_parseq.Histogram.vmax));
        });
  }
