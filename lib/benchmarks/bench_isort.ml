(* isort — integer sort: LSD radix with 8-bit digits (paper Table 1, input:
   exponential).  Every digit pass scatters through counting ranks (SngInd);
   the mode switch selects raw, validated, or atomic-store writes. *)

open Rpb_core

let radix_pass mode pool ~shift a =
  let n = Array.length a in
  let keys = Par_array.init pool n (fun i -> (a.(i) lsr shift) land 255) in
  let dest = Rpb_parseq.Radix.rank_by_key pool ~keys ~buckets:256 in
  match mode with
  | Mode.Unsafe ->
    let out = Array.make n 0 in
    Scatter.unchecked pool ~out ~offsets:dest ~src:a;
    out
  | Mode.Checked ->
    let out = Array.make n 0 in
    Scatter.checked pool ~out ~offsets:dest ~src:a;
    out
  | Mode.Synchronized ->
    (* Relaxed atomic stores (Listing 6e): payloads are ints, so the atomic
       destination applies directly. *)
    let out = Rpb_prim.Atomic_array.make n 0 in
    Scatter.atomic pool ~out ~offsets:dest ~src:a;
    Rpb_prim.Atomic_array.to_array out

let radix_sort_with_mode mode pool a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let max_key = Par_array.reduce pool max 0 a in
    let cur = ref (Array.copy a) in
    let shift = ref 0 in
    while max_key lsr !shift > 0 || !shift = 0 do
      cur := radix_pass mode pool ~shift:!shift !cur;
      shift := !shift + 8
    done;
    !cur
  end

let entry : Common.entry =
  {
    name = "isort";
    full_name = "integer sort (radix)";
    inputs = [ "exponential" ];
    patterns = Pattern.[ RO; Stride; SngInd; AW ];
    dynamic = false;
    access_sites = Pattern.[ (RO, 2); (Stride, 4); (SngInd, 2); (AW, 1) ];
    mode_note = "digit scatter: unsafe raw / checked validated / sync atomic stores";
    prepare =
      (fun pool ~input ~scale ->
        if input <> "exponential" then invalid_arg "isort: input must be exponential";
        let n = Common.scaled 10_000 scale in
        let rng = Rpb_prim.Rng.create 109 in
        let data = Array.init n (fun _ -> Rpb_prim.Rng.exponential_int rng ~mean:1_000_000) in
        let expected = Array.copy data in
        Array.sort compare expected;
        let last = ref [||] in
        {
          Common.size = Printf.sprintf "%d keys" n;
          run_seq =
            (fun () ->
              let out = Array.copy data in
              Array.sort compare out;
              last := out);
          run_par = (fun mode -> last := radix_sort_with_mode mode pool data);
          verify = (fun () -> !last = expected);
          snapshot = (fun () -> Array.copy !last);
        });
  }
