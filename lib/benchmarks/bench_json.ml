(* Machine-readable benchmark output.

   The container has no yojson, so this module carries a small self-contained
   JSON value type with a compact printer and a recursive-descent parser —
   enough to emit BENCH_*.json documents, parse them back (the round-trip the
   test suite checks), and parse the Chrome-trace files Pool.Trace writes. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

(* ---------- printing ---------- *)

let escape_to buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* Shortest decimal form that still round-trips, with a trailing ".0" forced
   onto integral values so the reader keeps the int/float distinction. *)
let float_repr f =
  if Float.is_nan f || Float.abs f = infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.1f" f
  else begin
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f
  end

let rec print_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
    Buffer.add_char buf '"';
    escape_to buf s;
    Buffer.add_char buf '"'
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        print_to buf x)
      l;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape_to buf k;
        Buffer.add_string buf "\":";
        print_to buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  print_to buf j;
  Buffer.contents buf

(* ---------- parsing ---------- *)

type cursor = { src : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let rec skip_ws cur =
  match peek cur with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance cur;
    skip_ws cur
  | _ -> ()

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected '%c'" c)

let literal cur word value =
  let n = String.length word in
  if cur.pos + n <= String.length cur.src
     && String.sub cur.src cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "expected %s" word)

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' ->
      advance cur;
      (match peek cur with
       | Some '"' -> Buffer.add_char buf '"'; advance cur
       | Some '\\' -> Buffer.add_char buf '\\'; advance cur
       | Some '/' -> Buffer.add_char buf '/'; advance cur
       | Some 'n' -> Buffer.add_char buf '\n'; advance cur
       | Some 'r' -> Buffer.add_char buf '\r'; advance cur
       | Some 't' -> Buffer.add_char buf '\t'; advance cur
       | Some 'b' -> Buffer.add_char buf '\b'; advance cur
       | Some 'f' -> Buffer.add_char buf '\012'; advance cur
       | Some 'u' ->
         advance cur;
         if cur.pos + 4 > String.length cur.src then fail cur "bad \\u escape";
         let hex = String.sub cur.src cur.pos 4 in
         let code =
           try int_of_string ("0x" ^ hex)
           with _ -> fail cur "bad \\u escape"
         in
         cur.pos <- cur.pos + 4;
         (* Encode the BMP code point as UTF-8 (we never emit surrogates). *)
         if code < 0x80 then Buffer.add_char buf (Char.chr code)
         else if code < 0x800 then begin
           Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
         else begin
           Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
           Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
       | _ -> fail cur "bad escape");
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance cur;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_float = ref false in
  let rec go () =
    match peek cur with
    | Some ('0' .. '9' | '-' | '+') ->
      advance cur;
      go ()
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance cur;
      go ()
    | _ -> ()
  in
  go ();
  let s = String.sub cur.src start (cur.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail cur "bad number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None ->
      (* Integer overflowing the OCaml int range: keep it as a float. *)
      (match float_of_string_opt s with
       | Some f -> Float f
       | None -> fail cur "bad number")

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' -> Str (parse_string cur)
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then begin
      advance cur;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          items (v :: acc)
        | Some ']' ->
          advance cur;
          List.rev (v :: acc)
        | _ -> fail cur "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then begin
      advance cur;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws cur;
        let k = parse_string cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          members ((k, v) :: acc)
        | Some '}' ->
          advance cur;
          List.rev ((k, v) :: acc)
        | _ -> fail cur "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected character '%c'" c)

let of_string s =
  let cur = { src = s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

(* ---------- accessors ---------- *)

let member key = function
  | Obj kvs ->
    (try List.assoc key kvs
     with Not_found -> raise (Parse_error ("missing key " ^ key)))
  | _ -> raise (Parse_error ("not an object while looking up " ^ key))

let member_opt key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> raise (Parse_error ("not an object while looking up " ^ key))

let get_int = function
  | Int i -> i
  | j -> raise (Parse_error ("not an int: " ^ to_string j))

let get_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | j -> raise (Parse_error ("not a number: " ^ to_string j))

let get_bool = function
  | Bool b -> b
  | j -> raise (Parse_error ("not a bool: " ^ to_string j))

let get_str = function
  | Str s -> s
  | j -> raise (Parse_error ("not a string: " ^ to_string j))

let get_list = function
  | List l -> l
  | j -> raise (Parse_error ("not a list: " ^ to_string j))

(* ---------- the BENCH_*.json schema ---------- *)

(* v2 added the "profile" document kind (rpb profile, lib/obs) on top of the
   v1 benchmark-results shape; the results schema itself is unchanged, so
   readers keep accepting v1 documents.  v3 adds the full per-repeat sample
   vector ("samples_ns") and the smoke-run flag ("smoke") to each result
   record; both are optional on read, so v1/v2 records — and v3 records mixed
   into the same document — parse with sane defaults (no samples, not a
   smoke run).  The scheduling-policy name ("policy") rides on the same
   additive convention: optional on read, defaulting to "default" (the only
   policy that existed before it was recorded), so the version number does
   not move and existing readers are unchanged. *)
let schema_version = 3
let accepted_schema_versions = [ 1; 2; 3 ]

type worker_stats = {
  worker_id : int;
  tasks_executed : int;
  steals_ok : int;
  steals_failed : int;
  idle_episodes : int;
  max_deque_depth : int;
}

type record = {
  bench : string;
  input : string;
  mode : string;  (* "seq" | "unsafe" | "checked" | "sync" *)
  scale : int;
  threads : int;
  repeats : int;
  mean_ns : float;
  min_ns : float;
  samples_ns : float array;
      (* per-repeat elapsed times in run order (v3); [||] when the emitting
         writer predates v3 *)
  smoke : bool;
      (* one-shot smoke run (registry listing under --json): excluded from
         baseline comparison so it can't masquerade as a trajectory point *)
  policy : string;
      (* scheduling-policy name the measuring pool ran under; "default" when
         the emitting writer predates the field *)
  verified : bool;
  workers : worker_stats list;
}

let workers_of_pool_stats (s : Rpb_pool.Pool.Stats.t) =
  Array.to_list
    (Array.map
       (fun (w : Rpb_pool.Pool.Stats.worker) ->
         {
           worker_id = w.worker_id;
           tasks_executed = w.tasks_executed;
           steals_ok = w.steals_ok;
           steals_failed = w.steals_failed;
           idle_episodes = w.idle_episodes;
           max_deque_depth = w.max_deque_depth;
         })
       s.per_worker)

let worker_to_json w =
  Obj
    [
      ("id", Int w.worker_id);
      ("tasks", Int w.tasks_executed);
      ("steals_ok", Int w.steals_ok);
      ("steals_failed", Int w.steals_failed);
      ("idle", Int w.idle_episodes);
      ("max_deque_depth", Int w.max_deque_depth);
    ]

let worker_of_json j =
  {
    worker_id = get_int (member "id" j);
    tasks_executed = get_int (member "tasks" j);
    steals_ok = get_int (member "steals_ok" j);
    steals_failed = get_int (member "steals_failed" j);
    idle_episodes = get_int (member "idle" j);
    max_deque_depth = get_int (member "max_deque_depth" j);
  }

let record_to_json r =
  Obj
    [
      ("bench", Str r.bench);
      ("input", Str r.input);
      ("mode", Str r.mode);
      ("scale", Int r.scale);
      ("threads", Int r.threads);
      ("repeats", Int r.repeats);
      ("mean_ns", Float r.mean_ns);
      ("min_ns", Float r.min_ns);
      ("samples_ns", List (Array.to_list (Array.map (fun s -> Float s) r.samples_ns)));
      ("smoke", Bool r.smoke);
      ("policy", Str r.policy);
      ("verified", Bool r.verified);
      ("workers", List (List.map worker_to_json r.workers));
    ]

let record_of_json j =
  {
    bench = get_str (member "bench" j);
    input = get_str (member "input" j);
    mode = get_str (member "mode" j);
    scale = get_int (member "scale" j);
    threads = get_int (member "threads" j);
    repeats = get_int (member "repeats" j);
    mean_ns = get_float (member "mean_ns" j);
    min_ns = get_float (member "min_ns" j);
    samples_ns =
      (* Absent before v3: no per-repeat vector was recorded.  Consumers that
         need samples (Baseline.compare) treat [||] as "point estimates
         only" and fall back to the threshold band on mean/min. *)
      (match member_opt "samples_ns" j with
       | None | Some Null -> [||]
       | Some l -> Array.of_list (List.map get_float (get_list l)));
    smoke =
      (match member_opt "smoke" j with
       | None | Some Null -> false
       | Some b -> get_bool b);
    policy =
      (match member_opt "policy" j with
       | None | Some Null -> "default"
       | Some s -> get_str s);
    verified = get_bool (member "verified" j);
    workers = List.map worker_of_json (get_list (member "workers" j));
  }

let doc ~meta records =
  Obj
    [
      ("schema_version", Int schema_version);
      ("meta", Obj meta);
      ("results", List (List.map record_to_json records));
    ]

let records_of_doc j =
  let v = get_int (member "schema_version" j) in
  if not (List.mem v accepted_schema_versions) then
    raise
      (Parse_error
         (Printf.sprintf "unsupported schema_version %d (want <= %d)" v
            schema_version));
  List.map record_of_json (get_list (member "results" j))

let write_doc ~path ~meta records =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string (doc ~meta records));
      output_char oc '\n')

let read_doc path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      records_of_doc (of_string s))
