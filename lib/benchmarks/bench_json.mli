(** Machine-readable benchmark output (the BENCH_*.json schema).

    Self-contained JSON support (the container carries no yojson): a value
    type, a compact printer, a parser, and the typed record the bench harness
    emits for every timed benchmark run.  CI archives these files so future
    PRs can diff scheduler behaviour — times, steals, task counts — against
    earlier commits mechanically instead of by eye. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

val to_string : json -> string
(** Compact (single-line) JSON.  NaN and infinities print as [null]; floats
    use the shortest decimal form that round-trips, with integral values
    keeping a [".0"] suffix so the int/float distinction survives. *)

val of_string : string -> json
(** Parses a complete JSON document.  @raise Parse_error on malformed input
    or trailing garbage. *)

val member : string -> json -> json
(** Object field lookup. @raise Parse_error when absent or not an object. *)

val member_opt : string -> json -> json option
(** Like {!member} but [None] when the key is absent (still
    @raise Parse_error when the value is not an object).  The accessor for
    fields added by later schema versions. *)

val get_int : json -> int

val get_float : json -> float
(** Accepts [Int] too. *)

val get_bool : json -> bool
val get_str : json -> string
val get_list : json -> json list

(** {1 The benchmark-result schema} *)

val schema_version : int
(** Version written into every emitted document.  v2 added the "profile"
    document kind ([rpb profile], [Rpb_obs]); v3 added the per-repeat
    [samples_ns] vector and the [smoke] flag to each result record (both
    optional on read, so older documents keep parsing). *)

val accepted_schema_versions : int list
(** Versions {!records_of_doc} still parses (currently [[1; 2; 3]]). *)

type worker_stats = {
  worker_id : int;
  tasks_executed : int;
  steals_ok : int;
  steals_failed : int;
  idle_episodes : int;
  max_deque_depth : int;
}

type record = {
  bench : string;
  input : string;
  mode : string;  (** "seq" | "unsafe" | "checked" | "sync" *)
  scale : int;
  threads : int;
  repeats : int;
  mean_ns : float;
  min_ns : float;
  samples_ns : float array;
      (** per-repeat elapsed times in run order (v3); [[||]] when read from a
          pre-v3 document — the statistics layer ([Rpb_obs.Stats]) then falls
          back to the point estimates *)
  smoke : bool;
      (** one-shot smoke run (the [--json] registry listing): never compared
          against baselines *)
  policy : string;
      (** scheduling-policy name ([Rpb_pool.Pool.policy_name]) of the
          measuring pool; ["default"] when read from a document that predates
          the field.  Additive v3 field: optional on read, so existing
          documents and readers are unchanged. *)
  verified : bool;
  workers : worker_stats list;
}

val workers_of_pool_stats : Rpb_pool.Pool.Stats.t -> worker_stats list

val worker_to_json : worker_stats -> json
val worker_of_json : json -> worker_stats
(** Exposed for the profile document ([Rpb_obs.Profile]), which embeds the
    same per-worker counter shape. *)

val record_to_json : record -> json
val record_of_json : json -> record

val doc : meta:(string * json) list -> record list -> json
(** The top-level document: [{"schema_version": ..., "meta": {...},
    "results": [...]}]. *)

val records_of_doc : json -> record list
(** Inverse of {!doc} (checks [schema_version]). *)

val write_doc : path:string -> meta:(string * json) list -> record list -> unit
val read_doc : string -> record list
