(* lrs — longest repeated substring (paper Table 1, input: wiki).

   Suffix array + Kasai LCP + parallel arg-max.  The dominant cost is the
   suffix array's SngInd rounds, so the checked/unchecked gap mirrors sa's
   but with the extra LCP work diluting it less (the paper reports lrs as
   the worst case, 2.8x). *)

open Rpb_core

let entry : Common.entry =
  {
    name = "lrs";
    full_name = "longest repeated substring";
    inputs = [ "wiki" ];
    patterns = Pattern.[ RO; Stride; Block; SngInd; RngInd; AW ];
    dynamic = false;
    access_sites =
      Pattern.[ (RO, 4); (Stride, 8); (SngInd, 3); (RngInd, 1); (AW, 1) ];
    mode_note =
      "unsafe: raw rank scatter; checked: validated; sync: falls back to checked";
    prepare =
      (fun pool ~input ~scale ->
        if input <> "wiki" then invalid_arg "lrs: input must be wiki";
        let size = Common.scaled 4_000 scale in
        let text = Rpb_text.Text_gen.wiki ~size ~seed:105 in
        let last = ref Rpb_text.Lcp.{ length = -1; position = 0 } in
        let seq_result = ref None in
        {
          Common.size = Printf.sprintf "%d bytes" size;
          run_seq =
            (fun () ->
              let sa = Rpb_text.Suffix_array.build_seq text in
              let n = String.length text in
              (* sequential Kasai + max *)
              let rank = Array.make n 0 in
              Array.iteri (fun i p -> rank.(p) <- i) sa;
              let best = ref 0 and best_pos = ref 0 in
              let h = ref 0 in
              for i = 0 to n - 1 do
                if rank.(i) > 0 then begin
                  let j = sa.(rank.(i) - 1) in
                  while i + !h < n && j + !h < n && text.[i + !h] = text.[j + !h] do
                    incr h
                  done;
                  if !h > !best then begin
                    best := !h;
                    best_pos := i
                  end;
                  if !h > 0 then decr h
                end
                else h := 0
              done;
              seq_result := Some !best;
              last := Rpb_text.Lcp.{ length = !best; position = !best_pos });
          run_par =
            (fun mode ->
              let m =
                match mode with
                | Mode.Unsafe -> Rpb_text.Suffix_array.Unchecked_scatter
                | Mode.Checked | Mode.Synchronized ->
                  Rpb_text.Suffix_array.Checked_scatter
              in
              last := Rpb_text.Lcp.longest_repeated_substring ~mode:m pool text);
          verify =
            (fun () ->
              let r = !last in
              r.Rpb_text.Lcp.length >= 0
              && begin
                (* The reported substring must occur at least twice. *)
                let len = r.Rpb_text.Lcp.length in
                len = 0
                || begin
                  let sub = String.sub text r.Rpb_text.Lcp.position len in
                  let count = ref 0 in
                  let i = ref 0 in
                  (try
                     while !count < 2 do
                       let j = Str_search.find text sub !i in
                       incr count;
                       i := j + 1
                     done
                   with Not_found -> ());
                  !count >= 2
                end
              end
              && match !seq_result with
                 | Some l -> l = (!last).Rpb_text.Lcp.length
                 | None -> true);
          (* Only the length is schedule-independent: distinct positions can
             carry equally-long repeats and the arg-max tiebreak differs. *)
          snapshot = (fun () -> [| (!last).Rpb_text.Lcp.length |]);
        });
  }
