(* mis — maximal independent set (paper Table 1, inputs: link, road).
   Reservation rounds with AW status writes; the unsafe switch races plain
   stores (benign by algorithm), the others arbitrate through atomics. *)

open Rpb_core

let entry : Common.entry =
  {
    name = "mis";
    full_name = "maximal independent set";
    inputs = [ "link"; "road" ];
    patterns = Pattern.[ RO; Stride; SngInd; RngInd; AW ];
    dynamic = false;
    access_sites =
      Pattern.[ (RO, 3); (Stride, 3); (SngInd, 1); (RngInd, 1); (AW, 2) ];
    mode_note = "unsafe: plain-store status (benign race); checked/sync: atomic status";
    prepare =
      (fun pool ~input ~scale ->
        let g = Graph_inputs.load pool ~name:input ~scale ~weighted:false ~symmetric:true in
        let last = ref [||] in
        {
          Common.size = Graph_inputs.describe g;
          run_seq = (fun () -> last := Rpb_graph.Mis.compute_seq g);
          run_par =
            (fun mode ->
              let sync =
                match mode with
                | Mode.Unsafe -> Rpb_graph.Mis.Plain_status
                | Mode.Checked | Mode.Synchronized -> Rpb_graph.Mis.Atomic_status
              in
              last := Rpb_graph.Mis.compute ~sync pool g);
          verify = (fun () -> Rpb_graph.Reference.is_maximal_independent_set g !last);
          (* Different (all correct) schedules elect different maximal sets;
             the deterministic observable is maximality + independence. *)
          snapshot =
            (fun () ->
              [| Common.digest_of_bool
                   (Rpb_graph.Reference.is_maximal_independent_set g !last) |]);
        });
  }
