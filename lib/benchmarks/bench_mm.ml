(* mm — maximal matching (paper Table 1, inputs: rmat, road).
   Edge-priority reservations: atomic fetch-min on endpoint cells (AW). *)

open Rpb_core

let entry : Common.entry =
  {
    name = "mm";
    full_name = "maximal matching";
    inputs = [ "rmat"; "road" ];
    patterns = Pattern.[ RO; Stride; SngInd; RngInd; AW ];
    dynamic = false;
    access_sites =
      Pattern.[ (RO, 2); (Stride, 3); (SngInd, 1); (RngInd, 1); (AW, 2) ];
    mode_note = "all switches: atomic priority-writes (no cheaper expression exists)";
    prepare =
      (fun pool ~input ~scale ->
        let g = Graph_inputs.load pool ~name:input ~scale ~weighted:false ~symmetric:true in
        let edges = Rpb_graph.Csr.edges g in
        let last = ref [||] in
        {
          Common.size = Graph_inputs.describe g;
          run_seq =
            (fun () -> last := Rpb_graph.Matching.compute_seq ~n:(Rpb_graph.Csr.n g) edges);
          run_par =
            (fun _mode ->
              last := Rpb_graph.Matching.compute pool ~edges ~n:(Rpb_graph.Csr.n g));
          verify =
            (fun () -> Rpb_graph.Reference.is_maximal_matching g ~edges ~selected:!last);
          (* The elected matching is schedule-dependent; maximality is not. *)
          snapshot =
            (fun () ->
              [| Common.digest_of_bool
                   (Rpb_graph.Reference.is_maximal_matching g ~edges
                      ~selected:!last) |]);
        });
  }
