(* msf — minimum spanning forest by Boruvka rounds (paper Table 1, inputs:
   rmat, road; weighted).  Per-component atomic priority-writes elect light
   edges; unions race through CAS (AW, dynamic round structure). *)

open Rpb_core

let entry : Common.entry =
  {
    name = "msf";
    full_name = "minimum spanning forest";
    inputs = [ "rmat"; "road" ];
    patterns = Pattern.[ RO; Stride; SngInd; RngInd; AW ];
    dynamic = false;
    access_sites =
      Pattern.[ (RO, 3); (Stride, 3); (SngInd, 1); (RngInd, 1); (AW, 3) ];
    mode_note = "all switches: atomic elections + CAS unions";
    prepare =
      (fun pool ~input ~scale ->
        let g = Graph_inputs.load pool ~name:input ~scale ~weighted:true ~symmetric:true in
        let expected_weight = Rpb_graph.Reference.spanning_forest_weight g in
        let last = ref [||] in
        {
          Common.size = Graph_inputs.describe g;
          run_seq =
            (fun () ->
              (* Kruskal (sequential baseline), recording edge indices. *)
              let edges = Rpb_graph.Csr.edges g in
              let order = Array.init (Array.length edges) Fun.id in
              Array.sort
                (fun a b ->
                  compare
                    (Rpb_graph.Csr.edge_weight g a, a)
                    (Rpb_graph.Csr.edge_weight g b, b))
                order;
              let uf = Rpb_graph.Union_find.create (Rpb_graph.Csr.n g) in
              let chosen = ref [] in
              Array.iter
                (fun e ->
                  let u, v = edges.(e) in
                  if u <> v && Rpb_graph.Union_find.union uf u v then
                    chosen := e :: !chosen)
                order;
              last := Array.of_list (List.rev !chosen));
          run_par =
            (fun _mode ->
              last := Rpb_graph.Spanning_forest.minimum_spanning_forest pool g);
          verify =
            (fun () ->
              Rpb_graph.Spanning_forest.forest_weight g !last = expected_weight);
          (* Edge choice can differ on equal weights; the total weight and
             forest size are the deterministic observables. *)
          snapshot =
            (fun () ->
              [| Array.length !last; Rpb_graph.Spanning_forest.forest_weight g !last |]);
        });
  }
