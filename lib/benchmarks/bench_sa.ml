(* sa — suffix array (paper Table 1, input: wiki).

   Prefix doubling: each round is two parallel stable counting-rank passes
   plus a rank rebuild whose scatter goes through the suffix permutation —
   the SngInd write the paper's Fig. 5(a) prices. *)

open Rpb_core

let entry : Common.entry =
  {
    name = "sa";
    full_name = "suffix array";
    inputs = [ "wiki" ];
    patterns = Pattern.[ RO; Stride; Block; SngInd; RngInd; AW ];
    dynamic = false;
    access_sites =
      Pattern.[ (RO, 3); (Stride, 8); (SngInd, 3); (RngInd, 1); (AW, 1) ];
    mode_note =
      "unsafe: raw rank scatter; checked: validated; sync: falls back to checked";
    prepare =
      (fun pool ~input ~scale ->
        if input <> "wiki" then invalid_arg "sa: input must be wiki";
        let size = Common.scaled 4_000 scale in
        let text = Rpb_text.Text_gen.wiki ~size ~seed:103 in
        let last = ref [||] in
        {
          Common.size = Printf.sprintf "%d bytes" size;
          run_seq = (fun () -> last := Rpb_text.Suffix_array.build_seq text);
          run_par =
            (fun mode ->
              let m =
                match mode with
                | Mode.Unsafe -> Rpb_text.Suffix_array.Unchecked_scatter
                | Mode.Checked | Mode.Synchronized ->
                  Rpb_text.Suffix_array.Checked_scatter
              in
              last := Rpb_text.Suffix_array.build ~mode:m pool text);
          verify =
            (fun () ->
              (* Permutation + sampled suffix ordering (full check is
                 quadratic). *)
              let sa = !last in
              let n = String.length text in
              Array.length sa = n
              && begin
                let seen = Array.make n false in
                Array.for_all
                  (fun i ->
                    i >= 0 && i < n && not seen.(i) && begin
                      seen.(i) <- true;
                      true
                    end)
                  sa
              end
              && begin
                let ok = ref true in
                let step = max 1 (n / 2048) in
                let j = ref 1 in
                while !j < n do
                  let a = sa.(!j - 1) and b = sa.(!j) in
                  (* compare suffixes with a bounded window *)
                  let rec cmp i1 i2 fuel =
                    if fuel = 0 then 0
                    else if i1 >= n then -1
                    else if i2 >= n then 1
                    else begin
                      let c = Char.compare text.[i1] text.[i2] in
                      if c <> 0 then c else cmp (i1 + 1) (i2 + 1) (fuel - 1)
                    end
                  in
                  if cmp a b 512 > 0 then ok := false;
                  j := !j + step
                done;
                !ok
              end);
          snapshot = (fun () -> Array.copy !last);
        });
  }
