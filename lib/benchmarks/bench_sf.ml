(* sf — spanning forest via lock-free union-find (paper Table 1, inputs:
   link, road).  Edges race through CAS unions (AW). *)

open Rpb_core

let entry : Common.entry =
  {
    name = "sf";
    full_name = "spanning forest";
    inputs = [ "link"; "road" ];
    patterns = Pattern.[ RO; Stride; SngInd; RngInd; AW ];
    dynamic = false;
    access_sites =
      Pattern.[ (RO, 2); (Stride, 2); (SngInd, 1); (RngInd, 1); (AW, 2) ];
    mode_note = "all switches: CAS union-find (no cheaper expression exists)";
    prepare =
      (fun pool ~input ~scale ->
        let g = Graph_inputs.load pool ~name:input ~scale ~weighted:false ~symmetric:true in
        let expected_size = Rpb_graph.Csr.n g - Rpb_graph.Reference.num_components g in
        let last = ref [||] in
        (* acyclic: replay through a fresh union-find *)
        let acyclic forest =
          let edges = Rpb_graph.Csr.edges g in
          let uf = Rpb_graph.Union_find.create (Rpb_graph.Csr.n g) in
          Array.for_all
            (fun e ->
              let u, v = edges.(e) in
              Rpb_graph.Union_find.union uf u v)
            forest
        in
        {
          Common.size = Graph_inputs.describe g;
          run_seq = (fun () -> last := Rpb_graph.Spanning_forest.spanning_forest_seq g);
          run_par =
            (fun _mode -> last := Rpb_graph.Spanning_forest.spanning_forest pool g);
          verify =
            (fun () -> Array.length !last = expected_size && acyclic !last);
          (* Which edges span is schedule-dependent; the forest size and
             acyclicity are the specification. *)
          snapshot =
            (fun () -> [| Array.length !last; Common.digest_of_bool (acyclic !last) |]);
        });
  }
