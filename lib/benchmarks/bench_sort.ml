(* sort — comparison sort by parallel sample sort (paper Sec. 7.1, input:
   exponentially distributed keys).

   The bucket-scatter phase writes each element to a position produced by a
   counting rank — unique by construction, so the mode switch picks raw,
   validated, or lock-guarded writes for exactly that phase. *)

open Rpb_core
open Rpb_pool

let sample_sort_with_mode mode pool a =
  let n = Array.length a in
  if n <= Rpb_parseq.Sort.seq_cutoff then begin
    let out = Array.copy a in
    Array.stable_sort compare out;
    out
  end
  else begin
    let nbuckets = min 256 (max 2 (int_of_float (sqrt (float_of_int n)) / 16)) in
    let rng = Rpb_prim.Rng.create 0xB0CCE in
    let sample = Array.init (nbuckets * 8) (fun _ -> a.(Rpb_prim.Rng.int rng n)) in
    Array.stable_sort compare sample;
    let pivots = Array.init (nbuckets - 1) (fun i -> sample.((i + 1) * 8)) in
    let bucket_of x =
      let lo = ref 0 and hi = ref (Array.length pivots) in
      while !lo < !hi do
        let mid = !lo + ((!hi - !lo) / 2) in
        if compare pivots.(mid) x < 0 then lo := mid + 1 else hi := mid
      done;
      !lo
    in
    let bids = Par_array.init pool n (fun i -> bucket_of a.(i)) in
    let dest = Rpb_parseq.Radix.rank_by_key pool ~keys:bids ~buckets:nbuckets in
    let out = Array.make n a.(0) in
    (* The mode switch: how the unique-by-construction scatter is written. *)
    (match mode with
     | Mode.Unsafe -> Scatter.unchecked pool ~out ~offsets:dest ~src:a
     | Mode.Checked -> Scatter.checked pool ~out ~offsets:dest ~src:a
     | Mode.Synchronized -> Scatter.mutexed pool ~out ~offsets:dest ~src:a);
    let counts = Rpb_parseq.Histogram.histogram pool ~keys:bids ~buckets:nbuckets in
    let starts, _ = Rpb_parseq.Scan.exclusive_int pool counts in
    Pool.parallel_for ~grain:1 ~start:0 ~finish:nbuckets
      ~body:(fun b ->
        let lo = starts.(b) in
        let hi = if b + 1 < nbuckets then starts.(b + 1) else n in
        if hi - lo > 1 then begin
          let tmp = Array.sub out lo (hi - lo) in
          Array.stable_sort compare tmp;
          Array.blit tmp 0 out lo (hi - lo)
        end)
      pool;
    out
  end

let entry : Common.entry =
  {
    name = "sort";
    full_name = "comparison sort (sample sort)";
    inputs = [ "exponential" ];
    patterns = Pattern.[ RO; Stride; Block; DandC; RngInd ];
    dynamic = false;
    access_sites =
      Pattern.[ (RO, 3); (Stride, 5); (Block, 2); (DandC, 2); (RngInd, 2) ];
    mode_note = "bucket scatter: unsafe raw / checked validated / sync mutexed";
    prepare =
      (fun pool ~input ~scale ->
        if input <> "exponential" then invalid_arg "sort: input must be exponential";
        let n = Common.scaled 10_000 scale in
        let rng = Rpb_prim.Rng.create 107 in
        let data = Array.init n (fun _ -> Rpb_prim.Rng.exponential_int rng ~mean:100_000) in
        let expected = Array.copy data in
        Array.sort compare expected;
        let last = ref [||] in
        {
          Common.size = Printf.sprintf "%d keys" n;
          run_seq =
            (fun () ->
              let out = Array.copy data in
              Array.stable_sort compare out;
              last := out);
          run_par = (fun mode -> last := sample_sort_with_mode mode pool data);
          verify = (fun () -> !last = expected);
          snapshot = (fun () -> Array.copy !last);
        });
  }
