(* sssp — single-source shortest paths on the MultiQueue (paper Table 1 and
   Sec. 6, inputs: link, road; weighted).  Relaxed Dijkstra: out-of-order
   pops are corrected by fetch-min re-relaxation. *)

open Rpb_core

let entry : Common.entry =
  {
    name = "sssp";
    full_name = "single-source shortest paths (MultiQueue)";
    inputs = [ "link"; "road" ];
    patterns = Pattern.[ RO; AW ];
    dynamic = true;
    access_sites = Pattern.[ (RO, 1); (AW, 2) ];
    mode_note = "all switches: MQ + atomic distance relaxation";
    prepare =
      (fun pool ~input ~scale ->
        let g = Graph_inputs.load pool ~name:input ~scale ~weighted:true ~symmetric:true in
        let expected = Rpb_graph.Reference.dijkstra g ~src:0 in
        let last = ref [||] in
        {
          Common.size = Graph_inputs.describe g;
          run_seq = (fun () -> last := Rpb_graph.Reference.dijkstra g ~src:0);
          run_par = (fun _mode -> last := Rpb_graph.Traverse.sssp pool g ~src:0);
          verify = (fun () -> !last = expected);
          snapshot = (fun () -> Array.copy !last);
        });
  }
