open Rpb_core

type prepared = {
  size : string;
  run_seq : unit -> unit;
  run_par : Mode.t -> unit;
  verify : unit -> bool;
}

type entry = {
  name : string;
  full_name : string;
  inputs : string list;
  patterns : Pattern.access list;
  dynamic : bool;
  access_sites : (Pattern.access * int) list;
  mode_note : string;
  prepare : Rpb_pool.Pool.t -> input:string -> scale:int -> prepared;
}

let scaled base scale = base * (1 lsl scale)
