open Rpb_core

type prepared = {
  size : string;
  run_seq : unit -> unit;
  run_par : Mode.t -> unit;
  verify : unit -> bool;
  snapshot : unit -> int array;
}

(* Digest helpers for [snapshot] implementations. *)

let digest_of_string s = Array.init (String.length s) (fun i -> Char.code s.[i])

let digest_sorted a =
  let c = Array.copy a in
  Array.sort compare c;
  c

let digest_of_bool b = if b then 1 else 0

type entry = {
  name : string;
  full_name : string;
  inputs : string list;
  patterns : Pattern.access list;
  dynamic : bool;
  access_sites : (Pattern.access * int) list;
  mode_note : string;
  prepare : Rpb_pool.Pool.t -> input:string -> scale:int -> prepared;
}

let scaled base scale = base * (1 lsl scale)

type measurement = {
  mean_s : float;
  min_s : float;
  samples_s : float array;
  pool_stats : Rpb_pool.Pool.Stats.t;
}

(* Times [f] over [repeats] runs and attributes the scheduler activity of the
   whole window (all repeats) to the measurement, by diffing per-worker
   counter snapshots taken around it.  The workload runs exactly [repeats]
   times: every estimator (mean, min, median...) is derived from the one
   sample vector, never from separate re-runs. *)
let measure pool ~repeats f =
  let before = Rpb_pool.Pool.Stats.capture pool in
  let (), times = Rpb_prim.Timing.samples ~repeats f in
  let after = Rpb_pool.Pool.Stats.capture pool in
  let n = float_of_int (Array.length times) in
  {
    mean_s = Array.fold_left ( +. ) 0.0 times /. n;
    min_s = Array.fold_left min infinity times;
    samples_s = times;
    pool_stats = Rpb_pool.Pool.Stats.diff ~before ~after;
  }
