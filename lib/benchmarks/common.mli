(** Shared shape of a prepared benchmark instance. *)

open Rpb_core

type prepared = {
  size : string;  (** human-readable description of the generated input *)
  run_seq : unit -> unit;      (** the sequential baseline (PBBS stand-in) *)
  run_par : Mode.t -> unit;    (** the parallel implementation under a switch *)
  verify : unit -> bool;       (** checks the most recent [run_par] output *)
  snapshot : unit -> int array;
      (** canonical integer digest of the most recent run's output, for the
          differential oracle ([lib/check]): any two {e correct} runs on this
          prepared input — sequential baseline or any parallel mode, any
          executor — must produce element-wise equal digests.  Benchmarks
          with a deterministic output digest the output itself (sorted keys,
          suffix array, distances...); benchmarks whose output is
          schedule-dependent but specification-constrained (mis, mm, sf, dr)
          digest the checked invariants instead. *)
}

type entry = {
  name : string;
  full_name : string;
  inputs : string list;   (** valid input names, first one is the default *)
  patterns : Pattern.access list;  (** Table 1 row *)
  dynamic : bool;         (** Table 1 "task dispatch: dynamic" column *)
  access_sites : (Pattern.access * int) list;
      (** number of parallel-region shared-data access sites per pattern in
          our implementation — the Fig. 3 raw data *)
  mode_note : string;     (** which switches differ for this benchmark *)
  prepare : Rpb_pool.Pool.t -> input:string -> scale:int -> prepared;
}

val scaled : int -> int -> int
(** [scaled base scale = base * 2^scale]. *)

(** {2 Digest helpers for [snapshot] implementations} *)

val digest_of_string : string -> int array
(** Byte codes of the string. *)

val digest_sorted : int array -> int array
(** Sorted copy — canonicalizes outputs whose element {e order} is
    schedule-dependent (hash-set contents, etc.). *)

val digest_of_bool : bool -> int

type measurement = {
  mean_s : float;  (** arithmetic mean over the repeats *)
  min_s : float;   (** noise-robust min over the repeats *)
  samples_s : float array;
      (** every per-repeat elapsed time, in run order — the raw data both
          point estimates above are derived from, carried through to the
          [BENCH_*.json] v3 records for noise-aware regression testing *)
  pool_stats : Rpb_pool.Pool.Stats.t;
      (** per-worker scheduler activity across all the repeats *)
}

val measure : Rpb_pool.Pool.t -> repeats:int -> (unit -> unit) -> measurement
(** [measure pool ~repeats f] runs [f] exactly [repeats] times, snapshotting
    the pool's per-worker counters around the whole window — the per-run stat
    capture behind both the human tables and the [BENCH_*.json] records.
    Every estimator is derived from the one sample vector; the workload is
    never re-run per estimator. *)
