(* Shared graph-input preparation for the graph benchmarks (Table 2 inputs,
   scaled to container size). *)

(* Benchmark scale 0 corresponds to a 2^base_scale-vertex graph. *)
let base_scale = 9

let load pool ~name ~scale ~weighted ~symmetric =
  let g =
    Rpb_graph.Generate.by_name pool ~name ~scale:(base_scale + scale) ~weighted
  in
  (* The road grid is generated symmetric already. *)
  if symmetric && name <> "road" then Rpb_graph.Csr.symmetrize pool g else g

let describe g =
  Printf.sprintf "|V|=%d |E|=%d" (Rpb_graph.Csr.n g) (Rpb_graph.Csr.m g)
