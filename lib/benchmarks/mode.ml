type t = Unsafe | Checked | Synchronized

let all = [ Unsafe; Checked; Synchronized ]

let name = function
  | Unsafe -> "unsafe"
  | Checked -> "checked"
  | Synchronized -> "sync"

let of_string = function
  | "unsafe" -> Some Unsafe
  | "checked" -> Some Checked
  | "sync" | "synchronized" -> Some Synchronized
  | _ -> None
