(** The RPB suite's switches for toggling unsafe parallel features
    ("switches to toggle unsafe parallel features", paper Sec. 1).

    Mapping to the paper's spectrum:
    - [Unsafe]: the fastest expression — raw indirect writes, plain stores on
      benign races (unsafe Rust);
    - [Checked]: the interior-unsafe iterators with run-time validation
      ([par_ind_iter_mut] / [par_ind_chunks_mut]);
    - [Synchronized]: atomics or mutexes standing in for "unnecessary
      synchronization" (Sec. 7.4).

    For purely-AW benchmarks where no cheaper expression exists, [Unsafe] and
    [Checked] fall back to the synchronized implementation; each benchmark's
    registry note says which switches are distinct. *)

type t = Unsafe | Checked | Synchronized

val all : t list
val name : t -> string
val of_string : string -> t option
