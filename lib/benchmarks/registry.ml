open Rpb_core

let all : Common.entry list =
  [
    Bench_bw.entry;
    Bench_lrs.entry;
    Bench_sa.entry;
    Bench_dr.entry;
    Bench_mis.entry;
    Bench_mm.entry;
    Bench_sf.entry;
    Bench_msf.entry;
    Bench_sort.entry;
    Bench_dedup.entry;
    Bench_hist.entry;
    Bench_isort.entry;
    Bench_bfs.entry;
    Bench_sssp.entry;
  ]

let find name = List.find_opt (fun e -> e.Common.name = name) all

let names = List.map (fun e -> e.Common.name) all

let access_distribution () =
  let count p =
    List.fold_left
      (fun acc e ->
        List.fold_left
          (fun acc (p', c) -> if p' = p then acc + c else acc)
          acc e.Common.access_sites)
      0 all
  in
  let counts = List.map (fun p -> (p, count p)) Pattern.all_accesses in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 counts in
  List.map
    (fun (p, c) ->
      (p, c, if total = 0 then 0.0 else 100.0 *. float_of_int c /. float_of_int total))
    counts

(* Prepare, warm up, and measure one (benchmark, input, mode) combination,
   returning the typed record the JSON emitters consume plus the input-size
   string for the human tables. *)
let measure_entry ?(smoke = false) pool ~(entry : Common.entry) ~input ~scale
    ~repeats ~how =
  Rpb_pool.Pool.run pool (fun () ->
      let prepared = entry.Common.prepare pool ~input ~scale in
      let run =
        match how with
        | `Seq -> prepared.Common.run_seq
        | `Par mode -> fun () -> prepared.Common.run_par mode
      in
      run ();
      (* warm-up *)
      let m = Common.measure pool ~repeats run in
      let ok = prepared.Common.verify () in
      let record =
        {
          Bench_json.bench = entry.Common.name;
          input;
          mode = (match how with `Seq -> "seq" | `Par m -> Mode.name m);
          scale;
          threads = Rpb_pool.Pool.size pool;
          repeats;
          mean_ns = m.Common.mean_s *. 1e9;
          min_ns = m.Common.min_s *. 1e9;
          samples_ns = Array.map (fun s -> s *. 1e9) m.Common.samples_s;
          smoke;
          policy = Rpb_pool.Pool.policy_name pool;
          verified = ok;
          workers = Bench_json.workers_of_pool_stats m.Common.pool_stats;
        }
      in
      (record, prepared.Common.size))

let benchmarks_with p =
  List.filter_map
    (fun e -> if List.mem p e.Common.patterns then Some e.Common.name else None)
    all
