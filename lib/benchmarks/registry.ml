open Rpb_core

let all : Common.entry list =
  [
    Bench_bw.entry;
    Bench_lrs.entry;
    Bench_sa.entry;
    Bench_dr.entry;
    Bench_mis.entry;
    Bench_mm.entry;
    Bench_sf.entry;
    Bench_msf.entry;
    Bench_sort.entry;
    Bench_dedup.entry;
    Bench_hist.entry;
    Bench_isort.entry;
    Bench_bfs.entry;
    Bench_sssp.entry;
  ]

let find name = List.find_opt (fun e -> e.Common.name = name) all

let names = List.map (fun e -> e.Common.name) all

let access_distribution () =
  let count p =
    List.fold_left
      (fun acc e ->
        List.fold_left
          (fun acc (p', c) -> if p' = p then acc + c else acc)
          acc e.Common.access_sites)
      0 all
  in
  let counts = List.map (fun p -> (p, count p)) Pattern.all_accesses in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 counts in
  List.map
    (fun (p, c) ->
      (p, c, if total = 0 then 0.0 else 100.0 *. float_of_int c /. float_of_int total))
    counts

let benchmarks_with p =
  List.filter_map
    (fun e -> if List.mem p e.Common.patterns then Some e.Common.name else None)
    all
