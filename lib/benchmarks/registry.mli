(** The RPB suite: all 14 benchmarks and the data behind Table 1, Table 3 and
    Fig. 3. *)

open Rpb_core

val all : Common.entry list
(** In Table 1 order: bw, lrs, sa, dr, mis, mm, sf, msf, sort, dedup, hist,
    isort, bfs, sssp. *)

val find : string -> Common.entry option

val names : string list

val access_distribution : unit -> (Pattern.access * int * float) list
(** Per-pattern (site count, percentage) across the suite — Fig. 3. *)

val benchmarks_with : Pattern.access -> string list
(** Which benchmarks use a pattern — Table 1 column. *)

val measure_entry :
  ?smoke:bool ->
  Rpb_pool.Pool.t ->
  entry:Common.entry ->
  input:string ->
  scale:int ->
  repeats:int ->
  how:[ `Seq | `Par of Mode.t ] ->
  Bench_json.record * string
(** Prepare, warm up, time and verify one benchmark configuration inside
    [Pool.run], capturing per-worker scheduler counters and the per-repeat
    sample vector across the repeats.  Returns the machine-readable record
    and the input-size description.  [smoke] (default [false]) marks the
    record as a one-shot smoke run, which [rpb compare] excludes from the
    perf trajectory. *)
