(* Naive substring search used by verifiers (inputs are small). *)

let find hay needle from =
  let n = String.length hay and m = String.length needle in
  if m = 0 then from
  else begin
    let rec go i =
      if i + m > n then raise Not_found
      else if String.sub hay i m = needle then i
      else go (i + 1)
    in
    go (max 0 from)
  end
