exception Full

let empty_slot = -1

type t = {
  mask : int;
  slots : Rpb_prim.Atomic_array.t;
  population : int Atomic.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Chash.create: capacity must be positive";
  let n = Rpb_prim.Util.ceil_pow2 (2 * capacity) in
  {
    mask = n - 1;
    slots = Rpb_prim.Atomic_array.make n empty_slot;
    population = Atomic.make 0;
  }

let slots t = t.mask + 1

let hash_key t k = Rpb_prim.Rng.hash64 k land t.mask

let insert t k =
  if k < 0 then invalid_arg "Chash.insert: negative key";
  let start = hash_key t k in
  let rec probe i steps =
    if steps > t.mask then raise Full
    else begin
      let cur = Rpb_prim.Atomic_array.get t.slots i in
      if cur = k then false
      else if cur = empty_slot then
        if Rpb_prim.Atomic_array.compare_and_set t.slots i empty_slot k then begin
          Atomic.incr t.population;
          true
        end
        else
          (* Lost the race for this slot; re-examine it (the winner may have
             inserted our key). *)
          probe i steps
      else probe ((i + 1) land t.mask) (steps + 1)
    end
  in
  probe start 0

let mem t k =
  if k < 0 then false
  else begin
    let start = hash_key t k in
    let rec probe i steps =
      if steps > t.mask then false
      else begin
        let cur = Rpb_prim.Atomic_array.get t.slots i in
        if cur = k then true
        else if cur = empty_slot then false
        else probe ((i + 1) land t.mask) (steps + 1)
      end
    in
    probe start 0
  end

let count t = Atomic.get t.population

let elements pool t =
  let n = slots t in
  let snapshot =
    Rpb_core.Par_array.init pool n (fun i -> Rpb_prim.Atomic_array.get t.slots i)
  in
  Rpb_parseq.Pack.pack pool (fun x -> x <> empty_slot) snapshot

let clear pool t =
  Rpb_pool.Pool.parallel_for ~start:0 ~finish:(slots t)
    ~body:(fun i -> Rpb_prim.Atomic_array.set t.slots i empty_slot)
    pool;
  Atomic.set t.population 0
