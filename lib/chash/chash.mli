(** Phase-concurrent hash set for non-negative integers — the paper's
    Listing 8 data structure, PBBS-style.

    Inserts from any number of domains race on the same slots and are
    arbitrated with compare-and-set (the AW pattern: arbitrary read-writes
    through a hash function's indirection).  The table is "phase-concurrent":
    concurrent inserts are linearizable, but inserts must not overlap with
    {!elements} snapshots.

    Linear probing over a power-of-two array; no deletion (none of the RPB
    benchmarks needs it); no growth — size the table at creation, as PBBS
    does. *)

type t

exception Full
(** Raised by {!insert} when probing wraps all the way around. *)

val create : capacity:int -> t
(** A table able to hold at least [capacity] elements at load factor <= 0.5.
    Keys must be in [\[0, max_int)]. *)

val slots : t -> int
(** Physical number of slots (a power of two). *)

val insert : t -> int -> bool
(** [insert t k] adds [k]; returns [true] iff [k] was not already present.
    Safe to call concurrently from any number of domains. *)

val mem : t -> int -> bool

val count : t -> int
(** Number of distinct elements inserted.  Exact when quiescent. *)

val elements : Rpb_pool.Pool.t -> t -> int array
(** Snapshot of the distinct elements, in unspecified order.  Must not run
    concurrently with inserts. *)

val clear : Rpb_pool.Pool.t -> t -> unit
