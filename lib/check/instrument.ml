open Rpb_core

module Scatter_shadow = Scatter.Make (Shadow.Store)
module Chunks_shadow = Chunks_ind.Make (Shadow.Store)

let unchecked pool ~out ~offsets ~src =
  Shadow.begin_op out;
  Scatter_shadow.unchecked pool ~out ~offsets ~src

let checked ?strategy pool ~out ~offsets ~src =
  Shadow.begin_op out;
  Scatter_shadow.checked ?strategy pool ~out ~offsets ~src

let atomic pool ~out ~offsets ~src =
  Shadow.begin_op out;
  Scatter_shadow.atomic pool ~out ~offsets ~src

let mutexed ?stripes pool ~out ~offsets ~src =
  Shadow.begin_op out;
  Scatter_shadow.mutexed ?stripes pool ~out ~offsets ~src

let scatter mode pool ~out ~offsets ~src =
  Shadow.begin_op out;
  Scatter_shadow.scatter mode pool ~out ~offsets ~src

let fill_chunks_ind ?check pool ~out ~offsets ~f =
  Shadow.begin_op out;
  Chunks_shadow.fill_chunks_ind ?check pool ~out ~offsets ~f
