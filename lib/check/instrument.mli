(** Shadow-instrumented instances of the fear-spectrum operators.

    Each wrapper opens a fresh {!Shadow.begin_op} epoch and then runs the
    store-polymorphic operator ([Scatter.Make] / [Chunks_ind.Make]) over the
    shadow store, so every call is checked independently: writes from two
    different calls never count as a race, writes within one call to the same
    slot always do (when instrumentation is on).

    These cover the whole fear spectrum of indirect writes:
    - SngInd {e scared}: {!unchecked}, {!atomic}, {!mutexed} — no validation;
      the shadow layer is the only thing standing between a buggy offsets
      array and silent corruption.
    - SngInd {e comfortable}: {!checked} — validation raises before the
      scatter runs; the shadow layer should stay silent.
    - RngInd: {!fill_chunks_ind} with [~check:false] (scared) or the default
      monotonicity check (comfortable). *)

open Rpb_pool
open Rpb_core

val unchecked :
  Pool.t -> out:'a Shadow.t -> offsets:int array -> src:'a array -> unit

val checked :
  ?strategy:Scatter.check_strategy -> Pool.t ->
  out:'a Shadow.t -> offsets:int array -> src:'a array -> unit

val atomic :
  Pool.t -> out:'a Shadow.t -> offsets:int array -> src:'a array -> unit

val mutexed :
  ?stripes:int -> Pool.t ->
  out:'a Shadow.t -> offsets:int array -> src:'a array -> unit

val scatter :
  Scatter.mode -> Pool.t ->
  out:'a Shadow.t -> offsets:int array -> src:'a array -> unit
(** Dispatch on the mode; unlike the plain-array [Scatter.scatter], [Atomic]
    dispatches too (the store owns the representation). *)

val fill_chunks_ind :
  ?check:bool -> Pool.t -> out:'a Shadow.t -> offsets:int array ->
  f:(int -> int -> 'a) -> unit
