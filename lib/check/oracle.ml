open Rpb_pool
open Rpb_core
open Rpb_benchmarks

type mismatch = { at : int; expected : int; actual : int }

type outcome = {
  bench : string;
  input : string;
  executor : string;
  mode : string;
  verified : bool;
  equal : bool;
  digest_len : int;
  mismatches : mismatch list;
  error : string option;
}

let max_reported_mismatches = 5

type report = {
  seed : int;
  threads : int;
  scale : int;
  outcomes : outcome list;
  shadow_ops : int;
  shadow_writes : int;
  shadow_races : Shadow.race list;
  canary_ok : bool;
}

(* Element-wise diff of two digests.  A length mismatch is encoded as the
   single pseudo-mismatch [{at = -1; expected = len_a; actual = len_b}]. *)
let diff_digests reference got =
  let la = Array.length reference and lb = Array.length got in
  if la <> lb then (false, [ { at = -1; expected = la; actual = lb } ])
  else begin
    let mismatches = ref [] in
    let count = ref 0 in
    for i = 0 to la - 1 do
      if reference.(i) <> got.(i) then begin
        if !count < max_reported_mismatches then
          mismatches :=
            { at = i; expected = reference.(i); actual = got.(i) }
            :: !mismatches;
        incr count
      end
    done;
    (!count = 0, List.rev !mismatches)
  end

let outcomes_of_entry pool ~executor ~scale (entry : Common.entry) =
  let input = List.hd entry.Common.inputs in
  Pool.run pool (fun () ->
      let prepared = entry.Common.prepare pool ~input ~scale in
      prepared.Common.run_seq ();
      let reference = prepared.Common.snapshot () in
      List.map
        (fun mode ->
          let base =
            {
              bench = entry.Common.name;
              input;
              executor;
              mode = Mode.name mode;
              verified = false;
              equal = false;
              digest_len = Array.length reference;
              mismatches = [];
              error = None;
            }
          in
          match prepared.Common.run_par mode with
          | () ->
            let verified = prepared.Common.verify () in
            let equal, mismatches =
              diff_digests reference (prepared.Common.snapshot ())
            in
            { base with verified; equal; mismatches }
          | exception e -> { base with error = Some (Printexc.to_string e) })
        Mode.all)

let with_pool ~make f =
  let pool = make () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* Shadow self-check: valid seeded inputs must be race-free (no false
   positives), one injected duplicate must be caught (no silent false
   negatives).                                                          *)

type shadow_result = {
  s_ops : int;
  s_writes : int;
  s_races : Shadow.race list;
  s_canary : bool;
}

let random_monotone_splits rng ~n ~pieces =
  let splits = Array.init (pieces + 1) (fun _ -> Rpb_prim.Rng.int rng (n + 1)) in
  Array.sort compare splits;
  splits

let shadow_self_check ~threads ~seed =
  with_pool ~make:(fun () -> Pool.create ~num_workers:threads ()) @@ fun pool ->
  Pool.run pool @@ fun () ->
  Shadow.with_instrumentation true @@ fun () ->
  let rng = Rpb_prim.Rng.create ((seed * 7919) + 17) in
  let ops = ref 0 and writes = ref 0 and races = ref [] in
  let absorb out =
    incr ops;
    writes := !writes + Shadow.write_count out;
    races := List.rev_append (Shadow.races out) !races
  in
  for _round = 1 to 4 do
    (* SngInd: a valid permutation through all four modes. *)
    let n = 2048 + Rpb_prim.Rng.int rng 2048 in
    let offsets = Rpb_prim.Rng.permutation rng n in
    let src = Array.init n Fun.id in
    List.iter
      (fun mode ->
        let out = Shadow.create ~pool (Array.make n (-1)) in
        Instrument.scatter mode pool ~out ~offsets ~src;
        absorb out)
      Scatter.all_modes;
    (* RngInd: valid (sorted) split points. *)
    let pieces = 1 + Rpb_prim.Rng.int rng 64 in
    let splits = random_monotone_splits rng ~n ~pieces in
    let out = Shadow.create ~pool (Array.make n 0) in
    Instrument.fill_chunks_ind pool ~out ~offsets:splits ~f:(fun _i j -> j);
    absorb out
  done;
  (* Canary: exactly one duplicated offset, hidden at the far end. *)
  let n = 1024 in
  let offsets = Rpb_prim.Rng.permutation rng n in
  offsets.(n - 1) <- offsets.(0);
  let out = Shadow.create ~pool (Array.make n 0) in
  Instrument.unchecked pool ~out ~offsets ~src:(Array.init n Fun.id);
  let canary =
    List.exists
      (fun (r : Shadow.race) ->
        r.Shadow.index = offsets.(0)
        && (min r.Shadow.first_src r.Shadow.second_src,
            max r.Shadow.first_src r.Shadow.second_src)
           = (0, n - 1))
      (Shadow.races out)
  in
  { s_ops = !ops; s_writes = !writes; s_races = List.rev !races; s_canary = canary }

(* ------------------------------------------------------------------ *)

let run ?(threads = 4) ?(scale = 0) ?bench ?(policy = Pool.Policy.default)
    ~seed () =
  let entries =
    match bench with
    | None -> Registry.all
    | Some name -> (
      match Registry.find name with
      | Some e -> [ e ]
      | None -> invalid_arg (Printf.sprintf "Oracle.run: unknown benchmark %s" name))
  in
  (* The deterministic executors have no scheduler to parameterize; only the
     real pool runs under [policy]. *)
  let executors =
    [
      ("seq", fun () -> Pool.create_deterministic ~seed ~shuffle:false ());
      ("shuffled", fun () -> Pool.create_deterministic ~seed ~shuffle:true ());
      ("pool", fun () -> Pool.create ~policy ~num_workers:threads ());
    ]
  in
  let outcomes =
    List.concat_map
      (fun entry ->
        List.concat_map
          (fun (executor, make) ->
            with_pool ~make (fun pool ->
                outcomes_of_entry pool ~executor ~scale entry))
          executors)
      entries
  in
  let shadow = shadow_self_check ~threads ~seed in
  {
    seed;
    threads;
    scale;
    outcomes;
    shadow_ops = shadow.s_ops;
    shadow_writes = shadow.s_writes;
    shadow_races = shadow.s_races;
    canary_ok = shadow.s_canary;
  }

let outcome_ok o = o.verified && o.equal && o.error = None

let ok r =
  List.for_all outcome_ok r.outcomes && r.shadow_races = [] && r.canary_ok

let summary r =
  let b = Buffer.create 512 in
  let total = List.length r.outcomes in
  let bad = List.filter (fun o -> not (outcome_ok o)) r.outcomes in
  Buffer.add_string b
    (Printf.sprintf
       "oracle: %d configurations (%d benchmarks x 3 executors x %d modes), \
        %d failing\n"
       total
       (total / (3 * List.length Mode.all))
       (List.length Mode.all) (List.length bad));
  List.iter
    (fun o ->
      Buffer.add_string b
        (Printf.sprintf "  FAIL %s/%s executor=%s mode=%s%s%s%s\n" o.bench
           o.input o.executor o.mode
           (if o.verified then "" else " [verify failed]")
           (match o.error with Some e -> " [raised " ^ e ^ "]" | None -> "")
           (match o.mismatches with
            | [] -> if o.equal then "" else " [digest diff]"
            | { at = -1; expected; actual } :: _ ->
              Printf.sprintf " [digest length %d vs %d]" expected actual
            | { at; expected; actual } :: _ ->
              Printf.sprintf " [first diff at %d: %d vs %d]" at expected actual)))
    bad;
  Buffer.add_string b
    (Printf.sprintf
       "shadow: %d instrumented ops, %d writes, %d races on valid inputs; \
        canary (injected duplicate) %s\n"
       r.shadow_ops r.shadow_writes
       (List.length r.shadow_races)
       (if r.canary_ok then "detected" else "MISSED"));
  List.iter
    (fun race ->
      Buffer.add_string b
        (Printf.sprintf "  FALSE POSITIVE %s\n" (Shadow.race_to_string race)))
    r.shadow_races;
  Buffer.add_string b
    (Printf.sprintf "verdict: %s\n" (if ok r then "OK" else "FAIL"));
  Buffer.contents b

(* ------------------------------------------------------------------ *)

let mismatch_to_json (m : mismatch) =
  Bench_json.Obj
    [ ("at", Bench_json.Int m.at);
      ("expected", Bench_json.Int m.expected);
      ("actual", Bench_json.Int m.actual) ]

let outcome_to_json o =
  Bench_json.Obj
    [
      ("bench", Bench_json.Str o.bench);
      ("input", Bench_json.Str o.input);
      ("executor", Bench_json.Str o.executor);
      ("mode", Bench_json.Str o.mode);
      ("verified", Bench_json.Bool o.verified);
      ("equal", Bench_json.Bool o.equal);
      ("digest_len", Bench_json.Int o.digest_len);
      ("mismatches", Bench_json.List (List.map mismatch_to_json o.mismatches));
      ( "error",
        match o.error with
        | None -> Bench_json.Null
        | Some e -> Bench_json.Str e );
    ]

let race_to_json (r : Shadow.race) =
  Bench_json.Obj
    [
      ("index", Bench_json.Int r.Shadow.index);
      ("first_src", Bench_json.Int r.Shadow.first_src);
      ("first_task", Bench_json.Int r.Shadow.first_task);
      ("second_src", Bench_json.Int r.Shadow.second_src);
      ("second_task", Bench_json.Int r.Shadow.second_task);
    ]

let to_json r =
  Bench_json.Obj
    [
      ("schema_version", Bench_json.Int Bench_json.schema_version);
      ("kind", Bench_json.Str "check");
      ("seed", Bench_json.Int r.seed);
      ("threads", Bench_json.Int r.threads);
      ("scale", Bench_json.Int r.scale);
      ("ok", Bench_json.Bool (ok r));
      ("oracle", Bench_json.List (List.map outcome_to_json r.outcomes));
      ( "shadow",
        Bench_json.Obj
          [
            ("ops", Bench_json.Int r.shadow_ops);
            ("writes", Bench_json.Int r.shadow_writes);
            ("races", Bench_json.List (List.map race_to_json r.shadow_races));
            ("canary_ok", Bench_json.Bool r.canary_ok);
          ] );
    ]

let write_json ~path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Bench_json.to_string (to_json r));
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Fault sweep: the oracle's extension from "detects races" to "survives
   faults".  Each benchmark runs under seeded [Pool.Fault] schedules; the
   invariant asserted is the failure-semantics contract — every faulted run
   either completes with the correct canonical digest, or raises a clean
   structured error within the deadline.  Never a hang (the [run ?deadline]
   watchdog converts one into [Pool.Stalled]), never a torn-but-successful
   result, and the pool stays reusable afterwards. *)

type fault_schedule = { sched_name : string; sched_cfg : Pool.Fault.config }

let fault_schedules =
  [
    (* Exceptions at task start: exercises structured cancellation, sibling
       abandonment and the drain guarantee. *)
    { sched_name = "task-exn";
      sched_cfg = { Pool.Fault.off with task_exn = 0.02 } };
    (* A slow, jittery scheduler: steal delays and worker stalls must never
       change any result, only timing. *)
    { sched_name = "slow-sched";
      sched_cfg =
        { Pool.Fault.off with
          steal_delay = 0.2;
          worker_stall = 0.05;
          delay_us = 200 } };
    (* Everything at once, plus spawn failures during [create]: the pool
       degrades to fewer workers and must still honor the contract. *)
    { sched_name = "mixed-degrade";
      sched_cfg =
        { Pool.Fault.off with
          task_exn = 0.01;
          steal_delay = 0.1;
          spawn_fail = 0.5 } };
  ]

type fault_outcome = {
  f_bench : string;
  f_input : string;
  f_schedule : string;
  f_mode : string;
  f_fault_seed : int;
  f_completed : bool;  (** [run_par] returned normally *)
  f_raised : string option;  (** the clean structured error otherwise *)
  f_stalled : bool;  (** the raise was the deadline watchdog's [Stalled] *)
  f_digest_equal : bool;  (** meaningful when [f_completed] *)
  f_verified : bool;  (** meaningful when [f_completed] *)
  f_pool_reusable : bool;  (** a post-fault sanity run succeeded *)
  f_injected : int;  (** injections fired during the faulted run *)
  f_workers : int;
  f_requested_workers : int;
  f_elapsed_s : float;
}

type fault_report = {
  fr_seed : int;
  fr_threads : int;
  fr_scale : int;
  fr_deadline : float;
  fr_outcomes : fault_outcome list;
}

let fault_outcome_ok o =
  (* The contract: a completed run must carry the right answer; a failed run
     must have raised (it did — that is how we classified it) and left the
     pool usable.  [Stalled] counts as a clean failure: the deadline turned
     a would-be hang into a structured error. *)
  if o.f_completed then o.f_digest_equal && o.f_verified && o.f_pool_reusable
  else o.f_raised <> None && o.f_pool_reusable

let sweep_one ~threads ~scale ~deadline ~fault_seed ~policy entry sched mode =
  let input = List.hd entry.Common.inputs in
  let cfg = { sched.sched_cfg with Pool.Fault.seed = fault_seed } in
  (* Spawn failures are only meaningful during [create]; arm them alone so
     preparation and the reference run stay clean. *)
  if cfg.Pool.Fault.spawn_fail > 0. then
    Pool.Fault.enable
      { Pool.Fault.off with
        seed = fault_seed;
        spawn_fail = cfg.Pool.Fault.spawn_fail };
  let pool = Pool.create ~policy ~num_workers:threads () in
  Pool.Fault.disable ();
  Fun.protect
    ~finally:(fun () ->
      Pool.Fault.disable ();
      Pool.shutdown pool)
  @@ fun () ->
  let prepared, reference =
    Pool.run pool (fun () ->
        let prepared = entry.Common.prepare pool ~input ~scale in
        prepared.Common.run_seq ();
        (prepared, prepared.Common.snapshot ()))
  in
  Pool.Fault.enable cfg;
  let t0 = Unix.gettimeofday () in
  let result =
    match Pool.run ~deadline pool (fun () -> prepared.Common.run_par mode) with
    | () -> Ok ()
    | exception e -> Error e
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Pool.Fault.disable ();
  let injected = Pool.Fault.total (Pool.Fault.counts ()) in
  let stats = Pool.Stats.capture pool in
  (* Whatever happened, the pool must still work: a fresh run on the same
     pool computing a known reduction. *)
  let reusable () =
    match
      Pool.run pool (fun () ->
          Pool.parallel_for_reduce ~start:0 ~finish:1_000 ~body:Fun.id
            ~combine:( + ) ~init:0 pool)
    with
    | n -> n = 499_500
    | exception _ -> false
  in
  let base =
    {
      f_bench = entry.Common.name;
      f_input = input;
      f_schedule = sched.sched_name;
      f_mode = Mode.name mode;
      f_fault_seed = fault_seed;
      f_completed = false;
      f_raised = None;
      f_stalled = false;
      f_digest_equal = false;
      f_verified = false;
      f_pool_reusable = false;
      f_injected = injected;
      f_workers = stats.Pool.Stats.num_workers;
      f_requested_workers = stats.Pool.Stats.requested_workers;
      f_elapsed_s = elapsed;
    }
  in
  match result with
  | Ok () ->
    let verified, equal =
      Pool.run pool (fun () ->
          let v = prepared.Common.verify () in
          let equal, _ = diff_digests reference (prepared.Common.snapshot ()) in
          (v, equal))
    in
    { base with
      f_completed = true;
      f_verified = verified;
      f_digest_equal = equal;
      f_pool_reusable = reusable ();
    }
  | Error e ->
    { base with
      f_raised = Some (Printexc.to_string e);
      f_stalled = (match e with Pool.Stalled _ -> true | _ -> false);
      f_pool_reusable = reusable ();
    }

let fault_sweep ?(threads = 4) ?(scale = 0) ?(deadline = 30.) ?bench
    ?(policy = Pool.Policy.default) ~seed () =
  let entries =
    match bench with
    | None -> Registry.all
    | Some name -> (
      match Registry.find name with
      | Some e -> [ e ]
      | None ->
        invalid_arg (Printf.sprintf "Oracle.fault_sweep: unknown benchmark %s" name))
  in
  let modes = Array.of_list Mode.all in
  let outcomes =
    List.concat_map
      (fun entry ->
        List.mapi
          (fun k sched ->
            (* One distinct fault stream per (benchmark, schedule); rotate
               the mode so every schedule meets every spectrum point across
               the suite. *)
            let fault_seed =
              Rpb_prim.Rng.hash64
                (seed lxor Hashtbl.hash (entry.Common.name, k))
            in
            let mode = modes.(k mod Array.length modes) in
            sweep_one ~threads ~scale ~deadline ~fault_seed ~policy entry sched
              mode)
          fault_schedules)
      entries
  in
  {
    fr_seed = seed;
    fr_threads = threads;
    fr_scale = scale;
    fr_deadline = deadline;
    fr_outcomes = outcomes;
  }

let fault_ok r = List.for_all fault_outcome_ok r.fr_outcomes

let fault_summary r =
  let b = Buffer.create 512 in
  let total = List.length r.fr_outcomes in
  let completed = List.filter (fun o -> o.f_completed) r.fr_outcomes in
  let failed = List.filter (fun o -> not o.f_completed) r.fr_outcomes in
  let stalled = List.filter (fun o -> o.f_stalled) r.fr_outcomes in
  let injected =
    List.fold_left (fun acc o -> acc + o.f_injected) 0 r.fr_outcomes
  in
  let bad = List.filter (fun o -> not (fault_outcome_ok o)) r.fr_outcomes in
  Buffer.add_string b
    (Printf.sprintf
       "faults: %d runs (%d benchmarks x %d schedules), %d injections fired\n"
       total
       (total / List.length fault_schedules)
       (List.length fault_schedules) injected);
  Buffer.add_string b
    (Printf.sprintf
       "  %d completed with correct digests, %d failed cleanly (%d by \
        deadline), %d violations\n"
       (List.length completed) (List.length failed) (List.length stalled)
       (List.length bad));
  List.iter
    (fun o ->
      Buffer.add_string b
        (Printf.sprintf "  FAIL %s/%s schedule=%s mode=%s%s%s%s\n" o.f_bench
           o.f_input o.f_schedule o.f_mode
           (if o.f_completed && not o.f_digest_equal then " [torn digest]"
            else "")
           (if o.f_completed && not o.f_verified then " [verify failed]"
            else "")
           (if not o.f_pool_reusable then " [pool unusable afterwards]"
            else "")))
    bad;
  Buffer.add_string b
    (Printf.sprintf "verdict: %s\n" (if fault_ok r then "OK" else "FAIL"));
  Buffer.contents b

let fault_outcome_to_json o =
  Bench_json.Obj
    [
      ("bench", Bench_json.Str o.f_bench);
      ("input", Bench_json.Str o.f_input);
      ("schedule", Bench_json.Str o.f_schedule);
      ("mode", Bench_json.Str o.f_mode);
      ("fault_seed", Bench_json.Int o.f_fault_seed);
      ("completed", Bench_json.Bool o.f_completed);
      ( "raised",
        match o.f_raised with
        | None -> Bench_json.Null
        | Some e -> Bench_json.Str e );
      ("stalled", Bench_json.Bool o.f_stalled);
      ("digest_equal", Bench_json.Bool o.f_digest_equal);
      ("verified", Bench_json.Bool o.f_verified);
      ("pool_reusable", Bench_json.Bool o.f_pool_reusable);
      ("injected", Bench_json.Int o.f_injected);
      ("workers", Bench_json.Int o.f_workers);
      ("requested_workers", Bench_json.Int o.f_requested_workers);
      ("elapsed_s", Bench_json.Float o.f_elapsed_s);
      ("ok", Bench_json.Bool (fault_outcome_ok o));
    ]

let fault_to_json r =
  Bench_json.Obj
    [
      ("schema_version", Bench_json.Int Bench_json.schema_version);
      ("kind", Bench_json.Str "fault");
      ("seed", Bench_json.Int r.fr_seed);
      ("threads", Bench_json.Int r.fr_threads);
      ("scale", Bench_json.Int r.fr_scale);
      ("deadline_s", Bench_json.Float r.fr_deadline);
      ("ok", Bench_json.Bool (fault_ok r));
      ("runs", Bench_json.List (List.map fault_outcome_to_json r.fr_outcomes));
    ]

let write_fault_json ~path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Bench_json.to_string (fault_to_json r));
      output_char oc '\n')
