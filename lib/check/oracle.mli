(** The differential oracle — every registered benchmark, three executors,
    element-wise output diffs, machine-readable verdicts.

    For each benchmark entry the oracle prepares an instance per executor,
    runs the sequential baseline to obtain the reference digest
    ([Common.snapshot]), then runs every parallel mode and diffs its digest
    element-wise against the reference.  The executors:

    - ["seq"]: the deterministic in-order executor (shuffle off) — the
      reference semantics;
    - ["shuffled"]: the deterministic executor with a seeded adversarial
      leaf/join order — catches order-sensitive code without any
      multi-domain nondeterminism;
    - ["pool"]: the real work-stealing pool on [threads] domains.

    A shadow self-check rides along: seeded valid scatter/chunk rounds under
    shadow instrumentation must report zero races (guarding against false
    positives), and one deliberately duplicated offset must be caught (the
    canary — guarding against silent false negatives in the detector
    itself). *)

type mismatch = { at : int; expected : int; actual : int }

type outcome = {
  bench : string;
  input : string;
  executor : string;  (** "seq" | "shuffled" | "pool" *)
  mode : string;  (** "unsafe" | "checked" | "sync" *)
  verified : bool;  (** the benchmark's own verifier *)
  equal : bool;  (** digest element-wise equal to the baseline's *)
  digest_len : int;
  mismatches : mismatch list;  (** at most {!max_reported_mismatches} *)
  error : string option;  (** exception escaping the run, if any *)
}

val max_reported_mismatches : int

type report = {
  seed : int;
  threads : int;
  scale : int;
  outcomes : outcome list;
  shadow_ops : int;  (** instrumented operations in the self-check *)
  shadow_writes : int;
  shadow_races : Shadow.race list;  (** races on {e valid} inputs: want [] *)
  canary_ok : bool;  (** the injected duplicate was detected *)
}

val run :
  ?threads:int ->
  ?scale:int ->
  ?bench:string ->
  ?policy:Rpb_pool.Pool.Policy.t ->
  seed:int ->
  unit ->
  report
(** [run ~seed ()] checks every registry benchmark ([?bench] restricts to
    one) on its default input at [scale] (default 0 — small inputs; this is
    a correctness harness, not a timing one).  [threads] (default 4) sizes
    the work-stealing executor; [policy] (default [Pool.Policy.default])
    parameterizes its scheduler — the deterministic ["seq"]/["shuffled"]
    executors are policy-free, so a policy-parameterized run diffs the
    policy's pool against the very same reference semantics. *)

val ok : report -> bool
(** All outcomes verified and equal, no shadow race on valid inputs, canary
    detected. *)

val summary : report -> string
(** Human-readable multi-line summary. *)

val to_json : report -> Rpb_benchmarks.Bench_json.json

val write_json : path:string -> report -> unit
(** Writes {!to_json} with [schema_version] and a [kind = "check"] marker. *)

(** {2 Fault sweep}

    The oracle's extension from "detects races" to "survives faults": every
    benchmark runs under seeded [Pool.Fault] schedules (task exceptions /
    scheduler delays and stalls / everything plus spawn failures), and each
    faulted run must either complete with the correct canonical digest or
    raise a clean structured error within the deadline — never hang, never
    return a torn-but-successful result — and leave the pool reusable. *)

type fault_schedule = {
  sched_name : string;
  sched_cfg : Rpb_pool.Pool.Fault.config;  (** [seed] is overridden per run *)
}

val fault_schedules : fault_schedule list
(** The built-in schedules: ["task-exn"], ["slow-sched"],
    ["mixed-degrade"]. *)

type fault_outcome = {
  f_bench : string;
  f_input : string;
  f_schedule : string;
  f_mode : string;
  f_fault_seed : int;
  f_completed : bool;  (** [run_par] returned normally *)
  f_raised : string option;  (** the clean structured error otherwise *)
  f_stalled : bool;  (** the raise was the deadline watchdog's [Stalled] *)
  f_digest_equal : bool;  (** meaningful when [f_completed] *)
  f_verified : bool;  (** meaningful when [f_completed] *)
  f_pool_reusable : bool;  (** a post-fault sanity run succeeded *)
  f_injected : int;  (** injections fired during the faulted run *)
  f_workers : int;
  f_requested_workers : int;  (** [> f_workers] iff [create] degraded *)
  f_elapsed_s : float;
}

type fault_report = {
  fr_seed : int;
  fr_threads : int;
  fr_scale : int;
  fr_deadline : float;
  fr_outcomes : fault_outcome list;
}

val fault_sweep :
  ?threads:int ->
  ?scale:int ->
  ?deadline:float ->
  ?bench:string ->
  ?policy:Rpb_pool.Pool.Policy.t ->
  seed:int ->
  unit ->
  fault_report
(** [fault_sweep ~seed ()] runs every registry benchmark ([?bench] restricts
    to one) under each schedule in {!fault_schedules}, rotating the
    fear-spectrum mode per schedule.  [deadline] (default 30 s) bounds each
    faulted run via [Pool.run ?deadline]; [policy] (default
    [Pool.Policy.default]) parameterizes the faulted pool's scheduler, so
    e.g. [steal_half] batch transfers can be exercised under injected
    faults.  Equal seeds give equal fault streams. *)

val fault_outcome_ok : fault_outcome -> bool
val fault_ok : fault_report -> bool
val fault_summary : fault_report -> string
val fault_to_json : fault_report -> Rpb_benchmarks.Bench_json.json

val write_fault_json : path:string -> fault_report -> unit
(** Writes {!fault_to_json} with [schema_version] and a [kind = "fault"]
    marker. *)
