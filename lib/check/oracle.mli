(** The differential oracle — every registered benchmark, three executors,
    element-wise output diffs, machine-readable verdicts.

    For each benchmark entry the oracle prepares an instance per executor,
    runs the sequential baseline to obtain the reference digest
    ([Common.snapshot]), then runs every parallel mode and diffs its digest
    element-wise against the reference.  The executors:

    - ["seq"]: the deterministic in-order executor (shuffle off) — the
      reference semantics;
    - ["shuffled"]: the deterministic executor with a seeded adversarial
      leaf/join order — catches order-sensitive code without any
      multi-domain nondeterminism;
    - ["pool"]: the real work-stealing pool on [threads] domains.

    A shadow self-check rides along: seeded valid scatter/chunk rounds under
    shadow instrumentation must report zero races (guarding against false
    positives), and one deliberately duplicated offset must be caught (the
    canary — guarding against silent false negatives in the detector
    itself). *)

type mismatch = { at : int; expected : int; actual : int }

type outcome = {
  bench : string;
  input : string;
  executor : string;  (** "seq" | "shuffled" | "pool" *)
  mode : string;  (** "unsafe" | "checked" | "sync" *)
  verified : bool;  (** the benchmark's own verifier *)
  equal : bool;  (** digest element-wise equal to the baseline's *)
  digest_len : int;
  mismatches : mismatch list;  (** at most {!max_reported_mismatches} *)
  error : string option;  (** exception escaping the run, if any *)
}

val max_reported_mismatches : int

type report = {
  seed : int;
  threads : int;
  scale : int;
  outcomes : outcome list;
  shadow_ops : int;  (** instrumented operations in the self-check *)
  shadow_writes : int;
  shadow_races : Shadow.race list;  (** races on {e valid} inputs: want [] *)
  canary_ok : bool;  (** the injected duplicate was detected *)
}

val run : ?threads:int -> ?scale:int -> ?bench:string -> seed:int -> unit -> report
(** [run ~seed ()] checks every registry benchmark ([?bench] restricts to
    one) on its default input at [scale] (default 0 — small inputs; this is
    a correctness harness, not a timing one).  [threads] (default 4) sizes
    the work-stealing executor. *)

val ok : report -> bool
(** All outcomes verified and equal, no shadow race on valid inputs, canary
    detected. *)

val summary : report -> string
(** Human-readable multi-line summary. *)

val to_json : report -> Rpb_benchmarks.Bench_json.json

val write_json : path:string -> report -> unit
(** Writes {!to_json} with [schema_version] and a [kind = "check"] marker. *)
