open Rpb_pool

let create ?(seed = 0) ?(shuffle = true) () =
  Pool.create_deterministic ~seed ~shuffle ()

let with_executor ?seed ?shuffle f =
  let pool = create ?seed ?shuffle () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () -> Pool.run pool (fun () -> f pool))

let replays_equal ?(seed = 0) f =
  let a = with_executor ~seed f in
  let b = with_executor ~seed f in
  a = b
