(** The deterministic sequential executor — reference semantics for the
    differential oracle.

    A [Seq_exec] pool is a real [Pool.t] (so every operator, benchmark and
    library routine runs on it unchanged) with two properties the
    work-stealing pool cannot give:

    - {b determinism}: everything executes on the calling domain; equal
      seeds replay the identical schedule, run after run;
    - {b adversarial ordering}: with [shuffle] on (the default), leaf order
      and join branch order are drawn from the seed — alternative schedules
      that a work-stealing run {e could} produce, making order-sensitive
      code fail reproducibly instead of once a week.

    This is the "run it under the model checker's scheduler" trick at fork-
    join granularity.  The implementation lives in [Pool]
    ({!Rpb_pool.Pool.create_deterministic}); this module is the harness
    entry point. *)

open Rpb_pool

val create : ?seed:int -> ?shuffle:bool -> unit -> Pool.t
(** [create ~seed ()] — a deterministic one-domain pool.  [shuffle] defaults
    to [true]. *)

val with_executor : ?seed:int -> ?shuffle:bool -> (Pool.t -> 'a) -> 'a
(** Create, run the function inside [Pool.run], shut down (also on
    exceptions). *)

val replays_equal : ?seed:int -> (Pool.t -> int array) -> bool
(** Runs the function twice under two executors with the same seed and
    compares the digests — a quick self-test that a computation is
    deterministic under the sequential executor. *)
