open Rpb_pool

type race = {
  index : int;
  first_src : int;
  first_task : int;
  second_src : int;
  second_task : int;
}

let race_to_string r =
  Printf.sprintf
    "race at index %d: src %d (task %d) vs src %d (task %d)" r.index
    r.first_src r.first_task r.second_src r.second_task

(* Process-global switch, same discipline as Pool.Trace: the disabled path
   pays exactly one atomic load per write. *)
let enabled_flag = Atomic.make false

let instrumentation_enabled () = Atomic.get enabled_flag
let set_instrumentation b = Atomic.set enabled_flag b

let with_instrumentation b f =
  let prev = Atomic.exchange enabled_flag b in
  Fun.protect ~finally:(fun () -> Atomic.set enabled_flag prev) f

type 'a t = {
  payload : 'a array;
  stamp : Rpb_prim.Atomic_array.t;  (** epoch of the last write per slot *)
  who : int array;  (** worker id of the epoch-claiming writer (racy, diag) *)
  src_of : int array;  (** source label of that writer (racy, diag) *)
  epoch : int Atomic.t;
  writes : int Atomic.t;
  races_mutex : Mutex.t;
  mutable race_log : race list;  (** newest first *)
  mutable race_n : int;
  pool : Pool.t option;
}

(* Epoch 0 is never current (begin_op bumps before any write is recorded
   against it), so a fresh zero-filled stamp table means "never written". *)
let create ?pool payload =
  let n = Array.length payload in
  {
    payload;
    stamp = Rpb_prim.Atomic_array.make n 0;
    who = Array.make n (-1);
    src_of = Array.make n (-1);
    epoch = Atomic.make 1;
    writes = Atomic.make 0;
    races_mutex = Mutex.create ();
    race_log = [];
    race_n = 0;
    pool;
  }

let payload t = t.payload
let length t = Array.length t.payload
let begin_op t = Atomic.incr t.epoch

let races t =
  Mutex.lock t.races_mutex;
  let r = List.rev t.race_log in
  Mutex.unlock t.races_mutex;
  r

let race_count t = t.race_n

let clear_races t =
  Mutex.lock t.races_mutex;
  t.race_log <- [];
  t.race_n <- 0;
  Mutex.unlock t.races_mutex

(* Keep every race's existence but cap the retained details: a badly broken
   offsets array can conflict on every element. *)
let max_logged_races = 4096

let add_race t ~idx ~src ~me =
  let r =
    {
      index = idx;
      first_src = t.src_of.(idx);
      first_task = t.who.(idx);
      second_src = src;
      second_task = me;
    }
  in
  Mutex.lock t.races_mutex;
  if t.race_n < max_logged_races then t.race_log <- r :: t.race_log;
  t.race_n <- t.race_n + 1;
  Mutex.unlock t.races_mutex

let record t ~idx ~src =
  Atomic.incr t.writes;
  let me =
    match t.pool with
    | Some p -> (match Pool.current_worker p with Some w -> w | None -> -1)
    | None -> -1
  in
  let e = Atomic.get t.epoch in
  let s = Rpb_prim.Atomic_array.get t.stamp idx in
  if s = e then add_race t ~idx ~src ~me
  else if Rpb_prim.Atomic_array.compare_and_set t.stamp idx s e then begin
    (* We own the slot for this epoch; the diagnostic fields are plain
       stores — a concurrent racer reads them racily, which only blurs the
       attribution of an already-reported race. *)
    t.who.(idx) <- me;
    t.src_of.(idx) <- src
  end
  else
    (* Lost the claim to a concurrent first writer: that is the race. *)
    add_race t ~idx ~src ~me

let write t ~idx ~src v =
  if idx < 0 || idx >= Array.length t.payload then
    raise (Rpb_core.Scatter.Offset_out_of_range idx);
  if Atomic.get enabled_flag then record t ~idx ~src;
  Array.unsafe_set t.payload idx v

let write_count t = Atomic.get t.writes

module Store = struct
  type nonrec 'a t = 'a t

  let length = length
  let set t ~idx ~src v = write t ~idx ~src v
end
