(** Shadow arrays — a dynamic race detector for indirect parallel writes.

    A shadow array wraps a plain payload array and, while instrumentation is
    switched on, records which logical write ({e task}) last touched every
    slot within the current operation ({e epoch}).  A second write to a slot
    in the same epoch is exactly the invariant violation the unchecked ends
    of the fear spectrum gamble on — duplicate offsets under
    [Scatter.unchecked]/[atomic]/[mutexed], overlapping chunks under
    [Chunks_ind ~check:false] — and is reported as a structured {!race}
    carrying both offending source positions and both worker ids.

    The detection protocol is sound for within-epoch duplicates: the first
    writer claims the slot's epoch stamp with a compare-and-set; any
    subsequent (or colliding) writer either observes the claimed stamp or
    loses the CAS, and reports in both cases.  Under a deterministic
    sequential executor ({!Seq_exec}) the {e first}/{e second} attribution is
    exact as well.

    Instrumentation is a process-global switch in the style of [Pool.Trace]:
    when it is off, a shadow write costs one atomic load on top of the plain
    store — cheap enough to leave shadow-wrapped code in test harnesses
    permanently. *)

open Rpb_pool

type race = {
  index : int;  (** the slot written more than once in one epoch *)
  first_src : int;  (** source label of the write that owned the slot *)
  first_task : int;  (** worker id of that write ([-1]: outside a pool) *)
  second_src : int;  (** source label of the conflicting write *)
  second_task : int;  (** worker id of the conflicting write *)
}

val race_to_string : race -> string

(** {1 The global instrumentation switch} *)

val instrumentation_enabled : unit -> bool

val set_instrumentation : bool -> unit

val with_instrumentation : bool -> (unit -> 'a) -> 'a
(** Runs the thunk with the switch forced to the given value, restoring the
    previous value on exit (exceptions included). *)

(** {1 Shadow arrays} *)

type 'a t

val create : ?pool:Pool.t -> 'a array -> 'a t
(** [create ?pool payload] wraps [payload] (not copied — the shadow writes
    through to it).  When [pool] is given, writes are attributed to
    [Pool.current_worker pool]; otherwise every write reports task [-1]. *)

val payload : 'a t -> 'a array
(** The wrapped array, reflecting every write made through the shadow. *)

val length : 'a t -> int

val begin_op : 'a t -> unit
(** Starts a new epoch: writes before and after [begin_op] are considered
    sequenced (no race between them).  Call it once per logical parallel
    operation; {!Instrument}'s wrappers do this for you. *)

val write : 'a t -> idx:int -> src:int -> 'a -> unit
(** Writes [payload.(idx)], recording the write against the current epoch
    when instrumentation is on.  @raise Rpb_core.Scatter.Offset_out_of_range
    when [idx] is outside the payload. *)

val races : 'a t -> race list
(** All races recorded since creation (or {!clear_races}), oldest first. *)

val race_count : 'a t -> int

val clear_races : 'a t -> unit

val write_count : 'a t -> int
(** Instrumented writes observed (0 while the switch is off). *)

(** {1 The store instance}

    [Store] plugs shadow arrays under the store-polymorphic scatter and
    chunk operators: [Scatter.Make (Shadow.Store)] observes all four SngInd
    modes, [Chunks_ind.Make (Shadow.Store)] the RngInd operator.  See
    {!Instrument} for ready-made instances. *)

module Store : Rpb_core.Scatter.STORE with type 'a t = 'a t
