open Rpb_pool

exception Non_monotonic of int
exception Range_out_of_bounds of int

let validate_monotonic pool ~n offsets =
  let m = Array.length offsets in
  if m > 0 then begin
    let bad_pair = Atomic.make (-1) in
    let bad_range = Atomic.make (-1) in
    Pool.parallel_for ~start:0 ~finish:m
      ~body:(fun i ->
        let o = Array.unsafe_get offsets i in
        if o < 0 || o > n then Atomic.set bad_range o;
        if i + 1 < m && o > Array.unsafe_get offsets (i + 1) then
          Atomic.set bad_pair i)
      pool;
    let r = Atomic.get bad_range in
    if r <> -1 then raise (Range_out_of_bounds r);
    let p = Atomic.get bad_pair in
    if p <> -1 then raise (Non_monotonic p)
  end

let par_chunks_ind ?(check = true) pool ~offsets ~n ~body =
  let m = Array.length offsets in
  if m >= 2 then begin
    if check then validate_monotonic pool ~n offsets;
    Pool.parallel_for ~start:0 ~finish:(m - 1)
      ~body:(fun i ->
        body i (Array.unsafe_get offsets i) (Array.unsafe_get offsets (i + 1)))
      pool
  end

let fill_chunks_ind ?check pool ~out ~offsets ~f =
  par_chunks_ind ?check pool ~offsets ~n:(Array.length out)
    ~body:(fun i lo hi ->
      for j = lo to hi - 1 do
        Array.unsafe_set out j (f i j)
      done)

(* Store-polymorphic variant, mirroring [Scatter.Make]: each element write is
   routed through the store with the chunk id as its source label, so a
   shadow store can attribute overlapping chunk writes to both chunks.  The
   plain-array path above stays untouched. *)
module Make (S : Scatter.STORE) = struct
  let fill_chunks_ind ?check pool ~out ~offsets ~f =
    let n = S.length out in
    par_chunks_ind ?check pool ~offsets ~n
      ~body:(fun i lo hi ->
        for j = lo to hi - 1 do
          if j < 0 || j >= n then raise (Range_out_of_bounds j);
          S.set out ~idx:j ~src:i (f i j)
        done)
end
