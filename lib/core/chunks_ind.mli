(** RngInd — ranged indirect writes: task [i] owns the contiguous chunk
    [out.(offsets.(i)) .. out.(offsets.(i+1) - 1)] (paper Sec. 5.1,
    Listing 7).

    Unlike SngInd, the prevailing form has chunk order aligned with task
    order, so non-overlap reduces to [offsets] being monotonically
    non-decreasing — an O(m) check that is cheap relative to the work.  This
    is the paper's [par_ind_chunks_mut]: {e comfortable} at near-zero cost. *)

open Rpb_pool

exception Non_monotonic of int
(** [Non_monotonic i] — [offsets.(i) > offsets.(i+1)]. *)

exception Range_out_of_bounds of int
(** An offset lies outside [\[0, n\]] for destination length [n]. *)

val validate_monotonic : Pool.t -> n:int -> int array -> unit
(** Raises unless [offsets] is non-decreasing with all values in
    [\[0, n\]]. *)

val par_chunks_ind :
  ?check:bool -> Pool.t -> offsets:int array -> n:int ->
  body:(int -> int -> int -> unit) -> unit
(** [par_chunks_ind pool ~offsets ~n ~body] calls [body i lo hi] in parallel
    for each chunk [i], where [lo = offsets.(i)] and [hi = offsets.(i+1)].
    [offsets] has one more entry than there are chunks; [n] is the length of
    the destination the chunks index into.  [check] (default [true]) runs
    {!validate_monotonic} first; [~check:false] is the scared/unsafe build. *)

val fill_chunks_ind :
  ?check:bool -> Pool.t -> out:'a array -> offsets:int array ->
  f:(int -> int -> 'a) -> unit
(** Convenience instance of Listing 7(c): [out.(j) <- f i j] for each chunk
    [i] and each [j] in that chunk. *)

(** Store-polymorphic variant of {!fill_chunks_ind} (see {!Scatter.Make}):
    writes go through the store with the chunk id as source label and an
    explicit range check (raising {!Range_out_of_bounds}), so instrumented
    stores see exactly which chunks overlap when the split points are bad. *)
module Make (S : Scatter.STORE) : sig
  val fill_chunks_ind :
    ?check:bool -> Pool.t -> out:'a S.t -> offsets:int array ->
    f:(int -> int -> 'a) -> unit
end
