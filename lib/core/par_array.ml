open Rpb_pool

let iteri pool f a =
  Pool.parallel_for ~start:0 ~finish:(Array.length a)
    ~body:(fun i -> f i (Array.unsafe_get a i))
    pool

let iter pool f a = iteri pool (fun _ x -> f x) a

let mapi pool f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f 0 a.(0)) in
    Pool.parallel_for ~start:1 ~finish:n
      ~body:(fun i -> Array.unsafe_set out i (f i (Array.unsafe_get a i)))
      pool;
    out
  end

let map pool f a = mapi pool (fun _ x -> f x) a

let mapi_inplace pool f a =
  Pool.Trace.span pool "par_array.map_inplace" @@ fun () ->
  Pool.parallel_for ~start:0 ~finish:(Array.length a)
    ~body:(fun i -> Array.unsafe_set a i (f i (Array.unsafe_get a i)))
    pool

let map_inplace pool f a = mapi_inplace pool (fun _ x -> f x) a

let init pool n f =
  if n = 0 then [||]
  else begin
    let out = Array.make n (f 0) in
    Pool.parallel_for ~start:1 ~finish:n
      ~body:(fun i -> Array.unsafe_set out i (f i))
      pool;
    out
  end

let fill_stride pool a f =
  Pool.parallel_for ~start:0 ~finish:(Array.length a)
    ~body:(fun i -> Array.unsafe_set a i (f i))
    pool

let reduce pool f id a =
  Pool.Trace.span pool "par_array.reduce" @@ fun () ->
  Pool.parallel_for_reduce ~start:0 ~finish:(Array.length a)
    ~body:(fun i -> Array.unsafe_get a i)
    ~combine:f ~init:id pool

let sum pool a = reduce pool ( + ) 0 a
let sum_float pool a = reduce pool ( +. ) 0.0 a

let min_elt pool ~cmp a =
  if Array.length a = 0 then None
  else
    Some
      (Pool.parallel_for_reduce ~start:1 ~finish:(Array.length a)
         ~body:(fun i -> Array.unsafe_get a i)
         ~combine:(fun x y -> if cmp x y <= 0 then x else y)
         ~init:a.(0) pool)

let max_elt pool ~cmp a = min_elt pool ~cmp:(fun x y -> cmp y x) a

let count pool p a =
  Pool.parallel_for_reduce ~start:0 ~finish:(Array.length a)
    ~body:(fun i -> if p (Array.unsafe_get a i) then 1 else 0)
    ~combine:( + ) ~init:0 pool

let for_all pool p a = count pool (fun x -> not (p x)) a = 0
let exists pool p a = count pool p a > 0

let chunks pool ~chunk a body =
  assert (chunk > 0);
  Pool.parallel_chunks ~grain:chunk ~start:0 ~finish:(Array.length a)
    ~body pool

let copy pool a = mapi pool (fun _ x -> x) a

let blit pool ~src ~dst =
  if Array.length src <> Array.length dst then
    invalid_arg "Par_array.blit: length mismatch";
  Pool.parallel_for ~start:0 ~finish:(Array.length src)
    ~body:(fun i -> Array.unsafe_set dst i (Array.unsafe_get src i))
    pool

let reverse_inplace pool a =
  let n = Array.length a in
  Pool.parallel_for ~start:0 ~finish:(n / 2)
    ~body:(fun i ->
      let j = n - 1 - i in
      let t = Array.unsafe_get a i in
      Array.unsafe_set a i (Array.unsafe_get a j);
      Array.unsafe_set a j t)
    pool
