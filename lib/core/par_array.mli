(** Rayon-style parallel operations on arrays (the regular patterns of
    Sec. 4).

    Every function is deterministic: results equal those of the obvious
    sequential loop.  [pool] is always the first argument; operations called
    outside [Pool.run] fall back to sequential execution. *)

open Rpb_pool

val map : Pool.t -> ('a -> 'b) -> 'a array -> 'b array
(** RO: [map pool f a] is [Array.map f a] in parallel. *)

val mapi : Pool.t -> (int -> 'a -> 'b) -> 'a array -> 'b array

val map_inplace : Pool.t -> ('a -> 'a) -> 'a array -> unit
(** Stride (Listing 4e): [a.(i) <- f a.(i)] for every [i]; tasks touch
    disjoint elements, the analogue of Rayon's [par_iter_mut]. *)

val mapi_inplace : Pool.t -> (int -> 'a -> 'a) -> 'a array -> unit

val iter : Pool.t -> ('a -> unit) -> 'a array -> unit
(** RO consumer ([for_each]).  [f] must only perform task-private or
    properly synchronized effects; this is the user's obligation exactly as
    with Rayon's [for_each]. *)

val iteri : Pool.t -> (int -> 'a -> unit) -> 'a array -> unit

val init : Pool.t -> int -> (int -> 'a) -> 'a array
(** Stride into a fresh array. *)

val fill_stride : Pool.t -> 'a array -> (int -> 'a) -> unit
(** [fill_stride pool a f] sets [a.(i) <- f i] — the plain Stride pattern of
    Listing 4(b). *)

val reduce : Pool.t -> ('a -> 'a -> 'a) -> 'a -> 'a array -> 'a
(** RO: associative reduction with identity.  The shape of Listing 3(c). *)

val sum : Pool.t -> int array -> int

val sum_float : Pool.t -> float array -> float

val min_elt : Pool.t -> cmp:('a -> 'a -> int) -> 'a array -> 'a option

val max_elt : Pool.t -> cmp:('a -> 'a -> int) -> 'a array -> 'a option

val count : Pool.t -> ('a -> bool) -> 'a array -> int

val for_all : Pool.t -> ('a -> bool) -> 'a array -> bool

val exists : Pool.t -> ('a -> bool) -> 'a array -> bool

val chunks : Pool.t -> chunk:int -> 'a array -> (int -> int -> unit) -> unit
(** Block (Listing 5): partitions indices of the array into contiguous chunks
    of size [chunk] (last one possibly shorter) and calls [body lo hi] for
    each, in parallel — the analogue of [par_chunks_mut]. *)

val copy : Pool.t -> 'a array -> 'a array

val blit : Pool.t -> src:'a array -> dst:'a array -> unit
(** Parallel whole-array copy; lengths must match. *)

val reverse_inplace : Pool.t -> 'a array -> unit
