type access = RO | Stride | Block | DandC | SngInd | RngInd | AW

let all_accesses = [ RO; Stride; Block; DandC; SngInd; RngInd; AW ]

let access_name = function
  | RO -> "RO"
  | Stride -> "Stride"
  | Block -> "Block"
  | DandC -> "D&C"
  | SngInd -> "SngInd"
  | RngInd -> "RngInd"
  | AW -> "AW"

let access_of_string = function
  | "RO" | "ro" -> Some RO
  | "Stride" | "stride" -> Some Stride
  | "Block" | "block" -> Some Block
  | "D&C" | "dandc" | "dc" -> Some DandC
  | "SngInd" | "sngind" -> Some SngInd
  | "RngInd" | "rngind" -> Some RngInd
  | "AW" | "aw" -> Some AW
  | _ -> None

type fear = Fearless | Comfortable | Scared

let fear_name = function
  | Fearless -> "F"
  | Comfortable -> "C"
  | Scared -> "S"

let safety = function
  | RO | Stride | Block | DandC -> Fearless
  | SngInd | RngInd -> Comfortable
  | AW -> Scared

let expression = function
  | RO -> "parallel_for_reduce / Par_array.map (Rayon par_iter)"
  | Stride -> "Par_array.map_inplace (Rayon par_iter_mut)"
  | Block -> "Par_array.chunks (Rayon par_chunks_mut)"
  | DandC -> "Pool.join (Rayon join)"
  | SngInd -> "Scatter.checked (paper's par_ind_iter_mut)"
  | RngInd -> "Chunks_ind.par_chunks_ind (paper's par_ind_chunks_mut)"
  | AW -> "atomics / mutexes / CAS (mix of the above)"

type data_structure = Structured | Unstructured
type operator = Read_only | Local_read_write | Arbitrary_read_write
type dispatch = Static | Dynamic
type ordering = Unordered | Ordered

type shape = {
  data : data_structure;
  op : operator;
  dispatch : dispatch;
  ordering : ordering;
}

let irregularity_index { data; op; dispatch; ordering } =
  (match data with Structured -> 0 | Unstructured -> 1)
  + (match op with Read_only -> 0 | Local_read_write -> 1 | Arbitrary_read_write -> 2)
  + (match dispatch with Static -> 0 | Dynamic -> 1)
  + (match ordering with Unordered -> 0 | Ordered -> 1)

(* Sec. 4: regular parallelism is read-only operators on any data structure,
   or local read-write operators on structured data, statically dispatched. *)
let is_regular { data; op; dispatch; ordering = _ } =
  match (op, data, dispatch) with
  | Read_only, _, Static -> true
  | Local_read_write, Structured, Static -> true
  | _ -> false

let classify_access shape =
  match shape.op with
  | Read_only -> [ RO ]
  | Local_read_write -> (
    match shape.data with
    | Structured -> [ Stride; Block; DandC ]
    | Unstructured -> [ SngInd; RngInd ])
  | Arbitrary_read_write -> [ AW ]
