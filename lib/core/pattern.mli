(** The paper's analysis framework: parallel access patterns, the three
    dimensions of (ir)regularity (Fig. 1), and the spectrum of fear (Fig. 2,
    Table 3).

    Each RPB benchmark registers which patterns it uses; the harness derives
    Table 1, Table 3 and Fig. 3 from these registrations. *)

(** The seven access patterns of Table 3. *)
type access =
  | RO        (** read only: tasks never write shared data *)
  | Stride    (** [array.(i) <- f ()] — per-element local writes *)
  | Block     (** [array.(i*s .. (i+1)*s) <- f ()] — per-chunk local writes *)
  | DandC     (** divide and conquer via fork-join [join] *)
  | SngInd    (** [array.(b.(i)) <- f ()] — single-valued indirect writes *)
  | RngInd    (** [array.(b.(i) .. b.(i+1)) <- f ()] — ranged indirect writes *)
  | AW        (** arbitrary (potentially overlapping) reads and writes *)

val all_accesses : access list
(** In Table 3 order. *)

val access_name : access -> string
val access_of_string : string -> access option

(** Fig. 2: the spectrum of fear. *)
type fear =
  | Fearless     (** concurrency errors are caught at compile time *)
  | Comfortable  (** errors are caught at run time, symptom close to cause *)
  | Scared       (** errors may happen without being detected *)

val fear_name : fear -> string

val safety : access -> fear
(** Table 3's "fearlessness" column: the fear level of the paper's
    recommended expression of each pattern. *)

val expression : access -> string
(** Table 3's "parallel expression" column, with our OCaml analogue. *)

(** Fig. 1's three dimensions of task-level parallelism. *)

type data_structure = Structured | Unstructured

type operator = Read_only | Local_read_write | Arbitrary_read_write

type dispatch = Static | Dynamic

type ordering = Unordered | Ordered

type shape = {
  data : data_structure;
  op : operator;
  dispatch : dispatch;
  ordering : ordering;
}

val irregularity_index : shape -> int
(** The "parallelism irregularity index" of Fig. 1: 0 for fully regular
    shapes, rising with each irregular dimension (arbitrary read-write counts
    double).  A reduction on an array is 0; relaxed parallel Dijkstra
    (arbitrary ops on unstructured data, dynamic ordered dispatch) is 5, the
    maximum. *)

val is_regular : shape -> bool
(** A shape is regular when its data dependences are statically identifiable:
    read-only operators on any data, or local read-write operators on
    structured data, with static dispatch. *)

val classify_access : shape -> access list
(** Which access patterns can express a phase of the given shape fearlessly
    or comfortably; [AW] is always a (scared) fallback. *)
