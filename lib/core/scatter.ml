open Rpb_pool

exception Duplicate_offset of int
exception Offset_out_of_range of int

type mode = Unchecked | Checked | Atomic | Mutexed

let mode_name = function
  | Unchecked -> "unchecked"
  | Checked -> "checked"
  | Atomic -> "atomic"
  | Mutexed -> "mutex"

let all_modes = [ Unchecked; Checked; Atomic; Mutexed ]

type check_strategy = Mark_table | Sort_based

let check_range pool ~n offsets =
  let bad = Atomic.make (-1) in
  Pool.parallel_for ~start:0 ~finish:(Array.length offsets)
    ~body:(fun i ->
      let o = Array.unsafe_get offsets i in
      if o < 0 || o >= n then Atomic.set bad o)
    pool;
  let b = Atomic.get bad in
  if b <> -1 then raise (Offset_out_of_range b)

(* Mark-table strategy, PBBS style: every index writes itself into its
   target slot (plain stores — for duplicates an arbitrary winner survives,
   which is all we need), then a second pass checks each index still owns
   its slot.  The fork-join barrier between the passes orders the plain
   writes before the reads.  Exactly one loser exists per duplicated offset,
   so duplicates are always detected.  Cost: two parallel passes over the
   table — the run-time price of "comfort" the paper measures.

   The O(n) table itself is cached and reused across calls: slots are
   validated against an epoch stamp instead of being refilled, so a checked
   scatter in a loop costs two O(n) array allocations once, not per
   iteration.  Both stores per slot carry the same epoch value from every
   writer, so the racy two-word write stays sound: [stamp.(o) = epoch] holds
   iff some writer targeted [o] this call, and [slot.(o)] then holds exactly
   one winner.  Concurrent validations from different pools fall back to a
   private table (the [Mutex.try_lock] miss path) rather than serialize. *)
type mark_table = {
  mutable slot : int array;
  mutable stamp : int array;
  mutable epoch : int;
}

let mark_cache = { slot = [||]; stamp = [||]; epoch = 0 }
let mark_cache_lock = Mutex.create ()

let mark_pass pool ~table ~offsets =
  let { slot; stamp; epoch } = table in
  Pool.parallel_for ~start:0 ~finish:(Array.length offsets)
    ~body:(fun i ->
      let o = Array.unsafe_get offsets i in
      Array.unsafe_set slot o i;
      Array.unsafe_set stamp o epoch)
    pool;
  let dup = Atomic.make (-1) in
  Pool.parallel_for ~start:0 ~finish:(Array.length offsets)
    ~body:(fun i ->
      let o = Array.unsafe_get offsets i in
      if Array.unsafe_get stamp o <> epoch || Array.unsafe_get slot o <> i
      then Atomic.set dup o)
    pool;
  let d = Atomic.get dup in
  if d <> -1 then raise (Duplicate_offset d)

let check_unique_mark pool ~n offsets =
  if Mutex.try_lock mark_cache_lock then
    Fun.protect
      ~finally:(fun () -> Mutex.unlock mark_cache_lock)
      (fun () ->
        if Array.length mark_cache.slot < n then begin
          (* Build the replacement fully before committing either field: if
             the second allocation throws (Out_of_memory), a torn pair of
             different lengths must not survive into the next call — the
             passes index [stamp] by offsets range-checked against [slot]'s
             length. *)
          let slot = Array.make n (-1) in
          let stamp = Array.make n 0 in
          mark_cache.slot <- slot;
          mark_cache.stamp <- stamp;
          mark_cache.epoch <- 0
        end;
        mark_cache.epoch <- mark_cache.epoch + 1;
        (* A pass that raises (duplicate found, injected task exception,
           scope cancelled by a sibling) abandons the table partially
           stamped at the claimed epoch.  The pool drains every task of the
           failed construct before the exception escapes [mark_pass], so no
           straggler writes after we unlock; retiring the claimed epoch on
           the way out additionally makes the partial stamps unmatchable by
           any later validation. *)
        match mark_pass pool ~table:mark_cache ~offsets with
        | () -> ()
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          mark_cache.epoch <- mark_cache.epoch + 1;
          Printexc.raise_with_backtrace e bt)
  else
    (* Another domain is validating with the shared table right now (two
       pools, or a validation nested inside another): use a throwaway. *)
    mark_pass pool
      ~table:{ slot = Array.make n (-1); stamp = Array.make n 0; epoch = 1 }
      ~offsets

let check_unique_sort _pool offsets =
  let copy = Array.copy offsets in
  Array.sort compare copy;
  for i = 1 to Array.length copy - 1 do
    if copy.(i - 1) = copy.(i) then raise (Duplicate_offset copy.(i))
  done

let validate_offsets ?(strategy = Mark_table) pool ~n offsets =
  Pool.Trace.span pool "scatter.validate" @@ fun () ->
  check_range pool ~n offsets;
  match strategy with
  | Mark_table -> check_unique_mark pool ~n offsets
  | Sort_based -> check_unique_sort pool offsets

let length_check ~offsets ~src =
  if Array.length offsets <> Array.length src then
    invalid_arg "Scatter: offsets and src length mismatch"

let unchecked pool ~out ~offsets ~src =
  Pool.Trace.span pool "scatter.unchecked" @@ fun () ->
  length_check ~offsets ~src;
  let n = Array.length out in
  Pool.parallel_for ~start:0 ~finish:(Array.length src)
    ~body:(fun i ->
      let o = Array.unsafe_get offsets i in
      if o < 0 || o >= n then raise (Offset_out_of_range o);
      Array.unsafe_set out o (Array.unsafe_get src i))
    pool

let checked ?strategy pool ~out ~offsets ~src =
  length_check ~offsets ~src;
  validate_offsets ?strategy pool ~n:(Array.length out) offsets;
  unchecked pool ~out ~offsets ~src

let atomic pool ~out ~offsets ~src =
  length_check ~offsets ~src;
  let n = Rpb_prim.Atomic_array.length out in
  Pool.parallel_for ~start:0 ~finish:(Array.length src)
    ~body:(fun i ->
      let o = Array.unsafe_get offsets i in
      if o < 0 || o >= n then raise (Offset_out_of_range o);
      Rpb_prim.Atomic_array.unsafe_set out o (Array.unsafe_get src i))
    pool

let mutexed ?(stripes = 64) pool ~out ~offsets ~src =
  length_check ~offsets ~src;
  assert (stripes > 0);
  let locks = Array.init stripes (fun _ -> Mutex.create ()) in
  let n = Array.length out in
  Pool.parallel_for ~start:0 ~finish:(Array.length src)
    ~body:(fun i ->
      let o = Array.unsafe_get offsets i in
      if o < 0 || o >= n then raise (Offset_out_of_range o);
      let m = locks.(o mod stripes) in
      Mutex.lock m;
      Array.unsafe_set out o (Array.unsafe_get src i);
      Mutex.unlock m)
    pool

let scatter mode pool ~out ~offsets ~src =
  match mode with
  | Unchecked -> unchecked pool ~out ~offsets ~src
  | Checked -> checked pool ~out ~offsets ~src
  | Mutexed -> mutexed pool ~out ~offsets ~src
  | Atomic ->
    invalid_arg "Scatter.scatter: Atomic mode needs Scatter.atomic"

let gather pool ~src ~offsets =
  let n = Array.length src in
  Par_array.init pool (Array.length offsets) (fun i ->
      let o = Array.unsafe_get offsets i in
      if o < 0 || o >= n then raise (Offset_out_of_range o);
      Array.unsafe_get src o)

(* ------------------------------------------------------------------ *)
(* Store-polymorphic scatter.

   The plain-array entry points above stay exactly as they are — that is the
   zero-cost path the paper prices.  [Make] re-expresses all four modes over
   an abstract write store so a checking layer (rpb_check's shadow arrays)
   can observe every indirect write without this module knowing about it.
   The store receives the destination index *and* the source index of each
   write, which is what lets a detector report both offending positions of a
   duplicated offset. *)

module type STORE = sig
  type 'a t

  val length : 'a t -> int

  val set : 'a t -> idx:int -> src:int -> 'a -> unit
  (** Write one element.  [idx] has already been range-checked against
      {!length} by the caller; [src] identifies where the value came from
      (source position for SngInd, chunk id for RngInd). *)
end

module Make (S : STORE) = struct
  let unchecked pool ~out ~offsets ~src =
    Pool.Trace.span pool "scatter.unchecked" @@ fun () ->
    length_check ~offsets ~src;
    let n = S.length out in
    Pool.parallel_for ~start:0 ~finish:(Array.length src)
      ~body:(fun i ->
        let o = Array.unsafe_get offsets i in
        if o < 0 || o >= n then raise (Offset_out_of_range o);
        S.set out ~idx:o ~src:i (Array.unsafe_get src i))
      pool

  let checked ?strategy pool ~out ~offsets ~src =
    length_check ~offsets ~src;
    validate_offsets ?strategy pool ~n:(S.length out) offsets;
    unchecked pool ~out ~offsets ~src

  (* Over an abstract store the "atomic" mode is the same access pattern as
     [unchecked] — atomicity is the store's representation choice, and it
     validates nothing, which is exactly the point the paper makes about
     placating a race detector. *)
  let atomic pool ~out ~offsets ~src =
    Pool.Trace.span pool "scatter.atomic" @@ fun () ->
    length_check ~offsets ~src;
    let n = S.length out in
    Pool.parallel_for ~start:0 ~finish:(Array.length src)
      ~body:(fun i ->
        let o = Array.unsafe_get offsets i in
        if o < 0 || o >= n then raise (Offset_out_of_range o);
        S.set out ~idx:o ~src:i (Array.unsafe_get src i))
      pool

  let mutexed ?(stripes = 64) pool ~out ~offsets ~src =
    length_check ~offsets ~src;
    assert (stripes > 0);
    let locks = Array.init stripes (fun _ -> Mutex.create ()) in
    let n = S.length out in
    Pool.parallel_for ~start:0 ~finish:(Array.length src)
      ~body:(fun i ->
        let o = Array.unsafe_get offsets i in
        if o < 0 || o >= n then raise (Offset_out_of_range o);
        let m = locks.(o mod stripes) in
        Mutex.lock m;
        S.set out ~idx:o ~src:i (Array.unsafe_get src i);
        Mutex.unlock m)
      pool

  let scatter mode pool ~out ~offsets ~src =
    match mode with
    | Unchecked -> unchecked pool ~out ~offsets ~src
    | Checked -> checked pool ~out ~offsets ~src
    | Atomic -> atomic pool ~out ~offsets ~src
    | Mutexed -> mutexed pool ~out ~offsets ~src
end
