(** SngInd — single-valued indirect writes: [out.(offsets.(i)) <- src.(i)]
    (paper Sec. 5.1, Listing 6).

    The algorithm guarantees that offsets are unique, but neither a type
    system nor a cheap check can prove it, so the programmer picks a point on
    the fear spectrum:

    - {!unchecked} writes directly (Rust's [unsafe] pointer write,
      Listing 6d): fastest, {e scared} — a buggy offsets array silently
      corrupts [out].
    - {!checked} first validates that all offsets are unique and in range,
      the paper's [par_ind_iter_mut] (Listing 6f): {e comfortable} — a bug
      raises {!Duplicate_offset} at the call, but the check costs about as
      much as the scatter itself.
    - {!atomic} stores through atomic cells (Listing 6e): placates a
      data-race detector but validates nothing — still {e scared}.
    - {!mutex} takes a striped lock around each write: the "unnecessary
      synchronization" variant of Sec. 7.4 — still {e scared}, and slow.

    All variants compute the same result on valid inputs. *)

open Rpb_pool

exception Duplicate_offset of int
(** [Duplicate_offset o] — offset value [o] appears more than once. *)

exception Offset_out_of_range of int
(** An offset falls outside [\[0, Array.length out)]. *)

type mode = Unchecked | Checked | Atomic | Mutexed

val mode_name : mode -> string
val all_modes : mode list

type check_strategy = Mark_table | Sort_based
(** How {!checked} proves uniqueness: [Mark_table] marks a per-slot atomic
    byte table (O(n) extra space, O(m) work); [Sort_based] sorts a copy of
    the offsets and scans for adjacent duplicates (no per-slot table, O(m log
    m) work).  Exposed for the ablation bench. *)

val validate_offsets :
  ?strategy:check_strategy -> Pool.t -> n:int -> int array -> unit
(** [validate_offsets pool ~n offsets] raises {!Duplicate_offset} or
    {!Offset_out_of_range} unless [offsets] is a duplicate-free array of
    values in [\[0, n)].  Runs in parallel.  Default strategy: [Mark_table]. *)

val unchecked : Pool.t -> out:'a array -> offsets:int array -> src:'a array -> unit
(** Direct indirect scatter.  Offsets must be in range (bounds are always
    enforced — OCaml has no way to turn them off unsafely here without
    [Array.unsafe_set], which we use only after an explicit range check is
    the caller's obligation).  Uniqueness is NOT validated. *)

val checked :
  ?strategy:check_strategy -> Pool.t ->
  out:'a array -> offsets:int array -> src:'a array -> unit
(** The paper's [par_ind_iter_mut]: {!validate_offsets} then scatter. *)

val atomic :
  Pool.t -> out:Rpb_prim.Atomic_array.t -> offsets:int array -> src:int array -> unit
(** Relaxed atomic stores into an atomic destination (integer payloads). *)

val mutexed :
  ?stripes:int -> Pool.t -> out:'a array -> offsets:int array -> src:'a array -> unit
(** Striped-lock scatter ([stripes] locks, default 64). *)

val scatter :
  mode -> Pool.t -> out:'a array -> offsets:int array -> src:'a array -> unit
(** Dispatch on [mode] for plain arrays.  [Atomic] requires an atomic
    destination and therefore raises [Invalid_argument] here — use {!atomic}
    with an {!Rpb_prim.Atomic_array.t} destination instead. *)

val gather : Pool.t -> src:'a array -> offsets:int array -> 'a array
(** The read-only dual [out.(i) = src.(offsets.(i))]: always safe (regular
    writes), included for completeness and for the benchmarks' read phases. *)

(** {1 Store-polymorphic scatter}

    The plain-array entry points above are the zero-cost path and are not
    routed through any abstraction.  {!Make} provides the same four modes
    over an abstract write store, so an instrumented store (rpb_check's
    shadow arrays) can observe every indirect write — destination index,
    source index — without the production path paying for it. *)

module type STORE = sig
  type 'a t

  val length : 'a t -> int

  val set : 'a t -> idx:int -> src:int -> 'a -> unit
  (** Write one element.  [idx] has been range-checked against {!length} by
      the caller; [src] identifies the write's origin (source position for
      SngInd, chunk id for RngInd). *)
end

module Make (S : STORE) : sig
  val unchecked :
    Pool.t -> out:'a S.t -> offsets:int array -> src:'a array -> unit

  val checked :
    ?strategy:check_strategy -> Pool.t ->
    out:'a S.t -> offsets:int array -> src:'a array -> unit

  val atomic : Pool.t -> out:'a S.t -> offsets:int array -> src:'a array -> unit
  (** Same access pattern as [unchecked]; atomicity (or its absence) is the
      store's representation choice.  Unlike the plain-array {!atomic}, this
      one is polymorphic, so {!scatter} can dispatch all four modes. *)

  val mutexed :
    ?stripes:int -> Pool.t ->
    out:'a S.t -> offsets:int array -> src:'a array -> unit

  val scatter :
    mode -> Pool.t -> out:'a S.t -> offsets:int array -> src:'a array -> unit
end
