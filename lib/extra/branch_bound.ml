open Rpb_pool

module type Problem = sig
  type state

  val initial : state
  val is_complete : state -> bool
  val value : state -> int
  val upper_bound : state -> int
  val branch : state -> state list
end

let maximize pool ?(sequential_depth = 12) (module P : Problem) =
  let best = Atomic.make min_int in
  (* fetch_max over the incumbent. *)
  let rec bump v =
    let cur = Atomic.get best in
    if v > cur && not (Atomic.compare_and_set best cur v) then bump v
  in
  let rec solve depth s =
    if P.upper_bound s > Atomic.get best then begin
      if P.is_complete s then bump (P.value s)
      else begin
        let children = P.branch s in
        if depth >= sequential_depth then List.iter (solve (depth + 1)) children
        else begin
          (* Fork children pairwise through join to keep the tree binary. *)
          let rec fork = function
            | [] -> ()
            | [ c ] -> solve (depth + 1) c
            | c :: rest ->
              let ((), ()) =
                Pool.join pool
                  (fun () -> solve (depth + 1) c)
                  (fun () -> fork rest)
              in
              ()
          in
          fork children
        end
      end
    end
  in
  solve 0 P.initial;
  Atomic.get best

module Knapsack = struct
  type item = { weight : int; profit : int }

  let random_instance ~n ~seed =
    let rng = Rpb_prim.Rng.create seed in
    let items =
      Array.init n (fun _ ->
          { weight = 1 + Rpb_prim.Rng.int rng 50; profit = 1 + Rpb_prim.Rng.int rng 100 })
    in
    let total = Array.fold_left (fun acc it -> acc + it.weight) 0 items in
    (items, total / 2)

  type state = { index : int; room : int; profit : int }

  let problem items ~capacity =
    (* Sort by profit density so the greedy fractional bound is tight. *)
    let sorted = Array.copy items in
    Array.sort
      (fun (a : item) (b : item) ->
        compare (b.profit * a.weight) (a.profit * b.weight))
      sorted;
    let n = Array.length sorted in
    let module P = struct
      type nonrec state = state

      let initial = { index = 0; room = capacity; profit = 0 }
      let is_complete s = s.index >= n
      let value s = s.profit

      (* Fractional-relaxation bound from the remaining density-sorted
         items. *)
      let upper_bound s =
        let rec go i room acc =
          if i >= n || room = 0 then acc
          else begin
            let it = sorted.(i) in
            if it.weight <= room then go (i + 1) (room - it.weight) (acc + it.profit)
            else acc + (it.profit * room / it.weight) + 1
          end
        in
        go s.index s.room s.profit

      let branch s =
        let skip = { s with index = s.index + 1 } in
        let it = sorted.(s.index) in
        if it.weight <= s.room then
          [
            {
              index = s.index + 1;
              room = s.room - it.weight;
              profit = s.profit + it.profit;
            };
            skip;
          ]
        else [ skip ]
    end in
    (module P : Problem)

  let solve_dp items ~capacity =
    let dp = Array.make (capacity + 1) 0 in
    Array.iter
      (fun it ->
        for room = capacity downto it.weight do
          dp.(room) <- max dp.(room) (dp.(room - it.weight) + it.profit)
        done)
      items;
    dp.(capacity)
end
