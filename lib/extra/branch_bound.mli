(** Parallel branch and bound — absent from RPB per Sec. 7.1.

    Fork-join depth-first exploration with a shared atomic incumbent:
    subtrees whose admissible upper bound cannot beat the incumbent are
    pruned.  Pruning makes the parallel search's work schedule-dependent
    (more or less is explored depending on how fast good incumbents
    propagate), while the returned optimum is deterministic. *)

open Rpb_pool

module type Problem = sig
  type state

  val initial : state

  val is_complete : state -> bool

  val value : state -> int
  (** Objective of a complete state (to be maximized). *)

  val upper_bound : state -> int
  (** Admissible: no descendant of [state] exceeds this. *)

  val branch : state -> state list
  (** Children of a non-complete state. *)
end

val maximize : Pool.t -> ?sequential_depth:int -> (module Problem) -> int
(** The optimal objective value.  [sequential_depth] (default 12) bounds the
    fork depth; deeper subtrees run sequentially. *)

(** 0/1 knapsack as a ready-made instance (and its DP oracle for tests). *)
module Knapsack : sig
  type item = { weight : int; profit : int }

  val random_instance : n:int -> seed:int -> item array * int
  (** Items plus a capacity around half the total weight. *)

  val problem : item array -> capacity:int -> (module Problem)

  val solve_dp : item array -> capacity:int -> int
  (** Exact dynamic-programming reference. *)
end
