type 'a t = {
  queue : 'a Queue.t;
  capacity : int;
  mutex : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Channel.create: capacity must be >= 1";
  {
    queue = Queue.create ();
    capacity;
    mutex = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
    closed = false;
  }

let send t x =
  Mutex.lock t.mutex;
  let rec wait () =
    if t.closed then begin
      Mutex.unlock t.mutex;
      invalid_arg "Channel.send: closed"
    end
    else if Queue.length t.queue >= t.capacity then begin
      Condition.wait t.not_full t.mutex;
      wait ()
    end
  in
  wait ();
  Queue.push x t.queue;
  Condition.signal t.not_empty;
  Mutex.unlock t.mutex

let recv t =
  Mutex.lock t.mutex;
  let rec wait () =
    if not (Queue.is_empty t.queue) then begin
      let x = Queue.pop t.queue in
      Condition.signal t.not_full;
      Mutex.unlock t.mutex;
      Some x
    end
    else if t.closed then begin
      Mutex.unlock t.mutex;
      None
    end
    else begin
      Condition.wait t.not_empty t.mutex;
      wait ()
    end
  in
  wait ()

let close t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mutex

let length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n
