(** Bounded multi-producer multi-consumer channel (mutex + condition
    variables) — the communication substrate for {!Pipeline}. *)

type 'a t

val create : capacity:int -> 'a t

val send : 'a t -> 'a -> unit
(** Blocks while the channel is full.  Raises [Invalid_argument] if the
    channel is closed. *)

val recv : 'a t -> 'a option
(** Blocks while the channel is empty; [None] once the channel is closed
    and drained. *)

val close : 'a t -> unit
(** Idempotent.  Wakes all blocked receivers. *)

val length : 'a t -> int
