open Rpb_pool

type 'a t = Now of 'a | Later of 'a Pool.promise

let spawn pool f = Later (Pool.async pool f)

let value x = Now x

let get pool = function Now x -> x | Later p -> Pool.await pool p

let poll = function
  | Now x -> Some x
  | Later p ->
    (match Pool.try_result p with
     | None -> None
     | Some (Ok x) -> Some x
     | Some (Error e) -> raise e)

let map pool f t =
  match t with
  | Now x -> Later (Pool.async pool (fun () -> f x))
  | Later p -> Later (Pool.async pool (fun () -> f (Pool.await pool p)))

let both pool a b =
  Later
    (Pool.async pool (fun () ->
         let x = get pool a in
         let y = get pool b in
         (x, y)))
