(** Futures — another pattern the paper's coverage list marks absent
    (Sec. 7.1), and the vehicle for non-strict fork-join (Sec. 6: "child
    tasks join any task").

    A future is a first-class handle on a pool task: unlike [Pool.join]'s
    strictly nested parent-child structure, a future can be passed around
    and awaited by any task — which is precisely what makes the discipline
    harder to check statically. *)

open Rpb_pool

type 'a t

val spawn : Pool.t -> (unit -> 'a) -> 'a t

val get : Pool.t -> 'a t -> 'a
(** Blocks (helping: executes other pool tasks) until the value is ready.
    Any task, not just the spawner, may call this. *)

val poll : 'a t -> 'a option
(** [None] while still running; raises if the future's task raised. *)

val map : Pool.t -> ('a -> 'b) -> 'a t -> 'b t
(** The mapped future runs as its own task once the input is available. *)

val both : Pool.t -> 'a t -> 'b t -> ('a * 'b) t

val value : 'a -> 'a t
(** An already-completed future. *)
