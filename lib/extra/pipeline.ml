type ('a, 'b) t =
  | Stage : ('a -> 'b) -> ('a, 'b) t
  | Compose : ('a, 'c) t * ('c, 'b) t -> ('a, 'b) t

let stage f = Stage f
let ( >>> ) l r = Compose (l, r)

let rec stages : type a b. (a, b) t -> int = function
  | Stage _ -> 1
  | Compose (l, r) -> stages l + stages r

(* Wire one stage: a domain that maps its input channel onto its output
   channel.  On a stage exception the error slot is filled and the stage
   degenerates to a drain so upstream senders never block forever. *)
let rec wire :
  type a b.
    capacity:int -> exn option Atomic.t -> (a, b) t -> a Channel.t ->
    b Channel.t * unit Domain.t list =
 fun ~capacity err p inch ->
  match p with
  | Stage f ->
    let outch = Channel.create ~capacity in
    let d =
      Domain.spawn (fun () ->
          let rec run () =
            match Channel.recv inch with
            | None -> ()
            | Some x ->
              (match f x with
               | y ->
                 Channel.send outch y;
                 run ()
               | exception e ->
                 ignore (Atomic.compare_and_set err None (Some e));
                 drain ())
          and drain () =
            match Channel.recv inch with Some _ -> drain () | None -> ()
          in
          run ();
          Channel.close outch)
    in
    (outch, [ d ])
  | Compose (l, r) ->
    let mid, dl = wire ~capacity err l inch in
    let out, dr = wire ~capacity err r mid in
    (out, dl @ dr)

let run ?(queue_capacity = 64) p input =
  let err = Atomic.make None in
  let inch = Channel.create ~capacity:queue_capacity in
  let outch, domains = wire ~capacity:queue_capacity err p inch in
  let feeder =
    Domain.spawn (fun () ->
        Array.iter (fun x -> Channel.send inch x) input;
        Channel.close inch)
  in
  let collected = ref [] in
  let rec collect n =
    match Channel.recv outch with
    | Some y ->
      collected := y :: !collected;
      collect (n + 1)
    | None -> n
  in
  let count = collect 0 in
  Domain.join feeder;
  List.iter Domain.join domains;
  (match Atomic.get err with Some e -> raise e | None -> ());
  assert (count = Array.length input);
  let out = Array.of_list (List.rev !collected) in
  out
