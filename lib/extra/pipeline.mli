(** Parallel pipelines — absent from RPB per Sec. 7.1.

    Stages are composed with {!(>>>)} and executed with one domain per
    stage, connected by bounded channels; element order is preserved end to
    end.  Pipelining pays off when stages have comparable cost and the
    stream is long; a single-stage pipeline degrades to a plain map. *)

type ('a, 'b) t

val stage : ('a -> 'b) -> ('a, 'b) t

val ( >>> ) : ('a, 'b) t -> ('b, 'c) t -> ('a, 'c) t

val stages : ('a, 'b) t -> int

val run : ?queue_capacity:int -> ('a, 'b) t -> 'a array -> 'b array
(** Feed the array through the pipeline; returns outputs in input order.
    [queue_capacity] bounds each inter-stage channel (default 64).
    Exceptions raised by stage functions propagate (after the pipeline
    drains). *)
