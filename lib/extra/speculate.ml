open Rpb_pool

let select pool ~guard then_ else_ =
  let (g, t), e = Pool.join pool (fun () -> Pool.join pool guard then_) else_ in
  if g then t else e

(* Poll the promises until a winner emerges, helping the pool meanwhile by
   yielding the core (the promises are already queued as tasks). *)
let first_some pool alternatives =
  let promises = List.map (fun f -> Pool.async pool f) alternatives in
  let rec scan pending =
    match pending with
    | [] -> None
    | _ ->
      let still_pending, winner =
        List.fold_left
          (fun (acc, winner) p ->
            match winner with
            | Some _ -> (acc, winner)
            | None ->
              (match Pool.try_result p with
               | None -> (p :: acc, None)
               | Some (Ok (Some _ as r)) -> (acc, Some r)
               | Some (Ok None) -> (acc, None)
               | Some (Error e) -> raise e))
          ([], None) pending
      in
      (match winner with
       | Some r -> r
       | None ->
         if still_pending = [] then None
         else begin
           (* Drain one pending promise by helping: awaiting the first
              pending task contributes this worker to the pool instead of
              spinning. *)
           (match still_pending with
            | p :: _ -> (try ignore (Pool.await pool p) with _ -> ())
            | [] -> ());
           scan still_pending
         end)
  in
  scan promises

let fastest pool = function
  | [] -> invalid_arg "Speculate.fastest: no alternatives"
  | alternatives ->
    (match first_some pool (List.map (fun f () -> Some (f ())) alternatives) with
     | Some x -> x
     | None -> assert false)
