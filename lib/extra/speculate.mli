(** Speculative selection — evaluate alternatives before knowing which is
    needed (absent from RPB per Sec. 7.1).

    There is no task cancellation: losing speculations run to completion and
    their work is wasted, which is the fundamental cost/benefit trade-off of
    speculation.  Speculated computations must be pure (their side effects
    would survive losing). *)

open Rpb_pool

val select : Pool.t -> guard:(unit -> bool) -> (unit -> 'a) -> (unit -> 'a) -> 'a
(** [select pool ~guard then_ else_] evaluates the guard and BOTH branches
    in parallel, returning the branch the guard picks. *)

val first_some : Pool.t -> (unit -> 'a option) list -> 'a option
(** Run all alternatives in parallel; return the result of the first (by
    completion time) that yields [Some].  [None] if every alternative
    declines.  Exceptions from alternatives that finish before a winner are
    re-raised. *)

val fastest : Pool.t -> (unit -> 'a) list -> 'a
(** First-come-first-served over equivalent computations (e.g. two
    algorithms for the same answer). *)
