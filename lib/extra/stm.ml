(* TL2-style STM.  Versions are even when unlocked; an odd version means a
   committing transaction holds the write lock.  The global clock advances by
   2 per commit so versions stay even. *)

type tvar = {
  id : int;
  mutable value : int;
  version : int Atomic.t;
}

exception Abort

(* Internal conflict signal: retry the transaction. *)
exception Conflict

type tx = {
  rv : int; (* snapshot version: all reads must be <= rv *)
  mutable reads : (tvar * int) list; (* (var, version seen) *)
  writes : (int, tvar * int) Hashtbl.t;
}

let clock = Atomic.make 0
let next_id = Atomic.make 0
let commits = Atomic.make 0
let aborts = Atomic.make 0

let tvar v =
  { id = Atomic.fetch_and_add next_id 1; value = v; version = Atomic.make 0 }

let read tx v =
  match Hashtbl.find_opt tx.writes v.id with
  | Some (_, buffered) -> buffered
  | None ->
    let v1 = Atomic.get v.version in
    if v1 land 1 = 1 || v1 > tx.rv then raise Conflict;
    let x = v.value in
    (* Re-check: if the version moved we may have read a torn snapshot. *)
    if Atomic.get v.version <> v1 then raise Conflict;
    tx.reads <- (v, v1) :: tx.reads;
    x

let write tx v x = Hashtbl.replace tx.writes v.id (v, x)

(* Returns the pre-lock version on success so rollback can restore it. *)
let try_lock v rv =
  let ver = Atomic.get v.version in
  if ver land 1 = 1 || ver > rv then None
  else if Atomic.compare_and_set v.version ver (ver + 1) then Some ver
  else None

let unlock_var v old_version = Atomic.set v.version old_version

let commit tx =
  (* Lock the write set in id order (total order -> no deadlock). *)
  let writes =
    List.sort
      (fun (_, (a, _)) (_, (b, _)) -> compare a.id b.id)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tx.writes [])
  in
  let locked = ref [] in
  let rollback () =
    List.iter (fun (v, old) -> unlock_var v old) !locked;
    raise Conflict
  in
  List.iter
    (fun (_, (v, _)) ->
      match try_lock v tx.rv with
      | Some before -> locked := (v, before) :: !locked
      | None -> rollback ())
    writes;
  (* Validate the read set: unchanged and not locked by someone else. *)
  List.iter
    (fun (v, seen) ->
      let cur = Atomic.get v.version in
      let owned = Hashtbl.mem tx.writes v.id in
      if (not owned) && cur <> seen then rollback ();
      if owned && cur <> seen + 1 && cur <> seen then rollback ())
    tx.reads;
  let wv = Atomic.fetch_and_add clock 2 + 2 in
  List.iter
    (fun (_, (v, x)) ->
      v.value <- x;
      Atomic.set v.version wv)
    writes;
  Atomic.incr commits

let atomically body =
  let rng = Rpb_prim.Rng.create (Domain.self () :> int) in
  let rec attempt backoff =
    let tx = { rv = Atomic.get clock; reads = []; writes = Hashtbl.create 8 } in
    match
      let result = body tx in
      commit tx;
      result
    with
    | result -> result
    | exception Conflict ->
      Atomic.incr aborts;
      (* Randomized exponential backoff to break livelock. *)
      for _ = 1 to Rpb_prim.Rng.int rng (backoff + 1) do
        Domain.cpu_relax ()
      done;
      attempt (min 4096 (2 * backoff))
  in
  attempt 8

let get v =
  let rec go () =
    let v1 = Atomic.get v.version in
    if v1 land 1 = 1 then begin
      Domain.cpu_relax ();
      go ()
    end
    else begin
      let x = v.value in
      if Atomic.get v.version <> v1 then go () else x
    end
  in
  go ()

let set v x = atomically (fun tx -> write tx v x)

let stats () = (Atomic.get commits, Atomic.get aborts)
