(** Software transactional memory over integer variables (TL2-style), the
    "transactions" pattern the paper lists as absent from RPB (Sec. 7.1) and
    discusses as the classic alternative for irregular parallelism
    (Sec. 8.2).

    Versioned write-locking with a global version clock: reads validate
    against a snapshot version, commits lock their write set in id order,
    re-validate the read set, and publish atomically.  Conflicting
    transactions abort and retry with randomized backoff.

    Variables hold [int]s; like the rest of RPB, richer state is modelled as
    indices into arrays of tvars. *)

type tvar

type tx

exception Abort
(** Raise inside a transaction body to roll back and NOT retry (user
    abort). *)

val tvar : int -> tvar
(** A fresh transactional variable. *)

val atomically : (tx -> 'a) -> 'a
(** Run the body as a transaction: all {!read}s see a consistent snapshot
    and all {!write}s commit atomically, or the body is re-executed.  Bodies
    must therefore be free of irrevocable side effects. *)

val read : tx -> tvar -> int

val write : tx -> tvar -> int -> unit

val get : tvar -> int
(** Non-transactional atomic read (a degenerate read-only transaction). *)

val set : tvar -> int -> unit
(** Non-transactional write (a degenerate one-write transaction). *)

val stats : unit -> int * int
(** (commits, aborts) since program start, for tests and benches. *)
