let triangulate ?(seed = 42) points =
  let mesh = Mesh.create points in
  let order = Rpb_prim.Rng.permutation (Rpb_prim.Rng.create seed) (Array.length points) in
  Array.iter (fun i -> ignore (Mesh.insert mesh points.(i))) order;
  mesh

let is_delaunay ?(sample = 50_000) pool mesh =
  let tris = Mesh.real_triangles pool mesh in
  let nt = Array.length tris in
  let nv = Mesh.num_vertices mesh in
  let check_pair ti v =
    let a, b, c = Mesh.tri_vertices mesh ti in
    if v = a || v = b || v = c then true
    else begin
      let pa, pb, pc = Mesh.tri_points mesh ti in
      not (Point.in_circle pa pb pc (Mesh.point mesh v))
    end
  in
  if nt = 0 then true
  else if nt * (nv - 3) <= sample then
    (* Exhaustive check over input vertices (ids 3..). *)
    Rpb_pool.Pool.parallel_for_reduce ~start:0 ~finish:nt
      ~body:(fun j ->
        let ti = tris.(j) in
        let ok = ref true in
        for v = 3 to nv - 1 do
          if not (check_pair ti v) then ok := false
        done;
        !ok)
      ~combine:( && ) ~init:true pool
  else
    Rpb_pool.Pool.parallel_for_reduce ~start:0 ~finish:sample
      ~body:(fun s ->
        let ti = tris.(Rpb_prim.Rng.hash64 (2 * s) mod nt) in
        let v = 3 + (Rpb_prim.Rng.hash64 ((2 * s) + 1) mod (nv - 3)) in
        check_pair ti v)
      ~combine:( && ) ~init:true pool
