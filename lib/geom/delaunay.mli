(** Delaunay triangulation by randomized incremental insertion
    (Bowyer–Watson). *)

val triangulate : ?seed:int -> Point.t array -> Mesh.t
(** Insert the points in a deterministic random order.  Duplicate points are
    silently skipped. *)

val is_delaunay : ?sample:int -> Rpb_pool.Pool.t -> Mesh.t -> bool
(** Empty-circumcircle property over real triangles.  Checks all vertices
    against every triangle when the mesh is small, otherwise a deterministic
    sample of [sample] triangle/vertex pairs (default 50_000). *)
