type t = {
  mutable px : float array;
  mutable py : float array;
  nv : int Atomic.t;
  mutable tv : int array; (* 3 vertex ids per slot *)
  mutable tn : int array; (* 3 neighbour ids per slot, -1 = hull *)
  mutable alive : Bytes.t;
  nt : int Atomic.t;
  mutable hint : int; (* a recently-created live triangle, for walks *)
}

type cavity = {
  center : Point.t;
  old_triangles : int list;
  boundary : (int * int * int) list;
}

exception Capacity

let duplicate_eps2 = 1e-24

let point t v = Point.make t.px.(v) t.py.(v)
let num_vertices t = Atomic.get t.nv
let num_triangle_slots t = Atomic.get t.nt
let input_vertex _t i = i + 3

let is_alive t i = Bytes.unsafe_get t.alive i = '\001'

let tri_vertices t i = (t.tv.(3 * i), t.tv.((3 * i) + 1), t.tv.((3 * i) + 2))

let tri_points t i =
  let a, b, c = tri_vertices t i in
  (point t a, point t b, point t c)

let tri_neighbor t i e = t.tn.((3 * i) + e)

let is_real t i =
  is_alive t i
  && begin
    let a, b, c = tri_vertices t i in
    a > 2 && b > 2 && c > 2
  end

let create points =
  let n = Array.length points in
  (* Bounding box -> a super triangle comfortably containing every
     circumcircle that refinement will query. *)
  let minx = ref infinity and maxx = ref neg_infinity in
  let miny = ref infinity and maxy = ref neg_infinity in
  Array.iter
    (fun (p : Point.t) ->
      if p.Point.x < !minx then minx := p.Point.x;
      if p.Point.x > !maxx then maxx := p.Point.x;
      if p.Point.y < !miny then miny := p.Point.y;
      if p.Point.y > !maxy then maxy := p.Point.y)
    points;
  let minx = if !minx = infinity then 0.0 else !minx in
  let maxx = if !maxx = neg_infinity then 1.0 else !maxx in
  let miny = if !miny = infinity then 0.0 else !miny in
  let maxy = if !maxy = neg_infinity then 1.0 else !maxy in
  let cx = (minx +. maxx) /. 2.0 and cy = (miny +. maxy) /. 2.0 in
  let span = Float.max 1.0 (Float.max (maxx -. minx) (maxy -. miny)) in
  let r = 1e4 *. span in
  let cap_v = n + 3 + 16 in
  let cap_t = max 64 ((8 * n) + 64) in
  let px = Array.make cap_v 0.0 and py = Array.make cap_v 0.0 in
  (* Super-triangle vertices 0, 1, 2 (CCW). *)
  px.(0) <- cx -. (2.0 *. r);
  py.(0) <- cy -. r;
  px.(1) <- cx +. (2.0 *. r);
  py.(1) <- cy -. r;
  px.(2) <- cx;
  py.(2) <- cy +. (2.0 *. r);
  Array.iteri
    (fun i (p : Point.t) ->
      px.(i + 3) <- p.Point.x;
      py.(i + 3) <- p.Point.y)
    points;
  let tv = Array.make (3 * cap_t) 0 in
  let tn = Array.make (3 * cap_t) (-1) in
  tv.(0) <- 0;
  tv.(1) <- 1;
  tv.(2) <- 2;
  let alive = Bytes.make cap_t '\000' in
  Bytes.set alive 0 '\001';
  {
    px;
    py;
    nv = Atomic.make (n + 3);
    tv;
    tn;
    alive;
    nt = Atomic.make 1;
    hint = 0;
  }

let ensure_capacity t ~vertices ~triangles =
  let need_v = Atomic.get t.nv + vertices in
  if need_v > Array.length t.px then begin
    let cap = max need_v (2 * Array.length t.px) in
    let px = Array.make cap 0.0 and py = Array.make cap 0.0 in
    Array.blit t.px 0 px 0 (Atomic.get t.nv);
    Array.blit t.py 0 py 0 (Atomic.get t.nv);
    t.px <- px;
    t.py <- py
  end;
  let need_t = Atomic.get t.nt + triangles in
  if 3 * need_t > Array.length t.tv then begin
    let cap = max need_t (2 * (Array.length t.tv / 3)) in
    let tv = Array.make (3 * cap) 0 and tn = Array.make (3 * cap) (-1) in
    Array.blit t.tv 0 tv 0 (3 * Atomic.get t.nt);
    Array.blit t.tn 0 tn 0 (3 * Atomic.get t.nt);
    t.tv <- tv;
    t.tn <- tn;
    let alive = Bytes.make cap '\000' in
    Bytes.blit t.alive 0 alive 0 (Atomic.get t.nt);
    t.alive <- alive
  end

let add_point t (p : Point.t) =
  let v = Atomic.fetch_and_add t.nv 1 in
  if v >= Array.length t.px then begin
    (* Roll back so a retry after ensure_capacity stays consistent. *)
    ignore (Atomic.fetch_and_add t.nv (-1));
    raise Capacity
  end;
  t.px.(v) <- p.Point.x;
  t.py.(v) <- p.Point.y;
  v

let alloc_triangles t k =
  let base = Atomic.fetch_and_add t.nt k in
  if 3 * (base + k) > Array.length t.tv then begin
    ignore (Atomic.fetch_and_add t.nt (-k));
    raise Capacity
  end;
  base

let find_live t =
  if is_alive t t.hint then t.hint
  else begin
    let n = Atomic.get t.nt in
    let rec go i =
      if i >= n then raise Not_found else if is_alive t i then i else go (i + 1)
    in
    go 0
  end

let contains t i (p : Point.t) =
  let a, b, c = tri_points t i in
  Point.point_in_triangle a b c p

(* Straight walk toward [p]; falls back to a linear scan if the walk cycles
   (possible with near-degenerate geometry). *)
let locate t p =
  let limit = 4 * (Atomic.get t.nt + 16) in
  let rec walk i steps =
    if steps > limit then scan ()
    else begin
      let a, b, c = tri_points t i in
      if Point.orient2d a b p < 0.0 then step i 0 steps
      else if Point.orient2d b c p < 0.0 then step i 1 steps
      else if Point.orient2d c a p < 0.0 then step i 2 steps
      else i
    end
  and step i e steps =
    let nb = tri_neighbor t i e in
    if nb = -1 then raise Not_found else walk nb (steps + 1)
  and scan () =
    let n = Atomic.get t.nt in
    let rec go i =
      if i >= n then raise Not_found
      else if is_alive t i && contains t i p then i
      else go (i + 1)
    in
    go 0
  in
  walk (find_live t) 0

let circumcircle_contains t i (p : Point.t) =
  let a, b, c = tri_points t i in
  Point.in_circle a b c p

let cavity_of t p =
  match locate t p with
  | exception Not_found -> None
  | start ->
    (* Duplicate-point guard. *)
    let sa, sb, sc = tri_vertices t start in
    let dup =
      List.exists
        (fun v -> Point.dist2 (point t v) p < duplicate_eps2)
        [ sa; sb; sc ]
    in
    if dup then None
    else begin
      (* BFS over triangles whose circumcircle contains p. *)
      let in_cavity = Hashtbl.create 16 in
      let q = Queue.create () in
      Hashtbl.replace in_cavity start ();
      Queue.push start q;
      let old_triangles = ref [] in
      while not (Queue.is_empty q) do
        let i = Queue.pop q in
        old_triangles := i :: !old_triangles;
        for e = 0 to 2 do
          let nb = tri_neighbor t i e in
          if nb <> -1 && (not (Hashtbl.mem in_cavity nb))
             && circumcircle_contains t nb p
          then begin
            Hashtbl.replace in_cavity nb ();
            Queue.push nb q
          end
        done
      done;
      let boundary = ref [] in
      List.iter
        (fun i ->
          let vs = [| t.tv.(3 * i); t.tv.((3 * i) + 1); t.tv.((3 * i) + 2) |] in
          for e = 0 to 2 do
            let nb = tri_neighbor t i e in
            if nb = -1 || not (Hashtbl.mem in_cavity nb) then
              boundary := (vs.(e), vs.((e + 1) mod 3), nb) :: !boundary
          done)
        !old_triangles;
      Some { center = p; old_triangles = !old_triangles; boundary = !boundary }
    end

let apply_insert t ~vertex cavity =
  let edges = Array.of_list cavity.boundary in
  let k = Array.length edges in
  assert (k >= 3);
  let base = alloc_triangles t k in
  (* Maps linking the fan: new triangle for boundary edge (a, b) is adjacent
     across (b, vertex) to the edge starting at b, and across (vertex, a) to
     the edge ending at a. *)
  let start_of = Hashtbl.create k and end_of = Hashtbl.create k in
  Array.iteri
    (fun j (a, b, _) ->
      Hashtbl.replace start_of a (base + j);
      Hashtbl.replace end_of b (base + j))
    edges;
  Array.iteri
    (fun j (a, b, outside) ->
      let i = base + j in
      t.tv.(3 * i) <- a;
      t.tv.((3 * i) + 1) <- b;
      t.tv.((3 * i) + 2) <- vertex;
      t.tn.(3 * i) <- outside;
      t.tn.((3 * i) + 1) <- Hashtbl.find start_of b;
      t.tn.((3 * i) + 2) <- Hashtbl.find end_of a;
      (* Stitch the outside triangle's back-pointer. *)
      if outside <> -1 then begin
        for e = 0 to 2 do
          if t.tv.((3 * outside) + e) = b
             && t.tv.((3 * outside) + ((e + 1) mod 3)) = a
          then t.tn.((3 * outside) + e) <- i
        done
      end;
      Bytes.set t.alive i '\001')
    edges;
  List.iter (fun i -> Bytes.set t.alive i '\000') cavity.old_triangles;
  t.hint <- base;
  base

let insert t p =
  ensure_capacity t ~vertices:1 ~triangles:16;
  match cavity_of t p with
  | None -> None
  | Some cavity ->
    let need = List.length cavity.boundary in
    ensure_capacity t ~vertices:1 ~triangles:need;
    let v = add_point t p in
    ignore (apply_insert t ~vertex:v cavity);
    Some v

let live_triangles pool t =
  Rpb_parseq.Pack.pack_index pool (fun i -> is_alive t i) (Atomic.get t.nt)

let real_triangles pool t =
  Rpb_parseq.Pack.pack_index pool (fun i -> is_real t i) (Atomic.get t.nt)

let num_real_triangles pool t =
  Rpb_pool.Pool.parallel_for_reduce ~start:0 ~finish:(Atomic.get t.nt)
    ~body:(fun i -> if is_real t i then 1 else 0)
    ~combine:( + ) ~init:0 pool

let validate t =
  let nt = Atomic.get t.nt in
  let nv = Atomic.get t.nv in
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec go i =
    if i >= nt then Ok ()
    else if not (is_alive t i) then go (i + 1)
    else begin
      let a, b, c = tri_vertices t i in
      if a < 0 || a >= nv || b < 0 || b >= nv || c < 0 || c >= nv then
        fail "triangle %d: vertex out of range" i
      else if a = b || b = c || a = c then fail "triangle %d: repeated vertex" i
      else begin
        let pa, pb, pc = tri_points t i in
        if Point.orient2d pa pb pc <= 0.0 then fail "triangle %d: not CCW" i
        else begin
          let rec edges e =
            if e > 2 then go (i + 1)
            else begin
              let nb = tri_neighbor t i e in
              if nb = -1 then edges (e + 1)
              else if nb < 0 || nb >= nt then fail "triangle %d: bad neighbour" i
              else if not (is_alive t nb) then
                fail "triangle %d: dead neighbour %d" i nb
              else begin
                (* The neighbour must hold the reversed edge pointing back. *)
                let u = t.tv.((3 * i) + e)
                and v = t.tv.((3 * i) + ((e + 1) mod 3)) in
                let found = ref false in
                for e' = 0 to 2 do
                  if t.tv.((3 * nb) + e') = v
                     && t.tv.((3 * nb) + ((e' + 1) mod 3)) = u
                     && t.tn.((3 * nb) + e') = i
                  then found := true
                done;
                if !found then edges (e + 1)
                else fail "triangle %d: asymmetric adjacency with %d" i nb
              end
            end
          in
          edges 0
        end
      end
    end
  in
  go 0

let min_live_angle pool t =
  Rpb_pool.Pool.parallel_for_reduce ~start:0 ~finish:(Atomic.get t.nt)
    ~body:(fun i ->
      if is_real t i then begin
        let a, b, c = tri_points t i in
        Point.min_angle a b c
      end
      else 180.0)
    ~combine:Float.min ~init:180.0 pool
