(** Mutable triangle mesh with adjacency — the substrate of Delaunay
    triangulation and refinement.

    Triangles are slots in flat arrays; slot [i] stores three CCW vertex ids
    and, across edge [e] (joining vertex [e] and vertex [(e+1) mod 3]), the
    neighbouring triangle id or [-1] on the hull.  Dead slots (killed by
    cavity re-triangulation) are never reused.

    Vertices [0..2] form a "super triangle" that encloses every input point;
    triangles touching it are internal scaffolding and are excluded by
    {!is_real}.

    The Bowyer–Watson step is split so the refinement benchmark can
    parallelize it: {!cavity_of} is a pure read (safe from many domains
    between mutation phases), while {!add_point}/{!apply_insert} mutate only
    the cavity, its boundary ring, and freshly allocated slots — disjoint
    across inserts whose reserved sets are disjoint. *)

type t

type cavity = {
  center : Point.t;                       (** the point being inserted *)
  old_triangles : int list;               (** triangles to kill *)
  boundary : (int * int * int) list;      (** directed edges (a, b, outside) *)
}

exception Capacity
(** Raised by allocation when the arrays are full; grow with
    {!ensure_capacity} (single-threaded) and retry. *)

val create : Point.t array -> t
(** A mesh containing only the super triangle, with the input points stored
    as vertices [3 ..] (not yet inserted into the triangulation). *)

val input_vertex : t -> int -> int
(** [input_vertex t i] is the vertex id of input point [i] (= [i + 3]). *)

val point : t -> int -> Point.t
(** Coordinates of a vertex id. *)

val num_vertices : t -> int

val num_triangle_slots : t -> int

val is_alive : t -> int -> bool

val is_real : t -> int -> bool
(** Alive and not touching the super triangle. *)

val tri_vertices : t -> int -> int * int * int

val tri_points : t -> int -> Point.t * Point.t * Point.t

val tri_neighbor : t -> int -> int -> int
(** [tri_neighbor t i e] for [e] in [0..2]; [-1] on the hull. *)

val live_triangles : Rpb_pool.Pool.t -> t -> int array

val real_triangles : Rpb_pool.Pool.t -> t -> int array

val num_real_triangles : Rpb_pool.Pool.t -> t -> int

val locate : t -> Point.t -> int
(** A live triangle containing the point (walking search with a linear-scan
    fallback).  Raises [Not_found] if the point is outside the super
    triangle. *)

val cavity_of : t -> Point.t -> cavity option
(** The Bowyer–Watson cavity of a prospective insertion: all triangles whose
    circumcircle contains the point, plus the directed boundary ring.  [None]
    if the point duplicates an existing vertex (within tolerance) or cannot
    be located.  Read-only. *)

val add_point : t -> Point.t -> int
(** Store a new vertex (no triangulation change).  Thread-safe slot
    allocation; raises {!Capacity} when full. *)

val apply_insert : t -> vertex:int -> cavity -> int
(** Re-triangulate the cavity around [vertex]: kill the old triangles, fan
    new ones over the boundary, and stitch adjacency.  Returns one of the new
    triangle ids.  Thread-safe allocation; the caller guarantees exclusive
    ownership of the cavity and its boundary ring.  Raises {!Capacity}. *)

val insert : t -> Point.t -> int option
(** Sequential convenience: grow-as-needed add_point + cavity + apply.
    [None] for duplicates. *)

val ensure_capacity : t -> vertices:int -> triangles:int -> unit
(** Grow the arrays to accommodate at least this many more vertices and
    triangle slots.  NOT thread-safe: call between parallel phases. *)

val validate : t -> (unit, string) result
(** Structural invariants: live triangles CCW with distinct vertices and
    symmetric adjacency. *)

val min_live_angle : Rpb_pool.Pool.t -> t -> float
(** Smallest interior angle over real triangles, in degrees (180 when there
    are none). *)
