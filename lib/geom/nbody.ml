open Rpb_pool

type bodies = {
  px : float array;
  py : float array;
  vx : float array;
  vy : float array;
  mass : float array;
}

let softening2 = 1e-6
let gravity = 1.0

let random_bodies ~n ~seed =
  let pts = Pointgen.kuzmin ~n ~seed in
  {
    px = Array.map (fun (p : Point.t) -> p.Point.x) pts;
    py = Array.map (fun (p : Point.t) -> p.Point.y) pts;
    vx = Array.make n 0.0;
    vy = Array.make n 0.0;
    mass =
      Array.init n (fun i ->
          0.5 +. (float_of_int (Rpb_prim.Rng.hash64 ((seed * 97) + i) mod 1000) /. 1000.0));
  }

(* Mass-aggregated quadtree.  Nodes carry total mass, centre of mass, and
   their cell's side length for the opening-angle test. *)
type node =
  | Leaf of int array
  | Cell of {
      cx : float;
      cy : float; (* geometric centre (split point) *)
      side : float;
      m : float; (* aggregated mass *)
      mx : float;
      my : float; (* centre of mass *)
      children : node array;
    }

let node_mass = function
  | Leaf _ -> assert false
  | Cell { m; _ } -> m

let build_tree pool b =
  let n = Array.length b.px in
  let minx = Array.fold_left Float.min infinity b.px in
  let maxx = Array.fold_left Float.max neg_infinity b.px in
  let miny = Array.fold_left Float.min infinity b.py in
  let maxy = Array.fold_left Float.max neg_infinity b.py in
  let leaf_size = 8 and max_depth = 48 in
  let quadrant cx cy i =
    (if b.py.(i) < cy then 0 else 2) + if b.px.(i) < cx then 0 else 1
  in
  let rec go depth idx x0 y0 x1 y1 =
    if Array.length idx <= leaf_size || depth >= max_depth then Leaf idx
    else begin
      let cx = (x0 +. x1) /. 2.0 and cy = (y0 +. y1) /. 2.0 in
      let part q = Rpb_parseq.Pack.pack pool (fun i -> quadrant cx cy i = q) idx in
      let subs = [| part 0; part 1; part 2; part 3 |] in
      let child q =
        let x0', x1' = if q land 1 = 0 then (x0, cx) else (cx, x1) in
        let y0', y1' = if q land 2 = 0 then (y0, cy) else (cy, y1) in
        go (depth + 1) subs.(q) x0' y0' x1' y1'
      in
      let (c0, c1), (c2, c3) =
        Pool.join pool
          (fun () -> Pool.join pool (fun () -> child 0) (fun () -> child 1))
          (fun () -> Pool.join pool (fun () -> child 2) (fun () -> child 3))
      in
      let children = [| c0; c1; c2; c3 |] in
      (* Aggregate mass and centroid bottom-up. *)
      let m = ref 0.0 and mx = ref 0.0 and my = ref 0.0 in
      Array.iter
        (function
          | Leaf idx ->
            Array.iter
              (fun i ->
                m := !m +. b.mass.(i);
                mx := !mx +. (b.mass.(i) *. b.px.(i));
                my := !my +. (b.mass.(i) *. b.py.(i)))
              idx
          | Cell { m = cm; mx = cmx; my = cmy; _ } ->
            m := !m +. cm;
            mx := !mx +. (cm *. cmx);
            my := !my +. (cm *. cmy))
        children;
      let m = !m in
      let inv = if m = 0.0 then 0.0 else 1.0 /. m in
      Cell
        {
          cx;
          cy;
          side = Float.max (x1 -. x0) (y1 -. y0);
          m;
          mx = !mx *. inv;
          my = !my *. inv;
          children;
        }
    end
  in
  let all = Rpb_core.Par_array.init pool n Fun.id in
  let minx = if n = 0 then 0.0 else minx
  and maxx = if n = 0 then 1.0 else maxx
  and miny = if n = 0 then 0.0 else miny
  and maxy = if n = 0 then 1.0 else maxy in
  go 0 all minx miny maxx maxy

let accumulate_pair b i ~xj ~yj ~mj ax ay =
  let dx = xj -. b.px.(i) and dy = yj -. b.py.(i) in
  let d2 = (dx *. dx) +. (dy *. dy) +. softening2 in
  let inv = gravity *. mj /. (d2 *. sqrt d2) in
  ax := !ax +. (dx *. inv);
  ay := !ay +. (dy *. inv)

let forces ?(theta = 0.5) pool b =
  let n = Array.length b.px in
  let tree = build_tree pool b in
  let ax = Array.make n 0.0 and ay = Array.make n 0.0 in
  let theta2 = theta *. theta in
  Pool.parallel_for ~start:0 ~finish:n
    ~body:(fun i ->
      let axr = ref 0.0 and ayr = ref 0.0 in
      let rec visit = function
        | Leaf idx ->
          Array.iter
            (fun j ->
              if j <> i then
                accumulate_pair b i ~xj:b.px.(j) ~yj:b.py.(j) ~mj:b.mass.(j) axr ayr)
            idx
        | Cell { side; m; mx; my; children; _ } as cell ->
          let dx = mx -. b.px.(i) and dy = my -. b.py.(i) in
          let d2 = (dx *. dx) +. (dy *. dy) in
          if m > 0.0 && side *. side < theta2 *. d2 then
            accumulate_pair b i ~xj:mx ~yj:my ~mj:(node_mass cell) axr ayr
          else Array.iter visit children
      in
      visit tree;
      ax.(i) <- !axr;
      ay.(i) <- !ayr)
    pool;
  (ax, ay)

let forces_direct pool b =
  let n = Array.length b.px in
  let ax = Array.make n 0.0 and ay = Array.make n 0.0 in
  Pool.parallel_for ~start:0 ~finish:n
    ~body:(fun i ->
      let axr = ref 0.0 and ayr = ref 0.0 in
      for j = 0 to n - 1 do
        if j <> i then
          accumulate_pair b i ~xj:b.px.(j) ~yj:b.py.(j) ~mj:b.mass.(j) axr ayr
      done;
      ax.(i) <- !axr;
      ay.(i) <- !ayr)
    pool;
  (ax, ay)

let step ?theta ?(dt = 0.01) pool b =
  let ax, ay = forces ?theta pool b in
  Pool.parallel_for ~start:0 ~finish:(Array.length b.px)
    ~body:(fun i ->
      b.vx.(i) <- b.vx.(i) +. (dt *. ax.(i));
      b.vy.(i) <- b.vy.(i) +. (dt *. ay.(i));
      b.px.(i) <- b.px.(i) +. (dt *. b.vx.(i));
      b.py.(i) <- b.py.(i) +. (dt *. b.vy.(i)))
    pool

let simulate ?theta ?dt ~steps pool b =
  for _ = 1 to steps do
    step ?theta ?dt pool b
  done

let total_momentum b =
  let px = ref 0.0 and py = ref 0.0 in
  Array.iteri
    (fun i m ->
      px := !px +. (m *. b.vx.(i));
      py := !py +. (m *. b.vy.(i)))
    b.mass;
  (!px, !py)

let rms_error (ax1, ay1) (ax2, ay2) =
  let n = Array.length ax1 in
  if n = 0 then 0.0
  else begin
    let num = ref 0.0 and den = ref 0.0 in
    for i = 0 to n - 1 do
      let dx = ax1.(i) -. ax2.(i) and dy = ay1.(i) -. ay2.(i) in
      num := !num +. (dx *. dx) +. (dy *. dy);
      den := !den +. (ax2.(i) *. ax2.(i)) +. (ay2.(i) *. ay2.(i))
    done;
    if !den = 0.0 then 0.0 else sqrt (!num /. !den)
  end
