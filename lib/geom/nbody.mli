(** Barnes–Hut n-body — PBBS's nbody benchmark.

    A mass-aggregated quadtree (built by fork-join over quadrants) lets each
    body approximate the far field by node centroids: tree construction is
    D&C, force evaluation is read-only and embarrassingly parallel, and
    integration is a Stride pass — an all-fearless benchmark with heavy
    numeric work.

    Plummer-softened gravity: F = G·m1·m2·d / (|d|^2 + eps^2)^(3/2). *)

open Rpb_pool

type bodies = {
  px : float array;
  py : float array;
  vx : float array;
  vy : float array;
  mass : float array;
}

val random_bodies : n:int -> seed:int -> bodies
(** Kuzmin-distributed positions, unit-ish masses, zero velocities. *)

val forces :
  ?theta:float -> Pool.t -> bodies -> float array * float array
(** Per-body accelerations (ax, ay) under the Barnes–Hut approximation with
    opening angle [theta] (default 0.5; [theta = 0] degenerates to exact
    pairwise summation through the tree). *)

val forces_direct : Pool.t -> bodies -> float array * float array
(** Exact O(n^2) pairwise accelerations — the verification oracle. *)

val step : ?theta:float -> ?dt:float -> Pool.t -> bodies -> unit
(** One leapfrog-ish integration step in place (default [dt] 0.01). *)

val simulate : ?theta:float -> ?dt:float -> steps:int -> Pool.t -> bodies -> unit

val total_momentum : bodies -> float * float

val rms_error : float array * float array -> float array * float array -> float
(** Relative RMS difference between two acceleration fields. *)
