type t = { x : float; y : float }

let make x y = { x; y }

let dist2 a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  (dx *. dx) +. (dy *. dy)

let dist a b = sqrt (dist2 a b)

let orient2d a b c =
  ((b.x -. a.x) *. (c.y -. a.y)) -. ((b.y -. a.y) *. (c.x -. a.x))

let ccw a b c = orient2d a b c > 0.0

let in_circle a b c d =
  let adx = a.x -. d.x and ady = a.y -. d.y in
  let bdx = b.x -. d.x and bdy = b.y -. d.y in
  let cdx = c.x -. d.x and cdy = c.y -. d.y in
  let ad2 = (adx *. adx) +. (ady *. ady) in
  let bd2 = (bdx *. bdx) +. (bdy *. bdy) in
  let cd2 = (cdx *. cdx) +. (cdy *. cdy) in
  let det =
    (adx *. ((bdy *. cd2) -. (bd2 *. cdy)))
    -. (ady *. ((bdx *. cd2) -. (bd2 *. cdx)))
    +. (ad2 *. ((bdx *. cdy) -. (bdy *. cdx)))
  in
  det > 0.0

let circumcenter a b c =
  let d = 2.0 *. orient2d a b c in
  if Float.abs d < 1e-12 then None
  else begin
    let a2 = (a.x *. a.x) +. (a.y *. a.y) in
    let b2 = (b.x *. b.x) +. (b.y *. b.y) in
    let c2 = (c.x *. c.x) +. (c.y *. c.y) in
    let ux = ((a2 *. (b.y -. c.y)) +. (b2 *. (c.y -. a.y)) +. (c2 *. (a.y -. b.y))) /. d in
    let uy = ((a2 *. (c.x -. b.x)) +. (b2 *. (a.x -. c.x)) +. (c2 *. (b.x -. a.x))) /. d in
    Some { x = ux; y = uy }
  end

let circumradius2 a b c =
  match circumcenter a b c with
  | None -> infinity
  | Some o -> dist2 o a

let triangle_area a b c = Float.abs (orient2d a b c) /. 2.0

let min_angle a b c =
  let la2 = dist2 b c and lb2 = dist2 a c and lc2 = dist2 a b in
  if la2 = 0.0 || lb2 = 0.0 || lc2 = 0.0 then 0.0
  else begin
    let angle opp2 s1 s2 =
      (* law of cosines; clamp for safety *)
      let v = (s1 +. s2 -. opp2) /. (2.0 *. sqrt (s1 *. s2)) in
      acos (Float.min 1.0 (Float.max (-1.0) v))
    in
    let aa = angle la2 lb2 lc2 in
    let ab = angle lb2 la2 lc2 in
    let ac = Float.pi -. aa -. ab in
    let m = Float.min aa (Float.min ab ac) in
    m *. 180.0 /. Float.pi
  end

let point_in_triangle a b c p =
  orient2d a b p >= 0.0 && orient2d b c p >= 0.0 && orient2d c a p >= 0.0
