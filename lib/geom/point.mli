(** 2-D points and the geometric predicates underneath Delaunay refinement.

    Predicates use plain double arithmetic (not exact/adaptive arithmetic a
    la Shewchuk); inputs from our generators are well-conditioned and the
    mesh code treats near-zero determinants as degenerate and perturbs.  This
    substitution is recorded in DESIGN.md. *)

type t = { x : float; y : float }

val make : float -> float -> t

val dist2 : t -> t -> float
(** Squared Euclidean distance. *)

val dist : t -> t -> float

val orient2d : t -> t -> t -> float
(** Positive if [a -> b -> c] turns counter-clockwise, negative if
    clockwise, near zero if collinear. *)

val ccw : t -> t -> t -> bool

val in_circle : t -> t -> t -> t -> bool
(** [in_circle a b c d]: is [d] strictly inside the circumcircle of the CCW
    triangle [a b c]? *)

val circumcenter : t -> t -> t -> t option
(** [None] when the triangle is (near-)degenerate. *)

val circumradius2 : t -> t -> t -> float
(** Squared circumradius; [infinity] for degenerate triangles. *)

val triangle_area : t -> t -> t -> float
(** Unsigned area. *)

val min_angle : t -> t -> t -> float
(** Smallest interior angle, in degrees; 0 for degenerate triangles. *)

val point_in_triangle : t -> t -> t -> t -> bool
(** Inside or on the boundary of the CCW triangle. *)
