let unit_float seed i =
  float_of_int (Rpb_prim.Rng.hash64 ((seed * 0x1009) + i) mod 1_048_576)
  /. 1_048_576.0

let uniform_square ~n ~seed =
  Array.init n (fun i ->
      Point.make (unit_float seed (2 * i)) (unit_float seed ((2 * i) + 1)))

let kuzmin ~n ~seed =
  Array.init n (fun i ->
      let u = Float.max 1e-9 (Float.min (1.0 -. 1e-9) (unit_float seed (2 * i))) in
      (* Inverse of the Kuzmin cumulative mass m(r) = 1 - 1/sqrt(1 + r^2). *)
      let r = sqrt ((1.0 /. ((1.0 -. u) ** 2.0)) -. 1.0) in
      (* Clamp the unbounded tail so the domain stays compact. *)
      let r = Float.min r 16.0 in
      let theta = 2.0 *. Float.pi *. unit_float seed ((2 * i) + 1) in
      Point.make (r *. cos theta) (r *. sin theta))

let grid_jittered ~side ~seed =
  Array.init (side * side) (fun i ->
      let r = i / side and c = i mod side in
      let jx = (unit_float seed (2 * i) -. 0.5) *. 0.4 in
      let jy = (unit_float seed ((2 * i) + 1) -. 0.5) *. 0.4 in
      Point.make (float_of_int c +. jx) (float_of_int r +. jy))
