(** Deterministic point-set generators.  The paper's [dr] input is PBBS's
    "kuzmin" distribution: radially symmetric with a heavy central
    concentration, which produces the skinny triangles refinement exists to
    fix. *)

val uniform_square : n:int -> seed:int -> Point.t array
(** Uniform in the unit square. *)

val kuzmin : n:int -> seed:int -> Point.t array
(** Kuzmin-disk distribution (density falling off as [1/(1+r^2)^(3/2)]),
    normalized to fit within a few units of the origin. *)

val grid_jittered : side:int -> seed:int -> Point.t array
(** [side x side] grid with small random jitter (well-spread baseline). *)
