open Rpb_pool

type node =
  | Leaf of int array (* indices into the point array *)
  | Node of {
      cx : float;
      cy : float;
      (* children: quadrant order SW, SE, NW, NE *)
      children : node array;
    }

type t = {
  points : Point.t array;
  root : node;
  minx : float;
  miny : float;
  maxx : float;
  maxy : float;
}

let quadrant cx cy (p : Point.t) =
  (if p.Point.y < cy then 0 else 2) + if p.Point.x < cx then 0 else 1

let build ?(leaf_size = 16) pool points =
  if leaf_size < 1 then invalid_arg "Quadtree.build: leaf_size >= 1";
  let n = Array.length points in
  let minx = ref infinity and maxx = ref neg_infinity in
  let miny = ref infinity and maxy = ref neg_infinity in
  Array.iter
    (fun (p : Point.t) ->
      minx := Float.min !minx p.Point.x;
      maxx := Float.max !maxx p.Point.x;
      miny := Float.min !miny p.Point.y;
      maxy := Float.max !maxy p.Point.y)
    points;
  let minx = if n = 0 then 0.0 else !minx
  and maxx = if n = 0 then 1.0 else !maxx
  and miny = if n = 0 then 0.0 else !miny
  and maxy = if n = 0 then 1.0 else !maxy in
  (* All-identical point clouds cannot be split; depth is capped instead. *)
  let max_depth = 48 in
  let rec go depth idx x0 y0 x1 y1 =
    if Array.length idx <= leaf_size || depth >= max_depth then Leaf idx
    else begin
      let cx = (x0 +. x1) /. 2.0 and cy = (y0 +. y1) /. 2.0 in
      let part q =
        Rpb_parseq.Pack.pack pool (fun i -> quadrant cx cy points.(i) = q) idx
      in
      let sw = part 0 and se = part 1 and nw = part 2 and ne = part 3 in
      let build_child q sub =
        let x0', x1' = if q land 1 = 0 then (x0, cx) else (cx, x1) in
        let y0', y1' = if q land 2 = 0 then (y0, cy) else (cy, y1) in
        go (depth + 1) sub x0' y0' x1' y1'
      in
      (* Fork the two heavier quadrant pairs. *)
      let (c0, c1), (c2, c3) =
        Pool.join pool
          (fun () ->
            Pool.join pool
              (fun () -> build_child 0 sw)
              (fun () -> build_child 1 se))
          (fun () ->
            Pool.join pool
              (fun () -> build_child 2 nw)
              (fun () -> build_child 3 ne))
      in
      Node { cx; cy; children = [| c0; c1; c2; c3 |] }
    end
  in
  let all = Rpb_core.Par_array.init pool n Fun.id in
  { points; root = go 0 all minx miny maxx maxy; minx; miny; maxx; maxy }

let size t = Array.length t.points

let depth t =
  let rec go = function
    | Leaf _ -> 1
    | Node { children; _ } -> 1 + Array.fold_left (fun acc c -> max acc (go c)) 0 children
  in
  go t.root

(* Best-first search with a small sorted candidate list of size k. *)
let k_nearest t ~k (q : Point.t) =
  if k < 1 then [||]
  else begin
    (* (dist2, index) candidates, worst first at the end. *)
    let best = ref [] in
    let nbest = ref 0 in
    let worst () =
      match !best with [] -> infinity | _ -> fst (List.nth !best (!nbest - 1))
    in
    let add d2 i =
      if !nbest < k || d2 < worst () || (d2 = worst () && false) then begin
        let inserted =
          List.merge compare [ (d2, i) ] !best
        in
        let trimmed = List.filteri (fun j _ -> j < k) inserted in
        best := trimmed;
        nbest := List.length trimmed
      end
    in
    (* Squared distance from q to a rectangle. *)
    let rect_dist2 x0 y0 x1 y1 =
      let dx =
        if q.Point.x < x0 then x0 -. q.Point.x
        else if q.Point.x > x1 then q.Point.x -. x1
        else 0.0
      in
      let dy =
        if q.Point.y < y0 then y0 -. q.Point.y
        else if q.Point.y > y1 then q.Point.y -. y1
        else 0.0
      in
      (dx *. dx) +. (dy *. dy)
    in
    let rec visit node x0 y0 x1 y1 =
      if not (!nbest >= k && rect_dist2 x0 y0 x1 y1 > worst ()) then
        match node with
        | Leaf idx ->
          Array.iter (fun i -> add (Point.dist2 q t.points.(i)) i) idx
        | Node { cx; cy; children } ->
          (* Visit the quadrant containing q first for early pruning. *)
          let mine = quadrant cx cy q in
          let order = [| mine; mine lxor 1; mine lxor 2; mine lxor 3 |] in
          Array.iter
            (fun qd ->
              let x0', x1' = if qd land 1 = 0 then (x0, cx) else (cx, x1) in
              let y0', y1' = if qd land 2 = 0 then (y0, cy) else (cy, y1) in
              visit children.(qd) x0' y0' x1' y1')
            order
    in
    visit t.root t.minx t.miny t.maxx t.maxy;
    Array.of_list (List.map snd !best)
  end

let nearest t q =
  match k_nearest t ~k:1 q with [||] -> None | a -> Some a.(0)

let nearest_neighbors pool t queries =
  Rpb_core.Par_array.init pool (Array.length queries) (fun i ->
      match nearest t queries.(i) with
      | Some j -> j
      | None -> -1)

let nearest_naive points q =
  let best = ref None in
  Array.iteri
    (fun i p ->
      let d = Point.dist2 q p in
      match !best with
      | None -> best := Some (d, i)
      | Some (bd, _) when d < bd -> best := Some (d, i)
      | Some _ -> ())
    points;
  Option.map snd !best
