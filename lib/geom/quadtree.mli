(** Point quadtree — the spatial substrate of PBBS's nearest-neighbour
    benchmark.  Construction is divide-and-conquer (fork-join over the four
    quadrants); queries are read-only and embarrassingly parallel — both
    fearless patterns. *)

open Rpb_pool

type t

val build : ?leaf_size:int -> Pool.t -> Point.t array -> t
(** Build over a point set (duplicates allowed).  [leaf_size] (default 16)
    bounds points per leaf. *)

val size : t -> int
(** Number of points stored. *)

val depth : t -> int

val nearest : t -> Point.t -> int option
(** Index of a closest stored point ([None] for an empty tree). *)

val k_nearest : t -> k:int -> Point.t -> int array
(** Indices of the [k] closest points, nearest first (fewer if the tree is
    smaller than [k]).  Ties broken by index. *)

val nearest_neighbors : Pool.t -> t -> Point.t array -> int array
(** The PBBS benchmark: for every query point, the index of its nearest
    stored point, computed in parallel. *)

val nearest_naive : Point.t array -> Point.t -> int option
(** Linear-scan oracle. *)
