open Rpb_pool

(* Signed distance proxy of point p from line a->b (positive = left). *)
let side (a : Point.t) (b : Point.t) (p : Point.t) = Point.orient2d a b p

let farthest pool pts (idx : int array) a b =
  Pool.parallel_for_reduce ~start:0 ~finish:(Array.length idx)
    ~body:(fun j ->
      let i = idx.(j) in
      (side a b pts.(i), i))
    ~combine:(fun (d1, i1) (d2, i2) ->
      if d1 > d2 || (d1 = d2 && i1 <= i2) then (d1, i1) else (d2, i2))
    ~init:(neg_infinity, -1) pool

(* Hull arc strictly left of a->b, returned as the indices between a and b
   (exclusive), in CCW order. *)
let rec arc pool pts idx ia ib =
  if Array.length idx = 0 then []
  else begin
    let a = pts.(ia) and b = pts.(ib) in
    let _, ic = farthest pool pts idx a b in
    if ic = -1 then []
    else begin
      let c = pts.(ic) in
      (* Only survivors strictly outside the two new edges can be hull
         points. *)
      let left = Rpb_parseq.Pack.pack pool (fun i -> side a c pts.(i) > 0.0) idx in
      let right = Rpb_parseq.Pack.pack pool (fun i -> side c b pts.(i) > 0.0) idx in
      let l, r =
        Pool.join pool
          (fun () -> arc pool pts left ia ic)
          (fun () -> arc pool pts right ic ib)
      in
      l @ (ic :: r)
    end
  end

let convex_hull pool pts =
  let n = Array.length pts in
  if n = 0 then invalid_arg "Quickhull.convex_hull: empty";
  if n = 1 then [| 0 |]
  else begin
    (* Extremes in x (ties by y) split the hull into upper and lower arcs. *)
    let key i =
      let p = pts.(i) in
      (p.Point.x, p.Point.y, i)
    in
    let imin =
      Pool.parallel_for_reduce ~start:1 ~finish:n ~body:Fun.id
        ~combine:(fun i j -> if key i <= key j then i else j)
        ~init:0 pool
    in
    let imax =
      Pool.parallel_for_reduce ~start:1 ~finish:n ~body:Fun.id
        ~combine:(fun i j -> if key i >= key j then i else j)
        ~init:0 pool
    in
    if imin = imax then [| imin |]
    else begin
      let all = Rpb_core.Par_array.init pool n Fun.id in
      let lo = pts.(imin) and hi = pts.(imax) in
      let below = Rpb_parseq.Pack.pack pool (fun i -> side lo hi pts.(i) < 0.0) all in
      let above = Rpb_parseq.Pack.pack pool (fun i -> side lo hi pts.(i) > 0.0) all in
      let lower, upper =
        Pool.join pool
          (fun () -> arc pool pts below imax imin)
          (fun () -> arc pool pts above imin imax)
      in
      (* [arc a b] lists its chain in a->b direction; the CCW polygon wants
         the lower hull left-to-right and the upper hull right-to-left, so
         both chains are reversed when spliced. *)
      Array.of_list
        ((imin :: List.rev lower) @ (imax :: List.rev upper))
    end
  end

let convex_hull_seq pts =
  let n = Array.length pts in
  if n = 0 then invalid_arg "Quickhull.convex_hull_seq: empty";
  let order = Array.init n Fun.id in
  Array.sort
    (fun i j ->
      compare (pts.(i).Point.x, pts.(i).Point.y, i) (pts.(j).Point.x, pts.(j).Point.y, j))
    order;
  let build step =
    let stack = ref [] in
    Array.iter
      (fun i ->
        let rec pop () =
          match !stack with
          | b :: a :: _ when side pts.(a) pts.(b) pts.(i) <= 0.0 ->
            stack := List.tl !stack;
            pop ()
          | _ -> ()
        in
        pop ();
        stack := i :: !stack)
      step;
    !stack
  in
  let lower = build order in
  let upper = build (Array.of_list (List.rev (Array.to_list order))) in
  (* Each chain ends with its endpoint duplicated in the other; drop one. *)
  let lower = List.rev lower and upper = List.rev upper in
  let chop = function [] -> [] | l -> List.filteri (fun i _ -> i < List.length l - 1) l in
  Array.of_list (chop lower @ chop upper)

let is_convex_hull pts hull =
  let k = Array.length hull in
  if k = 0 then false
  else if k <= 2 then true
  else begin
    let ok = ref true in
    (* CCW convex polygon. *)
    for j = 0 to k - 1 do
      let a = pts.(hull.(j)) in
      let b = pts.(hull.((j + 1) mod k)) in
      let c = pts.(hull.((j + 2) mod k)) in
      if Point.orient2d a b c <= 0.0 then ok := false
    done;
    (* Contains every input point: for a CCW polygon the interior is to the
       left of every edge, so a point strictly to the right of any edge is
       outside. *)
    Array.iter
      (fun (p : Point.t) ->
        for j = 0 to k - 1 do
          let a = pts.(hull.(j)) and b = pts.(hull.((j + 1) mod k)) in
          if side a b p < -1e-9 then ok := false
        done)
      pts;
    !ok
  end
