(** Parallel 2-D convex hull (quickhull) — a further PBBS benchmark built
    from the suite's fearless patterns only: divide-and-conquer [join],
    parallel max-reductions, and pack.  A useful counterpoint to the
    irregular benchmarks: no indirect writes anywhere. *)

open Rpb_pool

val convex_hull : Pool.t -> Point.t array -> int array
(** Indices of the hull vertices in counter-clockwise order, starting from
    the leftmost point.  Points strictly inside edges are omitted; for
    collinear configurations the extreme points are kept.  Requires at least
    one point. *)

val convex_hull_seq : Point.t array -> int array
(** Andrew's monotone chain, the sequential reference. *)

val is_convex_hull : Point.t array -> int array -> bool
(** Oracle: the claimed hull is convex (CCW) and contains every point. *)
