open Rpb_pool

type mode = Sequential | Reserving

type stats = {
  rounds : int;
  inserted : int;
  skipped : int;
  remaining_bad : int;
  final_min_angle : float;
  final_real_triangles : int;
}

(* Triangles smaller than this squared circumradius are left alone: a
   termination guard against splitting ever-finer geometry. *)
let min_split_radius2 = 1e-12

let is_bad mesh ~min_angle i =
  Mesh.is_real mesh i
  && begin
    let a, b, c = Mesh.tri_points mesh i in
    Point.min_angle a b c < min_angle
    && Point.circumradius2 a b c > min_split_radius2
  end

let count_bad pool mesh ~min_angle =
  Pool.parallel_for_reduce ~start:0 ~finish:(Mesh.num_triangle_slots mesh)
    ~body:(fun i -> if is_bad mesh ~min_angle i then 1 else 0)
    ~combine:( + ) ~init:0 pool

(* The prospective insertion for a skinny triangle: its circumcenter's
   cavity, provided the center lands inside the real (non-scaffolding) part
   of the mesh. *)
let plan_insertion mesh i =
  let a, b, c = Mesh.tri_points mesh i in
  match Point.circumcenter a b c with
  | None -> None
  | Some center ->
    (match Mesh.locate mesh center with
     | exception Not_found -> None
     | loc when not (Mesh.is_real mesh loc) -> None
     | _ -> Mesh.cavity_of mesh center)

let reserved_set (cavity : Mesh.cavity) =
  let outside =
    List.filter_map
      (fun (_, _, nb) -> if nb >= 0 then Some nb else None)
      cavity.Mesh.boundary
  in
  List.sort_uniq compare (cavity.Mesh.old_triangles @ outside)

let finish pool mesh ~min_angle ~rounds ~inserted ~skipped =
  {
    rounds;
    inserted;
    skipped;
    remaining_bad = count_bad pool mesh ~min_angle;
    final_min_angle = Mesh.min_live_angle pool mesh;
    final_real_triangles = Mesh.num_real_triangles pool mesh;
  }

let refine_sequential pool mesh ~min_angle ~max_rounds =
  let inserted = ref 0 and skipped = ref 0 in
  let give_up = Hashtbl.create 64 in
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < max_rounds do
    incr rounds;
    let bad =
      Rpb_parseq.Pack.pack_index pool
        (fun i -> is_bad mesh ~min_angle i && not (Hashtbl.mem give_up i))
        (Mesh.num_triangle_slots mesh)
    in
    if Array.length bad = 0 then continue_ := false
    else
      Array.iter
        (fun i ->
          (* The triangle may have died earlier this round. *)
          if is_bad mesh ~min_angle i && not (Hashtbl.mem give_up i) then begin
            Mesh.ensure_capacity mesh ~vertices:1 ~triangles:64;
            match plan_insertion mesh i with
            | None ->
              Hashtbl.replace give_up i ();
              incr skipped
            | Some cavity ->
              let v = Mesh.add_point mesh cavity.Mesh.center in
              ignore (Mesh.apply_insert mesh ~vertex:v cavity);
              incr inserted
          end)
        bad
  done;
  finish pool mesh ~min_angle ~rounds:!rounds ~inserted:!inserted ~skipped:!skipped

let refine_reserving pool mesh ~min_angle ~max_rounds =
  let inserted = ref 0 and skipped = ref 0 in
  let give_up = Hashtbl.create 64 in
  let give_up_mutex = Mutex.create () in
  let mark_given_up i =
    Mutex.lock give_up_mutex;
    Hashtbl.replace give_up i ();
    Mutex.unlock give_up_mutex
  in
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < max_rounds do
    incr rounds;
    let nt = Mesh.num_triangle_slots mesh in
    let bad =
      Rpb_parseq.Pack.pack_index pool
        (fun i -> is_bad mesh ~min_angle i && not (Hashtbl.mem give_up i))
        nt
    in
    let nbad = Array.length bad in
    if nbad = 0 then continue_ := false
    else begin
      (* Phase A (read-only, parallel): plan every insertion. *)
      let plans = Array.make nbad None in
      Pool.parallel_for ~start:0 ~finish:nbad
        ~body:(fun j ->
          match plan_insertion mesh bad.(j) with
          | None -> mark_given_up bad.(j)
          | Some cavity -> plans.(j) <- Some (cavity, reserved_set cavity))
        pool;
      (* Phase B (parallel): priority-write reservations — the AW pattern. *)
      let owner = Rpb_prim.Atomic_array.make nt max_int in
      Pool.parallel_for ~start:0 ~finish:nbad
        ~body:(fun j ->
          match plans.(j) with
          | None -> ()
          | Some (_, reserved) ->
            List.iter
              (fun ti -> ignore (Rpb_prim.Atomic_array.fetch_min owner ti j))
              reserved)
        pool;
      let winners =
        Rpb_parseq.Pack.pack_index pool
          (fun j ->
            match plans.(j) with
            | None -> false
            | Some (_, reserved) ->
              List.for_all (fun ti -> Rpb_prim.Atomic_array.get owner ti = j) reserved)
          nbad
      in
      (* Phase C: capacity (single-threaded), then disjoint parallel inserts. *)
      let new_triangles =
        Array.fold_left
          (fun acc j ->
            match plans.(j) with
            | Some (cavity, _) -> acc + List.length cavity.Mesh.boundary
            | None -> acc)
          0 winners
      in
      Mesh.ensure_capacity mesh ~vertices:(Array.length winners)
        ~triangles:new_triangles;
      Pool.parallel_for ~grain:1 ~start:0 ~finish:(Array.length winners)
        ~body:(fun w ->
          let j = winners.(w) in
          match plans.(j) with
          | None -> assert false
          | Some (cavity, _) ->
            let v = Mesh.add_point mesh cavity.Mesh.center in
            ignore (Mesh.apply_insert mesh ~vertex:v cavity))
        pool;
      inserted := !inserted + Array.length winners;
      (* If contention produced no winner (can only happen with at least one
         plan and cyclic conflicts, which priority-writes preclude), we would
         still make progress next round via re-planning; guard anyway. *)
      if Array.length winners = 0 && Hashtbl.length give_up = 0 then
        continue_ := false
    end
  done;
  skipped := Hashtbl.length give_up;
  finish pool mesh ~min_angle ~rounds:!rounds ~inserted:!inserted ~skipped:!skipped

let refine ?(min_angle = 26.0) ?(max_rounds = 64) ?(mode = Reserving) pool mesh =
  match mode with
  | Sequential -> refine_sequential pool mesh ~min_angle ~max_rounds
  | Reserving -> refine_reserving pool mesh ~min_angle ~max_rounds
