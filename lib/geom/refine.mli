(** Delaunay refinement — the paper's [dr] benchmark.

    Splits skinny triangles (smallest angle below a threshold) by inserting
    their circumcenters, in rounds, until the mesh is clean or a round cap is
    reached.

    Two execution modes reproduce the paper's fear spectrum for this
    arbitrary-read-write workload:

    - [Sequential]: one insertion at a time (the baseline);
    - [Reserving]: every round, all skinny triangles compute their insertion
      cavities in parallel (read-only), then race to reserve the triangles
      they would mutate via atomic priority-writes; winners with fully-owned
      cavities insert in parallel, losers retry next round — the
      deterministic-reservations AW pattern of PBBS. *)

open Rpb_pool

type mode = Sequential | Reserving

type stats = {
  rounds : int;
  inserted : int;       (** circumcenters successfully inserted *)
  skipped : int;        (** skinny triangles given up on (outside domain) *)
  remaining_bad : int;  (** skinny triangles left when refinement stopped *)
  final_min_angle : float;
  final_real_triangles : int;
}

val is_bad : Mesh.t -> min_angle:float -> int -> bool
(** Real, skinny, and large enough to be worth splitting. *)

val count_bad : Pool.t -> Mesh.t -> min_angle:float -> int

val refine :
  ?min_angle:float -> ?max_rounds:int -> ?mode:mode ->
  Pool.t -> Mesh.t -> stats
(** Default [min_angle] 26 degrees, [max_rounds] 64, [mode] Reserving. *)
