type t = {
  n : int;
  m : int;
  offsets : int array;
  targets : int array;
  weights : int array option;
}

let make ~offsets ~targets ?weights () =
  let n = Array.length offsets - 1 in
  if n < 0 then invalid_arg "Csr.make: offsets must have length >= 1";
  let m = Array.length targets in
  if offsets.(0) <> 0 || offsets.(n) <> m then
    invalid_arg "Csr.make: offsets must start at 0 and end at m";
  if not (Rpb_prim.Util.is_sorted offsets) then
    invalid_arg "Csr.make: offsets must be non-decreasing";
  Array.iter
    (fun v -> if v < 0 || v >= n then invalid_arg "Csr.make: target out of range")
    targets;
  (match weights with
   | Some w ->
     if Array.length w <> m then invalid_arg "Csr.make: weights length mismatch";
     Array.iter (fun x -> if x < 0 then invalid_arg "Csr.make: negative weight") w
   | None -> ());
  { n; m; offsets; targets; weights }

let n g = g.n
let m g = g.m
let degree g u = g.offsets.(u + 1) - g.offsets.(u)

let iter_neighbors g u f =
  for e = g.offsets.(u) to g.offsets.(u + 1) - 1 do
    f (Array.unsafe_get g.targets e)
  done

let edge_weight g e = match g.weights with Some w -> w.(e) | None -> 1

let iter_neighbors_w g u f =
  match g.weights with
  | None -> iter_neighbors g u (fun v -> f v 1)
  | Some w ->
    for e = g.offsets.(u) to g.offsets.(u + 1) - 1 do
      f (Array.unsafe_get g.targets e) (Array.unsafe_get w e)
    done

let fold_neighbors g u ~init ~f =
  let acc = ref init in
  iter_neighbors g u (fun v -> acc := f !acc v);
  !acc

let edges g =
  let out = Array.make g.m (0, 0) in
  for u = 0 to g.n - 1 do
    for e = g.offsets.(u) to g.offsets.(u + 1) - 1 do
      out.(e) <- (u, g.targets.(e))
    done
  done;
  out

let of_edges pool ~n ?weights edge_list =
  let m = Array.length edge_list in
  (match weights with
   | Some w when Array.length w <> m ->
     invalid_arg "Csr.of_edges: weights length mismatch"
   | _ -> ());
  Array.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Csr.of_edges: endpoint out of range")
    edge_list;
  (* Stable rank by source vertex keeps each adjacency list in input order
     and lets weights ride along through the same permutation. *)
  let srcs = Rpb_core.Par_array.init pool m (fun i -> fst edge_list.(i)) in
  let dest = Rpb_parseq.Radix.rank_by_key pool ~keys:srcs ~buckets:n in
  let targets = Array.make m 0 in
  Rpb_pool.Pool.parallel_for ~start:0 ~finish:m
    ~body:(fun i -> targets.(dest.(i)) <- snd edge_list.(i))
    pool;
  let weights =
    Option.map
      (fun w ->
        let out = Array.make m 0 in
        Rpb_pool.Pool.parallel_for ~start:0 ~finish:m
          ~body:(fun i -> out.(dest.(i)) <- w.(i))
          pool;
        out)
      weights
  in
  let counts = Rpb_parseq.Histogram.histogram pool ~keys:srcs ~buckets:n in
  let offsets = Array.make (n + 1) 0 in
  let starts, total = Rpb_parseq.Scan.exclusive_int pool counts in
  Array.blit starts 0 offsets 0 n;
  offsets.(n) <- total;
  { n; m; offsets; targets; weights }

let symmetrize pool g =
  let fwd = edges g in
  let bwd = Rpb_core.Par_array.map pool (fun (u, v) -> (v, u)) fwd in
  let both = Array.append fwd bwd in
  let weights =
    Option.map
      (fun w ->
        (* Reverse edges carry the same weight, in the same edge order. *)
        Array.append w w)
      g.weights
  in
  of_edges pool ~n:g.n ?weights both

let max_degree pool g =
  Rpb_pool.Pool.parallel_for_reduce ~start:0 ~finish:g.n
    ~body:(fun u -> degree g u)
    ~combine:max ~init:0 pool

let avg_degree g = if g.n = 0 then 0.0 else float_of_int g.m /. float_of_int g.n
