(** Compressed-sparse-row graphs — the PBBS graph substrate (paper Table 2).

    Vertices are [0 .. n-1].  Edge targets of vertex [u] occupy
    [targets.(offsets.(u)) .. targets.(offsets.(u+1) - 1)]; [weights], when
    present, is parallel to [targets]. *)

type t = private {
  n : int;                    (** number of vertices *)
  m : int;                    (** number of directed edges *)
  offsets : int array;        (** length [n + 1]; [offsets.(n) = m] *)
  targets : int array;        (** length [m] *)
  weights : int array option; (** length [m] when present; weights >= 0 *)
}

val make : offsets:int array -> targets:int array -> ?weights:int array -> unit -> t
(** Validates the CSR invariants (monotone offsets, in-range targets,
    matching weight length) and packs the record.  Raises
    [Invalid_argument] on violation. *)

val n : t -> int
val m : t -> int

val degree : t -> int -> int

val iter_neighbors : t -> int -> (int -> unit) -> unit

val iter_neighbors_w : t -> int -> (int -> int -> unit) -> unit
(** [iter_neighbors_w g u f] calls [f v w] for each edge [(u, v)] of weight
    [w] (weight 1 for unweighted graphs). *)

val fold_neighbors : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a

val edge_weight : t -> int -> int
(** Weight of the edge at CSR position [e] (1 if unweighted). *)

val edges : t -> (int * int) array
(** All directed edges as (src, dst) pairs, CSR order. *)

val of_edges :
  Rpb_pool.Pool.t -> n:int -> ?weights:int array -> (int * int) array -> t
(** Build a CSR from a directed edge list (parallel stable sort by source).
    [weights], if given, is parallel to the edge array. *)

val symmetrize : Rpb_pool.Pool.t -> t -> t
(** Adds every reverse edge (duplicates are kept, PBBS-style); weights follow
    their edges. *)

val max_degree : Rpb_pool.Pool.t -> t -> int

val avg_degree : t -> float
