let weight_of_edge ~seed i = 1 + (Rpb_prim.Rng.hash64 ((seed * 0x9E37) + i) mod 100)

(* One R-MAT edge: descend [scale] levels of the recursive adjacency-matrix
   quadrants.  All randomness comes from hashing (edge index, level), so edge
   [i] is a pure function of the parameters — embarrassingly parallel. *)
let rmat_edge ~scale ~seed ~a ~b ~c i =
  let u = ref 0 and v = ref 0 in
  for level = 0 to scale - 1 do
    let h = Rpb_prim.Rng.hash64 ((((seed * 31) + i) * 67) + level) in
    let r = float_of_int (h mod 1_000_000) /. 1_000_000.0 in
    let bit = 1 lsl (scale - 1 - level) in
    if r < a then ()
    else if r < a +. b then v := !v lor bit
    else if r < a +. b +. c then u := !u lor bit
    else begin
      u := !u lor bit;
      v := !v lor bit
    end
  done;
  (!u, !v)

let rmat_family pool ~scale ~edge_factor ~seed ~weighted ~a ~b ~c =
  if scale < 1 || scale > 30 then invalid_arg "Generate: scale out of range";
  let n = 1 lsl scale in
  let m = edge_factor * n in
  let edge_list =
    Rpb_core.Par_array.init pool m (fun i -> rmat_edge ~scale ~seed ~a ~b ~c i)
  in
  let weights =
    if weighted then Some (Rpb_core.Par_array.init pool m (weight_of_edge ~seed))
    else None
  in
  Csr.of_edges pool ~n ?weights edge_list

let rmat pool ~scale ~edge_factor ?(seed = 2) ?(weighted = false) () =
  rmat_family pool ~scale ~edge_factor ~seed ~weighted ~a:0.5 ~b:0.1 ~c:0.1

let power_law pool ~scale ~edge_factor ?(seed = 3) ?(weighted = false) () =
  rmat_family pool ~scale ~edge_factor ~seed ~weighted ~a:0.65 ~b:0.15 ~c:0.15

let road_grid pool ~rows ~cols ?(seed = 4) ?(weighted = false) () =
  if rows < 1 || cols < 1 then invalid_arg "Generate.road_grid: empty grid";
  let n = rows * cols in
  (* Right and down edges, then symmetrized: degree <= 4, diameter
     rows + cols — the road-network regime. *)
  let horiz = (cols - 1) * rows and vert = (rows - 1) * cols in
  let m = horiz + vert in
  let edge_of i =
    if i < horiz then begin
      let r = i / (cols - 1) and c = i mod (cols - 1) in
      ((r * cols) + c, (r * cols) + c + 1)
    end
    else begin
      let j = i - horiz in
      let r = j / cols and c = j mod cols in
      ((r * cols) + c, ((r + 1) * cols) + c)
    end
  in
  let edge_list = Rpb_core.Par_array.init pool m edge_of in
  let weights =
    if weighted then Some (Rpb_core.Par_array.init pool m (weight_of_edge ~seed))
    else None
  in
  let g = Csr.of_edges pool ~n ?weights edge_list in
  Csr.symmetrize pool g

let random_uniform pool ~n ~m ?(seed = 5) ?(weighted = false) () =
  if n < 1 then invalid_arg "Generate.random_uniform: n must be positive";
  let edge_of i =
    let h1 = Rpb_prim.Rng.hash64 ((seed * 131) + (2 * i)) in
    let h2 = Rpb_prim.Rng.hash64 ((seed * 131) + (2 * i) + 1) in
    (h1 mod n, h2 mod n)
  in
  let edge_list = Rpb_core.Par_array.init pool m edge_of in
  let weights =
    if weighted then Some (Rpb_core.Par_array.init pool m (weight_of_edge ~seed))
    else None
  in
  Csr.of_edges pool ~n ?weights edge_list

let by_name pool ~name ~scale ~weighted =
  match name with
  | "rmat" -> rmat pool ~scale ~edge_factor:6 ~weighted ()
  | "link" -> power_law pool ~scale ~edge_factor:20 ~weighted ()
  | "road" ->
    (* A square grid with about 2^scale vertices. *)
    let side = max 2 (int_of_float (sqrt (float_of_int (1 lsl scale)))) in
    road_grid pool ~rows:side ~cols:side ~weighted ()
  | _ -> invalid_arg ("Generate.by_name: unknown input " ^ name)
