(** Deterministic graph generators standing in for the paper's inputs
    (Table 2).

    The paper uses Hyperlink2012-hosts ("link", |E|/|V| = 20.1, power-law,
    low diameter), an R-MAT graph ("rmat", |E|/|V| = 6.0) and the full USA
    road network ("road", |E|/|V| = 2.4, high diameter, bounded degree).
    These generators reproduce those regimes at container scale:

    - {!rmat}: Chakrabarti et al.'s recursive matrix model with PBBS's skew;
    - {!road_grid}: a 2-D lattice with random weights — same high-diameter,
      degree-<=4 regime as a road network;
    - {!power_law}: R-MAT with a stronger corner bias and more edges per
      vertex, matching the hyperlink graph's skew and density.

    Every generator is a pure function of its parameters and seed. *)

open Rpb_pool

val rmat :
  Pool.t -> scale:int -> edge_factor:int -> ?seed:int -> ?weighted:bool ->
  unit -> Csr.t
(** [2^scale] vertices, [edge_factor * 2^scale] directed edges drawn with
    (a, b, c, d) = (0.5, 0.1, 0.1, 0.3).  Weights, when requested, are
    uniform in [\[1, 100\]]. *)

val power_law :
  Pool.t -> scale:int -> edge_factor:int -> ?seed:int -> ?weighted:bool ->
  unit -> Csr.t
(** R-MAT with (0.65, 0.15, 0.15, 0.05): heavier skew, the "link" regime. *)

val road_grid :
  Pool.t -> rows:int -> cols:int -> ?seed:int -> ?weighted:bool -> unit -> Csr.t
(** A [rows x cols] 4-neighbour lattice (symmetric).  Weights uniform in
    [\[1, 100\]]. *)

val random_uniform :
  Pool.t -> n:int -> m:int -> ?seed:int -> ?weighted:bool -> unit -> Csr.t
(** Erdos-Renyi style: [m] directed edges with uniform endpoints. *)

val by_name :
  Pool.t -> name:string -> scale:int -> weighted:bool -> Csr.t
(** The harness's input table: ["link"], ["rmat"], ["road"] (scaled by
    [scale]).  Raises [Invalid_argument] for unknown names. *)
