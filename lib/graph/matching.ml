open Rpb_pool

let compute ?(seed = 11) pool ~edges ~n =
  let m = Array.length edges in
  let prio = Rpb_prim.Rng.permutation (Rpb_prim.Rng.create seed) m in
  let matched_vertex = Array.make n false in
  let selected = Array.make m false in
  let live = ref (Rpb_parseq.Pack.pack_index pool (fun e -> fst edges.(e) <> snd edges.(e)) m) in
  let guard = ref 0 in
  while Array.length !live > 0 do
    incr guard;
    if !guard > m + 64 then failwith "Matching: no progress";
    let frontier = !live in
    (* Reservation: each live edge bids its priority on both endpoints. *)
    let bid = Rpb_prim.Atomic_array.make n max_int in
    Pool.parallel_for ~start:0 ~finish:(Array.length frontier)
      ~body:(fun j ->
        let e = frontier.(j) in
        let u, v = edges.(e) in
        ignore (Rpb_prim.Atomic_array.fetch_min bid u prio.(e));
        ignore (Rpb_prim.Atomic_array.fetch_min bid v prio.(e)))
      pool;
    (* Winners own both endpoints; commit them. *)
    Pool.parallel_for ~start:0 ~finish:(Array.length frontier)
      ~body:(fun j ->
        let e = frontier.(j) in
        let u, v = edges.(e) in
        if Rpb_prim.Atomic_array.get bid u = prio.(e)
           && Rpb_prim.Atomic_array.get bid v = prio.(e)
        then begin
          selected.(e) <- true;
          matched_vertex.(u) <- true;
          matched_vertex.(v) <- true
        end)
      pool;
    live :=
      Rpb_parseq.Pack.pack pool
        (fun e ->
          let u, v = edges.(e) in
          (not matched_vertex.(u)) && not matched_vertex.(v))
        frontier
  done;
  selected

let compute_seq ?(seed = 11) ~n edges =
  let m = Array.length edges in
  let prio = Rpb_prim.Rng.permutation (Rpb_prim.Rng.create seed) m in
  let order = Array.init m Fun.id in
  Array.sort (fun a b -> compare prio.(a) prio.(b)) order;
  let matched_vertex = Array.make n false in
  let selected = Array.make m false in
  Array.iter
    (fun e ->
      let u, v = edges.(e) in
      if u <> v && (not matched_vertex.(u)) && not matched_vertex.(v) then begin
        selected.(e) <- true;
        matched_vertex.(u) <- true;
        matched_vertex.(v) <- true
      end)
    order;
  selected
