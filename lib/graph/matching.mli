(** Maximal matching by edge-priority reservations — the paper's [mm]
    benchmark.

    Each round, every live edge writes its random priority into both
    endpoints with an atomic priority-write (fetch-min); edges that won both
    endpoints join the matching and knock out their incident edges.  The
    endpoint cells are the AW pattern: many edges contend on one vertex. *)

open Rpb_pool

val compute : ?seed:int -> Pool.t -> edges:(int * int) array -> n:int -> bool array
(** Selection mask over [edges].  Self-loops are never selected.
    Deterministic for a fixed seed. *)

val compute_seq : ?seed:int -> n:int -> (int * int) array -> bool array
(** Sequential greedy over the same edge priorities (same matching). *)
