open Rpb_pool

type sync = Atomic_status | Plain_status

let unknown = 0
let in_set = 1
let out = 2

(* The round structure (compute on a frontier of undecided vertices until
   none remain) is shared; [get]/[set] abstract the status storage so the
   atomic and plain-array builds share the algorithm. *)
let rounds pool n ~prio ~neighbors ~get ~set =
  let undecided = ref (Rpb_core.Par_array.init pool n Fun.id) in
  let guard = ref 0 in
  while Array.length !undecided > 0 do
    incr guard;
    if !guard > n + 64 then failwith "Mis: no progress";
    let frontier = !undecided in
    (* A vertex enters when it is a local priority minimum among its
       not-yet-out neighbours. *)
    Pool.parallel_for ~start:0 ~finish:(Array.length frontier)
      ~body:(fun j ->
        let u = frontier.(j) in
        if get u = unknown then begin
          let wins = ref true in
          neighbors u (fun v ->
              if v <> u && get v <> out && prio.(v) < prio.(u) then wins := false);
          if !wins then set u in_set
        end)
      pool;
    (* Neighbours of new members leave.  Separate phase so that the win
       check above never observes a half-applied round. *)
    Pool.parallel_for ~start:0 ~finish:(Array.length frontier)
      ~body:(fun j ->
        let u = frontier.(j) in
        if get u = in_set then
          neighbors u (fun v -> if v <> u && get v <> in_set then set v out))
      pool;
    undecided := Rpb_parseq.Pack.pack pool (fun u -> get u = unknown) frontier
  done

let compute ?(sync = Atomic_status) ?(seed = 9) pool g =
  let n = Csr.n g in
  let prio = Rpb_prim.Rng.permutation (Rpb_prim.Rng.create seed) n in
  let neighbors u f = Csr.iter_neighbors g u f in
  (match sync with
   | Atomic_status ->
     let status = Rpb_prim.Atomic_array.make n unknown in
     rounds pool n ~prio ~neighbors
       ~get:(Rpb_prim.Atomic_array.get status)
       ~set:(Rpb_prim.Atomic_array.set status);
     Rpb_core.Par_array.init pool n (fun u -> Rpb_prim.Atomic_array.get status u = in_set)
   | Plain_status ->
     (* All concurrent writers of a cell write the same value in a phase, so
        the race is "benign" — the unsafe-Rust analogue. *)
     let status = Array.make n unknown in
     rounds pool n ~prio ~neighbors
       ~get:(fun u -> Array.unsafe_get status u)
       ~set:(fun u v -> Array.unsafe_set status u v);
     Rpb_core.Par_array.init pool n (fun u -> status.(u) = in_set))

let compute_seq ?(seed = 9) g =
  let n = Csr.n g in
  let prio = Rpb_prim.Rng.permutation (Rpb_prim.Rng.create seed) n in
  (* Greedy in increasing priority order gives the same "lexicographically
     first by priority" MIS the round algorithm converges to. *)
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> compare prio.(a) prio.(b)) order;
  let status = Array.make n unknown in
  Array.iter
    (fun u ->
      if status.(u) = unknown then begin
        status.(u) <- in_set;
        Csr.iter_neighbors g u (fun v -> if v <> u then status.(v) <- out)
      end)
    order;
  Array.map (fun s -> s = in_set) status
