(** Maximal independent set by random-priority rounds (Blelloch et al.'s
    deterministic-reservations style) — the paper's [mis] benchmark.

    Every vertex draws a random priority.  In each round an undecided vertex
    joins the set if every undecided-or-in neighbour has a larger priority;
    vertices adjacent to a new member drop out.  Writes to the shared status
    array are the AW pattern: conflicting, arbitrated by atomics (or raced
    through plain stores in the scary build). *)

open Rpb_pool

type sync = Atomic_status | Plain_status
(** [Atomic_status] uses CAS-backed status cells (the synchronized build);
    [Plain_status] writes a plain int array — the "benign race" variant the
    paper warns about in Sec. 5.2 (the algorithm tolerates it because all
    racers write the same value, but no language-level guarantee exists). *)

val compute : ?sync:sync -> ?seed:int -> Pool.t -> Csr.t -> bool array
(** [compute pool g] returns the selection mask.  The graph should be
    symmetric.  Deterministic for a fixed seed regardless of sync mode. *)

val compute_seq : ?seed:int -> Csr.t -> bool array
(** Sequential greedy over the same priorities (the baseline; produces the
    same set). *)
