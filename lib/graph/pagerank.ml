open Rpb_pool

type method_ = Push_mutex | Push_float_racy | Pull

let default_iterations = 20
let default_damping = 0.85

let base_rank damping n = (1.0 -. damping) /. float_of_int n

let compute_seq ?(iterations = default_iterations) ?(damping = default_damping) g =
  let n = Csr.n g in
  let rank = Array.make n (1.0 /. float_of_int n) in
  let next = Array.make n 0.0 in
  for _ = 1 to iterations do
    Array.fill next 0 n (base_rank damping n);
    for u = 0 to n - 1 do
      let d = Csr.degree g u in
      if d > 0 then begin
        let share = damping *. rank.(u) /. float_of_int d in
        Csr.iter_neighbors g u (fun v -> next.(v) <- next.(v) +. share)
      end
      else
        (* Dangling mass is spread uniformly. *)
        let share = damping *. rank.(u) /. float_of_int n in
        for v = 0 to n - 1 do
          next.(v) <- next.(v) +. share
        done
    done;
    Array.blit next 0 rank 0 n
  done;
  rank

(* In-neighbour lists = the transposed CSR; built once per compute call. *)
let transpose pool g =
  let edges = Csr.edges g in
  let flipped = Rpb_core.Par_array.map pool (fun (u, v) -> (v, u)) edges in
  Csr.of_edges pool ~n:(Csr.n g) flipped

let compute ?(method_ = Pull) ?(iterations = default_iterations)
    ?(damping = default_damping) pool g =
  let n = Csr.n g in
  let rank = ref (Array.make n (1.0 /. float_of_int n)) in
  let dangling_share r =
    (* Sum of damping * rank(u)/n over zero-degree vertices. *)
    Pool.parallel_for_reduce ~start:0 ~finish:n
      ~body:(fun u -> if Csr.degree g u = 0 then r.(u) else 0.0)
      ~combine:( +. ) ~init:0.0 pool
    *. damping /. float_of_int n
  in
  (match method_ with
   | Pull ->
     let gt = transpose pool g in
     for _ = 1 to iterations do
       let r = !rank in
       let dangle = dangling_share r in
       let next =
         Rpb_core.Par_array.init pool n (fun v ->
             let acc = ref (base_rank damping n +. dangle) in
             Csr.iter_neighbors gt v (fun u ->
                 acc := !acc +. (damping *. r.(u) /. float_of_int (Csr.degree g u)));
             !acc)
       in
       rank := next
     done
   | Push_mutex ->
     let stripes = 256 in
     let locks = Array.init stripes (fun _ -> Mutex.create ()) in
     for _ = 1 to iterations do
       let r = !rank in
       let dangle = dangling_share r in
       let next = Array.make n (base_rank damping n +. dangle) in
       Pool.parallel_for ~start:0 ~finish:n
         ~body:(fun u ->
           let d = Csr.degree g u in
           if d > 0 then begin
             let share = damping *. r.(u) /. float_of_int d in
             Csr.iter_neighbors g u (fun v ->
                 let m = locks.(v land (stripes - 1)) in
                 Mutex.lock m;
                 next.(v) <- next.(v) +. share;
                 Mutex.unlock m)
           end)
         pool;
       rank := next
     done
   | Push_float_racy ->
     (* Unsynchronized read-modify-writes: updates racing on a vertex can be
        lost.  This is the build a Rust borrow checker rejects outright. *)
     for _ = 1 to iterations do
       let r = !rank in
       let dangle = dangling_share r in
       let next = Array.make n (base_rank damping n +. dangle) in
       Pool.parallel_for ~start:0 ~finish:n
         ~body:(fun u ->
           let d = Csr.degree g u in
           if d > 0 then begin
             let share = damping *. r.(u) /. float_of_int d in
             Csr.iter_neighbors g u (fun v -> next.(v) <- next.(v) +. share)
           end)
         pool;
       rank := next
     done);
  !rank

let max_abs_diff a b =
  let d = ref 0.0 in
  Array.iteri (fun i x -> d := Float.max !d (Float.abs (x -. b.(i)))) a;
  !d
