(** Push-based PageRank — the Sec. 5.2 example of "overlapping conflicting
    accesses ... common in graph algorithms like push-based PageRank".

    Each iteration, every vertex pushes [damping * rank / degree] to each
    out-neighbour.  Neighbour accumulators are shared and conflicting; the
    implementations span the fear spectrum:

    - [Push_mutex]: striped locks around the accumulators;
    - [Push_float_racy]: plain float adds — genuinely WRONG under
      parallelism (lost updates), provided as the "scared" build that the
      verifier exposes; kept at 1 worker it is exact;
    - [Pull]: the regular rewrite — every vertex gathers from in-neighbours,
      giving task-private writes (Stride) at the cost of transposing the
      graph. *)

open Rpb_pool

type method_ = Push_mutex | Push_float_racy | Pull

val compute :
  ?method_:method_ -> ?iterations:int -> ?damping:float ->
  Pool.t -> Csr.t -> float array
(** Rank vector summing to ~1.  Default: [Pull], 20 iterations, damping
    0.85. *)

val compute_seq : ?iterations:int -> ?damping:float -> Csr.t -> float array
(** Sequential push-based reference. *)

val max_abs_diff : float array -> float array -> float
