let bfs_distances g ~src =
  let n = Csr.n g in
  let dist = Array.make n max_int in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.push src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Csr.iter_neighbors g u (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.push v q
        end)
  done;
  dist

let dijkstra g ~src =
  let n = Csr.n g in
  let dist = Array.make n max_int in
  let heap = Rpb_mq.Binary_heap.create () in
  dist.(src) <- 0;
  Rpb_mq.Binary_heap.push heap ~pri:0 src;
  let rec drain () =
    match Rpb_mq.Binary_heap.pop_min heap with
    | None -> ()
    | Some (d, u) ->
      if d = dist.(u) then
        Csr.iter_neighbors_w g u (fun v w ->
            let nd = d + w in
            if nd < dist.(v) then begin
              dist.(v) <- nd;
              Rpb_mq.Binary_heap.push heap ~pri:nd v
            end);
      drain ()
  in
  drain ();
  dist

let seq_union_find n =
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else begin
      parent.(i) <- parent.(parent.(i));
      find parent.(i)
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra = rb then false
    else begin
      let hi = max ra rb and lo = min ra rb in
      parent.(hi) <- lo;
      true
    end
  in
  (find, union)

let connected_components g =
  let n = Csr.n g in
  let find, union = seq_union_find n in
  for u = 0 to n - 1 do
    Csr.iter_neighbors g u (fun v -> ignore (union u v))
  done;
  Array.init n find

let num_components g =
  let comp = connected_components g in
  let roots = Hashtbl.create 64 in
  Array.iter (fun r -> Hashtbl.replace roots r ()) comp;
  Hashtbl.length roots

let is_independent_set g selected =
  let ok = ref true in
  for u = 0 to Csr.n g - 1 do
    if selected.(u) then
      Csr.iter_neighbors g u (fun v -> if v <> u && selected.(v) then ok := false)
  done;
  !ok

let is_maximal_independent_set g selected =
  is_independent_set g selected
  && begin
    let ok = ref true in
    for u = 0 to Csr.n g - 1 do
      if not selected.(u) then begin
        let has_selected_neighbor = ref false in
        Csr.iter_neighbors g u (fun v -> if selected.(v) then has_selected_neighbor := true);
        (* An isolated, unselected vertex would also violate maximality. *)
        if not !has_selected_neighbor then ok := false
      end
    done;
    !ok
  end

let is_matching _g ~edges ~selected =
  let used = Hashtbl.create 64 in
  let ok = ref true in
  Array.iteri
    (fun i (u, v) ->
      if selected.(i) then begin
        if u = v then ok := false;
        if Hashtbl.mem used u || Hashtbl.mem used v then ok := false;
        Hashtbl.replace used u ();
        Hashtbl.replace used v ()
      end)
    edges;
  !ok

let is_maximal_matching g ~edges ~selected =
  is_matching g ~edges ~selected
  && begin
    let matched = Array.make (Csr.n g) false in
    Array.iteri
      (fun i (u, v) ->
        if selected.(i) then begin
          matched.(u) <- true;
          matched.(v) <- true
        end)
      edges;
    (* Maximal: no edge with both endpoints unmatched remains. *)
    Array.for_all
      (fun (u, v) -> u = v || matched.(u) || matched.(v))
      edges
  end

let spanning_forest_weight g =
  let edges = Csr.edges g in
  let weighted =
    Array.mapi (fun e (u, v) -> (Csr.edge_weight g e, u, v)) edges
  in
  Array.sort compare weighted;
  let _, union = seq_union_find (Csr.n g) in
  Array.fold_left
    (fun acc (w, u, v) -> if u <> v && union u v then acc + w else acc)
    0 weighted
