(** Sequential reference algorithms used to verify the parallel benchmarks
    (the oracle role PBBS's checkers play). *)

val bfs_distances : Csr.t -> src:int -> int array
(** Unweighted hop distances from [src]; [max_int] for unreachable. *)

val dijkstra : Csr.t -> src:int -> int array
(** Weighted shortest-path distances from [src]; [max_int] for
    unreachable. *)

val connected_components : Csr.t -> int array
(** Treating edges as undirected: canonical (minimum-index) component label
    per vertex. *)

val num_components : Csr.t -> int

val is_independent_set : Csr.t -> bool array -> bool
(** No two selected vertices adjacent. *)

val is_maximal_independent_set : Csr.t -> bool array -> bool
(** Independent, and every unselected vertex has a selected neighbour. *)

val is_matching : Csr.t -> edges:(int * int) array -> selected:bool array -> bool
(** Selected edges pairwise share no endpoint. *)

val is_maximal_matching : Csr.t -> edges:(int * int) array -> selected:bool array -> bool

val spanning_forest_weight : Csr.t -> int
(** Total weight of a minimum spanning forest (sequential Kruskal), for
    verifying msf. *)
