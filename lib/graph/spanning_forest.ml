open Rpb_pool

let spanning_forest pool g =
  let edges = Csr.edges g in
  let uf = Union_find.create (Csr.n g) in
  let in_forest = Array.make (Array.length edges) false in
  (* Races between edges joining the same pair of components are decided by
     the CAS inside [union]: exactly one edge per merge wins. *)
  Pool.parallel_for ~start:0 ~finish:(Array.length edges)
    ~body:(fun e ->
      let u, v = edges.(e) in
      if u <> v && Union_find.union uf u v then in_forest.(e) <- true)
    pool;
  Rpb_parseq.Pack.pack_index pool (fun e -> in_forest.(e)) (Array.length edges)

let spanning_forest_seq g =
  let edges = Csr.edges g in
  let parent = Array.init (Csr.n g) Fun.id in
  let rec find i = if parent.(i) = i then i else begin
      parent.(i) <- parent.(parent.(i));
      find parent.(i)
    end
  in
  let out = ref [] in
  Array.iteri
    (fun e (u, v) ->
      let ru = find u and rv = find v in
      if ru <> rv then begin
        parent.(max ru rv) <- min ru rv;
        out := e :: !out
      end)
    edges;
  Array.of_list (List.rev !out)

(* Boruvka.  Priorities pack (weight, edge index) into one int so a single
   fetch-min elects the lightest (tie: lowest-index) edge per component. *)
let minimum_spanning_forest pool g =
  let edges = Csr.edges g in
  let m = Array.length edges in
  let n = Csr.n g in
  let shift = 1 + Rpb_prim.Util.ilog2 (max 1 m) in
  let pack e = (Csr.edge_weight g e lsl shift) lor e in
  let unpack_edge p = p land ((1 lsl shift) - 1) in
  let uf = Union_find.create n in
  let in_forest = Array.make m false in
  let live = ref (Rpb_parseq.Pack.pack_index pool (fun e -> fst edges.(e) <> snd edges.(e)) m) in
  let progress = ref true in
  while !progress && Array.length !live > 0 do
    (* Drop intra-component edges; stop if nothing can merge. *)
    let frontier =
      Rpb_parseq.Pack.pack pool
        (fun e ->
          let u, v = edges.(e) in
          not (Union_find.same uf u v))
        !live
    in
    live := frontier;
    if Array.length frontier = 0 then progress := false
    else begin
      let best = Rpb_prim.Atomic_array.make n max_int in
      (* Each edge bids on both endpoint components (AW fetch-min). *)
      Pool.parallel_for ~start:0 ~finish:(Array.length frontier)
        ~body:(fun j ->
          let e = frontier.(j) in
          let u, v = edges.(e) in
          let ru = Union_find.find uf u and rv = Union_find.find uf v in
          if ru <> rv then begin
            ignore (Rpb_prim.Atomic_array.fetch_min best ru (pack e));
            ignore (Rpb_prim.Atomic_array.fetch_min best rv (pack e))
          end)
        pool;
      (* Elected edges merge their components. *)
      let merged = Atomic.make 0 in
      Pool.parallel_for ~start:0 ~finish:n
        ~body:(fun r ->
          let b = Rpb_prim.Atomic_array.get best r in
          if b <> max_int then begin
            let e = unpack_edge b in
            let u, v = edges.(e) in
            if Union_find.union uf u v then begin
              in_forest.(e) <- true;
              Atomic.incr merged
            end
          end)
        pool;
      if Atomic.get merged = 0 then progress := false
    end
  done;
  Rpb_parseq.Pack.pack_index pool (fun e -> in_forest.(e)) m

let forest_weight g forest =
  Array.fold_left (fun acc e -> acc + Csr.edge_weight g e) 0 forest
