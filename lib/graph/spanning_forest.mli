(** Spanning forest (sf) and minimum spanning forest (msf).

    [sf] races every edge through a lock-free union-find: each successful
    union contributes a forest edge (AW through the parent array, arbitrated
    by CAS).

    [msf] is Boruvka: every round each component elects its lightest incident
    edge with an atomic priority-write, elected edges union components, and
    the process repeats — dynamic rounds over unstructured data. *)

open Rpb_pool

val spanning_forest : Pool.t -> Csr.t -> int array
(** Indices (into [Csr.edges g]) of a spanning forest of the undirected
    interpretation of [g].  Exactly [n - #components] edges. *)

val spanning_forest_seq : Csr.t -> int array

val minimum_spanning_forest : Pool.t -> Csr.t -> int array
(** Edge indices of a minimum-weight spanning forest.  Ties are broken by
    edge index, making the result deterministic. *)

val forest_weight : Csr.t -> int array -> int
(** Total weight of the chosen edges. *)
