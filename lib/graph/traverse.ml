open Rpb_pool

(* Shared skeleton: relaxed-priority label-correcting search.  [dist] holds
   the best-known distances; a popped task (d, v) is stale if d exceeds the
   current label and is dropped, otherwise v's edges are relaxed and improved
   neighbours are (re)pushed at their new priority. *)
let search ~queues_per_worker pool g ~src ~relax_weight =
  let n = Csr.n g in
  let num_workers = Pool.size pool in
  let dist = Rpb_prim.Atomic_array.make n max_int in
  Rpb_prim.Atomic_array.set dist src 0;
  let mq =
    Rpb_mq.Multiqueue.create ~queues:(max 1 (queues_per_worker * num_workers)) ()
  in
  let sched = Rpb_mq.Multiqueue.Scheduler.create mq in
  Rpb_mq.Multiqueue.Scheduler.push sched ~pri:0 src;
  Rpb_mq.Multiqueue.Scheduler.run sched ~num_workers
    ~handler:(fun sched ~pri:d v ->
      if d <= Rpb_prim.Atomic_array.get dist v then
        Csr.iter_neighbors_w g v (fun w weight ->
            let nd = d + relax_weight weight in
            (* Atomic priority-write: returns the value it beat. *)
            let prev = Rpb_prim.Atomic_array.fetch_min dist w nd in
            if nd < prev then Rpb_mq.Multiqueue.Scheduler.push sched ~pri:nd w));
  Rpb_prim.Atomic_array.to_array dist

let bfs ?(queues_per_worker = 4) pool g ~src =
  search ~queues_per_worker pool g ~src ~relax_weight:(fun _ -> 1)

let sssp ?(queues_per_worker = 4) pool g ~src =
  search ~queues_per_worker pool g ~src ~relax_weight:Fun.id
