(** MultiQueue-scheduled graph traversals — the paper's [bfs] and [sssp]
    benchmarks (Sec. 6: dynamic priority-ordered task scheduling with
    long-running workers; tasks relax distances with atomic priority-writes
    and push discovered work). *)

open Rpb_pool

val bfs : ?queues_per_worker:int -> Pool.t -> Csr.t -> src:int -> int array
(** Hop distances from [src] ([max_int] when unreachable), computed by
    worker domains popping (distance, vertex) tasks from a MultiQueue. *)

val sssp : ?queues_per_worker:int -> Pool.t -> Csr.t -> src:int -> int array
(** Weighted distances (non-negative weights), delta-less relaxed Dijkstra:
    the MultiQueue's probabilistic ordering means a vertex may be popped with
    a stale distance; the atomic fetch-min plus re-push keeps it correct. *)
