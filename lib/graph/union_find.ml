type t = Rpb_prim.Atomic_array.t

let create n = Rpb_prim.Atomic_array.init n Fun.id

let rec find t i =
  let p = Rpb_prim.Atomic_array.get t i in
  if p = i then i
  else begin
    let gp = Rpb_prim.Atomic_array.get t p in
    (* Path halving: best-effort CAS; a lost race just means someone else
       compressed first. *)
    if gp <> p then ignore (Rpb_prim.Atomic_array.compare_and_set t i p gp);
    find t p
  end

let rec union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then false
  else begin
    (* Deterministic linking: the larger root is linked under the smaller. *)
    let hi = max ra rb and lo = min ra rb in
    if Rpb_prim.Atomic_array.compare_and_set t hi hi lo then true
    else
      (* [hi] was linked by a racer; restart from the new roots. *)
      union t a b
  end

let same t a b = find t a = find t b

let count_roots pool t =
  Rpb_pool.Pool.parallel_for_reduce ~start:0
    ~finish:(Rpb_prim.Atomic_array.length t)
    ~body:(fun i -> if Rpb_prim.Atomic_array.get t i = i then 1 else 0)
    ~combine:( + ) ~init:0 pool

let components pool t =
  let n = Rpb_prim.Atomic_array.length t in
  let out = Array.make n 0 in
  Rpb_pool.Pool.parallel_for ~start:0 ~finish:n
    ~body:(fun i -> out.(i) <- find t i)
    pool;
  out
