(** Lock-free concurrent union-find (disjoint sets) — the substrate of the
    spanning-forest benchmarks (sf, msf).

    Parents live in an atomic array; [union] links the larger root under the
    smaller with compare-and-set and retries on races, and [find] applies
    lock-free path halving.  Linking by index (min root wins) makes the final
    forest deterministic regardless of interleaving. *)

type t

val create : int -> t
(** [create n]: n singleton sets [0 .. n-1]. *)

val find : t -> int -> int
(** Current root of the element's set; safe to call concurrently with
    unions (the result may be stale the instant it returns, as usual). *)

val union : t -> int -> int -> bool
(** [union t a b] merges the two sets; returns [true] iff they were distinct
    (i.e. this call performed the link).  Among racing unions of the same two
    sets exactly one returns [true]. *)

val same : t -> int -> int -> bool
(** Quiescently exact; under concurrency may return a stale [false]. *)

val count_roots : Rpb_pool.Pool.t -> t -> int
(** Number of disjoint sets (call when quiescent). *)

val components : Rpb_pool.Pool.t -> t -> int array
(** [components pool t] maps every element to its canonical root (call when
    quiescent). *)
