type t = {
  mutable pris : int array;
  mutable vals : int array;
  mutable n : int;
}

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { pris = Array.make capacity 0; vals = Array.make capacity 0; n = 0 }

let size t = t.n
let is_empty t = t.n = 0

let grow t =
  let cap = Array.length t.pris in
  let pris = Array.make (2 * cap) 0 and vals = Array.make (2 * cap) 0 in
  Array.blit t.pris 0 pris 0 t.n;
  Array.blit t.vals 0 vals 0 t.n;
  t.pris <- pris;
  t.vals <- vals

let swap t i j =
  Rpb_prim.Util.array_swap t.pris i j;
  Rpb_prim.Util.array_swap t.vals i j

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.pris.(i) < t.pris.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.n && t.pris.(l) < t.pris.(!smallest) then smallest := l;
  if r < t.n && t.pris.(r) < t.pris.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~pri v =
  if t.n = Array.length t.pris then grow t;
  t.pris.(t.n) <- pri;
  t.vals.(t.n) <- v;
  t.n <- t.n + 1;
  sift_up t (t.n - 1)

let peek_min t = if t.n = 0 then None else Some (t.pris.(0), t.vals.(0))

let pop_min t =
  if t.n = 0 then None
  else begin
    let top = (t.pris.(0), t.vals.(0)) in
    t.n <- t.n - 1;
    if t.n > 0 then begin
      t.pris.(0) <- t.pris.(t.n);
      t.vals.(0) <- t.vals.(t.n);
      sift_down t 0
    end;
    Some top
  end

let to_sorted_list t =
  let rec go acc =
    match pop_min t with None -> List.rev acc | Some x -> go (x :: acc)
  in
  go []
