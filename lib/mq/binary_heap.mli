(** Resizable sequential binary min-heap of (priority, value) integer pairs —
    the sequential priority queue each MultiQueue lane wraps (paper Sec. 6). *)

type t

val create : ?capacity:int -> unit -> t

val size : t -> int

val is_empty : t -> bool

val push : t -> pri:int -> int -> unit

val peek_min : t -> (int * int) option
(** [(priority, value)] with the smallest priority, without removing it. *)

val pop_min : t -> (int * int) option

val to_sorted_list : t -> (int * int) list
(** Destructive: drains the heap in priority order (for tests). *)
