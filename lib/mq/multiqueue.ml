type lane = { lock : Mutex.t; heap : Binary_heap.t }

type t = {
  lanes : lane array;
  (* Domain-local RNG would be ideal; a lock-free splitmix step per call via
     an atomic counter keeps lane choice cheap and contention-free. *)
  ticket : int Atomic.t;
  seed : int;
}

let create ?(seed = 0x30b5) ~queues () =
  if queues < 1 then invalid_arg "Multiqueue.create: queues must be >= 1";
  {
    lanes =
      Array.init queues (fun _ ->
          { lock = Mutex.create (); heap = Binary_heap.create () });
    ticket = Atomic.make 0;
    seed;
  }

let nqueues t = Array.length t.lanes

let random_lane t =
  let n = Array.length t.lanes in
  if n = 1 then 0
  else begin
    let tk = Atomic.fetch_and_add t.ticket 1 in
    Rpb_prim.Rng.hash64 (tk lxor t.seed) mod n
  end

let push t ~pri v =
  let lane = t.lanes.(random_lane t) in
  Mutex.lock lane.lock;
  Binary_heap.push lane.heap ~pri v;
  Mutex.unlock lane.lock

(* Pop from one specific lane; returns None if it is empty. *)
let pop_lane lane =
  Mutex.lock lane.lock;
  let r = Binary_heap.pop_min lane.heap in
  Mutex.unlock lane.lock;
  r

let peek_pri lane =
  Mutex.lock lane.lock;
  let r = Binary_heap.peek_min lane.heap in
  Mutex.unlock lane.lock;
  match r with Some (pri, _) -> pri | None -> max_int

let pop t =
  let n = Array.length t.lanes in
  if n = 1 then pop_lane t.lanes.(0)
  else begin
    let i = random_lane t in
    let j =
      let j = random_lane t in
      if j = i then (j + 1) mod n else j
    in
    (* Relaxed best-of-two: peek both, pop the apparently-smaller lane.  The
       top may change between peek and pop; the MultiQueue's guarantees are
       probabilistic anyway. *)
    let pi = peek_pri t.lanes.(i) and pj = peek_pri t.lanes.(j) in
    let first, second = if pi <= pj then (i, j) else (j, i) in
    match pop_lane t.lanes.(first) with
    | Some _ as r -> r
    | None ->
      (match pop_lane t.lanes.(second) with
       | Some _ as r -> r
       | None ->
         (* Both empty: sweep all lanes once before reporting empty. *)
         let rec sweep k =
           if k >= n then None
           else
             match pop_lane t.lanes.(k) with
             | Some _ as r -> r
             | None -> sweep (k + 1)
         in
         sweep 0)
  end

let size t =
  Array.fold_left
    (fun acc lane ->
      Mutex.lock lane.lock;
      let s = Binary_heap.size lane.heap in
      Mutex.unlock lane.lock;
      acc + s)
    0 t.lanes

let is_empty t = size t = 0

let stats t =
  let sizes =
    Array.to_list
      (Array.map
         (fun lane ->
           Mutex.lock lane.lock;
           let s = Binary_heap.size lane.heap in
           Mutex.unlock lane.lock;
           string_of_int s)
         t.lanes)
  in
  Printf.sprintf "lanes=%d sizes=[%s]" (nqueues t) (String.concat ";" sizes)

module Scheduler = struct
  type mq = t

  type sched = {
    mq : mq;
    (* Tasks pushed but whose handler has not finished.  Strictly positive
       while any work (queued or executing) remains, so a worker observing
       [pop = None && in_flight = 0] can safely terminate. *)
    in_flight : int Atomic.t;
    failure : exn option Atomic.t;
  }

  let create mq = { mq; in_flight = Atomic.make 0; failure = Atomic.make None }

  let push s ~pri v =
    Atomic.incr s.in_flight;
    push s.mq ~pri v

  let worker s handler =
    let rec loop idle =
      match Atomic.get s.failure with
      | Some _ -> ()
      | None ->
        (match pop s.mq with
         | Some (pri, v) ->
           (match handler s ~pri v with
            | () -> ()
            | exception e ->
              ignore (Atomic.compare_and_set s.failure None (Some e)));
           Atomic.decr s.in_flight;
           loop 0
         | None ->
           if Atomic.get s.in_flight = 0 then ()
           else begin
             if idle < 64 then Domain.cpu_relax () else Unix.sleepf 5e-5;
             loop (idle + 1)
           end)
    in
    loop 0

  let run s ~num_workers ~handler =
    if num_workers < 1 then invalid_arg "Scheduler.run: num_workers >= 1";
    let domains =
      Array.init (num_workers - 1) (fun _ ->
          Domain.spawn (fun () -> worker s handler))
    in
    worker s handler;
    Array.iter Domain.join domains;
    match Atomic.get s.failure with
    | Some e -> raise e
    | None -> ()
end
