(** MultiQueue relaxed concurrent priority queue (Rihani, Sanders and
    Dementiev, SPAA '15), the dynamic priority scheduler of the paper's
    Sec. 6 and of its bfs/sssp benchmarks.

    [c * p] sequential binary heaps, each guarded by its own mutex.  {!push}
    locks one uniformly random lane; {!pop} inspects two random lanes and
    pops from the one whose top has the smaller priority.  Rank guarantees
    are probabilistic: {!pop} may return an element that is not the global
    minimum, so clients must tolerate out-of-order delivery (e.g. re-relax in
    SSSP).  Every pushed element is eventually popped exactly once. *)

type t

val create : ?seed:int -> queues:int -> unit -> t
(** [queues] is typically [c * num_workers] with [c] in 2..4. *)

val nqueues : t -> int

val push : t -> pri:int -> int -> unit
(** Thread-safe. *)

val pop : t -> (int * int) option
(** [Some (pri, value)] with an approximately-minimal priority, or [None] if
    every lane was observed empty.  A [None] is advisory — a racing push may
    have landed after the scan; use {!Scheduler} for reliable termination. *)

val size : t -> int
(** Total elements across lanes; approximate under concurrency. *)

val is_empty : t -> bool

val stats : t -> string
(** Per-lane occupancy summary for diagnostics. *)

(** Long-running worker threads around a MultiQueue, with exact termination
    detection via an in-flight counter — the paper's bfs/sssp execution model
    ("long-running worker threads that pop tasks from the MQ then execute
    them (potentially pushing new tasks) until the MQ is empty"). *)
module Scheduler : sig
  type mq := t
  type sched

  val create : mq -> sched

  val push : sched -> pri:int -> int -> unit
  (** Seed or spawn a task. *)

  val run : sched -> num_workers:int -> handler:(sched -> pri:int -> int -> unit) -> unit
  (** Spawns [num_workers] domains that pop and run tasks until all work
      (including transitively pushed tasks) has drained, then joins them.
      [handler] may call {!push}.  Exceptions in handlers propagate after all
      workers stop. *)
end
