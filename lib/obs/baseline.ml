(* Committed perf baselines and noise-aware regression comparison.

   The store is a directory (bench/baselines/ in the repo) of standard
   Bench_json documents, one file per benchmark, each holding that
   benchmark's records across every measured (input, mode, threads, scale)
   configuration.  `rpb bench --save-baseline` merges fresh records into the
   store key-by-key; `rpb compare OLD NEW` classifies each shared key as
   improved / unchanged / regressed.

   The classifier is deliberately conservative on a noisy shared container:
   a configuration is only flagged when BOTH
     (a) the relative change in the robust point estimate (median of the
         per-repeat samples; mean for pre-v3 records without samples)
         exceeds the tolerance band — the band is the flat threshold
         widened by the measured per-repeat noise (MAD, in sigma units) of
         the two sample sets; and
     (b) a permutation test over the two raw sample vectors finds the shift
         significant (skipped, and treated as significant, when either side
         predates v3 and has no samples).
   Two runs of the same binary therefore compare as unchanged unless the
   timing distributions genuinely separated. *)

module J = Rpb_benchmarks.Bench_json

type key = {
  bench : string;
  input : string;
  mode : string;
  threads : int;
  scale : int;
  policy : string;
}

let key_of_record (r : J.record) =
  {
    bench = r.J.bench;
    input = r.J.input;
    mode = r.J.mode;
    threads = r.J.threads;
    scale = r.J.scale;
    (* Pre-policy records read back as "default" (Bench_json's read-side
       fallback), so committed baselines keep matching default-policy runs
       and only a non-default policy opens a new key. *)
    policy = r.J.policy;
  }

let key_to_string k =
  Printf.sprintf "%s/%s mode=%s t=%d s=%d%s" k.bench k.input k.mode k.threads
    k.scale
    (if k.policy = "default" then "" else " policy=" ^ k.policy)

(* ---------- the store ---------- *)

let is_json_file name =
  String.length name > 5 && Filename.check_suffix name ".json"

let load_dir dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.filter is_json_file
  |> List.concat_map (fun name -> J.read_doc (Filename.concat dir name))

let load path =
  if Sys.is_directory path then load_dir path else J.read_doc path

let save ~dir records =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let fresh = List.filter (fun (r : J.record) -> not r.J.smoke) records in
  let by_bench = Hashtbl.create 16 in
  List.iter
    (fun (r : J.record) ->
      Hashtbl.replace by_bench r.J.bench
        (r :: (Option.value ~default:[] (Hashtbl.find_opt by_bench r.J.bench))))
    (List.rev fresh);
  Hashtbl.fold (fun bench rs acc -> (bench, rs) :: acc) by_bench []
  |> List.sort compare
  |> List.map (fun (bench, rs) ->
         let path = Filename.concat dir (bench ^ ".json") in
         let existing = if Sys.file_exists path then J.read_doc path else [] in
         let fresh_keys = List.map key_of_record rs in
         let kept =
           List.filter
             (fun old -> not (List.mem (key_of_record old) fresh_keys))
             existing
         in
         J.write_doc ~path
           ~meta:
             [
               ("generator", J.Str "rpb-baseline");
               ("bench", J.Str bench);
             ]
           (kept @ rs);
         path)

(* ---------- comparison ---------- *)

type verdict = Improved | Unchanged | Regressed

let verdict_name = function
  | Improved -> "improved"
  | Unchanged -> "unchanged"
  | Regressed -> "regressed"

type comparison = {
  c_key : key;
  c_baseline : J.record;
  c_current : J.record;
  old_est_ns : float;
  new_est_ns : float;
  delta : float;  (* (new - old) / old *)
  band : float;  (* tolerance band the delta is judged against *)
  p_value : float option;  (* permutation p-value, when both sides sampled *)
  verdict : verdict;
}

type report = {
  threshold : float;
  alpha : float;
  noise_mult : float;
  comparisons : comparison list;
  only_baseline : key list;
  only_current : key list;
  smoke_skipped : int;
}

(* Robust point estimate of one record: median of the per-repeat samples,
   falling back to the stored mean for pre-v3 records. *)
let estimate_ns (r : J.record) =
  if Array.length r.J.samples_ns >= 1 then Stats.median r.J.samples_ns
  else r.J.mean_ns

(* Per-repeat noise in sigma units; 0 with fewer than 3 samples (the MAD of
   1–2 points is meaningless and must not shrink or grow the band). *)
let sigma_ns (r : J.record) =
  if Array.length r.J.samples_ns >= 3 then Stats.mad_sigma r.J.samples_ns
  else 0.0

(* Only test when both sides carry enough samples for the permutation
   distribution to have any resolution. *)
let min_samples_for_test = 3

let compare_one ~threshold ~alpha ~noise_mult ~seed (old_r : J.record)
    (new_r : J.record) =
  let old_est = estimate_ns old_r and new_est = estimate_ns new_r in
  let delta =
    if old_est > 0.0 then (new_est -. old_est) /. old_est else 0.0
  in
  let band =
    if old_est > 0.0 then
      Float.max threshold
        (noise_mult *. (sigma_ns old_r +. sigma_ns new_r) /. old_est)
    else threshold
  in
  let p_value =
    if
      Array.length old_r.J.samples_ns >= min_samples_for_test
      && Array.length new_r.J.samples_ns >= min_samples_for_test
    then
      Some
        (Stats.permutation_test ~seed old_r.J.samples_ns new_r.J.samples_ns)
    else None
  in
  let significant =
    match p_value with Some p -> p < alpha | None -> true
  in
  let verdict =
    if delta > band && significant then Regressed
    else if delta < -.band && significant then Improved
    else Unchanged
  in
  {
    c_key = key_of_record old_r;
    c_baseline = old_r;
    c_current = new_r;
    old_est_ns = old_est;
    new_est_ns = new_est;
    delta;
    band;
    p_value;
    verdict;
  }

let compare_records ?(threshold = 0.10) ?(alpha = 0.05) ?(noise_mult = 3.0)
    ?(seed = 42) ~baseline ~current () =
  let live rs = List.filter (fun (r : J.record) -> not r.J.smoke) rs in
  let smoke_skipped =
    List.length baseline + List.length current
    - (List.length (live baseline) + List.length (live current))
  in
  (* Last record wins per key, so a document appending a re-run supersedes
     the earlier record, matching the store's merge rule. *)
  let index rs =
    let tbl = Hashtbl.create 64 in
    List.iter (fun r -> Hashtbl.replace tbl (key_of_record r) r) (live rs);
    tbl
  in
  let old_tbl = index baseline and new_tbl = index current in
  let keys_of tbl =
    Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare
  in
  let comparisons =
    List.filter_map
      (fun k ->
        match Hashtbl.find_opt new_tbl k with
        | Some new_r ->
          Some
            (compare_one ~threshold ~alpha ~noise_mult ~seed
               (Hashtbl.find old_tbl k) new_r)
        | None -> None)
      (keys_of old_tbl)
  in
  {
    threshold;
    alpha;
    noise_mult;
    comparisons;
    only_baseline =
      List.filter (fun k -> not (Hashtbl.mem new_tbl k)) (keys_of old_tbl);
    only_current =
      List.filter (fun k -> not (Hashtbl.mem old_tbl k)) (keys_of new_tbl);
    smoke_skipped;
  }

let regressions r =
  List.filter (fun c -> c.verdict = Regressed) r.comparisons

let improvements r =
  List.filter (fun c -> c.verdict = Improved) r.comparisons

let ok r = regressions r = []

(* ---------- rendering ---------- *)

let summary r =
  let b = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf
    "compare: %d shared configurations (threshold %.1f%%, alpha %.2f, noise \
     band %gx MAD-sigma)\n"
    (List.length r.comparisons)
    (100.0 *. r.threshold) r.alpha r.noise_mult;
  if r.smoke_skipped > 0 then
    pf "  %d smoke record(s) excluded from the trajectory\n" r.smoke_skipped;
  pf "  %-34s %12s %12s %8s %8s %8s  %s\n" "configuration" "old" "new" "delta"
    "band" "p" "verdict";
  List.iter
    (fun c ->
      pf "  %-34s %10.3fms %10.3fms %+7.1f%% %7.1f%% %8s  %s\n"
        (key_to_string c.c_key) (c.old_est_ns /. 1e6) (c.new_est_ns /. 1e6)
        (100.0 *. c.delta) (100.0 *. c.band)
        (match c.p_value with
         | Some p -> Printf.sprintf "%.3f" p
         | None -> "-")
        (verdict_name c.verdict))
    r.comparisons;
  List.iter
    (fun k -> pf "  only in baseline: %s\n" (key_to_string k))
    r.only_baseline;
  List.iter
    (fun k -> pf "  new (no baseline): %s\n" (key_to_string k))
    r.only_current;
  let n_reg = List.length (regressions r)
  and n_imp = List.length (improvements r) in
  pf "verdict: %d regressed, %d improved, %d unchanged — %s\n" n_reg n_imp
    (List.length r.comparisons - n_reg - n_imp)
    (if ok r then "OK" else "REGRESSION");
  Buffer.contents b

let key_to_json k =
  J.Obj
    [
      ("bench", J.Str k.bench);
      ("input", J.Str k.input);
      ("mode", J.Str k.mode);
      ("threads", J.Int k.threads);
      ("scale", J.Int k.scale);
      ("policy", J.Str k.policy);
    ]

let comparison_to_json c =
  J.Obj
    [
      ("key", key_to_json c.c_key);
      ("old_est_ns", J.Float c.old_est_ns);
      ("new_est_ns", J.Float c.new_est_ns);
      ("delta", J.Float c.delta);
      ("band", J.Float c.band);
      ( "p_value",
        match c.p_value with None -> J.Null | Some p -> J.Float p );
      ("verdict", J.Str (verdict_name c.verdict));
    ]

let to_json r =
  J.Obj
    [
      ("schema_version", J.Int J.schema_version);
      ("kind", J.Str "compare");
      ("threshold", J.Float r.threshold);
      ("alpha", J.Float r.alpha);
      ("noise_mult", J.Float r.noise_mult);
      ("ok", J.Bool (ok r));
      ("smoke_skipped", J.Int r.smoke_skipped);
      ("comparisons", J.List (List.map comparison_to_json r.comparisons));
      ("only_baseline", J.List (List.map key_to_json r.only_baseline));
      ("only_current", J.List (List.map key_to_json r.only_current));
    ]

let write_json ~path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string (to_json r));
      output_char oc '\n')
