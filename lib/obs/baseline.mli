(** Committed perf baselines and noise-aware regression comparison.

    The store behind [rpb bench --save-baseline] and [rpb compare]: a
    directory of standard [Bench_json] documents (the repo commits
    [bench/baselines/]), one file per benchmark, merged key-by-key on save.
    Comparison classifies every configuration shared between a baseline and
    a fresh run as improved / unchanged / regressed, flagging a change only
    when the relative shift of the robust point estimate clears a
    noise-widened tolerance band {e and} a permutation test over the raw
    per-repeat samples finds the shift significant. *)

type key = {
  bench : string;
  input : string;
  mode : string;
  threads : int;
  scale : int;
  policy : string;
      (** scheduling-policy name; pre-policy records read back as
          ["default"], so committed baselines keep matching default-policy
          runs *)
}
(** The identity of one measured configuration — the unit of comparison. *)

val key_of_record : Rpb_benchmarks.Bench_json.record -> key
val key_to_string : key -> string

(** {1 The store} *)

val save : dir:string -> Rpb_benchmarks.Bench_json.record list -> string list
(** Merge records into the baseline directory (created if missing), one
    [BENCH.json] document per benchmark: records whose {!key} matches an
    incoming record are replaced, others kept.  Smoke records are dropped.
    Returns the written file paths, sorted. *)

val load_dir : string -> Rpb_benchmarks.Bench_json.record list
(** All records of every [*.json] document directly under the directory, in
    filename order. *)

val load : string -> Rpb_benchmarks.Bench_json.record list
(** [load path] — {!load_dir} when [path] is a directory, otherwise
    [Bench_json.read_doc]. *)

(** {1 Comparison} *)

val estimate_ns : Rpb_benchmarks.Bench_json.record -> float
(** The robust point estimate a record is judged by: median of its
    per-repeat samples, falling back to the stored mean for pre-v3 records
    without samples. *)

type verdict = Improved | Unchanged | Regressed

val verdict_name : verdict -> string

type comparison = {
  c_key : key;
  c_baseline : Rpb_benchmarks.Bench_json.record;
  c_current : Rpb_benchmarks.Bench_json.record;
  old_est_ns : float;  (** median of samples; mean for pre-v3 records *)
  new_est_ns : float;
  delta : float;  (** [(new - old) / old] *)
  band : float;
      (** the tolerance the delta was judged against:
          [max threshold (noise_mult * (sigma_old + sigma_new) / old)] with
          sigma the MAD in sigma units (0 under 3 samples) *)
  p_value : float option;
      (** permutation-test p-value over the two sample vectors; [None] when
          either side has fewer than 3 samples (the band then decides
          alone) *)
  verdict : verdict;
}

type report = {
  threshold : float;
  alpha : float;
  noise_mult : float;
  comparisons : comparison list;  (** shared keys, sorted *)
  only_baseline : key list;  (** configurations that disappeared *)
  only_current : key list;  (** configurations without a baseline yet *)
  smoke_skipped : int;  (** smoke-flagged records excluded from both sides *)
}

val compare_records :
  ?threshold:float ->
  ?alpha:float ->
  ?noise_mult:float ->
  ?seed:int ->
  baseline:Rpb_benchmarks.Bench_json.record list ->
  current:Rpb_benchmarks.Bench_json.record list ->
  unit ->
  report
(** Defaults: [threshold = 0.10] (10% flat band), [alpha = 0.05],
    [noise_mult = 3.0], [seed = 42] (the permutation test is deterministic
    in it).  Duplicate keys within one side: the last record wins.  A
    verdict other than [Unchanged] requires both the band and the
    significance test to agree, so two runs of the same binary classify as
    unchanged at the default threshold. *)

val regressions : report -> comparison list
val improvements : report -> comparison list

val ok : report -> bool
(** No regressions (the CI perf-gate predicate). *)

val summary : report -> string
(** Human-readable table, one line per shared configuration. *)

val to_json : report -> Rpb_benchmarks.Bench_json.json
(** The [kind = "compare"] document CI archives next to the report. *)

val write_json : path:string -> report -> unit
