(* Process-global live metrics registry.  See metrics.mli for the model;
   the short version: named counters/gauges/histograms behind one atomic
   enable flag, counters and histograms striped per domain in
   cache-line-padded slabs (plain racy increments, merge at snapshot), and
   a [kind="metrics"] JSON snapshot as the one export format. *)

module Pool = Rpb_pool.Pool
module J = Rpb_benchmarks.Bench_json

(* ------------------------------------------------------------------ *)
(* The switch *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

let enable () =
  Atomic.set enabled_flag true;
  (* The metrics plane being on is what makes the pool's per-worker GC
     probe worth its gated sample. *)
  Pool.set_gc_sampling true

let disable () =
  Atomic.set enabled_flag false;
  Pool.set_gc_sampling false

(* ------------------------------------------------------------------ *)
(* Stripes *)

let n_stripes = 8

(* Fold the domain's id onto a stripe.  Domains on the same stripe race
   with plain increments — acceptable for monotone diagnostics exactly as
   in the pool's counter slabs — but the common writers (executor domain,
   pool workers, connection systhreads of one domain) each dominate a
   stripe of their own. *)
let stripe () = (Domain.self () :> int) land (n_stripes - 1)

(* One cache line of payload per stripe slab, same as the pool's. *)
let pad_slots = 8

type counter = { c_stripes : int array array }
type gauge = { mutable g_value : float }

(* 64 log2(ns) buckets + count + sum_ns, per stripe. *)
let hist_slots = 66
let slot_count = 64
let slot_sum = 65

type histogram = { h_stripes : int array array }

(* ------------------------------------------------------------------ *)
(* Registry *)

let reg_mutex = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 32
let probes : (string, unit -> float) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32
let seq = ref 0
let started_wall = Unix.gettimeofday ()
let started_mono = Rpb_prim.Timing.now ()

let locked f =
  Mutex.lock reg_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_mutex) f

let find_or_create tbl name make =
  locked (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some x -> x
      | None ->
        let x = make () in
        Hashtbl.replace tbl name x;
        x)

let counter name =
  find_or_create counters name (fun () ->
      { c_stripes = Array.init n_stripes (fun _ -> Array.make pad_slots 0) })

let gauge name = find_or_create gauges name (fun () -> { g_value = 0. })

let probe name f = locked (fun () -> Hashtbl.replace probes name f)

let histogram name =
  find_or_create histograms name (fun () ->
      { h_stripes = Array.init n_stripes (fun _ -> Array.make hist_slots 0) })

(* ------------------------------------------------------------------ *)
(* Hot paths.  Disabled: one atomic load, no allocation.  Enabled: the
   load, the stripe pick, and plain stores into the caller's slab. *)

let add c n =
  if Atomic.get enabled_flag then begin
    let s = c.c_stripes.(stripe ()) in
    s.(0) <- s.(0) + n
  end

let incr c = add c 1

let set_gauge g v = if Atomic.get enabled_flag then g.g_value <- v
let gauge_value g = g.g_value

let counter_value c =
  Array.fold_left (fun acc s -> acc + s.(0)) 0 c.c_stripes

let bucket_of_ns ns =
  if ns <= 1 then 0
  else begin
    let b = ref 0 and v = ref ns in
    while !v > 1 do
      v := !v lsr 1;
      Stdlib.incr b
    done;
    min !b 63
  end

let bucket_bounds_ns b =
  ((if b = 0 then 0. else Float.ldexp 1. b), Float.ldexp 1. (b + 1))

let observe_ns h ns =
  if Atomic.get enabled_flag then begin
    let s = h.h_stripes.(stripe ()) in
    let b = bucket_of_ns ns in
    s.(b) <- s.(b) + 1;
    s.(slot_count) <- s.(slot_count) + 1;
    s.(slot_sum) <- s.(slot_sum) + ns
  end

let observe_ms h ms = observe_ns h (int_of_float (ms *. 1e6))

(* ------------------------------------------------------------------ *)
(* Merging and percentiles *)

let hist_buckets h =
  let merged = Array.make 64 0 in
  Array.iter
    (fun s ->
      for b = 0 to 63 do
        merged.(b) <- merged.(b) + s.(b)
      done)
    h.h_stripes;
  merged

let hist_count h = Array.fold_left (fun acc s -> acc + s.(slot_count)) 0 h.h_stripes
let hist_sum_ns h = Array.fold_left (fun acc s -> acc + s.(slot_sum)) 0 h.h_stripes

let percentile_of_buckets_ms buckets q =
  let total = Array.fold_left ( + ) 0 buckets in
  if total = 0 then 0.
  else begin
    (* The rank is Stats' shared nearest-rank definition; only the
       in-bucket interpolation below is histogram-specific. *)
    let rank = Stats.nearest_rank ~count:total ~pct:q in
    let rec go b cum =
      if b > 63 then
        (* All counts consumed below the rank — numerically impossible, but
           degrade to the top bucket's upper bound. *)
        snd (bucket_bounds_ns 63) *. 1e-6
      else begin
        let k = buckets.(b) in
        if k > 0 && cum + k >= rank then begin
          let lo, hi = bucket_bounds_ns b in
          let p = float_of_int (rank - cum) /. float_of_int k in
          (lo +. ((hi -. lo) *. p)) *. 1e-6
        end
        else go (b + 1) (cum + k)
      end
    in
    go 0 0
  end

let percentile_ms h q = percentile_of_buckets_ms (hist_buckets h) q

(* ------------------------------------------------------------------ *)
(* Pool export: polled probes, so [lib/pool] needs no dependency on this
   library and an unpolled pool costs nothing. *)

let register_pool ?(prefix = "pool") pool =
  let p name f = probe (prefix ^ "." ^ name) f in
  p "workers" (fun () -> float_of_int (Pool.size pool));
  p "tasks" (fun () ->
      float_of_int (Pool.Stats.tasks_executed (Pool.Stats.capture pool)));
  p "steals_ok" (fun () ->
      float_of_int (Pool.Stats.steals_ok (Pool.Stats.capture pool)));
  p "steals_failed" (fun () ->
      float_of_int (Pool.Stats.steals_failed (Pool.Stats.capture pool)));
  p "idle_episodes" (fun () ->
      float_of_int (Pool.Stats.idle_episodes (Pool.Stats.capture pool)));
  p "deque_depth_total" (fun () ->
      float_of_int (Array.fold_left ( + ) 0 (Pool.deque_depths pool)));
  p "deque_depth_max" (fun () ->
      float_of_int (Array.fold_left max 0 (Pool.deque_depths pool)));
  p "timer_pending" (fun () -> float_of_int (Pool.Timer.pending_count ()));
  p "gc_minor_collections" (fun () ->
      float_of_int
        (Array.fold_left (fun acc (m, _) -> acc + m) 0 (Pool.gc_samples pool)));
  p "gc_minor_kwords" (fun () ->
      float_of_int
        (Array.fold_left (fun acc (_, kw) -> acc + kw) 0 (Pool.gc_samples pool)))

(* ------------------------------------------------------------------ *)
(* GC pause sampling via the runtime's own event stream, self-monitored.
   Begin/end pairs of the minor-collection and major-slice phases become
   pause samples in two histograms.  Everything is wrapped defensively:
   when the runtime refuses (sandboxes without a writable events file),
   the plane simply has no pause histograms. *)

let re_cursor : Runtime_events.cursor option ref = ref None
let re_callbacks : Runtime_events.Callbacks.t option ref = ref None

let phase_key phase =
  match phase with
  | Runtime_events.EV_MINOR -> Some 0
  | Runtime_events.EV_MAJOR_SLICE -> Some 1
  | _ -> None

let sample_gc_pauses () =
  match !re_cursor with
  | Some _ -> true
  | None -> (
    try
      Runtime_events.start ();
      let cursor = Runtime_events.create_cursor None in
      let minor_hist = histogram "gc.minor_pause_ns" in
      let major_hist = histogram "gc.major_slice_ns" in
      (* In-flight begins keyed by (ring domain, phase). *)
      let begins : (int * int, int64) Hashtbl.t = Hashtbl.create 16 in
      let runtime_begin ring ts phase =
        match phase_key phase with
        | Some k ->
          Hashtbl.replace begins (ring, k)
            (Runtime_events.Timestamp.to_int64 ts)
        | None -> ()
      in
      let runtime_end ring ts phase =
        match phase_key phase with
        | Some k -> (
          match Hashtbl.find_opt begins (ring, k) with
          | Some t0 ->
            Hashtbl.remove begins (ring, k);
            let dur =
              Int64.to_int
                (Int64.sub (Runtime_events.Timestamp.to_int64 ts) t0)
            in
            if dur >= 0 then
              observe_ns (if k = 0 then minor_hist else major_hist) dur
          | None -> ())
        | None -> ()
      in
      re_callbacks :=
        Some (Runtime_events.Callbacks.create ~runtime_begin ~runtime_end ());
      re_cursor := Some cursor;
      true
    with _ ->
      re_cursor := None;
      re_callbacks := None;
      false)

let poll_gc_events () =
  match (!re_cursor, !re_callbacks) with
  | Some cursor, Some callbacks -> (
    try Runtime_events.read_poll cursor callbacks None with _ -> 0)
  | _ -> 0

(* ------------------------------------------------------------------ *)
(* Snapshot *)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let float_json v =
  if Float.is_finite v then J.Float v else J.Null

let hist_json h =
  let buckets = hist_buckets h in
  let count = hist_count h in
  let nonzero = ref [] in
  for b = 63 downto 0 do
    if buckets.(b) > 0 then
      nonzero := J.List [ J.Int b; J.Int buckets.(b) ] :: !nonzero
  done;
  let max_ms =
    let rec top b = if b < 0 then 0. else if buckets.(b) > 0 then snd (bucket_bounds_ns b) *. 1e-6 else top (b - 1) in
    top 63
  in
  J.Obj
    [
      ("count", J.Int count);
      ("sum_ns", J.Int (hist_sum_ns h));
      ( "mean_ms",
        float_json
          (if count = 0 then 0.
           else float_of_int (hist_sum_ns h) /. float_of_int count *. 1e-6) );
      ("p50_ms", J.Float (percentile_of_buckets_ms buckets 50.));
      ("p95_ms", J.Float (percentile_of_buckets_ms buckets 95.));
      ("p99_ms", J.Float (percentile_of_buckets_ms buckets 99.));
      ("max_ms", J.Float max_ms);
      ("buckets", J.List !nonzero);
    ]

let snapshot () =
  ignore (poll_gc_events ());
  (* Collect instrument lists under the lock; evaluate probe closures
     outside it so a probe can never deadlock against registration. *)
  let cs, gs, ps, hs, n =
    locked (fun () ->
        Stdlib.incr seq;
        ( sorted_bindings counters,
          sorted_bindings gauges,
          sorted_bindings probes,
          sorted_bindings histograms,
          !seq ))
  in
  let gauge_fields =
    List.map (fun (name, g) -> (name, float_json g.g_value)) gs
    @ List.map
        (fun (name, f) ->
          (name, float_json (try f () with _ -> Float.nan)))
        ps
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  J.Obj
    [
      ("schema_version", J.Int J.schema_version);
      ("kind", J.Str "metrics");
      ("seq", J.Int n);
      ("ts_s", J.Float (Unix.gettimeofday ()));
      ("uptime_s", J.Float (Rpb_prim.Timing.now () -. started_mono));
      ("started_s", J.Float started_wall);
      ("enabled", J.Bool (enabled ()));
      ( "counters",
        J.Obj (List.map (fun (name, c) -> (name, J.Int (counter_value c))) cs)
      );
      ("gauges", J.Obj gauge_fields);
      ("histograms", J.Obj (List.map (fun (name, h) -> (name, hist_json h)) hs));
    ]

let write_snapshot_line oc =
  output_string oc (J.to_string (snapshot ()));
  output_char oc '\n';
  flush oc

let reset () =
  locked (fun () ->
      seq := 0;
      Hashtbl.iter
        (fun _ c -> Array.iter (fun s -> Array.fill s 0 pad_slots 0) c.c_stripes)
        counters;
      Hashtbl.iter (fun _ g -> g.g_value <- 0.) gauges;
      Hashtbl.iter
        (fun _ h ->
          Array.iter (fun s -> Array.fill s 0 hist_slots 0) h.h_stripes)
        histograms)
