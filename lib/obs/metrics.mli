(** Process-global live metrics registry: the in-process telemetry plane
    behind [rpb serve]'s [stats] verb, [rpb top], and
    [--metrics-interval] JSONL streams.

    Three instrument kinds, all named, all process-global:

    - {e counters} — monotone integers, striped across domains: each of the
      {!n_stripes} stripes is its own cache-line-padded slab and a writer
      picks its stripe from its domain id, so concurrent increments from
      different domains (serve's executor, connection systhreads, pool
      workers) never contend on one cache line.  Increments are plain
      (racy) stores in the {!Rpb_pool.Pool.Stats} mold: per-stripe a single
      writer domain dominates, and the aggregation in {!snapshot} tolerates
      torn interleavings because the values are monotone diagnostics.
    - {e gauges} — last-writer-wins floats, plus {e probes}: registered
      closures evaluated at snapshot time, which is how pool-level state
      (deque depths, timer-wheel occupancy, GC samples) is exported without
      [lib/pool] depending on this library.
    - {e histograms} — fixed 64-bucket log2(nanoseconds) latency
      histograms, striped like counters.  Bucket [b] holds samples in
      [\[2^b, 2^(b+1))] ns (bucket 0 also absorbs <= 1 ns); merge is
      bucketwise addition, and percentiles interpolate linearly inside the
      winning bucket.

    {2 The switch}

    The whole plane sits behind one process-global enable flag in the
    {!Rpb_pool.Pool.Trace} idiom: while {!enabled} is false every
    instrument call costs exactly one atomic load and allocates nothing;
    while true, a counter bump is that load plus one plain array increment
    in the caller's own stripe.  {!enable} also arms the pool's per-worker
    GC probe ({!Rpb_pool.Pool.set_gc_sampling}).

    {2 Snapshots}

    {!snapshot} merges every stripe into one [kind="metrics"]
    {!Rpb_benchmarks.Bench_json} document: a monotone [seq] number, wall
    and monotonic timestamps, all counters, all gauges and probes, and all
    histograms (count, sum, percentiles, non-empty buckets).  Snapshots are
    point-in-time but not atomic across instruments — counters written
    while a snapshot runs may or may not land in it, yet each counter is
    itself monotone across snapshots, which is the invariant the CI
    metrics-smoke job asserts. *)

val n_stripes : int
(** Number of per-domain stripes per counter/histogram (a small power of
    two; domain ids are folded onto it). *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Zero every registered instrument and the snapshot [seq].  For tests;
    instruments stay registered. *)

(** {1 Instruments}

    Creation is find-or-create by name under a registry lock — do it at
    startup, not on hot paths.  Names are free-form; the convention is
    [layer.metric], e.g. [serve.ok], [pool.steals_ok], [gc.major_slice_ns]. *)

type counter
type gauge
type histogram

val counter : string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int
(** Merged (all-stripe) value. *)

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val probe : string -> (unit -> float) -> unit
(** Register (or replace) a polled gauge: the closure is evaluated at each
    {!snapshot}.  It must be cheap and must not raise — a raising probe
    reports [nan]. *)

val histogram : string -> histogram

val observe_ns : histogram -> int -> unit
val observe_ms : histogram -> float -> unit

val bucket_of_ns : int -> int
(** The log2 bucket index a sample lands in ([0..63]). *)

val bucket_bounds_ns : int -> float * float
(** [(inclusive lower, exclusive upper)] bounds of a bucket in ns. *)

val hist_count : histogram -> int
val hist_sum_ns : histogram -> int
val hist_buckets : histogram -> int array
(** Merged 64-bucket counts. *)

val percentile_ms : histogram -> float -> float
(** [percentile_ms h q] for [q] in [0..100], linearly interpolated inside
    the winning log2 bucket; [0.] on an empty histogram. *)

val percentile_of_buckets_ms : int array -> float -> float
(** Same, over an already-merged bucket array (e.g. parsed back out of a
    snapshot document by [rpb top]). *)

(** {1 Pool export} *)

val register_pool : ?prefix:string -> Rpb_pool.Pool.t -> unit
(** Register probes exporting a pool's scheduler state under
    [<prefix>.*] (default prefix ["pool"]): worker count, cumulative
    tasks/steals/failed-steals/idle episodes (from
    {!Rpb_pool.Pool.Stats.capture} — consumers take deltas), instantaneous
    total and max deque depth, timer-wheel occupancy, and the per-worker
    GC probe totals (minor collections, minor kwords).  Re-registering the
    same prefix replaces the probes (latest pool wins). *)

(** {1 GC pause sampling}

    Major-slice and minor pause observation via the runtime's own
    [Runtime_events] stream, self-monitored in-process: begin/end pairs of
    the minor-collection and major-slice runtime phases are folded into the
    [gc.minor_pause_ns] / [gc.major_slice_ns] histograms on each
    {!snapshot} (and on explicit {!poll_gc_events}). *)

val sample_gc_pauses : unit -> bool
(** Start runtime-events self-monitoring (idempotent).  [false] when the
    runtime refuses — callers degrade to no pause histograms. *)

val poll_gc_events : unit -> int
(** Drain pending runtime events into the pause histograms; returns the
    number of events consumed.  No-op (0) unless {!sample_gc_pauses}
    succeeded. *)

(** {1 Snapshots} *)

val snapshot : unit -> Rpb_benchmarks.Bench_json.json
(** The [kind="metrics"] document described above.  Bumps [seq]. *)

val write_snapshot_line : out_channel -> unit
(** Append [snapshot ()] as one JSON line (the [--metrics-interval] JSONL
    format) and flush. *)
