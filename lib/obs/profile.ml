module Pool = Rpb_pool.Pool
module J = Rpb_benchmarks.Bench_json
module Common = Rpb_benchmarks.Common
module Mode = Rpb_benchmarks.Mode
module Registry = Rpb_benchmarks.Registry

type report = {
  bench : string;
  input : string;
  size : string;
  mode : string;
  scale : int;
  threads : int;
  seed : int;
  elapsed_ns : float;
  verified : bool;
  workers : J.worker_stats list;
  policy : string;
  metrics : Sp_dag.t;
}

let profile ?input ?(mode = Mode.Unsafe) ?ring_capacity ?policy
    ?minor_heap_kb ~bench ~threads ~scale ~seed () =
  match Registry.find bench with
  | None -> invalid_arg ("unknown benchmark " ^ bench)
  | Some e ->
    let input =
      match input with Some i -> i | None -> List.hd e.Common.inputs
    in
    (* Suite inputs are deterministically self-seeded; [seed] is provenance
       for the emitted document (and seeds [Random] for any future benchmark
       that consults it). *)
    Random.init seed;
    let pool = Pool.create ?policy ?minor_heap_kb ~num_workers:threads () in
    Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
    Pool.run pool (fun () ->
        let prepared = e.Common.prepare pool ~input ~scale in
        let run () = prepared.Common.run_par mode in
        run ();
        (* warm-up, unrecorded *)
        let before = Pool.Stats.capture pool in
        Pool.Recorder.start ?ring_capacity
          ~policy_name:(Pool.policy_name pool) ();
        let t0 = Rpb_prim.Timing.monotonic_ns () in
        Pool.Recorder.with_root run;
        let t1 = Rpb_prim.Timing.monotonic_ns () in
        let recording = Pool.Recorder.stop () in
        let after = Pool.Stats.capture pool in
        let verified = prepared.Common.verify () in
        {
          bench = e.Common.name;
          input;
          size = prepared.Common.size;
          mode = Mode.name mode;
          scale;
          threads = Pool.size pool;
          seed;
          elapsed_ns = float_of_int (t1 - t0);
          verified;
          workers = J.workers_of_pool_stats (Pool.Stats.diff ~before ~after);
          policy = Pool.policy_name pool;
          metrics = Sp_dag.analyze recording;
        })

(* ---------- human-readable report ---------- *)

let ns_str f =
  if f >= 1e9 then Printf.sprintf "%.3f s" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.3f ms" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.3f us" (f /. 1e3)
  else Printf.sprintf "%.0f ns" f

let ins_str n = ns_str (float_of_int n)

let summary r =
  let m = r.metrics in
  let b = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "profile: %s input=%s (%s) mode=%s threads=%d scale=%d seed=%d%s\n"
    r.bench r.input r.size r.mode r.threads r.scale r.seed
    (if r.policy = "default" then "" else " policy=" ^ r.policy);
  pf "  elapsed               %s  [%s]\n" (ns_str r.elapsed_ns)
    (if r.verified then "verified" else "VERIFICATION FAILED");
  pf "  work (T1)             %s\n" (ins_str m.Sp_dag.work_ns);
  pf "  span (Tinf)           %s\n" (ins_str m.Sp_dag.span_ns);
  pf "  parallelism           %.2f\n" m.Sp_dag.parallelism;
  pf "  burdened span         %s\n" (ins_str m.Sp_dag.burdened_span_ns);
  pf "  burdened parallelism  %.2f\n" m.Sp_dag.burdened_parallelism;
  pf "  load imbalance        %.2f\n" (Sp_dag.load_imbalance m);
  pf "  constructs %d  tasks %d  steals %d  queue delay %s  idle %s\n"
    m.Sp_dag.constructs m.Sp_dag.tasks m.Sp_dag.steals
    (ins_str m.Sp_dag.queue_delay_ns) (ins_str m.Sp_dag.idle_ns);
  pf "  events %d  dropped %d%s\n" m.Sp_dag.events m.Sp_dag.dropped
    (if m.Sp_dag.dropped > 0 then "  (rings overflowed; metrics are partial)"
     else "");
  if m.Sp_dag.granularity <> [] then begin
    pf "\n  leaf granularity (log2 ns buckets):\n";
    let mx =
      List.fold_left (fun acc (_, n) -> max acc n) 1 m.Sp_dag.granularity
    in
    List.iter
      (fun (k, n) ->
        let bar = max 1 (n * 40 / mx) in
        pf "    [2^%-2d, 2^%-2d) ns  %-40s %d\n" k (k + 1) (String.make bar '#')
          n)
      m.Sp_dag.granularity
  end;
  if m.Sp_dag.phases <> [] then begin
    pf "\n  phases:\n";
    List.iter
      (fun (p : Sp_dag.phase) ->
        pf "    %-24s %6d x  total %s\n" p.Sp_dag.name p.Sp_dag.count
          (ins_str p.Sp_dag.total_ns))
      m.Sp_dag.phases
  end;
  if m.Sp_dag.per_worker <> [] then begin
    pf "\n  per worker:\n";
    pf "    %-4s %12s %12s %8s %8s %10s %10s\n" "w" "work" "idle" "steals"
      "tasks" "minor_gc" "major_gc";
    List.iter
      (fun (w : Sp_dag.worker) ->
        pf "    %-4d %12s %12s %8d %8d %10d %10d\n" w.Sp_dag.w
          (ins_str w.Sp_dag.work_ns) (ins_str w.Sp_dag.idle_ns)
          w.Sp_dag.steals w.Sp_dag.tasks w.Sp_dag.minor_collections
          w.Sp_dag.major_collections)
      m.Sp_dag.per_worker
  end;
  pf "\n  predicted speedup (burdened estimate .. DAG upper bound):\n";
  pf "    %-4s %-10s %s\n" "p" "burdened" "upper";
  for p = 1 to max 1 r.threads do
    pf "    %-4d %-10.2f %.2f\n" p
      (Sp_dag.predicted_speedup m p)
      (Float.min (float_of_int p) m.Sp_dag.parallelism)
  done;
  Buffer.contents b

(* ---------- JSON (Bench_json schema v2, kind "profile") ---------- *)

let worker_to_json (w : Sp_dag.worker) =
  J.Obj
    [
      ("id", J.Int w.Sp_dag.w);
      ("work_ns", J.Int w.Sp_dag.work_ns);
      ("idle_ns", J.Int w.Sp_dag.idle_ns);
      ("steals", J.Int w.Sp_dag.steals);
      ("tasks", J.Int w.Sp_dag.tasks);
      ("minor_collections", J.Int w.Sp_dag.minor_collections);
      ("major_collections", J.Int w.Sp_dag.major_collections);
      ("promoted_words", J.Float w.Sp_dag.promoted_words);
      ("minor_words", J.Float w.Sp_dag.minor_words);
    ]

let worker_of_json j : Sp_dag.worker =
  {
    Sp_dag.w = J.get_int (J.member "id" j);
    work_ns = J.get_int (J.member "work_ns" j);
    idle_ns = J.get_int (J.member "idle_ns" j);
    steals = J.get_int (J.member "steals" j);
    tasks = J.get_int (J.member "tasks" j);
    minor_collections = J.get_int (J.member "minor_collections" j);
    major_collections = J.get_int (J.member "major_collections" j);
    promoted_words = J.get_float (J.member "promoted_words" j);
    minor_words = J.get_float (J.member "minor_words" j);
  }

let metrics_to_json (m : Sp_dag.t) threads =
  J.Obj
    [
      ("work_ns", J.Int m.Sp_dag.work_ns);
      ("span_ns", J.Int m.Sp_dag.span_ns);
      ("burdened_span_ns", J.Int m.Sp_dag.burdened_span_ns);
      ("parallelism", J.Float m.Sp_dag.parallelism);
      ("burdened_parallelism", J.Float m.Sp_dag.burdened_parallelism);
      ("constructs", J.Int m.Sp_dag.constructs);
      ("tasks", J.Int m.Sp_dag.tasks);
      ("steals", J.Int m.Sp_dag.steals);
      ("idle_ns", J.Int m.Sp_dag.idle_ns);
      ("queue_delay_ns", J.Int m.Sp_dag.queue_delay_ns);
      ("events", J.Int m.Sp_dag.events);
      ("dropped", J.Int m.Sp_dag.dropped);
      ("policy", J.Str m.Sp_dag.policy);
      ("load_imbalance", J.Float (Sp_dag.load_imbalance m));
      ( "granularity",
        J.List
          (List.map
             (fun (k, n) ->
               J.Obj [ ("log2_ns", J.Int k); ("count", J.Int n) ])
             m.Sp_dag.granularity) );
      ( "phases",
        J.List
          (List.map
             (fun (p : Sp_dag.phase) ->
               J.Obj
                 [
                   ("name", J.Str p.Sp_dag.name);
                   ("count", J.Int p.Sp_dag.count);
                   ("total_ns", J.Int p.Sp_dag.total_ns);
                 ])
             m.Sp_dag.phases) );
      ("workers", J.List (List.map worker_to_json m.Sp_dag.per_worker));
      ( "predicted_speedup",
        J.List
          (List.init (max 1 threads) (fun i ->
               J.Obj
                 [
                   ("threads", J.Int (i + 1));
                   ("speedup", J.Float (Sp_dag.predicted_speedup m (i + 1)));
                   ( "upper",
                     J.Float
                       (Float.min (float_of_int (i + 1)) m.Sp_dag.parallelism)
                   );
                 ])) );
    ]

let metrics_of_json j : Sp_dag.t =
  {
    Sp_dag.work_ns = J.get_int (J.member "work_ns" j);
    span_ns = J.get_int (J.member "span_ns" j);
    burdened_span_ns = J.get_int (J.member "burdened_span_ns" j);
    parallelism = J.get_float (J.member "parallelism" j);
    burdened_parallelism = J.get_float (J.member "burdened_parallelism" j);
    constructs = J.get_int (J.member "constructs" j);
    tasks = J.get_int (J.member "tasks" j);
    steals = J.get_int (J.member "steals" j);
    idle_ns = J.get_int (J.member "idle_ns" j);
    queue_delay_ns = J.get_int (J.member "queue_delay_ns" j);
    events = J.get_int (J.member "events" j);
    dropped = J.get_int (J.member "dropped" j);
    per_worker =
      List.map worker_of_json (J.get_list (J.member "workers" j));
    phases =
      List.map
        (fun p ->
          {
            Sp_dag.name = J.get_str (J.member "name" p);
            count = J.get_int (J.member "count" p);
            total_ns = J.get_int (J.member "total_ns" p);
          })
        (J.get_list (J.member "phases" j));
    granularity =
      List.map
        (fun g ->
          (J.get_int (J.member "log2_ns" g), J.get_int (J.member "count" g)))
        (J.get_list (J.member "granularity" j));
    (* Additive field: absent in documents written before policies. *)
    policy =
      (match J.member_opt "policy" j with
       | None | Some J.Null -> "default"
       | Some p -> J.get_str p);
  }

let record_of_report r =
  {
    J.bench = r.bench;
    input = r.input;
    mode = r.mode;
    scale = r.scale;
    threads = r.threads;
    repeats = 1;
    mean_ns = r.elapsed_ns;
    min_ns = r.elapsed_ns;
    samples_ns = [| r.elapsed_ns |];
    smoke = false;
    policy = r.policy;
    verified = r.verified;
    workers = r.workers;
  }

let to_json r =
  J.Obj
    [
      ("schema_version", J.Int J.schema_version);
      ("kind", J.Str "profile");
      ( "meta",
        J.Obj
          [
            ("generator", J.Str "rpb-profile");
            ("seed", J.Int r.seed);
            ("size", J.Str r.size);
          ] );
      (* The standard results array: plain [Bench_json.records_of_doc] (and
         v1-era consumers) read profile files as one benchmark record. *)
      ("results", J.List [ J.record_to_json (record_of_report r) ]);
      ("profile", metrics_to_json r.metrics r.threads);
    ]

let of_json j =
  let v = J.get_int (J.member "schema_version" j) in
  if not (List.mem v J.accepted_schema_versions) then
    raise
      (J.Parse_error (Printf.sprintf "unsupported schema_version %d" v));
  let rc =
    match J.get_list (J.member "results" j) with
    | [ r ] -> J.record_of_json r
    | _ -> raise (J.Parse_error "profile document must hold one result")
  in
  let meta = J.member "meta" j in
  {
    bench = rc.J.bench;
    input = rc.J.input;
    size = J.get_str (J.member "size" meta);
    mode = rc.J.mode;
    scale = rc.J.scale;
    threads = rc.J.threads;
    seed = J.get_int (J.member "seed" meta);
    elapsed_ns = rc.J.mean_ns;
    verified = rc.J.verified;
    workers = rc.J.workers;
    policy = rc.J.policy;
    metrics = metrics_of_json (J.member "profile" j);
  }

let write_json ~path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string (to_json r));
      output_char oc '\n')

let read_json path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_json (J.of_string (really_input_string ic n)))
