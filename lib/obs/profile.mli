(** The [rpb profile] driver: run one benchmark under the scheduler flight
    recorder and reduce the event stream to a work/span report.

    The profiled run is a single timed execution (after an unrecorded
    warm-up) of the benchmark's parallel implementation inside [Pool.run],
    bracketed by {!Rpb_pool.Pool.Recorder.with_root} so top-level compute is
    charged to the root strand.  The resulting {!report} carries both the
    standard benchmark record (so [PROFILE_*.json] files parse with plain
    [Bench_json.read_doc]) and the full {!Sp_dag.t} metrics. *)

type report = {
  bench : string;
  input : string;
  size : string;  (** human-readable input description from [prepare] *)
  mode : string;
  scale : int;
  threads : int;
  seed : int;  (** recorded for provenance; suite inputs are self-seeded *)
  elapsed_ns : float;  (** wall time of the recorded run *)
  verified : bool;
  workers : Rpb_benchmarks.Bench_json.worker_stats list;
      (** [Pool.Stats] counters across the recorded run *)
  policy : string;  (** scheduling-policy name the profiled pool ran under *)
  metrics : Sp_dag.t;
}

val profile :
  ?input:string ->
  ?mode:Rpb_benchmarks.Mode.t ->
  ?ring_capacity:int ->
  ?policy:Rpb_pool.Pool.Policy.t ->
  ?minor_heap_kb:int ->
  bench:string ->
  threads:int ->
  scale:int ->
  seed:int ->
  unit ->
  report
(** Run and analyze one benchmark configuration.  [input] defaults to the
    benchmark's first standard input, [mode] to [Unsafe] (the fastest
    parallel implementation — the one whose scaling the paper's tables
    question), [policy] to [Pool.Policy.default]; the policy name is stamped
    into the recording, the report, and the emitted document.
    [minor_heap_kb], when given, sizes each worker domain's minor heap for
    the profiled pool (see {!Rpb_pool.Pool.create}).
    @raise Invalid_argument on an unknown benchmark name. *)

val summary : report -> string
(** The human-readable report: work, span, parallelism, burdened
    parallelism, scheduler totals, leaf-granularity histogram, per-phase and
    per-worker tables, and the 1..P predicted-speedup curve. *)

val to_json : report -> Rpb_benchmarks.Bench_json.json
(** The [schema_version = 2] profile document: a standard [results] array
    with the run's benchmark record (so v1-style readers and
    [Bench_json.records_of_doc] still work on profile files), plus the
    ["profile"] section with the full metrics. *)

val of_json : Rpb_benchmarks.Bench_json.json -> report
(** Inverse of {!to_json} (derived outputs — the speedup curve — are
    recomputed, not parsed).  @raise Rpb_benchmarks.Bench_json.Parse_error
    on malformed documents. *)

val write_json : path:string -> report -> unit
val read_json : string -> report
