(* The unified `rpb report` dashboard.

   Merges every machine-readable artifact the harness emits — BENCH_*.json
   (benchmark records, schema v1..v3), PROFILE_*.json (work/span metrics),
   CHECK_*.json (differential oracle), FAULT_*.json (fault sweep) and
   compare documents — into one self-contained HTML file: no external
   assets, inline CSS and SVG only, light and dark mode from one set of
   custom properties.

   Chart conventions follow the repo's dashboard style contract: categorical
   series colors are assigned in fixed slot order (at most three per chart),
   all text wears ink tokens (never a series color), lines are 2px with
   ringed >=8px markers, bars are thin with a rounded data end and a square
   baseline, grids are solid hairlines, every chart carries a legend when it
   has two or more series plus a <details> table view, and SVG marks get
   native <title> tooltips. *)

module J = Rpb_benchmarks.Bench_json

type source = { path : string; kind : string }

type artifacts = {
  bench : J.record list;
  profiles : Profile.report list;
  checks : J.json list;
  faults : J.json list;
  compares : J.json list;
  serves : J.json list;
  metrics : J.json list;
  slos : J.json list;
  sources : source list;
  errors : (string * string) list;  (* path, message *)
}

let empty =
  {
    bench = [];
    profiles = [];
    checks = [];
    faults = [];
    compares = [];
    serves = [];
    metrics = [];
    slos = [];
    sources = [];
    errors = [];
  }

let classify_doc j =
  match J.member_opt "kind" j with
  | Some (J.Str k) -> k
  | _ -> "bench"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let add_doc acc j =
  match classify_doc j with
  | "profile" -> { acc with profiles = Profile.of_json j :: acc.profiles }
  | "check" -> { acc with checks = j :: acc.checks }
  | "fault" -> { acc with faults = j :: acc.faults }
  | "compare" -> { acc with compares = j :: acc.compares }
  | "serve" -> { acc with serves = j :: acc.serves }
  | "metrics" -> { acc with metrics = j :: acc.metrics }
  | "slo" -> { acc with slos = j :: acc.slos }
  | _ -> { acc with bench = acc.bench @ J.records_of_doc j }

let add_file acc path =
  match read_file path with
  | exception Sys_error msg -> { acc with errors = (path, msg) :: acc.errors }
  | content -> (
    match J.of_string content with
    | j ->
      let acc = add_doc acc j in
      { acc with sources = { path; kind = classify_doc j } :: acc.sources }
    | exception J.Parse_error msg -> (
      (* Not one document — maybe a JSONL stream (the --metrics-json
         format: snapshots interleaved with slow-request profiles).  Each
         line classifies on its own; the file parses if any line does. *)
      let docs =
        String.split_on_char '\n' content
        |> List.filter_map (fun line ->
               if String.trim line = "" then None
               else match J.of_string line with
                 | j -> Some j
                 | exception J.Parse_error _ -> None)
      in
      match docs with
      | [] -> { acc with errors = (path, msg) :: acc.errors }
      | docs ->
        let acc = List.fold_left add_doc acc docs in
        { acc with sources = { path; kind = "jsonl" } :: acc.sources }))

let load_files paths =
  let a = List.fold_left add_file empty paths in
  {
    a with
    profiles = List.rev a.profiles;
    checks = List.rev a.checks;
    faults = List.rev a.faults;
    compares = List.rev a.compares;
    serves = List.rev a.serves;
    metrics = List.rev a.metrics;
    slos = List.rev a.slos;
    sources = List.rev a.sources;
    errors = List.rev a.errors;
  }

(* ------------------------------------------------------------------ *)
(* Derived views of the benchmark records.                             *)

let estimate_ns = Baseline.estimate_ns

(* Speedup curves, Fig. 4-style: for every (bench, input, mode, scale) with
   at least two distinct thread counts, the speedup of each thread count
   relative to the group's baseline — the sequential record of the same
   (bench, input, scale) when one exists, otherwise the group's smallest
   thread count. *)
type curve = {
  curve_bench : string;
  curve_input : string;
  curve_mode : string;
  curve_scale : int;
  base_ns : float;
  base_label : string;  (* "seq" or "1t" *)
  points : (int * float * float) list;  (* threads, time ns, speedup *)
}

let speedup_curves records =
  let live = List.filter (fun (r : J.record) -> not r.J.smoke) records in
  let groups = Hashtbl.create 16 in
  List.iter
    (fun (r : J.record) ->
      if r.J.mode <> "seq" then begin
        let k = (r.J.bench, r.J.input, r.J.mode, r.J.scale) in
        Hashtbl.replace groups k
          (r :: Option.value ~default:[] (Hashtbl.find_opt groups k))
      end)
    live;
  let seq_base bench input scale =
    List.find_opt
      (fun (r : J.record) ->
        r.J.mode = "seq" && r.J.bench = bench && r.J.input = input
        && r.J.scale = scale)
      live
  in
  Hashtbl.fold (fun k rs acc -> (k, rs) :: acc) groups []
  |> List.sort compare
  |> List.filter_map (fun ((bench, input, mode, scale), rs) ->
         (* Last record per thread count wins, matching Baseline. *)
         let by_threads = Hashtbl.create 8 in
         List.iter
           (fun (r : J.record) -> Hashtbl.replace by_threads r.J.threads r)
           (List.rev rs)
         |> ignore;
         let pts =
           Hashtbl.fold (fun t r acc -> (t, r) :: acc) by_threads []
           |> List.sort compare
         in
         if List.length pts < 2 then None
         else begin
           let base_ns, base_label =
             match seq_base bench input scale with
             | Some r -> (estimate_ns r, "seq")
             | None ->
               let _, r = List.hd pts in
               (estimate_ns r, "1t")
           in
           if base_ns <= 0.0 then None
           else
             Some
               {
                 curve_bench = bench;
                 curve_input = input;
                 curve_mode = mode;
                 curve_scale = scale;
                 base_ns;
                 base_label;
                 points =
                   List.map
                     (fun (t, r) ->
                       let ns = estimate_ns r in
                       (t, ns, if ns > 0.0 then base_ns /. ns else 0.0))
                     pts;
               }
         end)

(* Fear-spectrum overheads, Fig. 5-style: checked/unsafe and sync/unsafe
   ratios for every configuration measured in both modes. *)
type overhead = {
  o_bench : string;
  o_input : string;
  o_threads : int;
  o_scale : int;
  o_vs : string;  (* "checked" | "sync" *)
  o_unsafe_ns : float;
  o_other_ns : float;
  o_ratio : float;
}

let overheads records =
  let live = List.filter (fun (r : J.record) -> not r.J.smoke) records in
  let index = Hashtbl.create 32 in
  List.iter
    (fun (r : J.record) ->
      Hashtbl.replace index
        (r.J.bench, r.J.input, r.J.mode, r.J.threads, r.J.scale)
        r)
    live;
  List.concat_map
    (fun (r : J.record) ->
      if r.J.mode <> "unsafe" then []
      else
        let u = estimate_ns r in
        List.filter_map
          (fun vs ->
            match
              Hashtbl.find_opt index
                (r.J.bench, r.J.input, vs, r.J.threads, r.J.scale)
            with
            | Some other when u > 0.0 ->
              let o = estimate_ns other in
              Some
                {
                  o_bench = r.J.bench;
                  o_input = r.J.input;
                  o_threads = r.J.threads;
                  o_scale = r.J.scale;
                  o_vs = vs;
                  o_unsafe_ns = u;
                  o_other_ns = o;
                  o_ratio = o /. u;
                }
            | _ -> None)
          [ "checked"; "sync" ])
    live
  |> List.sort_uniq compare

(* Policy race: configurations measured under two or more scheduling
   policies.  One row per (bench, input, mode, threads, scale), the
   per-policy estimates side by side, the winner being the smallest
   estimate; benchmarks are labelled with their fear tier (worst
   access-pattern safety class from the registry) so the table reads as
   "which policy wins where on the fear spectrum". *)
type race = {
  pr_bench : string;
  pr_tier : string;  (* "F" | "C" | "S" | "?" *)
  pr_input : string;
  pr_mode : string;
  pr_threads : int;
  pr_scale : int;
  pr_times : (string * float) list;  (* policy -> estimate ns, sorted *)
  pr_winner : string;
}

let fear_tier bench =
  match Rpb_benchmarks.Registry.find bench with
  | None -> "?"
  | Some e ->
    let module P = Rpb_core.Pattern in
    let rank = function
      | P.Fearless -> 0
      | P.Comfortable -> 1
      | P.Scared -> 2
    in
    let worst =
      List.fold_left
        (fun acc a ->
          let f = P.safety a in
          if rank f > rank acc then f else acc)
        P.Fearless e.Rpb_benchmarks.Common.patterns
    in
    P.fear_name worst

let policy_races records =
  let live = List.filter (fun (r : J.record) -> not r.J.smoke) records in
  let groups = Hashtbl.create 16 in
  List.iter
    (fun (r : J.record) ->
      let k = (r.J.bench, r.J.input, r.J.mode, r.J.threads, r.J.scale) in
      Hashtbl.replace groups k
        (r :: Option.value ~default:[] (Hashtbl.find_opt groups k)))
    live;
  Hashtbl.fold (fun k rs acc -> (k, rs) :: acc) groups []
  |> List.sort compare
  |> List.filter_map (fun ((bench, input, mode, threads, scale), rs) ->
         (* Last record per policy wins, matching Baseline's merge rule. *)
         let by_policy = Hashtbl.create 8 in
         List.iter
           (fun (r : J.record) -> Hashtbl.replace by_policy r.J.policy r)
           (List.rev rs);
         let times =
           Hashtbl.fold
             (fun p r acc -> (p, estimate_ns r) :: acc)
             by_policy []
           |> List.sort compare
         in
         if List.length times < 2 then None
         else
           let winner, _ =
             List.fold_left
               (fun (wp, wns) (p, ns) ->
                 if ns < wns then (p, ns) else (wp, wns))
               (List.hd times) (List.tl times)
           in
           Some
             {
               pr_bench = bench;
               pr_tier = fear_tier bench;
               pr_input = input;
               pr_mode = mode;
               pr_threads = threads;
               pr_scale = scale;
               pr_times = times;
               pr_winner = winner;
             })

(* ------------------------------------------------------------------ *)
(* HTML helpers.                                                       *)

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let ms ns = Printf.sprintf "%.3f" (ns /. 1e6)

(* Categorical slots 1-3 of the validated reference palette (the only slots
   cleared for all-pairs use), surfaces, inks and the status steps; dark
   values are the documented dark-surface steps, not an automatic flip. *)
let css =
  {css|
:root { color-scheme: light; }
body {
  margin: 0; background: var(--page);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  color: var(--ink); line-height: 1.45;
}
.viz-root {
  --page: #f9f9f7; --surface-1: #fcfcfb;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --good: #0ca30c; --warning: #fab219; --serious: #ec835a;
  --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --page: #0d0d0d; --surface-1: #1a1a19;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
  }
}
main { max-width: 1080px; margin: 0 auto; padding: 24px 20px 64px; }
h1 { font-size: 22px; margin: 8px 0 2px; }
h2 { font-size: 17px; margin: 36px 0 4px; }
.sub { color: var(--ink-2); font-size: 13px; margin: 0 0 12px; }
.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 14px 16px; margin: 10px 0;
}
.cards { display: flex; flex-wrap: wrap; gap: 10px; }
.cards .card { margin: 0; }
table { border-collapse: collapse; font-size: 13px; width: 100%; }
th {
  text-align: left; color: var(--muted); font-weight: 600;
  border-bottom: 1px solid var(--baseline); padding: 4px 10px 4px 0;
}
td {
  padding: 3px 10px 3px 0; border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}
td.l { font-variant-numeric: normal; }
.num { text-align: right; }
th.num { text-align: right; }
.tile { min-width: 128px; }
.tile .label { color: var(--ink-2); font-size: 12px; }
.tile .value { font-size: 26px; font-weight: 600; }
.tile .hint { color: var(--muted); font-size: 11px; }
.badge {
  display: inline-block; font-size: 11px; font-weight: 600;
  border-radius: 999px; padding: 1px 8px; border: 1px solid var(--border);
}
.badge::before { margin-right: 4px; }
.badge.ok { color: var(--good); } .badge.ok::before { content: "✓"; }
.badge.bad { color: var(--critical); } .badge.bad::before { content: "✗"; }
.badge.warn { color: var(--serious); } .badge.warn::before { content: "▲"; }
.badge.flat { color: var(--ink-2); } .badge.flat::before { content: "•"; }
.legend { font-size: 12px; color: var(--ink-2); margin: 2px 0 6px; }
.legend .key {
  display: inline-block; width: 14px; height: 3px; border-radius: 2px;
  vertical-align: middle; margin: 0 4px 0 10px;
}
.grid-charts {
  display: grid; gap: 12px;
  grid-template-columns: repeat(auto-fill, minmax(300px, 1fr));
}
details { margin: 6px 0 0; }
summary { color: var(--muted); font-size: 12px; cursor: pointer; }
svg text { fill: var(--muted); font-size: 10px; font-family: inherit; }
svg .t { fill: var(--ink-2); font-size: 11px; }
footer { color: var(--muted); font-size: 12px; margin-top: 40px; }
code { font-size: 12px; }
|css}

let series_var = function
  | 0 -> "var(--series-1)"
  | 1 -> "var(--series-2)"
  | _ -> "var(--series-3)"

(* A small line chart: x thread counts, y values, <=3 series, solid hairline
   grid, 2px lines, r>=4 markers with a 2px surface ring, native <title>
   tooltips per marker. *)
let svg_line_chart ~w ~h ~x_label ~y_max ~series buf =
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let ml = 34 and mr = 10 and mt = 8 and mb = 26 in
  let pw = w - ml - mr and ph = h - mt - mb in
  let xs = List.concat_map (fun (_, pts) -> List.map fst pts) series in
  let x_min = List.fold_left min (List.hd xs) xs in
  let x_max = List.fold_left max (List.hd xs) xs in
  let x_span = max 1 (x_max - x_min) in
  let y_max = if y_max <= 0.0 then 1.0 else y_max in
  let px x = ml + ((x - x_min) * pw / x_span) in
  let py y = mt + ph - int_of_float (y /. y_max *. float_of_int ph) in
  pf {|<svg viewBox="0 0 %d %d" width="%d" height="%d" role="img">|} w h w h;
  (* y grid: ~4 clean divisions *)
  let step =
    let raw = y_max /. 4.0 in
    let mag = 10.0 ** Float.floor (Float.log10 (Float.max raw 1e-9)) in
    let n = raw /. mag in
    mag *. (if n <= 1.0 then 1.0 else if n <= 2.0 then 2.0 else if n <= 5.0 then 5.0 else 10.0)
  in
  let rec grid y =
    if y <= y_max +. 1e-9 then begin
      pf
        {|<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="var(--grid)" stroke-width="1"/>|}
        ml (py y) (w - mr) (py y);
      pf {|<text x="%d" y="%d" text-anchor="end">%g</text>|} (ml - 5)
        (py y + 3) y;
      grid (y +. step)
    end
  in
  grid 0.0;
  (* baseline + x ticks at the measured thread counts *)
  pf
    {|<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="var(--baseline)" stroke-width="1"/>|}
    ml (mt + ph) (w - mr) (mt + ph);
  List.sort_uniq compare xs
  |> List.iter (fun x ->
         pf {|<text x="%d" y="%d" text-anchor="middle">%d</text>|} (px x)
           (mt + ph + 13) x);
  pf {|<text x="%d" y="%d" text-anchor="middle">%s</text>|} (ml + (pw / 2))
    (h - 3) (html_escape x_label);
  List.iteri
    (fun i (name, pts) ->
      let color = series_var i in
      let path =
        String.concat " "
          (List.mapi
             (fun j (x, y, _) ->
               Printf.sprintf "%s%d %d" (if j = 0 then "M" else "L") (px x)
                 (py y))
             (List.map (fun (x, (y, tip)) -> (x, y, tip)) pts))
      in
      pf
        {|<path d="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>|}
        path color;
      List.iter
        (fun (x, (y, tip)) ->
          pf
            {|<circle cx="%d" cy="%d" r="4" fill="%s" stroke="var(--surface-1)" stroke-width="2"><title>%s: %s</title></circle>|}
            (px x) (py y) color (html_escape name) (html_escape tip))
        pts)
    series;
  pf "</svg>"

(* A thin horizontal bar from the left edge: square at the baseline, 4px
   rounded data end, value labelled at the tip in ink. *)
let svg_ratio_bar ~w ~ratio ~max_ratio ~color ~tip buf =
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let h = 20 in
  let bar_h = 14 in
  let label_w = 46 in
  let pw = w - label_w in
  let len =
    max 3 (int_of_float (ratio /. max_ratio *. float_of_int (pw - 4)))
  in
  let y0 = (h - bar_h) / 2 in
  let r = 4 in
  pf {|<svg viewBox="0 0 %d %d" width="%d" height="%d" role="img">|} w h w h;
  (* reference line at ratio 1.0 *)
  let x1 = int_of_float (1.0 /. max_ratio *. float_of_int (pw - 4)) in
  pf
    {|<path d="M0 %d h%d a%d %d 0 0 1 %d %d v%d a%d %d 0 0 1 -%d %d h-%d Z" fill="%s"><title>%s</title></path>|}
    y0 (len - r) r r r r (bar_h - (2 * r)) r r r r (len - r) color
    (html_escape tip);
  pf
    {|<line x1="%d" y1="1" x2="%d" y2="%d" stroke="var(--baseline)" stroke-width="1"/>|}
    x1 x1 (h - 1);
  pf {|<text x="%d" y="%d" class="t">%.2fx</text>|} (len + 6) (y0 + bar_h - 3)
    ratio;
  pf "</svg>"

(* ------------------------------------------------------------------ *)
(* Sections.                                                           *)

let section_speedup buf records =
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let curves = speedup_curves records in
  pf "<h2>Speedup curves</h2>";
  pf
    "<p class=\"sub\">Fig.&nbsp;4-style: measured speedup against the \
     group's baseline (sequential run when present, otherwise the smallest \
     thread count), per benchmark &times; input &times; mode.</p>";
  if curves = [] then
    pf
      "<div class=\"card\"><p class=\"sub\">No configuration was measured \
       at two or more thread counts — run <code>rpb bench</code> with \
       several <code>--threads</code> values to populate this \
       section.</p></div>"
  else begin
    pf "<div class=\"grid-charts\">";
    List.iter
      (fun c ->
        pf "<div class=\"card\">";
        pf
          "<div class=\"t\" style=\"font-size:13px;color:var(--ink)\"> \
           %s/%s</div><div class=\"sub\">mode %s, scale %d, baseline %s \
           (%s ms)</div>"
          (html_escape c.curve_bench) (html_escape c.curve_input)
          (html_escape c.curve_mode) c.curve_scale c.base_label
          (ms c.base_ns);
        let pts =
          List.map
            (fun (t, ns, sp) ->
              ( t,
                ( sp,
                  Printf.sprintf "%d threads: %s ms, speedup %.2fx" t
                    (ms ns) sp ) ))
            c.points
        in
        let y_max =
          List.fold_left (fun acc (_, (sp, _)) -> Float.max acc sp) 1.0 pts
        in
        svg_line_chart ~w:300 ~h:170 ~x_label:"threads"
          ~y_max:(Float.max 1.0 (y_max *. 1.15))
          ~series:[ ("speedup", pts) ]
          buf;
        pf
          "<details><summary>table</summary><table><tr><th \
           class=\"num\">threads</th><th class=\"num\">time (ms)</th><th \
           class=\"num\">speedup</th></tr>";
        List.iter
          (fun (t, ns, sp) ->
            pf
              "<tr><td class=\"num\">%d</td><td class=\"num\">%s</td><td \
               class=\"num\">%.2fx</td></tr>"
              t (ms ns) sp)
          c.points;
        pf "</table></details></div>")
      curves;
    pf "</div>"
  end

let section_overhead buf records =
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let os = overheads records in
  pf "<h2>Fear-spectrum overhead</h2>";
  pf
    "<p class=\"sub\">Fig.&nbsp;5-style: run time of the checked and \
     synchronized modes relative to the unsafe switch (1.00x = free). The \
     hairline marks 1x.</p>";
  if os = [] then
    pf
      "<div class=\"card\"><p class=\"sub\">No configuration was measured \
       in both unsafe and checked/sync modes.</p></div>"
  else begin
    let max_ratio =
      Float.max 2.0
        (List.fold_left (fun acc o -> Float.max acc o.o_ratio) 0.0 os)
    in
    pf
      "<div class=\"card\"><table><tr><th>configuration</th><th>vs</th><th \
       class=\"num\">unsafe (ms)</th><th class=\"num\">%s (ms)</th><th \
       style=\"width:45%%\">overhead</th></tr>"
      "mode";
    List.iter
      (fun o ->
        let color =
          if o.o_vs = "checked" then series_var 0 else series_var 1
        in
        pf
          "<tr><td class=\"l\">%s/%s t=%d s=%d</td><td \
           class=\"l\">%s</td><td class=\"num\">%s</td><td \
           class=\"num\">%s</td><td>"
          (html_escape o.o_bench) (html_escape o.o_input) o.o_threads
          o.o_scale (html_escape o.o_vs) (ms o.o_unsafe_ns)
          (ms o.o_other_ns);
        svg_ratio_bar ~w:380 ~ratio:o.o_ratio ~max_ratio ~color
          ~tip:
            (Printf.sprintf "%s/%s: %s %.2fx the unsafe time" o.o_bench
               o.o_input o.o_vs o.o_ratio)
          buf;
        pf "</td></tr>")
      os;
    pf "</table>";
    pf
      "<div class=\"legend\"><span class=\"key\" \
       style=\"background:%s\"></span>checked / unsafe<span class=\"key\" \
       style=\"background:%s\"></span>sync / unsafe</div>"
      (series_var 0) (series_var 1);
    pf "</div>"
  end

let section_profiles buf (profiles : Profile.report list) =
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "<h2>Work / span</h2>";
  pf
    "<p class=\"sub\">Per-benchmark DAG metrics from the flight recorder \
     (<code>rpb profile</code>): work T<sub>1</sub>, span T<sub>∞</sub>, \
     parallelism and the burdened parallelism left after measured steal \
     delays.</p>";
  if profiles = [] then begin
    pf
      "<div class=\"card\"><p class=\"sub\">No PROFILE_*.json artifacts \
       given.</p></div>"
  end
  else begin
    pf
      "<div class=\"card\"><table><tr><th>bench</th><th>mode</th><th \
       class=\"num\">threads</th><th class=\"num\">work (ms)</th><th \
       class=\"num\">span (ms)</th><th class=\"num\">parallelism</th><th \
       class=\"num\">burdened</th><th class=\"num\">tasks</th><th \
       class=\"num\">steals</th><th class=\"num\">dropped</th><th></th></tr>";
    List.iter
      (fun (r : Profile.report) ->
        let m = r.Profile.metrics in
        pf
          "<tr><td class=\"l\">%s/%s</td><td class=\"l\">%s</td><td \
           class=\"num\">%d</td><td class=\"num\">%s</td><td \
           class=\"num\">%s</td><td class=\"num\">%.2f</td><td \
           class=\"num\">%.2f</td><td class=\"num\">%d</td><td \
           class=\"num\">%d</td><td class=\"num\">%d</td><td \
           class=\"l\">%s</td></tr>"
          (html_escape r.Profile.bench)
          (html_escape r.Profile.input)
          (html_escape r.Profile.mode)
          r.Profile.threads
          (ms (float_of_int m.Sp_dag.work_ns))
          (ms (float_of_int m.Sp_dag.span_ns))
          m.Sp_dag.parallelism m.Sp_dag.burdened_parallelism m.Sp_dag.tasks
          m.Sp_dag.steals m.Sp_dag.dropped
          (if r.Profile.verified then
             "<span class=\"badge ok\">verified</span>"
           else "<span class=\"badge bad\">verify failed</span>"))
      profiles;
    pf "</table></div>";
    (* Predicted speedup curves: burdened estimate vs DAG upper bound. *)
    pf "<div class=\"grid-charts\">";
    List.iter
      (fun (r : Profile.report) ->
        let m = r.Profile.metrics in
        let p_max = max 2 r.Profile.threads in
        let curve f label =
          List.init p_max (fun i ->
              let p = i + 1 in
              let v = f p in
              (p, (v, Printf.sprintf "%s at %d threads: %.2fx" label p v)))
        in
        let burdened = curve (Sp_dag.predicted_speedup m) "burdened" in
        let upper =
          curve
            (fun p -> Float.min (float_of_int p) m.Sp_dag.parallelism)
            "upper bound"
        in
        let y_max =
          List.fold_left
            (fun acc (_, (v, _)) -> Float.max acc v)
            1.0 (burdened @ upper)
        in
        pf "<div class=\"card\">";
        pf
          "<div class=\"t\" \
           style=\"font-size:13px;color:var(--ink)\">%s/%s</div><div \
           class=\"sub\">predicted speedup (mode %s)</div>"
          (html_escape r.Profile.bench)
          (html_escape r.Profile.input)
          (html_escape r.Profile.mode);
        svg_line_chart ~w:300 ~h:170 ~x_label:"threads"
          ~y_max:(y_max *. 1.15)
          ~series:[ ("burdened", burdened); ("upper bound", upper) ]
          buf;
        pf
          "<div class=\"legend\"><span class=\"key\" \
           style=\"background:%s\"></span>burdened estimate<span \
           class=\"key\" style=\"background:%s\"></span>DAG upper \
           bound</div>"
          (series_var 0) (series_var 1);
        pf "</div>")
      profiles;
    pf "</div>"
  end

let get_int_opt key j =
  match J.member_opt key j with Some (J.Int i) -> Some i | _ -> None

let get_bool_or key default j =
  match J.member_opt key j with Some (J.Bool b) -> b | _ -> default

let section_checks buf checks =
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "<h2>Correctness: differential oracle</h2>";
  pf
    "<p class=\"sub\">CHECK_*.json: every benchmark under the \
     deterministic sequential executor, its shuffled variant and the \
     work-stealing pool, digests diffed element-wise; plus the shadow-array \
     race-detector self-check.</p>";
  if checks = [] then
    pf
      "<div class=\"card\"><p class=\"sub\">No CHECK_*.json artifacts \
       given.</p></div>"
  else
    List.iter
      (fun j ->
        let ok = get_bool_or "ok" false j in
        let outcomes =
          match J.member_opt "oracle" j with
          | Some (J.List l) -> l
          | _ -> []
        in
        let failing =
          List.filter
            (fun o ->
              not
                (get_bool_or "verified" false o
                 && get_bool_or "equal" false o
                 && J.member_opt "error" o = Some J.Null))
            outcomes
        in
        let shadow = J.member_opt "shadow" j in
        pf "<div class=\"cards\">";
        pf
          "<div class=\"card tile\"><div class=\"label\">oracle \
           verdict</div><div class=\"value\">%s</div><div \
           class=\"hint\">seed %d, %d configurations</div></div>"
          (if ok then "<span class=\"badge ok\">OK</span>"
           else "<span class=\"badge bad\">FAIL</span>")
          (Option.value ~default:0 (get_int_opt "seed" j))
          (List.length outcomes);
        pf
          "<div class=\"card tile\"><div class=\"label\">failing \
           configurations</div><div class=\"value\">%d</div></div>"
          (List.length failing);
        (match shadow with
         | Some s ->
           let races =
             match J.member_opt "races" s with
             | Some (J.List l) -> List.length l
             | _ -> 0
           in
           pf
             "<div class=\"card tile\"><div class=\"label\">shadow \
              races</div><div class=\"value\">%d</div><div \
              class=\"hint\">%d instrumented ops; canary %s</div></div>"
             races
             (Option.value ~default:0 (get_int_opt "ops" s))
             (if get_bool_or "canary_ok" false s then "detected"
              else "MISSED")
         | None -> ());
        pf "</div>")
      checks

let section_faults buf faults =
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "<h2>Robustness: fault-injection sweep</h2>";
  pf
    "<p class=\"sub\">FAULT_*.json: seeded scheduler fault schedules; every \
     run must complete with the clean digest or fail cleanly before its \
     deadline.</p>";
  if faults = [] then
    pf
      "<div class=\"card\"><p class=\"sub\">No FAULT_*.json artifacts \
       given.</p></div>"
  else
    List.iter
      (fun j ->
        let ok = get_bool_or "ok" false j in
        let runs =
          match J.member_opt "runs" j with Some (J.List l) -> l | _ -> []
        in
        let count p = List.length (List.filter p runs) in
        let completed = count (fun r -> get_bool_or "completed" false r) in
        let violations = count (fun r -> not (get_bool_or "ok" false r)) in
        let injected =
          List.fold_left
            (fun acc r -> acc + Option.value ~default:0 (get_int_opt "injected" r))
            0 runs
        in
        pf "<div class=\"cards\">";
        pf
          "<div class=\"card tile\"><div class=\"label\">fault \
           verdict</div><div class=\"value\">%s</div><div class=\"hint\">%d \
           runs, %d injections</div></div>"
          (if ok then "<span class=\"badge ok\">OK</span>"
           else "<span class=\"badge bad\">FAIL</span>")
          (List.length runs) injected;
        pf
          "<div class=\"card tile\"><div class=\"label\">completed with \
           clean digest</div><div class=\"value\">%d</div><div \
           class=\"hint\">%d failed cleanly</div></div>"
          completed
          (List.length runs - completed);
        pf
          "<div class=\"card tile\"><div class=\"label\">contract \
           violations</div><div class=\"value\">%d</div></div>"
          violations;
        pf "</div>")
      faults

let section_policy_race buf records =
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let races = policy_races records in
  (* Rendered only when at least one configuration was measured under two
     or more policies, so reports over ordinary single-policy artifacts are
     unchanged. *)
  if races <> [] then begin
    let policies =
      List.concat_map (fun r -> List.map fst r.pr_times) races
      |> List.sort_uniq compare
    in
    pf "<h2>Policy race</h2>";
    pf
      "<p class=\"sub\">Scheduling policies raced per benchmark \
       (<code>bench/main.exe --policy-race</code>); each cell is the robust \
       time estimate under that policy, the badge marks the winner.  F/C/S \
       is the benchmark's fear tier: fearless, comfortable, scared.</p>";
    pf "<div class=\"card\"><table><tr><th>tier</th><th>configuration</th>";
    List.iter (fun p -> pf "<th class=\"num\">%s (ms)</th>" (html_escape p)) policies;
    pf "<th>winner</th></tr>";
    List.iter
      (fun r ->
        pf "<tr><td class=\"l\">%s</td><td class=\"l\">%s/%s %s t=%d s=%d</td>"
          (html_escape r.pr_tier) (html_escape r.pr_bench)
          (html_escape r.pr_input) (html_escape r.pr_mode) r.pr_threads
          r.pr_scale;
        List.iter
          (fun p ->
            match List.assoc_opt p r.pr_times with
            | Some ns when p = r.pr_winner ->
              pf "<td class=\"num\"><strong>%s</strong></td>" (ms ns)
            | Some ns -> pf "<td class=\"num\">%s</td>" (ms ns)
            | None -> pf "<td class=\"num\">-</td>")
          policies;
        pf "<td class=\"l\"><span class=\"badge ok\">%s</span></td></tr>"
          (html_escape r.pr_winner))
      races;
    pf "</table>";
    (* Per-tier winner counts: the headline "who wins where" view. *)
    let tiers = List.sort_uniq compare (List.map (fun r -> r.pr_tier) races) in
    pf "<div class=\"legend\">winners by fear tier: ";
    List.iter
      (fun tier ->
        let rows = List.filter (fun r -> r.pr_tier = tier) races in
        let wins p =
          List.length (List.filter (fun r -> r.pr_winner = p) rows)
        in
        let best =
          List.fold_left
            (fun (bp, bn) p ->
              let n = wins p in
              if n > bn then (p, n) else (bp, bn))
            ("-", 0) policies
        in
        pf "%s: <strong>%s</strong> (%d/%d)&nbsp; " (html_escape tier)
          (html_escape (fst best)) (snd best) (List.length rows))
      tiers;
    pf "</div></div>"
  end

let section_compares buf compares =
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  if compares <> [] then begin
    pf "<h2>Perf trajectory: baseline comparison</h2>";
    pf
      "<p class=\"sub\">From <code>rpb compare</code>: each configuration \
       against the committed baseline, flagged only when the change clears \
       the noise-widened band and the permutation test agrees.</p>";
    List.iter
      (fun j ->
        let comparisons =
          match J.member_opt "comparisons" j with
          | Some (J.List l) -> l
          | _ -> []
        in
        pf
          "<div class=\"card\"><table><tr><th>configuration</th><th \
           class=\"num\">old (ms)</th><th class=\"num\">new (ms)</th><th \
           class=\"num\">delta</th><th class=\"num\">band</th><th \
           class=\"num\">p</th><th>verdict</th></tr>";
        List.iter
          (fun c ->
            let key = J.member "key" c in
            let verdict =
              match J.member_opt "verdict" c with
              | Some (J.Str s) -> s
              | _ -> "?"
            in
            let badge =
              match verdict with
              | "regressed" -> "bad"
              | "improved" -> "ok"
              | _ -> "flat"
            in
            pf
              "<tr><td class=\"l\">%s/%s %s t=%d s=%d</td><td \
               class=\"num\">%s</td><td class=\"num\">%s</td><td \
               class=\"num\">%+.1f%%</td><td class=\"num\">%.1f%%</td><td \
               class=\"num\">%s</td><td class=\"l\"><span class=\"badge \
               %s\">%s</span></td></tr>"
              (html_escape (J.get_str (J.member "bench" key)))
              (html_escape (J.get_str (J.member "input" key)))
              (html_escape (J.get_str (J.member "mode" key)))
              (J.get_int (J.member "threads" key))
              (J.get_int (J.member "scale" key))
              (ms (J.get_float (J.member "old_est_ns" c)))
              (ms (J.get_float (J.member "new_est_ns" c)))
              (100.0 *. J.get_float (J.member "delta" c))
              (100.0 *. J.get_float (J.member "band" c))
              (match J.member_opt "p_value" c with
               | Some (J.Float p) -> Printf.sprintf "%.3f" p
               | Some (J.Int p) -> Printf.sprintf "%d" p
               | _ -> "-")
              badge (html_escape verdict))
          comparisons;
        pf "</table></div>")
      compares
  end

(* Serving latency: kind="serve" documents from `rpb serve` (role=server)
   and `rpb loadgen` (role=loadgen).  Latency summaries are already in
   milliseconds; counters are a flat object of ints. *)
let serve_role j =
  match J.member_opt "role" j with Some (J.Str r) -> r | _ -> "?"

let serve_counter j name =
  match J.member_opt "counters" j with
  | Some counters -> (
    match J.member_opt name counters with
    | Some (J.Int n) -> n
    | _ -> 0)
  | None -> 0

(* (count, mean, p50, p95, p99, max) out of a latency-summary object. *)
let serve_latency j =
  let field = if serve_role j = "server" then "exec_latency" else "latency" in
  let num l name =
    match J.member_opt name l with
    | Some (J.Float f) -> f
    | Some (J.Int n) -> float_of_int n
    | _ -> 0.0
  in
  match J.member_opt field j with
  | Some l ->
    ( int_of_float (num l "count"), num l "mean_ms", num l "p50_ms",
      num l "p95_ms", num l "p99_ms", num l "max_ms" )
  | None -> (0, 0.0, 0.0, 0.0, 0.0, 0.0)

let section_serves buf serves =
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  if serves <> [] then begin
    pf "<h2>Serving latency</h2>";
    pf
      "<p class=\"sub\">From <code>rpb serve</code> / <code>rpb \
       loadgen</code>: request latency percentiles (nearest-rank over \
       successful replies) and the robustness counters — sheds, stalls, \
       cancellations and losses under load.</p>";
    pf
      "<div class=\"card\"><table><tr><th>role</th><th \
       class=\"num\">n</th><th class=\"num\">mean (ms)</th><th \
       class=\"num\">p50</th><th class=\"num\">p95</th><th \
       class=\"num\">p99</th><th class=\"num\">max</th><th \
       class=\"num\">ok</th><th class=\"num\">shed</th><th \
       class=\"num\">stalled</th><th class=\"num\">cancelled</th><th \
       class=\"num\">failed</th><th class=\"num\">lost</th></tr>";
    List.iter
      (fun j ->
        let role = serve_role j in
        let n, mean, p50, p95, p99, mx = serve_latency j in
        let shed =
          serve_counter j (if role = "server" then "shed" else "shed_replies")
        in
        let badge_class = if serve_counter j "lost" > 0 then "bad" else "ok" in
        pf
          "<tr><td class=\"l\"><span class=\"badge %s\">%s</span></td><td \
           class=\"num\">%d</td><td class=\"num\">%.2f</td><td \
           class=\"num\">%.2f</td><td class=\"num\">%.2f</td><td \
           class=\"num\">%.2f</td><td class=\"num\">%.2f</td><td \
           class=\"num\">%d</td><td class=\"num\">%d</td><td \
           class=\"num\">%d</td><td class=\"num\">%d</td><td \
           class=\"num\">%d</td><td class=\"num\">%d</td></tr>"
          badge_class (html_escape role) n mean p50 p95 p99 mx
          (serve_counter j "ok") shed (serve_counter j "stalled")
          (serve_counter j "cancelled") (serve_counter j "failed")
          (serve_counter j "lost"))
      serves;
    pf "</table></div>"
  end

(* Live metrics: kind="metrics" snapshots (the [stats] verb /
   --metrics-json JSONL format).  A snapshot stream becomes three time
   series over the snapshot sequence number: throughput (delta ok /
   delta wall time between consecutive snapshots), admission-queue
   occupancy (a probe gauge), and the p95 of the exec-latency histogram. *)
let m_float j name =
  match J.member_opt name j with
  | Some (J.Float f) -> f
  | Some (J.Int n) -> float_of_int n
  | _ -> 0.0

let m_counter j name =
  match J.member_opt "counters" j with
  | Some c -> (
    match J.member_opt name c with Some (J.Int n) -> n | _ -> 0)
  | None -> 0

let m_gauge j name =
  match J.member_opt "gauges" j with
  | Some g -> (
    match J.member_opt name g with
    | Some (J.Float f) -> Some f
    | Some (J.Int n) -> Some (float_of_int n)
    | _ -> None)
  | None -> None

let m_hist_field j hist field =
  match J.member_opt "histograms" j with
  | Some (J.Obj _ as hs) -> (
    match J.member_opt hist hs with
    | Some h -> (
      match J.member_opt field h with
      | Some (J.Float f) -> Some f
      | Some (J.Int n) -> Some (float_of_int n)
      | _ -> None)
    | None -> None)
  | _ -> None

(* Stream order: one server run is one [started_s]; within a run, [seq]. *)
let metrics_sorted metrics =
  List.stable_sort
    (fun a b ->
      compare (m_float a "started_s", m_float a "seq")
        (m_float b "started_s", m_float b "seq"))
    metrics

let metrics_series metrics =
  let snaps = Array.of_list (metrics_sorted metrics) in
  let throughput = ref [] and occupancy = ref [] and p95 = ref [] in
  Array.iteri
    (fun i s ->
      let x = i in
      if i > 0 then begin
        let prev = snaps.(i - 1) in
        let dt = m_float s "ts_s" -. m_float prev "ts_s" in
        if dt > 0. then begin
          let d = m_counter s "serve.ok" - m_counter prev "serve.ok" in
          if d >= 0 then
            let r = float_of_int d /. dt in
            throughput :=
              (x, (r, Printf.sprintf "snapshot %d: %.1f ok/s" x r))
              :: !throughput
        end
      end;
      (match m_gauge s "serve.occupancy" with
      | Some o when Float.is_finite o ->
        occupancy :=
          (x, (o, Printf.sprintf "snapshot %d: occupancy %.0f" x o))
          :: !occupancy
      | _ -> ());
      match m_hist_field s "serve.exec_ms" "p95_ms" with
      | Some p when Float.is_finite p && p > 0. ->
        p95 := (x, (p, Printf.sprintf "snapshot %d: p95 %.2f ms" x p)) :: !p95
      | _ -> ())
    snaps;
  (List.rev !throughput, List.rev !occupancy, List.rev !p95)

let section_metrics buf metrics =
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  if metrics <> [] then begin
    pf "<h2>Live metrics</h2>";
    pf
      "<p class=\"sub\">From the serving layer's metrics plane \
       (<code>rpb serve --metrics-json</code> / the <code>stats</code> \
       verb): %d snapshot(s).  Throughput is the delta of the \
       <code>serve.ok</code> counter between consecutive snapshots; \
       latency percentiles interpolate inside log2(ns) histogram \
       buckets.</p>"
      (List.length metrics);
    let throughput, occupancy, p95 = metrics_series metrics in
    let chart title y_label pts =
      if List.length pts >= 2 then begin
        pf "<div class=\"card\">";
        pf
          "<div class=\"t\" style=\"font-size:13px;color:var(--ink)\">%s</div>\
           <div class=\"sub\">%s</div>"
          (html_escape title) (html_escape y_label);
        let y_max =
          List.fold_left (fun acc (_, (y, _)) -> Float.max acc y) 0.0 pts
        in
        svg_line_chart ~w:300 ~h:170 ~x_label:"snapshot"
          ~y_max:(Float.max 1e-9 (y_max *. 1.15))
          ~series:[ (title, pts) ] buf;
        pf "</div>"
      end
    in
    pf "<div class=\"grid-charts\">";
    chart "throughput" "successful replies per second" throughput;
    chart "queue occupancy" "queued + in-flight requests" occupancy;
    chart "exec p95" "milliseconds" p95;
    pf "</div>";
    (* Final-snapshot summary: the counters and histogram totals the CI
       smoke job asserts against. *)
    match List.rev (metrics_sorted metrics) with
    | [] -> ()
    | last :: _ ->
      pf
        "<div class=\"card\"><details><summary>final snapshot (seq \
         %.0f)</summary><table><tr><th>counter</th><th \
         class=\"num\">value</th></tr>"
        (m_float last "seq");
      (match J.member_opt "counters" last with
      | Some (J.Obj fields) ->
        List.iter
          (fun (name, v) ->
            match v with
            | J.Int n ->
              pf
                "<tr><td class=\"l\"><code>%s</code></td><td \
                 class=\"num\">%d</td></tr>"
                (html_escape name) n
            | _ -> ())
          fields
      | _ -> ());
      pf "</table>";
      pf
        "<table><tr><th>histogram</th><th class=\"num\">n</th><th \
         class=\"num\">p50</th><th class=\"num\">p95</th><th \
         class=\"num\">p99</th><th class=\"num\">max (ms)</th></tr>";
      (match J.member_opt "histograms" last with
      | Some (J.Obj fields) ->
        List.iter
          (fun (name, _) ->
            let f field =
              Option.value (m_hist_field last name field) ~default:0.
            in
            pf
              "<tr><td class=\"l\"><code>%s</code></td><td \
               class=\"num\">%.0f</td><td class=\"num\">%.2f</td><td \
               class=\"num\">%.2f</td><td class=\"num\">%.2f</td><td \
               class=\"num\">%.2f</td></tr>"
              (html_escape name) (f "count") (f "p50_ms") (f "p95_ms")
              (f "p99_ms") (f "max_ms"))
          fields
      | _ -> ());
      pf "</table></details></div>"
  end

(* SLO & error budget: kind="slo" documents from `rpb slo --json`.  Tiles
   for the headline verdict, a per-objective table of the final burn
   state, and one fast-burn chart per artifact over the replayed
   snapshots (at most the first three objectives, the chart palette's
   all-pairs limit). *)
let m_str j name =
  match J.member_opt name j with Some (J.Str s) -> s | _ -> "?"

let slo_objectives j =
  match J.member_opt "objectives" j with Some (J.List l) -> l | _ -> []

let slo_series j =
  match J.member_opt "series" j with Some (J.List l) -> l | _ -> []

let level_badge = function
  | "ok" -> "<span class=\"badge ok\">ok</span>"
  | "warn" -> "<span class=\"badge warn\">warn</span>"
  | s -> Printf.sprintf "<span class=\"badge bad\">%s</span>" (html_escape s)

let section_slos buf slos =
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  if slos <> [] then begin
    pf "<h2>SLO &amp; error budget</h2>";
    pf
      "<p class=\"sub\">From <code>rpb slo</code>: multi-window burn rates \
       (windowed error rate over the error budget) replayed against the \
       metrics stream.  Burn 1.0 spends exactly the whole budget if \
       sustained; the page/warn thresholds fire only when both the fast \
       and the slow window agree.</p>";
    List.iter
      (fun j ->
        let worst = m_str j "worst" in
        let violated = get_bool_or "violation" false j in
        pf "<div class=\"cards\">";
        pf
          "<div class=\"card tile\"><div class=\"label\">worst \
           level</div><div class=\"value\">%s</div><div class=\"hint\">%d \
           snapshot(s), %d skipped</div></div>"
          (level_badge worst)
          (Option.value ~default:0 (get_int_opt "snapshots" j))
          (Option.value ~default:0 (get_int_opt "skipped" j));
        pf
          "<div class=\"card tile\"><div class=\"label\">error \
           budget</div><div class=\"value\">%s</div><div \
           class=\"hint\"><code>%s</code></div></div>"
          (if violated then "<span class=\"badge bad\">violated</span>"
           else "<span class=\"badge ok\">within budget</span>")
          (html_escape (m_str j "spec"));
        pf "</div>";
        let objectives = slo_objectives j in
        if objectives <> [] then begin
          pf
            "<div class=\"card\"><table><tr><th>objective</th><th \
             class=\"num\">budget</th><th>level</th><th \
             class=\"num\">fast burn</th><th class=\"num\">slow \
             burn</th><th class=\"num\">budget left</th></tr>";
          List.iter
            (fun o ->
              let final = J.member_opt "final" o in
              let fnum name =
                match final with
                | Some f -> m_float f name
                | None -> 0.
              in
              pf
                "<tr><td class=\"l\"><code>%s</code></td><td \
                 class=\"num\">%.3f</td><td class=\"l\">%s</td><td \
                 class=\"num\">%.2f</td><td class=\"num\">%.2f</td><td \
                 class=\"num\">%.0f%%</td></tr>"
                (html_escape (m_str o "name"))
                (m_float o "budget")
                (level_badge
                   (match final with Some f -> m_str f "level" | None -> "?"))
                (fnum "fast_burn") (fnum "slow_burn")
                (100. *. fnum "budget_remaining"))
            objectives;
          pf "</table></div>"
        end;
        (* Fast-burn time series, one line per objective (first three). *)
        let series = slo_series j in
        let names =
          List.filteri (fun i _ -> i < 3)
            (List.map (fun o -> m_str o "name") objectives)
        in
        if List.length series >= 2 && names <> [] then begin
          let burn_series =
            List.mapi
              (fun oi name ->
                let pts =
                  List.mapi
                    (fun x entry ->
                      let v =
                        match J.member_opt "fast" entry with
                        | Some (J.List l) -> (
                          match List.nth_opt l oi with
                          | Some (J.Float f) -> f
                          | Some (J.Int n) -> float_of_int n
                          | _ -> 0.)
                        | _ -> 0.
                      in
                      ( x,
                        ( v,
                          Printf.sprintf "snapshot %d: fast burn %.2f" x v )
                      ))
                    series
                in
                (name, pts))
              names
          in
          let y_max =
            List.fold_left
              (fun acc (_, pts) ->
                List.fold_left (fun a (_, (v, _)) -> Float.max a v) acc pts)
              1.0 burn_series
          in
          pf "<div class=\"card\">";
          pf
            "<div class=\"t\" style=\"font-size:13px;color:var(--ink)\">fast \
             burn rate</div><div class=\"sub\">per replayed snapshot</div>";
          svg_line_chart ~w:620 ~h:190 ~x_label:"snapshot"
            ~y_max:(y_max *. 1.15) ~series:burn_series buf;
          pf "<div class=\"legend\">";
          List.iteri
            (fun i name ->
              pf "<span class=\"key\" style=\"background:%s\"></span>%s"
                (series_var i) (html_escape name))
            names;
          pf "</div></div>"
        end)
      slos
  end

(* ------------------------------------------------------------------ *)

let to_html a =
  let buf = Buffer.create (1 lsl 16) in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf
    {|<!DOCTYPE html><html lang="en"><head><meta charset="utf-8"><meta name="viewport" content="width=device-width, initial-scale=1"><title>rpb report</title><style>%s</style></head><body class="viz-root"><main>|}
    css;
  pf "<h1>rpb report</h1>";
  pf
    "<p class=\"sub\">Unified dashboard over %d artifact file(s): %d \
     benchmark record(s), %d profile(s), %d check report(s), %d fault \
     report(s), %d comparison(s), %d serve report(s), %d metrics \
     snapshot(s), %d SLO replay(s).</p>"
    (List.length a.sources) (List.length a.bench) (List.length a.profiles)
    (List.length a.checks) (List.length a.faults) (List.length a.compares)
    (List.length a.serves) (List.length a.metrics) (List.length a.slos);
  if a.errors <> [] then begin
    pf "<div class=\"card\">";
    List.iter
      (fun (path, msg) ->
        pf
          "<p class=\"sub\"><span class=\"badge warn\">skipped</span> \
           <code>%s</code>: %s</p>"
          (html_escape path) (html_escape msg))
      a.errors;
    pf "</div>"
  end;
  section_compares buf a.compares;
  section_serves buf a.serves;
  section_metrics buf a.metrics;
  section_slos buf a.slos;
  section_policy_race buf a.bench;
  section_speedup buf a.bench;
  section_overhead buf a.bench;
  section_profiles buf a.profiles;
  section_checks buf a.checks;
  section_faults buf a.faults;
  pf "<footer>sources:<br>";
  List.iter
    (fun s ->
      pf "<code>%s</code> (%s)<br>" (html_escape s.path)
        (html_escape s.kind))
    a.sources;
  pf "</footer></main></body></html>\n";
  Buffer.contents buf

let to_markdown a =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "# rpb report\n\n";
  pf
    "%d artifact file(s): %d benchmark record(s), %d profile(s), %d check \
     report(s), %d fault report(s), %d comparison(s), %d serve report(s), \
     %d metrics snapshot(s), %d SLO replay(s).\n\n"
    (List.length a.sources) (List.length a.bench) (List.length a.profiles)
    (List.length a.checks) (List.length a.faults) (List.length a.compares)
    (List.length a.serves) (List.length a.metrics) (List.length a.slos);
  if a.serves <> [] then begin
    pf "## Serving latency\n\n";
    pf
      "| role | n | mean (ms) | p50 | p95 | p99 | max | ok | shed | stalled \
       | cancelled | failed | lost |\n";
    pf "|---|---|---|---|---|---|---|---|---|---|---|---|---|\n";
    List.iter
      (fun j ->
        let role = serve_role j in
        let n, mean, p50, p95, p99, mx = serve_latency j in
        let shed =
          serve_counter j (if role = "server" then "shed" else "shed_replies")
        in
        pf "| %s | %d | %.2f | %.2f | %.2f | %.2f | %.2f | %d | %d | %d | \
            %d | %d | %d |\n"
          role n mean p50 p95 p99 mx (serve_counter j "ok") shed
          (serve_counter j "stalled")
          (serve_counter j "cancelled")
          (serve_counter j "failed") (serve_counter j "lost"))
      a.serves;
    pf "\n"
  end;
  if a.metrics <> [] then begin
    let sorted = metrics_sorted a.metrics in
    let last = List.hd (List.rev sorted) in
    pf "## Live metrics\n\n";
    pf
      "%d snapshot(s), final seq %.0f, uptime %.1fs: ok=%d shed=%d \
       rejected=%d stalled=%d cancelled=%d failed=%d slow_logged=%d"
      (List.length sorted) (m_float last "seq") (m_float last "uptime_s")
      (m_counter last "serve.ok") (m_counter last "serve.shed")
      (m_counter last "serve.rejected")
      (m_counter last "serve.stalled")
      (m_counter last "serve.cancelled")
      (m_counter last "serve.failed")
      (m_counter last "serve.slow_logged");
    (match
       ( m_hist_field last "serve.exec_ms" "p50_ms",
         m_hist_field last "serve.exec_ms" "p95_ms",
         m_hist_field last "serve.exec_ms" "p99_ms" )
     with
    | Some p50, Some p95, Some p99 ->
      pf "; exec p50/p95/p99 = %.2f/%.2f/%.2f ms" p50 p95 p99
    | _ -> ());
    pf "\n\n"
  end;
  if a.slos <> [] then begin
    pf "## SLO & error budget\n\n";
    List.iter
      (fun j ->
        pf
          "`%s`: worst level **%s**, budget **%s** (%d snapshot(s))\n\n"
          (m_str j "spec") (m_str j "worst")
          (if get_bool_or "violation" false j then "VIOLATED"
           else "within budget")
          (Option.value ~default:0 (get_int_opt "snapshots" j));
        let objectives = slo_objectives j in
        if objectives <> [] then begin
          pf
            "| objective | budget | level | fast burn | slow burn | budget \
             left |\n";
          pf "|---|---|---|---|---|---|\n";
          List.iter
            (fun o ->
              let final = J.member_opt "final" o in
              let fnum name =
                match final with Some f -> m_float f name | None -> 0.
              in
              pf "| %s | %.3f | %s | %.2f | %.2f | %.0f%% |\n"
                (m_str o "name") (m_float o "budget")
                (match final with Some f -> m_str f "level" | None -> "?")
                (fnum "fast_burn") (fnum "slow_burn")
                (100. *. fnum "budget_remaining"))
            objectives;
          pf "\n"
        end)
      a.slos
  end;
  let curves = speedup_curves a.bench in
  if curves <> [] then begin
    pf "## Speedup curves\n\n";
    pf "| configuration | baseline |";
    List.iter (fun (t, _, _) -> pf " %dt |" t) (List.hd curves).points;
    pf "\n|---|---|%s\n"
      (String.concat ""
         (List.map (fun _ -> "---|") (List.hd curves).points));
    List.iter
      (fun c ->
        pf "| %s/%s %s s=%d | %s %sms |" c.curve_bench c.curve_input
          c.curve_mode c.curve_scale c.base_label (ms c.base_ns);
        List.iter (fun (_, _, sp) -> pf " %.2fx |" sp) c.points;
        pf "\n")
      curves;
    pf "\n"
  end;
  let races = policy_races a.bench in
  if races <> [] then begin
    let policies =
      List.concat_map (fun r -> List.map fst r.pr_times) races
      |> List.sort_uniq compare
    in
    pf "## Policy race\n\n";
    pf "| tier | configuration |";
    List.iter (fun p -> pf " %s (ms) |" p) policies;
    pf " winner |\n|---|---|%s---|\n"
      (String.concat "" (List.map (fun _ -> "---|") policies));
    List.iter
      (fun r ->
        pf "| %s | %s/%s %s t=%d s=%d |" r.pr_tier r.pr_bench r.pr_input
          r.pr_mode r.pr_threads r.pr_scale;
        List.iter
          (fun p ->
            match List.assoc_opt p r.pr_times with
            | Some ns when p = r.pr_winner -> pf " **%s** |" (ms ns)
            | Some ns -> pf " %s |" (ms ns)
            | None -> pf " - |")
          policies;
        pf " %s |\n" r.pr_winner)
      races;
    pf "\n"
  end;
  let os = overheads a.bench in
  if os <> [] then begin
    pf "## Fear-spectrum overhead\n\n";
    pf "| configuration | vs | unsafe (ms) | mode (ms) | ratio |\n";
    pf "|---|---|---|---|---|\n";
    List.iter
      (fun o ->
        pf "| %s/%s t=%d s=%d | %s | %s | %s | %.2fx |\n" o.o_bench
          o.o_input o.o_threads o.o_scale o.o_vs (ms o.o_unsafe_ns)
          (ms o.o_other_ns) o.o_ratio)
      os;
    pf "\n"
  end;
  if a.profiles <> [] then begin
    pf "## Work / span\n\n";
    pf
      "| bench | mode | threads | work (ms) | span (ms) | parallelism | \
       burdened | verified |\n";
    pf "|---|---|---|---|---|---|---|---|\n";
    List.iter
      (fun (r : Profile.report) ->
        let m = r.Profile.metrics in
        pf "| %s/%s | %s | %d | %s | %s | %.2f | %.2f | %s |\n"
          r.Profile.bench r.Profile.input r.Profile.mode r.Profile.threads
          (ms (float_of_int m.Sp_dag.work_ns))
          (ms (float_of_int m.Sp_dag.span_ns))
          m.Sp_dag.parallelism m.Sp_dag.burdened_parallelism
          (if r.Profile.verified then "yes" else "NO"))
      a.profiles;
    pf "\n"
  end;
  List.iter
    (fun j ->
      pf "## Differential oracle\n\nverdict: **%s**\n\n"
        (if get_bool_or "ok" false j then "OK" else "FAIL"))
    a.checks;
  List.iter
    (fun j ->
      pf "## Fault sweep\n\nverdict: **%s**\n\n"
        (if get_bool_or "ok" false j then "OK" else "FAIL"))
    a.faults;
  Buffer.contents buf

let write_html ~path a =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_html a))
