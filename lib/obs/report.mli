(** The unified [rpb report] dashboard.

    Merges every machine-readable artifact the harness emits — [BENCH_*.json]
    benchmark documents (schema v1..v3), [PROFILE_*.json] work/span reports,
    [CHECK_*.json] differential-oracle reports, [FAULT_*.json] fault sweeps
    and [rpb compare] documents — into one self-contained HTML page (inline
    CSS and SVG, light/dark from one set of custom properties) or a markdown
    digest suitable for a CI job summary.

    The HTML carries Fig. 4-style speedup curves (measured, plus the
    burdened-DAG prediction from profiles), the Fig. 5-style fear-spectrum
    overhead table (checked/unsafe and sync/unsafe ratios), per-benchmark
    work/span/parallelism from {!Sp_dag}, correctness and fault verdict
    tiles, and the baseline-comparison trajectory. *)

type source = { path : string; kind : string }
(** One input file and the document kind it classified as:
    ["bench" | "profile" | "check" | "fault" | "compare" | "serve" |
    "metrics" | "slo"], or ["jsonl"] for a multi-line stream. *)

type artifacts = {
  bench : Rpb_benchmarks.Bench_json.record list;
  profiles : Profile.report list;
  checks : Rpb_benchmarks.Bench_json.json list;
  faults : Rpb_benchmarks.Bench_json.json list;
  compares : Rpb_benchmarks.Bench_json.json list;
  serves : Rpb_benchmarks.Bench_json.json list;
      (** [kind="serve"] documents from [rpb serve] (role [server]) and
          [rpb loadgen] (role [loadgen]) — latency percentiles and
          robustness counters *)
  metrics : Rpb_benchmarks.Bench_json.json list;
      (** [kind="metrics"] live-metrics snapshots (the [stats] verb /
          [--metrics-json] JSONL format), in stream order — the
          dashboard's time-series section *)
  slos : Rpb_benchmarks.Bench_json.json list;
      (** [kind="slo"] burn-rate replays ([rpb slo --json]) — the
          "SLO & error budget" section's verdict tiles, per-objective
          table and fast-burn chart *)
  sources : source list;
  errors : (string * string) list;
      (** files skipped as unreadable/unparseable: [(path, message)] *)
}

val empty : artifacts

val classify_doc : Rpb_benchmarks.Bench_json.json -> string
(** The document's ["kind"] member; ["bench"] when absent (plain benchmark
    documents predate the kind tag). *)

val add_file : artifacts -> string -> artifacts
(** Parse and classify one file.  A file that fails whole-document parsing
    is retried as JSONL — one document per line, each classified on its
    own, which is how [--metrics-json] streams (snapshots interleaved with
    slow-request profiles) load.  I/O and parse failures land in
    {!artifacts.errors} instead of raising, so one bad artifact never
    sinks the report. *)

val load_files : string list -> artifacts
(** {!add_file} over the list, preserving order. *)

(** {1 Derived views} (exposed for tests) *)

type curve = {
  curve_bench : string;
  curve_input : string;
  curve_mode : string;
  curve_scale : int;
  base_ns : float;
  base_label : string;  (** ["seq"] or ["1t"] — what the speedup is against *)
  points : (int * float * float) list;
      (** (threads, time ns, speedup), ascending threads *)
}

val speedup_curves : Rpb_benchmarks.Bench_json.record list -> curve list
(** Every non-smoke (bench, input, mode, scale) group measured at two or
    more thread counts, against the matching sequential record when one
    exists.  Duplicate thread counts: last record wins. *)

type overhead = {
  o_bench : string;
  o_input : string;
  o_threads : int;
  o_scale : int;
  o_vs : string;  (** ["checked"] or ["sync"] *)
  o_unsafe_ns : float;
  o_other_ns : float;
  o_ratio : float;  (** other / unsafe; 1.0 = the safety was free *)
}

val overheads : Rpb_benchmarks.Bench_json.record list -> overhead list
(** Fear-spectrum ratios for every configuration measured both under
    ["unsafe"] and under ["checked"]/["sync"]. *)

type race = {
  pr_bench : string;
  pr_tier : string;
      (** the benchmark's fear tier — ["F"]/["C"]/["S"] (fearless /
          comfortable / scared, worst access pattern wins), ["?"] for a
          bench absent from the registry *)
  pr_input : string;
  pr_mode : string;
  pr_threads : int;
  pr_scale : int;
  pr_times : (string * float) list;
      (** per-policy robust estimates (ns), sorted by policy name *)
  pr_winner : string;  (** policy with the smallest estimate *)
}

val policy_races : Rpb_benchmarks.Bench_json.record list -> race list
(** Every non-smoke configuration measured under two or more scheduling
    policies — the winner table behind the dashboard's "Policy race"
    section.  Duplicate (configuration, policy) pairs: last record wins. *)

(** {1 Rendering} *)

val to_html : artifacts -> string
(** The full self-contained dashboard. *)

val to_markdown : artifacts -> string
(** The digest: summary line plus speedup / overhead / work-span / verdict
    tables. *)

val write_html : path:string -> artifacts -> unit
