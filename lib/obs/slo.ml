(* The SLO engine.  See slo.mli for the model; the short version:
   declarative latency/availability objectives are evaluated against
   cumulative (total, bad) readings extracted from kind="metrics"
   snapshots, burn = windowed-error-rate / error-budget over a fast and a
   slow window, and an Ok | Warn | Page machine escalates immediately but
   de-escalates one step per hysteresis run.  A process-global atomic
   level register gives the admission path an allocation-free read. *)

module J = Rpb_benchmarks.Bench_json

type objective =
  | Latency of { hist : string; pctl : float; target_ms : float }
  | Availability of { good : string list; bad : string list; target : float }

type spec = (string * objective) list

let objective_budget = function
  | Latency { pctl; _ } -> 1. -. (pctl /. 100.)
  | Availability { target; _ } -> 1. -. target

(* ------------------------------------------------------------------ *)
(* Spec parsing *)

(* serve.shed is deliberately not in the default bad set: tightened
   admission sheds more, and counting those against the budget would feed
   the burn that tightened admission in the first place. *)
let default_good = [ "serve.ok" ]
let default_bad = [ "serve.failed"; "serve.stalled" ]

let parse_item item : (string * objective, string) result =
  let err fmt = Printf.ksprintf (fun m -> Stdlib.Error m) fmt in
  match String.split_on_char ':' item with
  | [ "latency"; hist; cond ] -> (
    let hist = String.trim hist in
    if hist = "" then err "%s: empty histogram name" item
    else
      match String.index_opt cond '<' with
      | None -> err "%s: latency condition must look like p95<50" item
      | Some i ->
        let pctl_s = String.sub cond 0 i in
        let target_s = String.sub cond (i + 1) (String.length cond - i - 1) in
        if String.length pctl_s < 2 || pctl_s.[0] <> 'p' then
          err "%s: percentile must look like p95" item
        else begin
          match
            ( float_of_string_opt
                (String.sub pctl_s 1 (String.length pctl_s - 1)),
              float_of_string_opt target_s )
          with
          | Some pctl, Some target_ms
            when pctl > 0. && pctl < 100. && target_ms > 0.
                 && Float.is_finite target_ms ->
            Stdlib.Ok
              ( Printf.sprintf "%s.p%g" hist pctl,
                Latency { hist; pctl; target_ms } )
          | Some pctl, _ when not (pctl > 0. && pctl < 100.) ->
            err "%s: percentile must be in (0, 100)" item
          | _ -> err "%s: bad latency target" item
        end)
  | [ "avail"; target_s ] -> (
    match float_of_string_opt target_s with
    | Some target when target > 0. && target < 1. ->
      Stdlib.Ok
        ( "availability",
          Availability { good = default_good; bad = default_bad; target } )
    | _ -> err "%s: availability target must be in (0, 1)" item)
  | [ "avail"; name; good_s; bad_s; target_s ] -> (
    let split s =
      List.filter (fun x -> x <> "")
        (List.map String.trim (String.split_on_char '+' s))
    in
    let name = String.trim name in
    match (split good_s, split bad_s, float_of_string_opt target_s) with
    | good, bad, Some target
      when name <> "" && good <> [] && bad <> [] && target > 0. && target < 1.
      ->
      Stdlib.Ok (name, Availability { good; bad; target })
    | _, _, _ ->
      err "%s: expected avail:NAME:GOOD+GOOD:BAD+BAD:TARGET with target in (0, 1)"
        item)
  | _ ->
    err "%s: expected latency:HIST:pQQ<MS or avail:TARGET or avail:NAME:GOOD:BAD:TARGET"
      item

let parse_spec s : (spec, string) result =
  let items =
    List.filter (fun x -> x <> "")
      (List.map String.trim (String.split_on_char ';' s))
  in
  if items = [] then Stdlib.Error "empty SLO spec"
  else begin
    let rec go acc = function
      | [] -> Stdlib.Ok (List.rev acc)
      | item :: rest -> (
        match parse_item item with
        | Stdlib.Error _ as e -> e
        | Stdlib.Ok ((name, _) as entry) ->
          if List.mem_assoc name acc then
            Stdlib.Error (Printf.sprintf "duplicate objective name %s" name)
          else go (entry :: acc) rest)
    in
    go [] items
  end

let spec_to_string spec =
  String.concat ";"
    (List.map
       (fun (name, obj) ->
         match obj with
         | Latency { hist; pctl; target_ms } ->
           Printf.sprintf "latency:%s:p%g<%g" hist pctl target_ms
         | Availability { good; bad; target }
           when name = "availability" && good = default_good
                && bad = default_bad ->
           Printf.sprintf "avail:%g" target
         | Availability { good; bad; target } ->
           Printf.sprintf "avail:%s:%s:%s:%g" name (String.concat "+" good)
             (String.concat "+" bad) target)
       spec)

(* ------------------------------------------------------------------ *)
(* Levels *)

type level = Ok | Warn | Page

let level_index = function Ok -> 0 | Warn -> 1 | Page -> 2
let level_of_index n = if n <= 0 then Ok else if n = 1 then Warn else Page
let level_name = function Ok -> "ok" | Warn -> "warn" | Page -> "page"

let status_name = function
  | Ok -> "ok"
  | Warn -> "degraded"
  | Page -> "unhealthy"

type params = {
  fast_s : float;
  slow_s : float;
  page_burn : float;
  warn_burn : float;
  hysteresis : int;
}

let default_params =
  { fast_s = 60.; slow_s = 3600.; page_burn = 14.4; warn_burn = 6.; hysteresis = 3 }

(* ------------------------------------------------------------------ *)
(* The engine *)

type verdict = {
  v_name : string;
  v_level : level;
  v_fast_burn : float;
  v_slow_burn : float;
  v_budget_remaining : float;
}

(* One cumulative (adjusted) reading; the ring is newest-first. *)
type sample = { s_t : float; s_total : float; s_bad : float }

type ostate = {
  o_budget : float;
  mutable o_ring : sample list;
  mutable o_level : level;
  mutable o_calm : int;
  (* Last raw reading and the offsets folding restarts into a monotone
     adjusted cumulative. *)
  mutable o_prev_raw : float * float;
  mutable o_off_total : float;
  mutable o_off_bad : float;
  mutable o_base : (float * float) option;
}

type t = {
  e_params : params;
  e_spec : spec;
  e_objs : ostate array;
  mutable e_started : float option;
  mutable e_verdicts : verdict list;
}

let create ?(params = default_params) spec =
  if spec = [] then invalid_arg "Slo.create: empty spec";
  if not (params.fast_s > 0. && params.slow_s >= params.fast_s) then
    invalid_arg "Slo.create: windows must satisfy 0 < fast <= slow";
  if params.hysteresis < 1 then invalid_arg "Slo.create: hysteresis < 1";
  {
    e_params = params;
    e_spec = spec;
    e_objs =
      Array.of_list
        (List.map
           (fun (_, obj) ->
             {
               o_budget = objective_budget obj;
               o_ring = [];
               o_level = Ok;
               o_calm = 0;
               o_prev_raw = (0., 0.);
               o_off_total = 0.;
               o_off_bad = 0.;
               o_base = None;
             })
           spec);
    e_started = None;
    e_verdicts = [];
  }

let params t = t.e_params
let spec t = t.e_spec

(* The newest ring sample at or before [edge]; when history is shorter
   than the window, the oldest sample — a truncated window beats no
   verdict during early uptime. *)
let window_base ring ~edge =
  match List.find_opt (fun s -> s.s_t <= edge) ring with
  | Some _ as hit -> hit
  | None ->
    let rec last = function
      | [] -> None
      | [ s ] -> Some s
      | _ :: rest -> last rest
    in
    last ring

(* Keep everything inside the slow window plus exactly one older sample
   as the window-edge baseline. *)
let prune ring ~edge =
  let rec go = function
    | [] -> []
    | s :: rest -> if s.s_t <= edge then [ s ] else s :: go rest
  in
  go ring

let burn_over o ~edge ~total ~bad =
  match window_base o.o_ring ~edge with
  | None -> 0.
  | Some b ->
    let d_total = total -. b.s_total and d_bad = bad -. b.s_bad in
    if d_total <= 0. || d_bad <= 0. then 0.
    else d_bad /. d_total /. o.o_budget

let feed t ~now_s ~started_s readings =
  if Array.length readings <> Array.length t.e_objs then
    invalid_arg "Slo.feed: one (total, bad) reading per objective";
  let restart =
    match t.e_started with
    | Some s0 -> Float.abs (started_s -. s0) > 1e-9
    | None -> false
  in
  t.e_started <- Some started_s;
  let p = t.e_params in
  let vs =
    List.mapi
      (fun i (name, _) ->
        let o = t.e_objs.(i) in
        let raw_total, raw_bad = readings.(i) in
        let prev_total, prev_bad = o.o_prev_raw in
        (* A restart (or a cumulative value going backwards, the same
           thing seen without started_s) folds the pre-restart totals
           into the offsets so adjusted readings stay monotone. *)
        if restart || raw_total < prev_total -. 1e-9 || raw_bad < prev_bad -. 1e-9
        then begin
          o.o_off_total <- o.o_off_total +. prev_total;
          o.o_off_bad <- o.o_off_bad +. prev_bad
        end;
        o.o_prev_raw <- (raw_total, raw_bad);
        let total = o.o_off_total +. raw_total
        and bad = o.o_off_bad +. raw_bad in
        if o.o_base = None then o.o_base <- Some (total, bad);
        let fast = burn_over o ~edge:(now_s -. p.fast_s) ~total ~bad in
        let slow = burn_over o ~edge:(now_s -. p.slow_s) ~total ~bad in
        (* Both windows must agree: the slow window says the burn is
           real, the fast window says it is still happening. *)
        let raw_level =
          if Float.min fast slow >= p.page_burn then Page
          else if Float.min fast slow >= p.warn_burn then Warn
          else Ok
        in
        if level_index raw_level >= level_index o.o_level then begin
          o.o_level <- raw_level;
          o.o_calm <- 0
        end
        else begin
          o.o_calm <- o.o_calm + 1;
          if o.o_calm >= p.hysteresis then begin
            o.o_level <- (match o.o_level with Page -> Warn | _ -> Ok);
            o.o_calm <- 0
          end
        end;
        o.o_ring <-
          { s_t = now_s; s_total = total; s_bad = bad }
          :: prune o.o_ring ~edge:(now_s -. p.slow_s);
        let base_total, base_bad = Option.get o.o_base in
        let cum_er =
          if total -. base_total > 0. then
            Float.max 0. (bad -. base_bad) /. (total -. base_total)
          else 0.
        in
        {
          v_name = name;
          v_level = o.o_level;
          v_fast_burn = fast;
          v_slow_burn = slow;
          v_budget_remaining = 1. -. (cum_er /. o.o_budget);
        })
      t.e_spec
  in
  t.e_verdicts <- vs;
  vs

let verdicts t = t.e_verdicts

let overall vs =
  List.fold_left
    (fun acc v -> if level_index v.v_level > level_index acc then v.v_level else acc)
    Ok vs

(* ------------------------------------------------------------------ *)
(* Snapshot extraction *)

let obj_fields = function Some (J.Obj fields) -> fields | _ -> []

let counter_sum fields names =
  List.fold_left
    (fun acc n ->
      match List.assoc_opt n fields with
      | Some (J.Int v) -> acc +. float_of_int v
      | Some (J.Float v) -> acc +. v
      | _ -> acc)
    0. names

(* (cumulative samples, cumulative samples at or above target): a bucket
   is bad only when its inclusive lower bound clears the target, so the
   straddling bucket is credited as good. *)
let hist_reading hists name target_ms =
  match List.assoc_opt name hists with
  | None -> (0., 0.)
  | Some h -> (
    try
      let count = float_of_int (J.get_int (J.member "count" h)) in
      let bad =
        List.fold_left
          (fun acc pair ->
            match J.get_list pair with
            | [ b; n ] ->
              let lo_ms = fst (Metrics.bucket_bounds_ns (J.get_int b)) *. 1e-6 in
              if lo_ms >= target_ms then acc +. float_of_int (J.get_int n)
              else acc
            | _ -> acc)
          0.
          (J.get_list (J.member "buckets" h))
      in
      (count, bad)
    with J.Parse_error _ -> (0., 0.))

let feed_snapshot t j =
  match J.member_opt "kind" j with
  | Some (J.Str "metrics") -> (
    try
      let now_s = J.get_float (J.member "ts_s" j) in
      let started_s =
        match J.member_opt "started_s" j with
        | Some (J.Float v) -> v
        | Some (J.Int v) -> float_of_int v
        | _ -> 0.
      in
      let counters = obj_fields (J.member_opt "counters" j) in
      let hists = obj_fields (J.member_opt "histograms" j) in
      let readings =
        Array.of_list
          (List.map
             (fun (_, obj) ->
               match obj with
               | Latency { hist; target_ms; _ } ->
                 hist_reading hists hist target_ms
               | Availability { good; bad; _ } ->
                 let g = counter_sum counters good
                 and b = counter_sum counters bad in
                 (g +. b, b))
             t.e_spec)
      in
      Some (feed t ~now_s ~started_s readings)
    with J.Parse_error _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The global level register: one atomic immediate, Trace-style.  The
   admission path reads it per request; with no engine running it stays
   Ok and costs one load. *)

let current = Atomic.make 0

let current_level () =
  match Atomic.get current with 0 -> Ok | 1 -> Warn | _ -> Page

let set_current l = Atomic.set current (level_index l)
let reset_current () = Atomic.set current 0

let admission_scale = function Ok -> 1 | Warn -> 2 | Page -> 4

let effective_queue_cap l cap =
  match l with Ok -> cap | Warn -> max 1 (cap / 2) | Page -> max 1 (cap / 4)

(* ------------------------------------------------------------------ *)
(* JSON surfaces *)

let float_json v = if Float.is_finite v then J.Float v else J.Null

let verdict_json v =
  J.Obj
    [
      ("name", J.Str v.v_name);
      ("level", J.Str (level_name v.v_level));
      ("fast_burn", float_json v.v_fast_burn);
      ("slow_burn", float_json v.v_slow_burn);
      ("budget_remaining", float_json v.v_budget_remaining);
    ]

let health_json ~verdicts ~max_queue =
  let lvl = overall verdicts in
  J.Obj
    [
      ("schema_version", J.Int J.schema_version);
      ("kind", J.Str "health");
      ("status", J.Str (status_name lvl));
      ("level", J.Int (level_index lvl));
      ("objectives", J.List (List.map verdict_json verdicts));
      ( "admission",
        J.Obj
          [
            ("max_queue", J.Int max_queue);
            ("effective_max_queue", J.Int (effective_queue_cap lvl max_queue));
            ("retry_scale", J.Int (admission_scale lvl));
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Offline replay *)

type replay = {
  r_fed : int;
  r_skipped : int;
  r_series : (float * verdict list) list;
  r_worst : level;
  r_final : verdict list;
}

let replay ?params spec docs =
  let t = create ?params spec in
  let fed = ref 0 and skipped = ref 0 in
  let series = ref [] in
  let worst = ref Ok in
  List.iter
    (fun d ->
      match feed_snapshot t d with
      | None -> incr skipped
      | Some vs ->
        incr fed;
        let ts =
          match J.member_opt "ts_s" d with
          | Some (J.Float v) -> v
          | Some (J.Int v) -> float_of_int v
          | _ -> 0.
        in
        series := (ts, vs) :: !series;
        let l = overall vs in
        if level_index l > level_index !worst then worst := l)
    docs;
  {
    r_fed = !fed;
    r_skipped = !skipped;
    r_series = List.rev !series;
    r_worst = !worst;
    r_final = verdicts t;
  }

let violated r =
  r.r_worst = Page
  || List.exists (fun v -> v.v_budget_remaining < 0.) r.r_final

let replay_to_json r ~params:p ~spec =
  let series_json =
    List.map
      (fun (ts, vs) ->
        J.Obj
          [
            ("ts_s", float_json ts);
            ("levels", J.List (List.map (fun v -> J.Int (level_index v.v_level)) vs));
            ("fast", J.List (List.map (fun v -> float_json v.v_fast_burn) vs));
            ("slow", J.List (List.map (fun v -> float_json v.v_slow_burn) vs));
          ])
      r.r_series
  in
  let objective_json (name, obj) =
    let final = List.find_opt (fun v -> v.v_name = name) r.r_final in
    J.Obj
      ([
         ("name", J.Str name);
         ("budget", float_json (objective_budget obj));
       ]
      @ match final with None -> [] | Some v -> [ ("final", verdict_json v) ])
  in
  J.Obj
    [
      ("schema_version", J.Int J.schema_version);
      ("kind", J.Str "slo");
      ( "params",
        J.Obj
          [
            ("fast_s", J.Float p.fast_s);
            ("slow_s", J.Float p.slow_s);
            ("page_burn", J.Float p.page_burn);
            ("warn_burn", J.Float p.warn_burn);
            ("hysteresis", J.Int p.hysteresis);
          ] );
      ("spec", J.Str (spec_to_string spec));
      ("snapshots", J.Int r.r_fed);
      ("skipped", J.Int r.r_skipped);
      ("worst", J.Str (level_name r.r_worst));
      ("violation", J.Bool (violated r));
      ("objectives", J.List (List.map objective_json spec));
      ("series", J.List series_json);
    ]
