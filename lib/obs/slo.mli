(** Service-level objectives over the live metrics plane: declarative
    targets, error-budget burn rates, and the alert state machine behind
    [rpb serve --slo], the [health] verb, and [rpb slo].

    {2 Objectives}

    Two shapes, both evaluated from [kind="metrics"] snapshot documents
    ({!Metrics.snapshot}) so the same estimator serves the live sampler
    thread and offline JSONL replay:

    - {e latency}: "p95 of histogram H stays under T ms".  A snapshot's
      log2 buckets give (cumulative requests, cumulative requests at or
      above T): a bucket counts as {e bad} when its inclusive lower bound
      is >= T, so the straddling bucket is credited as good — the
      estimator never over-reports a burn from bucket quantisation.
    - {e availability}: "good / (good + bad) stays above T" over named
      status counters.  The default [avail:] shorthand counts
      [serve.ok] good and [serve.failed] + [serve.stalled] bad;
      [serve.shed] is deliberately {e excluded}, because admission
      tightening on a page sheds more — counting sheds as budget burn
      would turn the control loop into a death spiral.

    {2 Burn rates}

    Google-SRE multi-window burn: over a window, [burn = error-rate /
    error-budget], where the budget fraction is [1 - target] for
    availability and [1 - pctl/100] for a latency percentile.  Burn 1.0
    consumes exactly the whole budget if sustained; the engine evaluates a
    {e fast} and a {e slow} window (defaults 60 s / 3600 s, scaled down
    for tests) against cumulative [(total, bad)] samples kept in a
    per-objective ring.  A window older than available history truncates
    to the oldest sample, so early-uptime verdicts use real data instead
    of reporting nothing.  Counter resets (server restart mid-JSONL, or
    [started_s] changing) re-baseline via per-objective offsets, so
    deltas never go negative.

    {2 The state machine}

    [Ok | Warn | Page] per objective: a level escalates immediately when
    {e both} windows exceed its threshold (the slow window says the burn
    is real, the fast window says it is still happening), and de-escalates
    one step only after [hysteresis] consecutive calmer evaluations — the
    damping that keeps admission control from oscillating between shed
    and restore at the threshold boundary.

    {2 The switch}

    The process-global {!current_level} register follows the
    {!Metrics}/Trace switch discipline: reading it is one atomic load of
    an immediate value — no allocation — so the admission path can consult
    it per request whether or not any engine is running.  With no engine
    it stays [Ok] and admission behaves exactly as before. *)

type objective =
  | Latency of { hist : string; pctl : float; target_ms : float }
  | Availability of { good : string list; bad : string list; target : float }

type spec = (string * objective) list
(** Objectives with their display/gauge names, e.g.
    [("serve.exec_ms.p95", Latency ...)]. *)

val parse_spec : string -> (spec, string) result
(** Parse a [--slo SPEC] string: [;]-separated items, each either
    [latency:HIST:pQQ<MS] (e.g. [latency:serve.exec_ms:p95<50]),
    [avail:TARGET] (the serve-counter shorthand above, [TARGET] in
    (0,1)), or [avail:NAME:GOOD:BAD:TARGET] with [+]-separated counter
    lists.  Rejects empty specs, duplicate names and out-of-range
    numbers. *)

val spec_to_string : spec -> string
(** Canonical round-trip of {!parse_spec}. *)

val objective_budget : objective -> float
(** The error-budget fraction ([1 - target] / [1 - pctl/100]), > 0. *)

(** {1 Levels} *)

type level = Ok | Warn | Page

val level_index : level -> int
(** [Ok] 0, [Warn] 1, [Page] 2 — the encoding of the [slo.*.level]
    gauges and the health verb's [level] field. *)

val level_of_index : int -> level
val level_name : level -> string  (** ok / warn / page *)

val status_name : level -> string
(** The health-verb vocabulary: ok / degraded / unhealthy. *)

(** {1 Parameters} *)

type params = {
  fast_s : float;  (** fast window, seconds *)
  slow_s : float;  (** slow window, seconds *)
  page_burn : float;  (** both-window burn threshold for [Page] *)
  warn_burn : float;  (** both-window burn threshold for [Warn] *)
  hysteresis : int;
      (** consecutive calmer evaluations before stepping down one level *)
}

val default_params : params
(** 60 s / 3600 s windows, page at 14.4x, warn at 6x, hysteresis 3 — the
    SRE-workbook 1h-page/6h-warn thresholds with windows scaled to this
    system's test-time cadence. *)

(** {1 The engine} *)

type verdict = {
  v_name : string;
  v_level : level;
  v_fast_burn : float;
  v_slow_burn : float;
  v_budget_remaining : float;
      (** 1 - (cumulative error rate since the engine started) / budget:
          1.0 = untouched, 0 = exhausted, negative = overspent. *)
}

type t

val create : ?params:params -> spec -> t
val params : t -> params
val spec : t -> spec

val feed : t -> now_s:float -> started_s:float -> (float * float) array -> verdict list
(** Feed one cumulative reading [(total, bad)] per objective, in spec
    order.  [started_s] changing (or a cumulative value decreasing)
    re-baselines as a restart.  Returns the per-objective verdicts, in
    spec order.  The synthetic-feed surface the unit tests drive. *)

val feed_snapshot : t -> Rpb_benchmarks.Bench_json.json -> verdict list option
(** Extract readings from a [kind="metrics"] document and {!feed}.
    [None] (state unchanged) when the document is not a usable metrics
    snapshot. *)

val verdicts : t -> verdict list
(** The last evaluation ([[]] before the first feed). *)

val overall : verdict list -> level
(** Worst level across objectives ([Ok] for [[]]). *)

(** {1 The global level register} *)

val current_level : unit -> level
(** One atomic load, allocation-free; [Ok] unless an engine published
    otherwise. *)

val set_current : level -> unit
val reset_current : unit -> unit

val admission_scale : level -> int
(** Deterministic [retry_after_ms] multiplier: 1 / 2 / 4. *)

val effective_queue_cap : level -> int -> int
(** The tightened admission cap: full at [Ok], half at [Warn], quarter at
    [Page], never below 1. *)

(** {1 The health verb payload} *)

val health_json :
  verdicts:verdict list -> max_queue:int -> Rpb_benchmarks.Bench_json.json
(** The [kind="health"] document: overall [status]/[level], per-objective
    verdicts, and the admission block ([max_queue],
    [effective_max_queue], [retry_scale]) derived from {!overall}. *)

(** {1 Offline replay — the [rpb slo] CI gate} *)

type replay = {
  r_fed : int;  (** metrics snapshots evaluated *)
  r_skipped : int;  (** non-metrics documents ignored *)
  r_series : (float * verdict list) list;  (** chronological (ts, verdicts) *)
  r_worst : level;  (** highest level any evaluation reached *)
  r_final : verdict list;
}

val replay : ?params:params -> spec -> Rpb_benchmarks.Bench_json.json list -> replay
(** Feed every document in order through a fresh engine (restarts
    re-baseline exactly as live). *)

val violated : replay -> bool
(** The exit-4 predicate: the run ever paged, or any objective finished
    with its cumulative budget overspent. *)

val replay_to_json : replay -> params:params -> spec:spec -> Rpb_benchmarks.Bench_json.json
(** The [kind="slo"] artifact: parameters, per-objective final verdicts,
    and the burn-rate time series [rpb report] charts. *)
