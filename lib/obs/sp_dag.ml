(* Offline reconstruction of the recorded series-parallel DAG.

   The recorder's construct ids are allocated in fork order, so a parent's id
   is always smaller than its children's — the event stream can only describe
   a tree, and the bottom-up evaluation below terminates without cycle
   checks.  Robustness against ring overflow is structural: a construct whose
   [Fork] was dropped is adopted by the root (its work still counts, its
   provenance is lost), and a missing [Exec] only forfeits that construct's
   queue-delay burden. *)

module R = Rpb_pool.Pool.Recorder

type worker = {
  w : int;
  work_ns : int;
  idle_ns : int;
  steals : int;
  tasks : int;
  minor_collections : int;
  major_collections : int;
  promoted_words : float;
  minor_words : float;
}

type phase = { name : string; count : int; total_ns : int }

type t = {
  work_ns : int;
  span_ns : int;
  burdened_span_ns : int;
  parallelism : float;
  burdened_parallelism : float;
  constructs : int;
  tasks : int;
  steals : int;
  idle_ns : int;
  queue_delay_ns : int;
  events : int;
  dropped : int;
  per_worker : worker list;
  phases : phase list;
  granularity : (int * int) list;
  policy : string;
}

(* Per-construct accumulator.  [branch 0] is the inline branch (ran on the
   forking strand), [branch 1] the spawned one. *)
type cinfo = {
  mutable has_fork : bool;
  mutable fork_ns : int;
  mutable fork_w : int;
  mutable exec_ns : int;  (* -1 until the spawned branch's [Exec] is seen *)
  mutable exec_w : int;
  mutable local0 : int;  (* strand-local work per branch, ns *)
  mutable local1 : int;
  mutable children0 : int list;  (* constructs forked from each branch *)
  mutable children1 : int list;
}

(* The queue-delay burden is charged only when the spawned branch migrated —
   executed on a different worker than the one that forked it.  Under the
   pool's help-first policy a non-stolen branch is popped by its owner after
   the inline branch finishes, so its fork→exec gap merely replays the serial
   execution order; only a migration's gap is genuine scheduling burden
   (steal latency, deque contention, wake-up). *)
let burden c =
  if c.has_fork && c.exec_ns >= 0 && c.exec_w <> c.fork_w then
    max 0 (c.exec_ns - c.fork_ns)
  else 0

type wacc = {
  mutable a_work : int;
  mutable a_idle : int;
  mutable a_steals : int;
  mutable a_tasks : int;
  (* first/last cumulative Gc.quick_stat samples; events arrive
     timestamp-sorted, so first-seen is earliest. *)
  mutable gc_first : (int * int * float * float) option;
  mutable gc_last : (int * int * float * float) option;
}

let log2_bucket ns =
  let rec go k v = if v <= 1 then k else go (k + 1) (v lsr 1) in
  go 0 ns

let analyze (recording : R.recording) =
  let infos : (int, cinfo) Hashtbl.t = Hashtbl.create 256 in
  let construct id =
    match Hashtbl.find_opt infos id with
    | Some c -> c
    | None ->
      let c =
        {
          has_fork = false;
          fork_ns = 0;
          fork_w = -1;
          exec_ns = -1;
          exec_w = -1;
          local0 = 0;
          local1 = 0;
          children0 = [];
          children1 = [];
        }
      in
      Hashtbl.add infos id c;
      c
  in
  ignore (construct 0);
  let workers : (int, wacc) Hashtbl.t = Hashtbl.create 16 in
  let worker w =
    match Hashtbl.find_opt workers w with
    | Some a -> a
    | None ->
      let a =
        {
          a_work = 0;
          a_idle = 0;
          a_steals = 0;
          a_tasks = 0;
          gc_first = None;
          gc_last = None;
        }
      in
      Hashtbl.add workers w a;
      a
  in
  let phases : (string, int ref * int ref) Hashtbl.t = Hashtbl.create 16 in
  let n_events = ref 0 in
  List.iter
    (fun (e : R.event) ->
      incr n_events;
      match e with
      | Fork { id; parent; parent_branch; w; ts_ns } ->
        let c = construct id in
        c.has_fork <- true;
        c.fork_ns <- ts_ns;
        c.fork_w <- w;
        let p = construct parent in
        if parent_branch = 0 then p.children0 <- id :: p.children0
        else p.children1 <- id :: p.children1
      | Join _ -> ()
      | Work { construct = id; branch; w; begin_ns; end_ns } ->
        let d = max 0 (end_ns - begin_ns) in
        let c = construct id in
        if branch = 0 then c.local0 <- c.local0 + d
        else c.local1 <- c.local1 + d;
        (worker w).a_work <- (worker w).a_work + d
      | Exec { construct = id; w; begin_ns } ->
        let c = construct id in
        c.exec_ns <- begin_ns;
        c.exec_w <- w;
        (worker w).a_tasks <- (worker w).a_tasks + 1
      | Steal { thief; _ } -> (worker thief).a_steals <- (worker thief).a_steals + 1
      | Idle { w; begin_ns; end_ns } ->
        (worker w).a_idle <- (worker w).a_idle + max 0 (end_ns - begin_ns)
      | Phase { name; begin_ns; end_ns; _ } ->
        let count, total =
          match Hashtbl.find_opt phases name with
          | Some p -> p
          | None ->
            let p = (ref 0, ref 0) in
            Hashtbl.add phases name p;
            p
        in
        incr count;
        total := !total + max 0 (end_ns - begin_ns)
      | Gc_sample { w; minor_collections; major_collections; promoted_words;
                    minor_words; _ } ->
        let a = worker w in
        let s = (minor_collections, major_collections, promoted_words, minor_words) in
        if a.gc_first = None then a.gc_first <- Some s;
        a.gc_last <- Some s)
    recording.events;
  (* Adopt constructs whose [Fork] was lost to ring overflow: their work
     still counts, under the root. *)
  Hashtbl.iter
    (fun id c ->
      if id <> 0 && not c.has_fork then begin
        let root = Hashtbl.find infos 0 in
        root.children0 <- id :: root.children0
      end)
    infos;
  (* Bottom-up work/span/burdened-span.  Branches run in parallel with each
     other; a branch's children are in series with its local work.  The
     spawned branch additionally pays the construct's measured fork→exec
     queue delay in the burdened span. *)
  let memo : (int, int * int * int) Hashtbl.t = Hashtbl.create 256 in
  let rec eval id =
    match Hashtbl.find_opt memo id with
    | Some r -> r
    | None ->
      let c = Hashtbl.find infos id in
      let sum_branch local children =
        List.fold_left
          (fun (w, s, b) ch ->
            let cw, cs, cb = eval ch in
            (w + cw, s + cs, b + cb))
          (local, local, local) children
      in
      let w0, s0, b0 = sum_branch c.local0 c.children0 in
      let w1, s1, b1 = sum_branch c.local1 c.children1 in
      let r = (w0 + w1, max s0 s1, max b0 (burden c + b1)) in
      Hashtbl.add memo id r;
      r
  in
  let work_ns, span_ns, burdened_span_ns = eval 0 in
  let queue_delay_ns = Hashtbl.fold (fun _ c acc -> acc + burden c) infos 0 in
  (* Leaf-strand granularity: branches that forked nothing, bucketed by
     log2 of their local nanoseconds. *)
  let gran : (int, int ref) Hashtbl.t = Hashtbl.create 32 in
  let bucket ns =
    if ns > 0 then begin
      let k = log2_bucket ns in
      match Hashtbl.find_opt gran k with
      | Some r -> incr r
      | None -> Hashtbl.add gran k (ref 1)
    end
  in
  Hashtbl.iter
    (fun _ c ->
      if c.children0 = [] then bucket c.local0;
      if c.children1 = [] then bucket c.local1)
    infos;
  let per_worker =
    Hashtbl.fold
      (fun w a acc ->
        let dm, dj, dp, dw =
          match (a.gc_first, a.gc_last) with
          | Some (m0, j0, p0, w0), Some (m1, j1, p1, w1) ->
            (m1 - m0, j1 - j0, p1 -. p0, w1 -. w0)
          | _ -> (0, 0, 0., 0.)
        in
        {
          w;
          work_ns = a.a_work;
          idle_ns = a.a_idle;
          steals = a.a_steals;
          tasks = a.a_tasks;
          minor_collections = dm;
          major_collections = dj;
          promoted_words = dp;
          minor_words = dw;
        }
        :: acc)
      workers []
    |> List.sort (fun a b -> compare a.w b.w)
  in
  let phases =
    Hashtbl.fold
      (fun name (count, total) acc ->
        { name; count = !count; total_ns = !total } :: acc)
      phases []
    |> List.sort (fun a b -> compare (b.total_ns, b.name) (a.total_ns, a.name))
  in
  let granularity =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) gran []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let ratio a b = if b <= 0 then 1.0 else float_of_int a /. float_of_int b in
  {
    work_ns;
    span_ns;
    burdened_span_ns;
    parallelism = ratio work_ns span_ns;
    burdened_parallelism = ratio work_ns burdened_span_ns;
    constructs = Hashtbl.length infos - 1;
    tasks = List.fold_left (fun acc (w : worker) -> acc + w.tasks) 0 per_worker;
    steals = List.fold_left (fun acc (w : worker) -> acc + w.steals) 0 per_worker;
    idle_ns = List.fold_left (fun acc (w : worker) -> acc + w.idle_ns) 0 per_worker;
    queue_delay_ns;
    events = !n_events;
    dropped = recording.dropped;
    per_worker;
    phases;
    granularity;
    policy = recording.policy;
  }

let predicted_speedup m p =
  let p = max 1 p in
  let t1 = float_of_int m.work_ns in
  if t1 <= 0. then 1.0
  else t1 /. ((t1 /. float_of_int p) +. float_of_int m.burdened_span_ns)

let load_imbalance m =
  let loaded = List.filter (fun (w : worker) -> w.work_ns > 0) m.per_worker in
  match loaded with
  | [] -> 1.0
  | _ ->
    let total = List.fold_left (fun acc (w : worker) -> acc + w.work_ns) 0 loaded in
    let mean = float_of_int total /. float_of_int (List.length loaded) in
    let mx = List.fold_left (fun acc (w : worker) -> max acc w.work_ns) 0 loaded in
    if mean <= 0. then 1.0 else float_of_int mx /. mean
