(** Series-parallel DAG reconstruction and work/span analysis.

    Turns a {!Rpb_pool.Pool.Recorder.recording} — the raw flight-recorder
    event stream — back into the fork-join (series-parallel) DAG the run
    executed, and computes the Cilkview-style metrics the paper's speedup
    questions need:

    - {e work} T₁: total computation time across all strands — what one
      worker would need;
    - {e span} T∞: the longest series-dependent chain — what infinitely many
      workers would still need;
    - {e parallelism} T₁/T∞: the maximum speedup the DAG itself allows, on
      any number of workers;
    - {e burdened span / parallelism}: the same chain with each spawned
      branch charged its measured fork→exec queue delay, i.e. the
      parallelism left after real scheduling burden.  GC pressure already
      lands inside the [Work] strand segments (a collection pauses the
      mutator mid-segment), so it inflates work and span directly; the
      per-worker GC deltas break that pressure out for attribution.

    Reconstruction is tolerant of ring overflow: a construct whose [Fork]
    event was dropped is attached under the root, missing [Exec] events cost
    only their queue-delay burden, and the metrics carry the {!t.dropped}
    count so consumers can judge coverage.  Construct ids are allocated in
    fork order (parent id < child id), so the event stream always describes
    an acyclic tree. *)

type worker = {
  w : int;  (** worker index; [-1] = a strand observed off the pool *)
  work_ns : int;  (** time inside [Work] segments on this worker *)
  idle_ns : int;  (** time inside recorded sleep episodes *)
  steals : int;  (** successful steals by this worker *)
  tasks : int;  (** spawned branches this worker executed *)
  minor_collections : int;  (** GC delta across the recording window *)
  major_collections : int;
  promoted_words : float;
  minor_words : float;
}

type phase = { name : string; count : int; total_ns : int }
(** Aggregated {!Rpb_pool.Pool.Trace.span} phases (per-phase attribution of
    the profiled run, e.g. the sort/scan/histogram spans in [lib/parseq]). *)

type t = {
  work_ns : int;
  span_ns : int;
  burdened_span_ns : int;
  parallelism : float;  (** work / span *)
  burdened_parallelism : float;  (** work / burdened span *)
  constructs : int;  (** fork-join constructs recorded (root excluded) *)
  tasks : int;  (** spawned branches that began executing *)
  steals : int;
  idle_ns : int;
  queue_delay_ns : int;
      (** total fork→exec delay of {e migrated} spawned branches — ones
          stolen to a different worker than the forking one.  Non-migrated
          branches are popped by their owner after the inline branch, so
          their gap merely replays serial order and is not burden. *)
  events : int;  (** surviving flight-recorder events *)
  dropped : int;  (** events lost to ring overflow *)
  per_worker : worker list;  (** ascending worker index *)
  phases : phase list;  (** descending total time *)
  granularity : (int * int) list;
      (** leaf-strand granularity histogram: [(k, count)] counts leaf
          branches whose local computation fell in [[2{^k}, 2{^k+1}) ns],
          ascending [k] *)
  policy : string;
      (** scheduling-policy name the recorded session ran under (from
          [Recorder.start ?policy_name]), so work/span/burden numbers are
          attributed to a policy *)
}

val analyze : Rpb_pool.Pool.Recorder.recording -> t
(** Reconstruct the DAG and compute every metric.  Total over the event
    list; an empty recording yields all-zero metrics with
    [parallelism = 1]. *)

val predicted_speedup : t -> int -> float
(** [predicted_speedup m p] is the burdened-DAG speedup estimate for [p]
    workers: [T₁ / (T₁/p + T∞ᵇ)].  It interpolates between perfect linear
    scaling (work-limited, small [p]) and the burdened parallelism ceiling
    (span-limited, large [p]). *)

val load_imbalance : t -> float
(** Max over mean of per-worker [Work] time, over the workers that recorded
    any work ([1.0] = perfectly balanced). *)
