(* Robust statistics over benchmark sample vectors.

   Benchmark timings on a shared container are heavy-tailed: a GC pause, a
   noisy neighbour or a scheduler hiccup can inflate a single repeat by an
   order of magnitude.  Means (and their normal-theory intervals) are pulled
   arbitrarily far by one such outlier; the median moves only when half the
   samples move, and the MAD is the matching robust dispersion estimator.
   All resampling (bootstrap, permutation) is driven by the deterministic
   SplitMix64 stream in Rpb_prim.Rng, so every p-value and interval is
   reproducible from its seed. *)

let check_nonempty name a =
  if Array.length a = 0 then invalid_arg (name ^ ": empty sample set")

let mean a =
  check_nonempty "Stats.mean" a;
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let minimum a =
  check_nonempty "Stats.minimum" a;
  Array.fold_left min a.(0) a

let maximum a =
  check_nonempty "Stats.maximum" a;
  Array.fold_left max a.(0) a

(* Median of a *sorted* array, interpolating the midpoint for even sizes. *)
let median_sorted s =
  let n = Array.length s in
  if n land 1 = 1 then s.(n / 2) else 0.5 *. (s.((n / 2) - 1) +. s.(n / 2))

let median a =
  check_nonempty "Stats.median" a;
  let s = Array.copy a in
  Array.sort compare s;
  median_sorted s

let mad a =
  check_nonempty "Stats.mad" a;
  let m = median a in
  median (Array.map (fun x -> Float.abs (x -. m)) a)

(* 1 / Phi^{-1}(3/4): scales the MAD to estimate the standard deviation of a
   normal distribution, the conventional way to turn the robust dispersion
   into sigma units. *)
let mad_sigma_scale = 1.4826

let mad_sigma a = mad_sigma_scale *. mad a

(* ---------- bootstrap confidence interval ---------- *)

let quantile_sorted s q =
  (* Linear interpolation between closest ranks (type-7, the numpy/R
     default). *)
  let n = Array.length s in
  if n = 1 then s.(0)
  else begin
    let h = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor h) in
    let hi = min (n - 1) (lo + 1) in
    let frac = h -. float_of_int lo in
    ((1.0 -. frac) *. s.(lo)) +. (frac *. s.(hi))
  end

(* ---------- nearest-rank percentiles ---------- *)

(* The one nearest-rank definition in the tree: Serve.Latency summaries and
   Metrics bucket percentiles both delegate their rank computation here, so
   the two ends of a snapshot round-trip can never disagree on which sample
   a percentile names. *)
let nearest_rank ~count ~pct =
  if count < 1 then invalid_arg "Stats.nearest_rank: empty sample set";
  let pct = Float.max 0. (Float.min 100. pct) in
  max 1 (min count (int_of_float (ceil (pct *. float_of_int count /. 100.))))

let percentile_sorted s pct =
  check_nonempty "Stats.percentile_sorted" s;
  s.(nearest_rank ~count:(Array.length s) ~pct - 1)

let bootstrap_ci ?(replicates = 1000) ?(confidence = 0.95)
    ?(estimator = median) ~seed a =
  check_nonempty "Stats.bootstrap_ci" a;
  if not (confidence > 0.0 && confidence < 1.0) then
    invalid_arg "Stats.bootstrap_ci: confidence must be in (0, 1)";
  if replicates < 1 then
    invalid_arg "Stats.bootstrap_ci: replicates must be positive";
  let rng = Rpb_prim.Rng.create seed in
  let n = Array.length a in
  let resample = Array.make n 0.0 in
  let estimates =
    Array.init replicates (fun _ ->
        for i = 0 to n - 1 do
          resample.(i) <- a.(Rpb_prim.Rng.int rng n)
        done;
        estimator resample)
  in
  Array.sort compare estimates;
  let alpha = 1.0 -. confidence in
  ( quantile_sorted estimates (alpha /. 2.0),
    quantile_sorted estimates (1.0 -. (alpha /. 2.0)) )

(* ---------- permutation test ---------- *)

(* The default statistic is the absolute difference of MEANS, not medians:
   permutation tests are exact for any statistic, but the median difference
   only takes a handful of distinct values on two tight clusters (order
   statistics of a bimodal pool), so a genuine shift lands on a boundary tie
   and p sticks at ~alpha.  The mean difference is strictly maximal at the
   observed labelling for separated groups, giving the test full power
   there; robustness against outlier repeats comes from the MAD-widened
   tolerance band in the caller (Baseline), not from this statistic. *)
let permutation_test ?(rounds = 2000) ?(statistic = fun a b ->
    Float.abs (mean a -. mean b)) ~seed a b =
  check_nonempty "Stats.permutation_test" a;
  check_nonempty "Stats.permutation_test" b;
  let observed = statistic a b in
  let na = Array.length a in
  let pooled = Array.append a b in
  let n = Array.length pooled in
  let rng = Rpb_prim.Rng.create seed in
  let hits = ref 0 in
  let left = Array.make na 0.0 in
  let right = Array.make (n - na) 0.0 in
  for _ = 1 to rounds do
    (* Partial Fisher–Yates: draw a uniform split of the pooled samples into
       the two group sizes. *)
    for i = n - 1 downto 1 do
      let j = Rpb_prim.Rng.int rng (i + 1) in
      let t = pooled.(i) in
      pooled.(i) <- pooled.(j);
      pooled.(j) <- t
    done;
    Array.blit pooled 0 left 0 na;
    Array.blit pooled na right 0 (n - na);
    if statistic left right >= observed -. 1e-12 then incr hits
  done;
  (* Add-one (Davison–Hinkley) estimate: the observed labelling is itself one
     valid permutation, so the p-value can never be exactly 0. *)
  float_of_int (1 + !hits) /. float_of_int (1 + rounds)

(* ---------- Mann–Whitney U (normal approximation, tie-corrected) ---------- *)

(* Complementary normal CDF via the Abramowitz–Stegun 7.1.26 erf polynomial
   (|error| < 1.5e-7) — the stdlib carries no erf.  The polynomial is only
   valid for non-negative arguments; negative z goes through the symmetry
   SF(z) = 1 - SF(-z). *)
let rec normal_sf z =
  if z < 0.0 then 1.0 -. normal_sf (-.z)
  else
  let x = z /. Float.sqrt 2.0 in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let poly =
    t
    *. (0.254829592
        +. (t
            *. (-0.284496736
                +. (t *. (1.421413741 +. (t *. (-1.453152027 +. (t *. 1.061405429))))))))
  in
  let erfc = poly *. Float.exp (-.x *. x) in
  0.5 *. erfc

let mann_whitney a b =
  check_nonempty "Stats.mann_whitney" a;
  check_nonempty "Stats.mann_whitney" b;
  let na = Array.length a and nb = Array.length b in
  let n = na + nb in
  (* Midranks over the pooled samples, remembering group membership. *)
  let tagged =
    Array.append
      (Array.map (fun x -> (x, true)) a)
      (Array.map (fun x -> (x, false)) b)
  in
  Array.sort (fun (x, _) (y, _) -> compare x y) tagged;
  let rank_sum_a = ref 0.0 in
  let tie_correction = ref 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && fst tagged.(!j + 1) = fst tagged.(!i) do
      incr j
    done;
    (* Samples [i..j] are tied; all get the average rank. *)
    let count = !j - !i + 1 in
    let rank = 0.5 *. float_of_int (!i + 1 + (!j + 1)) in
    for k = !i to !j do
      if snd tagged.(k) then rank_sum_a := !rank_sum_a +. rank
    done;
    if count > 1 then begin
      let c = float_of_int count in
      tie_correction := !tie_correction +. ((c *. c *. c) -. c)
    end;
    i := !j + 1
  done;
  let na_f = float_of_int na and nb_f = float_of_int nb in
  let u_a = !rank_sum_a -. (na_f *. (na_f +. 1.0) /. 2.0) in
  let u = Float.min u_a ((na_f *. nb_f) -. u_a) in
  let mu = na_f *. nb_f /. 2.0 in
  let n_f = float_of_int n in
  let sigma2 =
    na_f *. nb_f /. 12.0
    *. (n_f +. 1.0 -. (!tie_correction /. (n_f *. (n_f -. 1.0))))
  in
  if sigma2 <= 0.0 then (u, 1.0) (* all samples tied: no evidence either way *)
  else begin
    (* Continuity correction, two-sided. *)
    let z = (mu -. u -. 0.5) /. Float.sqrt sigma2 in
    (u, Float.min 1.0 (2.0 *. normal_sf z))
  end
