(** Robust statistics over benchmark sample vectors.

    The estimators the perf-regression layer is built on: median and MAD
    (outlier-resistant location and dispersion), seeded bootstrap confidence
    intervals, and two significance tests over a pair of sample sets — a
    permutation test on the mean difference and a tie-corrected
    Mann–Whitney U.  All resampling draws from the deterministic SplitMix64
    stream ({!Rpb_prim.Rng}), so results are exactly reproducible from the
    seed.

    Every function raises [Invalid_argument] on an empty sample set. *)

val mean : float array -> float
val minimum : float array -> float
val maximum : float array -> float

val median : float array -> float
(** Midpoint-interpolated for even sizes.  Does not mutate its argument. *)

val mad : float array -> float
(** Median absolute deviation: [median |xᵢ - median x|], the robust
    dispersion matching {!median} (unscaled). *)

val mad_sigma : float array -> float
(** [mad_sigma a = 1.4826 *. mad a] — the MAD rescaled to estimate a normal
    standard deviation, the conventional sigma-unit form used by the
    tolerance bands in {!Baseline}. *)

val mad_sigma_scale : float
(** The 1.4826 consistency constant ([1 / Φ⁻¹(3/4)]). *)

val quantile_sorted : float array -> float -> float
(** [quantile_sorted s q] for sorted [s] and [q ∈ [0,1]], with linear
    interpolation between closest ranks (numpy/R type-7). *)

val nearest_rank : count:int -> pct:float -> int
(** The 1-based nearest rank [max 1 (ceil (pct/100 * count))], clamped to
    [\[1, count\]], for [pct ∈ [0,100]] — the single rank definition
    {!Rpb_serve}'s latency summaries and {!Metrics} bucket percentiles
    both delegate to.  Distinct from {!quantile_sorted}'s interpolating
    type-7 estimator, which the bootstrap machinery keeps. *)

val percentile_sorted : float array -> float -> float
(** [percentile_sorted s pct] — the nearest-rank sample of sorted [s]. *)

val bootstrap_ci :
  ?replicates:int ->
  ?confidence:float ->
  ?estimator:(float array -> float) ->
  seed:int ->
  float array ->
  float * float
(** Percentile-bootstrap confidence interval [(lo, hi)] for [estimator]
    (default {!median}) — [replicates] (default 1000) resamples with
    replacement, central [confidence] (default 0.95) mass.  Deterministic in
    [seed].  [estimator] is called on a scratch buffer that is reused
    between replicates; it must not retain its argument. *)

val permutation_test :
  ?rounds:int ->
  ?statistic:(float array -> float array -> float) ->
  seed:int ->
  float array ->
  float array ->
  float
(** Two-sided permutation test: the p-value of observing a [statistic]
    (default [|mean a - mean b|]) at least as extreme as the actual one
    under [rounds] (default 2000) uniform relabellings of the pooled
    samples.  The mean difference — not the median — is the default because
    a permutation test is exact for any statistic, and the median difference
    collapses to a handful of tied values on small bimodal pools, pinning
    the p-value near alpha precisely when a shift is real; outlier
    robustness is the tolerance band's job ({!Baseline}), not this test's.
    Uses the add-one estimate [(1 + hits) / (1 + rounds)], so the result is
    always in [(0, 1]].  Deterministic in [seed]. *)

val mann_whitney : float array -> float array -> float * float
(** [(u, p)] — the Mann–Whitney U statistic (smaller side) and its
    two-sided p-value under the tie-corrected normal approximation with
    continuity correction.  Identical constant samples give [p = 1]. *)

val normal_sf : float -> float
(** Upper-tail probability of the standard normal at [|z|]
    (Abramowitz–Stegun 7.1.26 approximation, error < 1.5e-7). *)
