
let count_by pool ~key ~buckets a =
  let keys = Rpb_core.Par_array.init pool (Array.length a) (fun i -> key a.(i)) in
  Histogram.histogram pool ~keys ~buckets

let group_by pool ~key ~buckets a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let sorted = Radix.counting_sort_by pool ~key ~buckets a in
    let counts = count_by pool ~key ~buckets a in
    let starts, _ = Scan.exclusive_int pool counts in
    let nonempty = Pack.pack_index pool (fun k -> counts.(k) > 0) buckets in
    Rpb_core.Par_array.map pool
      (fun k -> (k, Array.sub sorted starts.(k) counts.(k)))
      nonempty
  end
