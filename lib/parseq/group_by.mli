(** Parallel grouping (PBBS "collect"): partition elements by an integer key
    into contiguous groups — a counting sort, a scan, and an RngInd-style
    per-group view. *)

open Rpb_pool

val group_by :
  Pool.t -> key:('a -> int) -> buckets:int -> 'a array -> (int * 'a array) array
(** [group_by pool ~key ~buckets a] returns the non-empty groups in
    increasing key order; within a group, input order is preserved (the
    underlying counting sort is stable). *)

val count_by : Pool.t -> key:('a -> int) -> buckets:int -> 'a array -> int array
(** Just the per-key counts. *)
