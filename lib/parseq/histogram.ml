open Rpb_pool

let num_blocks pool n =
  let target = 8 * Pool.size pool in
  max 1 (min target (Rpb_prim.Util.ceil_div n 1024))

let histogram_seq ~keys ~buckets =
  let out = Array.make buckets 0 in
  Array.iter (fun k -> out.(k) <- out.(k) + 1) keys;
  out

let histogram pool ~keys ~buckets =
  let n = Array.length keys in
  let nb = num_blocks pool n in
  let bsize = Rpb_prim.Util.ceil_div n (max nb 1) in
  let counts = Array.make (nb * buckets) 0 in
  (Pool.Trace.span pool "hist.count" @@ fun () ->
   Pool.parallel_for ~grain:1 ~start:0 ~finish:nb
     ~body:(fun b ->
       let lo = b * bsize and hi = min n ((b + 1) * bsize) in
       let base = b * buckets in
       for i = lo to hi - 1 do
         let k = Array.unsafe_get keys i in
         counts.(base + k) <- counts.(base + k) + 1
       done)
     pool);
  let out = Array.make buckets 0 in
  (Pool.Trace.span pool "hist.merge" @@ fun () ->
   Pool.parallel_for ~start:0 ~finish:buckets
     ~body:(fun k ->
       let acc = ref 0 in
       for b = 0 to nb - 1 do
         acc := !acc + counts.((b * buckets) + k)
       done;
       out.(k) <- !acc)
     pool);
  out

let histogram_atomic pool ~keys ~buckets =
  let counts = Rpb_prim.Atomic_array.make buckets 0 in
  Pool.parallel_for ~start:0 ~finish:(Array.length keys)
    ~body:(fun i ->
      ignore
        (Rpb_prim.Atomic_array.fetch_and_add counts (Array.unsafe_get keys i) 1))
    pool;
  Rpb_prim.Atomic_array.to_array counts

let histogram_mutex ?(stripes = 64) pool ~keys ~buckets =
  let locks = Array.init (min stripes buckets) (fun _ -> Mutex.create ()) in
  let nlocks = Array.length locks in
  let out = Array.make buckets 0 in
  Pool.parallel_for ~start:0 ~finish:(Array.length keys)
    ~body:(fun i ->
      let k = Array.unsafe_get keys i in
      let m = locks.(k mod nlocks) in
      Mutex.lock m;
      out.(k) <- out.(k) + 1;
      Mutex.unlock m)
    pool;
  out

type stats = {
  mutable count : int;
  mutable total : int;
  mutable vmin : int;
  mutable vmax : int;
}

let stats_empty () = { count = 0; total = 0; vmin = max_int; vmax = min_int }

let stats_equal a b =
  a.count = b.count && a.total = b.total && a.vmin = b.vmin && a.vmax = b.vmax

let stats_add s v =
  s.count <- s.count + 1;
  s.total <- s.total + v;
  if v < s.vmin then s.vmin <- v;
  if v > s.vmax then s.vmax <- v

let stats_merge into from =
  into.count <- into.count + from.count;
  into.total <- into.total + from.total;
  if from.vmin < into.vmin then into.vmin <- from.vmin;
  if from.vmax > into.vmax then into.vmax <- from.vmax

type stats_mode = Stats_seq | Stats_mutex | Stats_private

let stats_mode_name = function
  | Stats_seq -> "seq"
  | Stats_mutex -> "mutex"
  | Stats_private -> "private"

let histogram_stats ~mode pool ~keys ~values ~buckets =
  if Array.length keys <> Array.length values then
    invalid_arg "Histogram.histogram_stats: keys/values length mismatch";
  let n = Array.length keys in
  match mode with
  | Stats_seq ->
    let out = Array.init buckets (fun _ -> stats_empty ()) in
    for i = 0 to n - 1 do
      stats_add out.(keys.(i)) values.(i)
    done;
    out
  | Stats_mutex ->
    (* One lock per bucket: the multi-word accumulator cannot be a single
       atomic, so every update serializes through its bucket's mutex. *)
    let out = Array.init buckets (fun _ -> stats_empty ()) in
    let locks = Array.init buckets (fun _ -> Mutex.create ()) in
    Pool.parallel_for ~start:0 ~finish:n
      ~body:(fun i ->
        let k = Array.unsafe_get keys i in
        Mutex.lock locks.(k);
        stats_add out.(k) (Array.unsafe_get values i);
        Mutex.unlock locks.(k))
      pool;
    out
  | Stats_private ->
    let nb = num_blocks pool n in
    let bsize = Rpb_prim.Util.ceil_div n (max nb 1) in
    let partial = Array.init nb (fun _ -> Array.init buckets (fun _ -> stats_empty ())) in
    (Pool.Trace.span pool "hist.stats_count" @@ fun () ->
     Pool.parallel_for ~grain:1 ~start:0 ~finish:nb
       ~body:(fun b ->
         let lo = b * bsize and hi = min n ((b + 1) * bsize) in
         let local = partial.(b) in
         for i = lo to hi - 1 do
           stats_add local.(Array.unsafe_get keys i) (Array.unsafe_get values i)
         done)
       pool);
    let out = Array.init buckets (fun _ -> stats_empty ()) in
    (Pool.Trace.span pool "hist.stats_merge" @@ fun () ->
     Pool.parallel_for ~start:0 ~finish:buckets
       ~body:(fun k ->
         for b = 0 to nb - 1 do
           stats_merge out.(k) partial.(b).(k)
         done)
       pool);
    out
