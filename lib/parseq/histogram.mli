(** Histogramming — the paper's [hist] benchmark family.

    Plain integer counts admit several implementations across the fear
    spectrum: deterministic per-block privatization (regular), atomic
    fetch-and-add (AW, "almost zero-cost but scary"), and striped mutexes.
    The "large struct" accumulator of Sec. 7.4 has no atomic analogue — only
    locks or privatization — which is exactly why the paper's hist slows down
    4x when synchronization replaces unsafe code. *)

open Rpb_pool

val histogram : Pool.t -> keys:int array -> buckets:int -> int array
(** Deterministic per-block counting + parallel merge. *)

val histogram_atomic : Pool.t -> keys:int array -> buckets:int -> int array
(** One atomic fetch-and-add per key. *)

val histogram_mutex :
  ?stripes:int -> Pool.t -> keys:int array -> buckets:int -> int array
(** Striped locks around plain counters. *)

val histogram_seq : keys:int array -> buckets:int -> int array

(** Accumulator too large for a single atomic — the paper's hist-with-structs
    case. *)
type stats = {
  mutable count : int;
  mutable total : int;
  mutable vmin : int;
  mutable vmax : int;
}

val stats_empty : unit -> stats

val stats_equal : stats -> stats -> bool

type stats_mode = Stats_seq | Stats_mutex | Stats_private

val stats_mode_name : stats_mode -> string

val histogram_stats :
  mode:stats_mode -> Pool.t -> keys:int array -> values:int array ->
  buckets:int -> stats array
(** Per-bucket count/sum/min/max of [values] grouped by [keys].
    [Stats_mutex] locks one mutex per bucket (the 4x-slowdown configuration);
    [Stats_private] privatizes per block and merges. *)
