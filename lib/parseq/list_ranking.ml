open Rpb_pool

let rank pool ~next =
  let n = Array.length next in
  let nxt = Array.copy next in
  let dist =
    Rpb_core.Par_array.init pool n (fun i -> if next.(i) = -1 then 0 else 1)
  in
  (* Pointer jumping: after round k every live pointer spans 2^k links, so
     log2 n rounds suffice for acyclic chains. *)
  let rounds = 2 + Rpb_prim.Util.ilog2 (Rpb_prim.Util.ceil_pow2 (max 1 n)) in
  let live = ref true in
  let round = ref 0 in
  while !live do
    incr round;
    if !round > rounds then invalid_arg "List_ranking.rank: cycle detected";
    let nxt_old = Array.copy nxt in
    let dist_old = Array.copy dist in
    let any = Atomic.make false in
    Pool.parallel_for ~start:0 ~finish:n
      ~body:(fun i ->
        let j = Array.unsafe_get nxt_old i in
        if j <> -1 then begin
          Array.unsafe_set dist i
            (Array.unsafe_get dist_old i + Array.unsafe_get dist_old j);
          Array.unsafe_set nxt i (Array.unsafe_get nxt_old j);
          if Array.unsafe_get nxt_old j <> -1 then Atomic.set any true
        end)
      pool;
    live := Atomic.get any
  done;
  dist

let rank_cycle pool ~next ~start =
  let n = Array.length next in
  if n = 0 then [||]
  else begin
    (* Break the cycle just before [start]: the node pointing at [start]
       becomes a chain end; distance-to-end then gives position. *)
    let broken = Array.copy next in
    let pred = ref (-1) in
    Array.iteri (fun i j -> if j = start then pred := i) next;
    if !pred = -1 then invalid_arg "List_ranking.rank_cycle: start unreachable";
    broken.(!pred) <- -1;
    let dist = rank pool ~next:broken in
    (* dist.(start) = n - 1; position = (n - 1) - dist. *)
    Rpb_core.Par_array.init pool n (fun i -> n - 1 - dist.(i))
  end
