(** Parallel list ranking by pointer jumping (Wyllie's algorithm).

    Given a linked structure as a successor array, computes each node's
    distance to the end of its chain in O(log n) rounds of O(n) work.  This
    is the PBBS technique that parallelizes inherently-sequential pointer
    chases such as the Burrows–Wheeler decode walk (see
    {!Rpb_text.Bwt.decode_parallel}). *)

open Rpb_pool

val rank : Pool.t -> next:int array -> int array
(** [rank pool ~next] where [next.(i)] is node [i]'s successor or [-1] at a
    chain end.  Returns [dist] with [dist.(i)] = number of links from [i] to
    its chain's end ([0] for ends).  All chains must be acyclic; a cycle
    makes the result meaningless (guarded by a round cap that raises
    [Invalid_argument]). *)

val rank_cycle : Pool.t -> next:int array -> start:int -> int array
(** [rank_cycle pool ~next ~start] for a permutation [next] forming a single
    cycle through all nodes: returns [pos] with [pos.(i)] = number of steps
    from [start] to [i] along the cycle ([pos.(start) = 0]). *)
