open Rpb_pool

let lower_bound cmp a ~lo ~hi x =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if cmp a.(mid) x < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let upper_bound cmp a ~lo ~hi x =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if cmp a.(mid) x <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let seq_merge cmp a alo ahi b blo bhi out out_lo =
  let i = ref alo and j = ref blo and k = ref out_lo in
  while !i < ahi && !j < bhi do
    (* [<= 0] keeps the merge stable with ties drawn from [a]. *)
    if cmp (Array.unsafe_get a !i) (Array.unsafe_get b !j) <= 0 then begin
      Array.unsafe_set out !k (Array.unsafe_get a !i);
      incr i
    end
    else begin
      Array.unsafe_set out !k (Array.unsafe_get b !j);
      incr j
    end;
    incr k
  done;
  while !i < ahi do
    Array.unsafe_set out !k (Array.unsafe_get a !i);
    incr i;
    incr k
  done;
  while !j < bhi do
    Array.unsafe_set out !k (Array.unsafe_get b !j);
    incr j;
    incr k
  done

let merge_cutoff = 4096

let merge_into pool ~cmp a ~alo ~ahi b ~blo ~bhi out ~out_lo =
  let rec go alo ahi blo bhi out_lo =
    let total = ahi - alo + (bhi - blo) in
    if total <= merge_cutoff then seq_merge cmp a alo ahi b blo bhi out out_lo
    else if ahi - alo >= bhi - blo then begin
      (* Split [a] at its median; find where that value belongs in [b].
         Using lower_bound on [b] keeps stability: equal b-elements stay to
         the right of the a-median. *)
      let amid = alo + ((ahi - alo) / 2) in
      let bmid = lower_bound cmp b ~lo:blo ~hi:bhi a.(amid) in
      let out_mid = out_lo + (amid - alo) + (bmid - blo) in
      let ((), ()) =
        Pool.join pool
          (fun () -> go alo amid blo bmid out_lo)
          (fun () -> go amid ahi bmid bhi out_mid)
      in
      ()
    end
    else begin
      let bmid = blo + ((bhi - blo) / 2) in
      (* upper_bound on [a]: a-elements equal to b's median must go left. *)
      let amid = upper_bound cmp a ~lo:alo ~hi:ahi b.(bmid) in
      let out_mid = out_lo + (amid - alo) + (bmid - blo) in
      let ((), ()) =
        Pool.join pool
          (fun () -> go alo amid blo bmid out_lo)
          (fun () -> go amid ahi bmid bhi out_mid)
      in
      ()
    end
  in
  go alo ahi blo bhi out_lo

let merge pool ~cmp a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 then Array.copy b
  else if nb = 0 then Array.copy a
  else begin
    let out = Array.make (na + nb) a.(0) in
    merge_into pool ~cmp a ~alo:0 ~ahi:na b ~blo:0 ~bhi:nb out ~out_lo:0;
    out
  end
