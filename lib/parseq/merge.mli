(** Parallel merge of two sorted runs by divide and conquer: split the larger
    run at its median, binary-search the split point in the other, and merge
    the halves into disjoint output ranges — fork-join with statically
    disjoint writes, i.e. fearless in the paper's taxonomy. *)

open Rpb_pool

val lower_bound : ('a -> 'a -> int) -> 'a array -> lo:int -> hi:int -> 'a -> int
(** First index in [\[lo, hi)] whose element is [>= x] (all equal elements to
    the right). *)

val upper_bound : ('a -> 'a -> int) -> 'a array -> lo:int -> hi:int -> 'a -> int
(** First index in [\[lo, hi)] whose element is [> x]. *)

val merge_into :
  Pool.t -> cmp:('a -> 'a -> int) ->
  'a array -> alo:int -> ahi:int ->
  'a array -> blo:int -> bhi:int ->
  'a array -> out_lo:int -> unit
(** Merge [a.(alo..ahi)] and [b.(blo..bhi)] (both sorted, half-open) into
    [out] starting at [out_lo].  Stable: ties taken from [a] first.  The
    output region must not alias the inputs. *)

val merge : Pool.t -> cmp:('a -> 'a -> int) -> 'a array -> 'a array -> 'a array
