open Rpb_pool

let packi pool p a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let flags =
      Rpb_core.Par_array.init pool n (fun i ->
          if p i (Array.unsafe_get a i) then 1 else 0)
    in
    let positions, total = Scan.exclusive_int pool flags in
    if total = 0 then [||]
    else begin
      let out = Array.make total a.(0) in
      (* Offsets are unique by construction (strictly increasing where
         flagged), so the unchecked scatter is algorithmically safe. *)
      Pool.parallel_for ~start:0 ~finish:n
        ~body:(fun i ->
          if Array.unsafe_get flags i = 1 then
            Array.unsafe_set out
              (Array.unsafe_get positions i)
              (Array.unsafe_get a i))
        pool;
      out
    end
  end

let pack pool p a = packi pool (fun _ x -> p x) a

let pack_index pool p n =
  let idx = Rpb_core.Par_array.init pool n (fun i -> i) in
  packi pool (fun i _ -> p i) idx

let partition pool p a =
  let yes = pack pool p a in
  let no = pack pool (fun x -> not (p x)) a in
  (yes, no)

let flatten pool parts =
  let k = Array.length parts in
  if k = 0 then [||]
  else begin
    let lengths = Rpb_core.Par_array.init pool k (fun i -> Array.length parts.(i)) in
    let offsets, total = Scan.exclusive_int pool lengths in
    if total = 0 then [||]
    else begin
      (* Find a witness element to initialize the output. *)
      let rec first i = if Array.length parts.(i) > 0 then parts.(i).(0) else first (i + 1) in
      let out = Array.make total (first 0) in
      Pool.parallel_for ~grain:1 ~start:0 ~finish:k
        ~body:(fun i ->
          let part = parts.(i) in
          let off = offsets.(i) in
          for j = 0 to Array.length part - 1 do
            Array.unsafe_set out (off + j) (Array.unsafe_get part j)
          done)
        pool;
      out
    end
  end
