(** Parallel pack/filter — flags, a scan, and an indirect write.

    Pack is the paper's "pack" algorithmic pattern (Sec. 7.1 coverage list);
    its write phase is a SngInd whose offsets come from a prefix sum and are
    therefore unique by construction — precisely the situation where the
    programmer "knows" the scatter is safe but the type system cannot. *)

open Rpb_pool

val pack : Pool.t -> ('a -> bool) -> 'a array -> 'a array
(** Elements satisfying the predicate, in their original order. *)

val packi : Pool.t -> (int -> 'a -> bool) -> 'a array -> 'a array

val pack_index : Pool.t -> (int -> bool) -> int -> int array
(** [pack_index pool p n] is the sorted array of indices in [\[0, n)]
    satisfying [p]. *)

val partition : Pool.t -> ('a -> bool) -> 'a array -> 'a array * 'a array
(** [(yes, no)] keeping relative order in both halves. *)

val flatten : Pool.t -> 'a array array -> 'a array
(** Parallel concatenation via a scan of lengths and RngInd chunk writes. *)
