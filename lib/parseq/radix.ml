open Rpb_pool

let num_blocks pool n =
  let target = 8 * Pool.size pool in
  max 1 (min target (Rpb_prim.Util.ceil_div n 1024))

let rank_by_key pool ~keys ~buckets =
  assert (buckets > 0);
  let n = Array.length keys in
  let dest = Array.make n 0 in
  if n > 0 then begin
    let nb = num_blocks pool n in
    let bsize = Rpb_prim.Util.ceil_div n nb in
    (* counts.(b * buckets + k): occurrences of key k in block b. *)
    let counts = Array.make (nb * buckets) 0 in
    Pool.parallel_for ~grain:1 ~start:0 ~finish:nb
      ~body:(fun b ->
        let lo = b * bsize and hi = min n ((b + 1) * bsize) in
        let base = b * buckets in
        for i = lo to hi - 1 do
          let k = Array.unsafe_get keys i in
          counts.(base + k) <- counts.(base + k) + 1
        done)
      pool;
    (* Global stable order: key-major, then block-major.  Column-major scan
       of the counts matrix gives each (key, block) its start position. *)
    let col = Array.make (nb * buckets) 0 in
    Pool.parallel_for ~start:0 ~finish:(nb * buckets)
      ~body:(fun j ->
        let k = j / nb and b = j mod nb in
        col.(j) <- counts.((b * buckets) + k))
      pool;
    let _total = Scan.exclusive_inplace_int pool col in
    Pool.parallel_for ~grain:1 ~start:0 ~finish:nb
      ~body:(fun b ->
        let lo = b * bsize and hi = min n ((b + 1) * bsize) in
        (* Per-block running cursor for each key. *)
        let cursor = Array.make buckets 0 in
        for k = 0 to buckets - 1 do
          cursor.(k) <- col.((k * nb) + b)
        done;
        for i = lo to hi - 1 do
          let k = Array.unsafe_get keys i in
          Array.unsafe_set dest i cursor.(k);
          cursor.(k) <- cursor.(k) + 1
        done)
      pool
  end;
  dest

let counting_sort_by pool ~key ~buckets a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let keys = Rpb_core.Par_array.init pool n (fun i -> key a.(i)) in
    let dest = rank_by_key pool ~keys ~buckets in
    let out = Array.make n a.(0) in
    Pool.parallel_for ~start:0 ~finish:n
      ~body:(fun i ->
        Array.unsafe_set out (Array.unsafe_get dest i) (Array.unsafe_get a i))
      pool;
    out
  end

let counting_sort pool ~buckets a = counting_sort_by pool ~key:Fun.id ~buckets a

let radix_bits = 8
let radix_buckets = 1 lsl radix_bits

let radix_sort_by pool ~key a =
  let n = Array.length a in
  if n <= 1 then Array.copy a
  else begin
    let max_key =
      Pool.parallel_for_reduce ~start:0 ~finish:n
        ~body:(fun i ->
          let k = key a.(i) in
          if k < 0 then invalid_arg "Radix.radix_sort_by: negative key";
          k)
        ~combine:max ~init:0 pool
    in
    let passes =
      let rec go bits acc = if max_key lsr bits = 0 then max acc 1 else go (bits + radix_bits) (acc + 1) in
      go radix_bits 1
    in
    let cur = ref (Array.copy a) in
    for p = 0 to passes - 1 do
      let shift = p * radix_bits in
      cur :=
        counting_sort_by pool
          ~key:(fun x -> (key x lsr shift) land (radix_buckets - 1))
          ~buckets:radix_buckets !cur
    done;
    !cur
  end

let radix_sort pool a = radix_sort_by pool ~key:Fun.id a
