(** Stable counting sort and LSD radix sort for non-negative integer keys.

    Counting sort's scatter phase writes [out.(rank.(i)) <- a.(i)] where the
    ranks are produced by a prefix sum over per-block bucket counts — unique
    by construction, the SngInd situation of the paper's isort/bw/sa
    benchmarks. *)

open Rpb_pool

val rank_by_key : Pool.t -> keys:int array -> buckets:int -> int array
(** [rank_by_key pool ~keys ~buckets] returns [dest] such that writing each
    element [i] to position [dest.(i)] is a stable sort by [keys.(i)].  All
    keys must lie in [\[0, buckets)]. *)

val counting_sort : Pool.t -> buckets:int -> int array -> int array
(** Stable sorted copy of an array of small non-negative integers. *)

val counting_sort_by : Pool.t -> key:('a -> int) -> buckets:int -> 'a array -> 'a array
(** Stable counting sort of arbitrary elements by a small integer key. *)

val radix_sort : Pool.t -> int array -> int array
(** Sorted copy of an array of non-negative integers (LSD radix, 8-bit
    digits, as many passes as the maximum key requires). *)

val radix_sort_by : Pool.t -> key:('a -> int) -> 'a array -> 'a array
(** Stable LSD radix sort of arbitrary elements by a non-negative integer
    key. *)
