open Rpb_pool

(* Swap target for index i: a hash-derived uniform value in [0, i]. *)
let target ~seed i = if i = 0 then 0 else Rpb_prim.Rng.hash64 ((seed * 2654435761) + i) mod (i + 1)

let shuffle_generic pool ~seed n ~swap =
  (* owner.(c): highest remaining index bidding for cell c this round. *)
  let owner = Rpb_prim.Atomic_array.make n (-1) in
  let remaining = ref (Rpb_core.Par_array.init pool n (fun i -> n - 1 - i)) in
  let guard = ref 0 in
  while Array.length !remaining > 0 do
    incr guard;
    if !guard > n + 64 then failwith "Random_perm: no progress";
    let frontier = !remaining in
    (* Reserve both cells with a max-priority write. *)
    Pool.parallel_for ~start:0 ~finish:(Array.length frontier)
      ~body:(fun j ->
        let i = frontier.(j) in
        ignore (Rpb_prim.Atomic_array.fetch_max owner i i);
        ignore (Rpb_prim.Atomic_array.fetch_max owner (target ~seed i) i))
      pool;
    (* Winners own both cells; their swaps are pairwise disjoint. *)
    let done_ = Array.make (Array.length frontier) false in
    Pool.parallel_for ~start:0 ~finish:(Array.length frontier)
      ~body:(fun j ->
        let i = frontier.(j) in
        let h = target ~seed i in
        if Rpb_prim.Atomic_array.get owner i = i
           && Rpb_prim.Atomic_array.get owner h = i
        then begin
          swap i h;
          done_.(j) <- true
        end)
      pool;
    (* Clear only the touched cells, then retry the losers. *)
    Pool.parallel_for ~start:0 ~finish:(Array.length frontier)
      ~body:(fun j ->
        let i = frontier.(j) in
        Rpb_prim.Atomic_array.set owner i (-1);
        Rpb_prim.Atomic_array.set owner (target ~seed i) (-1))
      pool;
    remaining := Pack.packi pool (fun j _ -> not done_.(j)) frontier
  done

let permutation pool ~seed n =
  let a = Rpb_core.Par_array.init pool n Fun.id in
  shuffle_generic pool ~seed n ~swap:(fun i j -> Rpb_prim.Util.array_swap a i j);
  a

let permutation_seq ~seed n =
  let a = Array.init n Fun.id in
  for i = n - 1 downto 0 do
    Rpb_prim.Util.array_swap a i (target ~seed i)
  done;
  a

let shuffle_inplace pool ~seed a =
  shuffle_generic pool ~seed (Array.length a) ~swap:(fun i j ->
      Rpb_prim.Util.array_swap a i j)
