(** Parallel random permutation by deterministic reservations — the PBBS
    technique (Shun et al.) underlying the suite's mis/mm round structure,
    applied to the Knuth shuffle.

    Every index [i] draws a swap target [h i <= i]; the sequential shuffle
    performs [swap a.(i) a.(h i)] for [i = n-1 downto 0].  In parallel,
    each remaining index bids for both its cells with an atomic
    priority-write (max index wins); winners' swap sets are disjoint, so
    they commit in parallel, and the result is bit-identical to the
    sequential shuffle over the same targets. *)

open Rpb_pool

val permutation : Pool.t -> seed:int -> int -> int array
(** A uniform pseudo-random permutation of [0 .. n-1], identical to
    {!permutation_seq} with the same seed. *)

val permutation_seq : seed:int -> int -> int array
(** Sequential Knuth shuffle over the same hash-derived swap targets. *)

val shuffle_inplace : Pool.t -> seed:int -> 'a array -> unit
(** Apply the same permutation to arbitrary payloads. *)
