open Rpb_pool

let num_blocks pool n =
  let target = 8 * Pool.size pool in
  max 1 (min target (Rpb_prim.Util.ceil_div n 512))

(* Two-pass block scan.  [write i acc] receives the exclusive prefix for
   index [i]; it returns the value to fold in. *)
let block_scan pool f id a ~emit =
  Pool.Trace.span pool "scan.block" @@ fun () ->
  let n = Array.length a in
  if n = 0 then id
  else begin
    let nb = num_blocks pool n in
    let bsize = Rpb_prim.Util.ceil_div n nb in
    let sums = Array.make nb id in
    Pool.parallel_for ~grain:1 ~start:0 ~finish:nb
      ~body:(fun b ->
        let lo = b * bsize and hi = min n ((b + 1) * bsize) in
        let acc = ref id in
        for i = lo to hi - 1 do
          acc := f !acc (Array.unsafe_get a i)
        done;
        sums.(b) <- !acc)
      pool;
    let total = ref id in
    let prefix = Array.make nb id in
    for b = 0 to nb - 1 do
      prefix.(b) <- !total;
      total := f !total sums.(b)
    done;
    Pool.parallel_for ~grain:1 ~start:0 ~finish:nb
      ~body:(fun b ->
        let lo = b * bsize and hi = min n ((b + 1) * bsize) in
        let acc = ref prefix.(b) in
        for i = lo to hi - 1 do
          let x = Array.unsafe_get a i in
          emit i !acc x;
          acc := f !acc x
        done)
      pool;
    !total
  end

let exclusive pool f id a =
  let n = Array.length a in
  let out = Array.make n id in
  let total =
    block_scan pool f id a ~emit:(fun i acc _x -> Array.unsafe_set out i acc)
  in
  (out, total)

let inclusive pool f id a =
  let n = Array.length a in
  let out = Array.make n id in
  let _total =
    block_scan pool f id a ~emit:(fun i acc x ->
        Array.unsafe_set out i (f acc x))
  in
  out

let exclusive_int pool a = exclusive pool ( + ) 0 a
let inclusive_int pool a = inclusive pool ( + ) 0 a

let exclusive_inplace_int pool a =
  block_scan pool ( + ) 0 a ~emit:(fun i acc _x -> Array.unsafe_set a i acc)
