(** Parallel prefix sums (scans) — the canonical regular pattern the paper's
    abstract names ("Rust ... delivers fearlessness for program phases
    comprising only regular parallelism, e.g., prefix-sum").

    Implemented with the standard two-pass block algorithm: per-block
    reductions (RO), a sequential scan of the small block-sum array, and a
    per-block Stride pass writing results. *)

open Rpb_pool

val exclusive : Pool.t -> ('a -> 'a -> 'a) -> 'a -> 'a array -> 'a array * 'a
(** [exclusive pool f id a] returns [(out, total)] with
    [out.(i) = f (... f (f id a.(0)) ...) a.(i-1)] and [total] the reduction
    of the whole array.  [f] must be associative with identity [id]. *)

val inclusive : Pool.t -> ('a -> 'a -> 'a) -> 'a -> 'a array -> 'a array
(** [inclusive pool f id a] returns [out] with [out.(i)] the reduction of
    [a.(0..i)]. *)

val exclusive_int : Pool.t -> int array -> int array * int
(** Specialized integer [(+)] exclusive scan. *)

val inclusive_int : Pool.t -> int array -> int array

val exclusive_inplace_int : Pool.t -> int array -> int
(** In-place exclusive integer scan; returns the total. *)
