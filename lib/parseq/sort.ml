open Rpb_pool

let seq_cutoff = 2048

(* ---------- merge sort ---------- *)

(* Sorts src.[lo,hi) and leaves the result in dst.[lo,hi) when [to_dst],
   otherwise in src itself.  Children sort into the opposite buffer so the
   final merge lands in the requested one. *)
let rec msort pool cmp src dst lo hi to_dst =
  if hi - lo <= seq_cutoff then begin
    let len = hi - lo in
    let tmp = Array.sub src lo len in
    Array.stable_sort cmp tmp;
    let target = if to_dst then dst else src in
    Array.blit tmp 0 target lo len
  end
  else begin
    let mid = lo + ((hi - lo) / 2) in
    let ((), ()) =
      Pool.join pool
        (fun () -> msort pool cmp src dst lo mid (not to_dst))
        (fun () -> msort pool cmp src dst mid hi (not to_dst))
    in
    let from = if to_dst then src else dst in
    let target = if to_dst then dst else src in
    Merge.merge_into pool ~cmp from ~alo:lo ~ahi:mid from ~blo:mid ~bhi:hi
      target ~out_lo:lo
  end

let merge_sort_inplace pool ~cmp a =
  Pool.Trace.span pool "sort.merge" @@ fun () ->
  let n = Array.length a in
  if n > 1 then begin
    let buf = Array.copy a in
    msort pool cmp a buf 0 n false
  end

let merge_sort pool ~cmp a =
  let out = Array.copy a in
  merge_sort_inplace pool ~cmp out;
  out

(* ---------- sample sort ---------- *)

let sample_sort_with ~oversample pool ~cmp a =
  Pool.Trace.span pool "sort.sample" @@ fun () ->
  let n = Array.length a in
  if n <= seq_cutoff then begin
    let out = Array.copy a in
    Array.stable_sort cmp out;
    out
  end
  else begin
    assert (oversample >= 1);
    let nbuckets =
      min 256 (max 2 (int_of_float (sqrt (float_of_int n)) / 16))
    in
    (* Deterministic sample: strided hashes of the index space. *)
    let rng = Rpb_prim.Rng.create 0x5A317E in
    let sample =
      Array.init (nbuckets * oversample) (fun _ -> a.(Rpb_prim.Rng.int rng n))
    in
    Array.stable_sort cmp sample;
    let pivots = Array.init (nbuckets - 1) (fun i -> sample.((i + 1) * oversample)) in
    (* Bucket id of each element: binary search among pivots.  Stride. *)
    let bucket_of x =
      (* first pivot > x gives the bucket *)
      let lo = ref 0 and hi = ref (Array.length pivots) in
      while !lo < !hi do
        let mid = !lo + ((!hi - !lo) / 2) in
        if cmp pivots.(mid) x < 0 then lo := mid + 1 else hi := mid
      done;
      !lo
    in
    let bids = Rpb_core.Par_array.init pool n (fun i -> bucket_of a.(i)) in
    (* Stable counting scatter by bucket id. *)
    let dest = Radix.rank_by_key pool ~keys:bids ~buckets:nbuckets in
    let out = Array.make n a.(0) in
    Pool.parallel_for ~start:0 ~finish:n
      ~body:(fun i -> Array.unsafe_set out (Array.unsafe_get dest i) (Array.unsafe_get a i))
      pool;
    (* Bucket boundaries = histogram + scan, then sort each bucket. *)
    let counts = Histogram.histogram pool ~keys:bids ~buckets:nbuckets in
    let starts, _ = Scan.exclusive_int pool counts in
    Pool.parallel_for ~grain:1 ~start:0 ~finish:nbuckets
      ~body:(fun b ->
        let lo = starts.(b) in
        let hi = if b + 1 < nbuckets then starts.(b + 1) else n in
        if hi - lo > 1 then begin
          let tmp = Array.sub out lo (hi - lo) in
          Array.stable_sort cmp tmp;
          Array.blit tmp 0 out lo (hi - lo)
        end)
      pool;
    out
  end

let sample_sort pool ~cmp a = sample_sort_with ~oversample:8 pool ~cmp a

let is_sorted pool ~cmp a =
  let n = Array.length a in
  n <= 1
  || Pool.parallel_for_reduce ~start:1 ~finish:n
       ~body:(fun i -> cmp a.(i - 1) a.(i) <= 0)
       ~combine:( && ) ~init:true pool
