(** Comparison sorts.

    [merge_sort] is the divide-and-conquer of the paper's Listing 9 — fork
    two recursive sorts with [join], then a parallel merge.  [sample_sort] is
    the algorithm behind the paper's [sort] benchmark (Sec. 7.1 "For sort, we
    use sample sort"): sample, pick pivots, bucket by binary search, scatter
    into bucket ranges (RngInd-style disjoint chunks), then sort each bucket.
    Both are stable. *)

open Rpb_pool

val seq_cutoff : int
(** Below this size all sorts fall back to sequential stable sort. *)

val merge_sort : Pool.t -> cmp:('a -> 'a -> int) -> 'a array -> 'a array
(** Out-of-place stable merge sort; the input is not modified. *)

val merge_sort_inplace : Pool.t -> cmp:('a -> 'a -> int) -> 'a array -> unit

val sample_sort : Pool.t -> cmp:('a -> 'a -> int) -> 'a array -> 'a array
(** Out-of-place stable sample sort; the input is not modified. *)

val sample_sort_with :
  oversample:int -> Pool.t -> cmp:('a -> 'a -> int) -> 'a array -> 'a array
(** [sample_sort] with an explicit oversampling factor (ablation hook;
    default 8). *)

val is_sorted : Pool.t -> cmp:('a -> 'a -> int) -> 'a array -> bool
