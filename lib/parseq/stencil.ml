open Rpb_pool

let jacobi_1d pool ~iterations a =
  let n = Array.length a in
  if n < 3 || iterations = 0 then Array.copy a
  else begin
    let cur = ref (Array.copy a) in
    let nxt = ref (Array.copy a) in
    for _ = 1 to iterations do
      let src = !cur and dst = !nxt in
      Pool.parallel_for ~start:1 ~finish:(n - 1)
        ~body:(fun i ->
          Array.unsafe_set dst i
            ((Array.unsafe_get src (i - 1)
              +. Array.unsafe_get src i
              +. Array.unsafe_get src (i + 1))
            /. 3.0))
        pool;
      cur := dst;
      nxt := src
    done;
    !cur
  end

let jacobi_1d_seq ~iterations a =
  let n = Array.length a in
  if n < 3 || iterations = 0 then Array.copy a
  else begin
    let cur = ref (Array.copy a) in
    let nxt = ref (Array.copy a) in
    for _ = 1 to iterations do
      let src = !cur and dst = !nxt in
      for i = 1 to n - 2 do
        dst.(i) <- (src.(i - 1) +. src.(i) +. src.(i + 1)) /. 3.0
      done;
      cur := dst;
      nxt := src
    done;
    !cur
  end

let jacobi_2d pool ~iterations ~rows ~cols a =
  if Array.length a <> rows * cols then
    invalid_arg "Stencil.jacobi_2d: grid size mismatch";
  if rows < 3 || cols < 3 || iterations = 0 then Array.copy a
  else begin
    let cur = ref (Array.copy a) in
    let nxt = ref (Array.copy a) in
    for _ = 1 to iterations do
      let src = !cur and dst = !nxt in
      (* One task per interior row: Block-style disjoint writes. *)
      Pool.parallel_for ~start:1 ~finish:(rows - 1)
        ~body:(fun r ->
          let base = r * cols in
          for c = 1 to cols - 2 do
            let i = base + c in
            Array.unsafe_set dst i
              ((Array.unsafe_get src (i - cols)
                +. Array.unsafe_get src (i - 1)
                +. Array.unsafe_get src i
                +. Array.unsafe_get src (i + 1)
                +. Array.unsafe_get src (i + cols))
              /. 5.0)
          done)
        pool;
      cur := dst;
      nxt := src
    done;
    !cur
  end
