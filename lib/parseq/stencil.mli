(** Stencil computations — one of the regular patterns in the paper's
    coverage list (Sec. 7.1): each output cell reads a fixed neighbourhood of
    the input generation and writes only its own cell, a Stride write over a
    double-buffered pair of grids. *)

open Rpb_pool

val jacobi_1d : Pool.t -> iterations:int -> float array -> float array
(** Repeated three-point averaging with fixed endpoints.  Returns a new
    array; the input is untouched. *)

val jacobi_2d :
  Pool.t -> iterations:int -> rows:int -> cols:int -> float array -> float array
(** Five-point stencil on a row-major [rows x cols] grid with fixed border
    cells. *)

val jacobi_1d_seq : iterations:int -> float array -> float array
(** Sequential reference. *)
