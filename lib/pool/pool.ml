type task = unit -> unit

type 'a state = Pending | Done of 'a | Raised of exn
type 'a promise = 'a state Atomic.t

exception Shutdown

type t = {
  id : int;
  num_workers : int;
  deques : task Ws_deque.t array;
  mutable domains : unit Domain.t array;
  injector : task Queue.t;
  inj_mutex : Mutex.t;
  idle_mutex : Mutex.t;
  idle_cond : Condition.t;
  wake_version : int Atomic.t;
  sleepers : int Atomic.t;
  shutdown_flag : bool Atomic.t;
  running : bool Atomic.t;
  tasks_executed : int Atomic.t;
  steals : int Atomic.t;
}

let next_pool_id = Atomic.make 0

(* Which (pool id, worker index) the current domain is executing for. *)
let slot_key : (int * int) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let my_index pool =
  match !(Domain.DLS.get slot_key) with
  | Some (pid, idx) when pid = pool.id -> Some idx
  | _ -> None

let size pool = pool.num_workers

(* Eventcount-style wakeup: pushers bump [wake_version] then broadcast if any
   worker registered as sleeping; sleepers re-check the version under the
   mutex before waiting, so no wakeup can be missed. *)
let signal_work pool =
  Atomic.incr pool.wake_version;
  if Atomic.get pool.sleepers > 0 then begin
    Mutex.lock pool.idle_mutex;
    Condition.broadcast pool.idle_cond;
    Mutex.unlock pool.idle_mutex
  end

let push_local pool idx task =
  Ws_deque.push pool.deques.(idx) task;
  signal_work pool

let push_external pool task =
  Mutex.lock pool.inj_mutex;
  Queue.push task pool.injector;
  Mutex.unlock pool.inj_mutex;
  signal_work pool

let take_injected pool =
  if Queue.is_empty pool.injector then None
  else begin
    Mutex.lock pool.inj_mutex;
    let t = Queue.take_opt pool.injector in
    Mutex.unlock pool.inj_mutex;
    t
  end

(* One attempt to find work: own deque first (depth-first order), then a
   random sweep over victims, then the injector. *)
let try_find_task pool my_idx rng =
  match Ws_deque.pop pool.deques.(my_idx) with
  | Some _ as t -> t
  | None ->
    let n = pool.num_workers in
    let start = if n > 1 then Rpb_prim.Rng.int rng n else 0 in
    let rec sweep k =
      if k >= n then None
      else begin
        let v = (start + k) mod n in
        if v = my_idx then sweep (k + 1)
        else
          match Ws_deque.steal pool.deques.(v) with
          | Some _ as t ->
            Atomic.incr pool.steals;
            t
          | None -> sweep (k + 1)
      end
    in
    (match sweep 0 with
     | Some _ as t -> t
     | None -> take_injected pool)

let execute pool task =
  Atomic.incr pool.tasks_executed;
  task ()

let worker_loop pool idx =
  Domain.DLS.get slot_key := Some (pool.id, idx);
  let rng = Rpb_prim.Rng.create (0x5EED + idx) in
  let spin_budget = 64 in
  let rec loop spins =
    if Atomic.get pool.shutdown_flag then ()
    else
      match try_find_task pool idx rng with
      | Some task ->
        execute pool task;
        loop spin_budget
      | None ->
        if spins > 0 then begin
          Domain.cpu_relax ();
          loop (spins - 1)
        end
        else begin
          (* Sleep until new work is signalled (or shutdown). *)
          let seen = Atomic.get pool.wake_version in
          Mutex.lock pool.idle_mutex;
          Atomic.incr pool.sleepers;
          if Atomic.get pool.wake_version = seen
             && not (Atomic.get pool.shutdown_flag)
          then Condition.wait pool.idle_cond pool.idle_mutex;
          Atomic.decr pool.sleepers;
          Mutex.unlock pool.idle_mutex;
          loop spin_budget
        end
  in
  loop spin_budget

let create ?name:_ ~num_workers () =
  if num_workers < 1 then invalid_arg "Pool.create: num_workers must be >= 1";
  let pool =
    {
      id = Atomic.fetch_and_add next_pool_id 1;
      num_workers;
      deques = Array.init num_workers (fun _ -> Ws_deque.create ());
      domains = [||];
      injector = Queue.create ();
      inj_mutex = Mutex.create ();
      idle_mutex = Mutex.create ();
      idle_cond = Condition.create ();
      wake_version = Atomic.make 0;
      sleepers = Atomic.make 0;
      shutdown_flag = Atomic.make false;
      running = Atomic.make false;
      tasks_executed = Atomic.make 0;
      steals = Atomic.make 0;
    }
  in
  pool.domains <-
    Array.init (num_workers - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop pool (i + 1)));
  pool

let shutdown pool =
  if not (Atomic.exchange pool.shutdown_flag true) then begin
    Mutex.lock pool.idle_mutex;
    Condition.broadcast pool.idle_cond;
    Mutex.unlock pool.idle_mutex;
    Array.iter Domain.join pool.domains;
    pool.domains <- [||]
  end

let check_alive pool = if Atomic.get pool.shutdown_flag then raise Shutdown

let make_task f p () =
  (match f () with
   | x -> Atomic.set p (Done x)
   | exception e -> Atomic.set p (Raised e))

let async pool f =
  check_alive pool;
  let p = Atomic.make Pending in
  (match my_index pool with
   | Some idx -> push_local pool idx (make_task f p)
   | None ->
     if pool.num_workers = 1 then
       (* No workers to pick the task up: run it eagerly. *)
       make_task f p ()
     else push_external pool (make_task f p));
  p

(* Helping wait: while the promise is pending, execute other pool tasks.  A
   worker never blocks here, so nested fork-join cannot deadlock. *)
let await pool p =
  let finish () =
    match Atomic.get p with
    | Done x -> x
    | Raised e -> raise e
    | Pending -> assert false
  in
  (match my_index pool with
   | Some idx ->
     let rng = Rpb_prim.Rng.create (0xA3A17 + idx) in
     let rec help spins =
       match Atomic.get p with
       | Pending ->
         (match try_find_task pool idx rng with
          | Some task ->
            execute pool task;
            help 64
          | None ->
            if spins > 0 then begin
              Domain.cpu_relax ();
              help (spins - 1)
            end
            else begin
              (* The task is running on another worker; yield the core. *)
              Unix.sleepf 5e-5;
              help 64
            end)
       | Done _ | Raised _ -> ()
     in
     help 64
   | None ->
     let rec wait () =
       match Atomic.get p with
       | Pending ->
         Unix.sleepf 1e-4;
         wait ()
       | Done _ | Raised _ -> ()
     in
     wait ());
  finish ()

let try_result p =
  match Atomic.get p with
  | Pending -> None
  | Done x -> Some (Ok x)
  | Raised e -> Some (Error e)

let join pool f g =
  match my_index pool with
  | None ->
    let a = f () in
    let b = g () in
    (a, b)
  | Some _ ->
    let pg = async pool g in
    let a = f () in
    let b = await pool pg in
    (a, b)

let default_grain pool n = max 1 (n / (8 * pool.num_workers))

let parallel_for ?grain ~start ~finish ~body pool =
  let n = finish - start in
  if n > 0 then begin
    let grain =
      match grain with Some g -> max 1 g | None -> default_grain pool n
    in
    if pool.num_workers = 1 || my_index pool = None then
      for i = start to finish - 1 do
        body i
      done
    else begin
      let rec go lo hi =
        if hi - lo <= grain then
          for i = lo to hi - 1 do
            body i
          done
        else begin
          let mid = lo + ((hi - lo) / 2) in
          let ((), ()) = join pool (fun () -> go lo mid) (fun () -> go mid hi) in
          ()
        end
      in
      go start finish
    end
  end

let parallel_for_reduce ?grain ~start ~finish ~body ~combine ~init pool =
  let n = finish - start in
  if n <= 0 then init
  else begin
    let grain =
      match grain with Some g -> max 1 g | None -> default_grain pool n
    in
    let leaf lo hi =
      let acc = ref init in
      for i = lo to hi - 1 do
        acc := combine !acc (body i)
      done;
      !acc
    in
    if pool.num_workers = 1 || my_index pool = None then leaf start finish
    else begin
      let rec go lo hi =
        if hi - lo <= grain then leaf lo hi
        else begin
          let mid = lo + ((hi - lo) / 2) in
          let a, b = join pool (fun () -> go lo mid) (fun () -> go mid hi) in
          combine a b
        end
      in
      go start finish
    end
  end

let parallel_chunks ?grain ~start ~finish ~body pool =
  let n = finish - start in
  if n > 0 then begin
    let grain =
      match grain with Some g -> max 1 g | None -> default_grain pool n
    in
    let chunks = Rpb_prim.Util.ceil_div n grain in
    parallel_for ~grain:1 ~start:0 ~finish:chunks
      ~body:(fun c ->
        let lo = start + (c * grain) in
        let hi = min finish (lo + grain) in
        body lo hi)
      pool
  end

let run pool f =
  check_alive pool;
  (match my_index pool with
   | Some _ -> invalid_arg "Pool.run: nested run on the same pool"
   | None -> ());
  if Atomic.exchange pool.running true then
    invalid_arg "Pool.run: pool already has an active run";
  let slot = Domain.DLS.get slot_key in
  slot := Some (pool.id, 0);
  Fun.protect
    ~finally:(fun () ->
      slot := None;
      Atomic.set pool.running false)
    f

let current_worker = my_index

let stats pool =
  Printf.sprintf "workers=%d tasks=%d steals=%d" pool.num_workers
    (Atomic.get pool.tasks_executed)
    (Atomic.get pool.steals)
