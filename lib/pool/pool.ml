type task = unit -> unit

type 'a state = Pending | Done of 'a | Raised of exn
type 'a promise = 'a state Atomic.t

exception Shutdown
exception Cancelled
exception Stalled of string

(* ------------------------------------------------------------------ *)
(* Structured cancellation.

   Every [run] owns one scope.  Tasks spawned during the run carry a
   reference to it; the first exception escaping a *structured* task (a
   [join] branch, and with it every [parallel_for]/[parallel_for_reduce]
   subtree) records itself in [first_exn] and flips [cancel_flag], after
   which splitters stop descending, not-yet-started tasks of the scope are
   skipped, and [run] re-raises the recorded exception — but only once
   [outstanding] has drained to zero, so no task of a failed run is still
   touching caller state when [run] returns.  The happy-path cost is one
   atomic load per scheduling decision (split / join / task start), the same
   budget as the [Trace] switch. *)

type scope = {
  cancel_flag : bool Atomic.t;
  first_exn : (exn * Printexc.raw_backtrace) option Atomic.t;
  outstanding : int Atomic.t;  (** tasks of this scope created but not yet resolved *)
  deadline_s : float option;  (** the [run ?deadline], bounding drains *)
}

let new_scope ?deadline () =
  {
    cancel_flag = Atomic.make false;
    first_exn = Atomic.make None;
    outstanding = Atomic.make 0;
    deadline_s = deadline;
  }

(* Per-domain nesting depth of parallel constructs ([join] /
   [parallel_for(_reduce)] frames and task bodies).  Depth 0 means "the run
   body": when an exception finishes unwinding back to depth 0 the failure
   has been delivered to user code, so the scope's stragglers are drained
   and a fresh scope installed — catching the exception there leaves the
   run healthy and reusable. *)
let depth_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

(* [first_exn] is CAS-published before [cancel_flag] is set, so any observer
   of a raised flag is guaranteed to find the exception. *)
let scope_cancel scope e bt =
  ignore (Atomic.compare_and_set scope.first_exn None (Some (e, bt)));
  Atomic.set scope.cancel_flag true

let scope_raise scope =
  match Atomic.get scope.first_exn with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> raise Cancelled

(* ------------------------------------------------------------------ *)
(* Per-worker counters.

   Each worker owns one [int array] slab, allocated separately and padded to
   a cache line, so the hot-path increments never contend: a worker writes
   only its own slab and the aggregator ([Stats.capture]) performs racy plain
   reads, which is fine for monotonic diagnostics counters. *)

let c_tasks = 0
let c_steals_ok = 1
let c_steals_failed = 2
let c_idle = 3
let c_max_depth = 4

(* Per-worker victim hint for the round-robin / sticky selection policies.
   Living in the counter slab keeps it in the worker's own cache line — no
   new allocation, no false sharing. *)
let c_last_victim = 5

(* Per-worker GC samples for the live metrics plane: [Gc.quick_stat] can
   only be read from the owning domain, so workers sample their own
   minor-collection count and minor words (in kwords, to stay in an int)
   every 64 tasks while the gc-sampling instrumentation bit is set.  Same
   slab, same racy-read aggregation contract as the counters above. *)
let c_gc_minors = 6
let c_gc_minor_kwords = 7

(* 8 words = 64 bytes of payload per slab: one full cache line, so two
   workers' counters never share one. *)
let counter_slots = 8

(* ------------------------------------------------------------------ *)
(* Scheduling policy.

   Every tunable scheduling decision is a field of one plain record threaded
   through [create], so a policy costs exactly one record field load at each
   decision point and the default compiles to the pre-refactor scheduler:
   steal-one, help-first fork order, uniform-random victims, and the
   historical spin/backoff constants (64 spins, 50 µs helper sleep, 1 µs
   doubling to 1 ms off-pool backoff) that used to be hardwired in
   [worker_loop] / [await] / [drain_scope].

   The decision points are:
   - {e steal amount} — [try_find_task]: steal one task per successful sweep,
     or a [Ws_deque.steal_half] batch (thief runs the first task and pushes
     the rest onto its own deque);
   - {e fork order} — [join]: help-first pushes the second branch and runs
     the first inline (today's behavior), work-first pushes the {e first}
     branch (the continuation) and runs the second inline;
   - {e victim selection} — [try_find_task]: where the steal sweep starts
     (uniform random, round-robin from the last successful victim, or sticky
     on the last successful victim);
   - {e idle backoff shape} — [worker_loop] / [await] / [drain_scope]: spin
     budget, helper idle sleep, and the off-pool exponential backoff
     bounds;
   - {e splitter} — [parallel_for] / [parallel_for_reduce]: eager fixed-grain
     recursion down to the leaves, or lazy binary splitting that consults the
     local deque depth and only publishes work when thieves have drained it
     (plus the grain defaults themselves, [grain_factor] / [fixed_grain], so
     a policy governs every splitter decision point). *)

module Policy = struct
  type steal_amount = Steal_one | Steal_half
  type fork_order = Help_first | Work_first
  type victim_selection = Random_victim | Round_robin | Sticky

  (* The {e splitter} decision point — how [parallel_for] /
     [parallel_for_reduce] turn an index range into tasks.  [Eager_grain]
     splits the range down to [grain]-sized leaves unconditionally (the
     pre-policy behavior): the task count is fixed up front, whether or not
     anyone is idle.  [Lazy_binary] auto-coarsens by demand: while the
     executing worker's own deque holds more than [lazy_depth] unstolen
     tasks (no thief needs work), it runs [grain]-sized chunks inline with
     zero deque traffic; the moment the deque drains to [lazy_depth] or
     below, it splits off the top half of the remaining range as one task
     and keeps going on the bottom half. *)
  type splitter = Eager_grain | Lazy_binary of { lazy_depth : int }

  type t = {
    name : string;
    steal_amount : steal_amount;
    fork_order : fork_order;
    victim_selection : victim_selection;
    splitter : splitter;
    grain_factor : int;
    fixed_grain : int option;
    spin_budget : int;
    idle_sleep_s : float;
    backoff_min_s : float;
    backoff_max_s : float;
  }

  let default =
    {
      name = "default";
      steal_amount = Steal_one;
      fork_order = Help_first;
      victim_selection = Random_victim;
      splitter = Eager_grain;
      grain_factor = 8;
      fixed_grain = None;
      spin_budget = 64;
      idle_sleep_s = 5e-5;
      backoff_min_s = 1e-6;
      backoff_max_s = 1e-3;
    }

  let steal_half = { default with name = "steal_half"; steal_amount = Steal_half }
  let work_first = { default with name = "work_first"; fork_order = Work_first }
  let sticky = { default with name = "sticky"; victim_selection = Sticky }
  let round_robin = { default with name = "round_robin"; victim_selection = Round_robin }

  let steal_half_sticky =
    {
      default with
      name = "steal_half_sticky";
      steal_amount = Steal_half;
      victim_selection = Sticky;
    }

  let work_first_steal_half =
    {
      default with
      name = "work_first_steal_half";
      fork_order = Work_first;
      steal_amount = Steal_half;
    }

  (* Lazy splitting is only interesting when there is potential parallelism
     left to refuse, so the lazy policies also raise [grain_factor]: leaves
     get 16x finer than the default's ~8-per-worker target, and the
     depth-triggered coarsening is what keeps that from costing 16x the
     deque traffic.  ("lazy" is the registry name; the OCaml identifier
     differs because [lazy] is a keyword.) *)
  let lazy_split =
    {
      default with
      name = "lazy";
      splitter = Lazy_binary { lazy_depth = 2 };
      grain_factor = 128;
    }

  let lazy_sticky =
    { lazy_split with name = "lazy_sticky"; victim_selection = Sticky }

  let lazy_steal_half =
    { lazy_split with name = "lazy_steal_half"; steal_amount = Steal_half }

  (* Granularity-sweep levers: force every defaulted grain to 1 so the two
     splitters can be compared at the finest decomposition the API allows
     (call sites that pass an explicit [?grain] keep it). *)
  let eager_grain1 =
    { default with name = "eager_grain1"; fixed_grain = Some 1 }

  let lazy_grain1 =
    { lazy_split with name = "lazy_grain1"; fixed_grain = Some 1 }

  let all =
    [
      default;
      steal_half;
      work_first;
      sticky;
      round_robin;
      steal_half_sticky;
      work_first_steal_half;
      lazy_split;
      lazy_sticky;
      lazy_steal_half;
      eager_grain1;
      lazy_grain1;
    ]

  let names () = List.map (fun p -> p.name) all
  let find name = List.find_opt (fun p -> p.name = name) all
end

(* How the pool turns a parallel region into an execution order.  [Ws] is the
   production work-stealing scheduler.  [Seq_det] is the deterministic
   sequential executor behind [create_deterministic]: one domain, and — when
   [shuffle] is on — a seeded permutation of the leaf order, so it explores
   alternative (but valid) fork-join schedules reproducibly.  It is the
   reference semantics the differential oracle in [lib/check] diffs against. *)
type sched = Ws | Seq_det of { rng : Rpb_prim.Rng.t; shuffle : bool }

type t = {
  id : int;
  (* Actual worker count.  May end up below [requested_workers] when
     [Domain.spawn] keeps failing and [create] degrades gracefully; written
     once during [make_pool], racy plain reads afterwards are benign. *)
  mutable num_workers : int;
  requested_workers : int;
  sched : sched;
  policy : Policy.t;
  (* Per-domain minor-heap size in words ([create ?minor_heap_kb]); applied
     by each worker domain at startup and by worker 0 for the duration of
     [run].  [None] leaves the runtime default untouched. *)
  minor_heap_words : int option;
  deques : task Ws_deque.t array;
  mutable domains : unit Domain.t array;
  injector : task Queue.t;
  inj_mutex : Mutex.t;
  idle_mutex : Mutex.t;
  idle_cond : Condition.t;
  wake_version : int Atomic.t;
  sleepers : int Atomic.t;
  shutdown_flag : bool Atomic.t;
  running : bool Atomic.t;
  scope : scope Atomic.t;  (* the active run's cancellation scope *)
  counters : int array array;
}

let next_pool_id = Atomic.make 0

(* Which (pool id, worker index) the current domain is executing for. *)
let slot_key : (int * int) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let my_index pool =
  match !(Domain.DLS.get slot_key) with
  | Some (pid, idx) when pid = pool.id -> Some idx
  | _ -> None

let size pool = pool.num_workers
let policy pool = pool.policy
let policy_name pool = pool.policy.Policy.name

(* Alias for annotating functions defined after [Stats]/[Trace], whose record
   fields would otherwise shadow [t]'s during inference. *)
type pool = t

(* ------------------------------------------------------------------ *)
(* Structured scheduler telemetry (replaces the old global atomics).    *)

module Stats = struct
  type worker = {
    worker_id : int;
    tasks_executed : int;
    steals_ok : int;
    steals_failed : int;
    idle_episodes : int;
    max_deque_depth : int;
  }

  type t = {
    num_workers : int;
    requested_workers : int;
    policy : string;
    per_worker : worker array;
  }

  let total f t = Array.fold_left (fun acc w -> acc + f w) 0 t.per_worker
  let tasks_executed t = total (fun w -> w.tasks_executed) t
  let steals_ok t = total (fun w -> w.steals_ok) t
  let steals_failed t = total (fun w -> w.steals_failed) t
  let idle_episodes t = total (fun w -> w.idle_episodes) t

  let max_deque_depth t =
    Array.fold_left (fun acc w -> max acc w.max_deque_depth) 0 t.per_worker

  (* Counters are monotonic, so a window of activity is [after - before];
     [max_deque_depth] is a high-water mark and keeps the [after] value. *)
  let diff ~before ~after =
    let sub wa wb =
      {
        worker_id = wa.worker_id;
        tasks_executed = wa.tasks_executed - wb.tasks_executed;
        steals_ok = wa.steals_ok - wb.steals_ok;
        steals_failed = wa.steals_failed - wb.steals_failed;
        idle_episodes = wa.idle_episodes - wb.idle_episodes;
        max_deque_depth = wa.max_deque_depth;
      }
    in
    {
      num_workers = after.num_workers;
      requested_workers = after.requested_workers;
      policy = after.policy;
      per_worker =
        Array.mapi
          (fun i wa ->
            if i < Array.length before.per_worker then
              sub wa before.per_worker.(i)
            else wa)
          after.per_worker;
    }

  let summary t =
    Printf.sprintf "workers=%d%s tasks=%d steals=%d failed-steals=%d idle=%d"
      t.num_workers
      (if t.num_workers < t.requested_workers then
         Printf.sprintf " (of %d requested)" t.requested_workers
       else "")
      (tasks_executed t) (steals_ok t) (steals_failed t) (idle_episodes t)

  let to_string t =
    let b = Buffer.create 256 in
    Buffer.add_string b (summary t);
    Array.iter
      (fun w ->
        Buffer.add_string b
          (Printf.sprintf
             "\n  worker %2d: tasks=%-8d steals=%-6d failed=%-6d idle=%-5d \
              max-depth=%d"
             w.worker_id w.tasks_executed w.steals_ok w.steals_failed
             w.idle_episodes w.max_deque_depth))
      t.per_worker;
    Buffer.contents b

  let capture (pool : pool) =
    {
      num_workers = pool.num_workers;
      requested_workers = pool.requested_workers;
      policy = pool.policy.Policy.name;
      (* Counter slabs are allocated for the requested count; only the
         workers that actually exist are reported. *)
      per_worker =
        Array.init pool.num_workers (fun i ->
            let c = pool.counters.(i) in
            {
              worker_id = i;
              tasks_executed = c.(c_tasks);
              steals_ok = c.(c_steals_ok);
              steals_failed = c.(c_steals_failed);
              idle_episodes = c.(c_idle);
              max_deque_depth = c.(c_max_depth);
            });
    }

  let reset (pool : pool) =
    Array.iter (fun c -> Array.fill c 0 counter_slots 0) pool.counters
end

(* ------------------------------------------------------------------ *)
(* Instrumentation switch word.

   One process-global atomic int holds a bit per optional instrumentation
   layer — bit 0: Chrome-trace spans ([Trace]), bit 1: the flight recorder
   ([Recorder]).  Shared hot sites ([Trace.span]) test the whole word once,
   so "both off" still costs exactly one atomic load. *)

let instr_flags = Atomic.make 0
let tracing_bit = 1
let recording_bit = 2

(* Bit 2: periodic per-worker [Gc.quick_stat] sampling into the counter
   slabs ([c_gc_minors] / [c_gc_minor_kwords]), polled by the live metrics
   plane in [lib/obs].  Costs one atomic load per executed task while off —
   the same contract as [Trace] / [Fault]. *)
let gc_sampling_bit = 4

let rec set_instr_bit bit on =
  let cur = Atomic.get instr_flags in
  let next = if on then cur lor bit else cur land lnot bit in
  if not (Atomic.compare_and_set instr_flags cur next) then set_instr_bit bit on

let set_gc_sampling on = set_instr_bit gc_sampling_bit on
let gc_sampling () = Atomic.get instr_flags land gc_sampling_bit <> 0

(* ------------------------------------------------------------------ *)
(* Scheduler flight recorder.

   Off by default; every instrumented site is gated on one atomic load (the
   [instr_flags] word above), so the scheduling hot paths keep their
   uninstrumented cost.  When armed, each domain appends task-lifecycle
   events into its own lock-free ring buffer — single writer, drop-oldest on
   overflow, with the drop count recoverable from the monotonically growing
   total — and [stop] collects the rings into one timestamp-sorted event
   list for the post-run analyzer in [lib/obs].

   The events carry enough series-parallel provenance to reconstruct the
   fork-join DAG offline: every [join] (and through it every [parallel_for]
   split) allocates a fresh construct id and records which (construct,
   branch) strand forked it, and every strand's computation is covered by
   [Work] segments — opened/closed around fork points, task execution, and
   joins, so time spent waiting or helping in [await] is never charged as
   work.  Timestamps come from the monotonic clock in [Rpb_prim.Timing]. *)

module Recorder = struct
  type event =
    | Fork of {
        id : int;  (** fresh construct id of this [join] *)
        parent : int;  (** construct id of the forking strand *)
        parent_branch : int;  (** branch of [parent] the forking strand is on *)
        w : int;
        ts_ns : int;
      }
    | Join of { id : int; w : int; ts_ns : int }
    | Work of {
        construct : int;
        branch : int;  (** 0 = inline branch, 1 = spawned branch *)
        w : int;
        begin_ns : int;
        end_ns : int;
      }
    | Exec of { construct : int; w : int; begin_ns : int }
    | Steal of { thief : int; victim : int; ts_ns : int }
    | Idle of { w : int; begin_ns : int; end_ns : int }
    | Phase of { name : string; w : int; begin_ns : int; end_ns : int }
    | Gc_sample of {
        w : int;
        ts_ns : int;
        minor_collections : int;
        major_collections : int;
        promoted_words : float;
        minor_words : float;
      }

  let ts_of = function
    | Fork { ts_ns; _ } | Join { ts_ns; _ } | Steal { ts_ns; _ }
    | Gc_sample { ts_ns; _ } ->
      ts_ns
    | Work { begin_ns; _ } | Exec { begin_ns; _ } | Idle { begin_ns; _ }
    | Phase { begin_ns; _ } ->
      begin_ns

  type recording = { events : event list; dropped : int; policy : string }

  (* Which scheduling policy the recorded session ran under; set by [start],
     stamped into the [recording] by [stop] so [Sp_dag] reports attribute
     their work/span/burden numbers to a policy. *)
  let session_policy = Atomic.make "default"

  let enabled () = Atomic.get instr_flags land recording_bit <> 0
  let now_ns = Rpb_prim.Timing.monotonic_ns

  (* Per-domain ring buffer: single writer (the owning domain), read only
     after [stop] has disarmed the switch.  [total] grows without bound; the
     ring keeps the newest [capacity] events (drop-oldest). *)
  type ring = { buf : event array; mutable total : int }

  let dummy_event = Join { id = -1; w = -1; ts_ns = 0 }
  let default_capacity = 1 lsl 15
  let capacity = Atomic.make default_capacity
  let registry_mutex = Mutex.create ()
  let rings : ring list ref = ref []

  (* Bumped on every [start]/[stop] so stale DLS rings and strand contexts
     from a previous session are abandoned rather than mixed in. *)
  let generation = Atomic.make 0

  let ring_key : (int * ring) option ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref None)

  let my_ring () =
    let slot = Domain.DLS.get ring_key in
    let gen = Atomic.get generation in
    match !slot with
    | Some (g, r) when g = gen -> r
    | _ ->
      let r = { buf = Array.make (Atomic.get capacity) dummy_event; total = 0 } in
      Mutex.lock registry_mutex;
      rings := r :: !rings;
      Mutex.unlock registry_mutex;
      slot := Some (gen, r);
      r

  let emit e =
    let r = my_ring () in
    let cap = Array.length r.buf in
    r.buf.(r.total land (cap - 1)) <- e;
    r.total <- r.total + 1

  (* Per-domain strand context: which (construct, branch) the domain is
     computing for, and since when.  [seg_ns = 0] means no open segment
     (the domain is scheduling, waiting, or helping). *)
  type ctx = {
    mutable construct : int;
    mutable branch : int;
    mutable seg_ns : int;
    mutable since_gc : int;
  }

  let ctx_key : (int * ctx) option ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref None)

  let my_ctx () =
    let slot = Domain.DLS.get ctx_key in
    let gen = Atomic.get generation in
    match !slot with
    | Some (g, c) when g = gen -> c
    | _ ->
      let c = { construct = 0; branch = 0; seg_ns = 0; since_gc = 0 } in
      slot := Some (gen, c);
      c

  let next_construct = Atomic.make 1

  let gc_sample ~w =
    let s = Gc.quick_stat () in
    emit
      (Gc_sample
         {
           w;
           ts_ns = now_ns ();
           minor_collections = s.Gc.minor_collections;
           major_collections = s.Gc.major_collections;
           promoted_words = s.Gc.promoted_words;
           minor_words = s.Gc.minor_words;
         })

  let seg_close ~w c =
    if c.seg_ns <> 0 then begin
      emit
        (Work
           {
             construct = c.construct;
             branch = c.branch;
             w;
             begin_ns = c.seg_ns;
             end_ns = now_ns ();
           });
      c.seg_ns <- 0
    end

  let seg_open c ~construct ~branch =
    c.construct <- construct;
    c.branch <- branch;
    c.seg_ns <- now_ns ()

  (* Instrumentation points, called by the pool internals below only when
     [enabled ()].  [fork] closes the forking strand's segment, emits the
     provenance event, and returns what [join_done] needs to restore the
     strand afterwards. *)

  let fork ~w =
    let c = my_ctx () in
    seg_close ~w c;
    let id = Atomic.fetch_and_add next_construct 1 in
    emit
      (Fork
         { id; parent = c.construct; parent_branch = c.branch; w; ts_ns = now_ns () });
    (id, c.construct, c.branch)

  let branch_open ~w:_ (id, _, _) = seg_open (my_ctx ()) ~construct:id ~branch:0

  let seg_close_cur ~w = seg_close ~w (my_ctx ())

  let join_done ~w (id, pc, pb) =
    let c = my_ctx () in
    seg_close ~w c;
    emit (Join { id; w; ts_ns = now_ns () });
    seg_open c ~construct:pc ~branch:pb

  (* GC sampled every [gc_every] task starts per domain — often enough to
     attribute collector pressure per worker, rare enough that the sampling
     (Gc.quick_stat allocates its stat record) does not perturb what it
     measures. *)
  let gc_every = 64

  (* Wrapper around a spawned [join] branch: saves whatever strand the
     executing domain was on (a worker helping under [await] has none), tags
     the task's computation with its (construct, 1) provenance, and records
     the queue delay via [Exec] (matched with [Fork] by construct id). *)
  let run_branch pool construct g () =
    if not (enabled ()) then g ()
    else begin
      let w = match my_index pool with Some i -> i | None -> -1 in
      let c = my_ctx () in
      let s_construct = c.construct and s_branch = c.branch in
      let interrupted = c.seg_ns <> 0 in
      if interrupted then seg_close ~w c;
      emit (Exec { construct; w; begin_ns = now_ns () });
      c.since_gc <- c.since_gc + 1;
      if c.since_gc >= gc_every then begin
        c.since_gc <- 0;
        gc_sample ~w
      end;
      seg_open c ~construct ~branch:1;
      let restore () =
        seg_close ~w c;
        c.construct <- s_construct;
        c.branch <- s_branch;
        if interrupted then c.seg_ns <- now_ns ()
      in
      match g () with
      | x ->
        restore ();
        x
      | exception e ->
        restore ();
        raise e
    end

  let idle_event ~w ~begin_ns = emit (Idle { w; begin_ns; end_ns = now_ns () })
  let steal_event ~thief ~victim = emit (Steal { thief; victim; ts_ns = now_ns () })

  let phase_event ~name ~w ~begin_ns ~end_ns =
    emit (Phase { name; w; begin_ns; end_ns })

  let with_root f =
    if not (enabled ()) then f ()
    else begin
      let c = my_ctx () in
      gc_sample ~w:0;
      seg_open c ~construct:0 ~branch:0;
      match f () with
      | x ->
        seg_close ~w:0 c;
        gc_sample ~w:0;
        x
      | exception e ->
        seg_close ~w:0 c;
        gc_sample ~w:0;
        raise e
    end

  let rec round_up_pow2 n k = if k >= n then k else round_up_pow2 n (k * 2)

  let start ?(ring_capacity = default_capacity) ?(policy_name = "default") () =
    Atomic.set session_policy policy_name;
    Atomic.set capacity (round_up_pow2 (max 16 ring_capacity) 16);
    Mutex.lock registry_mutex;
    rings := [];
    Mutex.unlock registry_mutex;
    Atomic.incr generation;
    Atomic.set next_construct 1;
    set_instr_bit recording_bit true

  let stop () =
    set_instr_bit recording_bit false;
    Mutex.lock registry_mutex;
    let rs = !rings in
    rings := [];
    Mutex.unlock registry_mutex;
    Atomic.incr generation;
    let dropped =
      List.fold_left
        (fun acc r -> acc + max 0 (r.total - Array.length r.buf))
        0 rs
    in
    let events =
      List.concat_map
        (fun r ->
          let cap = Array.length r.buf in
          let n = min r.total cap in
          let first = r.total - n in
          List.init n (fun i -> r.buf.((first + i) land (cap - 1))))
        rs
    in
    let events = List.sort (fun a b -> compare (ts_of a) (ts_of b)) events in
    { events; dropped; policy = Atomic.get session_policy }
end

(* ------------------------------------------------------------------ *)
(* Task tracing.

   Off by default and gated behind one atomic read per potential event, so
   the instrumented hot paths stay at their uninstrumented cost when tracing
   is disabled.  Events are buffered per domain (no shared structure on the
   recording path) and serialized to the Chrome trace-event JSON format
   ([chrome://tracing] / Perfetto) on [stop_to_file]. *)

module Trace = struct
  type event = { name : string; tid : int; ts_us : float; dur_us : float }

  let registry_mutex = Mutex.create ()
  let buffers : event list ref list ref = ref []

  let buf_key : event list ref option ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref None)

  let my_buffer () =
    let slot = Domain.DLS.get buf_key in
    match !slot with
    | Some b -> b
    | None ->
      let b = ref [] in
      Mutex.lock registry_mutex;
      buffers := b :: !buffers;
      Mutex.unlock registry_mutex;
      slot := Some b;
      b

  let enabled () = Atomic.get instr_flags land tracing_bit <> 0

  (* Monotonic microseconds (Rpb_prim.Timing) — durations can never go
     negative across NTP slews.  The wall-clock epoch is reapplied in one
     place, at Chrome-trace serialization. *)
  let now_us () = Rpb_prim.Timing.now_us ()

  let record ~name ~tid ~ts_us ~dur_us =
    if enabled () then begin
      let b = my_buffer () in
      b := { name; tid; ts_us; dur_us } :: !b
    end

  let start () =
    Mutex.lock registry_mutex;
    List.iter (fun b -> b := []) !buffers;
    Mutex.unlock registry_mutex;
    set_instr_bit tracing_bit true

  let stop () =
    set_instr_bit tracing_bit false;
    Mutex.lock registry_mutex;
    let evs = List.concat_map (fun b -> !b) !buffers in
    List.iter (fun b -> b := []) !buffers;
    Mutex.unlock registry_mutex;
    List.sort (fun a b -> compare a.ts_us b.ts_us) evs

  (* Feeds both optional layers: a Chrome-trace span when tracing is on, a
     [Phase] flight-recorder event when recording is on — behind a single
     atomic load of the shared switch word when both are off. *)
  let span pool name f =
    if Atomic.get instr_flags = 0 then f ()
    else begin
      let t0_ns = Rpb_prim.Timing.monotonic_ns () in
      let finish () =
        let t1_ns = Rpb_prim.Timing.monotonic_ns () in
        let tid = match my_index pool with Some i -> i | None -> -1 in
        if enabled () then
          record ~name ~tid
            ~ts_us:(float_of_int t0_ns *. 1e-3)
            ~dur_us:(float_of_int (t1_ns - t0_ns) *. 1e-3);
        if Recorder.enabled () then
          Recorder.phase_event ~name ~w:tid ~begin_ns:t0_ns ~end_ns:t1_ns
      in
      match f () with
      | x ->
        finish ();
        x
      | exception e ->
        finish ();
        raise e
    end

  let escape name =
    let b = Buffer.create (String.length name + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      name;
    Buffer.contents b

  let stop_to_file path =
    let evs = stop () in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc "[";
        List.iteri
          (fun i e ->
            if i > 0 then output_string oc ",";
            Printf.fprintf oc
              "\n\
               {\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}"
              (escape e.name) e.tid
              (Rpb_prim.Timing.epoch_of_monotonic_us e.ts_us)
              e.dur_us)
          evs;
        output_string oc "\n]\n");
    List.length evs
end

(* ------------------------------------------------------------------ *)
(* Scheduler fault injection.

   Follows the [Trace]/[Shadow] global-switch pattern: off by default, and
   every injection site is gated on one atomic load ([armed ()]) so the
   scheduler hot paths keep their uninstrumented cost.  When enabled, each
   domain derives a private RNG from the configured seed (and its domain id),
   and at every scheduler decision point — task start, successful steal,
   domain spawn — flips a seeded coin against the configured probability.
   Used by [Oracle.fault_sweep] to prove the runtime fails cleanly: injected
   task exceptions must propagate structurally, injected delays and stalls
   must never change results, injected spawn failures must degrade [create]
   to fewer workers instead of crashing. *)

module Fault = struct
  type config = {
    seed : int;  (** derives every per-domain injection stream *)
    task_exn : float;  (** P(raise [Injected] instead of starting a task) *)
    steal_delay : float;  (** P(sleep [delay_us] after a successful steal) *)
    worker_stall : float;  (** P(sleep [delay_us] before executing a task) *)
    spawn_fail : float;  (** P(a [Domain.spawn] attempt fails) *)
    delay_us : int;  (** magnitude of injected delays and stalls *)
  }

  let off =
    {
      seed = 0;
      task_exn = 0.;
      steal_delay = 0.;
      worker_stall = 0.;
      spawn_fail = 0.;
      delay_us = 50;
    }

  exception Injected of string

  type counts = {
    task_exns : int;
    steal_delays : int;
    worker_stalls : int;
    spawn_fails : int;
  }

  let enabled_flag = Atomic.make false
  let config = Atomic.make off

  (* Bumped on every [enable] so cached per-domain RNGs re-seed. *)
  let generation = Atomic.make 0
  let n_task = Atomic.make 0
  let n_steal = Atomic.make 0
  let n_stall = Atomic.make 0
  let n_spawn = Atomic.make 0
  let armed () = Atomic.get enabled_flag

  let enable cfg =
    Atomic.set config cfg;
    Atomic.set n_task 0;
    Atomic.set n_steal 0;
    Atomic.set n_stall 0;
    Atomic.set n_spawn 0;
    Atomic.incr generation;
    Atomic.set enabled_flag true

  let disable () = Atomic.set enabled_flag false

  let counts () =
    {
      task_exns = Atomic.get n_task;
      steal_delays = Atomic.get n_steal;
      worker_stalls = Atomic.get n_stall;
      spawn_fails = Atomic.get n_spawn;
    }

  let total c = c.task_exns + c.steal_delays + c.worker_stalls + c.spawn_fails

  let rng_key : (int * Rpb_prim.Rng.t) option ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref None)

  let my_rng () =
    let slot = Domain.DLS.get rng_key in
    let gen = Atomic.get generation in
    match !slot with
    | Some (g, rng) when g = gen -> rng
    | _ ->
      let cfg = Atomic.get config in
      let rng =
        Rpb_prim.Rng.create
          (Rpb_prim.Rng.hash64
             (cfg.seed lxor (((Domain.self () :> int) + 1) * 0x9E3779B9)))
      in
      slot := Some (gen, rng);
      rng

  let fire p = p > 0. && Rpb_prim.Rng.float (my_rng ()) 1.0 < p

  let delay cfg =
    if cfg.delay_us > 0 then Unix.sleepf (float_of_int cfg.delay_us *. 1e-6)

  (* Injection sites.  Callers gate each on [armed ()]. *)

  let task_site () =
    let cfg = Atomic.get config in
    if fire cfg.task_exn then begin
      let n = Atomic.fetch_and_add n_task 1 in
      raise (Injected (Printf.sprintf "task-exn #%d" n))
    end

  let steal_site () =
    let cfg = Atomic.get config in
    if fire cfg.steal_delay then begin
      Atomic.incr n_steal;
      delay cfg
    end

  let stall_site () =
    let cfg = Atomic.get config in
    if fire cfg.worker_stall then begin
      Atomic.incr n_stall;
      delay cfg
    end

  let spawn_site () =
    let cfg = Atomic.get config in
    if fire cfg.spawn_fail then begin
      Atomic.incr n_spawn;
      raise (Injected "spawn-fail")
    end
end

(* ------------------------------------------------------------------ *)
(* Shared timer wheel.

   One process-wide timer domain services every [run ?deadline] watchdog (and
   any other scheduled callback) instead of each deadline-bearing run spawning
   a [Domain] of its own — the difference between "a CI harness with one
   deadline per run" and "a server with thousands of per-request deadlines".
   The domain is spawned lazily on the first [schedule], parks on a condition
   variable while no timer is pending, and polls at most every [poll_s] while
   one is (OCaml's [Condition] has no timed wait), which matches the 10 ms
   granularity the per-run watchdog domains used to have.

   [cancel] is synchronous: if the entry's callback is mid-flight on the
   timer domain, [cancel] blocks until it completes — so after [cancel]
   returns the callback either ran entirely or never will, and a watchdog can
   never fire into a later run's scope.  Callback exceptions are swallowed
   (a timer must never kill the timer domain); callbacks should be tiny. *)

module Timer = struct
  type handle = {
    fire_at : float;
    seq : int;
    mutable cancelled : bool;  (** guarded by [mutex] *)
    cb : unit -> unit;
  }

  let mutex = Mutex.create ()
  let cond = Condition.create ()

  (* Pending entries sorted by [fire_at] (ties by [seq]).  Insertion is
     O(pending); the serving layer keeps at most a handful of deadlines
     armed at once (requests are admitted into one executing run at a time),
     so a sorted list beats a heap's constant factor here. *)
  let pending : handle list ref = ref []
  let executing : handle option ref = ref None
  let seq_counter = ref 0
  let stop_flag = ref false
  let domain : unit Domain.t option ref = ref None
  let domains_spawned_count = Atomic.make 0
  let at_exit_registered = ref false
  let poll_s = 0.005

  let domains_spawned () = Atomic.get domains_spawned_count

  let rec timer_loop () =
    Mutex.lock mutex;
    let rec step () =
      if !stop_flag then Mutex.unlock mutex
      else
        match !pending with
        | [] ->
          Condition.wait cond mutex;
          step ()
        | e :: rest ->
          if e.cancelled then begin
            pending := rest;
            step ()
          end
          else begin
            let now = Unix.gettimeofday () in
            if e.fire_at <= now then begin
              pending := rest;
              executing := Some e;
              Mutex.unlock mutex;
              (try e.cb () with _ -> ());
              Mutex.lock mutex;
              executing := None;
              (* Wake a [cancel] blocked on this entry (and the loop's own
                 empty-list wait shares the condition; spurious wakeups are
                 re-checked). *)
              Condition.broadcast cond;
              step ()
            end
            else begin
              (* No timed [Condition.wait] in the stdlib: release the lock
                 and nap until the deadline or the next poll tick. *)
              let nap = Float.min (e.fire_at -. now) poll_s in
              Mutex.unlock mutex;
              Unix.sleepf nap;
              timer_loop ()
            end
          end
    in
    step ()

  (* Must be called with [mutex] held. *)
  let ensure_domain () =
    match !domain with
    | Some _ -> ()
    | None ->
      stop_flag := false;
      Atomic.incr domains_spawned_count;
      domain := Some (Domain.spawn timer_loop);
      if not !at_exit_registered then begin
        at_exit_registered := true;
        (* The timer domain must not outlive the program: stop and join it
           at exit so the runtime never waits on a parked domain. *)
        at_exit (fun () ->
            Mutex.lock mutex;
            let d = !domain in
            stop_flag := true;
            domain := None;
            Condition.broadcast cond;
            Mutex.unlock mutex;
            Option.iter Domain.join d)
      end

  let schedule ~delay_s cb =
    if delay_s < 0. then invalid_arg "Pool.Timer.schedule: negative delay";
    Mutex.lock mutex;
    ensure_domain ();
    incr seq_counter;
    let e =
      {
        fire_at = Unix.gettimeofday () +. delay_s;
        seq = !seq_counter;
        cancelled = false;
        cb;
      }
    in
    let rec insert = function
      | [] -> [ e ]
      | x :: _ as l
        when e.fire_at < x.fire_at
             || (e.fire_at = x.fire_at && e.seq < x.seq) ->
        e :: l
      | x :: rest -> x :: insert rest
    in
    pending := insert !pending;
    Condition.broadcast cond;
    Mutex.unlock mutex;
    e

  let cancel e =
    Mutex.lock mutex;
    e.cancelled <- true;
    pending := List.filter (fun x -> x != e) !pending;
    (* If the callback is running right now, wait it out: after [cancel]
       returns the callback must not be able to observe any later state. *)
    while (match !executing with Some x -> x == e | None -> false) do
      Condition.wait cond mutex
    done;
    Mutex.unlock mutex

  let shutdown () =
    Mutex.lock mutex;
    let d = !domain in
    stop_flag := true;
    domain := None;
    (* Abandon pending timers for real: a domain respawned by a later
       [schedule] must not fire entries armed before the shutdown. *)
    List.iter (fun e -> e.cancelled <- true) !pending;
    pending := [];
    Condition.broadcast cond;
    Mutex.unlock mutex;
    Option.iter Domain.join d

  let pending_count () =
    Mutex.lock mutex;
    let n = List.length !pending in
    Mutex.unlock mutex;
    n
end

(* ------------------------------------------------------------------ *)

(* Eventcount-style wakeup: pushers bump [wake_version] then broadcast if any
   worker registered as sleeping; sleepers re-check the version under the
   mutex before waiting, so no wakeup can be missed. *)
let signal_work pool =
  Atomic.incr pool.wake_version;
  if Atomic.get pool.sleepers > 0 then begin
    Mutex.lock pool.idle_mutex;
    Condition.broadcast pool.idle_cond;
    Mutex.unlock pool.idle_mutex
  end

let push_local pool idx task =
  let dq = pool.deques.(idx) in
  Ws_deque.push dq task;
  let c = pool.counters.(idx) in
  let depth = Ws_deque.size dq in
  if depth > c.(c_max_depth) then c.(c_max_depth) <- depth;
  signal_work pool

let push_external pool task =
  Mutex.lock pool.inj_mutex;
  Queue.push task pool.injector;
  Mutex.unlock pool.inj_mutex;
  signal_work pool

let take_injected pool =
  if Queue.is_empty pool.injector then None
  else begin
    Mutex.lock pool.inj_mutex;
    let t = Queue.take_opt pool.injector in
    Mutex.unlock pool.inj_mutex;
    t
  end

(* One attempt to find work: own deque first (depth-first order), then a
   policy-directed sweep over victims, then the injector.

   Policy decision points (one record field load each): where the sweep
   starts ([victim_selection]) and how much a successful visit claims
   ([steal_amount]).  With [Steal_half] the thief keeps the first task of
   the batch and pushes the rest onto its own deque, so one sweep migrates
   up to half the victim's queue.  [c_last_victim] records the last
   successful victim for the round-robin / sticky policies. *)
let try_find_task pool my_idx rng =
  match Ws_deque.pop pool.deques.(my_idx) with
  | Some _ as t -> t
  | None ->
    let n = pool.num_workers in
    let c = pool.counters.(my_idx) in
    let start =
      if n <= 1 then 0
      else
        match pool.policy.Policy.victim_selection with
        | Policy.Random_victim -> Rpb_prim.Rng.int rng n
        | Policy.Sticky -> c.(c_last_victim) mod n
        | Policy.Round_robin -> (c.(c_last_victim) + 1) mod n
    in
    let stole v t =
      c.(c_steals_ok) <- c.(c_steals_ok) + 1;
      c.(c_last_victim) <- v;
      if Recorder.enabled () then Recorder.steal_event ~thief:my_idx ~victim:v;
      if Fault.armed () then Fault.steal_site ();
      t
    in
    let rec sweep k =
      if k >= n then None
      else begin
        let v = (start + k) mod n in
        if v = my_idx then sweep (k + 1)
        else
          match pool.policy.Policy.steal_amount with
          | Policy.Steal_one -> (
            match Ws_deque.steal pool.deques.(v) with
            | Some _ as t -> stole v t
            | None ->
              c.(c_steals_failed) <- c.(c_steals_failed) + 1;
              sweep (k + 1))
          | Policy.Steal_half -> (
            match Ws_deque.steal_half pool.deques.(v) with
            | first :: rest ->
              (* Keep the first task; the rest go onto our own deque so the
                 next [pop]s find them without another sweep. *)
              List.iter (fun t -> push_local pool my_idx t) rest;
              stole v (Some first)
            | [] ->
              c.(c_steals_failed) <- c.(c_steals_failed) + 1;
              sweep (k + 1))
      end
    in
    (match sweep 0 with
     | Some _ as t -> t
     | None -> take_injected pool)

let execute pool idx task =
  let c = pool.counters.(idx) in
  c.(c_tasks) <- c.(c_tasks) + 1;
  (* Live-metrics GC probe: [Gc.quick_stat] is only meaningful on the owning
     domain, so each worker samples its own counters here, at most once per
     64 executed tasks.  One atomic load when the bit is off. *)
  if
    Atomic.get instr_flags land gc_sampling_bit <> 0
    && c.(c_tasks) land 63 = 0
  then begin
    let s = Gc.quick_stat () in
    c.(c_gc_minors) <- s.Gc.minor_collections;
    c.(c_gc_minor_kwords) <- int_of_float (s.Gc.minor_words *. 1e-3)
  end;
  if Fault.armed () then Fault.stall_site ();
  if Trace.enabled () then begin
    let t0 = Trace.now_us () in
    match task () with
    | () ->
      Trace.record ~name:"task" ~tid:idx ~ts_us:t0
        ~dur_us:(Trace.now_us () -. t0)
    | exception e ->
      Trace.record ~name:"task" ~tid:idx ~ts_us:t0
        ~dur_us:(Trace.now_us () -. t0);
      raise e
  end
  else task ()

(* Resize the calling domain's minor heap to the pool's configured size.
   Returns the previous size so [run] can restore the caller's setting.  The
   runtime normalizes out-of-range sizes itself. *)
let apply_minor_heap pool =
  match pool.minor_heap_words with
  | None -> None
  | Some words ->
    let g = Gc.get () in
    Gc.set { g with Gc.minor_heap_size = words };
    Some g.Gc.minor_heap_size

let worker_loop pool idx =
  Domain.DLS.get slot_key := Some (pool.id, idx);
  ignore (apply_minor_heap pool);
  let rng = Rpb_prim.Rng.create (0x5EED + idx) in
  let c = pool.counters.(idx) in
  let spin_budget = pool.policy.Policy.spin_budget in
  let rec loop spins =
    if Atomic.get pool.shutdown_flag then ()
    else
      match try_find_task pool idx rng with
      | Some task ->
        execute pool idx task;
        loop spin_budget
      | None ->
        if spins > 0 then begin
          Domain.cpu_relax ();
          loop (spins - 1)
        end
        else begin
          (* Sleep until new work is signalled (or shutdown). *)
          c.(c_idle) <- c.(c_idle) + 1;
          let idle_t0 =
            if Recorder.enabled () then Recorder.now_ns () else 0
          in
          let seen = Atomic.get pool.wake_version in
          Mutex.lock pool.idle_mutex;
          Atomic.incr pool.sleepers;
          if Atomic.get pool.wake_version = seen
             && not (Atomic.get pool.shutdown_flag)
          then Condition.wait pool.idle_cond pool.idle_mutex;
          Atomic.decr pool.sleepers;
          Mutex.unlock pool.idle_mutex;
          if idle_t0 <> 0 && Recorder.enabled () then
            Recorder.idle_event ~w:idx ~begin_ns:idle_t0;
          loop spin_budget
        end
  in
  loop spin_budget

(* Spawning a domain can fail (OS thread limits, injected faults): retry a
   few times with capped backoff, and report a permanent failure as [None] so
   [make_pool] can degrade to fewer workers instead of crashing. *)
let spawn_attempts = 3

let spawn_worker pool idx =
  let rec attempt k backoff_s =
    match
      if Fault.armed () then Fault.spawn_site ();
      Domain.spawn (fun () -> worker_loop pool idx)
    with
    | d -> Some d
    | exception _ ->
      if k >= spawn_attempts then None
      else begin
        Unix.sleepf backoff_s;
        attempt (k + 1) (Float.min (backoff_s *. 4.) 0.05)
      end
  in
  attempt 1 0.001

let make_pool ?minor_heap_kb ~num_workers ~sched ~policy () =
  if num_workers < 1 then invalid_arg "Pool.create: num_workers must be >= 1";
  (match minor_heap_kb with
   | Some kb when kb < 1 ->
     invalid_arg "Pool.create: minor_heap_kb must be >= 1"
   | _ -> ());
  let pool =
    {
      id = Atomic.fetch_and_add next_pool_id 1;
      num_workers;
      requested_workers = num_workers;
      sched;
      policy;
      (* 64-bit words: 1 KB = 128 words. *)
      minor_heap_words = Option.map (fun kb -> kb * 128) minor_heap_kb;
      deques = Array.init num_workers (fun _ -> Ws_deque.create ());
      domains = [||];
      injector = Queue.create ();
      inj_mutex = Mutex.create ();
      idle_mutex = Mutex.create ();
      idle_cond = Condition.create ();
      wake_version = Atomic.make 0;
      sleepers = Atomic.make 0;
      shutdown_flag = Atomic.make false;
      running = Atomic.make false;
      scope = Atomic.make (new_scope ());
      counters = Array.init num_workers (fun _ -> Array.make counter_slots 0);
    }
  in
  (* Graceful degradation: stop at the first worker whose spawn keeps
     failing, shrink the pool to the workers that exist (indices stay
     contiguous), and let [Stats] report actual vs requested. *)
  let domains = ref [] in
  (try
     for i = 1 to num_workers - 1 do
       match spawn_worker pool i with
       | Some d -> domains := d :: !domains
       | None -> raise Exit
     done
   with Exit -> ());
  pool.domains <- Array.of_list (List.rev !domains);
  pool.num_workers <- Array.length pool.domains + 1;
  pool

let create ?name:_ ?(policy = Policy.default) ?minor_heap_kb ~num_workers () =
  make_pool ?minor_heap_kb ~num_workers ~sched:Ws ~policy ()

let create_deterministic ?(seed = 0) ?(shuffle = true) () =
  make_pool ~num_workers:1 ~policy:Policy.default
    ~sched:(Seq_det { rng = Rpb_prim.Rng.create (0xDE7 lxor seed); shuffle })
    ()

let deterministic pool =
  match pool.sched with Ws -> false | Seq_det _ -> true

(* Resolve every task still sitting in a queue by running its wrapper: with
   [shutdown_flag] set the wrapper fails the promise with [Shutdown] (and with
   a cancelled scope, with [Cancelled]) without touching user code.  Called
   after the worker domains have been joined, so the queues are no longer
   being consumed concurrently — but [Ws_deque.steal] and the injector mutex
   make the sweep safe even against a racing producer. *)
let fail_pending pool =
  let rec drain_injector () =
    match take_injected pool with
    | Some task ->
      task ();
      drain_injector ()
    | None -> ()
  in
  drain_injector ();
  Array.iter
    (fun dq ->
      let rec go () =
        match Ws_deque.steal dq with
        | Some task ->
          task ();
          go ()
        | None -> ()
      in
      go ())
    pool.deques

let shutdown pool =
  if not (Atomic.exchange pool.shutdown_flag true) then begin
    Mutex.lock pool.idle_mutex;
    Condition.broadcast pool.idle_cond;
    Mutex.unlock pool.idle_mutex;
    Array.iter Domain.join pool.domains;
    pool.domains <- [||];
    (* Don't strand pending promises: fail them so a concurrent [await]
       raises [Shutdown] instead of polling forever. *)
    fail_pending pool
  end

let check_alive pool = if Atomic.get pool.shutdown_flag then raise Shutdown

(* The task wrapper.  Structured tasks ([join] branches, and through them
   every [parallel_for] subtree) publish their exception to the scope before
   resolving the promise; unstructured tasks (public [async]) keep the
   exception private to the promise, because callers like [Speculate] and
   [Future] legitimately await-and-handle failures without wanting to tear
   down the whole run. *)
let make_task pool ~structured scope f p () =
  (if Atomic.get pool.shutdown_flag then Atomic.set p (Raised Shutdown)
   else if Atomic.get scope.cancel_flag then
     (* The scope failed before this task started: abandon it. *)
     Atomic.set p (Raised Cancelled)
   else begin
     (* Task bodies execute at depth >= 1: an exception unwinding inside a
        stolen task must not be mistaken for delivery to the run body. *)
     let d = Domain.DLS.get depth_key in
     incr d;
     (match
        if Fault.armed () then Fault.task_site ();
        f ()
      with
      | x ->
        decr d;
        Atomic.set p (Done x)
      | exception e ->
        decr d;
        let bt = Printexc.get_raw_backtrace () in
        if structured then scope_cancel scope e bt;
        Atomic.set p (Raised e))
   end);
  Atomic.decr scope.outstanding

let spawn_task pool ~structured scope f =
  let p = Atomic.make Pending in
  Atomic.incr scope.outstanding;
  let t = make_task pool ~structured scope f p in
  (match my_index pool with
   | Some idx -> push_local pool idx t
   | None ->
     if pool.num_workers = 1 then
       (* No workers to pick the task up: run it eagerly. *)
       t ()
     else push_external pool t);
  p

let async pool f =
  check_alive pool;
  let p = spawn_task pool ~structured:false (Atomic.get pool.scope) f in
  (* Close the race with a concurrent [shutdown]: if the flag flipped after
     [check_alive], [shutdown]'s own drain may already have swept past our
     freshly pushed task — resolve whatever is still queued ourselves. *)
  if Atomic.get pool.shutdown_flag then fail_pending pool;
  p

(* Helping wait: while the promise is pending, execute other pool tasks.  A
   worker never blocks here, so nested fork-join cannot deadlock. *)
let await pool p =
  let finish () =
    match Atomic.get p with
    | Done x -> x
    | Raised e -> raise e
    | Pending -> assert false
  in
  (match my_index pool with
   | Some idx ->
     let rng = Rpb_prim.Rng.create (0xA3A17 + idx) in
     let c = pool.counters.(idx) in
     let spin_budget = pool.policy.Policy.spin_budget in
     let idle_sleep = pool.policy.Policy.idle_sleep_s in
     let rec help spins =
       match Atomic.get p with
       | Pending ->
         (match try_find_task pool idx rng with
          | Some task ->
            execute pool idx task;
            help spin_budget
          | None ->
            if spins > 0 then begin
              Domain.cpu_relax ();
              help (spins - 1)
            end
            else begin
              (* The task is running on another worker; yield the core. *)
              c.(c_idle) <- c.(c_idle) + 1;
              let idle_t0 =
                if Recorder.enabled () then Recorder.now_ns () else 0
              in
              Unix.sleepf idle_sleep;
              if idle_t0 <> 0 && Recorder.enabled () then
                Recorder.idle_event ~w:idx ~begin_ns:idle_t0;
              help spin_budget
            end)
       | Done _ | Raised _ -> ()
     in
     help spin_budget
   | None ->
     (* Off-pool waiter: spin briefly, then back off exponentially (by
        default 1 µs up to 1 ms, policy fields [backoff_min_s] /
        [backoff_max_s]) — a freshly failed or resolved task is observed
        promptly without burning a core, and the worst-case poll latency
        stays three orders of magnitude below the old fixed 100 µs × forever
        loop's pathological wakeup storms under load. *)
     let backoff_max = pool.policy.Policy.backoff_max_s in
     let rec wait delay =
       match Atomic.get p with
       | Pending ->
         Unix.sleepf delay;
         wait (Float.min (delay *. 2.) backoff_max)
       | Done _ | Raised _ -> ()
     in
     let rec spin k =
       match Atomic.get p with
       | Pending ->
         if k > 0 then begin
           Domain.cpu_relax ();
           spin (k - 1)
         end
         else wait pool.policy.Policy.backoff_min_s
       | Done _ | Raised _ -> ()
     in
     spin pool.policy.Policy.spin_budget);
  finish ()

let try_result p =
  match Atomic.get p with
  | Pending -> None
  | Done x -> Some (Ok x)
  | Raised e -> Some (Error e)

(* Wait until every task spawned under [scope] has resolved its promise,
   helping to execute queued ones — each observes [cancel_flag] and resolves
   as [Cancelled] without running user code.  Unbounded by default (a stuck
   task means caller state is still referenced and returning would be
   unsound); when the run had a deadline we give up after it and warn rather
   than hang. *)
let drain_scope pool scope =
  if Atomic.get scope.outstanding > 0 then begin
    let idx = match my_index pool with Some i -> i | None -> 0 in
    let rng = Rpb_prim.Rng.create (0xD4A1 + idx) in
    let give_up =
      match scope.deadline_s with
      | None -> Float.infinity
      | Some d -> Unix.gettimeofday () +. d +. 0.1
    in
    let backoff_min = pool.policy.Policy.backoff_min_s in
    let backoff_max = pool.policy.Policy.backoff_max_s in
    let rec wait delay =
      if Atomic.get scope.outstanding > 0 then
        if Unix.gettimeofday () > give_up then
          Printf.eprintf
            "rpb_pool: warning: giving up drain with %d task(s) of a failed \
             scope still outstanding\n\
             %!"
            (Atomic.get scope.outstanding)
        else begin
          match try_find_task pool idx rng with
          | Some task ->
            execute pool idx task;
            wait backoff_min
          | None ->
            Unix.sleepf delay;
            wait (Float.min (delay *. 2.) backoff_max)
        end
    in
    wait backoff_min
  end

(* A parallel-construct frame.  Tracks per-domain nesting; when a failure
   finishes unwinding out of the outermost construct — the next stop is user
   code in the run body — the scope's outstanding tasks are drained and a
   fresh scope installed before re-raising.  So by the time user code can
   observe the exception (a) no task of the failed scope is still running
   against live state, and (b) catching it leaves the pool's current run
   healthy: subsequent parallel calls work.  [Cancelled] (the splitters'
   relay signal) is unwrapped to the first recorded failure here. *)
let with_construct pool k =
  let scope = Atomic.get pool.scope in
  let d = Domain.DLS.get depth_key in
  incr d;
  match k scope with
  | x ->
    decr d;
    x
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    decr d;
    if !d = 0 then begin
      drain_scope pool scope;
      let e, bt =
        match e with
        | Cancelled -> (
          match Atomic.get scope.first_exn with
          | Some (e0, bt0) -> (e0, bt0)
          | None -> (e, bt))
        | _ -> (e, bt)
      in
      Atomic.set pool.scope (new_scope ?deadline:scope.deadline_s ());
      Printexc.raise_with_backtrace e bt
    end
    else Printexc.raise_with_backtrace e bt

(* The work-stealing [join] engine, parameterized over which branch is
   spawned and which runs inline so the fork-order policy is a role swap
   around one shared implementation.  Returns [(inline result, spawned
   result)]; [join] below reorders the pair to [(f result, g result)]. *)
let ws_join_core pool scope my_idx sp inl =
  if not (Recorder.enabled ()) then begin
    let ps = spawn_task pool ~structured:true scope sp in
    match inl () with
    | a ->
      let b = await pool ps in
      (a, b)
    | exception ei ->
      let bt = Printexc.get_raw_backtrace () in
      scope_cancel scope ei bt;
      (* The sibling may already be running on another worker and
         referencing caller state: wait for its promise to resolve
         (it is skipped if it has not started) before unwinding, so
         the exception never races its own branch's stack frames. *)
      (match await pool ps with _ -> () | exception _ -> ());
      Printexc.raise_with_backtrace ei bt
  end
  else begin
    (* Recording: this join becomes a construct in the recorded
       series-parallel DAG.  The forking strand's segment is closed
       at the fork, branch 0 (the inline branch) is tagged until it
       returns, the spawned branch is tagged by the [run_branch]
       wrapper wherever it executes, and no segment is open across
       [await] — helping or waiting time is never charged as
       work. *)
    let fk = Recorder.fork ~w:my_idx in
    let id, _, _ = fk in
    let ps =
      spawn_task pool ~structured:true scope (Recorder.run_branch pool id sp)
    in
    Recorder.branch_open ~w:my_idx fk;
    match inl () with
    | a ->
      Recorder.seg_close_cur ~w:my_idx;
      let b = await pool ps in
      Recorder.join_done ~w:my_idx fk;
      (a, b)
    | exception ei ->
      let bt = Printexc.get_raw_backtrace () in
      Recorder.seg_close_cur ~w:my_idx;
      scope_cancel scope ei bt;
      (match await pool ps with _ -> () | exception _ -> ());
      Recorder.join_done ~w:my_idx fk;
      Printexc.raise_with_backtrace ei bt
  end

let join pool f g =
  match pool.sched with
  | Seq_det { rng; shuffle } ->
    (* One domain: run both branches here, in a seeded order.  Flipping the
       order is a legal fork-join schedule (the branches are unordered), so a
       result that depends on it is order-sensitive by construction. *)
    if shuffle && Rpb_prim.Rng.bool rng then begin
      let b = g () in
      let a = f () in
      (a, b)
    end
    else begin
      let a = f () in
      let b = g () in
      (a, b)
    end
  | Ws ->
    (match my_index pool with
     | None ->
       let a = f () in
       let b = g () in
       (a, b)
     | Some my_idx ->
       with_construct pool (fun scope ->
           (* Abandon early: a failed sibling anywhere in the scope stops
              this subtree before it forks more work.  One atomic load when
              healthy (plus one for the flight-recorder switch). *)
           if Atomic.get scope.cancel_flag then scope_raise scope;
           (* Fork-order decision point (one record field load).
              Help-first — today's default — pushes [g] and runs [f]
              inline; work-first pushes [f] (the continuation branch) and
              runs [g] (the child) inline, so an idle thief picks up the
              continuation while this worker descends into the child. *)
           match pool.policy.Policy.fork_order with
           | Policy.Help_first ->
             ws_join_core pool scope my_idx g f
           | Policy.Work_first ->
             let b, a = ws_join_core pool scope my_idx f g in
             (a, b)))

(* Grain defaults are a policy decision like the splitter itself: a call
   site that passes no [?grain] gets either the policy's forced grain
   ([fixed_grain], the granularity-sweep lever) or the classic
   leaves-per-worker target [n / (grain_factor * workers)].  The default
   policy's [grain_factor = 8] reproduces the pre-policy constant. *)
let default_grain (pool : pool) n =
  match pool.policy.Policy.fixed_grain with
  | Some g -> max 1 g
  | None -> max 1 (n / (pool.policy.Policy.grain_factor * pool.num_workers))

(* Demand sensing for the lazy splitter: the executing worker's own deque
   depth.  Strictly more than [lazy_depth] pending local tasks means no
   thief is keeping up with what we already published — keep running
   inline.  A task never migrates mid-execution, but a *stolen* range
   executes its [go] on the thief's domain, so the index is consulted per
   call, not captured at the construct. *)
let lazy_deque_deep (pool : pool) ~lazy_depth =
  match my_index pool with
  | Some w -> Ws_deque.size pool.deques.(w) > lazy_depth
  | None -> false

(* Leaf decomposition used by the deterministic executor: contiguous chunks
   of at most [grain] indices, visited in a seeded random order but ascending
   within each leaf — the same guarantee the work-stealing tree gives
   (in-order leaves, unordered across leaves). *)
let seq_det_for ~rng ~grain ~start ~finish ~body =
  let n = finish - start in
  let leaves = Rpb_prim.Util.ceil_div n grain in
  let order = Rpb_prim.Rng.permutation rng leaves in
  Array.iter
    (fun l ->
      let lo = start + (l * grain) in
      let hi = min finish (lo + grain) in
      for i = lo to hi - 1 do
        body i
      done)
    order

let parallel_for ?grain ~start ~finish ~body pool =
  let n = finish - start in
  if n > 0 then begin
    let grain =
      match grain with Some g -> max 1 g | None -> default_grain pool n
    in
    match pool.sched with
    | Seq_det { rng; shuffle = true } ->
      seq_det_for ~rng ~grain ~start ~finish ~body
    | Seq_det { shuffle = false; _ } ->
      for i = start to finish - 1 do
        body i
      done
    | Ws ->
    if pool.num_workers = 1 || my_index pool = None then
      for i = start to finish - 1 do
        body i
      done
    else begin
      match pool.policy.Policy.splitter with
      | Policy.Eager_grain ->
        with_construct pool (fun scope ->
            let rec go lo hi =
              (* Check before descending: a failed scope stops splitting (and
                 skips this whole subtree) instead of running siblings of the
                 failed leaf to completion. *)
              if Atomic.get scope.cancel_flag then scope_raise scope;
              if hi - lo <= grain then
                for i = lo to hi - 1 do
                  body i
                done
              else begin
                let mid = lo + ((hi - lo) / 2) in
                let ((), ()) =
                  join pool (fun () -> go lo mid) (fun () -> go mid hi)
                in
                ()
              end
            in
            go start finish)
      | Policy.Lazy_binary { lazy_depth } ->
        with_construct pool (fun scope ->
            let rec go lo hi =
              if Atomic.get scope.cancel_flag then scope_raise scope;
              if hi - lo <= grain then
                for i = lo to hi - 1 do
                  body i
                done
              else if lazy_deque_deep pool ~lazy_depth then begin
                (* May-inline fast path: no thief demand, so consume
                   [grain]-sized chunks with zero deque traffic.  The
                   remainder [!lo, hi) lives only in this strand's frame —
                   nothing is published until the split below pushes a task
                   — so a thief can never observe, duplicate, or race any
                   part of it.  At least one chunk is consumed before
                   re-checking demand, which guarantees progress even if a
                   thief drains the deque between the two depth reads. *)
                let lo = ref lo in
                let chomping = ref true in
                while !chomping do
                  if Atomic.get scope.cancel_flag then scope_raise scope;
                  let stop = !lo + grain in
                  for i = !lo to stop - 1 do
                    body i
                  done;
                  lo := stop;
                  if hi - !lo <= grain || not (lazy_deque_deep pool ~lazy_depth)
                  then chomping := false
                done;
                (* Left-over range: a final sub-grain leaf, or — if the deque
                   drained — back to the splitting path below. *)
                if !lo < hi then go !lo hi
              end
              else begin
                (* The deque drained to the demand threshold: split off the
                   top half of the remaining range as one task and keep
                   going on the bottom half. *)
                let mid = lo + ((hi - lo) / 2) in
                let ((), ()) =
                  join pool (fun () -> go lo mid) (fun () -> go mid hi)
                in
                ()
              end
            in
            go start finish)
    end
  end

let parallel_for_reduce ?grain ~start ~finish ~body ~combine ~init pool =
  let n = finish - start in
  if n <= 0 then init
  else begin
    let grain =
      match grain with Some g -> max 1 g | None -> default_grain pool n
    in
    let leaf lo hi =
      let acc = ref init in
      for i = lo to hi - 1 do
        acc := combine !acc (body i)
      done;
      !acc
    in
    match pool.sched with
    | Seq_det { rng; shuffle = true } ->
      (* Evaluate the leaves in a seeded shuffled order, but combine them in
         index order: execution timing moves, the (associative) combine tree
         does not — exactly what a parallel schedule may do. *)
      let leaves = Rpb_prim.Util.ceil_div n grain in
      let results = Array.make leaves init in
      let order = Rpb_prim.Rng.permutation rng leaves in
      Array.iter
        (fun l ->
          let lo = start + (l * grain) in
          let hi = min finish (lo + grain) in
          results.(l) <- leaf lo hi)
        order;
      Array.fold_left combine init results
    | Seq_det { shuffle = false; _ } -> leaf start finish
    | Ws ->
    if pool.num_workers = 1 || my_index pool = None then leaf start finish
    else begin
      match pool.policy.Policy.splitter with
      | Policy.Eager_grain ->
        with_construct pool (fun scope ->
            let rec go lo hi =
              if Atomic.get scope.cancel_flag then scope_raise scope;
              if hi - lo <= grain then leaf lo hi
              else begin
                let mid = lo + ((hi - lo) / 2) in
                let a, b =
                  join pool (fun () -> go lo mid) (fun () -> go mid hi)
                in
                combine a b
              end
            in
            go start finish)
      | Policy.Lazy_binary { lazy_depth } ->
        (* Same adaptive shape as [parallel_for]'s lazy path, threading an
           accumulator through the inline chunks.  The combine tree is
           left-leaning along the fast path instead of balanced; since
           [combine] is associative (the documented contract, which eager
           splitting already leans on — its tree shape moves with [grain]),
           the result is unchanged. *)
        with_construct pool (fun scope ->
            let rec go lo hi =
              if Atomic.get scope.cancel_flag then scope_raise scope;
              if hi - lo <= grain then leaf lo hi
              else if lazy_deque_deep pool ~lazy_depth then begin
                (* [hi - lo > grain] on entry, so the unconditional first
                   chunk stays in range and guarantees progress; the loop
                   invariant [!lo < hi] holds because chunks are only
                   consumed while [hi - !lo > grain]. *)
                let acc = ref (leaf lo (lo + grain)) in
                let lo = ref (lo + grain) in
                while
                  hi - !lo > grain && lazy_deque_deep pool ~lazy_depth
                do
                  if Atomic.get scope.cancel_flag then scope_raise scope;
                  let stop = !lo + grain in
                  acc := combine !acc (leaf !lo stop);
                  lo := stop
                done;
                if hi - !lo <= grain then combine !acc (leaf !lo hi)
                else combine !acc (go !lo hi)
              end
              else begin
                let mid = lo + ((hi - lo) / 2) in
                let a, b =
                  join pool (fun () -> go lo mid) (fun () -> go mid hi)
                in
                combine a b
              end
            in
            go start finish)
    end
  end

let parallel_chunks ?grain ~start ~finish ~body pool =
  let n = finish - start in
  if n > 0 then begin
    let grain =
      match grain with Some g -> max 1 g | None -> default_grain pool n
    in
    let chunks = Rpb_prim.Util.ceil_div n grain in
    parallel_for ~grain:1 ~start:0 ~finish:chunks
      ~body:(fun c ->
        let lo = start + (c * grain) in
        let hi = min finish (lo + grain) in
        body lo hi)
      pool
  end

(* Deadline watchdog: one [Timer] entry on the shared timer wheel (not a
   dedicated domain — a server multiplexing thousands of deadline-bearing
   runs must not spawn a [Domain] apiece).  At expiry it cancels the run's
   *current* scope — construct recovery may have replaced the one installed
   at [run] entry — with [Stalled] carrying a per-worker counter dump, and
   wakes any sleeping workers so the flag is observed.  Running tasks are
   not interrupted (OCaml has no asynchronous cancellation); splitters and
   fresh tasks observe the flag at their next check, which is what turns a
   hang into a structured failure.  [finish] cancels the entry *before*
   installing a fresh scope, and [Timer.cancel] waits out a mid-flight
   callback, so a watchdog can never fire into a later run's scope. *)
let start_watchdog pool deadline_s =
  Timer.schedule ~delay_s:deadline_s (fun () ->
      let dump = Stats.to_string (Stats.capture pool) in
      scope_cancel
        (Atomic.get pool.scope)
        (Stalled
           (Printf.sprintf
              "Pool.run exceeded its %.3fs deadline; per-worker counters:\n%s"
              deadline_s dump))
        (Printexc.get_callstack 0);
      signal_work pool)

(* External cooperative cancellation: flag the pool's current scope with
   [exn] exactly as the deadline watchdog does, so splitters and
   not-yet-started tasks of the active run observe it at their next check
   and [run] re-raises [exn].  Best-effort by design — a no-op when no run
   is active (the idle scope is replaced at the next [run] entry), and
   tasks already executing are not interrupted.  This is the primitive the
   serving layer uses when a client disconnects mid-request. *)
let cancel_run pool exn =
  scope_cancel (Atomic.get pool.scope) exn (Printexc.get_callstack 0);
  signal_work pool

let run ?deadline pool f =
  check_alive pool;
  (match my_index pool with
   | Some _ -> invalid_arg "Pool.run: nested run on the same pool"
   | None -> ());
  (match deadline with
   | Some d when d <= 0. -> invalid_arg "Pool.run: deadline must be positive"
   | _ -> ());
  if Atomic.exchange pool.running true then
    invalid_arg "Pool.run: pool already has an active run";
  Atomic.set pool.scope (new_scope ?deadline ());
  let slot = Domain.DLS.get slot_key in
  slot := Some (pool.id, 0);
  (* The caller is worker 0 for the duration of the run: give it the pool's
     per-domain minor heap too, and put the caller's own setting back in
     [finish] so the sizing never leaks past the run. *)
  let saved_minor_heap = apply_minor_heap pool in
  let watchdog = Option.map (start_watchdog pool) deadline in
  (* Leave no task of this run behind: whether [f] returns or raises, every
     outstanding promise of the run's current scope is resolved before
     control goes back to the caller (construct recovery already drained any
     earlier failed scope), so pool tasks never reference a dead stack
     frame. *)
  let finish () =
    let scope = Atomic.get pool.scope in
    drain_scope pool scope;
    (* Cancel before installing a fresh scope: [Timer.cancel] waits out a
       callback already firing, so a late watchdog can only ever have hit
       this (finished) run's scope. *)
    Option.iter Timer.cancel watchdog;
    (match saved_minor_heap with
     | None -> ()
     | Some words -> Gc.set { (Gc.get ()) with Gc.minor_heap_size = words });
    slot := None;
    Atomic.set pool.scope (new_scope ());
    Atomic.set pool.running false;
    scope
  in
  match f () with
  | x ->
    (* The body completed, but the watchdog may have flagged the scope (a
       deadline overrun spent in un-cancellable work): surface [Stalled]
       rather than pretend the deadline held. *)
    let scope = finish () in
    if Atomic.get scope.cancel_flag then scope_raise scope;
    x
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    let scope = Atomic.get pool.scope in
    (* Flag the scope so queued tasks resolve as [Cancelled] instead of
       executing against a dying run, then drain them. *)
    scope_cancel scope e bt;
    ignore (finish ());
    (match e with
     | Cancelled ->
       (* Relay signal (e.g. [await] of a cancelled promise at the run-body
          level): unwrap to the first recorded failure. *)
       scope_raise scope
     | _ -> Printexc.raise_with_backtrace e bt)

let current_worker = my_index

(* Live scheduler gauges for the metrics plane: instantaneous per-worker
   deque depths (racy [Ws_deque.size] reads — a point-in-time occupancy
   sketch, not an invariant) and the latest per-worker GC samples written by
   the gated probe in [execute]. *)
let deque_depths pool =
  Array.init pool.num_workers (fun i -> Ws_deque.size pool.deques.(i))

let gc_samples pool =
  Array.init pool.num_workers (fun i ->
      let c = pool.counters.(i) in
      (c.(c_gc_minors), c.(c_gc_minor_kwords)))

(* Deprecated compat wrapper over [Stats]; kept so old callers and scripts
   that scrape the one-line form keep working. *)
let stats pool =
  let s = Stats.capture pool in
  Printf.sprintf "workers=%d tasks=%d steals=%d" s.Stats.num_workers
    (Stats.tasks_executed s) (Stats.steals_ok s)
