type task = unit -> unit

type 'a state = Pending | Done of 'a | Raised of exn
type 'a promise = 'a state Atomic.t

exception Shutdown

(* ------------------------------------------------------------------ *)
(* Per-worker counters.

   Each worker owns one [int array] slab, allocated separately and padded to
   a cache line, so the hot-path increments never contend: a worker writes
   only its own slab and the aggregator ([Stats.capture]) performs racy plain
   reads, which is fine for monotonic diagnostics counters. *)

let c_tasks = 0
let c_steals_ok = 1
let c_steals_failed = 2
let c_idle = 3
let c_max_depth = 4

(* 8 words = 64 bytes of payload per slab: one full cache line, so two
   workers' counters never share one. *)
let counter_slots = 8

(* How the pool turns a parallel region into an execution order.  [Ws] is the
   production work-stealing scheduler.  [Seq_det] is the deterministic
   sequential executor behind [create_deterministic]: one domain, and — when
   [shuffle] is on — a seeded permutation of the leaf order, so it explores
   alternative (but valid) fork-join schedules reproducibly.  It is the
   reference semantics the differential oracle in [lib/check] diffs against. *)
type sched = Ws | Seq_det of { rng : Rpb_prim.Rng.t; shuffle : bool }

type t = {
  id : int;
  num_workers : int;
  sched : sched;
  deques : task Ws_deque.t array;
  mutable domains : unit Domain.t array;
  injector : task Queue.t;
  inj_mutex : Mutex.t;
  idle_mutex : Mutex.t;
  idle_cond : Condition.t;
  wake_version : int Atomic.t;
  sleepers : int Atomic.t;
  shutdown_flag : bool Atomic.t;
  running : bool Atomic.t;
  counters : int array array;
}

let next_pool_id = Atomic.make 0

(* Which (pool id, worker index) the current domain is executing for. *)
let slot_key : (int * int) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let my_index pool =
  match !(Domain.DLS.get slot_key) with
  | Some (pid, idx) when pid = pool.id -> Some idx
  | _ -> None

let size pool = pool.num_workers

(* Alias for annotating functions defined after [Stats]/[Trace], whose record
   fields would otherwise shadow [t]'s during inference. *)
type pool = t

(* ------------------------------------------------------------------ *)
(* Structured scheduler telemetry (replaces the old global atomics).    *)

module Stats = struct
  type worker = {
    worker_id : int;
    tasks_executed : int;
    steals_ok : int;
    steals_failed : int;
    idle_episodes : int;
    max_deque_depth : int;
  }

  type t = { num_workers : int; per_worker : worker array }

  let total f t = Array.fold_left (fun acc w -> acc + f w) 0 t.per_worker
  let tasks_executed t = total (fun w -> w.tasks_executed) t
  let steals_ok t = total (fun w -> w.steals_ok) t
  let steals_failed t = total (fun w -> w.steals_failed) t
  let idle_episodes t = total (fun w -> w.idle_episodes) t

  let max_deque_depth t =
    Array.fold_left (fun acc w -> max acc w.max_deque_depth) 0 t.per_worker

  (* Counters are monotonic, so a window of activity is [after - before];
     [max_deque_depth] is a high-water mark and keeps the [after] value. *)
  let diff ~before ~after =
    let sub wa wb =
      {
        worker_id = wa.worker_id;
        tasks_executed = wa.tasks_executed - wb.tasks_executed;
        steals_ok = wa.steals_ok - wb.steals_ok;
        steals_failed = wa.steals_failed - wb.steals_failed;
        idle_episodes = wa.idle_episodes - wb.idle_episodes;
        max_deque_depth = wa.max_deque_depth;
      }
    in
    {
      num_workers = after.num_workers;
      per_worker =
        Array.mapi
          (fun i wa ->
            if i < Array.length before.per_worker then
              sub wa before.per_worker.(i)
            else wa)
          after.per_worker;
    }

  let summary t =
    Printf.sprintf "workers=%d tasks=%d steals=%d failed-steals=%d idle=%d"
      t.num_workers (tasks_executed t) (steals_ok t) (steals_failed t)
      (idle_episodes t)

  let to_string t =
    let b = Buffer.create 256 in
    Buffer.add_string b (summary t);
    Array.iter
      (fun w ->
        Buffer.add_string b
          (Printf.sprintf
             "\n  worker %2d: tasks=%-8d steals=%-6d failed=%-6d idle=%-5d \
              max-depth=%d"
             w.worker_id w.tasks_executed w.steals_ok w.steals_failed
             w.idle_episodes w.max_deque_depth))
      t.per_worker;
    Buffer.contents b

  let capture (pool : pool) =
    {
      num_workers = pool.num_workers;
      per_worker =
        Array.mapi
          (fun i c ->
            {
              worker_id = i;
              tasks_executed = c.(c_tasks);
              steals_ok = c.(c_steals_ok);
              steals_failed = c.(c_steals_failed);
              idle_episodes = c.(c_idle);
              max_deque_depth = c.(c_max_depth);
            })
          pool.counters;
    }

  let reset (pool : pool) =
    Array.iter (fun c -> Array.fill c 0 counter_slots 0) pool.counters
end

(* ------------------------------------------------------------------ *)
(* Task tracing.

   Off by default and gated behind one atomic read per potential event, so
   the instrumented hot paths stay at their uninstrumented cost when tracing
   is disabled.  Events are buffered per domain (no shared structure on the
   recording path) and serialized to the Chrome trace-event JSON format
   ([chrome://tracing] / Perfetto) on [stop_to_file]. *)

module Trace = struct
  type event = { name : string; tid : int; ts_us : float; dur_us : float }

  let enabled_flag = Atomic.make false
  let registry_mutex = Mutex.create ()
  let buffers : event list ref list ref = ref []

  let buf_key : event list ref option ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref None)

  let my_buffer () =
    let slot = Domain.DLS.get buf_key in
    match !slot with
    | Some b -> b
    | None ->
      let b = ref [] in
      Mutex.lock registry_mutex;
      buffers := b :: !buffers;
      Mutex.unlock registry_mutex;
      slot := Some b;
      b

  let enabled () = Atomic.get enabled_flag
  let now_us () = Unix.gettimeofday () *. 1e6

  let record ~name ~tid ~ts_us ~dur_us =
    if Atomic.get enabled_flag then begin
      let b = my_buffer () in
      b := { name; tid; ts_us; dur_us } :: !b
    end

  let start () =
    Mutex.lock registry_mutex;
    List.iter (fun b -> b := []) !buffers;
    Mutex.unlock registry_mutex;
    Atomic.set enabled_flag true

  let stop () =
    Atomic.set enabled_flag false;
    Mutex.lock registry_mutex;
    let evs = List.concat_map (fun b -> !b) !buffers in
    List.iter (fun b -> b := []) !buffers;
    Mutex.unlock registry_mutex;
    List.sort (fun a b -> compare a.ts_us b.ts_us) evs

  let span pool name f =
    if not (Atomic.get enabled_flag) then f ()
    else begin
      let t0 = now_us () in
      let finish () =
        let tid = match my_index pool with Some i -> i | None -> -1 in
        record ~name ~tid ~ts_us:t0 ~dur_us:(now_us () -. t0)
      in
      match f () with
      | x ->
        finish ();
        x
      | exception e ->
        finish ();
        raise e
    end

  let escape name =
    let b = Buffer.create (String.length name + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      name;
    Buffer.contents b

  let stop_to_file path =
    let evs = stop () in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc "[";
        List.iteri
          (fun i e ->
            if i > 0 then output_string oc ",";
            Printf.fprintf oc
              "\n\
               {\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}"
              (escape e.name) e.tid e.ts_us e.dur_us)
          evs;
        output_string oc "\n]\n");
    List.length evs
end

(* ------------------------------------------------------------------ *)

(* Eventcount-style wakeup: pushers bump [wake_version] then broadcast if any
   worker registered as sleeping; sleepers re-check the version under the
   mutex before waiting, so no wakeup can be missed. *)
let signal_work pool =
  Atomic.incr pool.wake_version;
  if Atomic.get pool.sleepers > 0 then begin
    Mutex.lock pool.idle_mutex;
    Condition.broadcast pool.idle_cond;
    Mutex.unlock pool.idle_mutex
  end

let push_local pool idx task =
  let dq = pool.deques.(idx) in
  Ws_deque.push dq task;
  let c = pool.counters.(idx) in
  let depth = Ws_deque.size dq in
  if depth > c.(c_max_depth) then c.(c_max_depth) <- depth;
  signal_work pool

let push_external pool task =
  Mutex.lock pool.inj_mutex;
  Queue.push task pool.injector;
  Mutex.unlock pool.inj_mutex;
  signal_work pool

let take_injected pool =
  if Queue.is_empty pool.injector then None
  else begin
    Mutex.lock pool.inj_mutex;
    let t = Queue.take_opt pool.injector in
    Mutex.unlock pool.inj_mutex;
    t
  end

(* One attempt to find work: own deque first (depth-first order), then a
   random sweep over victims, then the injector. *)
let try_find_task pool my_idx rng =
  match Ws_deque.pop pool.deques.(my_idx) with
  | Some _ as t -> t
  | None ->
    let n = pool.num_workers in
    let c = pool.counters.(my_idx) in
    let start = if n > 1 then Rpb_prim.Rng.int rng n else 0 in
    let rec sweep k =
      if k >= n then None
      else begin
        let v = (start + k) mod n in
        if v = my_idx then sweep (k + 1)
        else
          match Ws_deque.steal pool.deques.(v) with
          | Some _ as t ->
            c.(c_steals_ok) <- c.(c_steals_ok) + 1;
            t
          | None ->
            c.(c_steals_failed) <- c.(c_steals_failed) + 1;
            sweep (k + 1)
      end
    in
    (match sweep 0 with
     | Some _ as t -> t
     | None -> take_injected pool)

let execute pool idx task =
  let c = pool.counters.(idx) in
  c.(c_tasks) <- c.(c_tasks) + 1;
  if Trace.enabled () then begin
    let t0 = Trace.now_us () in
    match task () with
    | () ->
      Trace.record ~name:"task" ~tid:idx ~ts_us:t0
        ~dur_us:(Trace.now_us () -. t0)
    | exception e ->
      Trace.record ~name:"task" ~tid:idx ~ts_us:t0
        ~dur_us:(Trace.now_us () -. t0);
      raise e
  end
  else task ()

let worker_loop pool idx =
  Domain.DLS.get slot_key := Some (pool.id, idx);
  let rng = Rpb_prim.Rng.create (0x5EED + idx) in
  let c = pool.counters.(idx) in
  let spin_budget = 64 in
  let rec loop spins =
    if Atomic.get pool.shutdown_flag then ()
    else
      match try_find_task pool idx rng with
      | Some task ->
        execute pool idx task;
        loop spin_budget
      | None ->
        if spins > 0 then begin
          Domain.cpu_relax ();
          loop (spins - 1)
        end
        else begin
          (* Sleep until new work is signalled (or shutdown). *)
          c.(c_idle) <- c.(c_idle) + 1;
          let seen = Atomic.get pool.wake_version in
          Mutex.lock pool.idle_mutex;
          Atomic.incr pool.sleepers;
          if Atomic.get pool.wake_version = seen
             && not (Atomic.get pool.shutdown_flag)
          then Condition.wait pool.idle_cond pool.idle_mutex;
          Atomic.decr pool.sleepers;
          Mutex.unlock pool.idle_mutex;
          loop spin_budget
        end
  in
  loop spin_budget

let make_pool ~num_workers ~sched =
  if num_workers < 1 then invalid_arg "Pool.create: num_workers must be >= 1";
  let pool =
    {
      id = Atomic.fetch_and_add next_pool_id 1;
      num_workers;
      sched;
      deques = Array.init num_workers (fun _ -> Ws_deque.create ());
      domains = [||];
      injector = Queue.create ();
      inj_mutex = Mutex.create ();
      idle_mutex = Mutex.create ();
      idle_cond = Condition.create ();
      wake_version = Atomic.make 0;
      sleepers = Atomic.make 0;
      shutdown_flag = Atomic.make false;
      running = Atomic.make false;
      counters = Array.init num_workers (fun _ -> Array.make counter_slots 0);
    }
  in
  pool.domains <-
    Array.init (num_workers - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop pool (i + 1)));
  pool

let create ?name:_ ~num_workers () = make_pool ~num_workers ~sched:Ws

let create_deterministic ?(seed = 0) ?(shuffle = true) () =
  make_pool ~num_workers:1
    ~sched:(Seq_det { rng = Rpb_prim.Rng.create (0xDE7 lxor seed); shuffle })

let deterministic pool =
  match pool.sched with Ws -> false | Seq_det _ -> true

let shutdown pool =
  if not (Atomic.exchange pool.shutdown_flag true) then begin
    Mutex.lock pool.idle_mutex;
    Condition.broadcast pool.idle_cond;
    Mutex.unlock pool.idle_mutex;
    Array.iter Domain.join pool.domains;
    pool.domains <- [||]
  end

let check_alive pool = if Atomic.get pool.shutdown_flag then raise Shutdown

let make_task f p () =
  (match f () with
   | x -> Atomic.set p (Done x)
   | exception e -> Atomic.set p (Raised e))

let async pool f =
  check_alive pool;
  let p = Atomic.make Pending in
  (match my_index pool with
   | Some idx -> push_local pool idx (make_task f p)
   | None ->
     if pool.num_workers = 1 then
       (* No workers to pick the task up: run it eagerly. *)
       make_task f p ()
     else push_external pool (make_task f p));
  p

(* Helping wait: while the promise is pending, execute other pool tasks.  A
   worker never blocks here, so nested fork-join cannot deadlock. *)
let await pool p =
  let finish () =
    match Atomic.get p with
    | Done x -> x
    | Raised e -> raise e
    | Pending -> assert false
  in
  (match my_index pool with
   | Some idx ->
     let rng = Rpb_prim.Rng.create (0xA3A17 + idx) in
     let c = pool.counters.(idx) in
     let rec help spins =
       match Atomic.get p with
       | Pending ->
         (match try_find_task pool idx rng with
          | Some task ->
            execute pool idx task;
            help 64
          | None ->
            if spins > 0 then begin
              Domain.cpu_relax ();
              help (spins - 1)
            end
            else begin
              (* The task is running on another worker; yield the core. *)
              c.(c_idle) <- c.(c_idle) + 1;
              Unix.sleepf 5e-5;
              help 64
            end)
       | Done _ | Raised _ -> ()
     in
     help 64
   | None ->
     let rec wait () =
       match Atomic.get p with
       | Pending ->
         Unix.sleepf 1e-4;
         wait ()
       | Done _ | Raised _ -> ()
     in
     wait ());
  finish ()

let try_result p =
  match Atomic.get p with
  | Pending -> None
  | Done x -> Some (Ok x)
  | Raised e -> Some (Error e)

let join pool f g =
  match pool.sched with
  | Seq_det { rng; shuffle } ->
    (* One domain: run both branches here, in a seeded order.  Flipping the
       order is a legal fork-join schedule (the branches are unordered), so a
       result that depends on it is order-sensitive by construction. *)
    if shuffle && Rpb_prim.Rng.bool rng then begin
      let b = g () in
      let a = f () in
      (a, b)
    end
    else begin
      let a = f () in
      let b = g () in
      (a, b)
    end
  | Ws ->
    (match my_index pool with
     | None ->
       let a = f () in
       let b = g () in
       (a, b)
     | Some _ ->
       let pg = async pool g in
       let a = f () in
       let b = await pool pg in
       (a, b))

let default_grain (pool : pool) n = max 1 (n / (8 * pool.num_workers))

(* Leaf decomposition used by the deterministic executor: contiguous chunks
   of at most [grain] indices, visited in a seeded random order but ascending
   within each leaf — the same guarantee the work-stealing tree gives
   (in-order leaves, unordered across leaves). *)
let seq_det_for ~rng ~grain ~start ~finish ~body =
  let n = finish - start in
  let leaves = Rpb_prim.Util.ceil_div n grain in
  let order = Rpb_prim.Rng.permutation rng leaves in
  Array.iter
    (fun l ->
      let lo = start + (l * grain) in
      let hi = min finish (lo + grain) in
      for i = lo to hi - 1 do
        body i
      done)
    order

let parallel_for ?grain ~start ~finish ~body pool =
  let n = finish - start in
  if n > 0 then begin
    let grain =
      match grain with Some g -> max 1 g | None -> default_grain pool n
    in
    match pool.sched with
    | Seq_det { rng; shuffle = true } ->
      seq_det_for ~rng ~grain ~start ~finish ~body
    | Seq_det { shuffle = false; _ } ->
      for i = start to finish - 1 do
        body i
      done
    | Ws ->
    if pool.num_workers = 1 || my_index pool = None then
      for i = start to finish - 1 do
        body i
      done
    else begin
      let rec go lo hi =
        if hi - lo <= grain then
          for i = lo to hi - 1 do
            body i
          done
        else begin
          let mid = lo + ((hi - lo) / 2) in
          let ((), ()) = join pool (fun () -> go lo mid) (fun () -> go mid hi) in
          ()
        end
      in
      go start finish
    end
  end

let parallel_for_reduce ?grain ~start ~finish ~body ~combine ~init pool =
  let n = finish - start in
  if n <= 0 then init
  else begin
    let grain =
      match grain with Some g -> max 1 g | None -> default_grain pool n
    in
    let leaf lo hi =
      let acc = ref init in
      for i = lo to hi - 1 do
        acc := combine !acc (body i)
      done;
      !acc
    in
    match pool.sched with
    | Seq_det { rng; shuffle = true } ->
      (* Evaluate the leaves in a seeded shuffled order, but combine them in
         index order: execution timing moves, the (associative) combine tree
         does not — exactly what a parallel schedule may do. *)
      let leaves = Rpb_prim.Util.ceil_div n grain in
      let results = Array.make leaves init in
      let order = Rpb_prim.Rng.permutation rng leaves in
      Array.iter
        (fun l ->
          let lo = start + (l * grain) in
          let hi = min finish (lo + grain) in
          results.(l) <- leaf lo hi)
        order;
      Array.fold_left combine init results
    | Seq_det { shuffle = false; _ } -> leaf start finish
    | Ws ->
    if pool.num_workers = 1 || my_index pool = None then leaf start finish
    else begin
      let rec go lo hi =
        if hi - lo <= grain then leaf lo hi
        else begin
          let mid = lo + ((hi - lo) / 2) in
          let a, b = join pool (fun () -> go lo mid) (fun () -> go mid hi) in
          combine a b
        end
      in
      go start finish
    end
  end

let parallel_chunks ?grain ~start ~finish ~body pool =
  let n = finish - start in
  if n > 0 then begin
    let grain =
      match grain with Some g -> max 1 g | None -> default_grain pool n
    in
    let chunks = Rpb_prim.Util.ceil_div n grain in
    parallel_for ~grain:1 ~start:0 ~finish:chunks
      ~body:(fun c ->
        let lo = start + (c * grain) in
        let hi = min finish (lo + grain) in
        body lo hi)
      pool
  end

let run pool f =
  check_alive pool;
  (match my_index pool with
   | Some _ -> invalid_arg "Pool.run: nested run on the same pool"
   | None -> ());
  if Atomic.exchange pool.running true then
    invalid_arg "Pool.run: pool already has an active run";
  let slot = Domain.DLS.get slot_key in
  slot := Some (pool.id, 0);
  Fun.protect
    ~finally:(fun () ->
      slot := None;
      Atomic.set pool.running false)
    f

let current_worker = my_index

(* Deprecated compat wrapper over [Stats]; kept so old callers and scripts
   that scrape the one-line form keep working. *)
let stats pool =
  let s = Stats.capture pool in
  Printf.sprintf "workers=%d tasks=%d steals=%d" s.Stats.num_workers
    (Stats.tasks_executed s) (Stats.steals_ok s)
