(** Work-stealing fork-join pool over OCaml domains.

    This is the reproduction's stand-in for Rayon (and for the OpenCilk
    runtime used by the paper's C++ baselines): a fixed set of worker domains,
    one Chase–Lev deque per worker, random-victim stealing, and blocking
    idle-wait so that an oversubscribed machine is not burned by spinning.

    The usage discipline mirrors Rayon's implicit global pool made explicit:

    {[
      let pool = Pool.create ~num_workers:4 () in
      Pool.run pool (fun () ->
        Pool.parallel_for ~start:0 ~finish:n ~body:(fun i -> ...) pool);
      Pool.shutdown pool
    ]}

    All parallel operations ({!async}, {!join}, {!parallel_for}, ...) must be
    called from inside {!run} (the calling domain becomes worker 0) or from a
    task already executing on the pool.  {!await} never blocks the worker: it
    helps by popping and stealing pending tasks, the standard fork-join
    "help-first" policy that makes nested parallelism deadlock-free.

    The scheduler is instrumented: every worker keeps private, cache-line
    padded counters (see {!Stats}) and every hot path carries an optional
    tracing hook (see {!Trace}) that costs one atomic load when disabled.

    {2 Failure semantics}

    Every {!run} owns a {e cancellation scope}.  The first exception raised
    by a structured task (a {!join} branch, and through [join] every
    {!parallel_for} / {!parallel_for_reduce} / {!parallel_chunks} subtree)
    is recorded in the scope and flips its cancel flag; after that, splitters
    and [join] stop descending and fresh tasks of the scope resolve as
    {!Cancelled} without running user code, so sibling work is abandoned
    early rather than run to completion.  Before {!run} returns or re-raises
    it {e drains} the scope — waits for every outstanding task promise to
    resolve — so no pool task can still reference the caller's stack or
    buffers after [run] exits.  The exception that surfaces from [run] is the
    {e first} recorded failure, with its original backtrace.

    Unstructured tasks ({!async}) keep their exception private to the
    promise: {!await} re-raises it to whoever awaits, but it does not cancel
    the scope — callers that await-and-handle failures (futures,
    speculation) do not tear down unrelated work.

    {!shutdown} fails all still-pending promises with {!Shutdown} instead of
    stranding a concurrent {!await} forever.  All checks on the scheduling
    hot paths cost one plain/atomic load while the run is healthy. *)

type t

type 'a promise

exception Shutdown
(** Raised by operations on a pool after {!shutdown}, and stored into any
    promise still pending when {!shutdown} runs. *)

exception Cancelled
(** Resolution of a task that was abandoned because its scope had already
    failed when the task was about to start (or when a splitter observed the
    failed scope).  User code normally never sees it: {!run} unwraps it to
    the scope's first recorded exception. *)

exception Stalled of string
(** Raised out of {!run} when the [?deadline] watchdog fired.  The payload
    carries the deadline and a per-worker counter dump ({!Stats.to_string})
    taken at expiry, for post-mortem. *)

(** {1 Shared timer wheel}

    One process-wide timer domain services every scheduled callback — in
    particular every [run ?deadline] watchdog — instead of each deadline
    spawning a [Domain] of its own, so a server multiplexing thousands of
    per-request deadlines costs one extra domain total.  The domain is
    spawned lazily on the first {!Timer.schedule}, parks while no timer is
    pending, polls at ≤5 ms granularity while one is, and is joined
    automatically at process exit. *)

module Timer : sig
  type handle

  val schedule : delay_s:float -> (unit -> unit) -> handle
  (** Run the callback on the shared timer domain [delay_s] seconds from
      now (±5 ms).  The callback must be small and must not raise — an
      escaping exception is swallowed.  @raise Invalid_argument on a
      negative delay. *)

  val cancel : handle -> unit
  (** Prevent the callback from firing.  Synchronous: if the callback is
      executing right now, [cancel] blocks until it completes, so after
      [cancel] returns the callback either ran entirely or never will.
      Idempotent; harmless after the callback has fired. *)

  val domains_spawned : unit -> int
  (** How many timer domains this process has ever spawned — at most one
      unless {!shutdown} was called in between.  The regression probe that
      keeps deadline-bearing runs from costing a domain apiece. *)

  val shutdown : unit -> unit
  (** Stop and join the timer domain (pending timers are abandoned).  The
      next {!schedule} spawns a fresh one.  Called automatically at
      process exit. *)

  val pending_count : unit -> int
  (** Number of timers currently armed (scheduled and neither fired nor
      cancelled) — the timer-wheel occupancy gauge of the live metrics
      plane. *)
end

val cancel_run : t -> exn -> unit
(** [cancel_run pool exn] cancels the pool's {e current} run cooperatively,
    exactly as the [?deadline] watchdog does: the active scope records
    [exn], splitters and not-yet-started tasks observe the flag at their
    next check, and {!run} re-raises [exn] after draining.  Best-effort by
    design: callable from any domain or thread, a no-op when no run is
    active (the idle scope is discarded at the next {!run} entry), and
    tasks already executing are not interrupted.  This is the primitive a
    serving layer uses when a client disconnects mid-request. *)

(** {1 Scheduling policies}

    Every tunable scheduling decision of the work-stealing runtime is a field
    of one plain {!Policy.t} record threaded through {!create} — so a policy
    costs one record field load at each decision point, and the default
    policy compiles to exactly the pre-refactor scheduler (steal-one,
    help-first, uniform-random victims, and the historical spin/backoff
    constants).  Policies are how the per-workload steal/fork trade-offs the
    scheduling literature describes (steal-half batches, work-first fork
    order, victim affinity) become raceable experiments instead of hardwired
    constants: [rpb bench --policy NAME] and the CI policy-race job run the
    same benchmark registry under different policies and attribute every
    result — telemetry JSON, {!Stats}, flight recordings — to the policy
    name. *)

module Policy : sig
  type steal_amount =
    | Steal_one  (** one task per successful steal (Chase–Lev default) *)
    | Steal_half
        (** claim up to half of the victim's observed queue per visit; the
            thief runs the first task and pushes the rest onto its own
            deque.  See {!Ws_deque.steal_half} for the batching contract. *)

  type fork_order =
    | Help_first
        (** [join f g] pushes [g] and runs [f] inline — the pre-refactor
            behavior: the worker keeps descending the left spine and thieves
            help with the right branches. *)
    | Work_first
        (** [join f g] pushes [f] (the continuation branch) and runs [g]
            (the child) inline, so an idle thief picks up the continuation
            while the worker commits to the child first. *)

  type victim_selection =
    | Random_victim  (** sweep starts at a uniform random worker (default) *)
    | Round_robin  (** sweep starts after the last successful victim *)
    | Sticky  (** sweep starts at the last successful victim *)

  type splitter =
    | Eager_grain
        (** {!parallel_for} / {!parallel_for_reduce} split recursively down
            to [grain]-sized leaves unconditionally — the pre-policy
            behavior: the task count is fixed up front, idle thieves or
            not. *)
    | Lazy_binary of { lazy_depth : int }
        (** Adaptive (lazy binary) splitting: while the executing worker's
            own deque holds more than [lazy_depth] unstolen tasks — i.e. no
            thief demand — the splitter runs [grain]-sized chunks inline
            with zero deque traffic (the may-inline fast path); when the
            deque drains to [lazy_depth] or below, it splits off the top
            half of the remaining range as one task and continues on the
            bottom half.  Fine grains stop costing fork-join overhead
            unless the parallelism is actually consumed. *)

  type t = {
    name : string;  (** registry key; stamped into all telemetry *)
    steal_amount : steal_amount;
    fork_order : fork_order;
    victim_selection : victim_selection;
    splitter : splitter;
    grain_factor : int;
        (** leaves-per-worker target behind the default grain: a call site
            passing no [?grain] gets [max 1 (n / (grain_factor * workers))].
            The default policy's [8] is the pre-policy constant. *)
    fixed_grain : int option;
        (** when [Some g], every defaulted grain becomes [g] regardless of
            [grain_factor] — the granularity-sweep lever.  Explicit
            call-site [?grain] arguments still win. *)
    spin_budget : int;  (** spins before a worker sleeps / a waiter backs off *)
    idle_sleep_s : float;  (** helper's sleep when out of work under [await] *)
    backoff_min_s : float;  (** off-pool waiter's initial poll interval *)
    backoff_max_s : float;  (** off-pool waiter's poll-interval cap *)
  }

  val default : t
  (** Steal-one, help-first, random victims, eager grain-8-per-worker
      splitting, spin budget 64, 50 µs helper sleep, 1 µs → 1 ms off-pool
      backoff: bit-for-bit the pre-policy scheduler. *)

  val steal_half : t
  val work_first : t
  val sticky : t
  val round_robin : t
  val steal_half_sticky : t
  val work_first_steal_half : t

  val lazy_split : t
  (** Registry name ["lazy"] ([lazy] is an OCaml keyword): lazy binary
      splitting with [lazy_depth = 2] and a 16x finer default-grain target
      ([grain_factor = 128]) — the depth-triggered coarsening is what keeps
      the finer leaves from costing 16x the deque traffic. *)

  val lazy_sticky : t
  val lazy_steal_half : t

  val eager_grain1 : t
  (** Eager splitting with every defaulted grain forced to 1 — the
      worst-case fork-join overhead end of the granularity sweep. *)

  val lazy_grain1 : t
  (** Lazy splitting with every defaulted grain forced to 1 — same leaf
      decomposition as {!eager_grain1}, adaptively coarsened. *)

  val all : t list
  (** The named-policy registry, [default] first. *)

  val names : unit -> string list

  val find : string -> t option
  (** Look a policy up by {!t.name}. *)
end

val create :
  ?name:string -> ?policy:Policy.t -> ?minor_heap_kb:int ->
  num_workers:int -> unit -> t
(** [create ~num_workers ()] spawns [num_workers - 1] worker domains; the
    domain that later calls {!run} acts as the remaining worker.
    [num_workers] must be at least 1.  With [num_workers = 1] every operation
    degrades to sequential execution on the caller.

    [?policy] (default {!Policy.default}) fixes the scheduling policy for the
    pool's lifetime; see {!Policy}.

    [?minor_heap_kb] sizes each worker domain's minor heap (in KB; must be
    at least 1 — the runtime normalizes sizes below its own minimum).  The
    calling domain gets the same sizing for the duration of each {!run} and
    its previous setting back afterwards.  Per-worker [Gc] deltas in
    {!Recorder} [Gc_sample] events make the effect observable: it is the
    second scheduler-overhead lever next to {!Policy.t.splitter}, trading
    minor-collection frequency against cache footprint on allocation-heavy
    parallel loops.  Omitted = runtime default, untouched.

    Graceful degradation: if [Domain.spawn] fails (resource exhaustion), the
    attempt is retried with capped backoff and, if it keeps failing, the pool
    is created with however many workers did spawn instead of crashing.  The
    shortfall is visible as {!Stats.requested_workers} vs
    {!Stats.num_workers}. *)

val policy : t -> Policy.t
(** The policy the pool was created with. *)

val policy_name : t -> string
(** [policy_name pool = (policy pool).Policy.name]. *)

val create_deterministic : ?seed:int -> ?shuffle:bool -> unit -> t
(** A drop-in deterministic sequential executor: a pool of one worker (no
    domains are spawned) whose parallel operations run entirely on the
    calling domain in a reproducible order.  With [shuffle] (the default),
    {!parallel_for} / {!parallel_for_reduce} / {!parallel_chunks} visit their
    leaves in a seeded random permutation (ascending within each leaf) and
    {!join} flips branch order by a seeded coin — all schedules a real
    work-stealing run could produce, so any result difference against the
    default in-order run exposes an order-sensitive (racy) computation.
    Equal seeds give equal schedules.  This is the reference executor behind
    the differential oracle in [lib/check]. *)

val deterministic : t -> bool
(** Whether the pool was built by {!create_deterministic}. *)

val size : t -> int
(** Number of workers (including the caller-during-[run]). *)

val run : ?deadline:float -> t -> (unit -> 'a) -> 'a
(** [run pool f] executes [f] with the calling domain installed as worker 0.
    Nested [run] on the same pool from inside a task is not allowed.

    On failure the scope is cancelled, outstanding tasks are drained (see
    {e Failure semantics} above), and the first recorded exception re-raises
    with its original backtrace — [run] never returns or raises while a task
    of this run is still executing.  After an exceptional [run] the pool is
    healthy and reusable; the next [run] gets a fresh scope.

    [?deadline] (seconds, must be positive) starts a watchdog domain: if the
    run is still going when it expires, the scope is cancelled with
    {!Stalled} carrying a per-worker counter dump.  Tasks already running are
    not interrupted — the deadline bounds runs whose remaining work consists
    of cancellable splitters and queued tasks, which is what turns a CI hang
    into a structured failure. *)

val shutdown : t -> unit
(** Terminates the worker domains and joins them, then fails every promise
    still [Pending] with {!Shutdown} so concurrent {!await}s raise instead of
    polling forever.  Idempotent. *)

val async : t -> (unit -> 'a) -> 'a promise
(** Schedule a task.  Must be called from within {!run} or from a pool task.
    An exception in the task is private to the promise (it does not cancel
    the enclosing run); it re-raises at {!await}. *)

val await : t -> 'a promise -> 'a
(** Wait for a promise, executing other pool tasks while waiting (a worker
    never blocks here).  Off-pool waiters spin briefly, then back off
    exponentially (1 µs doubling to 1 ms cap).  Re-raises the task's
    exception if it failed. *)

val try_result : 'a promise -> ('a, exn) result option
(** Non-blocking peek: [None] while the task is still pending. *)

val join : t -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** [join pool f g] runs [f] and [g] potentially in parallel and returns both
    results — the Rayon [join] of the paper's Listing 9.

    If either branch raises, the run's scope is cancelled and the exception
    propagates — but only after the sibling branch's promise has resolved
    (it is skipped if it had not started), so the unwind never races a
    branch still executing against the caller's frames.  If the scope was
    already cancelled when [join] is entered, it re-raises the first
    recorded exception instead of forking. *)

val parallel_for : ?grain:int -> start:int -> finish:int -> body:(int -> unit) -> t -> unit
(** [parallel_for ~start ~finish ~body pool] applies [body] to every index in
    the half-open range [\[start, finish)], decomposing according to the
    pool policy's {!Policy.t.splitter}: eager recursion down to
    [grain]-sized leaves, or lazy demand-driven splitting that runs
    [grain]-sized chunks inline while no thief needs work.  When [?grain]
    is omitted the policy supplies it ({!Policy.t.grain_factor} /
    {!Policy.t.fixed_grain}; the default targets ~8 leaves per worker).
    The pool comes last (domainslib convention) so that the optional
    [?grain] can be erased. *)

val parallel_for_reduce :
  ?grain:int -> start:int -> finish:int ->
  body:(int -> 'a) -> combine:('a -> 'a -> 'a) -> init:'a -> t -> 'a
(** Tree-shaped map-reduce over an index range; grain and splitter are
    policy-governed exactly as in {!parallel_for}.  [combine] must be
    associative; [init] must be its identity on the left of any leaf result.
    (The lazy splitter's combine tree leans left along its inline fast path
    — associativity is what makes that unobservable.) *)

val parallel_chunks :
  ?grain:int -> start:int -> finish:int -> body:(int -> int -> unit) -> t -> unit
(** [parallel_chunks ~start ~finish ~body pool] partitions the range into
    contiguous chunks and calls [body lo hi] once per chunk ([hi] exclusive).
    Used to express Block-style operators where the per-chunk loop matters. *)

val current_worker : t -> int option
(** The calling domain's worker index, if it is executing on this pool.
    Useful for per-worker scratch state. *)

val deque_depths : t -> int array
(** Instantaneous per-worker deque depths — racy point-in-time reads, a
    live-load sketch for the metrics plane, not a synchronized snapshot. *)

val gc_samples : t -> (int * int) array
(** Latest per-worker [(minor_collections, minor_kwords)] GC samples.  Only
    populated while {!set_gc_sampling} is on: each worker samples its own
    [Gc.quick_stat] at most once per 64 executed tasks (a domain's GC
    counters can only be read from that domain).  Zeros otherwise. *)

val set_gc_sampling : bool -> unit
(** Arm or disarm the per-worker GC probe behind {!gc_samples}.  Shares the
    process-global instrumentation switch word with {!Trace} / {!Recorder}:
    one atomic load per executed task while off. *)

val gc_sampling : unit -> bool

(** {1 Scheduler telemetry}

    Every worker maintains private counters in its own cache line — the
    increments on the scheduling hot paths are plain stores with no
    cross-worker contention, so the instrumentation does not perturb the
    1-vs-P-thread comparisons the paper's evaluation rests on.  Aggregation
    happens only when a snapshot is {!Stats.capture}d. *)

module Stats : sig
  type pool := t

  type worker = {
    worker_id : int;
    tasks_executed : int;  (** tasks this worker ran (own, stolen, injected) *)
    steals_ok : int;  (** successful steals by this worker *)
    steals_failed : int;  (** victim sweeps that found an empty/contended deque *)
    idle_episodes : int;  (** times the worker gave up spinning and slept *)
    max_deque_depth : int;  (** high-water mark of this worker's own deque *)
  }

  type t = {
    num_workers : int;  (** workers actually running *)
    requested_workers : int;
        (** workers asked for at {!create}; [> num_workers] iff the pool
            degraded because [Domain.spawn] kept failing *)
    policy : string;  (** {!Policy.t.name} of the pool's scheduling policy *)
    per_worker : worker array;
  }

  val capture : pool -> t
  (** Snapshot the live counters.  Cheap (one racy read per counter); safe to
      call at any time, including while the pool is running. *)

  val reset : pool -> unit
  (** Zero all counters.  Only meaningful while the pool is quiescent. *)

  val diff : before:t -> after:t -> t
  (** Per-worker activity between two snapshots.  Monotonic counters are
      subtracted; [max_deque_depth] (a high-water mark) keeps the [after]
      value. *)

  val tasks_executed : t -> int
  val steals_ok : t -> int
  val steals_failed : t -> int
  val idle_episodes : t -> int

  val max_deque_depth : t -> int
  (** Maximum of the per-worker high-water marks. *)

  val summary : t -> string
  (** One-line totals. *)

  val to_string : t -> string
  (** Multi-line form: totals plus one line per worker. *)
end

(** {1 Task tracing}

    A process-global switch (the pool's hot paths only pay one atomic load
    while it is off).  When enabled, every executed task and every
    {!Trace.span} records a complete event — name, worker id, begin
    timestamp, duration — into a per-domain buffer; {!Trace.stop_to_file}
    serializes them in the Chrome trace-event JSON format, loadable in
    [chrome://tracing] or Perfetto. *)

module Trace : sig
  type pool := t

  val enabled : unit -> bool

  val start : unit -> unit
  (** Discard previously buffered events and begin recording. *)

  val span : pool -> string -> (unit -> 'a) -> 'a
  (** [span pool name f] runs [f] and, when tracing is enabled, records a
      named span attributed to the calling worker (worker id [-1] outside the
      pool).  When tracing is off the cost is a single atomic load. *)

  val record : name:string -> tid:int -> ts_us:float -> dur_us:float -> unit
  (** Low-level hook: append one complete event.  Timestamps are monotonic
      microseconds, as given by [Rpb_prim.Timing.now_us] — the wall-clock
      epoch is applied once, at Chrome-trace serialization.  Dropped when
      disabled. *)

  val stop_to_file : string -> int
  (** Stop recording, write all buffered events as Chrome-trace JSON to the
      given path, clear the buffers, and return the number of events.
      Timestamps are mapped onto the Unix epoch here (and only here), via
      [Rpb_prim.Timing.epoch_of_monotonic_us]. *)
end

(** {1 Scheduler flight recorder}

    The raw-event layer behind the work/span profiler in [lib/obs] ([rpb
    profile]).  Off by default; it shares one process-global switch word with
    {!Trace}, so every instrumented scheduler site — including
    {!Trace.span} — costs a single atomic load when both layers are off.

    When armed ({!Recorder.start}), each domain appends task-lifecycle events
    into its own lock-free ring buffer: single writer, drop-oldest on
    overflow, with the number of dropped events reported by
    {!Recorder.stop}.  The events carry series-parallel provenance — every
    {!join} (and through it every [parallel_for] split) allocates a fresh
    construct id and records which (construct, branch) strand forked it —
    plus [Work] strand segments, steal and idle episodes, {!Trace.span}
    phases, and periodic per-domain [Gc.quick_stat] samples.  That is enough
    to reconstruct the fork-join DAG offline and compute work, span, and
    burdened parallelism; see [Rpb_obs.Sp_dag]. *)

module Recorder : sig
  type event =
    | Fork of {
        id : int;  (** fresh construct id of this [join] *)
        parent : int;  (** construct id of the forking strand *)
        parent_branch : int;  (** branch of [parent] the forking strand is on *)
        w : int;
        ts_ns : int;
      }
    | Join of { id : int; w : int; ts_ns : int }
    | Work of {
        construct : int;
        branch : int;  (** 0 = inline branch, 1 = spawned branch *)
        w : int;
        begin_ns : int;
        end_ns : int;
      }  (** A strand segment: [w] computed for [construct]/[branch] over
            [\[begin_ns, end_ns)].  Waiting and helping in [await] is never
            covered by a [Work] segment. *)
    | Exec of { construct : int; w : int; begin_ns : int }
        (** The spawned branch of [construct] began executing; paired with
            the matching [Fork] it measures the fork→exec queue delay that
            burdens the span. *)
    | Steal of { thief : int; victim : int; ts_ns : int }
    | Idle of { w : int; begin_ns : int; end_ns : int }
    | Phase of { name : string; w : int; begin_ns : int; end_ns : int }
        (** A {!Trace.span} observed while recording. *)
    | Gc_sample of {
        w : int;
        ts_ns : int;
        minor_collections : int;
        major_collections : int;
        promoted_words : float;
        minor_words : float;
      }  (** Periodic per-domain [Gc.quick_stat] snapshot (cumulative values;
            consumers take deltas). *)

  val ts_of : event -> int
  (** The event's (begin) timestamp, for sorting. *)

  type recording = { events : event list; dropped : int; policy : string }
  (** All surviving events, sorted by timestamp, plus how many were lost to
      ring overflow ([dropped = 0] means the rings were large enough) and
      the scheduling-policy name passed to {!start}, so downstream analyzers
      ([Rpb_obs.Sp_dag]) attribute the session to a policy. *)

  val enabled : unit -> bool

  val start : ?ring_capacity:int -> ?policy_name:string -> unit -> unit
  (** Arm the recorder with fresh per-domain rings of [ring_capacity] events
      each (rounded up to a power of two; default 32Ki).  [policy_name]
      (default ["default"]) is stamped into the resulting {!recording}.
      Any events from a previous session are discarded. *)

  val stop : unit -> recording
  (** Disarm and collect every domain's ring into one sorted event list. *)

  val with_root : (unit -> 'a) -> 'a
  (** [with_root f] brackets [f] as the root strand (construct 0, branch 0)
      of the recorded DAG, with GC samples at both ends, so top-level compute
      between forks is charged as work.  No-op when disabled.  Call it on the
      domain that calls {!run}, around the workload being profiled. *)
end

(** {1 Scheduler fault injection}

    A process-global switch in the {!Trace} mold: while disabled (the
    default) every injection site costs one atomic load.  When enabled, each
    domain derives a private RNG stream from the configured seed and flips a
    coin at every scheduler decision point — task start (inject an
    exception), successful steal (inject a delay), task execution (stall the
    worker), [Domain.spawn] (fail the spawn).  Equal seeds give equal
    per-domain streams, so a failing schedule is replayable.

    This is the probe behind [Oracle.fault_sweep] ([rpb faults]): under
    injected faults every benchmark must either produce its canonical digest
    or raise a clean structured error within a deadline — never hang, never
    return a torn result. *)

module Fault : sig
  type config = {
    seed : int;  (** derives every per-domain injection stream *)
    task_exn : float;  (** P(raise {!Injected} instead of starting a task) *)
    steal_delay : float;  (** P(sleep [delay_us] after a successful steal) *)
    worker_stall : float;  (** P(sleep [delay_us] before executing a task) *)
    spawn_fail : float;  (** P(a [Domain.spawn] attempt fails) *)
    delay_us : int;  (** magnitude of injected delays and stalls *)
  }

  val off : config
  (** All probabilities zero; [delay_us = 50]. *)

  exception Injected of string
  (** The exception thrown at armed task/spawn sites.  Code under test must
      treat it like any other task failure. *)

  type counts = {
    task_exns : int;
    steal_delays : int;
    worker_stalls : int;
    spawn_fails : int;
  }

  val armed : unit -> bool
  val enable : config -> unit
  (** Zeroes the counters, re-seeds every domain's stream, arms the sites. *)

  val disable : unit -> unit

  val counts : unit -> counts
  (** Injections fired since the last {!enable}. *)

  val total : counts -> int
end

val stats : t -> string
[@@ocaml.deprecated "Use Pool.Stats.capture / Pool.Stats.summary instead."]
(** Legacy one-line counter string; thin wrapper over {!Stats.capture}. *)
