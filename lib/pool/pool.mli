(** Work-stealing fork-join pool over OCaml domains.

    This is the reproduction's stand-in for Rayon (and for the OpenCilk
    runtime used by the paper's C++ baselines): a fixed set of worker domains,
    one Chase–Lev deque per worker, random-victim stealing, and blocking
    idle-wait so that an oversubscribed machine is not burned by spinning.

    The usage discipline mirrors Rayon's implicit global pool made explicit:

    {[
      let pool = Pool.create ~num_workers:4 () in
      Pool.run pool (fun () ->
        Pool.parallel_for ~start:0 ~finish:n ~body:(fun i -> ...) pool);
      Pool.shutdown pool
    ]}

    All parallel operations ({!async}, {!join}, {!parallel_for}, ...) must be
    called from inside {!run} (the calling domain becomes worker 0) or from a
    task already executing on the pool.  {!await} never blocks the worker: it
    helps by popping and stealing pending tasks, the standard fork-join
    "help-first" policy that makes nested parallelism deadlock-free. *)

type t

type 'a promise

exception Shutdown
(** Raised by operations on a pool after {!shutdown}. *)

val create : ?name:string -> num_workers:int -> unit -> t
(** [create ~num_workers ()] spawns [num_workers - 1] worker domains; the
    domain that later calls {!run} acts as the remaining worker.
    [num_workers] must be at least 1.  With [num_workers = 1] every operation
    degrades to sequential execution on the caller. *)

val size : t -> int
(** Number of workers (including the caller-during-[run]). *)

val run : t -> (unit -> 'a) -> 'a
(** [run pool f] executes [f] with the calling domain installed as worker 0.
    Nested [run] on the same pool from inside a task is not allowed.
    Exceptions raised by [f] propagate. *)

val shutdown : t -> unit
(** Terminates the worker domains and joins them.  Idempotent. *)

val async : t -> (unit -> 'a) -> 'a promise
(** Schedule a task.  Must be called from within {!run} or from a pool task. *)

val await : t -> 'a promise -> 'a
(** Wait for a promise, executing other pool tasks while waiting.  Re-raises
    the task's exception if it failed. *)

val try_result : 'a promise -> ('a, exn) result option
(** Non-blocking peek: [None] while the task is still pending. *)

val join : t -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** [join pool f g] runs [f] and [g] potentially in parallel and returns both
    results — the Rayon [join] of the paper's Listing 9. *)

val parallel_for : ?grain:int -> start:int -> finish:int -> body:(int -> unit) -> t -> unit
(** [parallel_for ~start ~finish ~body pool] applies [body] to every index in
    the half-open range [\[start, finish)], splitting recursively until ranges
    are at most [grain] long.  The default grain targets ~8 leaves per
    worker.  The pool comes last (domainslib convention) so that the optional
    [?grain] can be erased. *)

val parallel_for_reduce :
  ?grain:int -> start:int -> finish:int ->
  body:(int -> 'a) -> combine:('a -> 'a -> 'a) -> init:'a -> t -> 'a
(** Tree-shaped map-reduce over an index range.  [combine] must be
    associative; [init] must be its identity on the left of any leaf result. *)

val parallel_chunks :
  ?grain:int -> start:int -> finish:int -> body:(int -> int -> unit) -> t -> unit
(** [parallel_chunks ~start ~finish ~body pool] partitions the range into
    contiguous chunks and calls [body lo hi] once per chunk ([hi] exclusive).
    Used to express Block-style operators where the per-chunk loop matters. *)

val current_worker : t -> int option
(** The calling domain's worker index, if it is executing on this pool.
    Useful for per-worker scratch state. *)

val stats : t -> string
(** Human-readable counters (tasks executed, steals) for diagnostics. *)
