type 'a buffer = 'a option Atomic.t array

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buf : 'a buffer Atomic.t;
}

let make_buffer n : 'a buffer = Array.init n (fun _ -> Atomic.make None)

let create ?(capacity = 64) () =
  assert (capacity > 0 && capacity land (capacity - 1) = 0);
  { top = Atomic.make 0; bottom = Atomic.make 0; buf = Atomic.make (make_buffer capacity) }

let mask buf = Array.length buf - 1

let buf_get buf i = Atomic.get buf.(i land mask buf)
let buf_set buf i v = Atomic.set buf.(i land mask buf) v

(* Owner only.  Doubles the buffer, copying the live window [t, b). *)
let grow q t b =
  let old = Atomic.get q.buf in
  let nbuf = make_buffer (2 * Array.length old) in
  for i = t to b - 1 do
    buf_set nbuf i (buf_get old i)
  done;
  Atomic.set q.buf nbuf

let push q x =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  let buf = Atomic.get q.buf in
  if b - t >= Array.length buf then grow q t b;
  let buf = Atomic.get q.buf in
  buf_set buf b (Some x);
  Atomic.set q.bottom (b + 1)

let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if t > b then begin
    (* Empty: restore bottom. *)
    Atomic.set q.bottom t;
    None
  end
  else begin
    let buf = Atomic.get q.buf in
    let x = buf_get buf b in
    if t < b then begin
      (* More than one element: no race with thieves on this slot. *)
      buf_set buf b None;
      x
    end
    else begin
      (* Last element: race a potential thief for it via [top]. *)
      let won = Atomic.compare_and_set q.top t (t + 1) in
      Atomic.set q.bottom (t + 1);
      if won then begin
        buf_set buf b None;
        x
      end
      else None
    end
  end

let steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then None
  else begin
    let buf = Atomic.get q.buf in
    (* Read the element before the CAS: the owner cannot recycle slot [t]
       until [top] has moved past it, so a successful CAS validates [x]. *)
    let x = buf_get buf t in
    if Atomic.compare_and_set q.top t (t + 1) then x else None
  end

(* Batch steal.  A single CAS claiming [k > 1] top elements would be unsound
   in this variant: the owner's [pop] removes bottom elements *without* a CAS
   whenever [t < b], so a thief sitting between "read elements [t, t+k)" and
   "CAS top from t to t+k" could hand out tasks the owner has already popped
   and run.  Instead the batch is a bounded loop of the safe single-CAS
   [steal] — it amortizes the victim-selection sweep, not the CAS — claiming
   up to half of the size observed on entry.  Elements come back in steal
   (top-first, FIFO) order; the list is empty iff the deque was empty or
   every claim lost its race. *)
let steal_half q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  let n = b - t in
  if n <= 0 then []
  else begin
    let want = max 1 ((n + 1) / 2) in
    let rec go k acc =
      if k >= want then List.rev acc
      else
        match steal q with
        | Some x -> go (k + 1) (x :: acc)
        | None -> List.rev acc
    in
    go 0 []
  end

let size q =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  if b > t then b - t else 0

let is_empty q = size q = 0
