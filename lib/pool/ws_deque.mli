(** Chase–Lev work-stealing deque.

    One domain owns the deque and uses {!push} and {!pop} on the bottom end;
    any number of thief domains use {!steal} on the top end.  This is the
    scheduling substrate underneath the fork-join pool, mirroring the deques
    inside Rayon and Cilk that the paper's benchmarks rely on.

    The implementation follows Chase and Lev (SPAA '05) with the usual
    single-CAS [steal] and the owner/thief race on the last element resolved
    by a CAS in [pop].  Cells live in an atomic-reference buffer that is
    replaced wholesale on growth, so thieves never observe a torn resize. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ()] returns an empty deque.  [capacity] (default 64) is the
    initial power-of-two buffer size; the deque grows as needed. *)

val push : 'a t -> 'a -> unit
(** Owner only.  Pushes onto the bottom. *)

val pop : 'a t -> 'a option
(** Owner only.  Pops from the bottom (LIFO for the owner, preserving the
    depth-first execution order fork-join relies on). *)

val steal : 'a t -> 'a option
(** Any domain.  Steals from the top (FIFO for thieves).  Returns [None] when
    the deque is empty or the steal lost a race. *)

val steal_half : 'a t -> 'a list
(** Any domain.  Claims up to half of the elements observed at the top (at
    least one when non-empty) and returns them in steal (top-first, FIFO)
    order; [[]] when the deque was empty or every claim lost its race.

    Implementation note: this is a bounded loop of single-CAS {!steal}s, not
    one CAS over [k] elements.  A multi-element CAS claim would be unsound
    here because the owner's {!pop} removes bottom elements without a CAS
    while more than one element remains — a thief between reading the
    elements and publishing the claim could return tasks the owner already
    executed.  The batch therefore amortizes the victim-selection sweep
    (one [steal_half] replaces up to [k] full sweeps), not the per-element
    synchronization. *)

val size : 'a t -> int
(** Approximate number of elements; exact only when quiescent. *)

val is_empty : 'a t -> bool
