type t = int Atomic.t array

let make n v = Array.init n (fun _ -> Atomic.make v)
let init n f = Array.init n (fun i -> Atomic.make (f i))
let length = Array.length
let get a i = Atomic.get a.(i)
let set a i v = Atomic.set a.(i) v
let unsafe_get a i = Atomic.get (Array.unsafe_get a i)
let unsafe_set a i v = Atomic.set (Array.unsafe_get a i) v
let compare_and_set a i expected v = Atomic.compare_and_set a.(i) expected v
let fetch_and_add a i d = Atomic.fetch_and_add a.(i) d

let rec fetch_min a i v =
  let cur = Atomic.get a.(i) in
  if v >= cur then cur
  else if Atomic.compare_and_set a.(i) cur v then cur
  else fetch_min a i v

let rec fetch_max a i v =
  let cur = Atomic.get a.(i) in
  if v <= cur then cur
  else if Atomic.compare_and_set a.(i) cur v then cur
  else fetch_max a i v

let to_array a = Array.map Atomic.get a
let of_array a = Array.map Atomic.make a

let blit_from_array src dst =
  assert (Array.length src = Array.length dst);
  Array.iteri (fun i v -> Atomic.set dst.(i) v) src
