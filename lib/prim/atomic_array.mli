(** Arrays of atomically-accessed integers.

    OCaml 5.1 provides only boxed [Atomic.t] cells, so an atomic integer array
    is represented as an array of such cells.  This is the substrate for the
    paper's "placate the type system with atomics" variants (Listing 6e) and
    for lock-free algorithm state (union-find, reservations, distances). *)

type t

val make : int -> int -> t
(** [make n v] allocates an array of [n] cells, all initialized to [v]. *)

val init : int -> (int -> int) -> t

val length : t -> int

val get : t -> int -> int
(** Atomic (acquire) load. *)

val set : t -> int -> int -> unit
(** Atomic (release) store — the analogue of Rust's [store(_, Relaxed)]. *)

val unsafe_get : t -> int -> int
(** Plain load without bounds check; callers must guarantee the index. *)

val unsafe_set : t -> int -> int -> unit

val compare_and_set : t -> int -> int -> int -> bool
(** [compare_and_set a i expected v] atomically replaces [a.(i)] with [v] if
    it currently equals [expected]; returns whether the swap happened. *)

val fetch_and_add : t -> int -> int -> int
(** [fetch_and_add a i d] atomically adds [d] and returns the previous
    value. *)

val fetch_min : t -> int -> int -> int
(** [fetch_min a i v] atomically lowers [a.(i)] to [min a.(i) v] and returns
    the value observed just before the successful update (or the current value
    if no update was needed).  This is the priority-update primitive used by
    SSSP and MSF. *)

val fetch_max : t -> int -> int -> int

val to_array : t -> int array
(** Snapshot copy.  Each cell is read atomically; the snapshot as a whole is
    not linearizable with respect to concurrent writers. *)

val of_array : int array -> t

val blit_from_array : int array -> t -> unit
