type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let next t = Int64.to_int (next_int64 t) land max_int

let split t =
  let s = next_int64 t in
  { state = mix64 s }

let int t bound =
  assert (bound > 0);
  next t mod bound

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (x /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let exponential_int t ~mean =
  assert (mean > 0);
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  let x = -.float_of_int mean *. log u in
  int_of_float x

(* The hash from PBBS, reproduced from the paper's Listing 10.  Constants
   exceed OCaml's 63-bit native ints, so the wrapping arithmetic runs on
   Int64 and the result is truncated to a non-negative native int. *)
let hash64 i =
  let open Int64 in
  let ( *% ) = mul and ( +% ) = add in
  let v = of_int i *% 3935559000370003845L +% 2691343689449507681L in
  let v = logxor v (shift_right_logical v 21) in
  let v = logxor v (shift_left v 37) in
  let v = logxor v (shift_right_logical v 4) in
  let v = v *% 4768777513237032717L in
  let v = logxor v (shift_left v 20) in
  let v = logxor v (shift_right_logical v 41) in
  let v = logxor v (shift_left v 5) in
  to_int v land Stdlib.max_int

let permutation t n =
  let a = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a
