(** Deterministic pseudo-random number generation.

    All RPB inputs are generated deterministically from explicit seeds so that
    every benchmark run and every test is reproducible.  Two generators are
    provided: a stateful SplitMix64 stream and the stateless PBBS hash used by
    the paper (Appendix A, Listing 10). *)

type t
(** A stateful SplitMix64 generator.  Not thread-safe: use one per domain, or
    derive independent streams with {!split}. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val next : t -> int
(** [next t] returns a uniform 63-bit non-negative integer. *)

val int : t -> int -> int
(** [int t bound] returns a uniform integer in [\[0, bound)].  [bound] must be
    positive. *)

val float : t -> float -> float
(** [float t bound] returns a uniform float in [\[0, bound)]. *)

val bool : t -> bool
(** [bool t] returns a uniform boolean. *)

val exponential_int : t -> mean:int -> int
(** [exponential_int t ~mean] samples a geometric/exponential-shaped
    non-negative integer with the given mean, matching PBBS's "exponential"
    integer inputs where small values are abundant and duplicates common. *)

val hash64 : int -> int
(** The PBBS hash function of Listing 10 (Appendix A), mapping an index to a
    pseudo-random 63-bit non-negative integer.  Stateless: usable concurrently
    from any number of domains. *)

val permutation : t -> int -> int array
(** [permutation t n] returns a uniform random permutation of [0..n-1]
    (Fisher–Yates). *)
