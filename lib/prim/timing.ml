(* All timestamps in this repo come from one clock: CLOCK_MONOTONIC, via the
   allocation-free C stub below.  [Unix.gettimeofday] is only consulted once,
   to fix the epoch offset that maps monotonic timestamps back onto wall-clock
   time for human-facing output (the Chrome-trace writer). *)

external monotonic_ns : unit -> int = "rpb_clock_monotonic_ns" [@@noalloc]

let now () = float_of_int (monotonic_ns ()) *. 1e-9

let now_us () = float_of_int (monotonic_ns ()) *. 1e-3

(* The one place the monotonic clock is pinned to the wall clock.  Computed
   once at module initialisation; every consumer (Chrome-trace serialization)
   goes through [epoch_of_monotonic_us] so the offset lives in exactly one
   place. *)
let epoch_offset_s =
  let wall = Unix.gettimeofday () in
  let mono = float_of_int (monotonic_ns ()) *. 1e-9 in
  wall -. mono

let epoch_of_monotonic_us us = us +. (epoch_offset_s *. 1e6)

let time f =
  let t0 = now () in
  let x = f () in
  let t1 = now () in
  (x, t1 -. t0)

let best_of ~repeats f =
  assert (repeats > 0);
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to repeats do
    let x, dt = time f in
    if dt < !best then best := dt;
    result := Some x
  done;
  match !result with
  | Some x -> (x, !best)
  | None -> assert false

let samples ~repeats f =
  assert (repeats > 0);
  let times = Array.make repeats 0.0 in
  let result = ref None in
  for i = 0 to repeats - 1 do
    let x, dt = time f in
    times.(i) <- dt;
    result := Some x
  done;
  match !result with
  | Some x -> (x, times)
  | None -> assert false

let mean_of ~repeats f =
  assert (repeats > 0);
  let total = ref 0.0 in
  let result = ref None in
  for _ = 1 to repeats do
    let x, dt = time f in
    total := !total +. dt;
    result := Some x
  done;
  match !result with
  | Some x -> (x, !total /. float_of_int repeats)
  | None -> assert false
