let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let x = f () in
  let t1 = now () in
  (x, t1 -. t0)

let best_of ~repeats f =
  assert (repeats > 0);
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to repeats do
    let x, dt = time f in
    if dt < !best then best := dt;
    result := Some x
  done;
  match !result with
  | Some x -> (x, !best)
  | None -> assert false

let samples ~repeats f =
  assert (repeats > 0);
  let times = Array.make repeats 0.0 in
  let result = ref None in
  for i = 0 to repeats - 1 do
    let x, dt = time f in
    times.(i) <- dt;
    result := Some x
  done;
  match !result with
  | Some x -> (x, times)
  | None -> assert false

let mean_of ~repeats f =
  assert (repeats > 0);
  let total = ref 0.0 in
  let result = ref None in
  for _ = 1 to repeats do
    let x, dt = time f in
    total := !total +. dt;
    result := Some x
  done;
  match !result with
  | Some x -> (x, !total /. float_of_int repeats)
  | None -> assert false
