(** Wall-clock timing helpers for the benchmark harness.

    Every timestamp comes from [CLOCK_MONOTONIC] (an allocation-free C stub),
    so durations can never go negative across NTP slews; the wall-clock epoch
    enters in exactly one place, {!epoch_of_monotonic_us}. *)

val monotonic_ns : unit -> int
(** Nanoseconds on the monotonic clock (arbitrary epoch, typically boot).
    Allocation-free — safe to call on scheduler hot paths and inside the
    flight recorder. *)

val now : unit -> float
(** Monotonic time in seconds. *)

val now_us : unit -> float
(** Monotonic time in microseconds (the Chrome-trace unit). *)

val epoch_of_monotonic_us : float -> float
(** Map a monotonic microsecond timestamp onto the Unix epoch, using the
    wall-vs-monotonic offset sampled once at program start.  This is the only
    place the two clocks meet; use it when serializing human-facing
    timestamps (the Chrome-trace writer does). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed seconds. *)

val best_of : repeats:int -> (unit -> 'a) -> 'a * float
(** [best_of ~repeats f] runs [f] [repeats] times and returns the last result
    together with the minimum elapsed time, the usual noise-robust estimator
    for microbenchmarks. *)

val mean_of : repeats:int -> (unit -> 'a) -> 'a * float
(** Like {!best_of} but reports the arithmetic-mean time, matching the paper's
    "report mean execution times" methodology (Sec. 7.1). *)

val samples : repeats:int -> (unit -> 'a) -> 'a * float array
(** [samples ~repeats f] runs [f] [repeats] times and returns the last result
    together with every elapsed time in run order, so callers (the bench JSON
    emitter) can report both the mean and the min of the same runs. *)
