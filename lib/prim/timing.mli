(** Wall-clock timing helpers for the benchmark harness. *)

val now : unit -> float
(** Monotonic wall-clock time in seconds. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed seconds. *)

val best_of : repeats:int -> (unit -> 'a) -> 'a * float
(** [best_of ~repeats f] runs [f] [repeats] times and returns the last result
    together with the minimum elapsed time, the usual noise-robust estimator
    for microbenchmarks. *)

val mean_of : repeats:int -> (unit -> 'a) -> 'a * float
(** Like {!best_of} but reports the arithmetic-mean time, matching the paper's
    "report mean execution times" methodology (Sec. 7.1). *)

val samples : repeats:int -> (unit -> 'a) -> 'a * float array
(** [samples ~repeats f] runs [f] [repeats] times and returns the last result
    together with every elapsed time in run order, so callers (the bench JSON
    emitter) can report both the mean and the min of the same runs. *)
