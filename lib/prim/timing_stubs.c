/* Monotonic clock for the timing/tracing layer.

   CLOCK_MONOTONIC never jumps backwards across NTP slews, which is what the
   benchmark timers and the scheduler flight recorder need.  The value is
   returned as a tagged OCaml int (nanoseconds since an arbitrary epoch,
   typically boot): 62 bits of nanoseconds is ~146 years, so the tag bit is
   never a concern, and the call is allocation-free ([@@noalloc] on the
   OCaml side). */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value rpb_clock_monotonic_ns(value unit)
{
  (void)unit;
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
