let ceil_div a b =
  assert (b > 0);
  (a + b - 1) / b

let ceil_pow2 n =
  assert (n >= 1);
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let ilog2 n =
  assert (n > 0);
  let rec go n acc = if n = 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let array_swap a i j =
  let t = a.(i) in
  a.(i) <- a.(j);
  a.(j) <- t

let array_for_all_i p a =
  let n = Array.length a in
  let rec go i = i >= n || (p i a.(i) && go (i + 1)) in
  go 0

let is_sorted ?(cmp = compare) a =
  let n = Array.length a in
  let rec go i = i >= n || (cmp a.(i - 1) a.(i) <= 0 && go (i + 1)) in
  n <= 1 || go 1

let is_strictly_increasing a =
  let n = Array.length a in
  let rec go i = i >= n || (a.(i - 1) < a.(i) && go (i + 1)) in
  n <= 1 || go 1

let array_sum a = Array.fold_left ( + ) 0 a
let minf (a : float) b = if a < b then a else b
let maxf (a : float) b = if a > b then a else b
