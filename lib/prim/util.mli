(** Small shared helpers. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [a / b] rounded up.  [b] must be positive. *)

val ceil_pow2 : int -> int
(** Smallest power of two [>= n] (for [n >= 1]). *)

val ilog2 : int -> int
(** Floor of log2 for positive integers. *)

val array_swap : 'a array -> int -> int -> unit

val array_for_all_i : (int -> 'a -> bool) -> 'a array -> bool

val is_sorted : ?cmp:('a -> 'a -> int) -> 'a array -> bool
(** Whether the array is non-decreasing under [cmp] (default polymorphic
    compare). *)

val is_strictly_increasing : int array -> bool

val array_sum : int array -> int

val minf : float -> float -> float
val maxf : float -> float -> float
