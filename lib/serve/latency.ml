type t = { mutable samples : float array; mutable len : int }

let create () = { samples = Array.make 64 0.; len = 0 }

let add t x =
  if t.len = Array.length t.samples then begin
    let bigger = Array.make (2 * t.len) 0. in
    Array.blit t.samples 0 bigger 0 t.len;
    t.samples <- bigger
  end;
  t.samples.(t.len) <- x;
  t.len <- t.len + 1

let count t = t.len

let merge a b =
  let t = { samples = Array.make (max 64 (a.len + b.len)) 0.; len = 0 } in
  Array.blit a.samples 0 t.samples 0 a.len;
  Array.blit b.samples 0 t.samples a.len b.len;
  t.len <- a.len + b.len;
  t

type summary = {
  count : int;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

let summarize t =
  if t.len = 0 then
    { count = 0; mean_ms = 0.; p50_ms = 0.; p95_ms = 0.; p99_ms = 0.; max_ms = 0. }
  else begin
    let sorted = Array.sub t.samples 0 t.len in
    Array.sort compare sorted;
    (* Nearest rank, delegated to the shared definition in Obs.Stats. *)
    let pct q = Rpb_obs.Stats.percentile_sorted sorted q in
    let sum = Array.fold_left ( +. ) 0. sorted in
    {
      count = t.len;
      mean_ms = sum /. float_of_int t.len;
      p50_ms = pct 50.;
      p95_ms = pct 95.;
      p99_ms = pct 99.;
      max_ms = sorted.(t.len - 1);
    }
  end

open Rpb_benchmarks

let summary_to_json s =
  Bench_json.Obj
    [
      ("count", Bench_json.Int s.count);
      ("mean_ms", Bench_json.Float s.mean_ms);
      ("p50_ms", Bench_json.Float s.p50_ms);
      ("p95_ms", Bench_json.Float s.p95_ms);
      ("p99_ms", Bench_json.Float s.p99_ms);
      ("max_ms", Bench_json.Float s.max_ms);
    ]

let summary_of_json j =
  let open Bench_json in
  {
    count = get_int (member "count" j);
    mean_ms = get_float (member "mean_ms" j);
    p50_ms = get_float (member "p50_ms" j);
    p95_ms = get_float (member "p95_ms" j);
    p99_ms = get_float (member "p99_ms" j);
    max_ms = get_float (member "max_ms" j);
  }
