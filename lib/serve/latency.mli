(** Latency aggregation for the serving path: collect per-request
    milliseconds, summarize as the percentiles the dashboard reports. *)

type t
(** Mutable sample collector.  Not thread-safe — callers aggregate per
    thread and {!merge}, or protect externally. *)

val create : unit -> t

val add : t -> float -> unit
(** Record one latency sample, in milliseconds. *)

val merge : t -> t -> t
(** New collector holding both sample sets. *)

val count : t -> int

type summary = {
  count : int;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}
(** All zeros when [count = 0]. *)

val summarize : t -> summary
(** Percentiles by the nearest-rank method on the sorted samples:
    [p q] is the smallest sample such that at least [q] percent of the
    samples are [<=] it. *)

val summary_to_json : summary -> Rpb_benchmarks.Bench_json.json
val summary_of_json : Rpb_benchmarks.Bench_json.json -> summary
