(* Load generator for the serve path.  One writer systhread per client
   paces sends from a seeded schedule; one reader systhread per connection
   matches replies to the pending table.  All client threads fold their
   counters into a shared accumulator at the end. *)

open Rpb_benchmarks
module Rng = Rpb_prim.Rng
module Timing = Rpb_prim.Timing

type config = {
  socket_path : string;
  clients : int;
  requests_per_client : int;
  seed : int;
  mean_gap_ms : int;
  benches : string list;
  mode : string;
  scale : int;
  policies : string list;
  deadline_ms : int option;
  spin_ms : int;
  burst : int;
  kill_every : int;
  max_retries : int;
  backoff_base_ms : int;
  backoff_cap_ms : int;
  wait_cap_s : float;
  json_path : string option;
  quiet : bool;
}

let default_config ~socket_path =
  {
    socket_path;
    clients = 4;
    requests_per_client = 16;
    seed = 42;
    mean_gap_ms = 10;
    benches = [ "hist" ];
    mode = "unsafe";
    scale = 0;
    policies = [ "default" ];
    deadline_ms = None;
    spin_ms = 20;
    burst = 0;
    kill_every = 0;
    max_retries = 5;
    backoff_base_ms = 5;
    backoff_cap_ms = 200;
    wait_cap_s = 15.0;
    json_path = None;
    quiet = false;
  }

type result = {
  sent : int;
  ok : int;
  shed_replies : int;
  retries : int;
  give_ups : int;
  stalled : int;
  cancelled : int;
  failed : int;
  rejected : int;
  shutdown_replies : int;
  killed : int;
  lost : int;
  protocol_errors : int;
  digest_mismatches : int;
  reconnects : int;
  max_retry_hint_ms : int;
  latency : Latency.summary;
}

let accounted r =
  r.ok + r.stalled + r.cancelled + r.failed + r.rejected + r.shutdown_replies
  + r.give_ups + r.killed + r.lost

(* ------------------------------------------------------------------ *)
(* Per-client state *)

type pending_entry = {
  first_sent : float;
  req : Protocol.request;
  attempt : int;  (* sends so far for this request *)
}

type client = {
  id : int;
  cfg : config;
  mutex : Mutex.t;
  pending : (int, pending_entry) Hashtbl.t;
  mutable retry_q : (float * Protocol.request * int) list;  (* due, req, attempt *)
  lat : Latency.t;
  mutable c_ok : int;
  mutable c_shed : int;
  mutable c_retries : int;
  mutable c_give_ups : int;
  mutable c_stalled : int;
  mutable c_cancelled : int;
  mutable c_failed : int;
  mutable c_rejected : int;
  mutable c_shutdown : int;
  mutable c_killed : int;
  mutable c_lost : int;
  mutable c_proto : int;
  mutable c_mismatch : int;
  mutable c_reconnects : int;
  mutable c_sent : int;
  mutable c_max_retry_hint_ms : int;
      (* largest retry_after_ms any shed carried — rises when the server's
         SLO engine scales the hint under a burning budget *)
  rng_r : Rng.t;  (* reader-side jitter stream *)
  digests : Mutex.t * (string * string * int, int) Hashtbl.t;  (* shared *)
}

let now = Timing.now

(* ------------------------------------------------------------------ *)
(* Reply handling (reader threads) *)

let backoff_ms cfg rng attempt =
  let base = cfg.backoff_base_ms * (1 lsl min attempt 10) in
  let capped = min cfg.backoff_cap_ms base in
  let jitter = 0.5 +. Rng.float rng 1.0 in
  max 1 (int_of_float (float_of_int capped *. jitter))

let check_digest cl (req : Protocol.request) digest =
  let dmutex, table = cl.digests in
  let key =
    (req.bench, Option.value req.input ~default:"", req.scale)
  in
  Mutex.lock dmutex;
  (match Hashtbl.find_opt table key with
  | None -> Hashtbl.replace table key digest
  | Some d -> if d <> digest then cl.c_mismatch <- cl.c_mismatch + 1);
  Mutex.unlock dmutex

let handle_reply cl reply =
  Mutex.lock cl.mutex;
  let id = Protocol.reply_id reply in
  (match Hashtbl.find_opt cl.pending id with
  | None -> ()  (* reply for a request we gave up on / killed: ignore *)
  | Some entry -> (
    Hashtbl.remove cl.pending id;
    match reply with
    | Protocol.Ok_reply { digest; _ } ->
      cl.c_ok <- cl.c_ok + 1;
      Latency.add cl.lat ((now () -. entry.first_sent) *. 1e3);
      check_digest cl entry.req digest
    | Protocol.Err_reply { kind = Protocol.Overloaded; retry_after_ms; _ } ->
      cl.c_shed <- cl.c_shed + 1;
      (match retry_after_ms with
       | Some ms when ms > cl.c_max_retry_hint_ms ->
         cl.c_max_retry_hint_ms <- ms
       | _ -> ());
      if entry.attempt > cl.cfg.max_retries then
        cl.c_give_ups <- cl.c_give_ups + 1
      else begin
        let wait_ms =
          match retry_after_ms with
          | Some ms when ms > 0 -> min ms cl.cfg.backoff_cap_ms
          | _ -> backoff_ms cl.cfg cl.rng_r (entry.attempt - 1)
        in
        let due = now () +. (float_of_int wait_ms *. 1e-3) in
        cl.retry_q <- (due, entry.req, entry.attempt) :: cl.retry_q
      end
    | Protocol.Err_reply { kind = Protocol.Stalled; _ } ->
      cl.c_stalled <- cl.c_stalled + 1
    | Protocol.Err_reply { kind = Protocol.Cancelled; _ } ->
      cl.c_cancelled <- cl.c_cancelled + 1
    | Protocol.Err_reply { kind = Protocol.Failed; _ } ->
      cl.c_failed <- cl.c_failed + 1
    | Protocol.Err_reply { kind = Protocol.Shutting_down; _ } ->
      cl.c_shutdown <- cl.c_shutdown + 1
    | Protocol.Err_reply { kind = Protocol.Malformed_request; _ }
    | Protocol.Err_reply { kind = Protocol.Unknown_bench; _ }
    | Protocol.Err_reply { kind = Protocol.Unknown_policy; _ } ->
      cl.c_rejected <- cl.c_rejected + 1));
  Mutex.unlock cl.mutex

let reader_loop cl fd =
  let r = Protocol.reader fd in
  try
    let rec go () =
      match Protocol.read_frame r with
      | None -> ()
      | Some line ->
        (match Protocol.parse_reply line with
        | Ok reply -> handle_reply cl reply
        | Error _ ->
          Mutex.lock cl.mutex;
          cl.c_proto <- cl.c_proto + 1;
          Mutex.unlock cl.mutex);
        go ()
    in
    go ()
  with Protocol.Malformed _ | Unix.Unix_error _ | Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Writer (client main thread) *)

let connect_with_retry path =
  let deadline = now () +. 5.0 in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Some fd
    | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if now () > deadline then None
      else begin
        Unix.sleepf 0.02;
        go ()
      end
  in
  go ()

let cycle lst i = List.nth lst (i mod List.length lst)

exception Disconnected

let client_loop cl =
  let cfg = cl.cfg in
  let rng = Rng.create (Rng.hash64 ((cfg.seed * 8191) + cl.id)) in
  let readers = ref [] in
  let fd = ref None in
  let connect () =
    match connect_with_retry cfg.socket_path with
    | None -> raise Disconnected
    | Some f ->
      fd := Some f;
      let th = Thread.create (fun () -> reader_loop cl f) () in
      readers := th :: !readers
  in
  let kill_conn () =
    match !fd with
    | None -> ()
    | Some f ->
      (try Unix.shutdown f Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      (try Unix.close f with Unix.Unix_error _ -> ());
      fd := None;
      Mutex.lock cl.mutex;
      let n = Hashtbl.length cl.pending in
      cl.c_killed <- cl.c_killed + n;
      Hashtbl.reset cl.pending;
      cl.c_reconnects <- cl.c_reconnects + 1;
      Mutex.unlock cl.mutex
  in
  let send_frame req ~first ~attempt =
    let f = match !fd with Some f -> f | None -> raise Disconnected in
    Mutex.lock cl.mutex;
    let first_sent =
      if first then now ()
      else
        match Hashtbl.find_opt cl.pending req.Protocol.id with
        | Some e -> e.first_sent
        | None -> now ()
    in
    Hashtbl.replace cl.pending req.Protocol.id { first_sent; req; attempt };
    if first then cl.c_sent <- cl.c_sent + 1
    else cl.c_retries <- cl.c_retries + 1;
    Mutex.unlock cl.mutex;
    try Protocol.write_frame f (Protocol.request_line req)
    with Unix.Unix_error _ | Sys_error _ ->
      (* Server went away mid-write: the pending entry will be counted lost
         unless the reader already got a reply. *)
      ()
  in
  connect ();
  let burst = if cl.id = 0 then cfg.burst else 0 in
  let total = cfg.requests_per_client + burst in
  let mk_request seq =
    let bench = if seq < burst then "spin" else cycle cfg.benches seq in
    let policy = cycle cfg.policies seq in
    Protocol.request
      ?deadline_s:
        (Option.map (fun ms -> float_of_int ms *. 1e-3) cfg.deadline_ms)
      ~mode:cfg.mode ~scale:cfg.scale ~policy
      ~spin_ms:(if bench = "spin" then cfg.spin_ms else 0)
      ~id:((cl.id * 1_000_000) + seq)
      ~bench ()
  in
  let seq = ref 0 in
  let next_arrival = ref (now ()) in
  let last_send = ref (now ()) in
  let finished = ref false in
  while not !finished do
    let nowt = now () in
    (* Due retry first: it has already waited its backoff. *)
    let due_retry =
      Mutex.lock cl.mutex;
      let due, rest =
        List.partition (fun (d, _, _) -> d <= nowt) cl.retry_q
      in
      match due with
      | [] ->
        Mutex.unlock cl.mutex;
        None
      | (_, req, attempt) :: more ->
        cl.retry_q <- more @ rest;
        Mutex.unlock cl.mutex;
        Some (req, attempt)
    in
    match due_retry with
    | Some (req, attempt) ->
      if !fd = None then connect ();
      send_frame req ~first:false ~attempt:(attempt + 1);
      last_send := now ()
    | None ->
      if !seq < total && nowt >= !next_arrival then begin
        if !fd = None then connect ();
        let req = mk_request !seq in
        send_frame req ~first:true ~attempt:1;
        last_send := now ();
        let in_burst = !seq < burst in
        seq := !seq + 1;
        next_arrival :=
          (if in_burst then nowt
           else
             nowt
             +. (float_of_int (Rng.exponential_int rng ~mean:cfg.mean_gap_ms)
                 *. 1e-3));
        if
          cfg.kill_every > 0
          && !seq mod cfg.kill_every = 0
          && !seq < total  (* never kill after the last send: those replies
                              must drain normally *)
        then kill_conn ()
      end
      else begin
        let next_retry_due =
          Mutex.lock cl.mutex;
          let d =
            List.fold_left
              (fun acc (d, _, _) -> min acc d)
              infinity cl.retry_q
          in
          Mutex.unlock cl.mutex;
          d
        in
        let next_evt =
          min next_retry_due
            (if !seq < total then !next_arrival else infinity)
        in
        if next_evt < infinity then
          Unix.sleepf (min 0.05 (max 0.001 (next_evt -. nowt)))
        else begin
          (* Drain: everything sent, waiting for stragglers. *)
          Mutex.lock cl.mutex;
          let outstanding = Hashtbl.length cl.pending in
          Mutex.unlock cl.mutex;
          if outstanding = 0 then finished := true
          else if nowt -. !last_send > cfg.wait_cap_s then begin
            Mutex.lock cl.mutex;
            cl.c_lost <- cl.c_lost + Hashtbl.length cl.pending;
            Hashtbl.reset cl.pending;
            Mutex.unlock cl.mutex;
            finished := true
          end
          else Unix.sleepf 0.005
        end
      end
  done;
  (match !fd with
  | Some f ->
    (try Unix.shutdown f Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close f with Unix.Unix_error _ -> ())
  | None -> ());
  List.iter Thread.join !readers

(* ------------------------------------------------------------------ *)
(* Aggregation and entry point *)

let result_to_json cfg r =
  let open Bench_json in
  Obj
    [
      ("schema_version", Int schema_version);
      ("kind", Str "serve");
      ("role", Str "loadgen");
      ( "meta",
        Obj
          [
            ("socket", Str cfg.socket_path);
            ("clients", Int cfg.clients);
            ("requests_per_client", Int cfg.requests_per_client);
            ("seed", Int cfg.seed);
            ("mean_gap_ms", Int cfg.mean_gap_ms);
            ("benches", List (List.map (fun b -> Str b) cfg.benches));
            ("mode", Str cfg.mode);
            ("scale", Int cfg.scale);
            ("policies", List (List.map (fun p -> Str p) cfg.policies));
            ( "deadline_ms",
              match cfg.deadline_ms with Some d -> Int d | None -> Null );
            ("spin_ms", Int cfg.spin_ms);
            ("burst", Int cfg.burst);
            ("kill_every", Int cfg.kill_every);
            ("max_retries", Int cfg.max_retries);
          ] );
      ( "counters",
        Obj
          [
            ("sent", Int r.sent);
            ("ok", Int r.ok);
            ("shed_replies", Int r.shed_replies);
            ("retries", Int r.retries);
            ("give_ups", Int r.give_ups);
            ("stalled", Int r.stalled);
            ("cancelled", Int r.cancelled);
            ("failed", Int r.failed);
            ("rejected", Int r.rejected);
            ("shutdown_replies", Int r.shutdown_replies);
            ("killed", Int r.killed);
            ("lost", Int r.lost);
            ("protocol_errors", Int r.protocol_errors);
            ("digest_mismatches", Int r.digest_mismatches);
            ("reconnects", Int r.reconnects);
            ("max_retry_hint_ms", Int r.max_retry_hint_ms);
            ("accounted", Int (accounted r));
          ] );
      ("latency", Latency.summary_to_json r.latency);
    ]

let summary_lines r =
  let l = r.latency in
  [
    Printf.sprintf
      "sent=%d ok=%d shed=%d retries=%d give_ups=%d stalled=%d cancelled=%d \
       failed=%d rejected=%d shutdown=%d killed=%d lost=%d proto_err=%d \
       digest_mismatch=%d reconnects=%d max_retry_hint_ms=%d"
      r.sent r.ok r.shed_replies r.retries r.give_ups r.stalled r.cancelled
      r.failed r.rejected r.shutdown_replies r.killed r.lost r.protocol_errors
      r.digest_mismatches r.reconnects r.max_retry_hint_ms;
    Printf.sprintf
      "latency (ok, ms): n=%d mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f"
      l.Latency.count l.Latency.mean_ms l.Latency.p50_ms l.Latency.p95_ms
      l.Latency.p99_ms l.Latency.max_ms;
  ]

let run cfg =
  (* Chaos kills make writes to dead sockets routine: EPIPE, not SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  if cfg.clients < 1 then Error "clients must be >= 1"
  else if cfg.benches = [] then Error "at least one bench required"
  else if cfg.policies = [] then Error "at least one policy required"
  else begin
    let digests = (Mutex.create (), Hashtbl.create 16) in
    let clients =
      List.init cfg.clients (fun id ->
          {
            id;
            cfg;
            mutex = Mutex.create ();
            pending = Hashtbl.create 32;
            retry_q = [];
            lat = Latency.create ();
            c_ok = 0;
            c_shed = 0;
            c_retries = 0;
            c_give_ups = 0;
            c_stalled = 0;
            c_cancelled = 0;
            c_failed = 0;
            c_rejected = 0;
            c_shutdown = 0;
            c_killed = 0;
            c_lost = 0;
            c_proto = 0;
            c_mismatch = 0;
            c_reconnects = 0;
            c_sent = 0;
            c_max_retry_hint_ms = 0;
            rng_r = Rng.create (Rng.hash64 ((cfg.seed * 131) + id + 7));
            digests;
          })
    in
    let failures = Atomic.make 0 in
    let threads =
      List.map
        (fun cl ->
          Thread.create
            (fun () ->
              try client_loop cl
              with _ -> Atomic.incr failures)
            ())
        clients
    in
    List.iter Thread.join threads;
    if Atomic.get failures > 0 then
      Error
        (Printf.sprintf "%d client(s) could not reach the server at %s"
           (Atomic.get failures) cfg.socket_path)
    else begin
      let lat =
        List.fold_left
          (fun acc cl -> Latency.merge acc cl.lat)
          (Latency.create ()) clients
      in
      let sum f = List.fold_left (fun a cl -> a + f cl) 0 clients in
      let r =
        {
          sent = sum (fun c -> c.c_sent);
          ok = sum (fun c -> c.c_ok);
          shed_replies = sum (fun c -> c.c_shed);
          retries = sum (fun c -> c.c_retries);
          give_ups = sum (fun c -> c.c_give_ups);
          stalled = sum (fun c -> c.c_stalled);
          cancelled = sum (fun c -> c.c_cancelled);
          failed = sum (fun c -> c.c_failed);
          rejected = sum (fun c -> c.c_rejected);
          shutdown_replies = sum (fun c -> c.c_shutdown);
          killed = sum (fun c -> c.c_killed);
          lost = sum (fun c -> c.c_lost);
          protocol_errors = sum (fun c -> c.c_proto);
          digest_mismatches = sum (fun c -> c.c_mismatch);
          reconnects = sum (fun c -> c.c_reconnects);
          max_retry_hint_ms =
            List.fold_left
              (fun a cl -> max a cl.c_max_retry_hint_ms)
              0 clients;
          latency = Latency.summarize lat;
        }
      in
      (match cfg.json_path with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc (Bench_json.to_string (result_to_json cfg r));
        output_char oc '\n';
        close_out oc);
      if not cfg.quiet then
        List.iter (Printf.eprintf "loadgen: %s\n%!") (summary_lines r);
      Ok r
    end
  end
