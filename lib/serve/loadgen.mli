(** Multi-client load generator for {!Serve}: seeded open-loop arrivals,
    jittered exponential retry on [overloaded], optional kill/reconnect
    chaos, and a latency report over the full request lifetime (first send
    to final reply, retries included).

    Every client is deterministic given [seed]: arrival gaps, the
    bench/policy mix, and chaos kills all derive from per-client seeded
    streams, so a failing run can be replayed exactly.

    Accounting invariant: every issued request ends in exactly one bucket —
    [ok], [stalled], [cancelled], [failed], [rejected], [shutdown_replies],
    [give_ups], [killed], or [lost] — so [accounted r = r.sent] is the
    zero-lost-replies check the soak harness asserts. *)

type config = {
  socket_path : string;
  clients : int;
  requests_per_client : int;
  seed : int;
  mean_gap_ms : int;  (** mean of the exponential inter-arrival gap *)
  benches : string list;  (** cycled per request; ["spin"] allowed *)
  mode : string;
  scale : int;
  policies : string list;  (** cycled per request *)
  deadline_ms : int option;  (** per-request deadline sent to the server *)
  spin_ms : int;  (** busy-work for ["spin"] requests *)
  burst : int;
      (** extra back-to-back ["spin"] requests client 0 fires at start —
          the deterministic way to push the server past its admission
          watermark *)
  kill_every : int;
      (** [> 0]: a client abruptly closes its connection after every k-th
          send and reconnects (in-flight requests counted [killed]) *)
  max_retries : int;  (** retry budget per request on [overloaded] *)
  backoff_base_ms : int;
  backoff_cap_ms : int;
  wait_cap_s : float;  (** max wait for stragglers after the last send *)
  json_path : string option;
  quiet : bool;
}

val default_config : socket_path:string -> config

type result = {
  sent : int;  (** unique requests issued (retries not re-counted) *)
  ok : int;
  shed_replies : int;  (** [overloaded] replies received *)
  retries : int;  (** re-sends performed after backoff *)
  give_ups : int;  (** retry budget exhausted *)
  stalled : int;
  cancelled : int;
  failed : int;
  rejected : int;  (** malformed / unknown-bench / unknown-policy replies *)
  shutdown_replies : int;
  killed : int;  (** aborted by a chaos kill *)
  lost : int;  (** no reply within [wait_cap_s] — must be 0 *)
  protocol_errors : int;  (** unparseable replies — must be 0 *)
  digest_mismatches : int;
      (** ok replies whose digest disagreed with an earlier ok reply for the
          same (bench, input, mode, scale) — across policies — must be 0 *)
  reconnects : int;
  max_retry_hint_ms : int;
      (** largest [retry_after_ms] hint any shed carried — under a burning
          SLO budget the server scales the hint, so an overload soak sees
          this rise above the un-tightened baseline *)
  latency : Latency.summary;  (** over [ok] requests *)
}

val accounted : result -> int
(** Sum of the terminal buckets; equals [sent] iff no reply was lost or
    double-counted. *)

val run : config -> (result, string) Stdlib.result
(** Run the whole load; blocks until every client finished.  Writes the
    [kind="serve"], [role="loadgen"] artifact when [json_path] is set.
    [Error] on bad configuration or when the server cannot be reached. *)

val result_to_json : config -> result -> Rpb_benchmarks.Bench_json.json
val summary_lines : result -> string list
(** Human-readable counter + percentile lines for the CLI. *)
