(* Length-prefixed key=value line protocol for [rpb serve].  See the mli for
   the framing and field contracts. *)

exception Malformed of string

(* ------------------------------------------------------------------ *)
(* Framing *)

type reader = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable pos : int;  (* next unread byte in [buf] *)
  mutable len : int;  (* valid bytes in [buf] *)
}

let reader fd = { fd; buf = Bytes.create 4096; pos = 0; len = 0 }

(* Refill the buffer; false on EOF. *)
let refill r =
  let n = Unix.read r.fd r.buf 0 (Bytes.length r.buf) in
  if n = 0 then false
  else begin
    r.pos <- 0;
    r.len <- n;
    true
  end

let read_byte r =
  if r.pos >= r.len && not (refill r) then None
  else begin
    let c = Bytes.get r.buf r.pos in
    r.pos <- r.pos + 1;
    Some c
  end

let default_max_len = 65536

let read_frame ?(max_len = default_max_len) r =
  (* Length prefix: decimal digits then '\n'.  Reject before accumulating an
     absurd length — the prefix is the attack surface of the framing. *)
  match read_byte r with
  | None -> None
  | Some c0 ->
    let rec length acc n_digits c =
      match c with
      | '\n' -> if n_digits = 0 then raise (Malformed "empty length prefix") else acc
      | '0' .. '9' ->
        let acc = (acc * 10) + (Char.code c - Char.code '0') in
        if acc > max_len then
          raise (Malformed (Printf.sprintf "frame length exceeds %d" max_len));
        (match read_byte r with
         | None -> raise (Malformed "EOF inside length prefix")
         | Some c -> length acc (n_digits + 1) c)
      | _ -> raise (Malformed "non-digit in length prefix")
    in
    let n = length 0 0 c0 in
    let payload = Bytes.create n in
    let rec fill off =
      if off < n then begin
        let avail = r.len - r.pos in
        if avail > 0 then begin
          let take = min avail (n - off) in
          Bytes.blit r.buf r.pos payload off take;
          r.pos <- r.pos + take;
          fill (off + take)
        end
        else if refill r then fill off
        else raise (Malformed "EOF inside frame payload")
      end
    in
    fill 0;
    Some (Bytes.unsafe_to_string payload)

let write_frame fd payload =
  let frame =
    Printf.sprintf "%d\n%s" (String.length payload) payload
  in
  let b = Bytes.unsafe_of_string frame in
  let total = Bytes.length b in
  let rec send off =
    if off < total then
      let n = Unix.write fd b off (total - off) in
      send (off + n)
  in
  send 0

(* ------------------------------------------------------------------ *)
(* key=value lines *)

let sanitize s =
  let s = if String.length s > 200 then String.sub s 0 200 else s in
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | ':' | '/' | '-' -> c
      | _ -> '_')
    s

let fields_of_line line =
  String.split_on_char ' ' line
  |> List.filter_map (fun tok ->
         if tok = "" then None
         else
           match String.index_opt tok '=' with
           | None -> None
           | Some i ->
             Some (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1)))

let find k fields = List.assoc_opt k fields

let int_field k fields =
  match find k fields with
  | None -> Ok None
  | Some v -> (
    match int_of_string_opt v with
    | Some i -> Ok (Some i)
    | None -> Error (Printf.sprintf "field %s: not an integer (%s)" k (sanitize v)))

let float_field k fields =
  match find k fields with
  | None -> Ok None
  | Some v -> (
    match float_of_string_opt v with
    | Some f -> Ok (Some f)
    | None -> Error (Printf.sprintf "field %s: not a number (%s)" k (sanitize v)))

(* ------------------------------------------------------------------ *)
(* Requests *)

type request = {
  id : int;
  verb : string;
  bench : string;
  input : string option;
  mode : string;
  scale : int;
  policy : string;
  deadline_s : float option;
  spin_ms : int;
}

let request ?(verb = "run") ?input ?(mode = "unsafe") ?(scale = 0)
    ?(policy = "default") ?deadline_s ?(spin_ms = 0) ~id ~bench () =
  { id; verb; bench; input; mode; scale; policy; deadline_s; spin_ms }

let stats_request ~id = request ~verb:"stats" ~id ~bench:"-" ()
let health_request ~id = request ~verb:"health" ~id ~bench:"-" ()

let request_line r =
  let b = Buffer.create 96 in
  (* [verb=run] is implicit on the wire, so pre-verb servers keep parsing
     plain run requests unchanged. *)
  if r.verb <> "run" then
    Buffer.add_string b (Printf.sprintf "verb=%s " (sanitize r.verb));
  Buffer.add_string b
    (Printf.sprintf "id=%d bench=%s mode=%s scale=%d policy=%s" r.id
       (sanitize r.bench) (sanitize r.mode) r.scale (sanitize r.policy));
  (match r.input with
   | Some i -> Buffer.add_string b (" input=" ^ sanitize i)
   | None -> ());
  (match r.deadline_s with
   | Some d ->
     Buffer.add_string b
       (Printf.sprintf " deadline_ms=%d" (int_of_float (Float.round (d *. 1e3))))
   | None -> ());
  if r.spin_ms > 0 then
    Buffer.add_string b (Printf.sprintf " spin_ms=%d" r.spin_ms);
  Buffer.contents b

let ( let* ) r f = Result.bind r f

let parse_request line =
  let fields = fields_of_line line in
  let* id =
    match int_field "id" fields with
    | Ok (Some i) -> Ok i
    | Ok None -> Error "missing id field"
    | Error e -> Error e
  in
  let verb = Option.value (find "verb" fields) ~default:"run" in
  let* bench =
    match find "bench" fields with
    | Some b when b <> "" -> Ok b
    | _ ->
      (* Non-run verbs (e.g. [stats]) address the server, not a bench. *)
      if verb = "run" then Error "missing bench field" else Ok "-"
  in
  let* scale = int_field "scale" fields in
  let* deadline_ms = int_field "deadline_ms" fields in
  let* deadline_s =
    match deadline_ms with
    | None -> Ok None
    | Some ms when ms > 0 -> Ok (Some (float_of_int ms *. 1e-3))
    | Some _ -> Error "deadline_ms must be positive"
  in
  let* spin_ms = int_field "spin_ms" fields in
  let* scale =
    match scale with
    | None -> Ok 0
    | Some s when s >= 0 -> Ok s
    | Some _ -> Error "scale must be >= 0"
  in
  Ok
    {
      id;
      verb;
      bench;
      input = find "input" fields;
      mode = Option.value (find "mode" fields) ~default:"unsafe";
      scale;
      policy = Option.value (find "policy" fields) ~default:"default";
      deadline_s;
      spin_ms = (match spin_ms with Some s when s > 0 -> s | _ -> 0);
    }

(* ------------------------------------------------------------------ *)
(* Replies *)

type error_kind =
  | Overloaded
  | Stalled
  | Cancelled
  | Malformed_request
  | Unknown_bench
  | Unknown_policy
  | Shutting_down
  | Failed

let error_kinds =
  [
    (Overloaded, "overloaded");
    (Stalled, "stalled");
    (Cancelled, "cancelled");
    (Malformed_request, "malformed");
    (Unknown_bench, "unknown-bench");
    (Unknown_policy, "unknown-policy");
    (Shutting_down, "shutdown");
    (Failed, "failed");
  ]

let error_kind_name k = List.assoc k error_kinds

let error_kind_of_name n =
  List.find_map (fun (k, s) -> if s = n then Some k else None) error_kinds

type reply =
  | Ok_reply of { id : int; digest : int; queue_ms : float; exec_ms : float }
  | Err_reply of {
      id : int;
      kind : error_kind;
      retry_after_ms : int option;
      msg : string;
    }

let reply_id = function Ok_reply { id; _ } | Err_reply { id; _ } -> id

let reply_line = function
  | Ok_reply { id; digest; queue_ms; exec_ms } ->
    Printf.sprintf "id=%d status=ok digest=%d queue_ms=%.3f exec_ms=%.3f" id
      digest queue_ms exec_ms
  | Err_reply { id; kind; retry_after_ms; msg } ->
    let b = Buffer.create 64 in
    Buffer.add_string b
      (Printf.sprintf "id=%d status=error kind=%s" id (error_kind_name kind));
    (match retry_after_ms with
     | Some ms -> Buffer.add_string b (Printf.sprintf " retry_after_ms=%d" ms)
     | None -> ());
    if msg <> "" then Buffer.add_string b (" msg=" ^ sanitize msg);
    Buffer.contents b

let parse_reply line =
  let fields = fields_of_line line in
  let* id =
    match int_field "id" fields with
    | Ok (Some i) -> Ok i
    | Ok None -> Error "missing id field"
    | Error e -> Error e
  in
  match find "status" fields with
  | Some "ok" ->
    let* digest =
      match int_field "digest" fields with
      | Ok (Some d) -> Ok d
      | Ok None -> Error "ok reply missing digest"
      | Error e -> Error e
    in
    let* queue_ms = float_field "queue_ms" fields in
    let* exec_ms = float_field "exec_ms" fields in
    Ok
      (Ok_reply
         {
           id;
           digest;
           queue_ms = Option.value queue_ms ~default:0.;
           exec_ms = Option.value exec_ms ~default:0.;
         })
  | Some "error" ->
    let* kind =
      match find "kind" fields with
      | Some n -> (
        match error_kind_of_name n with
        | Some k -> Ok k
        | None -> Error ("unknown error kind " ^ sanitize n))
      | None -> Error "error reply missing kind"
    in
    let* retry_after_ms = int_field "retry_after_ms" fields in
    Ok
      (Err_reply
         {
           id;
           kind;
           retry_after_ms;
           msg = Option.value (find "msg" fields) ~default:"";
         })
  | Some s -> Error ("unknown status " ^ sanitize s)
  | None -> Error "missing status field"

(* Order-sensitive FNV-1a-style fold, masked to 62 bits so the hash stays a
   valid OCaml int on 64-bit and prints without a sign. *)
let digest_hash a =
  let mask = (1 lsl 62) - 1 in
  let h = ref 0x1403_7fb4_46a3_9fd1 in
  Array.iter
    (fun x ->
      h := (!h lxor (x land mask)) * 0x100_0000_01b3 land mask)
    a;
  (* Fold the length in so a prefix and its extension never collide
     silently. *)
  ((!h lxor Array.length a) * 0x100_0000_01b3) land mask
