(** The [rpb serve] wire protocol: length-prefixed lines of [key=value]
    fields over a Unix-domain stream socket.

    Each frame is an ASCII decimal payload length, a ['\n'], then exactly
    that many payload bytes.  The payload is one line of space-separated
    [key=value] fields (no spaces or newlines inside keys or values — values
    are sanitized on write).  Unknown keys are ignored on read, so fields
    can be added without breaking old peers.

    A {e request} names a job against the server's cached preloaded inputs:
    a registry benchmark ([bench=hist], with optional [input], [mode],
    [scale]), or the built-in [bench=spin] busy-loop (a cancellable
    synthetic job, [spin_ms] of parallel work — the load generator's
    deterministic way to occupy the pool).  Every request carries a
    client-chosen [id], an optional per-request [deadline_ms], and an
    optional per-request [policy] (a {!Rpb_pool.Pool.Policy} registry
    name).

    A {e reply} echoes the [id] and is either [status=ok] — with the
    canonical digest hash of the benchmark output, queueing and execution
    times — or [status=error] with a structured {!error_kind} (and, for
    {!Overloaded}, a [retry_after_ms] backoff hint). *)

exception Malformed of string
(** Raised by {!read_frame} on a frame that violates the framing layer
    (oversized length, non-numeric prefix, truncated payload). *)

(** {1 Framing} *)

type reader
(** Buffered frame reader over a file descriptor (one per connection). *)

val reader : Unix.file_descr -> reader

val read_frame : ?max_len:int -> reader -> string option
(** Next payload, or [None] on clean EOF.  [max_len] (default 65536) bounds
    the accepted payload length — a garbage length prefix must not make the
    server allocate unbounded memory.  @raise Malformed on framing errors.
    May raise [Unix.Unix_error] if the peer resets the connection. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one frame (length, newline, payload).  Raises [Unix.Unix_error]
    (e.g. [EPIPE]) when the peer is gone. *)

(** {1 Requests} *)

type request = {
  id : int;  (** client-chosen; echoed in the reply *)
  verb : string;
      (** ["run"] (implicit on the wire) executes a job; ["stats"] asks for
          a live metrics snapshot and ["health"] for the SLO verdict — for
          both, the reply frame is a raw JSON document ([kind="metrics"] /
          [kind="health"]), not a [key=value] line *)
  bench : string;  (** registry benchmark name, or ["spin"]; ["-"] for
                       non-run verbs *)
  input : string option;  (** benchmark input (default: the entry's first) *)
  mode : string;  (** "unsafe" | "checked" | "sync" *)
  scale : int;
  policy : string;  (** scheduling-policy registry name *)
  deadline_s : float option;  (** per-request deadline *)
  spin_ms : int;  (** busy-work duration for [bench = "spin"] *)
}

val request : ?verb:string -> ?input:string -> ?mode:string -> ?scale:int ->
  ?policy:string -> ?deadline_s:float -> ?spin_ms:int -> id:int ->
  bench:string -> unit -> request
(** Request with protocol defaults ([verb = "run"], [mode = "unsafe"],
    [scale = 0], [policy = "default"], no deadline). *)

val stats_request : id:int -> request
(** A [verb=stats] request: the server replies with one frame whose payload
    is the current live-metrics snapshot as JSON. *)

val health_request : id:int -> request
(** A [verb=health] request: the server replies with one frame whose
    payload is the [kind="health"] SLO verdict document
    ({!Rpb_obs.Slo.health_json}) — overall [ok|degraded|unhealthy] status,
    per-objective burn rates, and the current admission tightening.  Like
    [stats] it bypasses admission and is served even while draining. *)

val request_line : request -> string
val parse_request : string -> (request, string) result

(** {1 Replies} *)

type error_kind =
  | Overloaded  (** admission control shed the request; retry after the hint *)
  | Stalled  (** the per-request deadline fired ([Pool.Stalled]) *)
  | Cancelled  (** the request's run was cancelled (client disconnect) *)
  | Malformed_request  (** unparseable request, bad input/mode/scale *)
  | Unknown_bench
  | Unknown_policy
  | Shutting_down  (** server draining: request not (fully) served *)
  | Failed  (** the job raised (e.g. an injected fault); [msg] says what *)

val error_kind_name : error_kind -> string
val error_kind_of_name : string -> error_kind option

type reply =
  | Ok_reply of {
      id : int;
      digest : int;  (** {!digest_hash} of the benchmark's canonical snapshot *)
      queue_ms : float;  (** admission-queue residency *)
      exec_ms : float;  (** [Pool.run] service time *)
    }
  | Err_reply of {
      id : int;  (** [-1] when the request id itself was unparseable *)
      kind : error_kind;
      retry_after_ms : int option;  (** only for {!Overloaded} *)
      msg : string;  (** sanitized detail, possibly empty *)
    }

val reply_id : reply -> int
val reply_line : reply -> string
val parse_reply : string -> (reply, string) result

val digest_hash : int array -> int
(** Order-sensitive 62-bit FNV-style fold of a canonical digest
    ([Common.snapshot]) — equal arrays give equal hashes, so a reply can
    carry the whole digest as one comparable integer. *)

val sanitize : string -> string
(** Replace bytes outside [[A-Za-z0-9._:/-]] with ['_'] and truncate to 200
    bytes — what {!reply_line} applies to [msg]. *)
