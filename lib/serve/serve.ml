(* The rpb serve request server.  See serve.mli for the architecture; the
   short version: conn systhreads parse + admit, one executor domain owns
   every Pool.run, and nothing a client does may kill the process or poison
   a pool. *)

module Pool = Rpb_pool.Pool
module Metrics = Rpb_obs.Metrics
module Slo = Rpb_obs.Slo
open Rpb_benchmarks

type config = {
  socket_path : string;
  threads : int;
  policy : string;
  max_queue : int;
  drain_grace_s : float;
  scale_cap : int;
  preload : (string * string option * int) list;
  json_path : string option;
  quiet : bool;
  minor_heap_kb : int option;
  metrics_path : string option;
  metrics_interval_s : float;
  slow_log : int;
  slow_pctl : float;
  slo : Slo.spec option;
  slo_fast_s : float;
  slo_slow_s : float;
}

let default_config ~socket_path =
  {
    socket_path;
    threads = max 1 (Domain.recommended_domain_count () - 1);
    policy = "default";
    max_queue = 16;
    drain_grace_s = 2.0;
    scale_cap = 6;
    preload = [];
    json_path = None;
    quiet = false;
    minor_heap_kb = None;
    metrics_path = None;
    metrics_interval_s = 1.0;
    slow_log = 8;
    slow_pctl = 99.0;
    slo = None;
    slo_fast_s = 60.;
    slo_slow_s = 3600.;
  }

(* ------------------------------------------------------------------ *)
(* Live-metrics instruments.  Find-or-create on a process-global registry,
   so module initialization is the natural creation point; every bump below
   costs one atomic load while the plane is disabled. *)

let m_accepted = Metrics.counter "serve.accepted"
let m_ok = Metrics.counter "serve.ok"
let m_shed = Metrics.counter "serve.shed"
let m_stalled = Metrics.counter "serve.stalled"
let m_cancelled = Metrics.counter "serve.cancelled"
let m_failed = Metrics.counter "serve.failed"
let m_rejected = Metrics.counter "serve.rejected"
let m_shutdown_replies = Metrics.counter "serve.shutdown_replies"
let m_disconnects = Metrics.counter "serve.disconnects"
let m_connections = Metrics.counter "serve.connections"
let m_stats_requests = Metrics.counter "serve.stats_requests"
let m_health_requests = Metrics.counter "serve.health_requests"
let m_slow_logged = Metrics.counter "serve.slow_logged"
let m_queue_hist = Metrics.histogram "serve.queue_ms"
let m_exec_hist = Metrics.histogram "serve.exec_ms"
let m_total_hist = Metrics.histogram "serve.total_ms"
let m_ewma = Metrics.gauge "serve.ewma_service_ms"

type stats = {
  accepted : int;
  ok : int;
  shed : int;
  stalled : int;
  cancelled : int;
  failed : int;
  rejected : int;
  shutdown_replies : int;
  disconnects : int;
  connections : int;
  max_occupancy : int;
}

type conn = {
  fd : Unix.file_descr;
  wmutex : Mutex.t;  (* serializes writes; guards [alive] for writers *)
  mutable alive : bool;
}

type job = {
  req : Protocol.request;
  jconn : conn;
  enqueued_at : float;
  jcancelled : bool Atomic.t;
}

type req_record = {
  r_id : int;
  r_bench : string;
  r_policy : string;
  r_status : string;
  r_queue_ms : float;
  r_exec_ms : float;
}

let max_records = 4096

(* One running SLO engine plus its gauge exports.  The engine is fed only
   from the sampler thread; [last] is read by the [health] verb under
   [mmutex].  The overall level additionally lives in the process-global
   [Slo.current_level] register so the admission path reads it with one
   atomic load. *)
type slo_state = {
  engine : Slo.t;
  g_overall : Metrics.gauge;
  (* (level, fast_burn, slow_burn, budget_remaining) per objective, in
     spec order. *)
  g_objs : (Metrics.gauge * Metrics.gauge * Metrics.gauge * Metrics.gauge) list;
  mutable last : Slo.verdict list;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  started_at : float;
  (* --- queue state, all under [qmutex] --- *)
  qmutex : Mutex.t;
  qcond : Condition.t;
  queue : job Queue.t;
  mutable inflight : (job * Pool.t) option;
  mutable draining : bool;
  mutable ewma_ms : float;
  mutable c : stats;
  mutable records : req_record list;  (* newest first, capped *)
  mutable n_records : int;
  (* --- pools, under [pmutex] --- *)
  pmutex : Mutex.t;
  pools : (string, Pool.t) Hashtbl.t;
  (* --- prepared-instance cache: executor-domain only --- *)
  prepared : (string * string * string * int, Common.prepared) Hashtbl.t;
  (* --- connections, under [cmutex] --- *)
  cmutex : Mutex.t;
  mutable conn_threads : Thread.t list;
  mutable live_conns : conn list;
  mutable accept_thread : Thread.t option;
  mutable executor : unit Domain.t option;
  smutex : Mutex.t;  (* serializes [stop] *)
  mutable stopped : bool;
  (* --- live metrics plane --- *)
  mmutex : Mutex.t;  (* guards the JSONL channel and the slow-request log *)
  mutable metrics_oc : out_channel option;
  mutable metrics_thread : Thread.t option;
  metrics_stop : bool Atomic.t;
  mutable slow_docs : Bench_json.json list;  (* newest first, capped *)
  mutable n_slow : int;
  (* --- SLO engine (sampler thread feeds, health verb reads) --- *)
  slo : slo_state option;
}

let socket_path t = t.cfg.socket_path

let zero_stats =
  {
    accepted = 0;
    ok = 0;
    shed = 0;
    stalled = 0;
    cancelled = 0;
    failed = 0;
    rejected = 0;
    shutdown_replies = 0;
    disconnects = 0;
    connections = 0;
    max_occupancy = 0;
  }

let stats t =
  Mutex.lock t.qmutex;
  let s = t.c in
  Mutex.unlock t.qmutex;
  s

let log t fmt =
  Printf.ksprintf
    (fun s -> if not t.cfg.quiet then Printf.eprintf "serve: %s\n%!" s)
    fmt

(* ------------------------------------------------------------------ *)
(* Replies *)

(* Writes race with connection teardown: [alive] flips under [wmutex]
   before the reader thread closes the fd, so a reply is either written to
   the live fd or dropped — never written to a recycled descriptor. *)
let send_payload conn payload =
  Mutex.lock conn.wmutex;
  (try if conn.alive then Protocol.write_frame conn.fd payload
   with Unix.Unix_error _ | Sys_error _ -> ());
  Mutex.unlock conn.wmutex

let send conn reply = send_payload conn (Protocol.reply_line reply)

let err ?(id = -1) ?retry_after_ms kind msg =
  Protocol.Err_reply { id; kind; retry_after_ms; msg }

(* ------------------------------------------------------------------ *)
(* Pools and request execution (executor domain) *)

let resolve_policy_name t name = if name = "default" then t.cfg.policy else name

let resolve_pool t name =
  Mutex.lock t.pmutex;
  let pool =
    match Hashtbl.find_opt t.pools name with
    | Some p -> p
    | None ->
      let policy = Option.get (Pool.Policy.find name) in
      let p =
        Pool.create ~name:("serve-" ^ name) ~policy
          ?minor_heap_kb:t.cfg.minor_heap_kb ~num_workers:t.cfg.threads ()
      in
      Hashtbl.replace t.pools name p;
      (* Export the per-policy pool's scheduler gauges alongside the
         default pool's ([pool.*]). *)
      Metrics.register_pool ~prefix:("pool." ^ name) p;
      p
  in
  Mutex.unlock t.pmutex;
  pool

exception Verify_failed

let resolve_input entry = function
  | Some i -> i
  | None -> List.hd entry.Common.inputs

let prepare_cached t pool entry ~input ~scale =
  let key = (Pool.policy_name pool, entry.Common.name, input, scale) in
  match Hashtbl.find_opt t.prepared key with
  | Some p -> (key, p)
  | None ->
    let p = Pool.run pool (fun () -> entry.Common.prepare pool ~input ~scale) in
    Hashtbl.replace t.prepared key p;
    (key, p)

(* 1 ms of busy work per index; grain 1 so cancellation is observed at
   millisecond granularity. *)
let run_spin pool (req : Protocol.request) =
  let chunks = max 1 req.spin_ms in
  let t0 = Rpb_prim.Timing.now () in
  Pool.run ?deadline:req.deadline_s pool (fun () ->
      Pool.parallel_for ~grain:1 ~start:0 ~finish:(chunks - 1)
        ~body:(fun _ ->
          let stop_at = Rpb_prim.Timing.now () +. 1e-3 in
          while Rpb_prim.Timing.now () < stop_at do
            ignore (Sys.opaque_identity 0)
          done)
        pool);
  let exec_ms = (Rpb_prim.Timing.now () -. t0) *. 1e3 in
  (Protocol.digest_hash [| req.spin_ms |], exec_ms)

let run_bench t pool (req : Protocol.request) =
  let entry = Option.get (Registry.find req.bench) in
  let input = resolve_input entry req.input in
  let mode = Option.get (Mode.of_string req.mode) in
  let key, prepared = prepare_cached t pool entry ~input ~scale:req.scale in
  try
    let t0 = Rpb_prim.Timing.now () in
    Pool.run ?deadline:req.deadline_s pool (fun () ->
        prepared.Common.run_par mode);
    let exec_ms = (Rpb_prim.Timing.now () -. t0) *. 1e3 in
    let ok, snap =
      Pool.run pool (fun () ->
          let ok = prepared.Common.verify () in
          (ok, prepared.Common.snapshot ()))
    in
    if not ok then raise Verify_failed;
    (Protocol.digest_hash snap, exec_ms)
  with e ->
    (* A stalled, cancelled or faulted run can leave the prepared instance's
       output buffers partially written; drop it so the next request
       re-prepares from scratch. *)
    Hashtbl.remove t.prepared key;
    raise e

(* Returns (status, reply option, exec_ms).  A [Pool.Cancelled] without our
   own cancel mark is a stale cancellation from an earlier job's disconnect
   poisoning the fresh scope — retried once (the scope is clean again after
   the aborted run). *)
let execute t job pool =
  let req = job.req in
  let queue_ms = (Rpb_prim.Timing.now () -. job.enqueued_at) *. 1e3 in
  (* Request-scoped scheduler tracing: the whole run executes under a span
     named for the request, so when the flight recorder is armed (the
     slow-request log, or an operator-started [Trace]/[Recorder] session)
     every Phase event attributes scheduler behaviour to a request id.
     One atomic load when all instrumentation is off. *)
  let span_name = Printf.sprintf "request:%d:%s" req.id req.bench in
  let attempt () =
    Pool.Trace.span pool span_name (fun () ->
        if req.bench = "spin" then run_spin pool req else run_bench t pool req)
  in
  match
    try attempt ()
    with Pool.Cancelled when not (Atomic.get job.jcancelled) -> attempt ()
  with
  | digest, exec_ms ->
    ( "ok",
      Some (Protocol.Ok_reply { id = req.id; digest; queue_ms; exec_ms }),
      exec_ms )
  | exception Pool.Stalled msg ->
    let brief =
      match String.index_opt msg '\n' with
      | Some i -> String.sub msg 0 i
      | None -> msg
    in
    ("stalled", Some (err ~id:req.id Protocol.Stalled brief), 0.)
  | exception Pool.Cancelled ->
    ("cancelled", Some (err ~id:req.id Protocol.Cancelled "disconnected"), 0.)
  | exception Verify_failed ->
    ("failed", Some (err ~id:req.id Protocol.Failed "verification failed"), 0.)
  | exception Pool.Fault.Injected msg ->
    ("failed", Some (err ~id:req.id Protocol.Failed ("fault: " ^ msg)), 0.)
  | exception e ->
    ("failed", Some (err ~id:req.id Protocol.Failed (Printexc.to_string e)), 0.)

let record t ~(job : job) ~policy_name ~status ~queue_ms ~exec_ms =
  if t.n_records < max_records then begin
    t.records <-
      {
        r_id = job.req.id;
        r_bench = job.req.bench;
        r_policy = policy_name;
        r_status = status;
        r_queue_ms = queue_ms;
        r_exec_ms = exec_ms;
      }
      :: t.records;
    t.n_records <- t.n_records + 1
  end

let bump t status =
  (match status with
  | "ok" -> Metrics.incr m_ok
  | "stalled" -> Metrics.incr m_stalled
  | "cancelled" -> Metrics.incr m_cancelled
  | "shutdown" -> Metrics.incr m_shutdown_replies
  | _ -> Metrics.incr m_failed);
  t.c <-
    (match status with
    | "ok" -> { t.c with ok = t.c.ok + 1 }
    | "stalled" -> { t.c with stalled = t.c.stalled + 1 }
    | "cancelled" -> { t.c with cancelled = t.c.cancelled + 1 }
    | "shutdown" -> { t.c with shutdown_replies = t.c.shutdown_replies + 1 }
    | _ -> { t.c with failed = t.c.failed + 1 })

(* ------------------------------------------------------------------ *)
(* Slow-request log.  While the metrics plane is on and [slow_log > 0],
   every request executes under a private flight-recorder session; a
   request whose exec time clears the [slow_pctl] percentile of the exec
   histogram (threshold frozen before the request runs, and never before
   32 samples exist) keeps its recording, reduced by [Sp_dag.analyze] to a
   PROFILE-compatible document — so `rpb report` and the work/span
   tooling render a slow production request exactly like an `rpb profile`
   run. *)

let slow_sample_floor = 32

let slow_active t = t.cfg.slow_log > 0 && Metrics.enabled ()

let slow_threshold_ms t =
  if not (slow_active t) then infinity
  else if Metrics.hist_count m_exec_hist < slow_sample_floor then infinity
  else Metrics.percentile_ms m_exec_hist t.cfg.slow_pctl

let slow_doc t (job : job) ~policy_name ~exec_ms recording =
  let req = job.req in
  let metrics = Rpb_obs.Sp_dag.analyze recording in
  Rpb_obs.Profile.to_json
    {
      Rpb_obs.Profile.bench = req.Protocol.bench;
      input = Option.value req.Protocol.input ~default:"-";
      size = Printf.sprintf "slow request id=%d" req.Protocol.id;
      mode = req.Protocol.mode;
      scale = req.Protocol.scale;
      threads = t.cfg.threads;
      seed = 0;
      elapsed_ns = exec_ms *. 1e6;
      verified = true;
      workers = [];
      policy = policy_name;
      metrics;
    }

let rec list_take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: list_take (n - 1) rest

let push_slow t doc =
  Metrics.incr m_slow_logged;
  Mutex.lock t.mmutex;
  t.slow_docs <- doc :: list_take (t.cfg.slow_log - 1) t.slow_docs;
  t.n_slow <- min t.cfg.slow_log (t.n_slow + 1);
  (* Stream it into the metrics JSONL too: the report loader classifies
     each line by kind, so the doc lands in the dashboard's profile
     section on its own. *)
  (match t.metrics_oc with
  | Some oc -> (
    try
      output_string oc (Bench_json.to_string doc);
      output_char oc '\n';
      flush oc
    with Sys_error _ -> ())
  | None -> ());
  Mutex.unlock t.mmutex

(* One SLO evaluation, on the sampler thread: take a snapshot, feed the
   engine, export the verdicts as slo.* gauges (so top/--check/report see
   them through the ordinary snapshot path) and publish the overall level
   to the global register the admission path reads. *)
let slo_tick t =
  match t.slo with
  | None -> ()
  | Some s -> (
    match Slo.feed_snapshot s.engine (Metrics.snapshot ()) with
    | None -> ()
    | Some vs ->
      List.iter2
        (fun (gl, gf, gs, gb) (v : Slo.verdict) ->
          Metrics.set_gauge gl (float_of_int (Slo.level_index v.Slo.v_level));
          Metrics.set_gauge gf v.Slo.v_fast_burn;
          Metrics.set_gauge gs v.Slo.v_slow_burn;
          Metrics.set_gauge gb v.Slo.v_budget_remaining)
        s.g_objs vs;
      let lvl = Slo.overall vs in
      Metrics.set_gauge s.g_overall (float_of_int (Slo.level_index lvl));
      Slo.set_current lvl;
      Mutex.lock t.mmutex;
      s.last <- vs;
      Mutex.unlock t.mmutex)

let executor_loop t =
  let running = ref true in
  while !running do
    Mutex.lock t.qmutex;
    while Queue.is_empty t.queue && not t.draining do
      Condition.wait t.qcond t.qmutex
    done;
    if Queue.is_empty t.queue then begin
      (* draining and nothing queued: done *)
      running := false;
      Mutex.unlock t.qmutex
    end
    else begin
      let job = Queue.pop t.queue in
      if t.draining then begin
        bump t "shutdown";
        Mutex.unlock t.qmutex;
        send job.jconn (err ~id:job.req.id Protocol.Shutting_down "draining")
      end
      else if Atomic.get job.jcancelled then begin
        bump t "cancelled";
        let queue_ms = (Rpb_prim.Timing.now () -. job.enqueued_at) *. 1e3 in
        Metrics.observe_ms m_queue_hist queue_ms;
        record t ~job ~policy_name:"-" ~status:"cancelled" ~queue_ms
          ~exec_ms:0.;
        Mutex.unlock t.qmutex
      end
      else begin
        Mutex.unlock t.qmutex;
        let policy_name = resolve_policy_name t job.req.policy in
        let pool = resolve_pool t policy_name in
        Mutex.lock t.qmutex;
        t.inflight <- Some (job, pool);
        Mutex.unlock t.qmutex;
        (* Freeze the slow threshold before this request's own sample can
           move it, then run under a private recorder session. *)
        let threshold_ms = slow_threshold_ms t in
        let recording_armed = slow_active t in
        if recording_armed then
          Pool.Recorder.start ~ring_capacity:4096 ~policy_name ();
        let qwait_ms = (Rpb_prim.Timing.now () -. job.enqueued_at) *. 1e3 in
        let status, reply, exec_ms = execute t job pool in
        let recording =
          if recording_armed then Some (Pool.Recorder.stop ()) else None
        in
        let queue_ms = (Rpb_prim.Timing.now () -. job.enqueued_at) *. 1e3 in
        (* Histogram observations sit directly against the status-counter
           bump: a stats snapshot racing this request sees histogram
           totals at most one ahead of the counters (the single in-flight
           request), which is exactly the skew Top.check_invariants
           allows.  The expensive slow-request analysis runs after both,
           outside the window. *)
        Metrics.observe_ms m_queue_hist qwait_ms;
        if status = "ok" then begin
          Metrics.observe_ms m_exec_hist exec_ms;
          Metrics.observe_ms m_total_hist (qwait_ms +. exec_ms)
        end;
        Mutex.lock t.qmutex;
        t.inflight <- None;
        bump t status;
        if status = "ok" then begin
          t.ewma_ms <- (0.8 *. t.ewma_ms) +. (0.2 *. exec_ms);
          Metrics.set_gauge m_ewma t.ewma_ms
        end;
        record t ~job ~policy_name ~status ~queue_ms ~exec_ms;
        Mutex.unlock t.qmutex;
        (match recording with
        | Some r when status = "ok" && exec_ms >= threshold_ms ->
          push_slow t (slow_doc t job ~policy_name ~exec_ms r)
        | _ -> ());
        match reply with Some r -> send job.jconn r | None -> ()
      end
    end
  done

(* ------------------------------------------------------------------ *)
(* Admission (connection threads) *)

let unknown_policy_msg name =
  Printf.sprintf "unknown policy %s (have: %s)" (Protocol.sanitize name)
    (String.concat " " (Pool.Policy.names ()))

let validate t (req : Protocol.request) =
  let policy_name = resolve_policy_name t req.policy in
  if Pool.Policy.find policy_name = None then
    Error (Protocol.Unknown_policy, unknown_policy_msg req.policy)
  else if req.bench = "spin" then
    if req.spin_ms <= 0 then
      Error (Protocol.Malformed_request, "spin requires spin_ms > 0")
    else Ok ()
  else
    match Registry.find req.bench with
    | None ->
      Error
        ( Protocol.Unknown_bench,
          Printf.sprintf "unknown bench %s (have: %s)"
            (Protocol.sanitize req.bench)
            (String.concat " " Registry.names) )
    | Some entry ->
      if Mode.of_string req.mode = None then
        Error
          ( Protocol.Malformed_request,
            "unknown mode " ^ Protocol.sanitize req.mode )
      else
        let input = resolve_input entry req.input in
        if not (List.mem input entry.Common.inputs) then
          Error
            ( Protocol.Malformed_request,
              Printf.sprintf "unknown input %s for %s"
                (Protocol.sanitize input) entry.Common.name )
        else if req.scale > t.cfg.scale_cap then
          Error
            ( Protocol.Malformed_request,
              Printf.sprintf "scale %d exceeds server cap %d" req.scale
                t.cfg.scale_cap )
        else Ok ()

let retry_after_ms t occupancy =
  let hint = t.ewma_ms *. float_of_int (occupancy + 1) in
  max 1 (min 10_000 (int_of_float hint))

let admit t conn (req : Protocol.request) =
  (* Budget-aware admission: the SLO engine's level (one atomic load;
     always Ok without --slo) tightens the effective queue cap and scales
     the backoff hint deterministically, so a paging server sheds harder
     and pushes clients further out until the burn drains. *)
  let level = Slo.current_level () in
  let cap = Slo.effective_queue_cap level t.cfg.max_queue in
  Mutex.lock t.qmutex;
  if t.draining then begin
    t.c <- { t.c with shutdown_replies = t.c.shutdown_replies + 1 };
    Mutex.unlock t.qmutex;
    send conn (err ~id:req.id Protocol.Shutting_down "draining")
  end
  else begin
    let occupancy =
      Queue.length t.queue + (match t.inflight with Some _ -> 1 | None -> 0)
    in
    if occupancy >= cap then begin
      t.c <- { t.c with shed = t.c.shed + 1 };
      Metrics.incr m_shed;
      let hint =
        min 30_000 (retry_after_ms t occupancy * Slo.admission_scale level)
      in
      Mutex.unlock t.qmutex;
      send conn
        (err ~id:req.id ~retry_after_ms:hint Protocol.Overloaded
           (Printf.sprintf "queue full (%d of %d)" occupancy cap))
    end
    else begin
      let job =
        {
          req;
          jconn = conn;
          enqueued_at = Rpb_prim.Timing.now ();
          jcancelled = Atomic.make false;
        }
      in
      Queue.push job t.queue;
      Metrics.incr m_accepted;
      t.c <-
        {
          t.c with
          accepted = t.c.accepted + 1;
          max_occupancy = max t.c.max_occupancy (occupancy + 1);
        };
      Condition.signal t.qcond;
      Mutex.unlock t.qmutex
    end
  end

let reject t conn reply =
  Mutex.lock t.qmutex;
  t.c <- { t.c with rejected = t.c.rejected + 1 };
  Mutex.unlock t.qmutex;
  Metrics.incr m_rejected;
  send conn reply

(* [verb=stats] bypasses admission entirely (no queue slot, no executor
   round-trip): the reply frame's payload is the raw [kind="metrics"]
   snapshot JSON.  Served even while draining — drain is exactly when an
   operator wants a last look. *)
let handle_stats t conn (_req : Protocol.request) =
  ignore t;
  Metrics.incr m_stats_requests;
  send_payload conn (Bench_json.to_string (Metrics.snapshot ()))

(* [verb=health] is the SLO verdict plane: same admission bypass and
   drain behaviour as [stats], but the payload is the [kind="health"]
   document — overall status, per-objective burn rates, and the admission
   tightening currently in force.  Without --slo it reports an
   objective-less [ok]. *)
let handle_health t conn (_req : Protocol.request) =
  Metrics.incr m_health_requests;
  let verdicts =
    match t.slo with
    | None -> []
    | Some s ->
      Mutex.lock t.mmutex;
      let vs = s.last in
      Mutex.unlock t.mmutex;
      vs
  in
  send_payload conn
    (Bench_json.to_string
       (Slo.health_json ~verdicts ~max_queue:t.cfg.max_queue))

let handle_line t conn line =
  match Protocol.parse_request line with
  | Error msg -> reject t conn (err Protocol.Malformed_request msg)
  | Ok req -> (
    match req.verb with
    | "stats" -> handle_stats t conn req
    | "health" -> handle_health t conn req
    | "run" -> (
      match validate t req with
      | Error (kind, msg) -> reject t conn (err ~id:req.id kind msg)
      | Ok () -> admit t conn req)
    | v ->
      reject t conn
        (err ~id:req.id Protocol.Malformed_request
           ("unknown verb " ^ Protocol.sanitize v)))

(* ------------------------------------------------------------------ *)
(* Connection lifecycle *)

(* Tear down one connection's server-side state: stop future writes, cancel
   its queued jobs, cooperatively cancel its in-flight run.  Idempotent. *)
let on_conn_end t conn ~clean =
  Mutex.lock conn.wmutex;
  let was_alive = conn.alive in
  conn.alive <- false;
  Mutex.unlock conn.wmutex;
  if was_alive then begin
    Mutex.lock t.qmutex;
    let outstanding = ref false in
    Queue.iter
      (fun j ->
        if j.jconn == conn then begin
          Atomic.set j.jcancelled true;
          outstanding := true
        end)
      t.queue;
    (match t.inflight with
    | Some (j, pool) when j.jconn == conn ->
      Atomic.set j.jcancelled true;
      outstanding := true;
      Pool.cancel_run pool Pool.Cancelled
    | _ -> ());
    if (not clean) || !outstanding then begin
      t.c <- { t.c with disconnects = t.c.disconnects + 1 };
      Metrics.incr m_disconnects
    end;
    Mutex.unlock t.qmutex
  end

let conn_loop t conn =
  let r = Protocol.reader conn.fd in
  let clean = ref false in
  (try
     let rec go () =
       match Protocol.read_frame r with
       | None -> clean := true
       | Some line ->
         handle_line t conn line;
         go ()
     in
     go ()
   with
  | Protocol.Malformed msg ->
    (* Framing is gone — reply once, then drop the connection. *)
    reject t conn (err Protocol.Malformed_request msg)
  | Unix.Unix_error _ | Sys_error _ -> ()
  | _ -> ());
  on_conn_end t conn ~clean:!clean;
  Mutex.lock t.cmutex;
  t.live_conns <- List.filter (fun c -> c != conn) t.live_conns;
  Mutex.unlock t.cmutex;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ())

let accept_loop t =
  let stop = ref false in
  while not !stop do
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> stop := true
    | fd, _ ->
      Mutex.lock t.qmutex;
      let draining = t.draining in
      if not draining then begin
        t.c <- { t.c with connections = t.c.connections + 1 };
        Metrics.incr m_connections
      end;
      Mutex.unlock t.qmutex;
      if draining then begin
        (try Unix.close fd with Unix.Unix_error _ -> ());
        stop := true
      end
      else begin
        let conn = { fd; wmutex = Mutex.create (); alive = true } in
        Mutex.lock t.cmutex;
        t.live_conns <- conn :: t.live_conns;
        let th = Thread.create (fun () -> conn_loop t conn) () in
        t.conn_threads <- th :: t.conn_threads;
        Mutex.unlock t.cmutex
      end
  done

(* ------------------------------------------------------------------ *)
(* Artifact *)

let artifact_json t =
  let open Bench_json in
  let s = t.c in
  let reqs =
    List.rev_map
      (fun r ->
        Obj
          [
            ("id", Int r.r_id);
            ("bench", Str r.r_bench);
            ("policy", Str r.r_policy);
            ("status", Str r.r_status);
            ("queue_ms", Float r.r_queue_ms);
            ("exec_ms", Float r.r_exec_ms);
          ])
      t.records
  in
  let exec_lat = Latency.create () in
  List.iter
    (fun r -> if r.r_status = "ok" then Latency.add exec_lat r.r_exec_ms)
    t.records;
  Obj
    [
      ("schema_version", Int schema_version);
      ("kind", Str "serve");
      ("role", Str "server");
      ( "meta",
        Obj
          [
            ("socket", Str t.cfg.socket_path);
            ("threads", Int t.cfg.threads);
            ("policy", Str t.cfg.policy);
            ("max_queue", Int t.cfg.max_queue);
            ("scale_cap", Int t.cfg.scale_cap);
            ( "minor_heap_kb",
              match t.cfg.minor_heap_kb with Some kb -> Int kb | None -> Null );
            ("uptime_s", Float (Rpb_prim.Timing.now () -. t.started_at));
          ] );
      ( "counters",
        Obj
          [
            ("accepted", Int s.accepted);
            ("ok", Int s.ok);
            ("shed", Int s.shed);
            ("stalled", Int s.stalled);
            ("cancelled", Int s.cancelled);
            ("failed", Int s.failed);
            ("rejected", Int s.rejected);
            ("shutdown_replies", Int s.shutdown_replies);
            ("disconnects", Int s.disconnects);
            ("connections", Int s.connections);
            ("max_occupancy", Int s.max_occupancy);
          ] );
      ("ewma_service_ms", Float t.ewma_ms);
      ("exec_latency", Latency.(summary_to_json (summarize exec_lat)));
      ("requests", List reqs);
      ("slow_requests", List (List.rev t.slow_docs));
    ]

let write_artifact t =
  match t.cfg.json_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Bench_json.to_string (artifact_json t));
    output_char oc '\n';
    close_out oc;
    log t "wrote %s" path

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let preload_all t pool =
  List.iter
    (fun (bench, input, scale) ->
      match Registry.find bench with
      | None -> failwith (Printf.sprintf "preload: unknown bench %s" bench)
      | Some entry ->
        let input = resolve_input entry input in
        if not (List.mem input entry.Common.inputs) then
          failwith
            (Printf.sprintf "preload: unknown input %s for %s" input bench);
        let _key, _p = prepare_cached t pool entry ~input ~scale in
        log t "preloaded %s/%s scale=%d" bench input scale)
    t.cfg.preload

let start cfg =
  (* A peer closing mid-write must surface as EPIPE, not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  match Pool.Policy.find cfg.policy with
  | None -> Error (unknown_policy_msg cfg.policy)
  | Some policy -> (
    let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    try
      if Sys.file_exists cfg.socket_path then Unix.unlink cfg.socket_path;
      Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
      Unix.listen listen_fd 64;
      let pool =
        Pool.create ~name:"serve" ~policy ?minor_heap_kb:cfg.minor_heap_kb
          ~num_workers:cfg.threads ()
      in
      let slo_state =
        match cfg.slo with
        | None -> None
        | Some spec ->
          let params =
            {
              Slo.default_params with
              Slo.fast_s = cfg.slo_fast_s;
              slow_s = cfg.slo_slow_s;
            }
          in
          Some
            {
              engine = Slo.create ~params spec;
              g_overall = Metrics.gauge "slo.level";
              g_objs =
                List.map
                  (fun (name, _) ->
                    ( Metrics.gauge ("slo." ^ name ^ ".level"),
                      Metrics.gauge ("slo." ^ name ^ ".fast_burn"),
                      Metrics.gauge ("slo." ^ name ^ ".slow_burn"),
                      Metrics.gauge ("slo." ^ name ^ ".budget_remaining") ))
                  spec;
              last = [];
            }
      in
      if Option.is_some slo_state then Slo.reset_current ();
      let t =
        {
          cfg;
          listen_fd;
          started_at = Rpb_prim.Timing.now ();
          qmutex = Mutex.create ();
          qcond = Condition.create ();
          queue = Queue.create ();
          inflight = None;
          draining = false;
          ewma_ms = 5.0;
          c = zero_stats;
          records = [];
          n_records = 0;
          pmutex = Mutex.create ();
          pools = Hashtbl.create 8;
          prepared = Hashtbl.create 32;
          cmutex = Mutex.create ();
          conn_threads = [];
          live_conns = [];
          accept_thread = None;
          executor = None;
          smutex = Mutex.create ();
          stopped = false;
          mmutex = Mutex.create ();
          metrics_oc = None;
          metrics_thread = None;
          metrics_stop = Atomic.make false;
          slow_docs = [];
          n_slow = 0;
          slo = slo_state;
        }
      in
      Hashtbl.replace t.pools cfg.policy pool;
      (* The serving layer always runs with the metrics plane on: that is
         its whole observability story ([stats] verb, [rpb top], slow-request
         log).  Batch/bench paths leave it off and pay one atomic load. *)
      Metrics.enable ();
      Metrics.register_pool pool;
      ignore (Metrics.sample_gc_pauses ());
      Metrics.probe "serve.occupancy" (fun () ->
          Mutex.lock t.qmutex;
          let o =
            Queue.length t.queue
            + (match t.inflight with Some _ -> 1 | None -> 0)
          in
          Mutex.unlock t.qmutex;
          float_of_int o);
      Metrics.probe "serve.queue_depth" (fun () ->
          Mutex.lock t.qmutex;
          let n = Queue.length t.queue in
          Mutex.unlock t.qmutex;
          float_of_int n);
      Metrics.probe "serve.connections_live" (fun () ->
          Mutex.lock t.cmutex;
          let n = List.length t.live_conns in
          Mutex.unlock t.cmutex;
          float_of_int n);
      preload_all t pool;
      (match cfg.metrics_path with
      | Some path ->
        let oc = open_out path in
        t.metrics_oc <- Some oc;
        Mutex.lock t.mmutex;
        Metrics.write_snapshot_line oc;
        Mutex.unlock t.mmutex
      | None -> ());
      (* One sampler thread serves both periodic consumers: the SLO
         evaluation and the JSONL stream.  Either alone still needs the
         thread; neither means no thread at all. *)
      if Option.is_some t.metrics_oc || Option.is_some t.slo then
        t.metrics_thread <-
          Some
            (Thread.create
               (fun () ->
                 while not (Atomic.get t.metrics_stop) do
                   Unix.sleepf cfg.metrics_interval_s;
                   slo_tick t;
                   Mutex.lock t.mmutex;
                   (match t.metrics_oc with
                   | Some oc -> (
                     try Metrics.write_snapshot_line oc with Sys_error _ -> ())
                   | None -> ());
                   Mutex.unlock t.mmutex
                 done)
               ());
      t.executor <- Some (Domain.spawn (fun () -> executor_loop t));
      t.accept_thread <- Some (Thread.create accept_loop t);
      log t "listening on %s (threads=%d policy=%s max_queue=%d)"
        cfg.socket_path cfg.threads cfg.policy cfg.max_queue;
      Ok t
    with e ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      Error (Printexc.to_string e))

(* Wake a blocked [accept] — closing the fd from another thread does not
   interrupt it on Linux. *)
let nudge_accept t =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX t.cfg.socket_path)
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let stop t =
  Mutex.lock t.smutex;
  if not t.stopped then begin
    Mutex.lock t.qmutex;
    t.draining <- true;
    Condition.broadcast t.qcond;
    Mutex.unlock t.qmutex;
    log t "draining";
    nudge_accept t;
    Option.iter Thread.join t.accept_thread;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
    (* Give the in-flight request [drain_grace_s] to finish, then cancel it
       cooperatively on the shared timer wheel. *)
    let grace =
      Pool.Timer.schedule ~delay_s:t.cfg.drain_grace_s (fun () ->
          Mutex.lock t.qmutex;
          (match t.inflight with
          | Some (j, pool) ->
            Atomic.set j.jcancelled true;
            Pool.cancel_run pool Pool.Cancelled
          | None -> ());
          Mutex.unlock t.qmutex)
    in
    Option.iter Domain.join t.executor;
    Pool.Timer.cancel grace;
    (* Unblock connection readers (close alone does not wake them), then
       join; each reader owns its fd's close. *)
    Mutex.lock t.cmutex;
    List.iter
      (fun c ->
        try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      t.live_conns;
    let threads = t.conn_threads in
    Mutex.unlock t.cmutex;
    List.iter Thread.join threads;
    (* Final metrics snapshot, then retire the JSONL stream. *)
    Atomic.set t.metrics_stop true;
    Option.iter Thread.join t.metrics_thread;
    t.metrics_thread <- None;
    (* Release the admission register so later servers (or tests) in this
       process start from Ok. *)
    if Option.is_some t.slo then Slo.reset_current ();
    Mutex.lock t.mmutex;
    (match t.metrics_oc with
    | Some oc ->
      (try
         Metrics.write_snapshot_line oc;
         close_out oc
       with Sys_error _ -> ());
      t.metrics_oc <- None
    | None -> ());
    Mutex.unlock t.mmutex;
    write_artifact t;
    Mutex.lock t.pmutex;
    Hashtbl.iter (fun _ p -> Pool.shutdown p) t.pools;
    Hashtbl.reset t.pools;
    Mutex.unlock t.pmutex;
    (* The shared timer wheel spawned its domain for our deadlines and the
       drain-grace timer; retire it with the server so a drained process
       holds no background domain. *)
    Pool.Timer.shutdown ();
    t.stopped <- true;
    log t "stopped (ok=%d shed=%d stalled=%d cancelled=%d failed=%d)" t.c.ok
      t.c.shed t.c.stalled t.c.cancelled t.c.failed
  end;
  Mutex.unlock t.smutex
