(** The [rpb serve] request server: one process owning shared work-stealing
    pools, serving {!Protocol} jobs over a Unix-domain socket.

    {2 Architecture}

    One {e accept} systhread plus one systhread per connection parse frames
    and run admission control; a single {e executor} domain owns all
    [Pool.run] calls (pools must not be entered from two threads at once,
    and systhreads of one domain share the pool's DLS slot).  Each request
    executes inside its own cancellation scope with its own optional
    deadline — a stalled or cancelled request replies with a structured
    error and leaves the pools reusable.

    {2 Admission control}

    The queue is bounded: when [queued + in-flight >= max_queue] a request
    is shed immediately with {!Protocol.Overloaded} and a [retry_after_ms]
    hint derived from an EWMA of recent service times scaled by the queue
    depth.  Malformed or unresolvable requests are rejected without
    occupying a queue slot.

    With [slo] set, admission is {e budget-aware}: the SLO engine's
    current level ({!Rpb_obs.Slo.current_level}, one atomic load) tightens
    the effective cap to [max_queue / 2] on [Warn] and [max_queue / 4] on
    [Page] (never below 1) and scales the [retry_after_ms] hint by 2x/4x
    (clamped to 30 s) — the server sheds harder and pushes clients further
    out while the budget burns, and restores automatically once the
    engine's hysteresis steps the level back down.

    {2 Cancellation and drain}

    A client disconnecting cancels its queued jobs and cooperatively
    cancels its in-flight run ({!Rpb_pool.Pool.cancel_run}).  {!stop}
    drains gracefully: stop accepting, reply [shutdown] to queued
    requests, let the in-flight request finish within [drain_grace_s]
    (cancelling it when the grace timer — on the shared
    {!Rpb_pool.Pool.Timer} wheel — fires first), then join every thread,
    write the [kind="serve"] artifact, and shut the pools down (including
    the shared timer wheel, via {!Rpb_pool.Pool.Timer.shutdown}).  No
    failure mode (faults, stalls, disconnects, floods of garbage bytes)
    may kill the process or poison a pool.

    {2 Live metrics}

    {!start} enables the process-global {!Rpb_obs.Metrics} plane and
    registers every pool's scheduler gauges.  Request handling feeds
    [serve.*] counters and queue/exec/total latency histograms; the
    [verb=stats] protocol request replies with a point-in-time
    [kind="metrics"] snapshot (served even while draining), which is what
    [rpb top] renders.  With [metrics_path] set, a sampler thread appends
    one snapshot per [metrics_interval_s] to a JSONL file — the
    [kind="metrics"] lines feed the report dashboard's time-series
    section.  With [slow_log > 0], every request runs under a private
    flight-recorder session and requests whose exec time clears the
    [slow_pctl] percentile of the exec histogram (threshold frozen before
    the run; never before 32 samples) are reduced by
    {!Rpb_obs.Sp_dag.analyze} to PROFILE-compatible documents, kept in the
    artifact's [slow_requests] and streamed into the JSONL.

    {2 SLOs and the health plane}

    With [slo] set, the sampler thread also evaluates the objectives each
    interval ({!Rpb_obs.Slo.feed_snapshot} over a fresh snapshot): the
    per-objective verdicts are exported as [slo.*] gauges (level, fast and
    slow burn, budget remaining — visible to [rpb top] and the JSONL
    stream), the overall level is published to the global admission
    register, and the [verb=health] protocol request (admission-bypassing,
    like [stats]) replies with the [kind="health"] document.  The fast and
    slow burn windows come from [slo_fast_s]/[slo_slow_s], so tests and
    smoke jobs scale the 1-min/1-hour production windows down to
    seconds. *)

type config = {
  socket_path : string;
  threads : int;  (** workers per pool *)
  policy : string;  (** pool policy for requests with [policy=default] *)
  max_queue : int;  (** admission bound on queued + in-flight requests *)
  drain_grace_s : float;  (** how long {!stop} lets the in-flight run finish *)
  scale_cap : int;  (** requests with a larger [scale] are rejected *)
  preload : (string * string option * int) list;
      (** [(bench, input, scale)] instances prepared at startup so first
          requests don't pay input generation *)
  json_path : string option;  (** where {!stop} writes the serve artifact *)
  quiet : bool;
  minor_heap_kb : int option;
      (** per-worker-domain minor heap size for every pool the server
          creates; stamped into the artifact's [meta] *)
  metrics_path : string option;
      (** append one [kind="metrics"] snapshot per interval as JSONL *)
  metrics_interval_s : float;  (** sampler period (default 1.0) *)
  slow_log : int;
      (** keep at most this many slow-request profiles (0 disables) *)
  slow_pctl : float;
      (** exec-time percentile a request must clear to be logged as slow *)
  slo : Rpb_obs.Slo.spec option;
      (** objectives evaluated on the sampler thread; [None] disables the
          SLO engine entirely (admission then never tightens) *)
  slo_fast_s : float;  (** fast burn window, seconds (default 60) *)
  slo_slow_s : float;  (** slow burn window, seconds (default 3600) *)
}

val default_config : socket_path:string -> config
(** [threads = Domain.recommended_domain_count () - 1] (min 1),
    [policy = "default"], [max_queue = 16], [drain_grace_s = 2.0],
    [scale_cap = 6], no preload, no artifact, not quiet, no
    [minor_heap_kb], no metrics JSONL, [metrics_interval_s = 1.0],
    [slow_log = 8], [slow_pctl = 99.0], no SLO, 60 s / 3600 s burn
    windows. *)

type stats = {
  accepted : int;  (** requests admitted to the queue *)
  ok : int;
  shed : int;  (** replied [overloaded] *)
  stalled : int;  (** per-request deadline fired *)
  cancelled : int;  (** cancelled by disconnect (incl. unsent replies) *)
  failed : int;  (** job raised, or verification failed *)
  rejected : int;  (** malformed / unknown bench / unknown policy / capped *)
  shutdown_replies : int;  (** queued requests replied [shutdown] at drain *)
  disconnects : int;
      (** connections that ended with a transport error, or with requests
          still outstanding (their work was cancelled) *)
  connections : int;
  max_occupancy : int;  (** high-water mark of queued + in-flight *)
}

type t

val start : config -> (t, string) result
(** Bind and listen on [socket_path] (any stale socket file is replaced),
    create the default-policy pool, prepare the preloads, and launch the
    accept thread and the executor domain.  [Error msg] if the socket can't
    be bound or the default policy name is unknown. *)

val stop : t -> unit
(** Graceful drain as described above.  Idempotent; blocks until every
    thread and domain has been joined and the artifact (if any) written. *)

val stats : t -> stats
(** A consistent snapshot (taken under the queue lock). *)

val socket_path : t -> string
