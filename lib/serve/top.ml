(* The rpb top client.  See top.mli; everything here is read-only against
   the server (stats requests bypass admission), so running top against a
   loaded server perturbs nothing but one connection systhread. *)

module J = Rpb_benchmarks.Bench_json
module Metrics = Rpb_obs.Metrics

type hist = { count : int; sum_ns : int; max_ms : float; buckets : int array }

type snap = {
  seq : int;
  ts_s : float;
  uptime_s : float;
  counters : (string * int) list;
  gauges : (string * float) list;
  hists : (string * hist) list;
}

(* ------------------------------------------------------------------ *)
(* Parsing *)

let parse_hist j =
  let buckets = Array.make 64 0 in
  List.iter
    (fun pair ->
      match J.get_list pair with
      | [ b; n ] ->
        let b = J.get_int b in
        if b >= 0 && b < 64 then buckets.(b) <- J.get_int n
      | _ -> raise (J.Parse_error "bad bucket pair"))
    (J.get_list (J.member "buckets" j));
  {
    count = J.get_int (J.member "count" j);
    sum_ns = J.get_int (J.member "sum_ns" j);
    max_ms = J.get_float (J.member "max_ms" j);
    buckets;
  }

let obj_fields j =
  match j with
  | J.Obj fields -> fields
  | _ -> raise (J.Parse_error "expected object")

let parse_snapshot j =
  try
    if J.get_str (J.member "kind" j) <> "metrics" then
      Error "not a kind=metrics document"
    else
      Ok
        {
          seq = J.get_int (J.member "seq" j);
          ts_s = J.get_float (J.member "ts_s" j);
          uptime_s = J.get_float (J.member "uptime_s" j);
          counters =
            List.map
              (fun (k, v) -> (k, J.get_int v))
              (obj_fields (J.member "counters" j));
          gauges =
            List.filter_map
              (fun (k, v) ->
                match v with J.Null -> None | v -> Some (k, J.get_float v))
              (obj_fields (J.member "gauges" j));
          hists =
            List.map
              (fun (k, v) -> (k, parse_hist v))
              (obj_fields (J.member "histograms" j));
        }
  with J.Parse_error msg -> Error ("bad snapshot: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Fetch *)

let round_trip ?(retries = 0) ~socket_path req parse =
  let rec connect attempt =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if attempt < retries then begin
        (try Unix.sleepf 0.2 with Unix.Unix_error _ -> ());
        connect (attempt + 1)
      end
      else Error (Printf.sprintf "connect %s: %s" socket_path (Unix.error_message e))
  in
  match connect 0 with
  | Error _ as e -> e
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        try
          Protocol.write_frame fd (Protocol.request_line req);
          let r = Protocol.reader fd in
          match Protocol.read_frame r with
          | None -> Error "server closed the connection before replying"
          | Some payload -> parse (J.of_string payload)
        with
        | Protocol.Malformed msg -> Error ("bad frame: " ^ msg)
        | J.Parse_error msg -> Error ("bad snapshot JSON: " ^ msg)
        | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))

let fetch ?retries ~socket_path () =
  round_trip ?retries ~socket_path (Protocol.stats_request ~id:0) parse_snapshot

let fetch_health ?retries ~socket_path () =
  round_trip ?retries ~socket_path (Protocol.health_request ~id:0) Result.ok

(* ------------------------------------------------------------------ *)
(* Lookups and deltas *)

let counter_of s name =
  Option.value (List.assoc_opt name s.counters) ~default:0

let gauge_of s name = List.assoc_opt name s.gauges
let hist_of s name = List.assoc_opt name s.hists

(* A server restart resets the whole metrics plane: uptime and seq start
   over, counters drop back toward zero.  A client that keeps its old
   snapshot as the delta baseline would print negative throughput, so
   cross-snapshot consumers treat a restarted predecessor as no
   predecessor at all and re-baseline from the fresh snapshot. *)
let restarted ~prev cur =
  match prev with
  | None -> false
  | Some p -> cur.uptime_s < p.uptime_s || cur.seq < p.seq

(* Per-second rate of a counter between two snapshots; None without a
   (same-incarnation) predecessor or when the clock did not advance.
   Clamped at 0 — a rate is never negative even if a counter glitches. *)
let rate ~prev cur name =
  match prev with
  | None -> None
  | Some p ->
    if restarted ~prev cur then None
    else
      let dt = cur.ts_s -. p.ts_s in
      if dt <= 0. then None
      else
        Some
          (Float.max 0.
             (float_of_int (counter_of cur name - counter_of p name) /. dt))

(* ------------------------------------------------------------------ *)
(* Rendering *)

let pct h q = Metrics.percentile_of_buckets_ms h.buckets q

let fmt_rate = function
  | None -> "   -  "
  | Some r -> Printf.sprintf "%6.1f" r

let render ?prev s =
  let b = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  Buffer.add_string b "\027[2J\027[H";
  line "rpb top — seq %d, uptime %.1fs" s.seq s.uptime_s;
  line "";
  let ok = counter_of s "serve.ok" in
  line "requests   ok %-8d shed %-6d rejected %-6d stalled %-5d cancelled %-5d failed %-5d"
    ok
    (counter_of s "serve.shed")
    (counter_of s "serve.rejected")
    (counter_of s "serve.stalled")
    (counter_of s "serve.cancelled")
    (counter_of s "serve.failed");
  line "throughput %s ok/s   %s accepted/s   conns %d live, %d total"
    (fmt_rate (rate ~prev s "serve.ok"))
    (fmt_rate (rate ~prev s "serve.accepted"))
    (match gauge_of s "serve.connections_live" with
     | Some v -> int_of_float v
     | None -> 0)
    (counter_of s "serve.connections");
  (match gauge_of s "serve.occupancy" with
  | Some occ ->
    line "queue      occupancy %.0f   ewma service %.2f ms" occ
      (Option.value (gauge_of s "serve.ewma_service_ms") ~default:0.)
  | None -> ());
  line "";
  line "latency (ms)      count      p50      p95      p99      max";
  List.iter
    (fun name ->
      match hist_of s name with
      | None -> ()
      | Some h ->
        line "%-16s %6d %8.2f %8.2f %8.2f %8.2f" name h.count (pct h 50.)
          (pct h 95.) (pct h 99.) h.max_ms)
    [ "serve.queue_ms"; "serve.exec_ms"; "serve.total_ms" ];
  line "";
  (match gauge_of s "pool.workers" with
  | Some w ->
    line "pool       workers %.0f   deque depth %.0f (max %.0f)   timers %.0f" w
      (Option.value (gauge_of s "pool.deque_depth_total") ~default:0.)
      (Option.value (gauge_of s "pool.deque_depth_max") ~default:0.)
      (Option.value (gauge_of s "pool.timer_pending") ~default:0.);
    (* Pool totals are exported as probes (gauges), so their rates need the
       gauge values, not counters. *)
    let grate name =
      match (prev, gauge_of s name) with
      | Some p, Some cur_v when not (restarted ~prev s) -> (
        match gauge_of p name with
        | Some prev_v when s.ts_s > p.ts_s ->
          Some (Float.max 0. ((cur_v -. prev_v) /. (s.ts_s -. p.ts_s)))
        | _ -> None)
      | _ -> None
    in
    line "           tasks/s %s   steals/s %s   failed steals/s %s"
      (fmt_rate (grate "pool.tasks"))
      (fmt_rate (grate "pool.steals_ok"))
      (fmt_rate (grate "pool.steals_failed"))
  | None -> ());
  (match (hist_of s "gc.minor_pause_ns", hist_of s "gc.major_slice_ns") with
  | None, None -> ()
  | minor, major ->
    let part label = function
      | Some h when h.count > 0 ->
        Printf.sprintf "%s p99 %.3f ms (n=%d)" label (pct h 99.) h.count
      | _ -> Printf.sprintf "%s -" label
    in
    line "gc         %s   %s   minors %.0f" (part "minor" minor)
      (part "major-slice" major)
      (Option.value (gauge_of s "pool.gc_minor_collections") ~default:0.));
  (* SLO panel: present only when the server runs with --slo.  Objective
     names are recovered from the slo.<name>.level gauge family. *)
  let slo_objectives =
    List.filter_map
      (fun (k, _) ->
        if String.length k > 10
           && String.sub k 0 4 = "slo."
           && String.sub k (String.length k - 6) 6 = ".level"
        then Some (String.sub k 4 (String.length k - 10))
        else None)
      s.gauges
  in
  (match gauge_of s "slo.level" with
  | Some lvl when slo_objectives <> [] ->
    line "";
    line "slo        overall %s"
      (Rpb_obs.Slo.status_name
         (Rpb_obs.Slo.level_of_index (int_of_float lvl)));
    line "           %-28s %-6s %10s %10s %8s" "objective" "level" "fast burn"
      "slow burn" "budget";
    List.iter
      (fun name ->
        let g suffix =
          Option.value (gauge_of s ("slo." ^ name ^ suffix)) ~default:0.
        in
        line "           %-28s %-6s %10.2f %10.2f %7.0f%%" name
          (Rpb_obs.Slo.level_name
             (Rpb_obs.Slo.level_of_index (int_of_float (g ".level"))))
          (g ".fast_burn") (g ".slow_burn")
          (100. *. g ".budget_remaining"))
      slo_objectives
  | _ -> ());
  let slow = counter_of s "serve.slow_logged" in
  if slow > 0 then line "slow log   %d request profile(s) captured" slow;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* --check invariants *)

let check_invariants ~prev s =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let ( let* ) r f = Result.bind r f in
  (* A restart legitimately resets every counter and the seq, so the
     cross-snapshot invariants only apply within one server incarnation. *)
  let prev = if restarted ~prev s then None else prev in
  (* Counters are monotone across snapshots. *)
  let* () =
    match prev with
    | None -> Ok ()
    | Some p ->
      List.fold_left
        (fun acc (name, v) ->
          let* () = acc in
          let was = counter_of p name in
          if v < was then
            fail "counter %s went backwards (%d -> %d)" name was v
          else Ok ())
        (Ok ()) s.counters
  in
  let* () =
    match prev with
    | Some p when s.seq <= p.seq -> fail "seq did not advance (%d -> %d)" p.seq s.seq
    | _ -> Ok ()
  in
  (* Histogram totals reconcile with the terminal-status counters.  The
     exec/total histograms sample only ok requests; the queue histogram
     samples every executor-terminal request.  The executor observes the
     histogram immediately before bumping the counter without a lock a
     stats snapshot would take, so against a *live* server a snapshot may
     catch the single in-flight request between the two writes: each
     histogram total is allowed to lead its counter sum by at most one,
     and never to trail it. *)
  let hcount name =
    match hist_of s name with Some h -> h.count | None -> 0
  in
  let reconcile hname hc csum cdesc =
    if hc < csum || hc > csum + 1 then
      fail "%s count %d does not reconcile with %s %d" hname hc cdesc csum
    else Ok ()
  in
  let ok = counter_of s "serve.ok" in
  let* () = reconcile "serve.exec_ms" (hcount "serve.exec_ms") ok "serve.ok" in
  let* () =
    reconcile "serve.total_ms" (hcount "serve.total_ms") ok "serve.ok"
  in
  let executor_terminal =
    ok
    + counter_of s "serve.stalled"
    + counter_of s "serve.cancelled"
    + counter_of s "serve.failed"
  in
  let* () =
    reconcile "serve.queue_ms"
      (hcount "serve.queue_ms")
      executor_terminal "ok+stalled+cancelled+failed"
  in
  (* A histogram's bucket counts must sum to its count slot. *)
  let* () =
    List.fold_left
      (fun acc (name, h) ->
        let* () = acc in
        let total = Array.fold_left ( + ) 0 h.buckets in
        if total <> h.count then
          fail "histogram %s buckets sum to %d, count says %d" name total
            h.count
        else Ok ())
      (Ok ()) s.hists
  in
  (* SLO gauges, when exported, carry a valid level encoding and
     non-negative burn rates. *)
  List.fold_left
    (fun acc (name, v) ->
      let* () = acc in
      let has_suffix suf =
        String.length name >= String.length suf
        && String.sub name
             (String.length name - String.length suf)
             (String.length suf)
           = suf
      in
      if String.length name >= 4 && String.sub name 0 4 = "slo." then
        if has_suffix ".level" || name = "slo.level" then
          if v <> 0. && v <> 1. && v <> 2. then
            fail "gauge %s is not a level encoding (%g)" name v
          else Ok ()
        else if has_suffix ".fast_burn" || has_suffix ".slow_burn" then
          if v < 0. then fail "gauge %s is a negative burn rate (%g)" name v
          else Ok ()
        else Ok ()
      else Ok ())
    (Ok ()) s.gauges

(* ------------------------------------------------------------------ *)
(* Entry point *)

let run ~socket_path ~interval_s ~iterations ~check =
  let exit_ok = 0 and exit_usage = 2 and exit_violation = 4 in
  let prev = ref None in
  let code = ref exit_ok in
  let stop = ref false in
  let i = ref 0 in
  while not !stop do
    (match fetch ~retries:(if !i = 0 then 25 else 0) ~socket_path () with
    | Error msg ->
      (* A vanished server ends a watch loop quietly mid-stream, but a
         first fetch that never succeeds is a usage error. *)
      if !i = 0 || check then begin
        Printf.eprintf "top: %s\n" msg;
        code := exit_usage
      end;
      stop := true
    | Ok s ->
      if check then begin
        match check_invariants ~prev:!prev s with
        | Ok () ->
          Printf.printf "top: seq %d ok (%d counters, %d histograms)\n" s.seq
            (List.length s.counters) (List.length s.hists)
        | Error msg ->
          Printf.eprintf "top: invariant violated: %s\n" msg;
          code := exit_violation;
          stop := true
      end
      else print_string (render ?prev:!prev s);
      flush stdout;
      prev := Some s);
    Stdlib.incr i;
    if (iterations > 0 && !i >= iterations) || !stop then stop := true
    else try Unix.sleepf interval_s with Unix.Unix_error _ -> ()
  done;
  !code
