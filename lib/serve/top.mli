(** The [rpb top] client: a refreshing terminal view over a live server's
    metrics plane.

    Each refresh opens (or reuses) a connection to the server's socket,
    sends a [verb=stats] request ({!Protocol.stats_request}), and parses
    the [kind="metrics"] snapshot reply into {!snap}.  Rates (throughput,
    steal rate, GC churn) come from deltas between consecutive snapshots;
    percentiles are recomputed client-side from the histogram buckets with
    {!Rpb_obs.Metrics.percentile_of_buckets_ms} — the snapshot's own
    [p50_ms]/[p95_ms]/[p99_ms] fields are server-side conveniences, and
    recomputing exercises the same bucket math both ends.

    A server restart mid-watch resets the metrics plane ([uptime_s] and
    [seq] start over, counters drop).  Delta-based consumers detect the
    reset and {e re-baseline}: rates render as "-" for one refresh instead
    of going negative, and [--check]'s cross-snapshot assertions restart
    from the fresh incarnation.

    [--check] mode replaces the display with snapshot-invariant assertions
    (the CI metrics-smoke contract): every counter is monotone across
    consecutive snapshots, [serve.exec_ms].count reconciles with the
    [serve.ok] counter, and [serve.queue_ms].count with the sum of
    executor-terminal counters.  Reconciliation allows a histogram total
    to lead its counters by at most the one in-flight request (the
    executor observes the histogram, then bumps the counter; a snapshot
    may land between), and never to trail them.  When the server exports
    [slo.*] gauges, [--check] also asserts every level gauge is a valid
    [0|1|2] encoding and every burn-rate gauge is non-negative. *)

type hist = {
  count : int;
  sum_ns : int;
  max_ms : float;
  buckets : int array;  (** 64 merged log2 buckets *)
}

type snap = {
  seq : int;
  ts_s : float;
  uptime_s : float;
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;  (** sorted; probes included *)
  hists : (string * hist) list;  (** sorted *)
}

val parse_snapshot : Rpb_benchmarks.Bench_json.json -> (snap, string) result

val fetch : ?retries:int -> socket_path:string -> unit -> (snap, string) result
(** One round-trip: connect, [stats], parse.  [retries] (default 0)
    re-attempts the connect at 200 ms intervals, for racing a server that
    is still binding its socket. *)

val fetch_health :
  ?retries:int ->
  socket_path:string ->
  unit ->
  (Rpb_benchmarks.Bench_json.json, string) result
(** One [verb=health] round-trip: the raw [kind="health"] document
    ({!Rpb_obs.Slo.health_json}) — what [rpb slo --socket] polls. *)

val render : ?prev:snap -> snap -> string
(** The full-screen view (ANSI clear + cursor home prefix). *)

val check_invariants : prev:snap option -> snap -> (unit, string) result
(** The --check assertions for one snapshot (monotonicity needs [prev]). *)

val run :
  socket_path:string ->
  interval_s:float ->
  iterations:int ->
  check:bool ->
  int
(** The [rpb top] entry point; returns the process exit code (0 ok, 2 when
    the server can't be reached or replies garbage, 4 when [check] finds a
    violated invariant).  [iterations <= 0] refreshes until the server
    goes away. *)
