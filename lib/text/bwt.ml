open Rpb_pool

exception Contains_sentinel

let encode pool s =
  String.iter (fun c -> if c = '\000' then raise Contains_sentinel) s;
  let t = s ^ "\000" in
  let n = String.length t in
  let sa = Suffix_array.build pool t in
  (* With a unique minimal sentinel, suffix order equals rotation order, and
     the last column is the character preceding each suffix. *)
  let out = Bytes.create n in
  Pool.parallel_for ~start:0 ~finish:n
    ~body:(fun i ->
      let p = sa.(i) in
      Bytes.unsafe_set out i (if p = 0 then t.[n - 1] else t.[p - 1]))
    pool;
  Bytes.unsafe_to_string out

let lf_mapping ?(checked = false) pool bwt =
  let n = String.length bwt in
  let keys = Rpb_core.Par_array.init pool n (fun i -> Char.code bwt.[i]) in
  (* Stable counting rank: row i's character lands at C[c] + occ(c, i),
     which is exactly LF(i). *)
  let lf = Rpb_parseq.Radix.rank_by_key pool ~keys ~buckets:256 in
  if checked then
    (* The ranks are a permutation by construction; the checked build
       validates that at run time (comfort, with overhead). *)
    Rpb_core.Scatter.validate_offsets pool ~n lf;
  lf

let decode_parallel ?checked pool bwt =
  let n = String.length bwt in
  if n = 0 then ""
  else begin
    if not (String.contains bwt '\000') then
      invalid_arg "Bwt.decode_parallel: input has no sentinel";
    let lf = lf_mapping ?checked pool bwt in
    (* The LF chain visited by the sequential decode is row 0, lf(0),
       lf(lf(0)), ...; position t in that walk writes output cell n-2-t. *)
    let pos = Rpb_parseq.List_ranking.rank_cycle pool ~next:lf ~start:0 in
    let out = Bytes.create (n - 1) in
    Rpb_pool.Pool.parallel_for ~start:0 ~finish:n
      ~body:(fun row ->
        let t = pos.(row) in
        if t <= n - 2 then Bytes.unsafe_set out (n - 2 - t) bwt.[row])
      pool;
    Bytes.unsafe_to_string out
  end

let distinct_chars mode pool s =
  let n = String.length s in
  match mode with
  | `Racy ->
    (* All racing writers store the same byte; any winner is correct.  The
       paper's point: nothing at the language level guarantees this stays
       benign under compilation. *)
    let present = Bytes.make 256 '\000' in
    Pool.parallel_for ~start:0 ~finish:n
      ~body:(fun i -> Bytes.unsafe_set present (Char.code s.[i]) '\001')
      pool;
    Array.init 256 (fun c -> Bytes.get present c = '\001')
  | `Atomic ->
    let present = Rpb_prim.Atomic_array.make 256 0 in
    Pool.parallel_for ~start:0 ~finish:n
      ~body:(fun i -> Rpb_prim.Atomic_array.set present (Char.code s.[i]) 1)
      pool;
    Array.init 256 (fun c -> Rpb_prim.Atomic_array.get present c = 1)

let decode ?checked pool bwt =
  let n = String.length bwt in
  if n = 0 then ""
  else begin
    if not (String.contains bwt '\000') then
      invalid_arg "Bwt.decode: input has no sentinel";
    let lf = lf_mapping ?checked pool bwt in
    let out = Bytes.create (n - 1) in
    (* Walk the cycle backwards from the sentinel-first row (row 0). *)
    let row = ref 0 in
    for k = n - 2 downto 0 do
      Bytes.unsafe_set out k bwt.[!row];
      row := lf.(!row)
    done;
    Bytes.unsafe_to_string out
  end
