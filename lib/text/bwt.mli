(** Burrows–Wheeler transform — the paper's [bw] benchmark is the decoder.

    Encoding appends a unique sentinel (byte 0) and reads the last column of
    the sorted rotations off the suffix array.  Decoding builds the LF
    mapping with one parallel stable counting-rank pass (a SngInd phase: the
    rank scatter is unique by construction) and then walks the cycle — an
    inherently sequential pointer chase, as in PBBS. *)

open Rpb_pool

exception Contains_sentinel
(** Raised by {!encode} if the input already contains byte 0. *)

val encode : Pool.t -> string -> string
(** [encode pool s] returns the BWT of [s ^ "\x00"] (length [|s| + 1],
    containing exactly one 0 byte). *)

val decode : ?checked:bool -> Pool.t -> string -> string
(** Invert {!encode}.  [checked] (default false) routes the LF scatter
    through the validating scatter — the Fig. 5(a) switch for bw.  Raises
    [Invalid_argument] if the input has no sentinel byte. *)

val lf_mapping : ?checked:bool -> Pool.t -> string -> int array
(** The LF mapping of a BWT string (exposed for tests and benches): [lf.(i)]
    is the row preceding row [i] in the original text order. *)

val decode_parallel : ?checked:bool -> Pool.t -> string -> string
(** Like {!decode}, but the pointer chase is replaced by parallel list
    ranking over the LF cycle (Wyllie pointer jumping) followed by an
    indirect scatter — PBBS's fully-parallel decode.  O(n log n) work
    instead of O(n), so it only wins with enough cores; it exists to
    complete the bw benchmark's parallelism story and for the ablation
    bench. *)

val distinct_chars : [ `Racy | `Atomic ] -> Pool.t -> string -> bool array
(** The paper's Sec. 5.2 "benign race" example from the suffix-array code:
    mark which byte values occur in the string, every task writing the same
    value [true].  [`Racy] uses plain stores (what the C++ code did — rustc
    rejects it); [`Atomic] uses atomic stores (the sanctioned fix).  Both
    return the same answer here, which is exactly what makes the race look
    benign — and why it is a trap at the language level. *)
