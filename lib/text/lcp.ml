open Rpb_pool

let kasai pool s ~sa =
  let n = String.length s in
  if Array.length sa <> n then invalid_arg "Lcp.kasai: sa length mismatch";
  let rank = Suffix_array.rank_of pool sa in
  let lcp = Array.make n 0 in
  let h = ref 0 in
  for i = 0 to n - 1 do
    if rank.(i) > 0 then begin
      let j = sa.(rank.(i) - 1) in
      while i + !h < n && j + !h < n && s.[i + !h] = s.[j + !h] do
        incr h
      done;
      lcp.(rank.(i)) <- !h;
      if !h > 0 then decr h
    end
    else h := 0
  done;
  lcp

type lrs_result = { length : int; position : int }

let longest_repeated_substring ?mode pool s =
  let n = String.length s in
  if n < 2 then { length = 0; position = 0 }
  else begin
    let sa = Suffix_array.build ?mode pool s in
    let lcp = kasai pool s ~sa in
    let best =
      Pool.parallel_for_reduce ~start:1 ~finish:n
        ~body:(fun j -> (lcp.(j), sa.(j)))
        ~combine:(fun (l1, p1) (l2, p2) ->
          if l1 > l2 || (l1 = l2 && p1 <= p2) then (l1, p1) else (l2, p2))
        ~init:(0, 0) pool
    in
    { length = fst best; position = snd best }
  end

let lrs_naive s =
  let n = String.length s in
  let common i j =
    let k = ref 0 in
    while i + !k < n && j + !k < n && s.[i + !k] = s.[j + !k] do
      incr k
    done;
    !k
  in
  let best = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      best := max !best (common i j)
    done
  done;
  !best
