(** Longest-common-prefix arrays (Kasai et al.) and the longest repeated
    substring — the paper's [lrs] benchmark.

    Kasai's pass is an amortized-O(n) pointer walk with a carried [h]
    counter, so it runs sequentially; everything around it (rank inversion,
    the max-reduction) is parallel. *)

open Rpb_pool

val kasai : Pool.t -> string -> sa:int array -> int array
(** [lcp.(j)] is the length of the longest common prefix of the suffixes at
    [sa.(j - 1)] and [sa.(j)]; [lcp.(0) = 0]. *)

type lrs_result = { length : int; position : int }
(** The longest substring occurring at least twice, and one of its start
    positions. *)

val longest_repeated_substring :
  ?mode:Suffix_array.scatter_mode -> Pool.t -> string -> lrs_result
(** Suffix array + LCP + parallel arg-max.  [mode] selects the checked or
    unchecked scatter inside the suffix-array rounds (Fig. 5a switch). *)

val lrs_naive : string -> int
(** Quadratic reference for small tests: length of the longest repeated
    substring. *)
