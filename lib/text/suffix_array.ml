open Rpb_pool

type scatter_mode = Unchecked_scatter | Checked_scatter

(* Stably permute [a] so that it is ordered by [key a_i] (small ints in
   [0, buckets)), using the parallel counting rank.  The application of the
   rank is itself a SngInd write through [dest]; in checked mode it is
   validated like every other indirect write (the paper checks every
   par_ind_iter_mut instance). *)
let stable_order_by ?(checked = false) pool ~buckets ~key a =
  let n = Array.length a in
  let keys = Rpb_core.Par_array.init pool n (fun i -> key a.(i)) in
  let dest = Rpb_parseq.Radix.rank_by_key pool ~keys ~buckets in
  if checked then Rpb_core.Scatter.validate_offsets pool ~n dest;
  let out = Array.make n 0 in
  Pool.parallel_for ~start:0 ~finish:n
    ~body:(fun i -> Array.unsafe_set out (Array.unsafe_get dest i) (Array.unsafe_get a i))
    pool;
  out

let build ?(mode = Unchecked_scatter) pool s =
  let n = String.length s in
  if n = 0 then [||]
  else if n = 1 then [| 0 |]
  else begin
    let checked = mode = Checked_scatter in
    (* Round 0: order suffixes by first character and densify ranks into
       [0, n), so later rounds can use counting passes with n+1 buckets. *)
    let sa = ref (stable_order_by ~checked pool ~buckets:256 ~key:(fun i -> Char.code s.[i]) (Array.init n Fun.id)) in
    let rank = Array.make n 0 in
    let char_flags =
      let sa0 = !sa in
      Rpb_core.Par_array.init pool n (fun j ->
          if j = 0 then 0
          else if s.[sa0.(j - 1)] <> s.[sa0.(j)] then 1
          else 0)
    in
    let initial_ranks = Rpb_parseq.Scan.inclusive_int pool char_flags in
    Rpb_core.Scatter.unchecked pool ~out:rank ~offsets:!sa ~src:initial_ranks;
    let k = ref 1 in
    let finished = ref (initial_ranks.(n - 1) = n - 1) in
    while not !finished do
      (* Key pair for suffix i at width k: (rank.(i), rank.(i+k)+1 or 0). *)
      let key2 i = if i + !k < n then rank.(i + !k) + 1 else 0 in
      (* LSD: stable sort by the minor key, then by the major key. *)
      let pass1 = stable_order_by ~checked pool ~buckets:(n + 1) ~key:key2 !sa in
      let pass2 = stable_order_by ~checked pool ~buckets:n ~key:(fun i -> rank.(i)) pass1 in
      sa := pass2;
      let sa_now = !sa in
      (* Flags mark positions where the key pair differs from the previous
         suffix; their inclusive scan is the new rank. *)
      let flags =
        Rpb_core.Par_array.init pool n (fun j ->
            if j = 0 then 0
            else begin
              let a = sa_now.(j - 1) and b = sa_now.(j) in
              if rank.(a) <> rank.(b) || key2 a <> key2 b then 1 else 0
            end)
      in
      let new_ranks = Rpb_parseq.Scan.inclusive_int pool flags in
      (* Indirect scatter through the suffix array (a permutation): the
         SngInd write this benchmark is known for. *)
      (match mode with
       | Unchecked_scatter ->
         Rpb_core.Scatter.unchecked pool ~out:rank ~offsets:sa_now ~src:new_ranks
       | Checked_scatter ->
         Rpb_core.Scatter.checked pool ~out:rank ~offsets:sa_now ~src:new_ranks);
      if new_ranks.(n - 1) = n - 1 || !k >= n then finished := true
      else k := 2 * !k
    done;
    !sa
  end

let rank_of pool sa =
  let n = Array.length sa in
  let rank = Array.make n 0 in
  Pool.parallel_for ~start:0 ~finish:n
    ~body:(fun i -> Array.unsafe_set rank (Array.unsafe_get sa i) i)
    pool;
  rank

let suffix_compare s i j =
  let n = String.length s in
  let rec go i j =
    if i >= n then if j >= n then 0 else -1
    else if j >= n then 1
    else begin
      let c = Char.compare s.[i] s.[j] in
      if c <> 0 then c else go (i + 1) (j + 1)
    end
  in
  go i j

let is_suffix_array s sa =
  let n = String.length s in
  Array.length sa = n
  && begin
    let seen = Array.make n false in
    Array.for_all
      (fun i ->
        if i < 0 || i >= n || seen.(i) then false
        else begin
          seen.(i) <- true;
          true
        end)
      sa
    && begin
      let ok = ref true in
      for j = 1 to n - 1 do
        if suffix_compare s sa.(j - 1) sa.(j) >= 0 then ok := false
      done;
      !ok
    end
  end

let build_seq s =
  let n = String.length s in
  if n = 0 then [||]
  else begin
    let rank = Array.init n (fun i -> Char.code s.[i]) in
    let sa = Array.init n Fun.id in
    let tmp = Array.make n 0 in
    let k = ref 0 in
    let finished = ref false in
    while not !finished do
      let key2 i = if !k > 0 && i + !k < n then rank.(i + !k) + 1 else if !k > 0 then 0 else 0 in
      let cmp i j =
        let c = compare rank.(i) rank.(j) in
        if c <> 0 then c else compare (key2 i) (key2 j)
      in
      Array.sort cmp sa;
      tmp.(sa.(0)) <- 0;
      for j = 1 to n - 1 do
        tmp.(sa.(j)) <- (tmp.(sa.(j - 1)) + if cmp sa.(j - 1) sa.(j) <> 0 then 1 else 0)
      done;
      Array.blit tmp 0 rank 0 n;
      if rank.(sa.(n - 1)) = n - 1 then finished := true
      else k := max 1 (2 * !k)
    done;
    sa
  end

let build_naive s =
  let sa = Array.init (String.length s) Fun.id in
  Array.sort (fun i j -> suffix_compare s i j) sa;
  sa
