(** Parallel suffix array by prefix doubling — the paper's [sa] benchmark.

    Each round stably sorts suffix indices by the pair
    [(rank.(i), rank.(i + k))] using two parallel counting-rank passes, then
    rebuilds ranks with a flag scan and an indirect scatter through the
    suffix array — a permutation, so a SngInd write that is unique by
    algorithm but not by type.  O(n log n) work over log n rounds. *)

open Rpb_pool

type scatter_mode = Unchecked_scatter | Checked_scatter
(** Whether the rank-rebuild scatter validates offset uniqueness each round —
    the fear/overhead switch of the paper's Fig. 5(a). *)

val build : ?mode:scatter_mode -> Pool.t -> string -> int array
(** [build pool s] returns the suffix array: the [i]-th entry is the start
    position of the [i]-th smallest suffix of [s]. *)

val rank_of : Pool.t -> int array -> int array
(** [rank_of pool sa] inverts a suffix array: [rank.(sa.(i)) = i]. *)

val is_suffix_array : string -> int array -> bool
(** Oracle check: a permutation of [0..n-1] with strictly increasing
    suffixes (O(n^2) worst case; for tests). *)

val build_seq : string -> int array
(** Sequential prefix doubling with comparison sorts — the same O(n log^2 n)
    algorithm shape as {!build}, single-threaded (the performance
    baseline). *)

val build_naive : string -> int array
(** Sequential comparison-sort-of-suffixes construction (the small-input
    verification oracle; O(n^2 log n) worst case). *)
