(* A small dictionary; Zipf rank selection makes early words dominate, which
   yields the heavy repetition structure of natural-language corpora. *)
let dictionary =
  [|
    "the"; "of"; "and"; "in"; "to"; "a"; "is"; "was"; "for"; "as"; "with";
    "on"; "by"; "that"; "from"; "at"; "his"; "it"; "an"; "were"; "which";
    "are"; "this"; "also"; "be"; "or"; "has"; "had"; "first"; "one"; "their";
    "its"; "new"; "after"; "but"; "who"; "not"; "they"; "have"; "her"; "she";
    "two"; "been"; "other"; "when"; "time"; "during"; "there"; "into"; "all";
    "may"; "university"; "between"; "city"; "world"; "war"; "united";
    "states"; "national"; "years"; "american"; "would"; "where"; "later";
    "became"; "about"; "under"; "known"; "most"; "century"; "state"; "over";
    "system"; "village"; "population"; "district"; "history"; "album";
    "series"; "south"; "north";
  |]

let zipf_pick rng =
  (* P(rank r) proportional to 1/(r+1): inverse-CDF by rejection-free trick. *)
  let n = Array.length dictionary in
  let h = float_of_int (Rpb_prim.Rng.int rng 1_000_000) /. 1_000_000.0 in
  (* Harmonic inverse approximated by exponential spacing. *)
  let r = int_of_float (float_of_int n ** h) - 1 in
  dictionary.(max 0 (min (n - 1) r))

let wiki ~size ~seed =
  let buf = Buffer.create (size + 16) in
  let rng = Rpb_prim.Rng.create seed in
  let words_in_sentence = ref 0 in
  while Buffer.length buf < size do
    let w = zipf_pick rng in
    if !words_in_sentence = 0 then begin
      Buffer.add_char buf (Char.uppercase_ascii w.[0]);
      Buffer.add_string buf (String.sub w 1 (String.length w - 1))
    end
    else Buffer.add_string buf w;
    incr words_in_sentence;
    if !words_in_sentence > 8 + Rpb_prim.Rng.int rng 8 then begin
      Buffer.add_string buf ". ";
      words_in_sentence := 0
    end
    else Buffer.add_char buf ' '
  done;
  String.sub (Buffer.contents buf) 0 size

let periodic ~size ~period =
  if String.length period = 0 then invalid_arg "Text_gen.periodic: empty period";
  let buf = Buffer.create (size + String.length period) in
  while Buffer.length buf < size do
    Buffer.add_string buf period
  done;
  String.sub (Buffer.contents buf) 0 size

let random_bytes ~size ~seed ~alphabet =
  if alphabet < 1 || alphabet > 26 then
    invalid_arg "Text_gen.random_bytes: alphabet in [1, 26]";
  String.init size (fun i ->
      Char.chr (Char.code 'a' + (Rpb_prim.Rng.hash64 ((seed * 77) + i) mod alphabet)))
