(** Deterministic text generators standing in for the paper's "wiki" input:
    natural-language-like byte strings with Zipf-distributed words, abundant
    repeats (so lrs/sa have structure) and no zero bytes. *)

val wiki : size:int -> seed:int -> string
(** About [size] bytes of space-separated words drawn from a Zipfian
    dictionary, with sentence punctuation. *)

val periodic : size:int -> period:string -> string
(** [period] repeated to [size] bytes — worst case for prefix doubling, with
    a known longest repeated substring. *)

val random_bytes : size:int -> seed:int -> alphabet:int -> string
(** Uniform bytes over an [alphabet]-letter range starting at 'a'
    ([alphabet <= 26]). *)
