let is_letter c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')

let tokenize s =
  let out = ref [] in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    while !i < n && not (is_letter s.[!i]) do
      incr i
    done;
    let start = !i in
    while !i < n && is_letter s.[!i] do
      incr i
    done;
    if !i > start then
      out := String.lowercase_ascii (String.sub s start (!i - start)) :: !out
  done;
  Array.of_list (List.rev !out)

let count pool s =
  let words = tokenize s in
  let n = Array.length words in
  if n = 0 then [||]
  else begin
    let sorted = Rpb_parseq.Sort.sample_sort pool ~cmp:String.compare words in
    (* Group boundaries: positions where the word changes. *)
    let starts =
      Rpb_parseq.Pack.pack_index pool
        (fun i -> i = 0 || not (String.equal sorted.(i - 1) sorted.(i)))
        n
    in
    let k = Array.length starts in
    Rpb_core.Par_array.init pool k (fun j ->
        let lo = starts.(j) in
        let hi = if j + 1 < k then starts.(j + 1) else n in
        (sorted.(lo), hi - lo))
  end

let count_seq s =
  let words = tokenize s in
  let tbl = Hashtbl.create 256 in
  Array.iter
    (fun w ->
      Hashtbl.replace tbl w (1 + Option.value ~default:0 (Hashtbl.find_opt tbl w)))
    words;
  let out = Array.of_seq (Hashtbl.to_seq tbl) in
  Array.sort (fun (a, _) (b, _) -> String.compare a b) out;
  out

let top_k pool ~k s =
  let counts = count pool s in
  let ranked =
    Rpb_parseq.Sort.sample_sort pool
      ~cmp:(fun (w1, c1) (w2, c2) ->
        match compare c2 c1 with 0 -> String.compare w1 w2 | c -> c)
      counts
  in
  Array.sub ranked 0 (min k (Array.length ranked))
