(** Parallel word counting — PBBS's "word counts" benchmark shape, built on
    the comparison-sort primitive: tokenize, sample-sort the tokens, then a
    boundary scan yields each distinct word's count. *)

open Rpb_pool

val tokenize : string -> string array
(** Maximal runs of ASCII letters, lowercased. *)

val count : Pool.t -> string -> (string * int) array
(** Distinct words of the text with their frequencies, sorted
    lexicographically. *)

val count_seq : string -> (string * int) array
(** Hashtable-based sequential reference (same sorted output). *)

val top_k : Pool.t -> k:int -> string -> (string * int) array
(** The [k] most frequent words, most frequent first (ties
    lexicographic). *)
