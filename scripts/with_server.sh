#!/bin/sh
# Boot a backgrounded rpb server, wait for its socket, run a drive
# command against it, then drain the server with SIGTERM and propagate
# the worst exit status.  Shared by the metrics-smoke and slo-smoke make
# targets so every smoke job boots and drains servers the same way.
#
# Usage: with_server.sh SOCKET 'SERVER_EXTRA_ARGS' 'DRIVE_SHELL'
#
#   SOCKET            Unix-domain socket path (stale files are removed)
#   SERVER_EXTRA_ARGS extra `rpb serve` flags, word-split (no spaces
#                     inside a single flag value)
#   DRIVE_SHELL       shell command string run once the socket is live
#
# The rpb binary defaults to the prebuilt _build path (so concurrent
# processes never contend on the dune lock); override with $RPB.
set -u

RPB=${RPB:-_build/default/bin/rpb.exe}

if [ $# -ne 3 ]; then
  echo "usage: $0 SOCKET 'SERVER_EXTRA_ARGS' 'DRIVE_SHELL'" >&2
  exit 2
fi

sock=$1
server_args=$2
drive=$3

rm -f "$sock"
status=0

# shellcheck disable=SC2086 # word splitting of the server flags is the API
"$RPB" serve --socket "$sock" $server_args &
server=$!

i=0
until test -S "$sock" || test $i -ge 50; do
  sleep 0.1
  i=$((i + 1))
done
if ! test -S "$sock"; then
  echo "with_server: server never bound $sock" >&2
  kill -TERM "$server" 2>/dev/null
  wait "$server" 2>/dev/null
  exit 1
fi

RPB="$RPB" SOCK="$sock" sh -c "$drive" || status=$?

kill -TERM "$server" 2>/dev/null
wait "$server" || status=$?

exit $status
