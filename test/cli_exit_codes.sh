#!/bin/sh
# The rpb exit-code contract: 0 = success, 2 = usage error, 3 = perf gate
# tripped, 4 = correctness / fault / robustness violation.  Every CLI
# surface that takes --policy must reject an unknown name with exit 2 and
# list the known policy names on stderr.  Run by the dune rule in
# test/dune with the binary path as $1.
set -u
rpb=$1
fail() { echo "cli_exit_codes: $*" >&2; exit 1; }

expect_code() {
  want=$1
  shift
  "$rpb" "$@" >/dev/null 2>&1
  got=$?
  [ "$got" -eq "$want" ] || fail "rpb $*: exit $got, want $want"
}

# $1.. = subcommand (and any required positionals); --policy nosuch is
# appended.  Exit must be 2 and stderr must list a real policy name.
expect_policy_listing() {
  out=$("$rpb" "$@" --policy nosuch 2>&1)
  got=$?
  [ "$got" -eq 2 ] || fail "rpb $* --policy nosuch: exit $got, want 2"
  case $out in
  *steal_half*) ;;
  *) fail "rpb $* --policy nosuch: stderr does not list policy names" ;;
  esac
}

expect_code 0 list
expect_code 0 run hist -s 1
expect_code 2 nosuchcmd
expect_code 2 run nosuchbench
expect_code 2 bench nosuchbench
expect_code 2 report /nonexistent-artifact.json
expect_code 2 serve --preload 'hist:x:notanint'
expect_code 2 serve --metrics-interval 0
expect_code 2 serve --metrics-interval -1
expect_code 2 serve --slow-pctl 0
expect_code 2 serve --slow-pctl 101
expect_code 2 serve --slo garbage
expect_code 2 serve --slo 'latency:h:p95<5' --slo-fast-s 60 --slo-slow-s 30
expect_code 2 slo
expect_code 2 slo /nonexistent-metrics.jsonl
expect_code 2 slo --socket /tmp/nope.sock extra.jsonl
expect_code 2 slo some.jsonl --slo 'avail:2'
expect_code 2 slo some.jsonl --fast-s 0
expect_code 2 slo some.jsonl --hysteresis 0

# rpb slo replay: a clean stream passes --check (exit 0); one that pages
# the objective exits 4.  Two synthetic snapshots are enough: 100 requests
# with none failed, then the same with half failed.
slo_tmp=${TMPDIR:-/tmp}/rpb-cli-slo-$$.jsonl
trap 'rm -f "$slo_tmp"' 0
{
  printf '{"kind":"metrics","seq":1,"ts_s":1.0,"started_s":0.0,"counters":{"serve.ok":100,"serve.failed":0},"gauges":{},"histograms":{}}\n'
  printf '{"kind":"metrics","seq":2,"ts_s":2.0,"started_s":0.0,"counters":{"serve.ok":150,"serve.failed":50},"gauges":{},"histograms":{}}\n'
} > "$slo_tmp"
expect_code 4 slo "$slo_tmp" --slo avail:0.99 --fast-s 1 --slow-s 10 --check
expect_code 0 slo "$slo_tmp" --slo avail:0.0001 --fast-s 1 --slow-s 10 --check

expect_policy_listing bench hist
expect_policy_listing check
expect_policy_listing faults
expect_policy_listing profile
expect_policy_listing serve
expect_policy_listing loadgen

echo "cli_exit_codes: ok"
