#!/bin/sh
# The rpb exit-code contract: 0 = success, 2 = usage error, 3 = perf gate
# tripped, 4 = correctness / fault / robustness violation.  Every CLI
# surface that takes --policy must reject an unknown name with exit 2 and
# list the known policy names on stderr.  Run by the dune rule in
# test/dune with the binary path as $1.
set -u
rpb=$1
fail() { echo "cli_exit_codes: $*" >&2; exit 1; }

expect_code() {
  want=$1
  shift
  "$rpb" "$@" >/dev/null 2>&1
  got=$?
  [ "$got" -eq "$want" ] || fail "rpb $*: exit $got, want $want"
}

# $1.. = subcommand (and any required positionals); --policy nosuch is
# appended.  Exit must be 2 and stderr must list a real policy name.
expect_policy_listing() {
  out=$("$rpb" "$@" --policy nosuch 2>&1)
  got=$?
  [ "$got" -eq 2 ] || fail "rpb $* --policy nosuch: exit $got, want 2"
  case $out in
  *steal_half*) ;;
  *) fail "rpb $* --policy nosuch: stderr does not list policy names" ;;
  esac
}

expect_code 0 list
expect_code 0 run hist -s 1
expect_code 2 nosuchcmd
expect_code 2 run nosuchbench
expect_code 2 bench nosuchbench
expect_code 2 report /nonexistent-artifact.json
expect_code 2 serve --preload 'hist:x:notanint'

expect_policy_listing bench hist
expect_policy_listing check
expect_policy_listing faults
expect_policy_listing profile
expect_policy_listing serve
expect_policy_listing loadgen

echo "cli_exit_codes: ok"
