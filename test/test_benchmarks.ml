(* End-to-end tests for the RPB benchmark suite: every benchmark, every
   input, every mode switch, verified against its oracle. *)

open Rpb_benchmarks
open Rpb_pool

let with_pool n f =
  let pool = Pool.create ~num_workers:n () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let in_pool f = with_pool 3 (fun pool -> Pool.run pool (fun () -> f pool))

let test_registry_shape () =
  Alcotest.(check int) "14 benchmarks" 14 (List.length Registry.all);
  Alcotest.(check (list string))
    "Table 1 order"
    [ "bw"; "lrs"; "sa"; "dr"; "mis"; "mm"; "sf"; "msf"; "sort"; "dedup";
      "hist"; "isort"; "bfs"; "sssp" ]
    Registry.names;
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (e.Common.name ^ " has inputs")
        true
        (e.Common.inputs <> []);
      Alcotest.(check bool)
        (e.Common.name ^ " has patterns")
        true
        (e.Common.patterns <> []))
    Registry.all

let test_registry_table1_claims () =
  (* Spot-check Table 1 rows reproduced by our registry. *)
  let has name p =
    match Registry.find name with
    | Some e -> List.mem p e.Common.patterns
    | None -> false
  in
  Alcotest.(check bool) "bw uses SngInd" true (has "bw" Rpb_core.Pattern.SngInd);
  Alcotest.(check bool) "sort has no AW" false (has "sort" Rpb_core.Pattern.AW);
  Alcotest.(check bool) "sort uses RngInd" true (has "sort" Rpb_core.Pattern.RngInd);
  Alcotest.(check bool) "bfs uses AW" true (has "bfs" Rpb_core.Pattern.AW);
  Alcotest.(check bool) "dedup uses AW" true (has "dedup" Rpb_core.Pattern.AW);
  (* Dynamic dispatch column: dr, bfs, sssp. *)
  let dynamic =
    List.filter_map
      (fun e -> if e.Common.dynamic then Some e.Common.name else None)
      Registry.all
  in
  Alcotest.(check (list string)) "dynamic dispatch" [ "dr"; "bfs"; "sssp" ] dynamic

let test_fig3_distribution () =
  let dist = Registry.access_distribution () in
  let total_pct = List.fold_left (fun acc (_, _, p) -> acc +. p) 0.0 dist in
  Alcotest.(check (float 1e-6)) "percentages sum to 100" 100.0 total_pct;
  List.iter
    (fun (p, c, _) ->
      Alcotest.(check bool)
        (Rpb_core.Pattern.access_name p ^ " present in suite")
        true (c > 0))
    dist;
  (* The paper's headline: irregular accesses (SngInd + RngInd + AW) are a
     substantial minority. *)
  let irregular =
    List.fold_left
      (fun acc (p, _, pct) ->
        match p with
        | Rpb_core.Pattern.SngInd | Rpb_core.Pattern.RngInd | Rpb_core.Pattern.AW ->
          acc +. pct
        | _ -> acc)
      0.0 dist
  in
  Alcotest.(check bool)
    (Printf.sprintf "irregular share substantial (%.0f%%)" irregular)
    true
    (irregular > 15.0 && irregular < 60.0)

let run_benchmark_all_modes name =
  in_pool (fun pool ->
      match Registry.find name with
      | None -> Alcotest.failf "unknown benchmark %s" name
      | Some e ->
        List.iter
          (fun input ->
            let prepared = e.Common.prepare pool ~input ~scale:0 in
            List.iter
              (fun mode ->
                prepared.Common.run_par mode;
                Alcotest.(check bool)
                  (Printf.sprintf "%s/%s/%s verifies" name input (Mode.name mode))
                  true
                  (prepared.Common.verify ()))
              Mode.all;
            (* The sequential baseline must verify too. *)
            prepared.Common.run_seq ();
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s/seq verifies" name input)
              true
              (prepared.Common.verify ()))
          e.Common.inputs)

let bench_case name =
  Alcotest.test_case name `Quick (fun () -> run_benchmark_all_modes name)

let test_appendix_a_variants_correct () =
  with_pool 2 (fun pool ->
      let n = 1_500 in
      let input = Array.init n (fun i -> i * 17) in
      let expected = Appendix_a.expected input in
      List.iter
        (fun v ->
          let data = Array.copy input in
          Pool.run pool (fun () ->
              v.Appendix_a.run ~workers:2 ~pool data);
          Alcotest.(check bool) (v.Appendix_a.name ^ " correct") true (data = expected))
        Appendix_a.variants)

let test_appendix_a_thread_cap () =
  with_pool 2 (fun pool ->
      let data = Array.make 5_000 1 in
      let tpt = List.nth Appendix_a.variants 1 in
      match Pool.run pool (fun () -> tpt.Appendix_a.run ~workers:2 ~pool data) with
      | exception Appendix_a.Infeasible _ -> ()
      | () -> Alcotest.fail "thread-per-task should refuse large inputs")

let test_mode_names () =
  List.iter
    (fun m ->
      match Mode.of_string (Mode.name m) with
      | Some m' -> Alcotest.(check string) "roundtrip" (Mode.name m) (Mode.name m')
      | None -> Alcotest.fail "mode name did not parse")
    Mode.all

let () =
  Alcotest.run "rpb_benchmarks"
    [
      ( "registry",
        [
          Alcotest.test_case "shape" `Quick test_registry_shape;
          Alcotest.test_case "table1 claims" `Quick test_registry_table1_claims;
          Alcotest.test_case "fig3 distribution" `Quick test_fig3_distribution;
          Alcotest.test_case "mode names" `Quick test_mode_names;
        ] );
      ( "text",
        [ bench_case "bw"; bench_case "lrs"; bench_case "sa" ] );
      ( "geometry", [ bench_case "dr" ] );
      ( "graph",
        [
          bench_case "mis";
          bench_case "mm";
          bench_case "sf";
          bench_case "msf";
          bench_case "bfs";
          bench_case "sssp";
        ] );
      ( "sequences",
        [
          bench_case "sort";
          bench_case "dedup";
          bench_case "hist";
          bench_case "isort";
        ] );
      ( "appendix_a",
        [
          Alcotest.test_case "variants correct" `Quick test_appendix_a_variants_correct;
          Alcotest.test_case "thread cap" `Quick test_appendix_a_thread_cap;
        ] );
    ]
