(* Tests for the phase-concurrent hash set. *)

open Rpb_pool

let with_pool n f =
  let pool = Pool.create ~num_workers:n () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_insert_mem () =
  let t = Rpb_chash.Chash.create ~capacity:100 in
  Alcotest.(check bool) "fresh insert" true (Rpb_chash.Chash.insert t 42);
  Alcotest.(check bool) "duplicate insert" false (Rpb_chash.Chash.insert t 42);
  Alcotest.(check bool) "mem yes" true (Rpb_chash.Chash.mem t 42);
  Alcotest.(check bool) "mem no" false (Rpb_chash.Chash.mem t 43);
  Alcotest.(check int) "count" 1 (Rpb_chash.Chash.count t)

let test_many_inserts () =
  let n = 10_000 in
  let t = Rpb_chash.Chash.create ~capacity:n in
  for i = 0 to n - 1 do
    Alcotest.(check bool) "fresh" true (Rpb_chash.Chash.insert t (i * 7))
  done;
  for i = 0 to n - 1 do
    Alcotest.(check bool) "present" true (Rpb_chash.Chash.mem t (i * 7))
  done;
  Alcotest.(check int) "count" n (Rpb_chash.Chash.count t)

let test_collision_heavy () =
  (* A tiny table forces long probe chains. *)
  let t = Rpb_chash.Chash.create ~capacity:8 in
  let keys = [ 3; 11; 19; 27; 35; 43 ] in
  List.iter (fun k -> ignore (Rpb_chash.Chash.insert t k)) keys;
  List.iter
    (fun k -> Alcotest.(check bool) "probe finds" true (Rpb_chash.Chash.mem t k))
    keys;
  Alcotest.(check bool) "absent" false (Rpb_chash.Chash.mem t 51)

let test_full_table_raises () =
  let t = Rpb_chash.Chash.create ~capacity:4 in
  (* capacity 4 -> 8 slots; the 9th distinct key must raise. *)
  let raised = ref false in
  (try
     for i = 0 to 16 do
       ignore (Rpb_chash.Chash.insert t i)
     done
   with Rpb_chash.Chash.Full -> raised := true);
  Alcotest.(check bool) "Full raised" true !raised

let test_negative_key_rejected () =
  let t = Rpb_chash.Chash.create ~capacity:4 in
  Alcotest.check_raises "negative" (Invalid_argument "Chash.insert: negative key")
    (fun () -> ignore (Rpb_chash.Chash.insert t (-1)));
  Alcotest.(check bool) "mem negative" false (Rpb_chash.Chash.mem t (-5))

let test_elements_and_clear () =
  with_pool 2 (fun pool ->
      Pool.run pool (fun () ->
          let t = Rpb_chash.Chash.create ~capacity:100 in
          List.iter (fun k -> ignore (Rpb_chash.Chash.insert t k)) [ 5; 1; 9 ];
          let elts = Rpb_chash.Chash.elements pool t in
          Array.sort compare elts;
          Alcotest.(check bool) "elements" true (elts = [| 1; 5; 9 |]);
          Rpb_chash.Chash.clear pool t;
          Alcotest.(check int) "cleared count" 0 (Rpb_chash.Chash.count t);
          Alcotest.(check bool) "cleared mem" false (Rpb_chash.Chash.mem t 5);
          Alcotest.(check bool) "reinsert" true (Rpb_chash.Chash.insert t 5)))

(* Concurrent semantics: across racing inserters, each distinct key is
   reported "fresh" exactly once, and all keys are found afterwards. *)
let test_concurrent_insert_exactly_once () =
  let nkeys = 20_000 in
  let t = Rpb_chash.Chash.create ~capacity:nkeys in
  let fresh_claims = Rpb_prim.Atomic_array.make nkeys 0 in
  let num_domains = 4 in
  let ds =
    List.init num_domains (fun d ->
        Domain.spawn (fun () ->
            (* Every domain inserts every key — maximal contention. *)
            let rng = Rpb_prim.Rng.create (900 + d) in
            for _ = 0 to (2 * nkeys) - 1 do
              let k = Rpb_prim.Rng.int rng nkeys in
              if Rpb_chash.Chash.insert t k then
                ignore (Rpb_prim.Atomic_array.fetch_and_add fresh_claims k 1)
            done))
  in
  List.iter Domain.join ds;
  let bad = ref 0 and inserted = ref 0 in
  for k = 0 to nkeys - 1 do
    let claims = Rpb_prim.Atomic_array.get fresh_claims k in
    if claims > 1 then incr bad;
    if claims = 1 then begin
      incr inserted;
      if not (Rpb_chash.Chash.mem t k) then incr bad
    end
  done;
  Alcotest.(check int) "no double-fresh, no lost keys" 0 !bad;
  Alcotest.(check int) "count matches fresh claims" !inserted
    (Rpb_chash.Chash.count t)

let test_parallel_dedup_usage () =
  (* The dedup benchmark shape: insert all, then snapshot distinct values. *)
  with_pool 3 (fun pool ->
      Pool.run pool (fun () ->
          let n = 30_000 in
          let rng = Rpb_prim.Rng.create 77 in
          let data = Array.init n (fun _ -> Rpb_prim.Rng.exponential_int rng ~mean:500) in
          let t = Rpb_chash.Chash.create ~capacity:n in
          Pool.parallel_for ~start:0 ~finish:n
            ~body:(fun i -> ignore (Rpb_chash.Chash.insert t data.(i)))
            pool;
          let got = Rpb_chash.Chash.elements pool t in
          Array.sort compare got;
          let expected =
            List.sort_uniq compare (Array.to_list data) |> Array.of_list
          in
          Alcotest.(check int) "distinct count" (Array.length expected)
            (Array.length got);
          Alcotest.(check bool) "distinct values" true (got = expected)))

let prop_set_semantics =
  QCheck.Test.make ~name:"chash = Set over random workloads" ~count:40
    QCheck.(list (int_bound 500))
    (fun keys ->
      let t = Rpb_chash.Chash.create ~capacity:(List.length keys + 1) in
      let module S = Set.Make (Int) in
      let reference = ref S.empty in
      List.for_all
        (fun k ->
          let fresh_expected = not (S.mem k !reference) in
          reference := S.add k !reference;
          Rpb_chash.Chash.insert t k = fresh_expected && Rpb_chash.Chash.mem t k)
        keys
      && Rpb_chash.Chash.count t = S.cardinal !reference)

let () =
  Alcotest.run "rpb_chash"
    [
      ( "chash",
        [
          Alcotest.test_case "insert/mem" `Quick test_insert_mem;
          Alcotest.test_case "many inserts" `Quick test_many_inserts;
          Alcotest.test_case "collisions" `Quick test_collision_heavy;
          Alcotest.test_case "full raises" `Quick test_full_table_raises;
          Alcotest.test_case "negative key" `Quick test_negative_key_rejected;
          Alcotest.test_case "elements/clear" `Quick test_elements_and_clear;
          Alcotest.test_case "concurrent exactly-once" `Quick
            test_concurrent_insert_exactly_once;
          Alcotest.test_case "dedup usage" `Quick test_parallel_dedup_usage;
          QCheck_alcotest.to_alcotest prop_set_semantics;
        ] );
    ]
