(* Fault-injection and self-tests for the correctness tooling (lib/check):
   shadow-array race detection across all scatter modes and Chunks_ind, the
   deterministic sequential executor, the differential oracle, and the
   reusable mark table behind Scatter.checked. *)

open Rpb_pool
open Rpb_core
open Rpb_check

let with_pool n f =
  let pool = Pool.create ~num_workers:n () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let with_seq_exec ?seed ?shuffle f =
  Seq_exec.with_executor ?seed ?shuffle f

(* ---------- Shadow arrays: duplicate offsets ---------- *)

(* A permutation with exactly one duplicate: src positions [dup_a] and
   [dup_b] both target slot [offsets.(dup_a)]. *)
let one_duplicate rng n =
  let offsets = Rpb_prim.Rng.permutation rng n in
  let dup_a = 0 and dup_b = n - 1 in
  offsets.(dup_b) <- offsets.(dup_a);
  (offsets, dup_a, dup_b)

let scared_modes = Scatter.[ Unchecked; Atomic; Mutexed ]

let test_shadow_detects_duplicate_scared_modes () =
  (* In-order deterministic executor: detection AND first/second attribution
     are exact, so assert both offending indices and the task id. *)
  with_seq_exec ~seed:11 ~shuffle:false (fun pool ->
      Shadow.with_instrumentation true (fun () ->
          List.iter
            (fun mode ->
              let n = 4096 in
              let offsets, dup_a, dup_b =
                one_duplicate (Rpb_prim.Rng.create 23) n
              in
              let out = Shadow.create ~pool (Array.make n (-1)) in
              Instrument.scatter mode pool ~out ~offsets
                ~src:(Array.init n Fun.id);
              (match Shadow.races out with
               | [ r ] ->
                 Alcotest.(check int)
                   (Scatter.mode_name mode ^ ": racy slot")
                   offsets.(dup_a) r.Shadow.index;
                 Alcotest.(check (pair int int))
                   (Scatter.mode_name mode ^ ": both offending indices")
                   (dup_a, dup_b)
                   (r.Shadow.first_src, r.Shadow.second_src);
                 Alcotest.(check int)
                   (Scatter.mode_name mode ^ ": task id (worker 0)")
                   0 r.Shadow.second_task
               | rs ->
                 Alcotest.failf "%s: expected exactly 1 race, got %d"
                   (Scatter.mode_name mode) (List.length rs));
              (* The corruption is real: the duplicate slot holds the last
                 writer, the orphaned slot keeps its initial value. *)
              Alcotest.(check int) "slot holds a writer" dup_b
                (Shadow.payload out).(offsets.(dup_a)))
            scared_modes))

let test_shadow_detects_duplicate_multi_domain () =
  with_pool 4 (fun pool ->
      Pool.run pool (fun () ->
          Shadow.with_instrumentation true (fun () ->
              let n = 50_000 in
              let offsets, dup_a, dup_b =
                one_duplicate (Rpb_prim.Rng.create 31) n
              in
              let out = Shadow.create ~pool (Array.make n (-1)) in
              Instrument.unchecked pool ~out ~offsets
                ~src:(Array.init n Fun.id);
              match Shadow.races out with
              | [ r ] ->
                Alcotest.(check int) "racy slot" offsets.(dup_a) r.Shadow.index;
                Alcotest.(check (pair int int))
                  "both offending indices (unordered)"
                  (dup_a, dup_b)
                  ( min r.Shadow.first_src r.Shadow.second_src,
                    max r.Shadow.first_src r.Shadow.second_src )
              | rs ->
                Alcotest.failf "expected exactly 1 race, got %d"
                  (List.length rs))))

let test_shadow_checked_raises_before_any_race () =
  with_seq_exec ~seed:12 (fun pool ->
      Shadow.with_instrumentation true (fun () ->
          let n = 2048 in
          let offsets, _, _ = one_duplicate (Rpb_prim.Rng.create 29) n in
          let out = Shadow.create ~pool (Array.make n 0) in
          (match
             Instrument.checked pool ~out ~offsets ~src:(Array.make n 1)
           with
          | () -> Alcotest.fail "checked must reject duplicates"
          | exception Scatter.Duplicate_offset _ -> ());
          Alcotest.(check int) "no shadow write happened" 0
            (Shadow.write_count out);
          Alcotest.(check int) "no race recorded" 0 (Shadow.race_count out)))

let test_shadow_out_of_range_all_modes () =
  with_seq_exec ~seed:13 (fun pool ->
      Shadow.with_instrumentation true (fun () ->
          List.iter
            (fun mode ->
              let n = 256 in
              let offsets = Rpb_prim.Rng.permutation (Rpb_prim.Rng.create 3) n in
              offsets.(n / 2) <- n + 7;
              let out = Shadow.create ~pool (Array.make n 0) in
              match
                Instrument.scatter mode pool ~out ~offsets
                  ~src:(Array.make n 1)
              with
              | () ->
                Alcotest.failf "%s: out-of-range offset accepted"
                  (Scatter.mode_name mode)
              | exception Scatter.Offset_out_of_range o ->
                Alcotest.(check int)
                  (Scatter.mode_name mode ^ ": reports the bad offset")
                  (n + 7) o)
            Scatter.all_modes))

(* ---------- Shadow arrays: Chunks_ind ---------- *)

let test_chunks_non_monotone_checked_raises () =
  with_seq_exec ~seed:14 (fun pool ->
      let out = Shadow.create (Array.make 16 0) in
      match
        Instrument.fill_chunks_ind pool ~out ~offsets:[| 0; 8; 4; 16 |]
          ~f:(fun i _ -> i)
      with
      | () -> Alcotest.fail "non-monotone splits accepted"
      | exception Chunks_ind.Non_monotonic i ->
        Alcotest.(check int) "offending split pair" 1 i)

let test_chunks_overlap_detected_by_shadow () =
  with_seq_exec ~seed:15 ~shuffle:false (fun pool ->
      Shadow.with_instrumentation true (fun () ->
          (* chunk 0 owns [0,8); chunk 1 is empty ([8,4) after the bad
             split); chunk 2 owns [4,16) — overlapping chunk 0 on [4,8). *)
          let out = Shadow.create ~pool (Array.make 16 0) in
          Instrument.fill_chunks_ind ~check:false pool ~out
            ~offsets:[| 0; 8; 4; 16 |]
            ~f:(fun i _ -> i);
          let races = Shadow.races out in
          Alcotest.(check int) "one race per overlapped slot" 4
            (List.length races);
          List.iter
            (fun r ->
              Alcotest.(check bool) "overlap slots" true
                (r.Shadow.index >= 4 && r.Shadow.index < 8);
              Alcotest.(check (pair int int)) "both offending chunk ids" (0, 2)
                (r.Shadow.first_src, r.Shadow.second_src))
            races))

let test_chunks_out_of_bounds_shadow_unchecked () =
  with_seq_exec ~seed:16 (fun pool ->
      let out = Shadow.create (Array.make 8 0) in
      match
        Instrument.fill_chunks_ind ~check:false pool ~out
          ~offsets:[| 0; 12 |]
          ~f:(fun _ j -> j)
      with
      | () -> Alcotest.fail "out-of-bounds chunk accepted"
      | exception Chunks_ind.Range_out_of_bounds j ->
        Alcotest.(check int) "first out-of-bounds slot" 8 j)

(* ---------- Shadow arrays: disabled path and epochs ---------- *)

let test_shadow_disabled_records_nothing () =
  with_seq_exec ~seed:17 (fun pool ->
      Shadow.with_instrumentation false @@ fun () ->
      let n = 1024 in
      let offsets, _, _ = one_duplicate (Rpb_prim.Rng.create 41) n in
      let out = Shadow.create ~pool (Array.make n (-1)) in
      Instrument.unchecked pool ~out ~offsets ~src:(Array.init n Fun.id);
      Alcotest.(check int) "no writes recorded" 0 (Shadow.write_count out);
      Alcotest.(check int) "no races recorded" 0 (Shadow.race_count out);
      (* ... but the payload was written through. *)
      Alcotest.(check bool) "payload written" true
        (Array.exists (fun v -> v >= 0) (Shadow.payload out)))

let test_shadow_epochs_separate_operations () =
  with_seq_exec ~seed:18 (fun pool ->
      Shadow.with_instrumentation true (fun () ->
          let n = 512 in
          let offsets = Rpb_prim.Rng.permutation (Rpb_prim.Rng.create 43) n in
          let out = Shadow.create ~pool (Array.make n 0) in
          (* The same valid scatter twice: every slot is written in both
             operations, which must NOT count as races. *)
          Instrument.unchecked pool ~out ~offsets ~src:(Array.make n 1);
          Instrument.unchecked pool ~out ~offsets ~src:(Array.make n 2);
          Alcotest.(check int) "two epochs, zero races" 0
            (Shadow.race_count out);
          Alcotest.(check int) "all writes recorded" (2 * n)
            (Shadow.write_count out)))

(* ---------- Deterministic sequential executor ---------- *)

let test_seq_exec_replays_identically () =
  let digest pool =
    (* Order-dependent accumulation: records the actual visit order. *)
    let log = ref [] in
    Pool.parallel_for ~grain:16 ~start:0 ~finish:1000
      ~body:(fun i -> log := i :: !log)
      pool;
    let a, b =
      Pool.join pool (fun () -> [| 1 |]) (fun () -> [| 2 |])
    in
    Array.concat [ Array.of_list !log; a; b ]
  in
  Alcotest.(check bool) "same seed, same schedule" true
    (Seq_exec.replays_equal ~seed:5 digest);
  (* Different seeds must produce different leaf orders (with overwhelming
     probability for 63 leaves). *)
  let run seed = Seq_exec.with_executor ~seed digest in
  Alcotest.(check bool) "different seed, different schedule" false
    (run 5 = run 6)

let test_seq_exec_shuffled_covers_all_indices () =
  with_seq_exec ~seed:19 (fun pool ->
      let n = 10_000 in
      let hits = Array.make n 0 in
      Pool.parallel_for ~start:0 ~finish:n
        ~body:(fun i -> hits.(i) <- hits.(i) + 1)
        pool;
      Alcotest.(check bool) "each index exactly once" true
        (Array.for_all (( = ) 1) hits))

let test_seq_exec_reduce_matches_inorder () =
  (* Associative but non-commutative combine: leaf shuffling must not change
     the result because combination happens in index order. *)
  let got =
    Seq_exec.with_executor ~seed:20 (fun pool ->
        let s =
          Pool.parallel_for_reduce ~grain:7 ~start:0 ~finish:200
            ~body:string_of_int ~combine:( ^ ) ~init:"" pool
        in
        Array.init (String.length s) (fun i -> Char.code s.[i]))
  in
  let expected =
    let b = Buffer.create 512 in
    for i = 0 to 199 do
      Buffer.add_string b (string_of_int i)
    done;
    Array.init (Buffer.length b) (fun i -> Char.code (Buffer.contents b).[i])
  in
  Alcotest.(check bool) "non-commutative reduce is order-stable" true
    (got = expected)

let test_seq_exec_join_flips_order () =
  (* Over many joins, a shuffled executor must execute g-before-f at least
     once and f-before-g at least once. *)
  with_seq_exec ~seed:21 (fun pool ->
      let f_first = ref false and g_first = ref false in
      for _ = 1 to 64 do
        let order = ref [] in
        ignore
          (Pool.join pool
             (fun () -> order := `F :: !order)
             (fun () -> order := `G :: !order));
        match List.rev !order with
        | `F :: _ -> f_first := true
        | `G :: _ -> g_first := true
        | [] -> ()
      done;
      Alcotest.(check (pair bool bool)) "both orders exercised" (true, true)
        (!f_first, !g_first))

let test_seq_exec_is_deterministic_flag () =
  let p = Seq_exec.create ~seed:1 () in
  let q = Pool.create ~num_workers:2 () in
  Fun.protect
    ~finally:(fun () ->
      Pool.shutdown p;
      Pool.shutdown q)
    (fun () ->
      Alcotest.(check bool) "seq_exec deterministic" true (Pool.deterministic p);
      Alcotest.(check bool) "ws pool not" false (Pool.deterministic q))

(* ---------- Mark-table reuse (Scatter.checked) ---------- *)

let test_mark_table_idempotent_across_calls () =
  with_pool 2 (fun pool ->
      Pool.run pool (fun () ->
          let rng = Rpb_prim.Rng.create 47 in
          for round = 1 to 40 do
            (* Alternate sizes so the cached table both grows and shrinks
               relative to n; alternate valid/duplicate inputs so stale
               marks from a failed call could leak into the next one. *)
            let n = if round mod 3 = 0 then 3000 else 700 in
            let offsets = Rpb_prim.Rng.permutation rng n in
            Scatter.validate_offsets pool ~n offsets;
            (* valid: must pass *)
            let dup = Array.copy offsets in
            dup.(n - 1) <- dup.(0);
            match Scatter.validate_offsets pool ~n dup with
            | () -> Alcotest.failf "round %d: duplicate not detected" round
            | exception Scatter.Duplicate_offset o ->
              Alcotest.(check int) "reports the duplicated value" dup.(0) o
          done))

let test_mark_table_reuses_allocation () =
  (* One worker keeps parallel_for on the caller (no task closures), so
     Gc.allocated_bytes measures the validation itself.  With the cached
     table a call allocates O(1); without it, 2 x n words. *)
  with_pool 1 (fun pool ->
      Pool.run pool (fun () ->
          let n = 50_000 in
          let offsets = Rpb_prim.Rng.permutation (Rpb_prim.Rng.create 53) n in
          (* Warm the cache to n. *)
          Scatter.validate_offsets pool ~n offsets;
          let before = Gc.allocated_bytes () in
          for _ = 1 to 20 do
            Scatter.validate_offsets pool ~n offsets
          done;
          let per_call = (Gc.allocated_bytes () -. before) /. 20.0 in
          (* A fresh table would be 2 * 50_000 * 8 = 800_000 bytes/call. *)
          Alcotest.(check bool)
            (Printf.sprintf "per-call allocation small (%.0f bytes)" per_call)
            true
            (per_call < 50_000.0)))

let test_mark_table_concurrent_validations () =
  (* Two pools validating at once: one takes the shared cache, the other
     silently falls back to a private table — both must stay correct. *)
  with_pool 2 (fun p1 ->
      with_pool 2 (fun p2 ->
          let n = 20_000 in
          let off1 = Rpb_prim.Rng.permutation (Rpb_prim.Rng.create 59) n in
          let off2 = Rpb_prim.Rng.permutation (Rpb_prim.Rng.create 61) n in
          let bad = Array.copy off2 in
          bad.(7) <- bad.(9);
          let d1 = Domain.spawn (fun () ->
              Pool.run p1 (fun () ->
                  for _ = 1 to 10 do
                    Scatter.validate_offsets p1 ~n off1
                  done;
                  true))
          in
          let ok2 =
            Pool.run p2 (fun () ->
                let ok = ref true in
                for _ = 1 to 10 do
                  Scatter.validate_offsets p2 ~n off2;
                  (match Scatter.validate_offsets p2 ~n bad with
                   | () -> ok := false
                   | exception Scatter.Duplicate_offset _ -> ())
                done;
                !ok)
          in
          Alcotest.(check bool) "pool 1 valid inputs pass" true (Domain.join d1);
          Alcotest.(check bool) "pool 2 detects duplicates" true ok2))

(* ---------- The differential oracle ---------- *)

let test_oracle_single_bench_ok () =
  let report = Oracle.run ~threads:3 ~scale:0 ~bench:"isort" ~seed:7 () in
  Alcotest.(check bool) "isort oracle ok" true (Oracle.ok report);
  Alcotest.(check int) "3 executors x 3 modes" 9
    (List.length report.Oracle.outcomes);
  Alcotest.(check int) "no false-positive races" 0
    (List.length report.Oracle.shadow_races);
  Alcotest.(check bool) "canary caught" true report.Oracle.canary_ok

let test_oracle_report_json_roundtrip_fields () =
  let report = Oracle.run ~threads:2 ~scale:0 ~bench:"hist" ~seed:9 () in
  let json = Oracle.to_json report in
  let module J = Rpb_benchmarks.Bench_json in
  let reparsed = J.of_string (J.to_string json) in
  Alcotest.(check int) "schema version survives" J.schema_version
    (J.get_int (J.member "schema_version" reparsed));
  Alcotest.(check string) "kind marker" "check"
    (J.get_str (J.member "kind" reparsed));
  Alcotest.(check bool) "ok flag" (Oracle.ok report)
    (J.get_bool (J.member "ok" reparsed));
  Alcotest.(check int) "all outcomes serialized"
    (List.length report.Oracle.outcomes)
    (List.length (J.get_list (J.member "oracle" reparsed)))

let test_oracle_detects_order_sensitivity () =
  (* A deliberately order-sensitive computation: under the shuffled executor
     the "last writer" of a shared cell differs from the in-order run.  This
     is the class of bug the oracle exists to expose; assert the harness's
     raw ingredients do expose it. *)
  let last_writer seed =
    Seq_exec.with_executor ~seed (fun pool ->
        let cell = ref (-1) in
        Pool.parallel_for ~grain:1 ~start:0 ~finish:64
          ~body:(fun i -> cell := i)
          pool;
        [| !cell |])
  in
  let in_order =
    Seq_exec.with_executor ~seed:0 ~shuffle:false (fun pool ->
        let cell = ref (-1) in
        Pool.parallel_for ~grain:1 ~start:0 ~finish:64
          ~body:(fun i -> cell := i)
          pool;
        [| !cell |])
  in
  Alcotest.(check bool) "in-order last writer is 63" true (in_order = [| 63 |]);
  (* Among a handful of seeds, at least one shuffled schedule must disagree
     with the in-order result. *)
  let disagrees = List.exists (fun s -> last_writer s <> [| 63 |]) [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check bool) "shuffled schedule exposes order-sensitivity" true
    disagrees

(* Every named scheduling policy must produce a clean oracle verdict: the
   policy's pool runs against the very same deterministic reference digests,
   so a policy that reorders, drops or duplicates work cannot pass.  One
   cheap benchmark per fear tier keeps the sweep fast. *)
let test_oracle_clean_under_every_policy () =
  List.iter
    (fun (p : Pool.Policy.t) ->
      List.iter
        (fun bench ->
          let report =
            Oracle.run ~threads:3 ~scale:0 ~bench ~policy:p ~seed:11 ()
          in
          if not (Oracle.ok report) then
            Alcotest.failf "policy %s fails the oracle on %s:\n%s"
              p.Pool.Policy.name bench (Oracle.summary report))
        [ "isort"; "sa"; "hist" ])
    Pool.Policy.all

(* ---------- The fault sweep ---------- *)

let test_fault_sweep_single_bench () =
  let report =
    Oracle.fault_sweep ~threads:3 ~scale:0 ~deadline:20. ~bench:"hist" ~seed:5 ()
  in
  Alcotest.(check bool) "hist fault sweep ok" true (Oracle.fault_ok report);
  Alcotest.(check int) "one run per schedule"
    (List.length Oracle.fault_schedules)
    (List.length report.Oracle.fr_outcomes);
  (* The contract behind "ok", spelled out: completed runs carry correct
     digests, failed runs raised, and the pool survived every run. *)
  List.iter
    (fun (o : Oracle.fault_outcome) ->
      if o.Oracle.f_completed then begin
        Alcotest.(check bool) "digest intact" true o.Oracle.f_digest_equal;
        Alcotest.(check bool) "verified" true o.Oracle.f_verified
      end
      else
        Alcotest.(check bool) "raised cleanly" true (o.Oracle.f_raised <> None);
      Alcotest.(check bool) "pool reusable" true o.Oracle.f_pool_reusable)
    report.Oracle.fr_outcomes;
  (* The seeded schedules must actually interfere: across three schedules at
     least one injection has to fire. *)
  Alcotest.(check bool) "injections fired" true
    (List.exists (fun o -> o.Oracle.f_injected > 0) report.Oracle.fr_outcomes)

let test_fault_sweep_deterministic () =
  let digest r =
    List.map
      (fun (o : Oracle.fault_outcome) ->
        (o.Oracle.f_bench, o.Oracle.f_schedule, o.Oracle.f_fault_seed))
      r.Oracle.fr_outcomes
  in
  let a = Oracle.fault_sweep ~threads:2 ~scale:0 ~bench:"dedup" ~seed:3 () in
  let b = Oracle.fault_sweep ~threads:2 ~scale:0 ~bench:"dedup" ~seed:3 () in
  Alcotest.(check bool) "equal seeds, equal schedules" true (digest a = digest b)

(* The batch-transfer path (steal_half re-pushing a stolen batch) under
   injected task exceptions, steal delays and degraded spawns: the failure
   semantics contract must hold exactly as it does for single steals. *)
let test_fault_sweep_steal_half_policy () =
  match Pool.Policy.find "steal_half" with
  | None -> Alcotest.fail "steal_half policy missing from the registry"
  | Some policy ->
    let report =
      Oracle.fault_sweep ~threads:3 ~scale:0 ~deadline:20. ~bench:"sort"
        ~policy ~seed:13 ()
    in
    if not (Oracle.fault_ok report) then
      Alcotest.failf "steal_half under faults:\n%s"
        (Oracle.fault_summary report)

(* The lazy splitter through the front door of `rpb check`: the oracle's
   pool executor under the "lazy" registry policy must match the
   deterministic reference digests on benchmarks from both ends of the fear
   spectrum.  (The every-policy sweep above covers this too; this case
   pins the name so a registry rename cannot silently drop the coverage.) *)
let test_oracle_clean_under_lazy () =
  match Pool.Policy.find "lazy" with
  | None -> Alcotest.fail "lazy policy missing from the registry"
  | Some policy ->
    List.iter
      (fun bench ->
        let report =
          Oracle.run ~threads:3 ~scale:0 ~bench ~policy ~seed:23 ()
        in
        if not (Oracle.ok report) then
          Alcotest.failf "lazy splitter fails the oracle on %s:\n%s" bench
            (Oracle.summary report))
      [ "sort"; "sa"; "hist" ]

(* The may-inline fast path under injected task exceptions, steal delays
   and degraded spawns, across three benchmarks: a chunk that raises
   mid-chomp must cancel the scope exactly like an eager leaf, and the
   published half-ranges must drain under the failure-semantics contract. *)
let test_fault_sweep_lazy_policy () =
  match Pool.Policy.find "lazy" with
  | None -> Alcotest.fail "lazy policy missing from the registry"
  | Some policy ->
    List.iter
      (fun bench ->
        let report =
          Oracle.fault_sweep ~threads:3 ~scale:0 ~deadline:20. ~bench ~policy
            ~seed:29 ()
        in
        if not (Oracle.fault_ok report) then
          Alcotest.failf "lazy splitter under faults on %s:\n%s" bench
            (Oracle.fault_summary report))
      [ "sort"; "sa"; "hist" ]

let test_fault_sweep_json_fields () =
  let report = Oracle.fault_sweep ~threads:2 ~scale:0 ~bench:"sort" ~seed:1 () in
  let module J = Rpb_benchmarks.Bench_json in
  let reparsed = J.of_string (J.to_string (Oracle.fault_to_json report)) in
  Alcotest.(check int) "schema version survives" J.schema_version
    (J.get_int (J.member "schema_version" reparsed));
  Alcotest.(check string) "kind marker" "fault"
    (J.get_str (J.member "kind" reparsed));
  Alcotest.(check bool) "ok flag" (Oracle.fault_ok report)
    (J.get_bool (J.member "ok" reparsed));
  Alcotest.(check int) "all runs serialized"
    (List.length report.Oracle.fr_outcomes)
    (List.length (J.get_list (J.member "runs" reparsed)))

let () =
  Alcotest.run "rpb_check"
    [
      ( "shadow_sngind",
        [
          Alcotest.test_case "duplicate detected (scared modes)" `Quick
            test_shadow_detects_duplicate_scared_modes;
          Alcotest.test_case "duplicate detected (multi-domain)" `Quick
            test_shadow_detects_duplicate_multi_domain;
          Alcotest.test_case "checked raises first" `Quick
            test_shadow_checked_raises_before_any_race;
          Alcotest.test_case "out of range all modes" `Quick
            test_shadow_out_of_range_all_modes;
        ] );
      ( "shadow_rngind",
        [
          Alcotest.test_case "non-monotone raises" `Quick
            test_chunks_non_monotone_checked_raises;
          Alcotest.test_case "overlap detected" `Quick
            test_chunks_overlap_detected_by_shadow;
          Alcotest.test_case "out of bounds" `Quick
            test_chunks_out_of_bounds_shadow_unchecked;
        ] );
      ( "shadow_switch",
        [
          Alcotest.test_case "disabled records nothing" `Quick
            test_shadow_disabled_records_nothing;
          Alcotest.test_case "epochs separate ops" `Quick
            test_shadow_epochs_separate_operations;
        ] );
      ( "seq_exec",
        [
          Alcotest.test_case "replays identically" `Quick
            test_seq_exec_replays_identically;
          Alcotest.test_case "covers all indices" `Quick
            test_seq_exec_shuffled_covers_all_indices;
          Alcotest.test_case "reduce order-stable" `Quick
            test_seq_exec_reduce_matches_inorder;
          Alcotest.test_case "join flips order" `Quick
            test_seq_exec_join_flips_order;
          Alcotest.test_case "deterministic flag" `Quick
            test_seq_exec_is_deterministic_flag;
        ] );
      ( "mark_table",
        [
          Alcotest.test_case "idempotent across calls" `Quick
            test_mark_table_idempotent_across_calls;
          Alcotest.test_case "reuses allocation" `Quick
            test_mark_table_reuses_allocation;
          Alcotest.test_case "concurrent validations" `Quick
            test_mark_table_concurrent_validations;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "single bench ok" `Quick test_oracle_single_bench_ok;
          Alcotest.test_case "json fields" `Quick
            test_oracle_report_json_roundtrip_fields;
          Alcotest.test_case "clean under every policy" `Quick
            test_oracle_clean_under_every_policy;
          Alcotest.test_case "clean under lazy splitting" `Quick
            test_oracle_clean_under_lazy;
          Alcotest.test_case "order sensitivity exposed" `Quick
            test_oracle_detects_order_sensitivity;
        ] );
      ( "fault_sweep",
        [
          Alcotest.test_case "single bench contract" `Quick
            test_fault_sweep_single_bench;
          Alcotest.test_case "deterministic schedules" `Quick
            test_fault_sweep_deterministic;
          Alcotest.test_case "steal_half under faults" `Quick
            test_fault_sweep_steal_half_policy;
          Alcotest.test_case "lazy splitter under faults (3 benches)" `Quick
            test_fault_sweep_lazy_policy;
          Alcotest.test_case "json fields" `Quick test_fault_sweep_json_fields;
        ] );
    ]
