(* Tests for rpb_core: pattern taxonomy, parallel iterators, and the checked
   indirect iterators (SngInd / RngInd). *)

open Rpb_core
open Rpb_pool

let with_pool n f =
  let pool = Pool.create ~num_workers:n () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let in_pool f = with_pool 3 (fun pool -> Pool.run pool (fun () -> f pool))

(* ---------- Pattern ---------- *)

let test_pattern_safety_table () =
  (* Table 3's fearlessness column. *)
  let expect =
    [
      (Pattern.RO, Pattern.Fearless);
      (Pattern.Stride, Pattern.Fearless);
      (Pattern.Block, Pattern.Fearless);
      (Pattern.DandC, Pattern.Fearless);
      (Pattern.SngInd, Pattern.Comfortable);
      (Pattern.RngInd, Pattern.Comfortable);
      (Pattern.AW, Pattern.Scared);
    ]
  in
  List.iter
    (fun (a, f) ->
      Alcotest.(check string)
        (Pattern.access_name a)
        (Pattern.fear_name f)
        (Pattern.fear_name (Pattern.safety a)))
    expect

let test_pattern_names_roundtrip () =
  List.iter
    (fun a ->
      match Pattern.access_of_string (Pattern.access_name a) with
      | Some a' ->
        Alcotest.(check string) "roundtrip" (Pattern.access_name a)
          (Pattern.access_name a')
      | None -> Alcotest.fail "name did not parse")
    Pattern.all_accesses

let test_pattern_irregularity () =
  (* Fig. 1 poles: array reduction = 0, relaxed Dijkstra = 4. *)
  let reduction =
    Pattern.
      { data = Structured; op = Read_only; dispatch = Static; ordering = Unordered }
  in
  let dijkstra =
    Pattern.
      {
        data = Unstructured;
        op = Arbitrary_read_write;
        dispatch = Dynamic;
        ordering = Ordered;
      }
  in
  Alcotest.(check int) "reduction" 0 (Pattern.irregularity_index reduction);
  Alcotest.(check int) "dijkstra" 5 (Pattern.irregularity_index dijkstra);
  Alcotest.(check bool) "reduction regular" true (Pattern.is_regular reduction);
  Alcotest.(check bool) "dijkstra irregular" false (Pattern.is_regular dijkstra)

let test_pattern_classification () =
  let shape data op =
    Pattern.{ data; op; dispatch = Static; ordering = Unordered }
  in
  Alcotest.(check (list string))
    "read only" [ "RO" ]
    (List.map Pattern.access_name
       (Pattern.classify_access (shape Pattern.Structured Pattern.Read_only)));
  Alcotest.(check (list string))
    "local structured" [ "Stride"; "Block"; "D&C" ]
    (List.map Pattern.access_name
       (Pattern.classify_access (shape Pattern.Structured Pattern.Local_read_write)));
  Alcotest.(check (list string))
    "local unstructured" [ "SngInd"; "RngInd" ]
    (List.map Pattern.access_name
       (Pattern.classify_access
          (shape Pattern.Unstructured Pattern.Local_read_write)));
  Alcotest.(check (list string))
    "arbitrary" [ "AW" ]
    (List.map Pattern.access_name
       (Pattern.classify_access
          (shape Pattern.Unstructured Pattern.Arbitrary_read_write)))

(* ---------- Par_array ---------- *)

let test_par_map () =
  in_pool (fun pool ->
      let a = Array.init 1000 Fun.id in
      let b = Par_array.map pool (fun x -> x * x) a in
      Alcotest.(check bool) "squares" true
        (Rpb_prim.Util.array_for_all_i (fun i x -> x = i * i) b))

let test_par_map_inplace_stride () =
  (* The Stride example of Listing 4: vector[i] *= vector[i]. *)
  in_pool (fun pool ->
      let a = Array.init 1000 (fun i -> i + 1) in
      Par_array.map_inplace pool (fun x -> x * x) a;
      Alcotest.(check bool) "in place squares" true
        (Rpb_prim.Util.array_for_all_i (fun i x -> x = (i + 1) * (i + 1)) a))

let test_par_init_and_fill () =
  in_pool (fun pool ->
      let a = Par_array.init pool 257 (fun i -> 2 * i) in
      Alcotest.(check int) "len" 257 (Array.length a);
      Alcotest.(check bool) "contents" true
        (Rpb_prim.Util.array_for_all_i (fun i x -> x = 2 * i) a);
      let b = Array.make 100 0 in
      Par_array.fill_stride pool b (fun i -> i + 7);
      Alcotest.(check bool) "fill" true
        (Rpb_prim.Util.array_for_all_i (fun i x -> x = i + 7) b))

let test_par_reduce_matches_listing3 () =
  (* Listing 3(c): chunked parallel sum. *)
  in_pool (fun pool ->
      let v = Array.init 12345 (fun i -> i mod 97) in
      let expected = Array.fold_left ( + ) 0 v in
      Alcotest.(check int) "sum" expected (Par_array.sum pool v);
      Alcotest.(check (float 1e-9)) "fsum" (float_of_int expected)
        (Par_array.sum_float pool (Array.map float_of_int v)))

let test_par_minmax_count () =
  in_pool (fun pool ->
      let a = [| 5; 3; 9; 1; 7 |] in
      Alcotest.(check (option int)) "min" (Some 1) (Par_array.min_elt pool ~cmp:compare a);
      Alcotest.(check (option int)) "max" (Some 9) (Par_array.max_elt pool ~cmp:compare a);
      Alcotest.(check (option int)) "empty min" None
        (Par_array.min_elt pool ~cmp:compare ([||] : int array));
      Alcotest.(check int) "count odd" 5 (Par_array.count pool (fun x -> x land 1 = 1) a);
      Alcotest.(check int) "count big" 3 (Par_array.count pool (fun x -> x >= 5) a);
      Alcotest.(check bool) "for_all" true (Par_array.for_all pool (fun x -> x > 0) a);
      Alcotest.(check bool) "exists" true (Par_array.exists pool (fun x -> x = 9) a);
      Alcotest.(check bool) "not exists" false (Par_array.exists pool (fun x -> x = 100) a))

let test_par_chunks_block () =
  (* Block pattern of Listing 5: per-chunk writes. *)
  in_pool (fun pool ->
      let n = 1000 in
      let a = Array.make n (-1) in
      Par_array.chunks pool ~chunk:128 a (fun lo hi ->
          for i = lo to hi - 1 do
            a.(i) <- lo
          done);
      Alcotest.(check bool) "chunk id written" true
        (Rpb_prim.Util.array_for_all_i (fun i x -> x = i / 128 * 128) a))

let test_par_copy_blit_reverse () =
  in_pool (fun pool ->
      let a = Array.init 500 Fun.id in
      let b = Par_array.copy pool a in
      Alcotest.(check bool) "copy equal" true (a = b);
      Alcotest.(check bool) "copy distinct" false (a == b);
      let c = Array.make 500 0 in
      Par_array.blit pool ~src:a ~dst:c;
      Alcotest.(check bool) "blit" true (a = c);
      Par_array.reverse_inplace pool c;
      Alcotest.(check bool) "reversed" true
        (Rpb_prim.Util.array_for_all_i (fun i x -> x = 499 - i) c))

(* ---------- Scatter (SngInd) ---------- *)

let test_scatter_permutation_all_modes () =
  in_pool (fun pool ->
      let n = 2000 in
      let rng = Rpb_prim.Rng.create 17 in
      let offsets = Rpb_prim.Rng.permutation rng n in
      let src = Array.init n (fun i -> i * 3) in
      let expected = Array.make n 0 in
      Array.iteri (fun i o -> expected.(o) <- src.(i)) offsets;
      List.iter
        (fun mode ->
          match mode with
          | Scatter.Atomic ->
            let out = Rpb_prim.Atomic_array.make n 0 in
            Scatter.atomic pool ~out ~offsets ~src;
            Alcotest.(check bool) "atomic" true
              (Rpb_prim.Atomic_array.to_array out = expected)
          | _ ->
            let out = Array.make n 0 in
            Scatter.scatter mode pool ~out ~offsets ~src;
            Alcotest.(check bool) (Scatter.mode_name mode) true (out = expected))
        Scatter.all_modes)

let test_scatter_checked_detects_duplicate () =
  in_pool (fun pool ->
      let offsets = [| 0; 1; 2; 1; 4 |] in
      let src = Array.make 5 9 in
      let out = Array.make 5 0 in
      let raised =
        try
          Scatter.checked pool ~out ~offsets ~src;
          false
        with Scatter.Duplicate_offset 1 -> true
      in
      Alcotest.(check bool) "duplicate caught (mark)" true raised;
      let raised =
        try
          Scatter.checked ~strategy:Scatter.Sort_based pool ~out ~offsets ~src;
          false
        with Scatter.Duplicate_offset 1 -> true
      in
      Alcotest.(check bool) "duplicate caught (sort)" true raised)

let test_scatter_checked_detects_out_of_range () =
  in_pool (fun pool ->
      let offsets = [| 0; 5; 2 |] in
      let src = Array.make 3 1 in
      let out = Array.make 3 0 in
      Alcotest.check_raises "out of range" (Scatter.Offset_out_of_range 5)
        (fun () -> Scatter.checked pool ~out ~offsets ~src))

let test_scatter_unchecked_accepts_duplicates_silently () =
  (* The scary mode: a buggy offsets array silently corrupts the output —
     exactly the paper's Listing 6(d) failure mode. *)
  in_pool (fun pool ->
      let offsets = [| 0; 1; 1 |] in
      let src = [| 10; 20; 30 |] in
      let out = Array.make 3 0 in
      Scatter.unchecked pool ~out ~offsets ~src;
      Alcotest.(check int) "slot 0" 10 out.(0);
      Alcotest.(check bool) "slot 1 is one of the racers" true
        (out.(1) = 20 || out.(1) = 30);
      Alcotest.(check int) "slot 2 untouched" 0 out.(2))

let test_scatter_checked_mark_table_abort_safe () =
  (* Regression: a validation pass aborted mid-flight (duplicate found, or a
     fault-injected task exception) must leave the shared cached mark table
     valid — later validations on the same table get no false positives and
     no missed duplicates. *)
  in_pool (fun pool ->
      let n = 4_096 in
      let rng = Rpb_prim.Rng.create 31 in
      let valid () = Rpb_prim.Rng.permutation rng n in
      let src = Array.init n Fun.id in
      let out = Array.make n 0 in
      for round = 1 to 5 do
        (* Abort by duplicate: hide one at the far end. *)
        let offsets = valid () in
        offsets.(n - 1) <- offsets.(0);
        (match Scatter.checked pool ~out ~offsets ~src with
         | () -> Alcotest.failf "round %d: duplicate missed" round
         | exception Scatter.Duplicate_offset _ -> ());
        (* The next valid validation on the same cached table must pass. *)
        Scatter.checked pool ~out ~offsets:(valid ()) ~src
      done;
      (* Abort mid-pass by injected task exceptions, then validate clean. *)
      Pool.Fault.enable { Pool.Fault.off with seed = 5; task_exn = 0.05 };
      Fun.protect ~finally:Pool.Fault.disable (fun () ->
          for _ = 1 to 5 do
            match Scatter.checked pool ~out ~offsets:(valid ()) ~src with
            | () -> ()
            | exception Pool.Fault.Injected _ -> ()
          done);
      Pool.Fault.disable ();
      Scatter.checked pool ~out ~offsets:(valid ()) ~src;
      (* And a planted duplicate is still caught after all that churn. *)
      let offsets = valid () in
      offsets.(0) <- offsets.(n - 1);
      match Scatter.checked pool ~out ~offsets ~src with
      | () -> Alcotest.fail "duplicate missed after aborted passes"
      | exception Scatter.Duplicate_offset _ -> ())

let test_scatter_length_mismatch () =
  in_pool (fun pool ->
      let out = Array.make 3 0 in
      Alcotest.check_raises "mismatch"
        (Invalid_argument "Scatter: offsets and src length mismatch") (fun () ->
          Scatter.unchecked pool ~out ~offsets:[| 0; 1 |] ~src:[| 1 |]))

let test_scatter_generic_atomic_rejected () =
  in_pool (fun pool ->
      let out = Array.make 2 0 in
      Alcotest.check_raises "atomic via generic"
        (Invalid_argument "Scatter.scatter: Atomic mode needs Scatter.atomic")
        (fun () ->
          Scatter.scatter Scatter.Atomic pool ~out ~offsets:[| 0; 1 |]
            ~src:[| 1; 2 |]))

let test_gather () =
  in_pool (fun pool ->
      let src = [| 10; 20; 30; 40 |] in
      let got = Scatter.gather pool ~src ~offsets:[| 3; 3; 0; 2 |] in
      Alcotest.(check bool) "gather" true (got = [| 40; 40; 10; 30 |]))

(* ---------- Chunks_ind (RngInd) ---------- *)

let test_chunks_ind_disjoint_fill () =
  in_pool (fun pool ->
      let out = Array.make 10 (-1) in
      let offsets = [| 0; 3; 3; 8; 10 |] in
      Chunks_ind.fill_chunks_ind pool ~out ~offsets ~f:(fun chunk _j -> chunk);
      Alcotest.(check bool) "chunks written" true
        (out = [| 0; 0; 0; 2; 2; 2; 2; 2; 3; 3 |]))

let test_chunks_ind_detects_non_monotonic () =
  in_pool (fun pool ->
      let out = Array.make 10 0 in
      let offsets = [| 0; 5; 3; 10 |] in
      Alcotest.check_raises "non monotonic" (Chunks_ind.Non_monotonic 1)
        (fun () ->
          Chunks_ind.fill_chunks_ind pool ~out ~offsets ~f:(fun _ _ -> 1)))

let test_chunks_ind_detects_out_of_bounds () =
  in_pool (fun pool ->
      let out = Array.make 4 0 in
      let offsets = [| 0; 2; 7 |] in
      Alcotest.check_raises "range" (Chunks_ind.Range_out_of_bounds 7) (fun () ->
          Chunks_ind.fill_chunks_ind pool ~out ~offsets ~f:(fun _ _ -> 1)))

let test_chunks_ind_unchecked_skips_validation () =
  in_pool (fun pool ->
      (* Valid offsets with check disabled still work. *)
      let out = Array.make 6 0 in
      let offsets = [| 0; 2; 6 |] in
      Chunks_ind.fill_chunks_ind ~check:false pool ~out ~offsets
        ~f:(fun chunk _ -> chunk + 1);
      Alcotest.(check bool) "written" true (out = [| 1; 1; 2; 2; 2; 2 |]))

let test_chunks_ind_empty_cases () =
  in_pool (fun pool ->
      let out = Array.make 4 7 in
      Chunks_ind.fill_chunks_ind pool ~out ~offsets:[||] ~f:(fun _ _ -> 0);
      Chunks_ind.fill_chunks_ind pool ~out ~offsets:[| 2 |] ~f:(fun _ _ -> 0);
      Alcotest.(check bool) "untouched" true (out = [| 7; 7; 7; 7 |]))

(* ---------- properties ---------- *)

let prop_map_matches_sequential =
  QCheck.Test.make ~name:"Par_array.map = Array.map" ~count:30
    QCheck.(list small_int)
    (fun xs ->
      let a = Array.of_list xs in
      with_pool 2 (fun pool ->
          Pool.run pool (fun () -> Par_array.map pool succ a = Array.map succ a)))

let prop_scatter_checked_permutation =
  QCheck.Test.make ~name:"checked scatter inverts gather on permutations"
    ~count:30 QCheck.small_nat (fun seed ->
      let n = 200 in
      let offsets = Rpb_prim.Rng.permutation (Rpb_prim.Rng.create seed) n in
      let src = Array.init n Fun.id in
      with_pool 2 (fun pool ->
          Pool.run pool (fun () ->
              let out = Array.make n (-1) in
              Scatter.checked pool ~out ~offsets ~src;
              (* gathering back through offsets recovers src *)
              Scatter.gather pool ~src:out ~offsets = src)))

let prop_validate_strategies_agree =
  QCheck.Test.make ~name:"mark and sort uniqueness checks agree" ~count:50
    QCheck.(list (int_bound 50))
    (fun xs ->
      let offsets = Array.of_list xs in
      with_pool 2 (fun pool ->
          Pool.run pool (fun () ->
              let r1 =
                try
                  Scatter.validate_offsets ~strategy:Scatter.Mark_table pool
                    ~n:51 offsets;
                  true
                with Scatter.Duplicate_offset _ -> false
              in
              let r2 =
                try
                  Scatter.validate_offsets ~strategy:Scatter.Sort_based pool
                    ~n:51 offsets;
                  true
                with Scatter.Duplicate_offset _ -> false
              in
              r1 = r2)))

let () =
  Alcotest.run "rpb_core"
    [
      ( "pattern",
        [
          Alcotest.test_case "safety table" `Quick test_pattern_safety_table;
          Alcotest.test_case "names roundtrip" `Quick test_pattern_names_roundtrip;
          Alcotest.test_case "irregularity index" `Quick test_pattern_irregularity;
          Alcotest.test_case "classification" `Quick test_pattern_classification;
        ] );
      ( "par_array",
        [
          Alcotest.test_case "map" `Quick test_par_map;
          Alcotest.test_case "map_inplace stride" `Quick test_par_map_inplace_stride;
          Alcotest.test_case "init/fill" `Quick test_par_init_and_fill;
          Alcotest.test_case "reduce sum" `Quick test_par_reduce_matches_listing3;
          Alcotest.test_case "min/max/count" `Quick test_par_minmax_count;
          Alcotest.test_case "chunks block" `Quick test_par_chunks_block;
          Alcotest.test_case "copy/blit/reverse" `Quick test_par_copy_blit_reverse;
          QCheck_alcotest.to_alcotest prop_map_matches_sequential;
        ] );
      ( "scatter",
        [
          Alcotest.test_case "permutation all modes" `Quick
            test_scatter_permutation_all_modes;
          Alcotest.test_case "checked detects duplicate" `Quick
            test_scatter_checked_detects_duplicate;
          Alcotest.test_case "checked detects out of range" `Quick
            test_scatter_checked_detects_out_of_range;
          Alcotest.test_case "unchecked silent corruption" `Quick
            test_scatter_unchecked_accepts_duplicates_silently;
          Alcotest.test_case "mark table abort-safe" `Quick
            test_scatter_checked_mark_table_abort_safe;
          Alcotest.test_case "length mismatch" `Quick test_scatter_length_mismatch;
          Alcotest.test_case "generic atomic rejected" `Quick
            test_scatter_generic_atomic_rejected;
          Alcotest.test_case "gather" `Quick test_gather;
          QCheck_alcotest.to_alcotest prop_scatter_checked_permutation;
          QCheck_alcotest.to_alcotest prop_validate_strategies_agree;
        ] );
      ( "chunks_ind",
        [
          Alcotest.test_case "disjoint fill" `Quick test_chunks_ind_disjoint_fill;
          Alcotest.test_case "non-monotonic detected" `Quick
            test_chunks_ind_detects_non_monotonic;
          Alcotest.test_case "out of bounds detected" `Quick
            test_chunks_ind_detects_out_of_bounds;
          Alcotest.test_case "unchecked" `Quick
            test_chunks_ind_unchecked_skips_validation;
          Alcotest.test_case "empty cases" `Quick test_chunks_ind_empty_cases;
        ] );
    ]
