(* Tests for the PBBS-technique extensions: list ranking, group_by,
   PageRank, parallel BWT decode, and the benign-race phase. *)

open Rpb_pool

let with_pool n f =
  let pool = Pool.create ~num_workers:n () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let in_pool f = with_pool 3 (fun pool -> Pool.run pool (fun () -> f pool))

(* ---------- List_ranking ---------- *)

let test_list_ranking_chain () =
  in_pool (fun pool ->
      (* 0 -> 1 -> 2 -> 3 -> end *)
      let next = [| 1; 2; 3; -1 |] in
      let dist = Rpb_parseq.List_ranking.rank pool ~next in
      Alcotest.(check bool) "distances" true (dist = [| 3; 2; 1; 0 |]))

let test_list_ranking_multiple_chains () =
  in_pool (fun pool ->
      (* chains: 0->2->end ; 1->end ; 3->4->5->end *)
      let next = [| 2; -1; -1; 4; 5; -1 |] in
      let dist = Rpb_parseq.List_ranking.rank pool ~next in
      Alcotest.(check bool) "per-chain distances" true
        (dist = [| 1; 0; 0; 2; 1; 0 |]))

let test_list_ranking_long_chain () =
  in_pool (fun pool ->
      let n = 10_000 in
      (* A scrambled chain: node p(i) -> p(i+1). *)
      let perm = Rpb_prim.Rng.permutation (Rpb_prim.Rng.create 4) n in
      let next = Array.make n (-1) in
      for i = 0 to n - 2 do
        next.(perm.(i)) <- perm.(i + 1)
      done;
      let dist = Rpb_parseq.List_ranking.rank pool ~next in
      let ok = ref true in
      for i = 0 to n - 1 do
        if dist.(perm.(i)) <> n - 1 - i then ok := false
      done;
      Alcotest.(check bool) "scrambled chain ranks" true !ok)

let test_list_ranking_cycle_detected () =
  in_pool (fun pool ->
      let next = [| 1; 2; 0 |] in
      match Rpb_parseq.List_ranking.rank pool ~next with
      | _ -> Alcotest.fail "cycle must be rejected"
      | exception Invalid_argument _ -> ())

let test_list_ranking_cycle_positions () =
  in_pool (fun pool ->
      (* cycle 0 -> 3 -> 1 -> 2 -> 0 *)
      let next = [| 3; 2; 0; 1 |] in
      let pos = Rpb_parseq.List_ranking.rank_cycle pool ~next ~start:0 in
      Alcotest.(check bool) "positions" true (pos = [| 0; 2; 3; 1 |]))

let prop_list_ranking_random_permutation_cycles =
  QCheck.Test.make ~name:"rank_cycle = sequential walk" ~count:20
    QCheck.small_nat
    (fun seed ->
      let n = 500 in
      (* A random single-cycle permutation via a random order. *)
      let order = Rpb_prim.Rng.permutation (Rpb_prim.Rng.create seed) n in
      let next = Array.make n 0 in
      for i = 0 to n - 1 do
        next.(order.(i)) <- order.((i + 1) mod n)
      done;
      with_pool 2 (fun pool ->
          Pool.run pool (fun () ->
              let start = order.(0) in
              let pos = Rpb_parseq.List_ranking.rank_cycle pool ~next ~start in
              (* Sequential walk oracle. *)
              let ok = ref true in
              let cur = ref start in
              for t = 0 to n - 1 do
                if pos.(!cur) <> t then ok := false;
                cur := next.(!cur)
              done;
              !ok)))

(* ---------- Random_perm (deterministic reservations) ---------- *)

let test_random_perm_equals_sequential () =
  in_pool (fun pool ->
      List.iter
        (fun (seed, n) ->
          let par = Rpb_parseq.Random_perm.permutation pool ~seed n in
          let seq = Rpb_parseq.Random_perm.permutation_seq ~seed n in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d n %d identical" seed n)
            true (par = seq))
        [ (1, 1); (2, 2); (3, 100); (4, 1000); (5, 10_000) ])

let test_random_perm_is_permutation () =
  in_pool (fun pool ->
      let n = 5_000 in
      let p = Rpb_parseq.Random_perm.permutation pool ~seed:6 n in
      let seen = Array.make n false in
      Array.iter (fun x -> seen.(x) <- true) p;
      Alcotest.(check bool) "bijection" true (Array.for_all Fun.id seen))

let test_random_perm_shuffle_payload () =
  in_pool (fun pool ->
      let words = Array.init 500 string_of_int in
      let shuffled = Array.copy words in
      Rpb_parseq.Random_perm.shuffle_inplace pool ~seed:7 shuffled;
      Alcotest.(check bool) "same multiset" true
        (List.sort compare (Array.to_list shuffled)
        = List.sort compare (Array.to_list words));
      Alcotest.(check bool) "actually moved" true (shuffled <> words);
      (* Same permutation as the int version. *)
      let p = Rpb_parseq.Random_perm.permutation pool ~seed:7 500 in
      Alcotest.(check bool) "matches permutation" true
        (Rpb_prim.Util.array_for_all_i (fun i x -> x = words.(p.(i))) shuffled))

let test_random_perm_uniformity_smoke () =
  in_pool (fun pool ->
      (* First-position distribution over many seeds should spread. *)
      let n = 16 in
      let counts = Array.make n 0 in
      for seed = 0 to 399 do
        let p = Rpb_parseq.Random_perm.permutation pool ~seed n in
        counts.(p.(0)) <- counts.(p.(0)) + 1
      done;
      Array.iter
        (fun c ->
          Alcotest.(check bool)
            (Printf.sprintf "roughly uniform (%d)" c)
            true
            (c > 5 && c < 70))
        counts)

(* ---------- Group_by ---------- *)

let test_group_by_basic () =
  in_pool (fun pool ->
      let a = [| ("a", 1); ("b", 0); ("c", 1); ("d", 2); ("e", 0) |] in
      let groups = Rpb_parseq.Group_by.group_by pool ~key:snd ~buckets:4 a in
      Alcotest.(check int) "group count" 3 (Array.length groups);
      let k0, g0 = groups.(0) in
      Alcotest.(check int) "key 0" 0 k0;
      Alcotest.(check bool) "stable group 0" true (g0 = [| ("b", 0); ("e", 0) |]);
      let k1, g1 = groups.(1) in
      Alcotest.(check bool) "group 1" true (k1 = 1 && g1 = [| ("a", 1); ("c", 1) |]))

let test_group_by_counts () =
  in_pool (fun pool ->
      let a = Array.init 1000 (fun i -> i) in
      let counts = Rpb_parseq.Group_by.count_by pool ~key:(fun x -> x mod 10) ~buckets:10 a in
      Alcotest.(check bool) "uniform" true (Array.for_all (fun c -> c = 100) counts);
      Alcotest.(check bool) "empty input" true
        (Rpb_parseq.Group_by.group_by pool ~key:Fun.id ~buckets:4 ([||] : int array) = [||]))

(* ---------- Pagerank ---------- *)

let test_pagerank_sums_to_one () =
  in_pool (fun pool ->
      let g = Rpb_graph.Generate.by_name pool ~name:"rmat" ~scale:9 ~weighted:false in
      let r = Rpb_graph.Pagerank.compute pool g in
      let total = Array.fold_left ( +. ) 0.0 r in
      Alcotest.(check (float 1e-6)) "mass conserved" 1.0 total)

let test_pagerank_pull_matches_seq_push () =
  in_pool (fun pool ->
      let g = Rpb_graph.Generate.by_name pool ~name:"rmat" ~scale:8 ~weighted:false in
      let par = Rpb_graph.Pagerank.compute ~method_:Rpb_graph.Pagerank.Pull pool g in
      let seq = Rpb_graph.Pagerank.compute_seq g in
      Alcotest.(check bool)
        (Printf.sprintf "max diff %.2e" (Rpb_graph.Pagerank.max_abs_diff par seq))
        true
        (Rpb_graph.Pagerank.max_abs_diff par seq < 1e-9))

let test_pagerank_mutex_matches_seq () =
  in_pool (fun pool ->
      let g = Rpb_graph.Generate.by_name pool ~name:"road" ~scale:8 ~weighted:false in
      let par = Rpb_graph.Pagerank.compute ~method_:Rpb_graph.Pagerank.Push_mutex pool g in
      let seq = Rpb_graph.Pagerank.compute_seq g in
      Alcotest.(check bool) "mutex push exact" true
        (Rpb_graph.Pagerank.max_abs_diff par seq < 1e-9))

let test_pagerank_star_ranks_center_highest () =
  in_pool (fun pool ->
      (* Star: everyone points to 0. *)
      let n = 50 in
      let edges = Array.init (n - 1) (fun i -> (i + 1, 0)) in
      let g = Rpb_graph.Csr.of_edges pool ~n edges in
      let r = Rpb_graph.Pagerank.compute pool g in
      for v = 1 to n - 1 do
        Alcotest.(check bool) "center dominates" true (r.(0) > r.(v))
      done)

let test_pagerank_racy_at_one_worker_is_exact () =
  with_pool 1 (fun pool ->
      Pool.run pool (fun () ->
          let g = Rpb_graph.Generate.by_name pool ~name:"rmat" ~scale:7 ~weighted:false in
          let racy =
            Rpb_graph.Pagerank.compute ~method_:Rpb_graph.Pagerank.Push_float_racy
              pool g
          in
          let seq = Rpb_graph.Pagerank.compute_seq g in
          Alcotest.(check bool) "single worker = no races = exact" true
            (Rpb_graph.Pagerank.max_abs_diff racy seq < 1e-9)))

(* ---------- Bwt extensions ---------- *)

let test_bwt_decode_parallel_roundtrip () =
  in_pool (fun pool ->
      List.iter
        (fun s ->
          let enc = Rpb_text.Bwt.encode pool s in
          Alcotest.(check string) "list-ranking decode" s
            (Rpb_text.Bwt.decode_parallel pool enc))
        [
          "banana";
          "a";
          "mississippi";
          Rpb_text.Text_gen.wiki ~size:4_000 ~seed:21;
          Rpb_text.Text_gen.periodic ~size:1_024 ~period:"abcab";
        ])

let test_bwt_decode_parallel_equals_sequential () =
  in_pool (fun pool ->
      let s = Rpb_text.Text_gen.wiki ~size:8_000 ~seed:22 in
      let enc = Rpb_text.Bwt.encode pool s in
      Alcotest.(check string) "both decoders agree"
        (Rpb_text.Bwt.decode pool enc)
        (Rpb_text.Bwt.decode_parallel pool enc))

let test_distinct_chars_modes_agree () =
  in_pool (fun pool ->
      let s = Rpb_text.Text_gen.wiki ~size:5_000 ~seed:23 in
      let racy = Rpb_text.Bwt.distinct_chars `Racy pool s in
      let atomic = Rpb_text.Bwt.distinct_chars `Atomic pool s in
      Alcotest.(check bool) "benign race = atomic result" true (racy = atomic);
      (* Oracle. *)
      let expected = Array.make 256 false in
      String.iter (fun c -> expected.(Char.code c) <- true) s;
      Alcotest.(check bool) "matches oracle" true (atomic = expected))

let () =
  Alcotest.run "rpb_extensions"
    [
      ( "list_ranking",
        [
          Alcotest.test_case "chain" `Quick test_list_ranking_chain;
          Alcotest.test_case "multiple chains" `Quick
            test_list_ranking_multiple_chains;
          Alcotest.test_case "long scrambled chain" `Quick
            test_list_ranking_long_chain;
          Alcotest.test_case "cycle detected" `Quick test_list_ranking_cycle_detected;
          Alcotest.test_case "cycle positions" `Quick
            test_list_ranking_cycle_positions;
          QCheck_alcotest.to_alcotest prop_list_ranking_random_permutation_cycles;
        ] );
      ( "random_perm",
        [
          Alcotest.test_case "parallel = sequential shuffle" `Quick
            test_random_perm_equals_sequential;
          Alcotest.test_case "bijection" `Quick test_random_perm_is_permutation;
          Alcotest.test_case "payload shuffle" `Quick test_random_perm_shuffle_payload;
          Alcotest.test_case "uniformity smoke" `Quick
            test_random_perm_uniformity_smoke;
        ] );
      ( "group_by",
        [
          Alcotest.test_case "basic" `Quick test_group_by_basic;
          Alcotest.test_case "counts" `Quick test_group_by_counts;
        ] );
      ( "pagerank",
        [
          Alcotest.test_case "mass conserved" `Quick test_pagerank_sums_to_one;
          Alcotest.test_case "pull = seq push" `Quick
            test_pagerank_pull_matches_seq_push;
          Alcotest.test_case "mutex = seq" `Quick test_pagerank_mutex_matches_seq;
          Alcotest.test_case "star center" `Quick
            test_pagerank_star_ranks_center_highest;
          Alcotest.test_case "racy exact at 1 worker" `Quick
            test_pagerank_racy_at_one_worker_is_exact;
        ] );
      ( "bwt_parallel",
        [
          Alcotest.test_case "list-ranking roundtrip" `Quick
            test_bwt_decode_parallel_roundtrip;
          Alcotest.test_case "decoders agree" `Quick
            test_bwt_decode_parallel_equals_sequential;
          Alcotest.test_case "benign race distinct chars" `Quick
            test_distinct_chars_modes_agree;
        ] );
    ]
