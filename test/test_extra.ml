(* Tests for the "absent patterns" library: STM, futures, speculation,
   pipelines, branch and bound, channels. *)

open Rpb_extra
open Rpb_pool

let with_pool n f =
  let pool = Pool.create ~num_workers:n () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* ---------- Stm ---------- *)

let test_stm_read_write () =
  let v = Stm.tvar 5 in
  Alcotest.(check int) "initial" 5 (Stm.get v);
  Stm.set v 7;
  Alcotest.(check int) "set" 7 (Stm.get v);
  let doubled = Stm.atomically (fun tx ->
      let x = Stm.read tx v in
      Stm.write tx v (2 * x);
      x)
  in
  Alcotest.(check int) "tx returns" 7 doubled;
  Alcotest.(check int) "tx applied" 14 (Stm.get v)

let test_stm_read_your_writes () =
  let v = Stm.tvar 1 in
  Stm.atomically (fun tx ->
      Stm.write tx v 10;
      Alcotest.(check int) "buffered read" 10 (Stm.read tx v);
      Stm.write tx v 20);
  Alcotest.(check int) "final" 20 (Stm.get v)

let test_stm_multi_var_consistency () =
  (* Transfer money between accounts from many domains: total conserved. *)
  let accounts = Array.init 8 (fun _ -> Stm.tvar 1000) in
  let transfers_per_domain = 2_000 in
  let ds =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let rng = Rpb_prim.Rng.create (50 + d) in
            for _ = 1 to transfers_per_domain do
              let a = Rpb_prim.Rng.int rng 8 in
              let b = (a + 1 + Rpb_prim.Rng.int rng 7) mod 8 in
              let amount = Rpb_prim.Rng.int rng 50 in
              Stm.atomically (fun tx ->
                  let xa = Stm.read tx accounts.(a) in
                  let xb = Stm.read tx accounts.(b) in
                  Stm.write tx accounts.(a) (xa - amount);
                  Stm.write tx accounts.(b) (xb + amount))
            done))
  in
  List.iter Domain.join ds;
  let total = Array.fold_left (fun acc v -> acc + Stm.get v) 0 accounts in
  Alcotest.(check int) "money conserved" 8000 total

let test_stm_concurrent_counter () =
  let c = Stm.tvar 0 in
  let per = 5_000 in
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              Stm.atomically (fun tx -> Stm.write tx c (Stm.read tx c + 1))
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost increments" (4 * per) (Stm.get c)

let test_stm_user_abort () =
  let v = Stm.tvar 3 in
  (match Stm.atomically (fun tx ->
       Stm.write tx v 99;
       raise Stm.Abort)
   with
   | _ -> Alcotest.fail "abort must propagate"
   | exception Stm.Abort -> ());
  Alcotest.(check int) "write rolled back" 3 (Stm.get v)

let test_stm_aborts_counted () =
  (* With heavy contention some aborts must occur (sanity of the retry
     machinery); with none, zero should be possible but we only check the
     counters are monotone and consistent. *)
  let c0, a0 = Stm.stats () in
  let v = Stm.tvar 0 in
  Stm.atomically (fun tx -> Stm.write tx v 1);
  let c1, a1 = Stm.stats () in
  Alcotest.(check bool) "commit counted" true (c1 > c0);
  Alcotest.(check bool) "aborts monotone" true (a1 >= a0)

(* ---------- Future ---------- *)

let test_future_basic () =
  with_pool 3 (fun pool ->
      Pool.run pool (fun () ->
          let f = Future.spawn pool (fun () -> 6 * 7) in
          Alcotest.(check int) "get" 42 (Future.get pool f);
          Alcotest.(check (option int)) "poll after" (Some 42) (Future.poll f);
          Alcotest.(check int) "value" 5 (Future.get pool (Future.value 5))))

let test_future_map_both () =
  with_pool 3 (fun pool ->
      Pool.run pool (fun () ->
          let f = Future.spawn pool (fun () -> 10) in
          let g = Future.map pool (fun x -> x + 1) f in
          let h = Future.both pool g (Future.value "x") in
          let a, b = Future.get pool h in
          Alcotest.(check int) "mapped" 11 a;
          Alcotest.(check string) "paired" "x" b))

let test_future_non_strict_join () =
  (* A future spawned by one task and awaited by a sibling — the non-strict
     fork-join shape of Sec. 6. *)
  with_pool 3 (fun pool ->
      Pool.run pool (fun () ->
          let shared = Future.spawn pool (fun () -> 21) in
          let consumers =
            List.init 4 (fun i ->
                Pool.async pool (fun () -> (i + 1) * Future.get pool shared))
          in
          let total = List.fold_left (fun acc p -> acc + Pool.await pool p) 0 consumers in
          Alcotest.(check int) "all consumers saw it" (21 * 10) total))

let test_future_exception () =
  with_pool 2 (fun pool ->
      Pool.run pool (fun () ->
          let f = Future.spawn pool (fun () -> failwith "fut") in
          Alcotest.check_raises "get re-raises" (Failure "fut") (fun () ->
              ignore (Future.get pool f))))

(* ---------- Speculate ---------- *)

let test_speculate_select () =
  with_pool 3 (fun pool ->
      Pool.run pool (fun () ->
          let x =
            Speculate.select pool ~guard:(fun () -> true) (fun () -> "then")
              (fun () -> "else")
          in
          Alcotest.(check string) "guard true" "then" x;
          let x =
            Speculate.select pool ~guard:(fun () -> false) (fun () -> "then")
              (fun () -> "else")
          in
          Alcotest.(check string) "guard false" "else" x))

let test_speculate_first_some () =
  with_pool 3 (fun pool ->
      Pool.run pool (fun () ->
          let r =
            Speculate.first_some pool
              [ (fun () -> None); (fun () -> Some 7); (fun () -> None) ]
          in
          Alcotest.(check (option int)) "finds the some" (Some 7) r;
          let r = Speculate.first_some pool [ (fun () -> None); (fun () -> None) ] in
          Alcotest.(check (option int)) "all decline" None r;
          let r = Speculate.first_some pool ([] : (unit -> int option) list) in
          Alcotest.(check (option int)) "empty" None r))

let test_speculate_fastest () =
  with_pool 3 (fun pool ->
      Pool.run pool (fun () ->
          let slow () =
            Unix.sleepf 0.02;
            1
          in
          let fast () = 1 in
          Alcotest.(check int) "same answer either way" 1
            (Speculate.fastest pool [ slow; fast ])))

(* ---------- Channel ---------- *)

let test_channel_fifo () =
  let ch = Channel.create ~capacity:4 in
  Channel.send ch 1;
  Channel.send ch 2;
  Alcotest.(check int) "length" 2 (Channel.length ch);
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Channel.recv ch);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Channel.recv ch);
  Channel.close ch;
  Alcotest.(check (option int)) "closed" None (Channel.recv ch)

let test_channel_send_after_close () =
  let ch = Channel.create ~capacity:2 in
  Channel.close ch;
  Channel.close ch (* idempotent *);
  match Channel.send ch 1 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "send after close must fail"

let test_channel_producer_consumer () =
  let ch = Channel.create ~capacity:8 in
  let n = 20_000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to n do
          Channel.send ch i
        done;
        Channel.close ch)
  in
  let total = ref 0 in
  let rec drain () =
    match Channel.recv ch with
    | Some x ->
      total := !total + x;
      drain ()
    | None -> ()
  in
  drain ();
  Domain.join producer;
  Alcotest.(check int) "all received (backpressure works)" (n * (n + 1) / 2) !total

let test_channel_multi_producer_multi_consumer () =
  let ch = Channel.create ~capacity:4 in
  let n_per = 5_000 and np = 3 and nc = 2 in
  let producers =
    List.init np (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to n_per - 1 do
              Channel.send ch ((d * n_per) + i)
            done))
  in
  let seen = Rpb_prim.Atomic_array.make (np * n_per) 0 in
  let consumers =
    List.init nc (fun _ ->
        Domain.spawn (fun () ->
            let rec go () =
              match Channel.recv ch with
              | Some x ->
                ignore (Rpb_prim.Atomic_array.fetch_and_add seen x 1);
                go ()
              | None -> ()
            in
            go ()))
  in
  List.iter Domain.join producers;
  Channel.close ch;
  List.iter Domain.join consumers;
  let bad = ref 0 in
  for i = 0 to (np * n_per) - 1 do
    if Rpb_prim.Atomic_array.get seen i <> 1 then incr bad
  done;
  Alcotest.(check int) "each exactly once" 0 !bad

(* ---------- Pipeline ---------- *)

let test_pipeline_identity_order () =
  let p = Pipeline.(stage Fun.id >>> stage Fun.id) in
  Alcotest.(check int) "stages" 2 (Pipeline.stages p);
  let input = Array.init 1000 Fun.id in
  let out = Pipeline.run p input in
  Alcotest.(check bool) "order preserved" true (out = input)

let test_pipeline_heterogeneous () =
  let p =
    Pipeline.(
      stage string_of_int >>> stage (fun s -> s ^ "!") >>> stage String.length)
  in
  let out = Pipeline.run p [| 1; 22; 333 |] in
  Alcotest.(check bool) "types flow through" true (out = [| 2; 3; 4 |])

let test_pipeline_empty_input () =
  let p = Pipeline.stage succ in
  Alcotest.(check bool) "empty" true (Pipeline.run p [||] = [||])

let test_pipeline_exception_propagates () =
  let p =
    Pipeline.(
      stage succ >>> stage (fun x -> if x = 50 then failwith "stage boom" else x))
  in
  match Pipeline.run p (Array.init 100 Fun.id) with
  | _ -> Alcotest.fail "must raise"
  | exception Failure msg -> Alcotest.(check string) "message" "stage boom" msg

let test_pipeline_small_capacity_backpressure () =
  let p = Pipeline.(stage succ >>> stage succ >>> stage succ) in
  let input = Array.init 5_000 Fun.id in
  let out = Pipeline.run ~queue_capacity:1 p input in
  Alcotest.(check bool) "capacity-1 survives" true
    (out = Array.map (fun x -> x + 3) input)

(* ---------- Branch and bound ---------- *)

let test_bnb_knapsack_matches_dp () =
  with_pool 4 (fun pool ->
      Pool.run pool (fun () ->
          List.iter
            (fun seed ->
              let items, capacity = Branch_bound.Knapsack.random_instance ~n:24 ~seed in
              let expected = Branch_bound.Knapsack.solve_dp items ~capacity in
              let got =
                Branch_bound.maximize pool
                  (Branch_bound.Knapsack.problem items ~capacity)
              in
              Alcotest.(check int)
                (Printf.sprintf "seed %d optimum" seed)
                expected got)
            [ 1; 2; 3; 4; 5 ]))

let test_bnb_deterministic_result () =
  with_pool 4 (fun pool ->
      Pool.run pool (fun () ->
          let items, capacity = Branch_bound.Knapsack.random_instance ~n:22 ~seed:9 in
          let p = Branch_bound.Knapsack.problem items ~capacity in
          let a = Branch_bound.maximize pool p in
          let b = Branch_bound.maximize pool p in
          Alcotest.(check int) "same optimum across runs" a b))

let test_bnb_trivial_instances () =
  with_pool 2 (fun pool ->
      Pool.run pool (fun () ->
          (* Zero capacity: nothing fits. *)
          let items = [| Branch_bound.Knapsack.{ weight = 5; profit = 10 } |] in
          Alcotest.(check int) "zero capacity" 0
            (Branch_bound.maximize pool
               (Branch_bound.Knapsack.problem items ~capacity:0));
          (* Everything fits. *)
          let items =
            [|
              Branch_bound.Knapsack.{ weight = 1; profit = 3 };
              Branch_bound.Knapsack.{ weight = 1; profit = 4 };
            |]
          in
          Alcotest.(check int) "all fit" 7
            (Branch_bound.maximize pool
               (Branch_bound.Knapsack.problem items ~capacity:10))))

let prop_bnb_matches_dp =
  QCheck.Test.make ~name:"B&B = DP on random knapsacks" ~count:10
    QCheck.small_nat
    (fun seed ->
      with_pool 3 (fun pool ->
          Pool.run pool (fun () ->
              let items, capacity =
                Branch_bound.Knapsack.random_instance ~n:18 ~seed
              in
              Branch_bound.maximize pool
                (Branch_bound.Knapsack.problem items ~capacity)
              = Branch_bound.Knapsack.solve_dp items ~capacity)))

let () =
  Alcotest.run "rpb_extra"
    [
      ( "stm",
        [
          Alcotest.test_case "read/write" `Quick test_stm_read_write;
          Alcotest.test_case "read your writes" `Quick test_stm_read_your_writes;
          Alcotest.test_case "multi-var consistency" `Quick
            test_stm_multi_var_consistency;
          Alcotest.test_case "concurrent counter" `Quick test_stm_concurrent_counter;
          Alcotest.test_case "user abort" `Quick test_stm_user_abort;
          Alcotest.test_case "stats" `Quick test_stm_aborts_counted;
        ] );
      ( "future",
        [
          Alcotest.test_case "basic" `Quick test_future_basic;
          Alcotest.test_case "map/both" `Quick test_future_map_both;
          Alcotest.test_case "non-strict join" `Quick test_future_non_strict_join;
          Alcotest.test_case "exception" `Quick test_future_exception;
        ] );
      ( "speculate",
        [
          Alcotest.test_case "select" `Quick test_speculate_select;
          Alcotest.test_case "first_some" `Quick test_speculate_first_some;
          Alcotest.test_case "fastest" `Quick test_speculate_fastest;
        ] );
      ( "channel",
        [
          Alcotest.test_case "fifo" `Quick test_channel_fifo;
          Alcotest.test_case "send after close" `Quick test_channel_send_after_close;
          Alcotest.test_case "producer/consumer" `Quick
            test_channel_producer_consumer;
          Alcotest.test_case "mpmc" `Quick test_channel_multi_producer_multi_consumer;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "identity/order" `Quick test_pipeline_identity_order;
          Alcotest.test_case "heterogeneous" `Quick test_pipeline_heterogeneous;
          Alcotest.test_case "empty input" `Quick test_pipeline_empty_input;
          Alcotest.test_case "exception" `Quick test_pipeline_exception_propagates;
          Alcotest.test_case "backpressure" `Quick
            test_pipeline_small_capacity_backpressure;
        ] );
      ( "branch_bound",
        [
          Alcotest.test_case "knapsack = DP" `Quick test_bnb_knapsack_matches_dp;
          Alcotest.test_case "deterministic" `Quick test_bnb_deterministic_result;
          Alcotest.test_case "trivial" `Quick test_bnb_trivial_instances;
          QCheck_alcotest.to_alcotest prop_bnb_matches_dp;
        ] );
    ]
