(* Tests for geometry: predicates, mesh, Delaunay triangulation, refinement. *)

open Rpb_geom
open Rpb_pool

let with_pool n f =
  let pool = Pool.create ~num_workers:n () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let in_pool f = with_pool 3 (fun pool -> Pool.run pool (fun () -> f pool))

let pt = Point.make

(* ---------- Point / predicates ---------- *)

let test_orient () =
  Alcotest.(check bool) "ccw" true (Point.ccw (pt 0. 0.) (pt 1. 0.) (pt 0. 1.));
  Alcotest.(check bool) "cw" false (Point.ccw (pt 0. 0.) (pt 0. 1.) (pt 1. 0.));
  Alcotest.(check (float 1e-12)) "collinear" 0.0
    (Point.orient2d (pt 0. 0.) (pt 1. 1.) (pt 2. 2.))

let test_in_circle () =
  let a = pt 0. 0. and b = pt 2. 0. and c = pt 0. 2. in
  Alcotest.(check bool) "center inside" true (Point.in_circle a b c (pt 0.7 0.7));
  Alcotest.(check bool) "far outside" false (Point.in_circle a b c (pt 10. 10.));
  Alcotest.(check bool) "vertex on circle" false (Point.in_circle a b c a)

let test_circumcenter () =
  (match Point.circumcenter (pt 0. 0.) (pt 2. 0.) (pt 1. 1.) with
   | Some o ->
     Alcotest.(check (float 1e-9)) "cx" 1.0 o.Point.x;
     Alcotest.(check (float 1e-9)) "cy" 0.0 o.Point.y
   | None -> Alcotest.fail "circumcenter of proper triangle");
  (match Point.circumcenter (pt 0. 0.) (pt 1. 1.) (pt 2. 2.) with
   | None -> ()
   | Some _ -> Alcotest.fail "degenerate must be None")

let test_angles_area () =
  (* Equilateral: all angles 60. *)
  let h = sqrt 3.0 /. 2.0 in
  Alcotest.(check (float 1e-6)) "equilateral" 60.0
    (Point.min_angle (pt 0. 0.) (pt 1. 0.) (pt 0.5 h));
  (* Right isoceles: min angle 45. *)
  Alcotest.(check (float 1e-6)) "right isoceles" 45.0
    (Point.min_angle (pt 0. 0.) (pt 1. 0.) (pt 0. 1.));
  Alcotest.(check (float 1e-9)) "area" 0.5
    (Point.triangle_area (pt 0. 0.) (pt 1. 0.) (pt 0. 1.));
  Alcotest.(check (float 1e-9)) "degenerate angle" 0.0
    (Point.min_angle (pt 0. 0.) (pt 0. 0.) (pt 1. 0.))

let test_point_in_triangle () =
  let a = pt 0. 0. and b = pt 4. 0. and c = pt 0. 4. in
  Alcotest.(check bool) "inside" true (Point.point_in_triangle a b c (pt 1. 1.));
  Alcotest.(check bool) "outside" false (Point.point_in_triangle a b c (pt 3. 3.));
  Alcotest.(check bool) "on edge" true (Point.point_in_triangle a b c (pt 2. 0.));
  Alcotest.(check bool) "on vertex" true (Point.point_in_triangle a b c a)

(* ---------- Pointgen ---------- *)

let test_pointgen () =
  let u = Pointgen.uniform_square ~n:500 ~seed:1 in
  Alcotest.(check int) "count" 500 (Array.length u);
  Array.iter
    (fun (p : Point.t) ->
      Alcotest.(check bool) "in unit square" true
        (p.Point.x >= 0.0 && p.Point.x < 1.0 && p.Point.y >= 0.0 && p.Point.y < 1.0))
    u;
  let k = Pointgen.kuzmin ~n:500 ~seed:2 in
  let near = Array.length (Array.of_list (List.filter (fun (p : Point.t) -> Point.dist2 p (pt 0. 0.) < 1.0) (Array.to_list k))) in
  Alcotest.(check bool) "kuzmin concentrates centrally" true (near > 100);
  Alcotest.(check bool) "deterministic" true (Pointgen.kuzmin ~n:500 ~seed:2 = k)

(* ---------- Mesh basics ---------- *)

let test_mesh_create_and_locate () =
  let points = [| pt 0. 0.; pt 1. 0.; pt 0. 1. |] in
  let mesh = Mesh.create points in
  Alcotest.(check int) "vertices" 6 (Mesh.num_vertices mesh);
  Alcotest.(check bool) "valid" true (Mesh.validate mesh = Ok ());
  (* Only the super triangle exists; any point locates into it. *)
  let t0 = Mesh.locate mesh (pt 0.5 0.5) in
  Alcotest.(check bool) "located" true (Mesh.is_alive mesh t0)

let test_mesh_single_insert () =
  let mesh = Mesh.create [||] in
  (match Mesh.insert mesh (pt 0.5 0.5) with
   | Some _ -> ()
   | None -> Alcotest.fail "insert failed");
  Alcotest.(check bool) "valid after insert" true (Mesh.validate mesh = Ok ());
  (* One interior point in the super triangle: 3 live triangles. *)
  in_pool (fun pool ->
      Alcotest.(check int) "live count" 3 (Array.length (Mesh.live_triangles pool mesh)))

let test_mesh_duplicate_insert () =
  let mesh = Mesh.create [||] in
  ignore (Mesh.insert mesh (pt 0.5 0.5));
  Alcotest.(check bool) "duplicate rejected" true
    (Mesh.insert mesh (pt 0.5 0.5) = None)

(* ---------- Delaunay ---------- *)

let test_delaunay_square () =
  in_pool (fun pool ->
      let points = [| pt 0. 0.; pt 1. 0.; pt 1. 1.; pt 0. 1. |] in
      let mesh = Delaunay.triangulate points in
      Alcotest.(check bool) "valid" true (Mesh.validate mesh = Ok ());
      Alcotest.(check int) "two real triangles" 2 (Mesh.num_real_triangles pool mesh);
      Alcotest.(check bool) "delaunay" true (Delaunay.is_delaunay pool mesh))

let test_delaunay_uniform () =
  in_pool (fun pool ->
      let points = Pointgen.uniform_square ~n:300 ~seed:3 in
      let mesh = Delaunay.triangulate points in
      Alcotest.(check bool) "valid" true
        (match Mesh.validate mesh with
         | Ok () -> true
         | Error e -> Alcotest.failf "invalid: %s" e);
      Alcotest.(check bool) "delaunay" true (Delaunay.is_delaunay pool mesh);
      (* Euler: for n points in general position inside a bounding triangle,
         real triangles ~ 2n; just sanity-check the magnitude. *)
      let nt = Mesh.num_real_triangles pool mesh in
      Alcotest.(check bool)
        (Printf.sprintf "triangle count plausible (%d)" nt)
        true
        (nt > 400 && nt < 700))

let test_delaunay_kuzmin () =
  in_pool (fun pool ->
      let points = Pointgen.kuzmin ~n:300 ~seed:4 in
      let mesh = Delaunay.triangulate points in
      Alcotest.(check bool) "valid" true (Mesh.validate mesh = Ok ());
      Alcotest.(check bool) "delaunay" true (Delaunay.is_delaunay pool mesh))

let test_delaunay_collinearish () =
  in_pool (fun pool ->
      (* Jittered grid contains many near-collinear quadruples. *)
      let points = Pointgen.grid_jittered ~side:12 ~seed:5 in
      let mesh = Delaunay.triangulate points in
      Alcotest.(check bool) "valid" true (Mesh.validate mesh = Ok ());
      Alcotest.(check bool) "delaunay" true (Delaunay.is_delaunay pool mesh))

(* ---------- Refinement ---------- *)

let refine_test mode =
  in_pool (fun pool ->
      let points = Pointgen.kuzmin ~n:150 ~seed:6 in
      let mesh = Delaunay.triangulate points in
      let before_bad = Refine.count_bad pool mesh ~min_angle:26.0 in
      Alcotest.(check bool) "input has skinny triangles" true (before_bad > 0);
      let stats = Refine.refine ~min_angle:26.0 ~mode pool mesh in
      Alcotest.(check bool) "valid after refine" true
        (match Mesh.validate mesh with
         | Ok () -> true
         | Error e -> Alcotest.failf "invalid: %s" e);
      Alcotest.(check bool) "inserted some" true (stats.Refine.inserted > 0);
      (* Refinement must fix every skinny triangle it did not explicitly
         give up on. *)
      Alcotest.(check int) "no bad real triangles remain (mod skipped)" 0
        (max 0 (stats.Refine.remaining_bad - stats.Refine.skipped));
      stats)

let test_refine_sequential () = ignore (refine_test Refine.Sequential)
let test_refine_reserving () = ignore (refine_test Refine.Reserving)

let test_refine_modes_equivalent_quality () =
  in_pool (fun pool ->
      let points = Pointgen.uniform_square ~n:100 ~seed:7 in
      let m1 = Delaunay.triangulate points in
      let m2 = Delaunay.triangulate points in
      let s1 = Refine.refine ~min_angle:25.0 ~mode:Refine.Sequential pool m1 in
      let s2 = Refine.refine ~min_angle:25.0 ~mode:Refine.Reserving pool m2 in
      (* Not bit-identical (different insertion orders), but both must reach
         the quality target. *)
      List.iter
        (fun (name, s) ->
          Alcotest.(check bool) (name ^ " quality reached") true
            (s.Refine.remaining_bad <= s.Refine.skipped))
        [ ("sequential", s1); ("reserving", s2) ])

let test_refine_no_bad_input_is_noop () =
  in_pool (fun pool ->
      (* A single equilateral triangle has no skinny triangles. *)
      let h = sqrt 3.0 /. 2.0 in
      let mesh = Delaunay.triangulate [| pt 0. 0.; pt 1. 0.; pt 0.5 h |] in
      let bad0 = Refine.count_bad pool mesh ~min_angle:26.0 in
      Alcotest.(check int) "no bad triangles" 0 bad0;
      let stats = Refine.refine ~min_angle:26.0 pool mesh in
      Alcotest.(check int) "nothing inserted" 0 stats.Refine.inserted;
      Alcotest.(check int) "one round" 1 stats.Refine.rounds)

(* ---------- Quickhull ---------- *)

let hull_point_set pts hull =
  List.sort_uniq compare (Array.to_list (Array.map (fun i -> pts.(i)) hull))

let test_quickhull_square () =
  in_pool (fun pool ->
      let pts = [| pt 0. 0.; pt 1. 0.; pt 1. 1.; pt 0. 1.; pt 0.5 0.5 |] in
      let hull = Quickhull.convex_hull pool pts in
      Alcotest.(check int) "4 corners" 4 (Array.length hull);
      Alcotest.(check bool) "valid hull" true (Quickhull.is_convex_hull pts hull);
      Alcotest.(check bool) "interior point excluded" true
        (not (Array.mem 4 hull)))

let test_quickhull_matches_monotone_chain () =
  in_pool (fun pool ->
      List.iter
        (fun seed ->
          let pts = Pointgen.uniform_square ~n:500 ~seed in
          let par = Quickhull.convex_hull pool pts in
          let seq = Quickhull.convex_hull_seq pts in
          Alcotest.(check bool) "par hull valid" true
            (Quickhull.is_convex_hull pts par);
          Alcotest.(check bool) "same vertex set as monotone chain" true
            (hull_point_set pts par = hull_point_set pts seq))
        [ 11; 12; 13 ])

let test_quickhull_kuzmin () =
  in_pool (fun pool ->
      let pts = Pointgen.kuzmin ~n:800 ~seed:14 in
      let hull = Quickhull.convex_hull pool pts in
      Alcotest.(check bool) "valid" true (Quickhull.is_convex_hull pts hull))

let test_quickhull_tiny () =
  in_pool (fun pool ->
      Alcotest.(check bool) "single point" true
        (Quickhull.convex_hull pool [| pt 3. 4. |] = [| 0 |]);
      let two = Quickhull.convex_hull pool [| pt 0. 0.; pt 1. 1. |] in
      Alcotest.(check int) "two points" 2 (Array.length two);
      let tri = Quickhull.convex_hull pool [| pt 0. 0.; pt 2. 0.; pt 1. 1. |] in
      Alcotest.(check int) "triangle" 3 (Array.length tri))

let prop_quickhull_valid =
  QCheck.Test.make ~name:"quickhull valid on random clouds" ~count:15
    QCheck.small_nat
    (fun seed ->
      let pts = Pointgen.uniform_square ~n:200 ~seed:(seed + 100) in
      with_pool 2 (fun pool ->
          Pool.run pool (fun () ->
              Quickhull.is_convex_hull pts (Quickhull.convex_hull pool pts))))

(* ---------- Quadtree / kNN ---------- *)

let test_quadtree_build_shape () =
  in_pool (fun pool ->
      let pts = Pointgen.uniform_square ~n:1000 ~seed:41 in
      let t = Quadtree.build pool pts in
      Alcotest.(check int) "size" 1000 (Quadtree.size t);
      Alcotest.(check bool) "bounded depth" true (Quadtree.depth t < 20))

let test_quadtree_nearest_matches_naive () =
  in_pool (fun pool ->
      let pts = Pointgen.uniform_square ~n:800 ~seed:42 in
      let t = Quadtree.build pool pts in
      let queries = Pointgen.uniform_square ~n:200 ~seed:43 in
      Array.iter
        (fun q ->
          let got = Quadtree.nearest t q in
          let expected = Quadtree.nearest_naive pts q in
          match (got, expected) with
          | Some g, Some e ->
            (* Equal distances admit either index. *)
            Alcotest.(check (float 1e-12)) "same distance"
              (Point.dist2 q pts.(e))
              (Point.dist2 q pts.(g))
          | _ -> Alcotest.fail "nearest missing")
        queries)

let test_quadtree_k_nearest_ordering () =
  in_pool (fun pool ->
      let pts = Pointgen.uniform_square ~n:500 ~seed:44 in
      let t = Quadtree.build pool pts in
      let q = Point.make 0.5 0.5 in
      let knn = Quadtree.k_nearest t ~k:10 q in
      Alcotest.(check int) "k returned" 10 (Array.length knn);
      for i = 1 to 9 do
        Alcotest.(check bool) "nearest-first order" true
          (Point.dist2 q pts.(knn.(i - 1)) <= Point.dist2 q pts.(knn.(i)))
      done;
      (* The k-th distance must not exceed any non-member's distance. *)
      let members = Array.to_list knn in
      let kth = Point.dist2 q pts.(knn.(9)) in
      Array.iteri
        (fun i p ->
          if not (List.mem i members) then
            Alcotest.(check bool) "no closer outsider" true
              (Point.dist2 q p >= kth -. 1e-12))
        pts)

let test_quadtree_degenerate () =
  in_pool (fun pool ->
      let empty = Quadtree.build pool [||] in
      Alcotest.(check (option int)) "empty" None (Quadtree.nearest empty (pt 0. 0.));
      (* All-identical points must not loop forever. *)
      let same = Array.make 100 (pt 1. 1.) in
      let t = Quadtree.build pool same in
      Alcotest.(check bool) "identical points" true
        (Quadtree.nearest t (pt 0. 0.) <> None);
      Alcotest.(check int) "k bigger than n" 100
        (Array.length (Quadtree.k_nearest t ~k:500 (pt 0. 0.))))

let test_quadtree_parallel_queries () =
  in_pool (fun pool ->
      let pts = Pointgen.kuzmin ~n:600 ~seed:45 in
      let t = Quadtree.build pool pts in
      let queries = Pointgen.kuzmin ~n:300 ~seed:46 in
      let got = Quadtree.nearest_neighbors pool t queries in
      Alcotest.(check int) "answer per query" 300 (Array.length got);
      Array.iteri
        (fun i j ->
          let expected = Option.get (Quadtree.nearest_naive pts queries.(i)) in
          Alcotest.(check (float 1e-12)) "distance parity"
            (Point.dist2 queries.(i) pts.(expected))
            (Point.dist2 queries.(i) pts.(j)))
        got)

(* ---------- Nbody (Barnes–Hut) ---------- *)

let test_nbody_theta_zero_is_exact () =
  in_pool (fun pool ->
      let b = Nbody.random_bodies ~n:300 ~seed:51 in
      let bh = Nbody.forces ~theta:0.0 pool b in
      let direct = Nbody.forces_direct pool b in
      Alcotest.(check bool)
        (Printf.sprintf "rms %.2e" (Nbody.rms_error bh direct))
        true
        (Nbody.rms_error bh direct < 1e-9))

let test_nbody_approximation_quality () =
  in_pool (fun pool ->
      let b = Nbody.random_bodies ~n:600 ~seed:52 in
      let bh = Nbody.forces ~theta:0.5 pool b in
      let direct = Nbody.forces_direct pool b in
      let err = Nbody.rms_error bh direct in
      Alcotest.(check bool)
        (Printf.sprintf "theta=0.5 rms error small (%.3f)" err)
        true (err < 0.05))

let test_nbody_two_body_symmetry () =
  in_pool (fun pool ->
      let b =
        Nbody.
          {
            px = [| 0.0; 1.0 |];
            py = [| 0.0; 0.0 |];
            vx = [| 0.0; 0.0 |];
            vy = [| 0.0; 0.0 |];
            mass = [| 1.0; 1.0 |];
          }
      in
      let ax, ay = Nbody.forces_direct pool b in
      Alcotest.(check (float 1e-9)) "opposite ax" (-.ax.(0)) ax.(1);
      Alcotest.(check (float 1e-9)) "ay zero" 0.0 ay.(0);
      Alcotest.(check bool) "attraction" true (ax.(0) > 0.0 && ax.(1) < 0.0))

let test_nbody_momentum_nearly_conserved () =
  in_pool (fun pool ->
      (* With exact forces (theta = 0) equal-and-opposite pairs cancel, so
         total momentum stays ~0 from a cold start. *)
      let b = Nbody.random_bodies ~n:200 ~seed:53 in
      Nbody.simulate ~theta:0.0 ~dt:0.001 ~steps:10 pool b;
      let px, py = Nbody.total_momentum b in
      Alcotest.(check bool)
        (Printf.sprintf "momentum drift small (%.2e, %.2e)" px py)
        true
        (Float.abs px < 1e-6 && Float.abs py < 1e-6))

let test_nbody_simulation_runs () =
  in_pool (fun pool ->
      let b = Nbody.random_bodies ~n:150 ~seed:54 in
      Nbody.simulate ~steps:5 pool b;
      Alcotest.(check bool) "positions finite" true
        (Array.for_all Float.is_finite b.Nbody.px
         && Array.for_all Float.is_finite b.Nbody.py))

let () =
  Alcotest.run "rpb_geom"
    [
      ( "point",
        [
          Alcotest.test_case "orient" `Quick test_orient;
          Alcotest.test_case "in_circle" `Quick test_in_circle;
          Alcotest.test_case "circumcenter" `Quick test_circumcenter;
          Alcotest.test_case "angles/area" `Quick test_angles_area;
          Alcotest.test_case "point in triangle" `Quick test_point_in_triangle;
        ] );
      ("pointgen", [ Alcotest.test_case "generators" `Quick test_pointgen ]);
      ( "mesh",
        [
          Alcotest.test_case "create/locate" `Quick test_mesh_create_and_locate;
          Alcotest.test_case "single insert" `Quick test_mesh_single_insert;
          Alcotest.test_case "duplicate insert" `Quick test_mesh_duplicate_insert;
        ] );
      ( "delaunay",
        [
          Alcotest.test_case "square" `Quick test_delaunay_square;
          Alcotest.test_case "uniform 300" `Quick test_delaunay_uniform;
          Alcotest.test_case "kuzmin 300" `Quick test_delaunay_kuzmin;
          Alcotest.test_case "near-collinear" `Quick test_delaunay_collinearish;
        ] );
      ( "nbody",
        [
          Alcotest.test_case "theta 0 exact" `Quick test_nbody_theta_zero_is_exact;
          Alcotest.test_case "approximation quality" `Quick
            test_nbody_approximation_quality;
          Alcotest.test_case "two-body symmetry" `Quick test_nbody_two_body_symmetry;
          Alcotest.test_case "momentum conserved" `Quick
            test_nbody_momentum_nearly_conserved;
          Alcotest.test_case "simulation runs" `Quick test_nbody_simulation_runs;
        ] );
      ( "quadtree",
        [
          Alcotest.test_case "build shape" `Quick test_quadtree_build_shape;
          Alcotest.test_case "nearest = naive" `Quick
            test_quadtree_nearest_matches_naive;
          Alcotest.test_case "k-nearest ordering" `Quick
            test_quadtree_k_nearest_ordering;
          Alcotest.test_case "degenerate" `Quick test_quadtree_degenerate;
          Alcotest.test_case "parallel queries" `Quick test_quadtree_parallel_queries;
        ] );
      ( "quickhull",
        [
          Alcotest.test_case "square" `Quick test_quickhull_square;
          Alcotest.test_case "matches monotone chain" `Quick
            test_quickhull_matches_monotone_chain;
          Alcotest.test_case "kuzmin" `Quick test_quickhull_kuzmin;
          Alcotest.test_case "tiny" `Quick test_quickhull_tiny;
          QCheck_alcotest.to_alcotest prop_quickhull_valid;
        ] );
      ( "refine",
        [
          Alcotest.test_case "sequential" `Quick test_refine_sequential;
          Alcotest.test_case "reserving" `Quick test_refine_reserving;
          Alcotest.test_case "modes reach quality" `Quick
            test_refine_modes_equivalent_quality;
          Alcotest.test_case "clean input noop" `Quick test_refine_no_bad_input_is_noop;
        ] );
    ]
