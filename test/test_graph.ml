(* Tests for CSR graphs, generators, union-find, and reference algorithms. *)

open Rpb_graph
open Rpb_pool

let with_pool n f =
  let pool = Pool.create ~num_workers:n () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let in_pool f = with_pool 3 (fun pool -> Pool.run pool (fun () -> f pool))

(* ---------- Csr ---------- *)

let diamond pool =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 *)
  Csr.of_edges pool ~n:4 [| (0, 1); (0, 2); (1, 3); (2, 3) |]

let test_csr_of_edges () =
  in_pool (fun pool ->
      let g = diamond pool in
      Alcotest.(check int) "n" 4 (Csr.n g);
      Alcotest.(check int) "m" 4 (Csr.m g);
      Alcotest.(check int) "deg 0" 2 (Csr.degree g 0);
      Alcotest.(check int) "deg 3" 0 (Csr.degree g 3);
      let nbrs = Csr.fold_neighbors g 0 ~init:[] ~f:(fun acc v -> v :: acc) in
      Alcotest.(check (list int)) "neighbors of 0" [ 2; 1 ] nbrs)

let test_csr_make_validates () =
  let check_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s should be rejected" name
  in
  check_invalid "bad final offset" (fun () ->
      Csr.make ~offsets:[| 0; 1 |] ~targets:[| 0; 0 |] ());
  check_invalid "decreasing offsets" (fun () ->
      Csr.make ~offsets:[| 0; 2; 1; 2 |] ~targets:[| 0; 1 |] ());
  check_invalid "target out of range" (fun () ->
      Csr.make ~offsets:[| 0; 1 |] ~targets:[| 5 |] ());
  check_invalid "weights length" (fun () ->
      Csr.make ~offsets:[| 0; 1 |] ~targets:[| 0 |] ~weights:[| 1; 2 |] ());
  check_invalid "negative weight" (fun () ->
      Csr.make ~offsets:[| 0; 1 |] ~targets:[| 0 |] ~weights:[| -3 |] ())

let test_csr_edges_roundtrip () =
  in_pool (fun pool ->
      let edges = [| (3, 1); (0, 2); (3, 0); (1, 1) |] in
      let g = Csr.of_edges pool ~n:4 edges in
      let back = Csr.edges g in
      let norm a = Array.to_list a |> List.sort compare in
      Alcotest.(check bool) "same multiset" true (norm edges = norm back))

let test_csr_weights_follow_edges () =
  in_pool (fun pool ->
      let edges = [| (1, 0); (0, 1); (1, 2) |] in
      let weights = [| 10; 20; 30 |] in
      let g = Csr.of_edges pool ~n:3 ~weights edges in
      let seen = ref [] in
      for u = 0 to 2 do
        Csr.iter_neighbors_w g u (fun v w -> seen := (u, v, w) :: !seen)
      done;
      let got = List.sort compare !seen in
      Alcotest.(check bool) "weights ride along" true
        (got = [ (0, 1, 20); (1, 0, 10); (1, 2, 30) ]))

let test_csr_symmetrize () =
  in_pool (fun pool ->
      let g = diamond pool in
      let sg = Csr.symmetrize pool g in
      Alcotest.(check int) "m doubles" 8 (Csr.m sg);
      let has_edge u v =
        Csr.fold_neighbors sg u ~init:false ~f:(fun acc x -> acc || x = v)
      in
      Alcotest.(check bool) "reverse present" true (has_edge 3 1 && has_edge 1 0))

let test_csr_degree_stats () =
  in_pool (fun pool ->
      let g = diamond pool in
      Alcotest.(check int) "max degree" 2 (Csr.max_degree pool g);
      Alcotest.(check (float 1e-9)) "avg degree" 1.0 (Csr.avg_degree g))

(* ---------- Generate ---------- *)

let test_generate_rmat_shape () =
  in_pool (fun pool ->
      let g = Generate.rmat pool ~scale:10 ~edge_factor:6 () in
      Alcotest.(check int) "n" 1024 (Csr.n g);
      Alcotest.(check int) "m" (6 * 1024) (Csr.m g))

let test_generate_deterministic () =
  in_pool (fun pool ->
      let g1 = Generate.rmat pool ~scale:8 ~edge_factor:4 () in
      let g2 = Generate.rmat pool ~scale:8 ~edge_factor:4 () in
      Alcotest.(check bool) "same edges" true (Csr.edges g1 = Csr.edges g2);
      let g3 = Generate.rmat pool ~scale:8 ~edge_factor:4 ~seed:99 () in
      Alcotest.(check bool) "different seed differs" false
        (Csr.edges g1 = Csr.edges g3))

let test_generate_road_grid () =
  in_pool (fun pool ->
      let g = Generate.road_grid pool ~rows:10 ~cols:10 ~weighted:true () in
      Alcotest.(check int) "n" 100 (Csr.n g);
      (* 2 * (9*10 + 9*10) directed edges after symmetrization. *)
      Alcotest.(check int) "m" 360 (Csr.m g);
      Alcotest.(check bool) "degree bounded" true (Csr.max_degree pool g <= 4);
      (* Grid is connected. *)
      Alcotest.(check int) "one component" 1 (Reference.num_components g))

let test_generate_skew () =
  in_pool (fun pool ->
      (* Power-law ("link") should be much more skewed than road. *)
      let pl = Generate.power_law pool ~scale:10 ~edge_factor:10 () in
      let road = Generate.road_grid pool ~rows:32 ~cols:32 () in
      let pl_max = Csr.max_degree pool pl and road_max = Csr.max_degree pool road in
      Alcotest.(check bool)
        (Printf.sprintf "power-law skew (%d vs %d)" pl_max road_max)
        true
        (pl_max > 8 * road_max))

let test_generate_by_name () =
  in_pool (fun pool ->
      List.iter
        (fun name ->
          let g = Generate.by_name pool ~name ~scale:8 ~weighted:true in
          Alcotest.(check bool) (name ^ " nonempty") true (Csr.n g > 0 && Csr.m g > 0))
        [ "rmat"; "link"; "road" ];
      match Generate.by_name pool ~name:"nope" ~scale:4 ~weighted:false with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "unknown name accepted")

(* ---------- Union_find ---------- *)

let test_uf_basic () =
  in_pool (fun pool ->
      let uf = Union_find.create 10 in
      Alcotest.(check int) "initial roots" 10 (Union_find.count_roots pool uf);
      Alcotest.(check bool) "union fresh" true (Union_find.union uf 1 2);
      Alcotest.(check bool) "union dup" false (Union_find.union uf 2 1);
      Alcotest.(check bool) "same" true (Union_find.same uf 1 2);
      Alcotest.(check bool) "not same" false (Union_find.same uf 1 3);
      Alcotest.(check int) "roots after" 9 (Union_find.count_roots pool uf))

let test_uf_chain_and_canonical () =
  in_pool (fun pool ->
      let uf = Union_find.create 100 in
      for i = 0 to 98 do
        ignore (Union_find.union uf i (i + 1))
      done;
      Alcotest.(check int) "single set" 1 (Union_find.count_roots pool uf);
      (* Min-index linking makes 0 the canonical root. *)
      Alcotest.(check int) "canonical root" 0 (Union_find.find uf 99);
      let comp = Union_find.components pool uf in
      Alcotest.(check bool) "all zero" true (Array.for_all (fun r -> r = 0) comp))

let test_uf_concurrent_unions () =
  (* Racing unions over a ring: exactly n-1 must succeed. *)
  let n = 20_000 in
  let uf = Union_find.create n in
  let successes = Atomic.make 0 in
  let ds =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let rec go i =
              if i < n - 1 then begin
                if Union_find.union uf i (i + 1) then Atomic.incr successes;
                go (i + 4)
              end
            in
            go d))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "exactly n-1 successful unions" (n - 1)
    (Atomic.get successes);
  with_pool 2 (fun pool ->
      Alcotest.(check int) "one component" 1 (Union_find.count_roots pool uf))

let prop_uf_matches_reference =
  QCheck.Test.make ~name:"union-find partitions like a reference" ~count:30
    QCheck.(list (pair (int_bound 49) (int_bound 49)))
    (fun pairs ->
      let uf = Union_find.create 50 in
      let find_ref, union_ref =
        let parent = Array.init 50 Fun.id in
        let rec find i = if parent.(i) = i then i else find parent.(i) in
        (find, fun a b ->
          let ra = find a and rb = find b in
          if ra <> rb then parent.(max ra rb) <- min ra rb)
      in
      List.iter
        (fun (a, b) ->
          ignore (Union_find.union uf a b);
          union_ref a b)
        pairs;
      let ok = ref true in
      for i = 0 to 49 do
        for j = i + 1 to 49 do
          if Union_find.same uf i j <> (find_ref i = find_ref j) then ok := false
        done
      done;
      !ok)

(* ---------- Reference ---------- *)

let test_reference_bfs () =
  in_pool (fun pool ->
      let g = diamond pool in
      let d = Reference.bfs_distances g ~src:0 in
      Alcotest.(check bool) "distances" true (d = [| 0; 1; 1; 2 |]);
      let d3 = Reference.bfs_distances g ~src:3 in
      Alcotest.(check bool) "unreachable" true
        (d3 = [| max_int; max_int; max_int; 0 |]))

let test_reference_dijkstra () =
  in_pool (fun pool ->
      (* 0 -2-> 1 -2-> 3 and 0 -1-> 2 -4-> 3: shortest to 3 is 4 via 1. *)
      let g =
        Csr.of_edges pool ~n:4 ~weights:[| 2; 1; 2; 4 |]
          [| (0, 1); (0, 2); (1, 3); (2, 3) |]
      in
      let d = Reference.dijkstra g ~src:0 in
      Alcotest.(check bool) "weighted distances" true (d = [| 0; 2; 1; 4 |]))

let test_reference_dijkstra_matches_bfs_on_unit_weights () =
  in_pool (fun pool ->
      let g = Generate.rmat pool ~scale:8 ~edge_factor:4 () in
      let bfs = Reference.bfs_distances g ~src:0 in
      let dij = Reference.dijkstra g ~src:0 in
      Alcotest.(check bool) "agree" true (bfs = dij))

let test_reference_components () =
  in_pool (fun pool ->
      (* Two triangles. *)
      let g =
        Csr.of_edges pool ~n:6 [| (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) |]
      in
      Alcotest.(check int) "two components" 2 (Reference.num_components g);
      let comp = Reference.connected_components g in
      Alcotest.(check bool) "labels" true
        (comp.(0) = comp.(1) && comp.(1) = comp.(2) && comp.(3) = comp.(4)
         && comp.(0) <> comp.(3)))

let test_reference_mis_checker () =
  in_pool (fun pool ->
      let g = Csr.symmetrize pool (diamond pool) in
      Alcotest.(check bool) "valid MIS" true
        (Reference.is_maximal_independent_set g [| true; false; false; true |]);
      Alcotest.(check bool) "not independent" false
        (Reference.is_independent_set g [| true; true; false; false |]);
      Alcotest.(check bool) "not maximal" false
        (Reference.is_maximal_independent_set g [| true; false; false; false |]))

let test_reference_matching_checker () =
  in_pool (fun pool ->
      let g = Csr.symmetrize pool (diamond pool) in
      let edges = [| (0, 1); (0, 2); (1, 3); (2, 3) |] in
      Alcotest.(check bool) "valid MM" true
        (Reference.is_maximal_matching g ~edges ~selected:[| true; false; false; true |]);
      Alcotest.(check bool) "shared endpoint" false
        (Reference.is_matching g ~edges ~selected:[| true; true; false; false |]);
      Alcotest.(check bool) "not maximal" false
        (Reference.is_maximal_matching g ~edges
           ~selected:[| true; false; false; false |]))

let test_reference_msf_weight () =
  in_pool (fun pool ->
      (* Triangle with weights 1, 2, 3: MSF weight = 3 (pick 1 and 2). *)
      let g =
        Csr.of_edges pool ~n:3 ~weights:[| 1; 2; 3 |] [| (0, 1); (1, 2); (0, 2) |]
      in
      Alcotest.(check int) "kruskal" 3 (Reference.spanning_forest_weight g))

let () =
  Alcotest.run "rpb_graph"
    [
      ( "csr",
        [
          Alcotest.test_case "of_edges" `Quick test_csr_of_edges;
          Alcotest.test_case "make validates" `Quick test_csr_make_validates;
          Alcotest.test_case "edges roundtrip" `Quick test_csr_edges_roundtrip;
          Alcotest.test_case "weights follow" `Quick test_csr_weights_follow_edges;
          Alcotest.test_case "symmetrize" `Quick test_csr_symmetrize;
          Alcotest.test_case "degree stats" `Quick test_csr_degree_stats;
        ] );
      ( "generate",
        [
          Alcotest.test_case "rmat shape" `Quick test_generate_rmat_shape;
          Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "road grid" `Quick test_generate_road_grid;
          Alcotest.test_case "skew" `Quick test_generate_skew;
          Alcotest.test_case "by_name" `Quick test_generate_by_name;
        ] );
      ( "union_find",
        [
          Alcotest.test_case "basic" `Quick test_uf_basic;
          Alcotest.test_case "chain/canonical" `Quick test_uf_chain_and_canonical;
          Alcotest.test_case "concurrent unions" `Quick test_uf_concurrent_unions;
          QCheck_alcotest.to_alcotest prop_uf_matches_reference;
        ] );
      ( "reference",
        [
          Alcotest.test_case "bfs" `Quick test_reference_bfs;
          Alcotest.test_case "dijkstra" `Quick test_reference_dijkstra;
          Alcotest.test_case "dijkstra = bfs unit" `Quick
            test_reference_dijkstra_matches_bfs_on_unit_weights;
          Alcotest.test_case "components" `Quick test_reference_components;
          Alcotest.test_case "MIS checker" `Quick test_reference_mis_checker;
          Alcotest.test_case "matching checker" `Quick test_reference_matching_checker;
          Alcotest.test_case "msf weight" `Quick test_reference_msf_weight;
        ] );
    ]
