(* Tests for the parallel graph algorithms: MIS, matching, spanning forests,
   and the MultiQueue traversals. *)

open Rpb_graph
open Rpb_pool

let with_pool n f =
  let pool = Pool.create ~num_workers:n () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let in_pool f = with_pool 3 (fun pool -> Pool.run pool (fun () -> f pool))

let test_graphs pool =
  [
    ("rmat", Csr.symmetrize pool (Generate.rmat pool ~scale:9 ~edge_factor:4 ()));
    ("road", Generate.road_grid pool ~rows:20 ~cols:20 ());
    ("link", Csr.symmetrize pool (Generate.power_law pool ~scale:8 ~edge_factor:8 ()));
  ]

(* ---------- MIS ---------- *)

let test_mis_valid_on_suite () =
  in_pool (fun pool ->
      List.iter
        (fun (name, g) ->
          let sel = Mis.compute pool g in
          Alcotest.(check bool) (name ^ " maximal independent") true
            (Reference.is_maximal_independent_set g sel))
        (test_graphs pool))

let test_mis_deterministic_and_matches_seq () =
  in_pool (fun pool ->
      let g = Generate.road_grid pool ~rows:15 ~cols:15 () in
      let a = Mis.compute pool g in
      let b = Mis.compute pool g in
      Alcotest.(check bool) "parallel deterministic" true (a = b);
      let s = Mis.compute_seq g in
      Alcotest.(check bool) "matches sequential greedy" true (a = s))

let test_mis_plain_status_mode () =
  in_pool (fun pool ->
      let g = Csr.symmetrize pool (Generate.rmat pool ~scale:8 ~edge_factor:4 ()) in
      let sel = Mis.compute ~sync:Mis.Plain_status pool g in
      Alcotest.(check bool) "plain-status still maximal independent" true
        (Reference.is_maximal_independent_set g sel);
      Alcotest.(check bool) "modes agree" true (sel = Mis.compute pool g))

let test_mis_empty_and_singleton () =
  in_pool (fun pool ->
      let empty = Csr.of_edges pool ~n:5 [||] in
      let sel = Mis.compute pool empty in
      Alcotest.(check bool) "no edges: all in" true (Array.for_all Fun.id sel);
      let loop = Csr.of_edges pool ~n:1 [| (0, 0) |] in
      let sel = Mis.compute pool loop in
      Alcotest.(check bool) "self loop ignored" true sel.(0))

(* ---------- Matching ---------- *)

let test_mm_valid_on_suite () =
  in_pool (fun pool ->
      List.iter
        (fun (name, g) ->
          let edges = Csr.edges g in
          let sel = Matching.compute pool ~edges ~n:(Csr.n g) in
          Alcotest.(check bool) (name ^ " maximal matching") true
            (Reference.is_maximal_matching g ~edges ~selected:sel))
        (test_graphs pool))

let test_mm_matches_seq () =
  in_pool (fun pool ->
      let g = Generate.road_grid pool ~rows:12 ~cols:12 () in
      let edges = Csr.edges g in
      let par = Matching.compute pool ~edges ~n:(Csr.n g) in
      let seq = Matching.compute_seq ~n:(Csr.n g) edges in
      Alcotest.(check bool) "same matching" true (par = seq))

let test_mm_self_loops_never_selected () =
  in_pool (fun pool ->
      let edges = [| (0, 0); (0, 1); (1, 1) |] in
      let sel = Matching.compute pool ~edges ~n:2 in
      Alcotest.(check bool) "loop 0" false sel.(0);
      Alcotest.(check bool) "loop 2" false sel.(2);
      Alcotest.(check bool) "real edge selected" true sel.(1))

(* ---------- Spanning forest ---------- *)

let test_sf_spans () =
  in_pool (fun pool ->
      List.iter
        (fun (name, g) ->
          let forest = Spanning_forest.spanning_forest pool g in
          let ncomp = Reference.num_components g in
          Alcotest.(check int)
            (name ^ " forest size")
            (Csr.n g - ncomp)
            (Array.length forest);
          (* Forest edges must be acyclic and span: replaying them through a
             fresh union-find must succeed for every edge. *)
          let edges = Csr.edges g in
          let uf = Union_find.create (Csr.n g) in
          Array.iter
            (fun e ->
              let u, v = edges.(e) in
              Alcotest.(check bool) "acyclic" true (Union_find.union uf u v))
            forest;
          (* And connect exactly the same components as the graph. *)
          let comp = Reference.connected_components g in
          for u = 0 to Csr.n g - 1 do
            if comp.(u) <> u then
              Alcotest.(check bool) "spans" true (Union_find.same uf u comp.(u))
          done)
        (test_graphs pool))

let test_sf_seq_agrees_on_size () =
  in_pool (fun pool ->
      let g = Generate.road_grid pool ~rows:10 ~cols:10 () in
      let par = Spanning_forest.spanning_forest pool g in
      let seq = Spanning_forest.spanning_forest_seq g in
      Alcotest.(check int) "same size" (Array.length seq) (Array.length par))

(* ---------- MSF ---------- *)

let test_msf_weight_matches_kruskal () =
  in_pool (fun pool ->
      List.iter
        (fun (name, g) ->
          let forest = Spanning_forest.minimum_spanning_forest pool g in
          let w = Spanning_forest.forest_weight g forest in
          Alcotest.(check int)
            (name ^ " MSF weight = Kruskal")
            (Reference.spanning_forest_weight g)
            w)
        [
          ("rmat-w", Csr.symmetrize pool (Generate.rmat pool ~scale:8 ~edge_factor:4 ~weighted:true ()));
          ("road-w", Generate.road_grid pool ~rows:15 ~cols:15 ~weighted:true ());
        ])

let test_msf_is_forest () =
  in_pool (fun pool ->
      let g = Generate.road_grid pool ~rows:12 ~cols:12 ~weighted:true () in
      let forest = Spanning_forest.minimum_spanning_forest pool g in
      let edges = Csr.edges g in
      let uf = Union_find.create (Csr.n g) in
      Array.iter
        (fun e ->
          let u, v = edges.(e) in
          Alcotest.(check bool) "acyclic" true (Union_find.union uf u v))
        forest;
      Alcotest.(check int) "spanning" (Reference.num_components g)
        (Union_find.count_roots pool uf))

let test_msf_deterministic () =
  in_pool (fun pool ->
      let g = Csr.symmetrize pool (Generate.rmat pool ~scale:7 ~edge_factor:5 ~weighted:true ()) in
      let a = Spanning_forest.minimum_spanning_forest pool g in
      let b = Spanning_forest.minimum_spanning_forest pool g in
      Alcotest.(check bool) "same forest" true (a = b))

(* ---------- BFS / SSSP ---------- *)

let test_bfs_matches_reference () =
  in_pool (fun pool ->
      List.iter
        (fun (name, g) ->
          let got = Traverse.bfs pool g ~src:0 in
          let expected = Reference.bfs_distances g ~src:0 in
          Alcotest.(check bool) (name ^ " bfs distances") true (got = expected))
        (test_graphs pool))

let test_sssp_matches_dijkstra () =
  in_pool (fun pool ->
      List.iter
        (fun (name, g) ->
          let got = Traverse.sssp pool g ~src:0 in
          let expected = Reference.dijkstra g ~src:0 in
          Alcotest.(check bool) (name ^ " sssp distances") true (got = expected))
        [
          ("rmat-w", Csr.symmetrize pool (Generate.rmat pool ~scale:8 ~edge_factor:4 ~weighted:true ()));
          ("road-w", Generate.road_grid pool ~rows:16 ~cols:16 ~weighted:true ());
        ])

let test_traversal_unreachable () =
  in_pool (fun pool ->
      (* Two disconnected vertices. *)
      let g = Csr.of_edges pool ~n:3 [| (0, 1) |] in
      let d = Traverse.bfs pool g ~src:0 in
      Alcotest.(check bool) "unreachable stays max_int" true
        (d = [| 0; 1; max_int |]))

let prop_bfs_random_graphs =
  QCheck.Test.make ~name:"MQ bfs = reference on random graphs" ~count:10
    QCheck.small_nat
    (fun seed ->
      with_pool 3 (fun pool ->
          Pool.run pool (fun () ->
              let g = Generate.random_uniform pool ~n:200 ~m:600 ~seed () in
              Traverse.bfs pool g ~src:0 = Reference.bfs_distances g ~src:0)))

let () =
  Alcotest.run "rpb_graph_algos"
    [
      ( "mis",
        [
          Alcotest.test_case "valid on suite" `Quick test_mis_valid_on_suite;
          Alcotest.test_case "deterministic = seq" `Quick
            test_mis_deterministic_and_matches_seq;
          Alcotest.test_case "plain-status mode" `Quick test_mis_plain_status_mode;
          Alcotest.test_case "edge cases" `Quick test_mis_empty_and_singleton;
        ] );
      ( "matching",
        [
          Alcotest.test_case "valid on suite" `Quick test_mm_valid_on_suite;
          Alcotest.test_case "matches seq" `Quick test_mm_matches_seq;
          Alcotest.test_case "self loops" `Quick test_mm_self_loops_never_selected;
        ] );
      ( "spanning_forest",
        [
          Alcotest.test_case "spans" `Quick test_sf_spans;
          Alcotest.test_case "seq agrees" `Quick test_sf_seq_agrees_on_size;
        ] );
      ( "msf",
        [
          Alcotest.test_case "weight = kruskal" `Quick test_msf_weight_matches_kruskal;
          Alcotest.test_case "is forest" `Quick test_msf_is_forest;
          Alcotest.test_case "deterministic" `Quick test_msf_deterministic;
        ] );
      ( "traverse",
        [
          Alcotest.test_case "bfs = reference" `Quick test_bfs_matches_reference;
          Alcotest.test_case "sssp = dijkstra" `Quick test_sssp_matches_dijkstra;
          Alcotest.test_case "unreachable" `Quick test_traversal_unreachable;
          QCheck_alcotest.to_alcotest prop_bfs_random_graphs;
        ] );
    ]
